package policyscope

// Inference bakeoff benchmarks (snapshot them with
// scripts/bench_infer.sh -> BENCH_infer.json): per-algorithm inference
// and scorer wall time at two scales — the shared 800-AS paper-preset
// study, and a synthesized 20k-AS CAIDA hierarchy with deterministic
// valley-free paths (the same shape cmd/cmdtest's CAIDA smoke loads
// from disk, built in memory here).

import (
	"context"
	"sync"
	"testing"

	"github.com/policyscope/policyscope/infer"
	"github.com/policyscope/policyscope/internal/asgraph"
	"github.com/policyscope/policyscope/internal/bgp"
)

// caidaBench is the synthesized 20k-AS hierarchy: truth graph plus the
// valley-free paths a few tier-2 vantages would observe.
type caidaBench struct {
	in    infer.Input
	truth *asgraph.Graph
}

var (
	caidaBenchOnce sync.Once
	caidaBenchData *caidaBench
)

// caidaInput builds the hierarchy of cmdtest's writeRelHierarchy in
// memory: a 5-AS tier-1 clique, n/20 dual-homed tier-2 transit ASes,
// dual-homed tier-3 edges for the rest. Paths go vantage → tier-1 →
// (peer tier-1) → tier-2 → tier-3, strictly valley-free.
func caidaInput(b *testing.B, n int) *caidaBench {
	b.Helper()
	caidaBenchOnce.Do(func() {
		const t1 = 5
		t2 := n / 20
		g := asgraph.New()
		must := func(err error) {
			if err != nil {
				b.Fatal(err)
			}
		}
		for i := 1; i <= t1; i++ {
			for j := i + 1; j <= t1; j++ {
				must(g.AddPeer(bgp.ASN(i), bgp.ASN(j)))
			}
		}
		// provA/provB mirror writeRelHierarchy's provider choices.
		provA := func(asn int) int {
			if asn <= t1+t2 {
				i := asn - t1 - 1
				return 1 + i%t1
			}
			i := asn - t1 - t2 - 1
			return t1 + 1 + i%t2
		}
		provB := func(asn int) int {
			if asn <= t1+t2 {
				i := asn - t1 - 1
				return 1 + (i+1)%t1
			}
			i := asn - t1 - t2 - 1
			return t1 + 1 + (i*7+3)%t2
		}
		for asn := t1 + 1; asn <= n; asn++ {
			must(g.AddProviderCustomer(bgp.ASN(provA(asn)), bgp.ASN(asn)))
			must(g.AddProviderCustomer(bgp.ASN(provB(asn)), bgp.ASN(asn)))
		}

		// Vantages: the first three tier-2 ASes. Each observes every
		// other AS through its first provider.
		vantages := []int{t1 + 1, t1 + 2, t1 + 3}
		var paths []bgp.Path
		appendPath := func(asns ...int) {
			p := make(bgp.Path, 0, len(asns))
			for i, a := range asns {
				// Collapse consecutive duplicates (vantage == target's
				// tier-2 provider, or shared tier-1).
				if i > 0 && asns[i-1] == a {
					continue
				}
				p = append(p, bgp.ASN(a))
			}
			if len(p) >= 2 {
				paths = append(paths, p)
			}
		}
		for _, v := range vantages {
			up := provA(v) // v's tier-1 provider
			for _, t := range []int{1, 2, 3, 4, 5} {
				appendPath(v, up, t) // reach each tier-1 (peer hop when t != up)
			}
			for asn := t1 + 1; asn <= n; asn++ {
				if asn == v {
					continue
				}
				if asn <= t1+t2 { // a tier-2: down from its tier-1
					appendPath(v, up, provA(asn), asn)
					continue
				}
				p := provA(asn) // tier-2 above the tier-3 target
				appendPath(v, up, provA(p), p, asn)
			}
		}
		caidaBenchData = &caidaBench{
			in:    infer.Input{Paths: paths, VantagePoints: []bgp.ASN{bgp.ASN(vantages[0]), bgp.ASN(vantages[1]), bgp.ASN(vantages[2])}},
			truth: g,
		}
	})
	if caidaBenchData == nil {
		b.Skip("caida hierarchy construction failed earlier")
	}
	return caidaBenchData
}

// paperInput is the shared paper-preset study's observed paths.
func paperInput(b *testing.B) (infer.Input, *Study) {
	b.Helper()
	s := sharedStudy(b)
	return infer.Input{Paths: s.SnapshotPaths(), VantagePoints: s.Peers}, s
}

func benchAlgo(b *testing.B, in infer.Input, algo string) {
	b.Helper()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := infer.Default.Run(ctx, in, algo, nil)
		if err != nil {
			b.Fatal(err)
		}
		if out.Graph.NumEdges() == 0 {
			b.Fatal("no edges")
		}
	}
}

func BenchmarkInferGao(b *testing.B) {
	in, _ := paperInput(b)
	benchAlgo(b, in, "gao")
}

func BenchmarkInferRank(b *testing.B) {
	in, _ := paperInput(b)
	benchAlgo(b, in, "rank")
}

func BenchmarkInferPari(b *testing.B) {
	in, _ := paperInput(b)
	benchAlgo(b, in, "pari")
}

func BenchmarkInferScore(b *testing.B) {
	in, s := paperInput(b)
	out, err := infer.Default.Run(context.Background(), in, "gao", nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc := infer.Score(out.Graph, s.Topo.Graph)
		if sc.SharedEdges == 0 {
			b.Fatal("nothing scored")
		}
	}
}

func BenchmarkInferGao20k(b *testing.B) {
	benchAlgo(b, caidaInput(b, 20000).in, "gao")
}

func BenchmarkInferRank20k(b *testing.B) {
	benchAlgo(b, caidaInput(b, 20000).in, "rank")
}

func BenchmarkInferPari20k(b *testing.B) {
	benchAlgo(b, caidaInput(b, 20000).in, "pari")
}

func BenchmarkInferScore20k(b *testing.B) {
	cb := caidaInput(b, 20000)
	out, err := infer.Default.Run(context.Background(), cb.in, "gao", nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc := infer.Score(out.Graph, cb.truth)
		if sc.SharedEdges == 0 {
			b.Fatal("nothing scored")
		}
	}
}
