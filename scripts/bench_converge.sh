#!/bin/sh
# bench_converge.sh — snapshot the cold-convergence gate benchmarks.
#
# Runs BenchmarkConvergeCold (atom-sharded, zero-alloc engine) against
# BenchmarkConvergeColdLegacy (the pre-refactor reference engine kept in
# engine_equivalence_test.go, proven byte-identical), plus the
# ConvergeAllocs pair that gates the propagation loop's allocs/op, and
# writes BENCH_converge.json. BenchmarkConvergeColdNoDedup isolates the
# zero-alloc core's share of the win.
#
# Acceptance bars (enforced here and in CI):
#   cold_speedup_x      >= 3.0   (legacy / optimized, wall clock)
#   allocs_reduction_x  >= 5.0   (legacy / optimized, allocs per run)
#
# Usage: scripts/bench_converge.sh [cold-benchtime] [allocs-benchtime]
#        (defaults 3x and 1x)
set -eu

cd "$(dirname "$0")/.."
COLDTIME="${1:-3x}"
ALLOCTIME="${2:-1x}"
OUT="BENCH_converge.json"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -run NONE -bench 'BenchmarkConvergeCold(NoDedup|Legacy)?$' \
    -benchtime "$COLDTIME" -benchmem ./internal/simulate/ | tee "$RAW"
go test -run NONE -bench 'BenchmarkConvergeAllocs(Legacy)?$' \
    -benchtime "$ALLOCTIME" -benchmem ./internal/simulate/ | tee -a "$RAW"

awk -v coldtime="$COLDTIME" -v alloctime="$ALLOCTIME" '
    function metric(unit,   i) {
        for (i = 1; i <= NF; i++) if ($i == unit) return $(i - 1)
        return ""
    }
    /^BenchmarkConvergeColdNoDedup/ { nodedup = metric("ns/op"); next }
    /^BenchmarkConvergeColdLegacy/  { legacy = metric("ns/op"); next }
    /^BenchmarkConvergeCold/        { cold = metric("ns/op"); prefixes = metric("prefixes"); next }
    /^BenchmarkConvergeAllocsLegacy/ { alegacy = metric("allocs/op"); next }
    /^BenchmarkConvergeAllocs/       { anew = metric("allocs/op"); next }
    END {
        if (cold == "" || nodedup == "" || legacy == "" || anew == "" || alegacy == "") {
            print "bench_converge.sh: missing benchmark output" > "/dev/stderr"
            exit 1
        }
        printf "{\n"
        printf "  \"benchmark\": \"cold convergence, paper preset (600 ASes, 24 vantage points): atom-sharded zero-alloc engine vs pre-refactor reference\",\n"
        printf "  \"cold_benchtime\": \"%s\",\n", coldtime
        printf "  \"allocs_benchtime\": \"%s\",\n", alloctime
        printf "  \"prefixes\": %s,\n", prefixes
        printf "  \"cold_ns\": %s,\n", cold
        printf "  \"cold_nodedup_ns\": %s,\n", nodedup
        printf "  \"cold_legacy_ns\": %s,\n", legacy
        printf "  \"cold_speedup_x\": %.2f,\n", legacy / cold
        printf "  \"core_speedup_x\": %.2f,\n", legacy / nodedup
        printf "  \"allocs_per_op\": %s,\n", anew
        printf "  \"allocs_per_op_legacy\": %s,\n", alegacy
        printf "  \"allocs_reduction_x\": %.2f\n", alegacy / anew
        printf "}\n"
    }
' "$RAW" > "$OUT"

echo "wrote $OUT:"
cat "$OUT"

SPEEDUP=$(awk -F': ' '/cold_speedup_x/ {print $2+0}' "$OUT")
ALLOCS=$(awk -F': ' '/allocs_reduction_x/ {print $2+0}' "$OUT")
awk -v s="$SPEEDUP" 'BEGIN { exit (s >= 3.0 ? 0 : 1) }' || {
    echo "bench_converge.sh: cold speedup ${SPEEDUP}x is below the 3x bar" >&2
    exit 1
}
awk -v a="$ALLOCS" 'BEGIN { exit (a >= 5.0 ? 0 : 1) }' || {
    echo "bench_converge.sh: allocs reduction ${ALLOCS}x is below the 5x bar" >&2
    exit 1
}
