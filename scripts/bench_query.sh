#!/bin/sh
# bench_query.sh — snapshot the concurrent-query throughput benchmark.
#
# Runs BenchmarkSessionConcurrentQueries (mixed experiments + what-ifs
# served by one shared Session on the 800-AS shared study) and writes
# BENCH_query.json with ns/op and queries/s, so future PRs have a
# serving-throughput trajectory to compare against.
#
# Usage: scripts/bench_query.sh [benchtime]   (default 2s)
set -eu

cd "$(dirname "$0")/.."
BENCHTIME="${1:-2s}"
OUT="BENCH_query.json"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -run NONE -bench 'BenchmarkSessionConcurrentQueries$' \
    -benchtime "$BENCHTIME" . | tee "$RAW"

awk -v benchtime="$BENCHTIME" '
    /^BenchmarkSessionConcurrentQueries/ {
        for (i = 1; i <= NF; i++) {
            if ($i == "ns/op")     ns = $(i - 1)
            if ($i == "queries/s") qps = $(i - 1)
        }
    }
    END {
        if (ns == "" || qps == "") {
            print "bench_query.sh: missing benchmark output" > "/dev/stderr"
            exit 1
        }
        printf "{\n"
        printf "  \"benchmark\": \"mixed concurrent Session queries (tables, verification, what-ifs), 800-AS shared study\",\n"
        printf "  \"benchtime\": \"%s\",\n", benchtime
        printf "  \"ns_per_query\": %s,\n", ns
        printf "  \"queries_per_sec\": %s\n", qps
        printf "}\n"
    }
' "$RAW" > "$OUT"

echo "wrote $OUT:"
cat "$OUT"
