#!/bin/sh
# bench_dsweep.sh — snapshot the distributed-sweep overhead benchmark.
#
# Runs the same 256-scenario link-failure sweep of a 300-AS study two
# ways: the in-process sharded executor (BenchmarkDSweepSingleProcess)
# and the dsweep coordinator over two local HTTP workers sharing one
# dataset pool (BenchmarkDSweepCoordinator). With zero network distance
# and shared cores, the throughput ratio isolates the fleet protocol
# itself — shard dispatch, per-record NDJSON round trips, in-order
# re-serialization through the merger. Writes BENCH_dsweep.json and
# *enforces* the floor: coordinator records/sec must stay at or above
# 0.8x the single-process baseline, or the script exits non-zero.
#
# Usage: scripts/bench_dsweep.sh [benchtime]   (default 2x)
set -eu

cd "$(dirname "$0")/.."
BT="${1:-2x}"
OUT="BENCH_dsweep.json"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -run NONE -bench 'BenchmarkDSweep(SingleProcess|Coordinator)$' \
    -benchtime "$BT" ./server | tee "$RAW"

awk -v cores="$(nproc 2>/dev/null || echo 0)" '
    # Custom metrics print as "<value> <unit>" pairs; scan each line for
    # the units instead of trusting fixed field positions.
    /^BenchmarkDSweep(SingleProcess|Coordinator)/ {
        for (i = 2; i <= NF; i++) {
            if ($i == "records/sec") v = $(i - 1)
            if ($i == "records")     n = $(i - 1)
        }
        if ($0 ~ /SingleProcess/) single = v; else coord = v
        recs = n
    }
    END {
        if (single == "" || coord == "") {
            print "bench_dsweep.sh: missing benchmark output" > "/dev/stderr"
            exit 1
        }
        printf "{\n"
        printf "  \"benchmark\": \"256-scenario link-failure sweep, 300-AS study: dsweep coordinator + 2 local HTTP workers vs in-process executor\",\n"
        printf "  \"records\": %.0f,\n", recs
        printf "  \"cores\": %.0f,\n", cores
        printf "  \"single_process_records_per_sec\": %.1f,\n", single
        printf "  \"coordinator_records_per_sec\": %.1f,\n", coord
        printf "  \"coordinator_vs_single\": %.2f,\n", coord / single
        printf "  \"floor\": 0.8,\n"
        printf "  \"note\": \"both paths share one dataset pool and the same cores, so the ratio measures pure fleet-protocol overhead (shard dispatch, NDJSON round trips, merge re-serialization), not network or duplicate study builds; on real fleets the coordinator additionally wins the cross-machine scaling the single process cannot reach\"\n"
        printf "}\n"
    }
' "$RAW" > "$OUT"

echo "wrote $OUT:"
cat "$OUT"

RATIO=$(awk -F': ' '/coordinator_vs_single/ {print $2+0}' "$OUT")
awk -v r="$RATIO" 'BEGIN { exit (r >= 0.8 ? 0 : 1) }' || {
    echo "bench_dsweep.sh: coordinator throughput ${RATIO}x is below the 0.8x floor" >&2
    exit 1
}
