#!/bin/sh
# bench_infer.sh — snapshot the inference-bakeoff benchmarks.
#
# Runs every registered algorithm (gao, rank, pari) plus the
# ground-truth scorer at two scales — the 800-AS paper-preset study and
# a synthesized 20k-AS CAIDA hierarchy — and writes BENCH_infer.json.
#
# Acceptance bar (enforced here and in CI): every algorithm and the
# scorer must complete both scales; the 20k hierarchy must infer in
# under 60s per algorithm (a generous ceiling — the point is that
# internet scale stays interactive, ~100ms at time of writing).
#
# Usage: scripts/bench_infer.sh [benchtime]   (default 3x)
set -eu

cd "$(dirname "$0")/.."
BENCHTIME="${1:-3x}"
OUT="BENCH_infer.json"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -run NONE -bench 'BenchmarkInfer(Gao|Rank|Pari|Score)(20k)?$' \
    -benchtime "$BENCHTIME" . | tee "$RAW"

awk -v benchtime="$BENCHTIME" '
    function metric(unit,   i) {
        for (i = 1; i <= NF; i++) if ($i == unit) return $(i - 1)
        return ""
    }
    /^BenchmarkInferGao20k/   { gao20k = metric("ns/op"); next }
    /^BenchmarkInferRank20k/  { rank20k = metric("ns/op"); next }
    /^BenchmarkInferPari20k/  { pari20k = metric("ns/op"); next }
    /^BenchmarkInferScore20k/ { score20k = metric("ns/op"); next }
    /^BenchmarkInferGao/      { gao = metric("ns/op"); next }
    /^BenchmarkInferRank/     { rank = metric("ns/op"); next }
    /^BenchmarkInferPari/     { pari = metric("ns/op"); next }
    /^BenchmarkInferScore/    { score = metric("ns/op"); next }
    END {
        if (gao == "" || rank == "" || pari == "" || score == "" ||
            gao20k == "" || rank20k == "" || pari20k == "" || score20k == "") {
            print "bench_infer.sh: missing benchmark output" > "/dev/stderr"
            exit 1
        }
        printf "{\n"
        printf "  \"benchmark\": \"relationship inference + scorer: paper preset (800 ASes, 24 vantage points) and synthesized 20k-AS CAIDA hierarchy\",\n"
        printf "  \"benchtime\": \"%s\",\n", benchtime
        printf "  \"paper_preset\": {\n"
        printf "    \"gao_ns\": %s,\n", gao
        printf "    \"rank_ns\": %s,\n", rank
        printf "    \"pari_ns\": %s,\n", pari
        printf "    \"score_ns\": %s\n", score
        printf "  },\n"
        printf "  \"caida_20k\": {\n"
        printf "    \"gao_ns\": %s,\n", gao20k
        printf "    \"rank_ns\": %s,\n", rank20k
        printf "    \"pari_ns\": %s,\n", pari20k
        printf "    \"score_ns\": %s\n", score20k
        printf "  }\n"
        printf "}\n"
    }
' "$RAW" > "$OUT"

echo "wrote $OUT:"
cat "$OUT"

for algo in gao rank pari; do
    NS=$(awk -F': ' -v a="$algo" '
        /"caida_20k"/ { in20k = 1 }
        in20k && $0 ~ "\"" a "_ns\"" { gsub(/[ ,]/, "", $2); print $2; exit }
    ' "$OUT")
    awk -v ns="$NS" 'BEGIN { exit (ns + 0 < 60e9 ? 0 : 1) }' || {
        echo "bench_infer.sh: $algo took ${NS}ns on the 20k hierarchy (60s bar)" >&2
        exit 1
    }
done
