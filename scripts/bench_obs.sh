#!/bin/sh
# bench_obs.sh — snapshot the observability-cost benchmarks.
#
# Measures what the obs layer costs where it matters:
#   counter_inc_ns      one pre-registered counter increment (the unit
#                       of hot-path instrumentation)
#   histogram_observe_ns one histogram observation (binary search +
#                       bucket/count/sum atomics)
#   render_ns           one full /metrics text exposition render of a
#                       populated registry
#   overhead_pct        instrumented vs obs-disabled cold convergence
#                       (BenchmarkConvergeObsOn/Off on the 600-AS
#                       equivalence topology) — the end-to-end tax on
#                       the engine hot path
#
# Acceptance bar (enforced here and in CI):
#   overhead_pct <= 3.0
#
# Usage: scripts/bench_obs.sh [micro-benchtime] [converge-benchtime]
#        (defaults 1s and 3x)
set -eu

cd "$(dirname "$0")/.."
MICROTIME="${1:-1s}"
CONVTIME="${2:-3x}"
OUT="BENCH_obs.json"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -run NONE -bench 'Benchmark(CounterInc|HistogramObserve|WriteText)$' \
    -benchtime "$MICROTIME" ./obs/ | tee "$RAW"
go test -run NONE -bench 'BenchmarkConvergeObs(On|Off)$' \
    -benchtime "$CONVTIME" ./internal/simulate/ | tee -a "$RAW"

awk -v microtime="$MICROTIME" -v convtime="$CONVTIME" '
    function metric(unit,   i) {
        for (i = 1; i <= NF; i++) if ($i == unit) return $(i - 1)
        return ""
    }
    /^BenchmarkCounterInc/       { inc = metric("ns/op"); next }
    /^BenchmarkHistogramObserve/ { hist = metric("ns/op"); next }
    /^BenchmarkWriteText/        { render = metric("ns/op"); next }
    /^BenchmarkConvergeObsOn/    { on = metric("ns/op"); next }
    /^BenchmarkConvergeObsOff/   { off = metric("ns/op"); next }
    END {
        if (inc == "" || hist == "" || render == "" || on == "" || off == "") {
            print "bench_obs.sh: missing benchmark output" > "/dev/stderr"
            exit 1
        }
        # %.0f, not %d: ns values exceed the 32-bit awk integer range.
        # (No apostrophes in this program: it is single-quoted shell.)
        printf "{\n"
        printf "  \"benchmark\": \"observability cost: registry micro-ops plus instrumented-vs-disabled cold convergence (600 ASes)\",\n"
        printf "  \"micro_benchtime\": \"%s\",\n", microtime
        printf "  \"converge_benchtime\": \"%s\",\n", convtime
        printf "  \"counter_inc_ns\": %.2f,\n", inc
        printf "  \"histogram_observe_ns\": %.2f,\n", hist
        printf "  \"render_ns\": %.0f,\n", render
        printf "  \"converge_obs_on_ns\": %.0f,\n", on
        printf "  \"converge_obs_off_ns\": %.0f,\n", off
        printf "  \"overhead_pct\": %.2f,\n", 100 * (on - off) / off
        printf "  \"note\": \"counters are always-on atomics; SetEnabled(false) only skips the optional wall-clock captures, so on-vs-off isolates the timing overhead while the AllocsPerRun guards in internal/simulate prove the allocation profile is identical either way; negative overhead is benchmark noise\"\n"
        printf "}\n"
    }
' "$RAW" > "$OUT"

echo "wrote $OUT:"
cat "$OUT"

OVERHEAD=$(awk -F': ' '/overhead_pct/ {print $2+0}' "$OUT")
awk -v o="$OVERHEAD" 'BEGIN { exit (o <= 3.0 ? 0 : 1) }' || {
    echo "bench_obs.sh: converge instrumentation overhead ${OVERHEAD}% is above the 3% bar" >&2
    exit 1
}
