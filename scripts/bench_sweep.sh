#!/bin/sh
# bench_sweep.sh — snapshot the sweep-fleet benchmarks.
#
# Runs the all-single-link-failures sweep of the 800-AS shared study
# through the sharded executor at 1 and 8 workers
# (BenchmarkSweepExecutorJ1/J8: whole sweep per op, per-scenario cost
# reported as a metric) and measures the serial baseline
# (BenchmarkSweepSerialEngine: the pre-existing batch path — one full
# engine, i.e. one complete resimulation, per scenario; sampled via
# benchtime with a stride across the scenario list, since the full
# serial sweep would take hours and the cost is dominated by the
# scenario-independent resimulation). Writes BENCH_sweep.json with the
# per-scenario costs and the speedups:
#
#   speedup_vs_serial   executor at -j8 vs the serial engine-per-scenario
#                       path (the headline: what batching what-ifs through
#                       the fleet buys over the previously available way)
#   j8_vs_j1            executor scaling across workers; ~1.0 on a
#                       single-core box, approaches the core count on
#                       real hardware
#   utilization_*       sum(per-worker busy time) / (workers × wall) from
#                       the executor's WorkerStats: ~1.0 = shards compute
#                       the whole sweep, lower = workers idle. Separates
#                       "executor contends" (low utilization) from "the
#                       box has fewer cores than -j" (high utilization,
#                       flat j8_vs_j1).
#
# Usage: scripts/bench_sweep.sh [serial_benchtime] [sweep_benchtime]
#        (defaults 2x and 1x; one sweep op covers every scenario)
set -eu

cd "$(dirname "$0")/.."
SERIAL_BT="${1:-2x}"
SWEEP_BT="${2:-1x}"
OUT="BENCH_sweep.json"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -run NONE -bench 'BenchmarkSweepSerialEngine$' \
    -benchtime "$SERIAL_BT" . | tee "$RAW"
go test -run NONE -bench 'BenchmarkSweepExecutor(J1|J8)$' \
    -benchtime "$SWEEP_BT" . | tee -a "$RAW"

awk -v cores="$(nproc 2>/dev/null || echo 0)" '
    # Custom metrics print as "<value> <unit>" pairs; scan each line for
    # the units instead of trusting fixed field positions.
    /^BenchmarkSweepSerialEngine/ { serial = $3 }
    /^BenchmarkSweepExecutorJ1/ || /^BenchmarkSweepExecutorJ8/ {
        for (i = 2; i <= NF; i++) {
            if ($i == "ns/scenario") v = $(i - 1)
            if ($i == "scenarios")   n = $(i - 1)
            if ($i == "utilization") u = $(i - 1)
        }
        if ($0 ~ /ExecutorJ1/) { j1 = v; u1 = u } else { j8 = v; u8 = u }
        scen = n
    }
    END {
        if (serial == "" || j1 == "" || j8 == "") {
            print "bench_sweep.sh: missing benchmark output" > "/dev/stderr"
            exit 1
        }
        # %.0f, not %d: ns values exceed the 32-bit awk integer range.
        # (No apostrophes in this program: it is single-quoted shell.)
        printf "{\n"
        printf "  \"benchmark\": \"all-single-link-failures sweep, 800-AS shared study\",\n"
        printf "  \"scenarios\": %.0f,\n", scen
        printf "  \"cores\": %.0f,\n", cores
        printf "  \"serial_engine_ns_per_scenario\": %.0f,\n", serial
        printf "  \"sweep_j1_ns_per_scenario\": %.0f,\n", j1
        printf "  \"sweep_j8_ns_per_scenario\": %.0f,\n", j8
        printf "  \"speedup_vs_serial\": %.1f,\n", serial / j8
        printf "  \"j8_vs_j1\": %.2f,\n", j1 / j8
        printf "  \"utilization_j1\": %.2f,\n", u1
        printf "  \"utilization_j8\": %.2f,\n", u8
        printf "  \"note\": \"serial = one full engine (complete resimulation) per scenario, the only batch path before the sweep executor, sampled across the scenario list via benchtime; j8_vs_j1 reflects the cores available to the run (a 1-core box pins it near 1.0 regardless of executor quality); utilization = sum(per-worker busy) / (workers x wall) from WorkerStats — high utilization with flat j8_vs_j1 means the cores, not the executor, are the ceiling; worker engines clone the shared family (pooled per-prefix state, intern table, CSR) so cold-start cost is paid once per family, not per worker\"\n"
        printf "}\n"
    }
' "$RAW" > "$OUT"

echo "wrote $OUT:"
cat "$OUT"
