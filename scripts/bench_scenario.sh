#!/bin/sh
# bench_scenario.sh — snapshot the scenario-engine benchmarks.
#
# Runs BenchmarkScenarioIncremental (what-if answered by incremental
# re-convergence) against BenchmarkScenarioFullResim (the same question
# answered by full resimulation) on the 800-AS shared study, and writes
# BENCH_scenario.json with the ns/op of both plus their ratio, so future
# PRs have a perf trajectory to compare against.
#
# Usage: scripts/bench_scenario.sh [benchtime]   (default 10x)
set -eu

cd "$(dirname "$0")/.."
BENCHTIME="${1:-10x}"
OUT="BENCH_scenario.json"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -run NONE -bench 'BenchmarkScenario(Incremental|FullResim)$' \
    -benchtime "$BENCHTIME" . | tee "$RAW"

awk -v benchtime="$BENCHTIME" '
    /^BenchmarkScenarioIncremental/ { inc = $3 }
    /^BenchmarkScenarioFullResim/   { full = $3 }
    END {
        if (inc == "" || full == "") {
            print "bench_scenario.sh: missing benchmark output" > "/dev/stderr"
            exit 1
        }
        printf "{\n"
        printf "  \"benchmark\": \"single-link-failure what-if, 800-AS shared study\",\n"
        printf "  \"benchtime\": \"%s\",\n", benchtime
        printf "  \"incremental_ns_per_op\": %s,\n", inc
        printf "  \"full_resim_ns_per_op\": %s,\n", full
        printf "  \"speedup\": %.1f\n", full / inc
        printf "}\n"
    }
' "$RAW" > "$OUT"

echo "wrote $OUT:"
cat "$OUT"
