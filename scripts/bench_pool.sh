#!/bin/sh
# bench_pool.sh — snapshot the dataset-cache and session-pool benchmarks.
#
# Runs BenchmarkDatasetColdGenerate vs BenchmarkDatasetCacheHit (the
# paper-preset dataset built from scratch vs loaded from the
# content-addressed study cache) and BenchmarkPoolConcurrentMixedQueries
# (parallel queries rotated across three resident datasets), and writes
# BENCH_pool.json. The enforced gate is load_hit_x >= 10: a cache-hit
# study load must beat cold generation by at least 10x on the paper
# preset. The bar had been relaxed to 3x after the atom-sharded engine
# cut the cold path ~5x (the gob decode could not keep pace); the flat
# studyfmt payload — parallel table decode into bulk-installed RIBs,
# topology regeneration overlapped with the decode — restores it.
#
# Usage: scripts/bench_pool.sh [load-benchtime] [query-benchtime]
#        (defaults 2x and 1s)
set -eu

cd "$(dirname "$0")/.."
LOADTIME="${1:-2x}"
QUERYTIME="${2:-1s}"
OUT="BENCH_pool.json"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -run NONE -bench 'BenchmarkDataset(ColdGenerate|CacheHit)$' \
    -benchtime "$LOADTIME" ./dataset/ | tee "$RAW"
go test -run NONE -bench 'BenchmarkPoolConcurrentMixedQueries$' \
    -benchtime "$QUERYTIME" ./dataset/ | tee -a "$RAW"

awk -v loadtime="$LOADTIME" -v querytime="$QUERYTIME" '
    /^BenchmarkDatasetColdGenerate/ { cold = $3 }
    /^BenchmarkDatasetCacheHit/     { hit = $3 }
    /^BenchmarkPoolConcurrentMixedQueries/ {
        for (i = 1; i <= NF; i++) if ($i == "queries/s") qps = $(i - 1)
    }
    END {
        if (cold == "" || hit == "" || qps == "") {
            print "bench_pool.sh: missing benchmark output" > "/dev/stderr"
            exit 1
        }
        printf "{\n"
        printf "  \"benchmark\": \"dataset cache (paper preset: cold generate vs cache-hit load) + pool throughput (3 resident datasets, mixed queries)\",\n"
        printf "  \"load_benchtime\": \"%s\",\n", loadtime
        printf "  \"query_benchtime\": \"%s\",\n", querytime
        printf "  \"cold_generate_ns\": %s,\n", cold
        printf "  \"cache_hit_ns\": %s,\n", hit
        printf "  \"load_hit_x\": %.1f,\n", cold / hit
        printf "  \"pool_mixed_queries_per_sec\": %s\n", qps
        printf "}\n"
    }
' "$RAW" > "$OUT"

echo "wrote $OUT:"
cat "$OUT"

SPEEDUP=$(awk -F': ' '/load_hit_x/ {print $2+0}' "$OUT")
awk -v s="$SPEEDUP" 'BEGIN { exit (s >= 10 ? 0 : 1) }' || {
    echo "bench_pool.sh: cache-hit load ${SPEEDUP}x is below the 10x bar" >&2
    exit 1
}
