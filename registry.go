package policyscope

// registry.go is the experiment catalog: every table and figure of the
// paper plus the extensions registers here by name, with typed
// parameters (decodable from JSON or key=value flags) and a typed
// result (results.go). RunAll, cmd/repro and cmd/policyscoped all drive
// this one table, so the set of runnable experiments can never drift
// between the CLI, the server and the full sweep.

import (
	"context"
	"fmt"

	"github.com/policyscope/policyscope/experiment"
	"github.com/policyscope/policyscope/internal/core"
	"github.com/policyscope/policyscope/internal/simulate"
	"github.com/policyscope/policyscope/internal/sweep"
)

// catalog is the process-wide experiment registry, populated at init.
var catalog = experiment.NewRegistry[*Session]()

// runAllPlans maps an experiment name to the parameter sets RunAll uses
// for it (nil entry or absent: one run with defaults; empty slice:
// skipped in RunAll but still runnable by name).
var runAllPlans = map[string]func(RunAllOptions) []any{}

// snapshotCapable lists the experiments that read only the collector
// snapshot and the analysis relationship graph — the inputs an imported
// MRT table dump provides. Everything else consumes generator ground
// truth (annotated topology, full vantage tables, the simulation
// engine) and is gated behind HasGroundTruth: running it against a
// snapshot-only dataset returns ErrNeedsGroundTruth instead of
// panicking on the missing inputs.
var snapshotCapable = map[string]bool{
	"table5":       true, // SA detector over peer best views
	"table6":       true, // per-customer SA shares at Tier-1 vantages
	"table8":       true, // multihoming split of SA origins
	"table9":       true, // splitting/aggregation signatures
	"table10":      true, // peer-export behaviour over the origin universe
	"inferbakeoff": true, // inference runs on observed paths; scoring is opt-in
}

// register wires one experiment into the catalog with typed parameters.
// defaults == nil marks a parameter-less experiment. The defaults value
// must not contain pointers to shared mutable state — every NewParams
// copy aliases them, and a JSON decode writes through a non-nil pointer
// in place (concurrent queries would race on the shared target); use
// nil pointers with resolve-on-read defaults instead (see
// PersistenceParams.normalized).
func register[P any](name, title, group string, order int, defaults *P,
	run func(context.Context, *Session, P) (experiment.Result, error), plan func(RunAllOptions) []any) {
	e := experiment.Experiment[*Session]{Name: name, Title: title, Group: group, Order: order,
		NeedsGroundTruth: !snapshotCapable[name]}
	if defaults != nil {
		d := *defaults
		e.NewParams = func() any { p := d; return &p }
	}
	needsGT := e.NeedsGroundTruth
	e.Run = func(ctx context.Context, se *Session, params any) (experiment.Result, error) {
		var p P
		if defaults != nil {
			p = *defaults
		}
		if params != nil {
			tp, ok := params.(*P)
			if !ok {
				return nil, &experiment.ParamError{Name: name,
					Err: fmt.Errorf("want *%T, got %T", p, params)}
			}
			p = *tp
		}
		if needsGT {
			s, err := se.Study()
			if err != nil {
				return nil, err
			}
			if !s.HasGroundTruth() {
				return nil, &NeedsGroundTruthError{Op: "experiment " + name}
			}
		}
		return run(ctx, se, p)
	}
	catalog.MustRegister(e)
	if plan != nil {
		runAllPlans[name] = plan
	}
}

// NoParams marks a parameter-less experiment.
type NoParams struct{}

// Table3Params parameterizes the IRR experiment (table3).
type Table3Params struct {
	// MinDate filters stale objects, yyyymmdd (paper: during 2002).
	MinDate int `json:"min_date"`
	// MinNeighbors keeps ASes with enough known-relationship imports.
	MinNeighbors int `json:"min_neighbors"`
}

// Table4Params caps the verification table (table4).
type Table4Params struct {
	// MaxASes bounds the row count like the paper's 9-row table.
	MaxASes int `json:"max_ases"`
}

// ProvidersParams sizes the provider-side analyses (table7, table8,
// table9, table10, case3, multisite).
type ProvidersParams struct {
	// Providers is how many Tier-1 vantages to analyze.
	Providers int `json:"providers"`
}

// Table6Params shapes the per-customer SA table (table6).
type Table6Params struct {
	Providers   int `json:"providers"`
	MaxRows     int `json:"max_rows"`
	MinPrefixes int `json:"min_prefixes"`
}

// Figure2bParams sizes the per-router refinement (figure2b).
type Figure2bParams struct {
	Routers      int `json:"routers"`
	DriftRouters int `json:"drift_routers"`
}

// Figure9Params sizes the neighbor-rank series (figure9).
type Figure9Params struct {
	// ASes is how many vantages to chart.
	ASes int `json:"ases"`
	// MaxRanks truncates each curve.
	MaxRanks int `json:"max_ranks"`
}

// PersistenceParams sizes a persistence series (figure6, figure7).
// Zero Epochs/EpochSeconds take the daily defaults (31 epochs, 86400s);
// ChurnFraction nil takes 0.008, while an explicit 0 runs a no-churn
// control series (same pointer semantics as TopologyTuning).
type PersistenceParams struct {
	Epochs        int      `json:"epochs"`
	ChurnFraction *float64 `json:"churn_fraction"`
	EpochSeconds  uint32   `json:"epoch_seconds"`
}

// persistKey is a persistence parameter set with defaults resolved — a
// comparable value, so equal effective parameter sets share one
// memoized series regardless of pointer identity.
type persistKey struct {
	epochs       int
	churn        float64
	epochSeconds uint32
}

// normalized resolves the persistence defaults. An explicit
// ChurnFraction of 0 survives (no-churn control series).
func (p PersistenceParams) normalized() persistKey {
	k := persistKey{epochs: p.Epochs, churn: 0.008, epochSeconds: p.EpochSeconds}
	if k.epochs <= 0 {
		k.epochs = 31
	}
	if p.ChurnFraction != nil {
		k.churn = *p.ChurnFraction
	}
	if k.epochSeconds == 0 {
		k.epochSeconds = 86400
	}
	return k
}

// WhatIfParams parameterizes the what-if experiment. An empty scenario
// (no events) runs the study's canonical failover what-if.
type WhatIfParams struct {
	Scenario simulate.Scenario `json:"scenario"`
	// MaxRows caps the rendered report's table rows.
	MaxRows int `json:"max_rows"`
}

// SweepParams parameterizes the sweep experiment: a declarative spec
// expanded against the study's topology, run on the sharded executor.
// An empty spec (no generators) runs a capped all-single-link-failures
// sweep as a demonstration.
type SweepParams struct {
	Spec sweep.Spec `json:"spec"`
	// Workers is the executor shard count (0 = GOMAXPROCS).
	Workers int `json:"workers"`
	// TopShifts bounds each record's per-prefix detail (0 = 3).
	TopShifts int `json:"top_shifts"`
	// TopK bounds the aggregate's critical-scenario lists (0 = 10).
	TopK int `json:"top_k"`
	// MaxRecords caps the per-scenario records the result retains
	// (<= 0 keeps all; the streaming /sweep endpoint always carries
	// every record).
	MaxRecords int `json:"max_records"`
}

// InferBakeoffParams parameterizes the inference bakeoff. Empty Algos
// runs every registered algorithm; Score attaches ground-truth
// scorecards (and requires ground truth), so the default result stays
// derivable from a snapshot alone.
type InferBakeoffParams struct {
	Algos []string `json:"algos,omitempty"`
	Score bool     `json:"score,omitempty"`
}

// InferEnsembleParams parameterizes the posterior-ensemble experiment.
// Zero values take the defaults registered with the experiment (pari,
// 5 samples, seed 1, a 16-scenario link-failure probe).
type InferEnsembleParams struct {
	// Algo must name a probabilistic algorithm (one with a posterior).
	Algo string `json:"algo"`
	// Samples is the ensemble size K (capped at 64).
	Samples int `json:"samples"`
	// Seed drives the posterior sampler; sample i uses seed+i.
	Seed int64 `json:"seed"`
	// SweepMax caps the per-sample single-link-failure probe
	// (0 disables sweeping entirely).
	SweepMax int `json:"sweep_max"`
	// Workers is the sweep executor shard count (0 = GOMAXPROCS).
	Workers int `json:"workers"`
}

// xlabel names the epoch unit for chart axes.
func (k persistKey) xlabel() string {
	if k.epochSeconds == 3600 {
		return "hour"
	}
	return "day"
}

func init() {
	register("overview", "Study overview: dimensions, inference accuracy, SA ground truth",
		"summary", 0, (*NoParams)(nil),
		func(_ context.Context, se *Session, _ NoParams) (experiment.Result, error) {
			s, err := se.Study()
			if err != nil {
				return nil, err
			}
			acc := s.RelationshipAccuracy()
			tp, fp := s.SAGroundTruthScore()
			return OverviewResult{
				ASes:                    len(s.Topo.Order),
				Prefixes:                s.Topo.TotalPrefixes(),
				CollectorPeers:          len(s.Peers),
				LookingGlassCount:       len(s.LookingGlass),
				Seed:                    s.Config.Seed,
				RelationshipAccuracyPct: 100 * acc.Fraction(),
				ObservedEdges:           acc.Total,
				SATruePositives:         tp,
				SAFalsePositives:        fp,
			}, nil
		}, nil)

	register("table1", "Table 1: vantage ASes", "table", 10, (*NoParams)(nil),
		func(_ context.Context, se *Session, _ NoParams) (experiment.Result, error) {
			s, err := se.Study()
			if err != nil {
				return nil, err
			}
			return Table1Result{Rows: s.Table1Dataset()}, nil
		}, nil)

	register("table2", "Table 2: typical local preference assignment", "table", 20, (*NoParams)(nil),
		func(_ context.Context, se *Session, _ NoParams) (experiment.Result, error) {
			s, err := se.Study()
			if err != nil {
				return nil, err
			}
			return Table2Result{Rows: s.Table2TypicalLocalPref()}, nil
		}, nil)

	register("table3", "Table 3: typical local preference from IRR", "table", 30,
		&Table3Params{MinDate: 20020101, MinNeighbors: 4},
		func(_ context.Context, se *Session, p Table3Params) (experiment.Result, error) {
			s, err := se.Study()
			if err != nil {
				return nil, err
			}
			return Table3Result{Rows: s.Table3IRR(Table3Options{
				MinDate: p.MinDate, MinNeighbors: p.MinNeighbors,
			})}, nil
		}, nil)

	register("figure2a", "Figure 2(a): localpref consistency with next-hop AS", "figure", 40, (*NoParams)(nil),
		func(_ context.Context, se *Session, _ NoParams) (experiment.Result, error) {
			s, err := se.Study()
			if err != nil {
				return nil, err
			}
			return Figure2Result{
				Title: "Figure 2(a): localpref consistency with next-hop AS",
				Rows:  s.Figure2aConsistency(),
			}, nil
		}, nil)

	register("figure2b", "Figure 2(b): per-router localpref consistency", "figure", 50,
		&Figure2bParams{Routers: 30, DriftRouters: 4},
		func(_ context.Context, se *Session, p Figure2bParams) (experiment.Result, error) {
			s, err := se.Study()
			if err != nil {
				return nil, err
			}
			rows, err := s.Figure2bRouterConsistency(p.Routers, p.DriftRouters)
			if err != nil {
				return nil, err
			}
			return Figure2Result{
				Title: "Figure 2(b): per-router localpref consistency",
				Rows:  rows,
			}, nil
		},
		func(opts RunAllOptions) []any {
			if opts.Routers <= 0 {
				return nil
			}
			return []any{&Figure2bParams{Routers: opts.Routers, DriftRouters: opts.DriftRouters}}
		})

	register("table4", "Table 4: AS relationships verified via BGP communities", "table", 60,
		&Table4Params{MaxASes: 9},
		func(_ context.Context, se *Session, p Table4Params) (experiment.Result, error) {
			s, err := se.Study()
			if err != nil {
				return nil, err
			}
			return Table4Result{Rows: s.Table4Verification(p.MaxASes)}, nil
		}, nil)

	register("table5", "Table 5: selectively announced prefixes per vantage", "table", 70, (*NoParams)(nil),
		func(_ context.Context, se *Session, _ NoParams) (experiment.Result, error) {
			s, err := se.Study()
			if err != nil {
				return nil, err
			}
			return Table5Result{Rows: s.Table5SAPrefixes()}, nil
		}, nil)

	register("table6", "Table 6: SA prefixes per customer of the top Tier-1 providers", "table", 80,
		&Table6Params{Providers: 3, MaxRows: 8, MinPrefixes: 2},
		func(_ context.Context, se *Session, p Table6Params) (experiment.Result, error) {
			s, err := se.Study()
			if err != nil {
				return nil, err
			}
			return Table6Result{Rows: s.Table6CustomerView(p.Providers, p.MaxRows, p.MinPrefixes)}, nil
		},
		func(opts RunAllOptions) []any {
			return []any{&Table6Params{
				Providers: opts.TierOneProviders, MaxRows: opts.Table6Rows,
				MinPrefixes: opts.Table6MinPrefixes,
			}}
		})

	register("table7", "Table 7: SA prefixes verified via active customer paths", "table", 90,
		&ProvidersParams{Providers: 3},
		func(_ context.Context, se *Session, p ProvidersParams) (experiment.Result, error) {
			s, err := se.Study()
			if err != nil {
				return nil, err
			}
			return Table7Result{Rows: s.Table7Verification(p.Providers)}, nil
		}, planProviders)

	register("table8", "Table 8: multihomed vs single-homed SA origins", "table", 100,
		&ProvidersParams{Providers: 3},
		func(_ context.Context, se *Session, p ProvidersParams) (experiment.Result, error) {
			s, err := se.Study()
			if err != nil {
				return nil, err
			}
			return Table8Result{Rows: s.Table8Multihoming(p.Providers)}, nil
		}, planProviders)

	register("table9", "Table 9: prefix splitting and aggregation among SA prefixes", "table", 110,
		&ProvidersParams{Providers: 3},
		func(_ context.Context, se *Session, p ProvidersParams) (experiment.Result, error) {
			s, err := se.Study()
			if err != nil {
				return nil, err
			}
			return Table9Result{Rows: s.Table9SplitAggregate(p.Providers)}, nil
		}, planProviders)

	register("case3", "Case 3: how SA origins export to vantage-side providers", "table", 120,
		&ProvidersParams{Providers: 3},
		func(_ context.Context, se *Session, p ProvidersParams) (experiment.Result, error) {
			s, err := se.Study()
			if err != nil {
				return nil, err
			}
			return Case3Result{Rows: s.Case3Selective(p.Providers)}, nil
		}, planProviders)

	register("table10", "Table 10: peers announcing all their prefixes directly", "table", 130,
		&ProvidersParams{Providers: 3},
		func(_ context.Context, se *Session, p ProvidersParams) (experiment.Result, error) {
			s, err := se.Study()
			if err != nil {
				return nil, err
			}
			return Table10Result{Rows: s.Table10PeerExport(p.Providers)}, nil
		}, planProviders)

	register("atoms", "Policy atoms: decomposition and SA attribution (extension)", "extension", 140, (*NoParams)(nil),
		func(_ context.Context, se *Session, _ NoParams) (experiment.Result, error) {
			s, err := se.Study()
			if err != nil {
				return nil, err
			}
			return s.PolicyAtoms(), nil
		}, nil)

	register("decision", "Deciding step for contested prefixes (extension)", "extension", 150, (*NoParams)(nil),
		func(_ context.Context, se *Session, _ NoParams) (experiment.Result, error) {
			s, err := se.Study()
			if err != nil {
				return nil, err
			}
			return DecisionResult{Rows: s.DecisionCharacterization()}, nil
		}, nil)

	register("multisite", "Multi-site confounder (extension)", "extension", 160,
		&ProvidersParams{Providers: 3},
		func(_ context.Context, se *Session, p ProvidersParams) (experiment.Result, error) {
			s, err := se.Study()
			if err != nil {
				return nil, err
			}
			return s.MultiSiteConfounder(p.Providers), nil
		}, planProviders)

	register("table11", "Table 11: published tagging communities", "table", 170, (*NoParams)(nil),
		func(_ context.Context, se *Session, _ NoParams) (experiment.Result, error) {
			s, err := se.Study()
			if err != nil {
				return nil, err
			}
			asn, scheme, ok := s.Table11Scheme()
			return Table11Result{AS: asn, Scheme: scheme, Found: ok}, nil
		}, nil)

	register("figure9", "Figure 9: prefixes announced by next-hop ASes", "figure", 180,
		&Figure9Params{ASes: 3, MaxRanks: 20},
		func(_ context.Context, se *Session, p Figure9Params) (experiment.Result, error) {
			s, err := se.Study()
			if err != nil {
				return nil, err
			}
			res := Figure9Result{}
			for _, asn := range s.Peers {
				if len(res.Series) >= p.ASes {
					break
				}
				ranks := core.RankNeighbors(s.Result.Tables[asn])
				if p.MaxRanks > 0 && len(ranks) > p.MaxRanks {
					ranks = ranks[:p.MaxRanks]
				}
				res.Series = append(res.Series, Figure9Series{AS: asn, Ranks: ranks})
			}
			return res, nil
		},
		func(opts RunAllOptions) []any {
			if opts.Figure9ASes <= 0 {
				return nil
			}
			return []any{&Figure9Params{ASes: opts.Figure9ASes, MaxRanks: 20}}
		})

	register("figure6", "Figure 6: persistence of SA prefixes", "figure", 190,
		&PersistenceParams{Epochs: 31, EpochSeconds: 86400},
		func(_ context.Context, se *Session, p PersistenceParams) (experiment.Result, error) {
			k := p.normalized()
			res, err := se.persistence(k)
			if err != nil {
				return nil, err
			}
			return PersistenceChartResult{Figure: 6, XLabel: k.xlabel(), Series: res}, nil
		}, planPersistence)

	register("figure7", "Figure 7: SA uptime histogram", "figure", 200,
		&PersistenceParams{Epochs: 31, EpochSeconds: 86400},
		func(_ context.Context, se *Session, p PersistenceParams) (experiment.Result, error) {
			k := p.normalized()
			res, err := se.persistence(k)
			if err != nil {
				return nil, err
			}
			return PersistenceChartResult{Figure: 7, XLabel: k.xlabel(), Series: res}, nil
		}, planPersistence)

	register("whatif", "What-if: scenario applied to the converged study", "whatif", 210,
		&WhatIfParams{MaxRows: 10},
		func(ctx context.Context, se *Session, p WhatIfParams) (experiment.Result, error) {
			s, err := se.Study()
			if err != nil {
				return nil, err
			}
			sc := p.Scenario
			if len(sc.Events) == 0 {
				var ok bool
				if sc, _, _, ok = s.FailoverScenario(); !ok {
					return WhatIfResult{MaxRows: p.MaxRows}, nil
				}
			}
			rep, err := se.WhatIf(ctx, sc)
			if err != nil {
				return nil, err
			}
			return WhatIfResult{Report: rep, MaxRows: p.MaxRows}, nil
		},
		func(opts RunAllOptions) []any {
			if opts.SkipWhatIf {
				return nil
			}
			return []any{nil}
		})

	register("sweep", "Sweep: batch what-if over scenario families, aggregated", "sweep", 215,
		&SweepParams{MaxRecords: 20},
		func(ctx context.Context, se *Session, p SweepParams) (experiment.Result, error) {
			spec := p.Spec
			if len(spec.Generators) == 0 {
				spec = sweep.Spec{
					Name:       "default-single-link-failures",
					Generators: []sweep.Generator{{Kind: sweep.KindAllSingleLinkFailures, Max: 16}},
				}
			}
			scenarios, err := se.SweepScenarios(ctx, spec)
			if err != nil {
				return nil, &experiment.ParamError{Name: "sweep", Err: err}
			}
			var records []*sweep.Impact
			opts := sweep.Options{
				Workers: p.Workers, TopShifts: p.TopShifts, TopK: p.TopK,
				OnImpact: func(imp *sweep.Impact) error {
					if p.MaxRecords <= 0 || len(records) < p.MaxRecords {
						records = append(records, imp)
					}
					return nil
				},
			}
			agg, err := se.Sweep(ctx, scenarios, opts)
			if err != nil {
				return nil, err
			}
			return SweepResult{Spec: spec, Aggregate: agg, Records: records}, nil
		},
		// A whole-topology sweep is too heavy for the default RunAll
		// battery; run it by name (repro -run sweep, POST /sweep).
		func(RunAllOptions) []any { return []any{} })

	register("inferbakeoff", "Inference bakeoff: relationship algorithms side by side", "infer", 216,
		&InferBakeoffParams{}, runInferBakeoff, nil)

	register("inferensemble", "Posterior ensemble: sampled relationship worlds through convergence and sweeps", "infer", 217,
		&InferEnsembleParams{Algo: "pari", Samples: 5, Seed: 1, SweepMax: 16},
		runInferEnsemble,
		// Convergence per sample is too heavy for the default RunAll
		// battery; run it by name (repro -run inferensemble).
		func(RunAllOptions) []any { return []any{} })

	register("summary", "Summary: paper vs measured", "summary", 220, (*NoParams)(nil),
		func(_ context.Context, se *Session, _ NoParams) (experiment.Result, error) {
			s, err := se.Study()
			if err != nil {
				return nil, err
			}
			return s.Summary(), nil
		}, nil)
}

// planProviders is the shared RunAll plan for provider-count analyses.
func planProviders(opts RunAllOptions) []any {
	return []any{&ProvidersParams{Providers: opts.TierOneProviders}}
}

// planPersistence expands a sweep into the daily and hourly series.
func planPersistence(opts RunAllOptions) []any {
	var out []any
	if opts.DailyEpochs > 0 {
		out = append(out, &PersistenceParams{
			Epochs: opts.DailyEpochs, ChurnFraction: Prob(0.008), EpochSeconds: 86400,
		})
	}
	if opts.HourlyEpochs > 0 {
		out = append(out, &PersistenceParams{
			Epochs: opts.HourlyEpochs, ChurnFraction: Prob(0.003), EpochSeconds: 3600,
		})
	}
	return out
}
