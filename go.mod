module github.com/policyscope/policyscope

go 1.22
