package infer

import (
	"context"

	"github.com/policyscope/policyscope/internal/asgraph"
	"github.com/policyscope/policyscope/internal/bgp"
)

// The rank algorithm infers relationships from transit-degree ranking
// in the spirit of Dimitropoulos et al., "AS Relationships: Inference
// and Validation" (CCR 2007): an AS's rank is how many distinct
// neighbors it is observed providing transit between; each path is
// oriented uphill to its highest-ranked AS and downhill after it, and
// the edges adjacent to the peak whose endpoints rank similarly are
// refined into peer-to-peer links.

// RankParams tunes the rank algorithm.
type RankParams struct {
	// PeerRatio bounds how dissimilar two ASes' transit degrees may be
	// for a peak-adjacent edge to be refined into peer-to-peer
	// (default 4).
	PeerRatio float64 `json:"peer_ratio"`
	// SiblingFactor classifies an edge with mutual transit evidence as
	// sibling when neither direction outvotes the other by more than
	// this factor (default 2).
	SiblingFactor float64 `json:"sibling_factor"`
}

func defaultRankParams() *RankParams {
	return &RankParams{PeerRatio: 4, SiblingFactor: 2}
}

func (p *RankParams) withDefaults() RankParams {
	q := *p
	if q.PeerRatio <= 0 {
		q.PeerRatio = 4
	}
	if q.SiblingFactor < 1 {
		q.SiblingFactor = 2
	}
	return q
}

func runRank(_ context.Context, in Input, params any) (*Output, error) {
	p := params.(*RankParams).withDefaults()
	paths := cleanPaths(in.Paths)
	degrees := observedDegrees(paths)
	tdeg := transitDegrees(paths)

	// rank orders two ASes by transit degree, breaking ties by observed
	// degree then ASN, so every comparison below is deterministic.
	outranks := func(x, y bgp.ASN) bool {
		if tdeg[x] != tdeg[y] {
			return tdeg[x] > tdeg[y]
		}
		if degrees[x] != degrees[y] {
			return degrees[x] > degrees[y]
		}
		return x < y
	}

	votes := make(map[edgeKey][2]int) // [0]: lower ASN provides; [1]: higher provides
	peak := make(map[edgeKey]bool)    // observed adjacent to a path's peak
	interior := make(map[edgeKey]bool)
	vote := func(provider, customer bgp.ASN) {
		k := ekey(provider, customer)
		c := votes[k]
		if provider == k.a {
			c[0]++
		} else {
			c[1]++
		}
		votes[k] = c
	}
	for _, path := range paths {
		// The peak is the highest-ranked AS on the path.
		j := 0
		for i := 1; i < len(path); i++ {
			if outranks(path[i], path[j]) {
				j = i
			}
		}
		for i := 0; i+1 < len(path); i++ {
			if i+1 <= j {
				vote(path[i+1], path[i]) // uphill: far AS provides
			} else {
				vote(path[i], path[i+1]) // downhill: near AS provides
			}
			k := ekey(path[i], path[i+1])
			if i+1 == j || i == j {
				peak[k] = true
			} else {
				interior[k] = true
			}
		}
	}

	g := asgraph.New()
	for _, k := range sortedEdgeKeys(votes) {
		c := votes[k]
		ca, cb := c[0], c[1]
		// Peering refinement: a peak-adjacent edge that never carries
		// interior transit, between ASes of comparable rank.
		if peak[k] && !interior[k] && ratioWithin(tdeg[k.a], tdeg[k.b], p.PeerRatio) {
			mustAdd(g.AddPeer(k.a, k.b))
			continue
		}
		switch {
		case ca > 0 && cb > 0 &&
			float64(maxInt(ca, cb)) <= p.SiblingFactor*float64(minInt(ca, cb)):
			mustAdd(g.AddSibling(k.a, k.b))
		case ca > cb:
			mustAdd(g.AddProviderCustomer(k.a, k.b))
		case cb > ca:
			mustAdd(g.AddProviderCustomer(k.b, k.a))
		default: // ca == cb (both zero is impossible: every edge got a vote)
			if outranks(k.a, k.b) {
				mustAdd(g.AddProviderCustomer(k.a, k.b))
			} else {
				mustAdd(g.AddProviderCustomer(k.b, k.a))
			}
		}
	}
	return &Output{Algorithm: "rank", Graph: g, Degrees: degrees}, nil
}

// ratioWithin reports whether the larger of (a+1, b+1) is within factor
// r of the smaller — +1 keeps stub ASes (transit degree 0) comparable.
func ratioWithin(a, b int, r float64) bool {
	hi, lo := float64(a+1), float64(b+1)
	if hi < lo {
		hi, lo = lo, hi
	}
	return hi <= r*lo
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func mustAdd(err error) {
	if err != nil {
		// Classification assigns each edge exactly once; a conflict is a
		// bug in this package, not bad input.
		panic(err)
	}
}

func init() {
	Default.MustRegister(Algorithm[Input]{
		Name:      "rank",
		Title:     "Transit-degree ranking with peering refinement (Dimitropoulos et al.)",
		NewParams: func() any { return defaultRankParams() },
		Run:       runRank,
	})
}
