package infer_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math"
	"reflect"
	"testing"

	"github.com/policyscope/policyscope/infer"
	"github.com/policyscope/policyscope/internal/asgraph"
	"github.com/policyscope/policyscope/internal/bgp"
	"github.com/policyscope/policyscope/internal/gaorelation"
)

// testInput is a small two-tier hierarchy observed from two vantage
// stubs: 1 and 2 are the tier-1 clique, {3,4} home to 1, {5,6} home to
// 2, and 7 dual-homes to 3 and 5.
func testInput() infer.Input {
	paths := []bgp.Path{
		{3, 1, 4}, {3, 1, 2, 5}, {3, 1, 2, 6}, {3, 7}, {3, 1}, {3, 1, 2},
		{3, 7}, // duplicates are fine: collectors repeat per prefix
		{5, 2, 6}, {5, 2, 1, 3}, {5, 2, 1, 4}, {5, 7}, {5, 2}, {5, 2, 1},
		{5, 2, 1, 1, 3}, // prepending collapses
	}
	return infer.Input{Paths: paths, VantagePoints: []bgp.ASN{3, 5}}
}

func TestCatalog(t *testing.T) {
	names := infer.Default.Names()
	want := []string{"gao", "pari", "rank"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("catalog names = %v, want %v", names, want)
	}
	for _, info := range infer.Default.Infos() {
		if info.Title == "" || info.Params == nil {
			t.Fatalf("algorithm %s: incomplete info %+v", info.Name, info)
		}
		if info.Probabilistic != (info.Name == "pari") {
			t.Fatalf("algorithm %s: probabilistic = %v", info.Name, info.Probabilistic)
		}
	}
}

func TestErrors(t *testing.T) {
	ctx := context.Background()
	in := testInput()
	var nf *infer.NotFoundError
	if _, err := infer.Default.RunJSON(ctx, in, "nope", nil); !errors.As(err, &nf) || nf.Name != "nope" {
		t.Fatalf("unknown algorithm: got %v, want NotFoundError", err)
	}
	var pe *infer.ParamError
	if _, err := infer.Default.RunJSON(ctx, in, "gao", []byte(`{"bogus":1}`)); !errors.As(err, &pe) {
		t.Fatalf("unknown JSON field: got %v, want ParamError", err)
	}
	if _, err := infer.Default.RunKV(ctx, in, "rank", []string{"bogus=1"}); !errors.As(err, &pe) {
		t.Fatalf("unknown KV key: got %v, want ParamError", err)
	}
	if _, err := infer.Default.RunKV(ctx, in, "rank", []string{"peer_ratio"}); !errors.As(err, &pe) {
		t.Fatalf("missing '=': got %v, want ParamError", err)
	}
}

func serializeGraph(t *testing.T, g *asgraph.Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestAlgorithmsCoverObservedEdges: every algorithm annotates exactly
// the observed adjacencies, deterministically across runs.
func TestAlgorithmsCoverObservedEdges(t *testing.T) {
	ctx := context.Background()
	in := testInput()
	wantEdges := map[[2]bgp.ASN]bool{
		{1, 2}: true, {1, 3}: true, {1, 4}: true, {2, 5}: true,
		{2, 6}: true, {3, 7}: true, {5, 7}: true,
	}
	for _, name := range infer.Default.Names() {
		out, err := infer.Default.RunJSON(ctx, in, name, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if out.Algorithm != name {
			t.Fatalf("%s: output labelled %q", name, out.Algorithm)
		}
		edges := out.Graph.Edges()
		if len(edges) != len(wantEdges) {
			t.Fatalf("%s: inferred %d edges, want %d (%v)", name, len(edges), len(wantEdges), edges)
		}
		for _, e := range edges {
			if !wantEdges[[2]bgp.ASN{e.A, e.B}] {
				t.Fatalf("%s: unexpected edge %v-%v", name, e.A, e.B)
			}
		}
		if got := out.Degrees[1]; got != 3 {
			t.Fatalf("%s: degree(AS1) = %d, want 3", name, got)
		}
		again, err := infer.Default.RunJSON(ctx, in, name, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(serializeGraph(t, out.Graph), serializeGraph(t, again.Graph)) {
			t.Fatalf("%s: two runs disagree", name)
		}
	}
}

// TestGaoAdapterMatchesDirectCall: the registry adapter is the same
// computation as calling internal/gaorelation directly.
func TestGaoAdapterMatchesDirectCall(t *testing.T) {
	in := testInput()
	out, err := infer.Default.RunKV(context.Background(), in, "gao", []string{"l=2"})
	if err != nil {
		t.Fatal(err)
	}
	opts := gaorelation.DefaultOptions()
	opts.L = 2
	opts.VantagePoints = in.VantagePoints
	direct := gaorelation.Infer(in.Paths, opts)
	if !bytes.Equal(serializeGraph(t, out.Graph), serializeGraph(t, direct.Graph)) {
		t.Fatal("gao adapter output differs from direct gaorelation call")
	}
	if !reflect.DeepEqual(out.Degrees, direct.Degrees) {
		t.Fatal("gao adapter degrees differ from direct call")
	}
}

func TestPariPosterior(t *testing.T) {
	out, err := infer.Default.RunJSON(context.Background(), testInput(), "pari", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Posterior) != out.Graph.NumEdges() {
		t.Fatalf("posterior has %d entries, graph %d edges", len(out.Posterior), out.Graph.NumEdges())
	}
	mapGraph := asgraph.New()
	for i, ep := range out.Posterior {
		if ep.A >= ep.B {
			t.Fatalf("posterior %d: not canonical: %d|%d", i, ep.A, ep.B)
		}
		if i > 0 {
			prev := out.Posterior[i-1]
			if prev.A > ep.A || (prev.A == ep.A && prev.B >= ep.B) {
				t.Fatalf("posterior not sorted at %d", i)
			}
		}
		sum := ep.P2C + ep.C2P + ep.P2P + ep.Sibling
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("posterior %d|%d sums to %v", ep.A, ep.B, sum)
		}
		switch ep.MAP() {
		case infer.ClassP2C:
			if err := mapGraph.AddProviderCustomer(ep.A, ep.B); err != nil {
				t.Fatal(err)
			}
		case infer.ClassC2P:
			if err := mapGraph.AddProviderCustomer(ep.B, ep.A); err != nil {
				t.Fatal(err)
			}
		case infer.ClassP2P:
			if err := mapGraph.AddPeer(ep.A, ep.B); err != nil {
				t.Fatal(err)
			}
		case infer.ClassSibling:
			if err := mapGraph.AddSibling(ep.A, ep.B); err != nil {
				t.Fatal(err)
			}
		}
	}
	if !bytes.Equal(serializeGraph(t, out.Graph), serializeGraph(t, mapGraph)) {
		t.Fatal("Output.Graph is not the MAP of the posterior")
	}
	// Posterior JSON is deterministic across runs.
	j1, err := json.Marshal(out.Posterior)
	if err != nil {
		t.Fatal(err)
	}
	again, err := infer.Default.RunJSON(context.Background(), testInput(), "pari", nil)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := json.Marshal(again.Posterior)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Fatal("posterior JSON not deterministic")
	}
}

func TestSampleEnsembleDeterminism(t *testing.T) {
	out, err := infer.Default.RunJSON(context.Background(), testInput(), "pari", nil)
	if err != nil {
		t.Fatal(err)
	}
	e5 := infer.SampleEnsemble(out.Posterior, 7, 5)
	e5b := infer.SampleEnsemble(out.Posterior, 7, 5)
	e8 := infer.SampleEnsemble(out.Posterior, 7, 8)
	for i := range e5 {
		if g := serializeGraph(t, e5[i]); !bytes.Equal(g, serializeGraph(t, e5b[i])) {
			t.Fatalf("sample %d not deterministic", i)
		} else if !bytes.Equal(g, serializeGraph(t, e8[i])) {
			t.Fatalf("sample %d depends on ensemble size", i)
		}
		if e5[i].NumEdges() != len(out.Posterior) {
			t.Fatalf("sample %d has %d edges, want %d", i, e5[i].NumEdges(), len(out.Posterior))
		}
	}
	if bytes.Equal(serializeGraph(t, infer.SamplePosterior(out.Posterior, 1)),
		serializeGraph(t, infer.SamplePosterior(out.Posterior, 2))) {
		// Not fatal in principle, but with 7 edges of spread-out
		// posterior two seeds colliding exactly signals a broken rng.
		t.Log("warning: two adjacent seeds drew identical samples")
	}
}

func TestScore(t *testing.T) {
	truth := asgraph.New()
	mustOK(t, truth.AddProviderCustomer(1, 3)) // inferred correctly
	mustOK(t, truth.AddProviderCustomer(1, 4)) // inferred with flipped orientation
	mustOK(t, truth.AddPeer(1, 2))             // inferred as p2c
	mustOK(t, truth.AddSibling(5, 6))          // missed entirely
	inferred := asgraph.New()
	mustOK(t, inferred.AddProviderCustomer(1, 3))
	mustOK(t, inferred.AddProviderCustomer(4, 1))
	mustOK(t, inferred.AddProviderCustomer(1, 2))
	mustOK(t, inferred.AddPeer(7, 8)) // spurious
	sc := infer.Score(inferred, truth)
	if sc.SharedEdges != 3 || sc.Correct != 1 || sc.MissedEdges != 1 || sc.SpuriousEdges != 1 {
		t.Fatalf("scorecard %+v", sc)
	}
	if math.Abs(sc.Accuracy-1.0/3.0) > 1e-12 {
		t.Fatalf("accuracy = %v", sc.Accuracy)
	}
	p2c := sc.ByClass["p2c"]
	if p2c.Truth != 2 || p2c.Inferred != 3 || p2c.Correct != 1 {
		t.Fatalf("p2c class %+v", p2c)
	}
	if math.Abs(p2c.Precision-1.0/3.0) > 1e-12 || math.Abs(p2c.Recall-0.5) > 1e-12 {
		t.Fatalf("p2c precision/recall %+v", p2c)
	}
	p2p := sc.ByClass["p2p"]
	if p2p.Truth != 1 || p2p.Inferred != 0 || p2p.Recall != 0 {
		t.Fatalf("p2p class %+v", p2p)
	}
}

func TestAgree(t *testing.T) {
	a := asgraph.New()
	mustOK(t, a.AddProviderCustomer(1, 3))
	mustOK(t, a.AddPeer(1, 2))
	mustOK(t, a.AddPeer(4, 5))
	b := asgraph.New()
	mustOK(t, b.AddProviderCustomer(1, 3))
	mustOK(t, b.AddProviderCustomer(1, 2))
	mustOK(t, b.AddSibling(6, 7))
	ag := infer.Agree(a, b)
	if ag.SharedEdges != 2 || ag.Agree != 1 || ag.OnlyA != 1 || ag.OnlyB != 1 {
		t.Fatalf("agreement %+v", ag)
	}
	if math.Abs(ag.Fraction-0.5) > 1e-12 {
		t.Fatalf("fraction = %v", ag.Fraction)
	}
}

func mustOK(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
