package infer

import (
	"context"

	"github.com/policyscope/policyscope/internal/gaorelation"
)

// GaoParams tunes the Gao adapter. The fields mirror
// gaorelation.Options; vantage points come from the Input, not params.
type GaoParams struct {
	// L is the misconfiguration-smoothing threshold (default 1).
	L int `json:"l"`
	// DegreeRatio bounds peer degree dissimilarity (default 60).
	DegreeRatio float64 `json:"degree_ratio"`
}

func defaultGaoParams() *GaoParams {
	o := gaorelation.DefaultOptions()
	return &GaoParams{L: o.L, DegreeRatio: o.DegreeRatio}
}

// runGao adapts internal/gaorelation: identical options in, the very
// same Inference out, so the adapter is byte-identical to the legacy
// direct call (proven by TestGaoAdapterByteIdentical).
func runGao(_ context.Context, in Input, params any) (*Output, error) {
	p := params.(*GaoParams)
	inf := gaorelation.Infer(in.Paths, gaorelation.Options{
		L:             p.L,
		DegreeRatio:   p.DegreeRatio,
		VantagePoints: in.VantagePoints,
	})
	return &Output{Algorithm: "gao", Graph: inf.Graph, Degrees: inf.Degrees}, nil
}

func init() {
	Default.MustRegister(Algorithm[Input]{
		Name:      "gao",
		Title:     "Gao degree/transit inference (ToN 2001) — the paper's choice",
		NewParams: func() any { return defaultGaoParams() },
		Run:       runGao,
	})
}
