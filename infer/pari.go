package infer

import (
	"context"
	"fmt"
	"math/rand"

	"github.com/policyscope/policyscope/internal/asgraph"
	"github.com/policyscope/policyscope/internal/bgp"
)

// The pari algorithm is probabilistic inference in the spirit of Feng
// et al., "PARI: A Probabilistic Approach to AS Relationships
// Inference": instead of committing to one annotation per edge, it
// accumulates directional-transit and peak-adjacency evidence and
// reports a per-edge posterior over the four relationship classes
// under a symmetric Dirichlet prior. The point estimate (Output.Graph)
// is the maximum a posteriori class per edge; SampleEnsemble draws
// concrete annotated graphs from the posterior for ensemble runs.

// Class indexes the four relationship classes of an edge posterior,
// always stated for the canonical orientation A < B.
type Class int

// Class values, in the fixed sampling/tie-break order.
const (
	// ClassP2C: A is B's provider.
	ClassP2C Class = iota
	// ClassC2P: B is A's provider.
	ClassC2P
	// ClassP2P: peer-to-peer.
	ClassP2P
	// ClassSibling: mutual transit, same organization.
	ClassSibling
	numClasses
)

func (c Class) String() string {
	switch c {
	case ClassP2C:
		return "p2c"
	case ClassC2P:
		return "c2p"
	case ClassP2P:
		return "p2p"
	case ClassSibling:
		return "sibling"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// EdgePosterior is one edge's class distribution (A < B; the four
// probabilities sum to 1).
type EdgePosterior struct {
	A       bgp.ASN `json:"a"`
	B       bgp.ASN `json:"b"`
	P2C     float64 `json:"p2c"`
	C2P     float64 `json:"c2p"`
	P2P     float64 `json:"p2p"`
	Sibling float64 `json:"sibling"`
}

// P returns the probability of class c.
func (ep EdgePosterior) P(c Class) float64 {
	switch c {
	case ClassP2C:
		return ep.P2C
	case ClassC2P:
		return ep.C2P
	case ClassP2P:
		return ep.P2P
	case ClassSibling:
		return ep.Sibling
	}
	return 0
}

// MAP returns the maximum-a-posteriori class, ties broken by the fixed
// class order (so the point estimate is deterministic).
func (ep EdgePosterior) MAP() Class {
	best, bestP := ClassP2C, ep.P2C
	for c := ClassC2P; c < numClasses; c++ {
		if p := ep.P(c); p > bestP {
			best, bestP = c, p
		}
	}
	return best
}

// addClassEdge installs class c for the canonical pair (a < b) into g.
func addClassEdge(g *asgraph.Graph, ep EdgePosterior, c Class) {
	a, b := ep.A, ep.B
	switch c {
	case ClassP2C:
		mustAdd(g.AddProviderCustomer(a, b))
	case ClassC2P:
		mustAdd(g.AddProviderCustomer(b, a))
	case ClassP2P:
		mustAdd(g.AddPeer(a, b))
	case ClassSibling:
		mustAdd(g.AddSibling(a, b))
	}
}

// PariParams tunes the probabilistic inference.
type PariParams struct {
	// Smoothing is the symmetric Dirichlet pseudo-count added to every
	// class before normalizing (default 0.5). Larger values flatten
	// the posterior; 0 keeps it but is clamped to a small epsilon so
	// every class stays sampleable.
	Smoothing float64 `json:"smoothing"`
	// PeerWeight scales peak-adjacency evidence against directional
	// transit evidence (default 2).
	PeerWeight float64 `json:"peer_weight"`
}

func defaultPariParams() *PariParams {
	return &PariParams{Smoothing: 0.5, PeerWeight: 2}
}

func (p *PariParams) withDefaults() PariParams {
	q := *p
	if q.Smoothing <= 0 {
		q.Smoothing = 1e-6
	}
	if q.PeerWeight <= 0 {
		q.PeerWeight = 2
	}
	return q
}

func runPari(_ context.Context, in Input, params any) (*Output, error) {
	p := params.(*PariParams).withDefaults()
	paths := cleanPaths(in.Paths)
	degrees := observedDegrees(paths)
	tdeg := transitDegrees(paths)

	// Evidence accumulation mirrors the rank orientation pass, but
	// instead of committing per edge it keeps all three signals:
	// directional transit counts in both directions and peak-adjacency
	// occurrences.
	type evidence struct {
		aProvides float64 // a observed providing for b
		bProvides float64
		peerish   float64 // observed adjacent to a path peak
	}
	ev := make(map[edgeKey]*evidence)
	at := func(k edgeKey) *evidence {
		e := ev[k]
		if e == nil {
			e = &evidence{}
			ev[k] = e
		}
		return e
	}
	for _, path := range paths {
		j := 0
		for i := 1; i < len(path); i++ {
			x, y := path[i], path[j]
			if tdeg[x] != tdeg[y] {
				if tdeg[x] > tdeg[y] {
					j = i
				}
			} else if degrees[x] > degrees[y] || (degrees[x] == degrees[y] && x < y) {
				j = i
			}
		}
		for i := 0; i+1 < len(path); i++ {
			k := ekey(path[i], path[i+1])
			e := at(k)
			var provider = path[i]
			if i+1 <= j {
				provider = path[i+1] // uphill
			}
			if provider == k.a {
				e.aProvides++
			} else {
				e.bProvides++
			}
			if i+1 == j || i == j {
				e.peerish++
			}
		}
	}

	posterior := make([]EdgePosterior, 0, len(ev))
	g := asgraph.New()
	for _, k := range sortedEdgeKeys(ev) {
		e := ev[k]
		// Class scores: directional evidence feeds p2c/c2p, mutual
		// evidence feeds sibling, peak adjacency feeds p2p.
		mutual := e.aProvides
		if e.bProvides < mutual {
			mutual = e.bProvides
		}
		scores := [numClasses]float64{
			ClassP2C:     e.aProvides,
			ClassC2P:     e.bProvides,
			ClassP2P:     p.PeerWeight * e.peerish,
			ClassSibling: 2 * mutual,
		}
		var total float64
		for c := range scores {
			scores[c] += p.Smoothing
			total += scores[c]
		}
		ep := EdgePosterior{
			A:       k.a,
			B:       k.b,
			P2C:     scores[ClassP2C] / total,
			C2P:     scores[ClassC2P] / total,
			P2P:     scores[ClassP2P] / total,
			Sibling: scores[ClassSibling] / total,
		}
		posterior = append(posterior, ep)
		addClassEdge(g, ep, ep.MAP())
	}
	return &Output{Algorithm: "pari", Graph: g, Degrees: degrees, Posterior: posterior}, nil
}

// SamplePosterior draws one concrete annotated graph from the
// posterior, deterministically in (posterior, seed): edges are visited
// in slice order and each class is drawn by inverse-CDF walk in the
// fixed class order.
func SamplePosterior(posterior []EdgePosterior, seed int64) *asgraph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := asgraph.New()
	for _, ep := range posterior {
		u := rng.Float64()
		c := ClassSibling // fallback absorbs float residue
		for cand := ClassP2C; cand < numClasses; cand++ {
			if u < ep.P(cand) {
				c = cand
				break
			}
			u -= ep.P(cand)
		}
		addClassEdge(g, ep, c)
	}
	return g
}

// SampleEnsemble draws k graphs. Sample i uses seed+i, so sample
// identity is independent of k: growing the ensemble extends it
// without redrawing the prefix.
func SampleEnsemble(posterior []EdgePosterior, seed int64, k int) []*asgraph.Graph {
	out := make([]*asgraph.Graph, k)
	for i := range out {
		out[i] = SamplePosterior(posterior, seed+int64(i))
	}
	return out
}

func init() {
	Default.MustRegister(Algorithm[Input]{
		Name:          "pari",
		Title:         "Probabilistic per-edge posterior (PARI, Feng et al.)",
		Probabilistic: true,
		NewParams:     func() any { return defaultPariParams() },
		Run:           runPari,
	})
}
