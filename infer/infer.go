// Package infer is a typed catalog of named AS-relationship inference
// algorithms — the bakeoff counterpart to the experiment registry. The
// paper commits to a single algorithm ("we choose the one described in
// [12]" — Gao); this package makes that choice a parameter. Each
// algorithm registers under a stable name with a typed parameter
// struct (decodable from strict JSON or key=value flags) and produces
// a deterministic Output: an annotated graph, observed degrees, and —
// for probabilistic algorithms — a per-edge posterior over the four
// relationship classes.
//
// The registry is generic over the input type (policyscope
// instantiates it with Input: observed AS paths plus the collector's
// vantage points), mirroring experiment.Registry's shape so every
// serving surface (HTTP, CLI, experiments) drives algorithms the same
// way it drives queries.
package infer

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"github.com/policyscope/policyscope/experiment"
	"github.com/policyscope/policyscope/internal/asgraph"
	"github.com/policyscope/policyscope/internal/bgp"
)

// Input is what every registered algorithm consumes: the observed
// paths (deduplicated, prepending intact) and the vantage ASes whose
// tables contributed them.
type Input struct {
	// Paths are the observed AS paths.
	Paths []bgp.Path
	// VantagePoints lists the collector's peer ASes.
	VantagePoints []bgp.ASN
}

// Output is one algorithm's inference. All fields are deterministic in
// (Input, params): graphs enumerate edges in canonical order and the
// posterior slice is sorted by (A, B).
type Output struct {
	// Algorithm is the registry name that produced this output.
	Algorithm string
	// Graph is the inferred annotated AS graph (for probabilistic
	// algorithms, the maximum-a-posteriori point estimate).
	Graph *asgraph.Graph
	// Degrees is the observed degree of every AS in the path set.
	Degrees map[bgp.ASN]int
	// Posterior is the per-edge class distribution, nil for
	// point-estimate algorithms.
	Posterior []EdgePosterior
}

// Algorithm is one catalog entry, generic over the input type I.
type Algorithm[I any] struct {
	// Name is the stable registry key ("gao", "rank", "pari").
	Name string
	// Title is the human-readable headline (paper lineage).
	Title string
	// Probabilistic marks algorithms whose Output carries a Posterior.
	Probabilistic bool
	// NewParams returns a pointer to a freshly allocated parameter
	// struct carrying the algorithm's defaults, or nil when the
	// algorithm takes no parameters.
	NewParams func() any
	// Run executes the inference. params is either nil (defaults) or a
	// pointer of the type NewParams returns.
	Run func(ctx context.Context, in I, params any) (*Output, error)
}

// Info is the serializable catalog row.
type Info struct {
	Name          string `json:"name"`
	Title         string `json:"title"`
	Probabilistic bool   `json:"probabilistic,omitempty"`
	Params        any    `json:"params,omitempty"` // default parameter values
}

// Registry holds the algorithm catalog. The zero value is not usable;
// call NewRegistry.
type Registry[I any] struct {
	mu     sync.RWMutex
	byName map[string]*Algorithm[I]
}

// NewRegistry returns an empty registry.
func NewRegistry[I any]() *Registry[I] {
	return &Registry[I]{byName: make(map[string]*Algorithm[I])}
}

// MustRegister adds an algorithm, panicking on an empty name, a
// duplicate, or a missing Run function — registration happens at init
// time, where a panic is a build error.
func (r *Registry[I]) MustRegister(a Algorithm[I]) {
	if a.Name == "" {
		panic("infer: registering with empty name")
	}
	if a.Run == nil {
		panic("infer: " + a.Name + " has no Run function")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[a.Name]; dup {
		panic("infer: duplicate registration of " + a.Name)
	}
	r.byName[a.Name] = &a
}

// Get returns the algorithm registered under name.
func (r *Registry[I]) Get(name string) (*Algorithm[I], bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	a, ok := r.byName[name]
	return a, ok
}

// All returns every algorithm in name order.
func (r *Registry[I]) All() []*Algorithm[I] {
	r.mu.RLock()
	out := make([]*Algorithm[I], 0, len(r.byName))
	for _, a := range r.byName {
		out = append(out, a)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Names returns every registered name in catalog order.
func (r *Registry[I]) Names() []string {
	all := r.All()
	out := make([]string, len(all))
	for i, a := range all {
		out[i] = a.Name
	}
	return out
}

// Infos returns the serializable catalog with default parameters.
func (r *Registry[I]) Infos() []Info {
	all := r.All()
	out := make([]Info, len(all))
	for i, a := range all {
		out[i] = Info{Name: a.Name, Title: a.Title, Probabilistic: a.Probabilistic}
		if a.NewParams != nil {
			out[i].Params = a.NewParams()
		}
	}
	return out
}

// NotFoundError reports a name with no registration.
type NotFoundError struct{ Name string }

func (e *NotFoundError) Error() string {
	return fmt.Sprintf("infer: unknown algorithm %q", e.Name)
}

// ParamError reports unusable parameters (bad JSON, unknown field...).
type ParamError struct {
	Name string
	Err  error
}

func (e *ParamError) Error() string {
	return fmt.Sprintf("infer %s: bad params: %v", e.Name, e.Err)
}

func (e *ParamError) Unwrap() error { return e.Err }

// DecodeJSON resolves the named algorithm and decodes raw strictly into
// its parameter struct without running anything — the fail-fast
// validation servers perform before paying for a dataset, and the
// canonical-params hook Session memoization keys on. Empty raw keeps
// the defaults.
func (r *Registry[I]) DecodeJSON(name string, raw []byte) (any, error) {
	a, ok := r.Get(name)
	if !ok {
		return nil, &NotFoundError{Name: name}
	}
	return a.decodeJSON(raw)
}

// DecodeKV is DecodeJSON for key=value overrides (the CLI flag form).
func (r *Registry[I]) DecodeKV(name string, kv []string) (any, error) {
	a, ok := r.Get(name)
	if !ok {
		return nil, &NotFoundError{Name: name}
	}
	return a.decodeKV(kv)
}

func (a *Algorithm[I]) decodeJSON(raw []byte) (any, error) {
	var params any
	if a.NewParams != nil {
		params = a.NewParams()
		if len(trimJSON(raw)) > 0 {
			if err := experiment.DecodeJSON(params, raw); err != nil {
				return nil, &ParamError{Name: a.Name, Err: err}
			}
		}
	} else if s := string(trimJSON(raw)); s != "" && s != "null" && s != "{}" {
		return nil, &ParamError{Name: a.Name, Err: fmt.Errorf("algorithm takes no parameters")}
	}
	return params, nil
}

func (a *Algorithm[I]) decodeKV(kv []string) (any, error) {
	var params any
	if a.NewParams != nil {
		params = a.NewParams()
	}
	if len(kv) > 0 {
		if params == nil {
			return nil, &ParamError{Name: a.Name, Err: fmt.Errorf("algorithm takes no parameters")}
		}
		for _, pair := range kv {
			key, value, found := cutKV(pair)
			if !found {
				return nil, &ParamError{Name: a.Name, Err: fmt.Errorf("want key=value, got %q", pair)}
			}
			if err := experiment.Set(params, key, value); err != nil {
				return nil, &ParamError{Name: a.Name, Err: err}
			}
		}
	}
	return params, nil
}

// RunJSON runs the named algorithm with parameters decoded strictly
// from raw (empty raw keeps the defaults).
func (r *Registry[I]) RunJSON(ctx context.Context, in I, name string, raw []byte) (*Output, error) {
	a, ok := r.Get(name)
	if !ok {
		return nil, &NotFoundError{Name: name}
	}
	params, err := a.decodeJSON(raw)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return a.Run(ctx, in, params)
}

// RunKV runs the named algorithm with key=value parameter overrides.
func (r *Registry[I]) RunKV(ctx context.Context, in I, name string, kv []string) (*Output, error) {
	a, ok := r.Get(name)
	if !ok {
		return nil, &NotFoundError{Name: name}
	}
	params, err := a.decodeKV(kv)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return a.Run(ctx, in, params)
}

// Run runs the named algorithm with an already-decoded params value
// (nil for defaults) — the path Session memoization uses after
// canonicalizing params through DecodeJSON.
func (r *Registry[I]) Run(ctx context.Context, in I, name string, params any) (*Output, error) {
	a, ok := r.Get(name)
	if !ok {
		return nil, &NotFoundError{Name: name}
	}
	if params == nil && a.NewParams != nil {
		params = a.NewParams()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return a.Run(ctx, in, params)
}

func trimJSON(raw []byte) []byte {
	start, end := 0, len(raw)
	for start < end && isSpace(raw[start]) {
		start++
	}
	for end > start && isSpace(raw[end-1]) {
		end--
	}
	return raw[start:end]
}

func isSpace(b byte) bool { return b == ' ' || b == '\t' || b == '\n' || b == '\r' }

func cutKV(pair string) (key, value string, found bool) {
	for i := 0; i < len(pair); i++ {
		if pair[i] == '=' {
			return pair[:i], pair[i+1:], true
		}
	}
	return pair, "", false
}

// Default is the process-wide catalog the built-in algorithms register
// into; policyscope's Session, the HTTP server, and cmd/inferrel all
// resolve names against it.
var Default = NewRegistry[Input]()

// shared path preprocessing --------------------------------------------

// collapse removes consecutive duplicates (AS-path prepending).
func collapse(p bgp.Path) bgp.Path {
	if len(p) == 0 {
		return nil
	}
	out := bgp.Path{p[0]}
	for _, a := range p[1:] {
		if a != out[len(out)-1] {
			out = append(out, a)
		}
	}
	return out
}

// cleanPaths collapses prepending and drops paths shorter than two hops.
func cleanPaths(paths []bgp.Path) []bgp.Path {
	out := make([]bgp.Path, 0, len(paths))
	for _, p := range paths {
		if c := collapse(p); len(c) >= 2 {
			out = append(out, c)
		}
	}
	return out
}

// observedDegrees counts each AS's distinct neighbors across the
// (already cleaned) path set.
func observedDegrees(paths []bgp.Path) map[bgp.ASN]int {
	sets := make(map[bgp.ASN]map[bgp.ASN]bool)
	add := func(a, b bgp.ASN) {
		if sets[a] == nil {
			sets[a] = make(map[bgp.ASN]bool)
		}
		sets[a][b] = true
	}
	for _, p := range paths {
		for i := 0; i+1 < len(p); i++ {
			add(p[i], p[i+1])
			add(p[i+1], p[i])
		}
	}
	degrees := make(map[bgp.ASN]int, len(sets))
	for asn, set := range sets {
		degrees[asn] = len(set)
	}
	return degrees
}

// transitDegrees counts, for every AS, the distinct neighbors it is
// observed forwarding between (the Dimitropoulos et al. ranking
// metric): an AS in the interior of a path transits for both the hop
// before and the hop after it.
func transitDegrees(paths []bgp.Path) map[bgp.ASN]int {
	sets := make(map[bgp.ASN]map[bgp.ASN]bool)
	for _, p := range paths {
		for i := 1; i+1 < len(p); i++ {
			if sets[p[i]] == nil {
				sets[p[i]] = make(map[bgp.ASN]bool)
			}
			sets[p[i]][p[i-1]] = true
			sets[p[i]][p[i+1]] = true
		}
	}
	out := make(map[bgp.ASN]int, len(sets))
	for asn, set := range sets {
		out[asn] = len(set)
	}
	return out
}

type edgeKey struct{ a, b bgp.ASN } // a < b

func ekey(x, y bgp.ASN) edgeKey {
	if x < y {
		return edgeKey{x, y}
	}
	return edgeKey{y, x}
}

func sortedEdgeKeys[V any](m map[edgeKey]V) []edgeKey {
	keys := make([]edgeKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].a != keys[j].a {
			return keys[i].a < keys[j].a
		}
		return keys[i].b < keys[j].b
	})
	return keys
}
