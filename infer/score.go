package infer

import (
	"github.com/policyscope/policyscope/internal/asgraph"
)

// Scoring: accuracy/precision/recall against ground truth when it
// exists (the quantity the paper bounds in Section 4.3 / Table 4), and
// pairwise agreement between algorithms when it does not (MRT imports
// carry no annotated graph to score against).

// ClassScore is one relationship class's confusion summary. The p2c
// class covers provider-customer edges in either orientation; an edge
// inferred provider-customer with the orientation reversed counts as
// inferred-but-incorrect.
type ClassScore struct {
	// Truth counts shared edges whose true class this is.
	Truth int `json:"truth"`
	// Inferred counts shared edges the algorithm assigned this class.
	Inferred int `json:"inferred"`
	// Correct counts exact matches (orientation included).
	Correct   int     `json:"correct"`
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
}

// classKeys is the fixed reporting order of scorecard classes.
var classKeys = []string{"p2c", "p2p", "sibling"}

// classOf buckets an exact edge relationship into its scorecard class.
func classOf(rel asgraph.Relationship) string {
	switch rel {
	case asgraph.RelProvider, asgraph.RelCustomer:
		return "p2c"
	case asgraph.RelPeer:
		return "p2p"
	case asgraph.RelSibling:
		return "sibling"
	}
	return "none"
}

// Scorecard summarizes one inferred graph against ground truth.
type Scorecard struct {
	// SharedEdges counts edges present in both graphs.
	SharedEdges int `json:"shared_edges"`
	// Correct counts shared edges with the exact relationship
	// (orientation included).
	Correct int `json:"correct"`
	// Accuracy is Correct/SharedEdges (0 when nothing is comparable).
	Accuracy float64 `json:"accuracy"`
	// MissedEdges counts truth edges absent from the inferred graph.
	MissedEdges int `json:"missed_edges"`
	// SpuriousEdges counts inferred edges absent from the truth.
	SpuriousEdges int `json:"spurious_edges"`
	// ByClass keys per-class scores by "p2c", "p2p", "sibling".
	ByClass map[string]ClassScore `json:"by_class"`
}

// Score compares an inferred graph against ground truth over the edges
// both graphs contain.
func Score(inferred, truth *asgraph.Graph) *Scorecard {
	sc := &Scorecard{ByClass: make(map[string]ClassScore, len(classKeys))}
	for _, key := range classKeys {
		sc.ByClass[key] = ClassScore{}
	}
	for _, e := range truth.Edges() {
		iRel := inferred.Rel(e.A, e.B)
		if iRel == asgraph.RelNone {
			sc.MissedEdges++
			continue
		}
		sc.SharedEdges++
		tKey, iKey := classOf(e.Rel), classOf(iRel)
		tc := sc.ByClass[tKey]
		tc.Truth++
		sc.ByClass[tKey] = tc
		ic := sc.ByClass[iKey]
		ic.Inferred++
		if iRel == e.Rel {
			sc.Correct++
			ic.Correct++
		}
		sc.ByClass[iKey] = ic
	}
	for _, e := range inferred.Edges() {
		if truth.Rel(e.A, e.B) == asgraph.RelNone {
			sc.SpuriousEdges++
		}
	}
	if sc.SharedEdges > 0 {
		sc.Accuracy = float64(sc.Correct) / float64(sc.SharedEdges)
	}
	for key, cs := range sc.ByClass {
		if cs.Inferred > 0 {
			cs.Precision = float64(cs.Correct) / float64(cs.Inferred)
		}
		if cs.Truth > 0 {
			cs.Recall = float64(cs.Correct) / float64(cs.Truth)
		}
		sc.ByClass[key] = cs
	}
	return sc
}

// Agreement summarizes how two inferred graphs compare when no ground
// truth exists to arbitrate.
type Agreement struct {
	// SharedEdges counts edges both graphs contain.
	SharedEdges int `json:"shared_edges"`
	// Agree counts shared edges with identical relationships
	// (orientation included).
	Agree int `json:"agree"`
	// Fraction is Agree/SharedEdges (0 when nothing is comparable).
	Fraction float64 `json:"fraction"`
	// OnlyA / OnlyB count edges exclusive to one graph.
	OnlyA int `json:"only_a"`
	OnlyB int `json:"only_b"`
}

// Agree compares two inferred graphs edge by edge.
func Agree(a, b *asgraph.Graph) Agreement {
	var ag Agreement
	for _, e := range a.Edges() {
		bRel := b.Rel(e.A, e.B)
		if bRel == asgraph.RelNone {
			ag.OnlyA++
			continue
		}
		ag.SharedEdges++
		if bRel == e.Rel {
			ag.Agree++
		}
	}
	for _, e := range b.Edges() {
		if a.Rel(e.A, e.B) == asgraph.RelNone {
			ag.OnlyB++
		}
	}
	if ag.SharedEdges > 0 {
		ag.Fraction = float64(ag.Agree) / float64(ag.SharedEdges)
	}
	return ag
}
