package policyscope

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"strings"
	"sync"
	"testing"

	"github.com/policyscope/policyscope/internal/topogen"
)

func smallSession(t *testing.T) *Session {
	t.Helper()
	cfg := DefaultConfig()
	cfg.NumASes = 250
	cfg.Seed = 7
	cfg.CollectorPeers = 14
	cfg.LookingGlassASes = 8
	return NewSession(cfg)
}

func TestSessionCatalogCompleteness(t *testing.T) {
	names := make(map[string]bool)
	for _, info := range NewSession(DefaultConfig()).Experiments() {
		names[info.Name] = true
	}
	// Every paper table/figure plus the extensions must be runnable by
	// name.
	for _, want := range []string{
		"overview", "table1", "table2", "table3", "table4", "table5",
		"table6", "table7", "table8", "table9", "table10", "table11",
		"figure2a", "figure2b", "figure6", "figure7", "figure9",
		"case3", "atoms", "decision", "multisite", "whatif", "summary",
	} {
		if !names[want] {
			t.Errorf("experiment %q missing from catalog", want)
		}
	}
}

func TestSessionRunByName(t *testing.T) {
	se := smallSession(t)
	res, err := se.Run(context.Background(), "table5", nil)
	if err != nil {
		t.Fatal(err)
	}
	rows := res.(Table5Result).Rows
	s, err := se.Study()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(s.Peers) {
		t.Fatalf("table5 rows %d, peers %d", len(rows), len(s.Peers))
	}
	// Parameters from JSON.
	res, err = se.RunJSON(context.Background(), "table6", []byte(`{"providers": 2, "max_rows": 4, "min_prefixes": 1}`))
	if err != nil {
		t.Fatal(err)
	}
	if rows := res.(Table6Result).Rows; len(rows) > 4 {
		t.Fatalf("max_rows ignored: %d rows", len(rows))
	}
	// Parameters from key=value flags.
	res, err = se.RunKV(context.Background(), "figure9", []string{"ases=2", "max_ranks=5"})
	if err != nil {
		t.Fatal(err)
	}
	f9 := res.(Figure9Result)
	if len(f9.Series) != 2 {
		t.Fatalf("figure9 series %d", len(f9.Series))
	}
	for _, s := range f9.Series {
		if len(s.Ranks) > 5 {
			t.Fatalf("max_ranks ignored: %d", len(s.Ranks))
		}
	}
	// Unknown names and unknown params fail loudly.
	if _, err := se.Run(context.Background(), "table99", nil); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if _, err := se.RunJSON(context.Background(), "table6", []byte(`{"bogus": 1}`)); err == nil {
		t.Fatal("unknown param accepted")
	}
	// Every result renders.
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 9") {
		t.Fatalf("figure9 render: %q", buf.String())
	}
}

// TestSessionConcurrentQueries drives well over 8 concurrent queries —
// a mix of experiments and what-ifs, with deliberate duplicates so the
// lazy gates and the persistence memo are hit from multiple goroutines
// at once. Run under -race (the CI race job does).
func TestSessionConcurrentQueries(t *testing.T) {
	se := smallSession(t)
	type query struct {
		name string
		raw  string
	}
	queries := []query{
		{"overview", ""},
		{"table2", ""},
		{"table3", ""},
		{"table5", ""},
		{"table7", ""}, // shares the path index with case3
		{"case3", ""},
		{"figure2a", ""},
		{"figure2b", `{"routers": 6, "drift_routers": 1}`},
		{"atoms", ""},
		{"decision", ""},
		{"multisite", ""},
		{"figure6", `{"epochs": 3, "churn_fraction": 0.05}`},
		{"figure7", `{"epochs": 3, "churn_fraction": 0.05}`}, // same memoized series
		{"whatif", ""},
		{"whatif", `{"max_rows": 5}`},
		{"summary", ""},
	}
	var wg sync.WaitGroup
	errs := make(chan error, 2*len(queries))
	for round := 0; round < 2; round++ {
		for _, q := range queries {
			wg.Add(1)
			go func(q query) {
				defer wg.Done()
				res, err := se.RunJSON(context.Background(), q.name, []byte(q.raw))
				if err != nil {
					errs <- err
					return
				}
				if err := res.Render(io.Discard); err != nil {
					errs <- err
				}
			}(q)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// The shared study stayed on the base configuration.
	s, err := se.Study()
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Result.Unconverged) != 0 {
		t.Fatal("study state corrupted")
	}
}

// TestSessionPersistenceZeroChurn: an explicit churn_fraction of 0 is a
// no-churn control series, not a silent fall-back to the default (the
// same zero-vs-unset semantics TopologyTuning gained).
func TestSessionPersistenceZeroChurn(t *testing.T) {
	se := smallSession(t)
	res, err := se.RunJSON(context.Background(), "figure6", []byte(`{"epochs": 3, "churn_fraction": 0}`))
	if err != nil {
		t.Fatal(err)
	}
	series := res.(PersistenceChartResult).Series
	if len(series.Points) != 3 {
		t.Fatalf("points = %d", len(series.Points))
	}
	for _, p := range series.Points[1:] {
		if p.SAPrefixes != series.Points[0].SAPrefixes || p.AllPrefixes != series.Points[0].AllPrefixes {
			t.Fatalf("zero churn still churned: %+v", series.Points)
		}
	}
}

// TestSessionWhatIfMatchesStudyWhatIf proves the copy-on-write fast
// path answers scenarios identically to Study.WhatIf's
// fresh-engine-per-call baseline.
func TestSessionWhatIfMatchesStudyWhatIf(t *testing.T) {
	se := smallSession(t)
	s, err := se.Study()
	if err != nil {
		t.Fatal(err)
	}
	sc, _, _, ok := s.FailoverScenario()
	if !ok {
		t.Skip("no failover subject")
	}
	slow, err := s.WhatIf(sc)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := se.WhatIf(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	a, err := json.Marshal(slow)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(fast)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("clone-based what-if diverged:\n%s\nvs\n%s", a, b)
	}
}

// TestSweepExperiment runs the registry's sweep entry end to end: spec
// expansion, the sharded executor over session engine clones, record
// capping, rendering, and worker-count-independent JSON.
func TestSweepExperiment(t *testing.T) {
	se := smallSession(t)
	raw := `{"spec": {"generators": [{"kind": "all_single_link_failures", "max": 5}]}, "workers": 4, "max_records": 3}`
	res, err := se.RunJSON(context.Background(), "sweep", []byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	sr := res.(SweepResult)
	if sr.Aggregate.Scenarios != 5 {
		t.Fatalf("aggregate scenarios = %d", sr.Aggregate.Scenarios)
	}
	if len(sr.Records) != 3 || sr.Records[0].Index != 0 || sr.Records[2].Index != 2 {
		t.Fatalf("record cap or ordering wrong: %+v", sr.Records)
	}
	var buf bytes.Buffer
	if err := sr.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Sweep") || !strings.Contains(buf.String(), "Most critical") {
		t.Fatalf("render output %q", buf.String())
	}
	a, err := json.Marshal(sr)
	if err != nil {
		t.Fatal(err)
	}
	// A different worker count yields byte-identical results.
	res2, err := se.RunJSON(context.Background(), "sweep",
		[]byte(`{"spec": {"generators": [{"kind": "all_single_link_failures", "max": 5}]}, "workers": 1, "max_records": 3}`))
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(res2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("sweep experiment not deterministic across worker counts:\n%s\nvs\n%s", a, b)
	}
	// A bad spec surfaces as a typed parameter error.
	if _, err := se.RunJSON(context.Background(), "sweep",
		[]byte(`{"spec": {"generators": [{"kind": "nope"}]}}`)); err == nil {
		t.Fatal("bad generator accepted")
	}
}

// TestRunAllJSONDeterminism: the acceptance bar for the JSON surface —
// two independent sessions at the same seed marshal byte-identically.
func TestRunAllJSONDeterminism(t *testing.T) {
	opts := RunAllOptions{
		TierOneProviders: 3, Table6Rows: 8, Table6MinPrefixes: 2,
		DailyEpochs: 2, HourlyEpochs: 0, Routers: 6, DriftRouters: 1, Figure9ASes: 2,
	}
	marshal := func() []byte {
		t.Helper()
		doc, err := smallSession(t).RunAllJSON(context.Background(), opts)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	a, b := marshal(), marshal()
	if !bytes.Equal(a, b) {
		t.Fatal("RunAllJSON not byte-stable across identical sessions")
	}
	// The document covers the catalog (minus explicitly skipped runs).
	var doc struct {
		Experiments []struct {
			Name   string          `json:"name"`
			Result json.RawMessage `json:"result"`
		} `json:"experiments"`
	}
	if err := json.Unmarshal(a, &doc); err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	for _, e := range doc.Experiments {
		if len(e.Result) == 0 {
			t.Errorf("experiment %s has empty result", e.Name)
		}
		seen[e.Name] = true
	}
	for _, want := range []string{"overview", "table1", "table10", "figure6", "whatif", "summary"} {
		if !seen[want] {
			t.Errorf("RunAllJSON missing %s", want)
		}
	}
}

// TestSessionRunAllMatchesStudyRunAll: the registry-driven sweep renders
// through the same text path whether entered via Study or Session.
func TestSessionRunAllMatchesStudyRunAll(t *testing.T) {
	se := smallSession(t)
	s, err := se.Study()
	if err != nil {
		t.Fatal(err)
	}
	opts := RunAllOptions{
		TierOneProviders: 3, Table6Rows: 8, Table6MinPrefixes: 2,
		Routers: 6, DriftRouters: 1, Figure9ASes: 2,
	}
	var a, b bytes.Buffer
	if err := se.RunAll(context.Background(), &a, opts); err != nil {
		t.Fatal(err)
	}
	if err := s.RunAll(&b, opts); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("Session.RunAll and Study.RunAll diverge")
	}
}

func TestSessionLookingGlass(t *testing.T) {
	se := smallSession(t)
	srv, err := se.LookingGlass()
	if err != nil {
		t.Fatal(err)
	}
	ases := srv.ASes()
	s, _ := se.Study()
	if len(ases) != len(s.Peers) {
		t.Fatalf("LG vantages %d, peers %d", len(ases), len(s.Peers))
	}
	var buf bytes.Buffer
	if err := srv.Query(ases[0], "show ip bgp", &buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty looking glass output")
	}
}

// TestTuningZeroHonored is the TopologyTuning satellite: an explicit
// zero must reach the generator (the old float fields silently treated
// 0 as "keep default").
func TestTuningZeroHonored(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumASes = 120
	def := topogen.DefaultConfig(cfg.NumASes, cfg.Seed)

	// Nil tuning and nil fields keep defaults.
	if got := cfg.TopologyConfig(); got.SelectiveAnnounceProb != def.SelectiveAnnounceProb ||
		got.TaggingProb != def.TaggingProb || got.MeanPrefixesStub != def.MeanPrefixesStub {
		t.Fatalf("nil tuning changed config: %+v", got)
	}
	cfg.Tuning = &TopologyTuning{}
	if got := cfg.TopologyConfig(); got.SelectiveAnnounceProb != def.SelectiveAnnounceProb {
		t.Fatal("nil pointer did not keep default")
	}

	// Explicit zeros are applied verbatim.
	cfg.Tuning = &TopologyTuning{
		SelectiveAnnounceProb: Prob(0),
		AtypicalPrefProb:      Prob(0),
		TaggingProb:           Prob(0),
		PeerSelectiveProb:     Prob(0),
	}
	got := cfg.TopologyConfig()
	if got.SelectiveAnnounceProb != 0 || got.AtypicalPrefProb != 0 ||
		got.TaggingProb != 0 || got.PeerSelectiveProb != 0 {
		t.Fatalf("explicit zeros not honored: %+v", got)
	}
	// And non-zero overrides still work.
	cfg.Tuning = &TopologyTuning{TaggingProb: Prob(0.9), MeanPrefixesStub: Prob(1.5)}
	got = cfg.TopologyConfig()
	if got.TaggingProb != 0.9 || got.MeanPrefixesStub != 1.5 {
		t.Fatalf("overrides not applied: %+v", got)
	}

	// Behavioral proof: TaggingProb=0 yields a topology with no tagging
	// policies at all.
	cfg.Tuning = &TopologyTuning{TaggingProb: Prob(0)}
	topo, err := topogen.Generate(cfg.TopologyConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, asn := range topo.Order {
		if pol := topo.Policies[asn]; pol != nil && pol.Tagging != nil {
			t.Fatalf("AS %v deployed tagging despite TaggingProb=0", asn)
		}
	}
}
