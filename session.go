package policyscope

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"github.com/policyscope/policyscope/experiment"
	"github.com/policyscope/policyscope/infer"
	"github.com/policyscope/policyscope/internal/bgp"
	"github.com/policyscope/policyscope/internal/core"
	"github.com/policyscope/policyscope/internal/lookingglass"
	"github.com/policyscope/policyscope/internal/simulate"
	"github.com/policyscope/policyscope/internal/sweep"
	"github.com/policyscope/policyscope/obs"
)

// Session is the serving-side façade over a Study: it builds the Study
// once, lazily memoizes the expensive shared artifacts behind
// sync.Once-style gates — the converged simulation Result, the
// Gao-inferred relationships and observed-path index (both on the Study
// itself), the Looking-Glass server over the vantage tables, the
// per-parameter persistence series, and the what-if Engine — and is
// safe for many concurrent queries. What-if scenarios run on
// copy-on-write clones of one pristine base engine, so parallel callers
// never contend and never observe each other's mutations.
//
// Construction is free: the first query pays for generation and
// simulation, every later query reuses them.
//
//	sess := policyscope.NewSession(policyscope.DefaultConfig())
//	res, err := sess.Run(ctx, "table5", nil)
//	res.Render(os.Stdout)           // or json.Marshal(res)
type Session struct {
	cfg Config

	studyOnce sync.Once
	study     *Study
	studyErr  error

	engineOnce sync.Once
	engine     *simulate.Engine
	engineErr  error

	lgOnce sync.Once
	lg     *lookingglass.Server
	lgErr  error

	// persist memoizes persistence series per normalized parameter set:
	// the series is by far the most expensive query (epochs ×
	// incremental re-simulation), and figure6/figure7 share one series.
	persistMu sync.Mutex
	persist   map[persistKey]*persistEntry

	// inferRuns memoizes relationship-inference outputs per
	// (algorithm, canonical params): the bakeoff, the ensemble and the
	// /infer endpoint all share one run of each parameterization, the
	// same way the lazy Gao gate shares one legacy inference.
	inferMu   sync.Mutex
	inferRuns map[inferKey]*inferEntry

	// sweepExpand memoizes sweep spec expansions per canonical spec
	// JSON, bounded FIFO: a distributed coordinator sends every shard of
	// one sweep to this worker with the same spec, so only the first
	// shard pays for generator enumeration.
	sweepMu         sync.Mutex
	sweepExpand     map[string]*sweepExpandEntry
	sweepExpandFIFO []string
}

type persistEntry struct {
	once sync.Once
	res  core.PersistenceResult
	err  error
}

// inferKey identifies one memoized inference: the algorithm name plus
// its decoded parameters re-marshaled to canonical JSON, so equal
// effective parameter sets share one run regardless of field order or
// encoding form (JSON body, key=value flags, defaults).
type inferKey struct {
	algo   string
	params string
}

type inferEntry struct {
	once sync.Once
	out  *infer.Output
	err  error
}

type sweepExpandEntry struct {
	once sync.Once
	scs  []simulate.Scenario
	err  error
}

// maxSweepExpandMemo bounds the expansion memo: distinct concurrent
// sweep specs per session are rare (one fleet runs one spec), so a few
// entries cover the working set without letting a spec-fuzzing client
// grow the map unboundedly.
const maxSweepExpandMemo = 4

// NewSession returns a session for cfg without doing any work yet.
func NewSession(cfg Config) *Session {
	return &Session{
		cfg:         cfg,
		persist:     make(map[persistKey]*persistEntry),
		inferRuns:   make(map[inferKey]*inferEntry),
		sweepExpand: make(map[string]*sweepExpandEntry),
	}
}

// NewSessionFromStudy wraps an already-built Study (the Study-first
// migration path: existing code that constructed a Study keeps it and
// gains the query API on top).
func NewSessionFromStudy(s *Study) *Session {
	se := NewSession(s.Config)
	se.study = s
	se.studyOnce.Do(func() {}) // mark the gate resolved
	return se
}

// Config returns the session's configuration.
func (se *Session) Config() Config { return se.cfg }

// Study returns the shared Study, building it on first use. Safe for
// concurrent callers; every experiment goes through this gate.
func (se *Session) Study() (*Study, error) {
	se.studyOnce.Do(func() {
		se.study, se.studyErr = NewStudy(se.cfg)
	})
	return se.study, se.studyErr
}

// baseEngine returns the pristine what-if engine, building it on first
// use. It is only ever cloned, never applied to.
func (se *Session) baseEngine() (*simulate.Engine, error) {
	se.engineOnce.Do(func() {
		s, err := se.Study()
		if err != nil {
			se.engineErr = err
			return
		}
		se.engine, se.engineErr = s.WhatIfEngine()
	})
	return se.engine, se.engineErr
}

// Warm eagerly builds the study and the base what-if engine. Servers
// call it before accepting traffic, and to tell construction failures
// (the session's fault) from per-query errors (the query's fault).
// Snapshot-only studies have no engine to warm; Warm succeeds once the
// study is built, and what-if/sweep calls fail per-query with
// ErrNeedsGroundTruth.
func (se *Session) Warm() error {
	s, err := se.Study()
	if err != nil {
		return err
	}
	if !s.HasGroundTruth() {
		return nil
	}
	_, err = se.baseEngine()
	return err
}

// WhatIf answers one scenario against the session's base state. Each
// call runs on a fresh copy-on-write clone of the memoized base engine,
// so concurrent what-ifs are independent and the base state is never
// mutated. Compare Study.WhatIf, which re-simulates a brand-new engine
// per call. ctx gates the call (an already-canceled context returns
// immediately); a single incremental apply is too fast to interrupt
// mid-flight.
func (se *Session) WhatIf(ctx context.Context, sc simulate.Scenario) (*WhatIfReport, error) {
	s, err := se.Study()
	if err != nil {
		return nil, err
	}
	base, err := se.baseEngine()
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return s.whatIfOn(base.Clone(), sc)
}

// SweepScenarios expands a sweep spec against the session's base
// topology into the concrete scenario list a sweep will run, without
// running anything. Servers use it to reject a bad spec before any
// stream output is written. ctx cancels the expansion — generator
// enumeration over a large topology (every link, every
// (prefix, attacker) pair) is real work, and a disconnected client
// stops it mid-family like every other Session entry point.
func (se *Session) SweepScenarios(ctx context.Context, spec sweep.Spec) ([]simulate.Scenario, error) {
	base, err := se.baseEngine()
	if err != nil {
		return nil, err
	}
	return sweep.Expand(ctx, base.Topology(), spec)
}

// SweepScenariosCached is SweepScenarios behind a small per-session
// memo keyed by the spec's canonical JSON. The shard endpoint uses it:
// a distributed coordinator posts every shard of one sweep with the
// same spec, and expansion over a large topology is real work worth
// paying once per fleet member, not once per shard. Errors are not
// cached (a canceled expansion must not poison later shards). The
// returned slice is shared — callers must not mutate it.
func (se *Session) SweepScenariosCached(ctx context.Context, spec sweep.Spec) ([]simulate.Scenario, error) {
	canon, err := json.Marshal(spec)
	if err != nil {
		return se.SweepScenarios(ctx, spec)
	}
	key := string(canon)
	se.sweepMu.Lock()
	entry, ok := se.sweepExpand[key]
	if !ok {
		entry = &sweepExpandEntry{}
		if len(se.sweepExpandFIFO) >= maxSweepExpandMemo {
			oldest := se.sweepExpandFIFO[0]
			se.sweepExpandFIFO = se.sweepExpandFIFO[1:]
			delete(se.sweepExpand, oldest)
		}
		se.sweepExpand[key] = entry
		se.sweepExpandFIFO = append(se.sweepExpandFIFO, key)
	}
	se.sweepMu.Unlock()
	if ok {
		mMemoSweepHit.Inc()
	} else {
		mMemoSweepMiss.Inc()
	}
	entry.once.Do(func() {
		entry.scs, entry.err = se.SweepScenarios(ctx, spec)
	})
	if entry.err != nil {
		// Drop the failed entry so the next caller retries instead of
		// inheriting, say, this caller's context cancellation.
		se.sweepMu.Lock()
		if se.sweepExpand[key] == entry {
			delete(se.sweepExpand, key)
			for i, k := range se.sweepExpandFIFO {
				if k == key {
					se.sweepExpandFIFO = append(se.sweepExpandFIFO[:i], se.sweepExpandFIFO[i+1:]...)
					break
				}
			}
		}
		se.sweepMu.Unlock()
		return nil, entry.err
	}
	return entry.scs, nil
}

// Sweep runs a batch of scenarios against the session's base state on
// the sharded sweep executor: workers own copy-on-write clones of the
// memoized base engine, records stream through opts.OnImpact in
// scenario index order, and the aggregate summarizes the whole batch.
// ctx cancels the sweep between scenarios. The base state is never
// mutated, so concurrent sweeps and what-ifs are independent.
//
// Worker counts are clamped to 2x GOMAXPROCS: the session is the
// serving facade, so opts.Workers is wire-derived (POST /sweep,
// /run/sweep, repro -p workers=...) and sweep work is CPU-bound —
// beyond the core count extra shards only cost engine-clone memory.
// Callers that really want more shards use sweep.Run directly.
func (se *Session) Sweep(ctx context.Context, scenarios []simulate.Scenario, opts sweep.Options) (*sweep.Aggregate, error) {
	base, err := se.baseEngine()
	if err != nil {
		return nil, err
	}
	if limit := 2 * runtime.GOMAXPROCS(0); opts.Workers > limit {
		opts.Workers = limit
	}
	return sweep.Run(ctx, base, scenarios, opts)
}

// LookingGlass returns a query server over the study's vantage tables
// (the cmd/lookingglass backend), built once.
func (se *Session) LookingGlass() (*lookingglass.Server, error) {
	se.lgOnce.Do(func() {
		s, err := se.Study()
		if err != nil {
			se.lgErr = err
			return
		}
		if !s.HasGroundTruth() {
			se.lgErr = &NeedsGroundTruthError{Op: "looking glass"}
			return
		}
		tables := make(map[bgp.ASN]*bgp.RIB, len(s.Peers))
		for _, p := range s.Peers {
			tables[p] = s.Result.Tables[p]
		}
		se.lg = lookingglass.NewServer(tables)
	})
	return se.lg, se.lgErr
}

// persistence returns the memoized persistence series for one
// normalized parameter set, computing it at most once per session.
func (se *Session) persistence(k persistKey) (core.PersistenceResult, error) {
	se.persistMu.Lock()
	entry, ok := se.persist[k]
	if !ok {
		entry = &persistEntry{}
		se.persist[k] = entry
	}
	se.persistMu.Unlock()
	if ok {
		mMemoPersistHit.Inc()
	} else {
		mMemoPersistMiss.Inc()
	}
	entry.once.Do(func() {
		s, err := se.Study()
		if err != nil {
			entry.err = err
			return
		}
		churn := k.churn
		if churn == 0 {
			// An explicit zero means a no-churn control series; the
			// Study-level option treats 0 as "default", so pass the
			// negative disable value instead.
			churn = -1
		}
		entry.res, entry.err = s.Figure6and7Persistence(PersistenceOptions{
			Epochs:        k.epochs,
			ChurnFraction: churn,
			EpochSeconds:  k.epochSeconds,
		})
	})
	return entry.res, entry.err
}

// Infer runs the named relationship-inference algorithm over the
// session's observed paths, with parameters decoded strictly from raw
// JSON (empty keeps the algorithm's defaults). Outputs are memoized
// per (algorithm, canonical params), so the bakeoff experiment, the
// ensemble and repeated /infer calls share one run. Name and parameter
// validation happens before any study work: an unknown algorithm
// returns *infer.NotFoundError and bad parameters *infer.ParamError
// without paying for dataset construction.
func (se *Session) Infer(ctx context.Context, algo string, raw json.RawMessage) (*infer.Output, error) {
	params, err := infer.Default.DecodeJSON(algo, raw)
	if err != nil {
		return nil, err
	}
	canon, err := json.Marshal(params)
	if err != nil {
		return nil, err
	}
	k := inferKey{algo: algo, params: string(canon)}
	se.inferMu.Lock()
	entry, ok := se.inferRuns[k]
	if !ok {
		entry = &inferEntry{}
		se.inferRuns[k] = entry
	}
	se.inferMu.Unlock()
	if ok {
		mMemoInferHit.Inc()
	} else {
		mMemoInferMiss.Inc()
	}
	_, span := obs.StartSpan(ctx, "infer:"+algo)
	defer span.End()
	entry.once.Do(func() {
		s, err := se.Study()
		if err != nil {
			entry.err = err
			return
		}
		in := infer.Input{Paths: s.SnapshotPaths(), VantagePoints: s.Peers}
		entry.out, entry.err = infer.Default.Run(ctx, in, algo, params)
	})
	return entry.out, entry.err
}

// InferKV is Infer with key=value parameter overrides (the CLI form).
func (se *Session) InferKV(ctx context.Context, algo string, kv []string) (*infer.Output, error) {
	params, err := infer.Default.DecodeKV(algo, kv)
	if err != nil {
		return nil, err
	}
	canon, err := json.Marshal(params)
	if err != nil {
		return nil, err
	}
	return se.Infer(ctx, algo, canon)
}

// InferAlgorithms returns the serializable inference-algorithm catalog.
// Like Experiments, it is process-wide.
func InferAlgorithms() []infer.Info { return infer.Default.Infos() }

// Experiments returns the serializable experiment catalog in run order.
// The catalog is process-wide: it does not depend on any session's
// configuration or dataset.
func Experiments() []experiment.Info { return catalog.Infos() }

// ValidateKV checks an experiment name and key=value parameter
// overrides against the catalog without running anything — the
// fail-fast check a CLI performs before paying for dataset
// construction. It returns *experiment.NotFoundError for an unknown
// name and *experiment.ParamError for undecodable parameters.
func ValidateKV(name string, kv []string) error {
	_, err := catalog.DecodeKV(name, kv)
	return err
}

// Experiments returns the serializable experiment catalog in run order.
func (se *Session) Experiments() []experiment.Info { return Experiments() }

// Run executes the named experiment. ctx cancels an in-flight run (a
// sweep stops between scenarios; a disconnected HTTP client aborts its
// request). params is nil for defaults or a pointer of the experiment's
// parameter type (see Experiments for the catalog). For wire-shaped
// inputs use RunJSON / RunKV.
func (se *Session) Run(ctx context.Context, name string, params any) (experiment.Result, error) {
	e, ok := catalog.Get(name)
	if !ok {
		return nil, &experiment.NotFoundError{Name: name}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ctx, span := obs.StartSpan(ctx, "experiment:"+name)
	mExperimentRuns.Inc()
	var start time.Time
	if obs.Enabled() {
		start = time.Now()
	}
	res, err := e.Run(ctx, se, params)
	if !start.IsZero() {
		mExperimentSeconds.ObserveSince(start)
	}
	span.End()
	if err != nil {
		mExperimentErrors.Inc()
	}
	return res, err
}

// RunJSON executes the named experiment with JSON-encoded parameters
// (strict decoding; empty keeps defaults). Decoding happens here; the
// execution funnels through Run, so every wire form shares its
// instrumentation.
func (se *Session) RunJSON(ctx context.Context, name string, raw json.RawMessage) (experiment.Result, error) {
	params, err := catalog.DecodeJSONParams(name, raw)
	if err != nil {
		return nil, err
	}
	return se.Run(ctx, name, params)
}

// RunKV executes the named experiment with key=value parameter
// overrides (the CLI form, e.g. "providers=3").
func (se *Session) RunKV(ctx context.Context, name string, kv []string) (experiment.Result, error) {
	params, err := catalog.DecodeKV(name, kv)
	if err != nil {
		return nil, err
	}
	return se.Run(ctx, name, params)
}

// RunAll executes every catalog experiment in order with the
// RunAllOptions-derived parameter plans and renders each result to w —
// the paper's tables and figures end to end. Because it is a plain
// iteration over the registry, a newly registered experiment appears
// here automatically and the ordering can never drift from the catalog.
func (se *Session) RunAll(ctx context.Context, w io.Writer, opts RunAllOptions) error {
	if opts.TierOneProviders <= 0 {
		opts.TierOneProviders = 3
	}
	for _, out := range se.runAllSequence(opts) {
		if skip, err := se.skipInRunAll(out.name); err != nil {
			return err
		} else if skip {
			continue
		}
		res, err := se.Run(ctx, out.name, out.params)
		if err != nil {
			return fmt.Errorf("policyscope: %s: %w", out.name, err)
		}
		if res == nil {
			continue
		}
		if err := res.Render(w); err != nil {
			return err
		}
	}
	return nil
}

// skipInRunAll reports whether a full sweep should pass over the named
// experiment: on a snapshot-only dataset the ground-truth-dependent
// experiments are unanswerable by construction, so the sweep runs the
// snapshot-capable ones instead of aborting at the first typed error.
// Running such an experiment *by name* still returns
// ErrNeedsGroundTruth — only the battery filters.
func (se *Session) skipInRunAll(name string) (bool, error) {
	e, ok := catalog.Get(name)
	if !ok || !e.NeedsGroundTruth {
		return false, nil
	}
	s, err := se.Study()
	if err != nil {
		return false, err
	}
	return !s.HasGroundTruth(), nil
}

// RunAllDocument is the JSON form of a full sweep: one entry per
// experiment invocation, in catalog order. Marshaling it at a fixed
// seed is byte-stable across runs.
type RunAllDocument struct {
	Config      Config             `json:"config"`
	Experiments []ExperimentOutput `json:"experiments"`
}

// ExperimentOutput is one experiment invocation's name, parameters and
// typed result.
type ExperimentOutput struct {
	Name   string            `json:"name"`
	Title  string            `json:"title"`
	Params any               `json:"params,omitempty"`
	Result experiment.Result `json:"result"`
}

// RunAllJSON executes the same sweep as RunAll and returns the
// structured document instead of rendering text.
func (se *Session) RunAllJSON(ctx context.Context, opts RunAllOptions) (*RunAllDocument, error) {
	if opts.TierOneProviders <= 0 {
		opts.TierOneProviders = 3
	}
	doc := &RunAllDocument{Config: se.cfg}
	for _, out := range se.runAllSequence(opts) {
		if skip, err := se.skipInRunAll(out.name); err != nil {
			return nil, err
		} else if skip {
			continue
		}
		res, err := se.Run(ctx, out.name, out.params)
		if err != nil {
			return nil, fmt.Errorf("policyscope: %s: %w", out.name, err)
		}
		if res == nil {
			continue
		}
		e, _ := catalog.Get(out.name)
		doc.Experiments = append(doc.Experiments, ExperimentOutput{
			Name: out.name, Title: e.Title, Params: out.params, Result: res,
		})
	}
	return doc, nil
}

// plannedRun is one experiment invocation of a RunAll sweep.
type plannedRun struct {
	name   string
	params any
}

// runAllSequence expands the catalog into the invocation list for one
// sweep: every experiment in order, with parameter sets derived from
// opts (one default run unless the experiment registered a plan).
func (se *Session) runAllSequence(opts RunAllOptions) []plannedRun {
	var out []plannedRun
	for _, e := range catalog.All() {
		paramSets := []any{nil}
		if plan, ok := runAllPlans[e.Name]; ok {
			paramSets = plan(opts)
		}
		for _, p := range paramSets {
			out = append(out, plannedRun{name: e.Name, params: p})
		}
	}
	return out
}
