package policyscope

import (
	"fmt"
	"io"

	"github.com/policyscope/policyscope/internal/reports"
)

// RunAllOptions sizes the full experiment sweep.
type RunAllOptions struct {
	// TierOneProviders is how many Tier-1 vantages the provider-side
	// tables use (the paper uses 3: AS1, AS3549, AS7018).
	TierOneProviders int
	// Table6Rows / Table6MinPrefixes shape the customer table.
	Table6Rows, Table6MinPrefixes int
	// DailyEpochs / HourlyEpochs size the two persistence series
	// (Figure 6a/7a and 6b/7b). Zero skips the series.
	DailyEpochs, HourlyEpochs int
	// Routers / DriftRouters size the Figure 2(b) refinement.
	Routers, DriftRouters int
	// Figure9ASes is how many rank series to print.
	Figure9ASes int
	// SkipWhatIf drops the failover what-if experiment (the scenario
	// engine demo appended after the paper's tables).
	SkipWhatIf bool
}

// DefaultRunAllOptions mirrors the paper's dimensions.
func DefaultRunAllOptions() RunAllOptions {
	return RunAllOptions{
		TierOneProviders:  3,
		Table6Rows:        8,
		Table6MinPrefixes: 2,
		DailyEpochs:       31,
		HourlyEpochs:      12,
		Routers:           30,
		DriftRouters:      4,
		Figure9ASes:       3,
	}
}

// RunAll executes every experiment of the paper in order and renders the
// results to w. It returns the first error encountered.
func (s *Study) RunAll(w io.Writer, opts RunAllOptions) error {
	if opts.TierOneProviders <= 0 {
		opts.TierOneProviders = 3
	}
	fmt.Fprintf(w, "policyscope study: %d ASes, %d prefixes, %d collector peers, seed %d\n",
		len(s.Topo.Order), s.Topo.TotalPrefixes(), len(s.Peers), s.Config.Seed)
	acc := s.RelationshipAccuracy()
	fmt.Fprintf(w, "relationship inference (Gao): %.2f%% of %d observed edges correct\n",
		100*acc.Fraction(), acc.Total)
	tp, fp := s.SAGroundTruthScore()
	fmt.Fprintf(w, "SA detector vs ground truth: %d true positives, %d false positives\n\n", tp, fp)

	if _, err := RenderTable1(s.Table1Dataset()).WriteTo(w); err != nil {
		return err
	}
	if _, err := RenderTable2(s.Table2TypicalLocalPref()).WriteTo(w); err != nil {
		return err
	}
	if _, err := RenderTable3(s.Table3IRR(Table3Options{})).WriteTo(w); err != nil {
		return err
	}
	if _, err := RenderFigure2("Figure 2(a): localpref consistency with next-hop AS",
		s.Figure2aConsistency()).WriteTo(w); err != nil {
		return err
	}
	if opts.Routers > 0 {
		rows, err := s.Figure2bRouterConsistency(opts.Routers, opts.DriftRouters)
		if err != nil {
			return err
		}
		if _, err := RenderFigure2("Figure 2(b): per-router localpref consistency",
			rows).WriteTo(w); err != nil {
			return err
		}
	}
	if _, err := RenderTable4(s.Table4Verification(9)).WriteTo(w); err != nil {
		return err
	}
	if _, err := RenderTable5(s.Table5SAPrefixes()).WriteTo(w); err != nil {
		return err
	}
	if _, err := RenderTable6(s.Table6CustomerView(opts.TierOneProviders, opts.Table6Rows, opts.Table6MinPrefixes)).WriteTo(w); err != nil {
		return err
	}
	if _, err := RenderTable7(s.Table7Verification(opts.TierOneProviders)).WriteTo(w); err != nil {
		return err
	}
	if _, err := RenderTable8(s.Table8Multihoming(opts.TierOneProviders)).WriteTo(w); err != nil {
		return err
	}
	if _, err := RenderTable9(s.Table9SplitAggregate(opts.TierOneProviders)).WriteTo(w); err != nil {
		return err
	}
	if _, err := RenderCase3(s.Case3Selective(opts.TierOneProviders)).WriteTo(w); err != nil {
		return err
	}
	if _, err := RenderTable10(s.Table10PeerExport(opts.TierOneProviders)).WriteTo(w); err != nil {
		return err
	}
	if _, err := RenderPolicyAtoms(s.PolicyAtoms()).WriteTo(w); err != nil {
		return err
	}
	if _, err := RenderDecisionCharacterization(s.DecisionCharacterization()).WriteTo(w); err != nil {
		return err
	}
	if _, err := RenderMultiSite(s.MultiSiteConfounder(opts.TierOneProviders)).WriteTo(w); err != nil {
		return err
	}
	if asn, scheme, ok := s.Table11Scheme(); ok {
		if _, err := RenderTable11(asn, scheme).WriteTo(w); err != nil {
			return err
		}
	}
	for asn, ranks := range s.Figure9NeighborRanks(opts.Figure9ASes) {
		capped := ranks
		if len(capped) > 20 {
			capped = capped[:20]
		}
		if _, err := RenderFigure9(asn, capped).WriteTo(w); err != nil {
			return err
		}
	}
	if opts.DailyEpochs > 0 {
		res, err := s.Figure6and7Persistence(PersistenceOptions{
			Epochs: opts.DailyEpochs, EpochSeconds: 86400, ChurnFraction: 0.008,
		})
		if err != nil {
			return err
		}
		if _, err := RenderFigure6(res, "day").WriteTo(w); err != nil {
			return err
		}
		if _, err := RenderFigure7(res, "uptime (days)").WriteTo(w); err != nil {
			return err
		}
	}
	if opts.HourlyEpochs > 0 {
		res, err := s.Figure6and7Persistence(PersistenceOptions{
			Epochs: opts.HourlyEpochs, EpochSeconds: 3600, ChurnFraction: 0.003,
		})
		if err != nil {
			return err
		}
		if _, err := RenderFigure6(res, "hour").WriteTo(w); err != nil {
			return err
		}
		if _, err := RenderFigure7(res, "uptime (hours)").WriteTo(w); err != nil {
			return err
		}
	}
	if !opts.SkipWhatIf {
		if sc, _, _, ok := s.FailoverScenario(); ok {
			rep, err := s.WhatIf(sc)
			if err != nil {
				return err
			}
			if err := WriteWhatIf(w, rep, 10); err != nil {
				return err
			}
		}
	}
	return nil
}

// RenderSummary prints the study's headline comparisons in one table.
func (s *Study) RenderSummary(w io.Writer) error {
	t := &reports.Table{
		Title:   "Summary: paper vs measured",
		Columns: []string{"quantity", "paper", "measured"},
	}
	typ := s.Table2TypicalLocalPref()
	lo, hi := 100.0, 0.0
	for _, r := range typ {
		if r.Comparable == 0 {
			continue
		}
		p := r.TypicalPct()
		if p < lo {
			lo = p
		}
		if p > hi {
			hi = p
		}
	}
	t.AddRow("typical localpref range", "94.3-100%", fmt.Sprintf("%s-%s%%", reports.Pct(lo), reports.Pct(hi)))

	cons := s.Figure2aConsistency()
	sum, n := 0.0, 0
	for _, r := range cons {
		if r.Prefixes > 0 {
			sum += r.Pct()
			n++
		}
	}
	if n > 0 {
		t.AddRow("next-hop-keyed localpref (mean)", "~98%", reports.Pct(sum/float64(n))+"%")
	}

	sa := s.Table5SAPrefixes()
	saLo, saHi := 100.0, 0.0
	for _, r := range sa {
		if r.ConePrefixes < 10 {
			continue
		}
		p := r.SAPct()
		if p < saLo {
			saLo = p
		}
		if p > saHi {
			saHi = p
		}
	}
	t.AddRow("SA prefix share range", "0-48.6%", fmt.Sprintf("%s-%s%%", reports.Pct(saLo), reports.Pct(saHi)))

	mh := s.Table8Multihoming(3)
	mhm, mhs := 0, 0
	for _, r := range mh {
		mhm += r.Multihomed
		mhs += r.SingleHomed
	}
	if mhm+mhs > 0 {
		t.AddRow("multihomed SA origins", "~75%", reports.Pct(100*float64(mhm)/float64(mhm+mhs))+"%")
	}

	pe := s.Table10PeerExport(3)
	peLo, peHi := 100.0, 0.0
	for _, r := range pe {
		if len(r.Rows) == 0 {
			continue
		}
		p := r.AnnouncingPct()
		if p < peLo {
			peLo = p
		}
		if p > peHi {
			peHi = p
		}
	}
	t.AddRow("peers exporting all prefixes", "86-100%", fmt.Sprintf("%s-%s%%", reports.Pct(peLo), reports.Pct(peHi)))

	acc := s.RelationshipAccuracy()
	t.AddRow("relationship inference accuracy", "94.1-99.55% (Table 4)", reports.Pct(100*acc.Fraction())+"%")
	_, err := t.WriteTo(w)
	return err
}
