package policyscope

import (
	"context"
	"fmt"
	"io"

	"github.com/policyscope/policyscope/internal/reports"
)

// RunAllOptions sizes the full experiment sweep. RunAll itself is a
// plain iteration over the experiment registry (registry.go): these
// options only parameterize the per-experiment plans.
type RunAllOptions struct {
	// TierOneProviders is how many Tier-1 vantages the provider-side
	// tables use (the paper uses 3: AS1, AS3549, AS7018).
	TierOneProviders int
	// Table6Rows / Table6MinPrefixes shape the customer table.
	Table6Rows, Table6MinPrefixes int
	// DailyEpochs / HourlyEpochs size the two persistence series
	// (Figure 6a/7a and 6b/7b). Zero skips the series.
	DailyEpochs, HourlyEpochs int
	// Routers / DriftRouters size the Figure 2(b) refinement.
	Routers, DriftRouters int
	// Figure9ASes is how many rank series to print.
	Figure9ASes int
	// SkipWhatIf drops the failover what-if experiment (the scenario
	// engine demo appended after the paper's tables).
	SkipWhatIf bool
}

// DefaultRunAllOptions mirrors the paper's dimensions.
func DefaultRunAllOptions() RunAllOptions {
	return RunAllOptions{
		TierOneProviders:  3,
		Table6Rows:        8,
		Table6MinPrefixes: 2,
		DailyEpochs:       31,
		HourlyEpochs:      12,
		Routers:           30,
		DriftRouters:      4,
		Figure9ASes:       3,
	}
}

// RunAll executes every experiment of the paper in registry order and
// renders the results to w. It returns the first error encountered.
// (Study-first compatibility wrapper; see Session.RunAll.)
func (s *Study) RunAll(w io.Writer, opts RunAllOptions) error {
	return NewSessionFromStudy(s).RunAll(context.Background(), w, opts)
}

// Summary computes the study's headline paper-vs-measured comparisons.
func (s *Study) Summary() SummaryResult {
	var res SummaryResult
	add := func(quantity, paper, measured string) {
		res.Rows = append(res.Rows, SummaryRow{Quantity: quantity, Paper: paper, Measured: measured})
	}

	typ := s.Table2TypicalLocalPref()
	lo, hi := 100.0, 0.0
	for _, r := range typ {
		if r.Comparable == 0 {
			continue
		}
		p := r.TypicalPct()
		if p < lo {
			lo = p
		}
		if p > hi {
			hi = p
		}
	}
	add("typical localpref range", "94.3-100%", fmt.Sprintf("%s-%s%%", reports.Pct(lo), reports.Pct(hi)))

	cons := s.Figure2aConsistency()
	sum, n := 0.0, 0
	for _, r := range cons {
		if r.Prefixes > 0 {
			sum += r.Pct()
			n++
		}
	}
	if n > 0 {
		add("next-hop-keyed localpref (mean)", "~98%", reports.Pct(sum/float64(n))+"%")
	}

	sa := s.Table5SAPrefixes()
	saLo, saHi := 100.0, 0.0
	for _, r := range sa {
		if r.ConePrefixes < 10 {
			continue
		}
		p := r.SAPct()
		if p < saLo {
			saLo = p
		}
		if p > saHi {
			saHi = p
		}
	}
	add("SA prefix share range", "0-48.6%", fmt.Sprintf("%s-%s%%", reports.Pct(saLo), reports.Pct(saHi)))

	mh := s.Table8Multihoming(3)
	mhm, mhs := 0, 0
	for _, r := range mh {
		mhm += r.Multihomed
		mhs += r.SingleHomed
	}
	if mhm+mhs > 0 {
		add("multihomed SA origins", "~75%", reports.Pct(100*float64(mhm)/float64(mhm+mhs))+"%")
	}

	pe := s.Table10PeerExport(3)
	peLo, peHi := 100.0, 0.0
	for _, r := range pe {
		if len(r.Rows) == 0 {
			continue
		}
		p := r.AnnouncingPct()
		if p < peLo {
			peLo = p
		}
		if p > peHi {
			peHi = p
		}
	}
	add("peers exporting all prefixes", "86-100%", fmt.Sprintf("%s-%s%%", reports.Pct(peLo), reports.Pct(peHi)))

	acc := s.RelationshipAccuracy()
	add("relationship inference accuracy", "94.1-99.55% (Table 4)", reports.Pct(100*acc.Fraction())+"%")
	return res
}

// RenderSummary prints the study's headline comparisons in one table.
func (s *Study) RenderSummary(w io.Writer) error {
	return s.Summary().Render(w)
}
