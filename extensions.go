package policyscope

// Extensions beyond the paper's tables: the policy-atoms connection its
// conclusion claims (Afek et al., IMW 2002), the decision-step
// characterization behind Section 4.1's opening claim, and the AOL-style
// multi-site confounder the paper defers to future work.

import (
	"fmt"

	"github.com/policyscope/policyscope/internal/atoms"
	"github.com/policyscope/policyscope/internal/bgp"
	"github.com/policyscope/policyscope/internal/core"
	"github.com/policyscope/policyscope/internal/netx"
	"github.com/policyscope/policyscope/internal/reports"
)

// PolicyAtomsResult bundles the atom decomposition with its attribution
// to selective announcement.
type PolicyAtomsResult struct {
	Stats atoms.Stats
	// Attribution links multi-atom origins to selective announcement
	// (detected SA prefixes plus ground-truth mechanisms).
	Attribution atoms.Attribution
}

// PolicyAtoms decomposes the collector view into policy atoms and tests
// the paper's closing claim: "Policies for exporting to providers are
// the major cause" of atom splitting.
func (s *Study) PolicyAtoms() PolicyAtomsResult {
	decomp := atoms.Compute(s.Snapshot.Table, s.Peers)
	analyzer := &core.ExportAnalyzer{Graph: s.Graph}
	selective := make(map[netx.Prefix]bool)
	for _, peer := range s.Peers {
		for p := range analyzer.SAPrefixes(s.PeerView(peer)).SAPrefixSet() {
			selective[p] = true
		}
	}
	for _, asn := range s.Topo.Order {
		pol := s.Topo.Policies[asn]
		for p := range pol.Export.OriginProviders {
			selective[p] = true
		}
		for p := range pol.Export.NoUpstream {
			selective[p] = true
		}
	}
	return PolicyAtomsResult{
		Stats:       decomp.Stats(),
		Attribution: decomp.Attribute(selective),
	}
}

// RenderPolicyAtoms renders the decomposition summary.
func RenderPolicyAtoms(r PolicyAtomsResult) *reports.Table {
	t := &reports.Table{
		Title:   "Policy atoms (extension; Afek et al. IMW'02 connection from Section 5.1.5)",
		Columns: []string{"quantity", "value"},
		Note:    "the paper claims selective export to providers is the major cause of atom splitting",
	}
	t.AddRow("prefixes", fmt.Sprintf("%d", r.Stats.Prefixes))
	t.AddRow("atoms", fmt.Sprintf("%d", r.Stats.Atoms))
	t.AddRow("singleton atoms", fmt.Sprintf("%d", r.Stats.SingletonAtoms))
	t.AddRow("multi-prefix atoms", fmt.Sprintf("%d", r.Stats.MultiPrefixAtoms))
	t.AddRow("origins", fmt.Sprintf("%d", r.Stats.Origins))
	t.AddRow("origins split into >1 atom", fmt.Sprintf("%d", r.Attribution.MultiAtomOrigins))
	t.AddRow("splits explained by selective announcement",
		fmt.Sprintf("%d (%s%%)", r.Attribution.ExplainedBySelective, reports.Pct(r.Attribution.ExplainedPct())))
	return t
}

// DecisionCharacterization computes, per Looking Glass vantage, which
// decision step actually picked the best route for contested prefixes.
func (s *Study) DecisionCharacterization() []core.DecisionStats {
	out := make([]core.DecisionStats, 0, len(s.LookingGlass))
	for _, asn := range s.LookingGlass {
		out = append(out, core.AnalyzeDecisions(s.Result.Tables[asn]))
	}
	return out
}

// RenderDecisionCharacterization renders the step distribution.
func RenderDecisionCharacterization(rows []core.DecisionStats) *reports.Table {
	t := &reports.Table{
		Title:   "Deciding step for contested prefixes (extension; Section 4.1's claim quantified)",
		Columns: []string{"AS", "contested", "% localpref", "% path length", "% later steps"},
		Note:    "localpref dominating confirms 'the shortest-path default is overridden'",
	}
	for _, r := range rows {
		if r.Contested == 0 {
			continue
		}
		later := 1 - r.Share(bgp.StepLocalPref) - r.Share(bgp.StepASPathLen)
		t.AddRow(r.AS.String(), fmt.Sprintf("%d", r.Contested),
			reports.Pct(100*r.Share(bgp.StepLocalPref)),
			reports.Pct(100*r.Share(bgp.StepASPathLen)),
			reports.Pct(100*later))
	}
	return t
}

// MultiSiteImpact measures the paper's AOL confounder: how many detected
// SA prefixes actually belong to backbone-less multi-site organizations
// rather than traffic engineers.
type MultiSiteImpact struct {
	// SAPrefixes is the detected SA population across Tier-1 vantages.
	SAPrefixes int
	// FromMultiSite counts detections whose origin is a multi-site AS.
	FromMultiSite int
	// MultiSiteOrigins is the number of such origins in the topology.
	MultiSiteOrigins int
}

// Pct returns the confounded share.
func (m MultiSiteImpact) Pct() float64 {
	if m.SAPrefixes == 0 {
		return 0
	}
	return 100 * float64(m.FromMultiSite) / float64(m.SAPrefixes)
}

// MultiSiteConfounder quantifies the artifact at the top Tier-1s.
func (s *Study) MultiSiteConfounder(providers int) MultiSiteImpact {
	analyzer := &core.ExportAnalyzer{Graph: s.Graph}
	impact := MultiSiteImpact{}
	seen := make(map[netx.Prefix]bool)
	for _, asn := range s.TierOneVantages(providers) {
		for _, sa := range analyzer.SAPrefixes(s.PeerView(asn)).SA {
			if seen[sa.Prefix] {
				continue
			}
			seen[sa.Prefix] = true
			impact.SAPrefixes++
			if info := s.Topo.ASes[sa.Origin]; info != nil && info.MultiSite {
				impact.FromMultiSite++
			}
		}
	}
	for _, asn := range s.Topo.Order {
		if s.Topo.ASes[asn].MultiSite {
			impact.MultiSiteOrigins++
		}
	}
	return impact
}

// RenderMultiSite renders the confounder measurement.
func RenderMultiSite(m MultiSiteImpact) *reports.Table {
	t := &reports.Table{
		Title:   "Multi-site confounder (extension; the paper's AOL/AS1668 future-work case)",
		Columns: []string{"quantity", "value"},
		Note:    "these SA prefixes are structural artifacts, not traffic engineering",
	}
	t.AddRow("multi-site origins in topology", fmt.Sprintf("%d", m.MultiSiteOrigins))
	t.AddRow("distinct SA prefixes at Tier-1 vantages", fmt.Sprintf("%d", m.SAPrefixes))
	t.AddRow("of which from multi-site origins", fmt.Sprintf("%d (%s%%)", m.FromMultiSite, reports.Pct(m.Pct())))
	return t
}
