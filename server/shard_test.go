package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	policyscope "github.com/policyscope/policyscope"
	"github.com/policyscope/policyscope/dataset"
	"github.com/policyscope/policyscope/internal/dsweep"
	"github.com/policyscope/policyscope/internal/sweep"
)

const shardSpec = `{"generators": [{"kind": "all_single_link_failures", "max": 12}]}`

func TestSweepShardEndpoint(t *testing.T) {
	ts := testServer(t)

	status, body := post(t, ts.URL+"/sweep/shard?dataset=tiny",
		`{"spec": `+shardSpec+`, "start": 3, "end": 9, "seq": 41, "expect_total": 12, "workers": 2}`)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) != 7 {
		t.Fatalf("want 6 records + trailer, got %d lines: %s", len(lines), body)
	}
	for i, line := range lines[:6] {
		var rec struct {
			Index int    `json:"index"`
			Name  string `json:"name"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d: %v in %s", i, err, line)
		}
		// Records carry *global* scenario indices, not shard-local ones.
		if rec.Index != 3+i || !strings.HasPrefix(rec.Name, "link_fail:") {
			t.Fatalf("line %d: want global index %d, got %s", i, 3+i, line)
		}
	}
	var trailer struct {
		ShardDone dsweep.ShardDone `json:"shard_done"`
	}
	if err := json.Unmarshal([]byte(lines[6]), &trailer); err != nil {
		t.Fatalf("trailer: %v in %s", err, lines[6])
	}
	d := trailer.ShardDone
	if d.Start != 3 || d.End != 9 || d.Seq != 41 || d.Records != 6 {
		t.Fatalf("trailer %+v does not echo the request", d)
	}
	if len(d.WorkerStats) == 0 {
		t.Fatal("trailer carries no worker stats")
	}

	// Identical request → byte-identical records. (Only the records:
	// the trailer's worker stats carry wall-clock busy times, which the
	// coordinator never merges into output.)
	status, body2 := post(t, ts.URL+"/sweep/shard?dataset=tiny",
		`{"spec": `+shardSpec+`, "start": 3, "end": 9, "seq": 41, "expect_total": 12, "workers": 2}`)
	lines2 := strings.Split(strings.TrimSpace(string(body2)), "\n")
	if status != http.StatusOK || len(lines2) != 7 ||
		strings.Join(lines2[:6], "\n") != strings.Join(lines[:6], "\n") {
		t.Fatal("shard records not deterministic across requests")
	}
}

func TestSweepShardRejections(t *testing.T) {
	ts := testServer(t)
	cases := []struct {
		name, body, wantSub string
	}{
		{"bad generator", `{"spec": {"generators": [{"kind": "hijacks"}]}, "start": 0, "end": 1}`,
			`generator 0 (hijacks)`},
		{"inverted range", `{"spec": ` + shardSpec + `, "start": 5, "end": 2}`,
			"bad shard range"},
		{"range past expansion", `{"spec": ` + shardSpec + `, "start": 0, "end": 999}`,
			"exceeds"},
		{"expect_total mismatch", `{"spec": ` + shardSpec + `, "start": 0, "end": 1, "expect_total": 77}`,
			"scenario universe mismatch"},
		{"unknown field", `{"bogus": 1}`, "bad shard request"},
		{"vantage mismatch", `{"spec": ` + shardSpec + `, "start": 0, "end": 1, "vantages": "deadbeefdeadbeef"}`,
			"vantage set mismatch"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, body := post(t, ts.URL+"/sweep/shard?dataset=tiny", tc.body)
			if status != http.StatusUnprocessableEntity {
				t.Fatalf("status %d: %s", status, body)
			}
			if !strings.Contains(string(body), tc.wantSub) {
				t.Fatalf("error %s does not mention %q", body, tc.wantSub)
			}
		})
	}
}

// TestSweepValidationBeforeDataset pins the fail-fast ordering: an
// invalid spec is rejected with the generator named even when the
// request targets a dataset that does not exist — validation runs
// before any session or topology work.
func TestSweepValidationBeforeDataset(t *testing.T) {
	ts := testServer(t)
	badSpec := `"spec": {"generators": [{"kind": "local_pref_flips", "as": 1}]}`
	for path, body := range map[string]string{
		"/sweep":       `{` + badSpec + `}`,
		"/sweep/shard": `{` + badSpec + `, "start": 0, "end": 1}`,
	} {
		status, resp := post(t, ts.URL+path+"?dataset=no-such-dataset", body)
		if status != http.StatusUnprocessableEntity {
			t.Fatalf("%s: status %d (want 422 before dataset lookup): %s", path, status, resp)
		}
		if !strings.Contains(string(resp), `generator 0 (local_pref_flips)`) {
			t.Fatalf("%s: error %s does not name the generator", path, resp)
		}
	}
}

// TestSweepShardVantageGuard pins both sides of the vantage-set check:
// the fingerprint of the worker's own peers is accepted, and the
// fingerprint of a same-topology-different-peers dataset — the case
// the scenario-universe guard cannot see, since single-link-failure
// scenarios are defined by links, not vantages — is a 422.
func TestSweepShardVantageGuard(t *testing.T) {
	ts := testServer(t)
	tiny := policyscope.Config{NumASes: 120, Seed: 7, CollectorPeers: 8, LookingGlassASes: 5}
	_, peers, err := dataset.LoadTopology(context.Background(), dataset.NewSynthetic(tiny))
	if err != nil {
		t.Fatal(err)
	}
	good := dsweep.VantageFingerprint(peers)

	status, body := post(t, ts.URL+"/sweep/shard?dataset=tiny",
		`{"spec": `+shardSpec+`, "start": 0, "end": 2, "expect_total": 12, "vantages": "`+good+`"}`)
	if status != http.StatusOK {
		t.Fatalf("matching vantage fingerprint rejected: %d %s", status, body)
	}

	// The same topology observed from more collector peers: identical
	// link universe (expect_total passes), different records.
	morePeers := tiny
	morePeers.CollectorPeers = 12
	_, peers2, err := dataset.LoadTopology(context.Background(), dataset.NewSynthetic(morePeers))
	if err != nil {
		t.Fatal(err)
	}
	if dsweep.VantageFingerprint(peers2) == good {
		t.Fatal("test premise broken: different peer counts fingerprint identically")
	}
	status, body = post(t, ts.URL+"/sweep/shard?dataset=tiny",
		`{"spec": `+shardSpec+`, "start": 0, "end": 2, "expect_total": 12, "vantages": "`+dsweep.VantageFingerprint(peers2)+`"}`)
	if status != http.StatusUnprocessableEntity || !strings.Contains(string(body), "vantage set mismatch") {
		t.Fatalf("mismatched vantage fingerprint not refused: %d %s", status, body)
	}
}

// TestDistributedMatchesServerSweep is the end-to-end integration: a
// dsweep coordinator over two HTTP workers (sharing one Server, hence
// one dataset pool) reproduces the /sweep endpoint's record stream and
// aggregate byte for byte.
func TestDistributedMatchesServerSweep(t *testing.T) {
	tiny := policyscope.Config{NumASes: 120, Seed: 7, CollectorPeers: 8, LookingGlassASes: 5}
	cat := dataset.NewCatalog()
	if err := cat.Register("tiny", dataset.NewSynthetic(tiny)); err != nil {
		t.Fatal(err)
	}
	srv := New(dataset.NewPool(cat, 2))
	w1 := httptest.NewServer(srv)
	defer w1.Close()
	w2 := httptest.NewServer(srv)
	defer w2.Close()

	// Reference: the single-stream /sweep endpoint.
	status, body := post(t, w1.URL+"/sweep?dataset=tiny",
		`{"spec": {"generators": [{"kind": "all_single_link_failures", "max": 24}]}, "workers": 2}`)
	if status != http.StatusOK {
		t.Fatalf("reference sweep: status %d: %s", status, body)
	}
	// The stream ends with the aggregate line and the sweep_done trailer;
	// the coordinator reproduces the records and the aggregate.
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	wantRecords := strings.Join(lines[:len(lines)-2], "\n") + "\n"
	wantAggLine := lines[len(lines)-2]

	// Coordinator side: expand the same spec from the same synthetic
	// source — exactly what cmd/sweep -workers does.
	spec := sweep.Spec{Generators: []sweep.Generator{{Kind: sweep.KindAllSingleLinkFailures, Max: 24}}}
	topo, _, err := dataset.LoadTopology(context.Background(), dataset.NewSynthetic(tiny))
	if err != nil {
		t.Fatal(err)
	}
	scenarios, err := sweep.Expand(context.Background(), topo, spec)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	agg, err := dsweep.Run(context.Background(), spec, scenarios, dsweep.Options{
		Workers:   []string{w1.URL, w2.URL},
		ShardSize: 5,
		Dataset:   "tiny",
		OnImpact:  func(imp *sweep.Impact) error { return enc.Encode(imp) },
	})
	if err != nil {
		t.Fatalf("distributed run: %v", err)
	}
	if buf.String() != wantRecords {
		t.Fatalf("distributed records differ from /sweep stream\n got %d bytes\nwant %d bytes",
			buf.Len(), len(wantRecords))
	}
	gotAgg, err := json.Marshal(struct {
		Aggregate *sweep.Aggregate `json:"aggregate"`
	}{agg})
	if err != nil {
		t.Fatal(err)
	}
	if string(gotAgg) != wantAggLine {
		t.Fatalf("distributed aggregate differs:\n got %s\nwant %s", gotAgg, wantAggLine)
	}
}
