package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	policyscope "github.com/policyscope/policyscope"
	"github.com/policyscope/policyscope/dataset"
)

// slowSource wraps a Source so tests can hold its Load open: started
// closes when a build begins, and the build blocks until release
// closes. This pins requests inside the heavy admission gate
// deterministically.
type slowSource struct {
	inner     dataset.Source
	startOnce sync.Once
	started   chan struct{}
	release   chan struct{}
}

func newSlowSource(inner dataset.Source) *slowSource {
	return &slowSource{inner: inner, started: make(chan struct{}), release: make(chan struct{})}
}

func (s *slowSource) Spec() dataset.Spec { return s.inner.Spec() }

func (s *slowSource) Load(ctx context.Context) (*policyscope.Study, error) {
	s.startOnce.Do(func() { close(s.started) })
	<-s.release
	return s.inner.Load(ctx)
}

// TestAdmissionShed: with MaxHeavy=1 and one heavy request pinned in
// flight, the next heavy request is shed with 429 + Retry-After while
// light reads and health probes keep answering; releasing the slot lets
// the pinned request complete normally.
func TestAdmissionShed(t *testing.T) {
	tiny := policyscope.Config{NumASes: 120, Seed: 7, CollectorPeers: 8, LookingGlassASes: 5}
	slow := newSlowSource(dataset.NewSynthetic(tiny))
	cat := dataset.NewCatalog()
	if err := cat.Register("slow", slow); err != nil {
		t.Fatal(err)
	}
	srv := New(dataset.NewPool(cat, 1), WithLimits(Limits{MaxHeavy: 1}))
	ts := httptest.NewServer(srv)
	defer ts.Close()

	type result struct {
		status int
		err    error
	}
	firstc := make(chan result, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/run/overview", "application/json", strings.NewReader(""))
		if err != nil {
			firstc <- result{err: err}
			return
		}
		defer resp.Body.Close()
		_, _ = io.ReadAll(resp.Body)
		firstc <- result{status: resp.StatusCode}
	}()
	<-slow.started // the first heavy request now holds the only slot

	resp, err := http.Post(ts.URL+"/run/overview", "application/json", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	shedBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second heavy request: status %d, want 429: %s", resp.StatusCode, shedBody)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("shed response carries no Retry-After")
	}
	if !strings.Contains(string(shedBody), "overloaded") {
		t.Fatalf("shed body does not say overloaded: %s", shedBody)
	}

	// The light tier and health probes are not collateral damage.
	if status, body := get(t, ts.URL+"/experiments"); status != http.StatusOK {
		t.Fatalf("light request during heavy saturation: %d %s", status, body)
	}
	if status, body := get(t, ts.URL+"/healthz"); status != http.StatusOK {
		t.Fatalf("healthz during heavy saturation: %d %s", status, body)
	}

	close(slow.release)
	res := <-firstc
	if res.err != nil || res.status != http.StatusOK {
		t.Fatalf("pinned request after release: %+v", res)
	}
	// The slot is free again.
	if status, body := post(t, ts.URL+"/run/overview", ""); status != http.StatusOK {
		t.Fatalf("heavy request after release: %d %s", status, body)
	}
}

// TestPanicRecovery: a panicking handler answers 500 and the process
// (and every other route) keeps serving; the http.ErrAbortHandler
// sentinel still propagates so deliberate stream aborts kill the
// connection instead of minting a bogus 500.
func TestPanicRecovery(t *testing.T) {
	tiny := policyscope.Config{NumASes: 120, Seed: 7, CollectorPeers: 8, LookingGlassASes: 5}
	cat := dataset.NewCatalog()
	if err := cat.Register("tiny", dataset.NewSynthetic(tiny)); err != nil {
		t.Fatal(err)
	}
	srv := New(dataset.NewPool(cat, 1))
	srv.handle("GET /panic", "panic_test", classLight, func(w http.ResponseWriter, r *http.Request) {
		panic("boom")
	})
	srv.handle("GET /abort", "abort_test", classLight, func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("partial"))
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		panic(http.ErrAbortHandler)
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	status, body := get(t, ts.URL+"/panic")
	if status != http.StatusInternalServerError {
		t.Fatalf("panicking handler: status %d: %s", status, body)
	}
	if !strings.Contains(string(body), "internal error") {
		t.Fatalf("panic response leaks or is empty: %s", body)
	}
	// The process survived; unrelated routes still answer.
	if status, body := get(t, ts.URL+"/healthz"); status != http.StatusOK {
		t.Fatalf("healthz after panic: %d %s", status, body)
	}

	// ErrAbortHandler must reach net/http: the client sees a broken
	// stream, not a clean response.
	resp, err := http.Get(ts.URL + "/abort")
	if err == nil {
		_, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr == nil {
			t.Fatal("aborted stream read cleanly; ErrAbortHandler was swallowed")
		}
	}
}

// TestHealthzDraining: SetDraining flips healthz to 503/draining so
// load balancers pull the replica while in-flight work finishes.
func TestHealthzDraining(t *testing.T) {
	tiny := policyscope.Config{NumASes: 120, Seed: 7, CollectorPeers: 8, LookingGlassASes: 5}
	cat := dataset.NewCatalog()
	if err := cat.Register("tiny", dataset.NewSynthetic(tiny)); err != nil {
		t.Fatal(err)
	}
	srv := New(dataset.NewPool(cat, 1))
	ts := httptest.NewServer(srv)
	defer ts.Close()

	if status, _ := get(t, ts.URL+"/healthz"); status != http.StatusOK {
		t.Fatalf("healthz before drain: %d", status)
	}
	srv.SetDraining()
	status, body := get(t, ts.URL+"/healthz")
	if status != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: status %d: %s", status, body)
	}
	var h struct {
		OK       bool `json:"ok"`
		Draining bool `json:"draining"`
	}
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.OK || !h.Draining {
		t.Fatalf("draining healthz body: %+v", h)
	}
	// Draining only signals; existing routes keep answering until the
	// listener closes.
	if status, body := get(t, ts.URL+"/experiments"); status != http.StatusOK {
		t.Fatalf("request while draining: %d %s", status, body)
	}
}

// TestBuildCooldown503: a dataset whose build just failed answers 503 +
// Retry-After (not a fresh failing build) until the pool cooldown
// lapses, and the cooldown is visible through /healthz pool stats.
func TestBuildCooldown503(t *testing.T) {
	cat := dataset.NewCatalog()
	if err := cat.Register("broken", dataset.NewMRTFile(filepath.Join(t.TempDir(), "missing.mrt"))); err != nil {
		t.Fatal(err)
	}
	pool := dataset.NewPool(cat, 1)
	pool.SetFailureCooldown(time.Minute)
	ts := httptest.NewServer(New(pool))
	defer ts.Close()

	if status, body := post(t, ts.URL+"/run/overview?dataset=broken", ""); status != http.StatusInternalServerError {
		t.Fatalf("first build failure: status %d: %s", status, body)
	}
	resp, err := http.Post(ts.URL+"/run/overview?dataset=broken", "application/json", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("request during cooldown: status %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("cooldown response carries no Retry-After")
	}
	if !strings.Contains(string(body), "cooling down") {
		t.Fatalf("cooldown body: %s", body)
	}

	status, hbody := get(t, ts.URL+"/healthz")
	if status != http.StatusOK {
		t.Fatalf("healthz: %d", status)
	}
	var h struct {
		Pool dataset.Stats `json:"pool"`
	}
	if err := json.Unmarshal(hbody, &h); err != nil {
		t.Fatal(err)
	}
	le, ok := h.Pool.LastErrors["broken"]
	if !ok || le.RetryAfterSeconds <= 0 {
		t.Fatalf("cooldown not visible in healthz pool stats: %s", hbody)
	}
}

// TestRequestTimeout: the server-side heavy-request deadline cancels
// work through the normal context plumbing and answers 503.
func TestRequestTimeout(t *testing.T) {
	tiny := policyscope.Config{NumASes: 120, Seed: 7, CollectorPeers: 8, LookingGlassASes: 5}
	slow := newSlowSource(dataset.NewSynthetic(tiny))
	defer close(slow.release) // unblock the detached build goroutine
	cat := dataset.NewCatalog()
	if err := cat.Register("slow", slow); err != nil {
		t.Fatal(err)
	}
	srv := New(dataset.NewPool(cat, 1), WithLimits(Limits{RequestTimeout: 50 * time.Millisecond}))
	ts := httptest.NewServer(srv)
	defer ts.Close()

	status, body := post(t, ts.URL+"/run/overview", "")
	if status != http.StatusServiceUnavailable {
		t.Fatalf("timed-out request: status %d: %s", status, body)
	}
	if !strings.Contains(string(body), "deadline") {
		t.Fatalf("timeout body: %s", body)
	}
}
