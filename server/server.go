// Package server exposes a policyscope Session over HTTP/JSON — the
// query-service shape of the related inference systems (named,
// parameterized experiments over one shared precomputed snapshot).
//
//	GET  /experiments        the catalog: names, titles, default params
//	POST /run/{name}         run one experiment; body = params JSON
//	POST /whatif             apply a scenario; body = scenario JSON
//	POST /sweep              run a batch sweep; body = sweep request JSON
//	GET  /healthz            liveness plus session readiness
//
// /run accepts ?format=json (default) or ?format=text (the rendered
// tables/charts, as cmd/repro prints them). /sweep streams NDJSON: one
// per-scenario impact record per line (in scenario index order),
// followed by a final {"aggregate": ...} line. All computation happens
// on the shared Session: the first query pays for generation and
// simulation, later queries reuse the memoized artifacts, and what-if
// scenarios and sweeps run on copy-on-write engine clones so
// concurrent requests never contend. Handlers honor the request
// context — a disconnected client cancels its in-flight run or sweep.
package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"

	policyscope "github.com/policyscope/policyscope"
	"github.com/policyscope/policyscope/experiment"
	"github.com/policyscope/policyscope/internal/simulate"
	"github.com/policyscope/policyscope/internal/sweep"
)

// Server handles the HTTP surface over one Session.
type Server struct {
	sess *policyscope.Session
	mux  *http.ServeMux
	// ready flips once the study is built (healthz reports it).
	ready atomic.Bool
}

// New returns an http.Handler serving the session.
func New(sess *policyscope.Session) *Server {
	s := &Server{sess: sess, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /experiments", s.handleExperiments)
	s.mux.HandleFunc("POST /run/{name}", s.handleRun)
	s.mux.HandleFunc("POST /whatif", s.handleWhatIf)
	s.mux.HandleFunc("POST /sweep", s.handleSweep)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Warm builds the study and the base what-if engine eagerly (optional;
// queries warm lazily too).
func (s *Server) Warm() error {
	err := s.sess.Warm()
	if err == nil {
		s.ready.Store(true)
	}
	return err
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.sess.Experiments())
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading body: %w", err))
		return
	}
	res, err := s.sess.RunJSON(r.Context(), name, body)
	if err != nil {
		var nf *experiment.NotFoundError
		var pe *experiment.ParamError
		switch {
		case errors.As(err, &nf):
			writeError(w, http.StatusNotFound, err)
		case errors.As(err, &pe):
			writeError(w, http.StatusUnprocessableEntity, err)
		default:
			writeError(w, http.StatusInternalServerError, err)
		}
		return
	}
	s.ready.Store(true)
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := res.Render(w); err != nil {
			// Headers are gone; nothing sane left to do but log-level
			// truncation, which the client sees as a short body.
			return
		}
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Name   string            `json:"name"`
		Result experiment.Result `json:"result"`
	}{Name: name, Result: res})
}

func (s *Server) handleWhatIf(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading body: %w", err))
		return
	}
	var sc simulate.Scenario
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sc); err != nil {
		writeError(w, http.StatusUnprocessableEntity, fmt.Errorf("bad scenario: %w", err))
		return
	}
	if len(sc.Events) == 0 {
		writeError(w, http.StatusUnprocessableEntity, fmt.Errorf("scenario has no events"))
		return
	}
	// A study/engine construction failure is the server's fault (500);
	// only errors past a healthy base state are scenario-validation
	// 422s.
	if err := s.sess.Warm(); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	rep, err := s.sess.WhatIf(r.Context(), sc)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	s.ready.Store(true)
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = policyscope.WriteWhatIf(w, rep, 10)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

// SweepRequest is the POST /sweep body: the declarative spec plus
// executor knobs.
type SweepRequest struct {
	Spec sweep.Spec `json:"spec"`
	// Workers is the executor shard count (0 = GOMAXPROCS).
	Workers int `json:"workers"`
	// TopShifts bounds each record's per-prefix detail (0 = 3).
	TopShifts int `json:"top_shifts"`
	// TopK bounds the aggregate's critical-scenario lists (0 = 10).
	TopK int `json:"top_k"`
}

// handleSweep expands the spec, then streams one NDJSON line per
// scenario record followed by a final aggregate line. Spec and
// expansion errors are reported as ordinary JSON errors before any
// stream output; once streaming starts, a failure can only truncate
// the stream (the client detects it by the missing aggregate line).
// The request context aborts the sweep when the client goes away.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading body: %w", err))
		return
	}
	var req SweepRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusUnprocessableEntity, fmt.Errorf("bad sweep request: %w", err))
		return
	}
	if err := s.sess.Warm(); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	scenarios, err := s.sess.SweepScenarios(req.Spec)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	s.ready.Store(true)

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	agg, err := s.sess.Sweep(r.Context(), scenarios, sweep.Options{
		Workers: req.Workers, TopShifts: req.TopShifts, TopK: req.TopK,
		OnImpact: func(imp *sweep.Impact) error {
			if err := enc.Encode(imp); err != nil {
				return err
			}
			if flusher != nil {
				flusher.Flush()
			}
			return nil
		},
	})
	if err != nil {
		// Mid-stream failure (dead client, canceled context): the
		// stream just ends without an aggregate line.
		return
	}
	_ = enc.Encode(struct {
		Aggregate *sweep.Aggregate `json:"aggregate"`
	}{Aggregate: agg})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		OK    bool `json:"ok"`
		Ready bool `json:"ready"`
	}{OK: true, Ready: s.ready.Load()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, struct {
		Error string `json:"error"`
	}{Error: err.Error()})
}
