// Package server exposes a dataset pool of policyscope Sessions over
// HTTP/JSON — the query-service shape of the related inference systems
// (named, parameterized experiments over named precomputed snapshots).
//
//	GET  /datasets           the dataset catalog + pool residency
//	GET  /experiments        the experiment catalog: names, titles, default params
//	GET  /infer              the inference-algorithm catalog
//	POST /run/{name}         run one experiment; body = params JSON
//	POST /infer/{algo}       run one inference algorithm; body = algorithm params JSON
//	POST /whatif             apply a scenario; body = scenario JSON
//	POST /sweep              run a batch sweep; body = sweep request JSON
//	POST /sweep/shard        run one shard of a distributed sweep (internal/dsweep protocol)
//	GET  /healthz            liveness, default-dataset readiness, pool stats
//	GET  /metrics            Prometheus text exposition of the obs registry
//
// Every query endpoint accepts ?dataset=<name> selecting the universe
// it runs against; omitting it uses the catalog's default dataset, and
// an unknown name is a 404 before any work. The pool retains a bounded
// LRU of warmed sessions — the first query against a dataset pays for
// its load (synthetic generation + simulation, or MRT import), later
// queries reuse the memoized artifacts, and concurrent first queries
// against one dataset are deduplicated into a single build.
//
// /run accepts ?format=json (default) or ?format=text. /sweep streams
// NDJSON. Experiments that need generator ground truth return 422 with
// a "needs ground truth" error when the selected dataset is an imported
// snapshot. Handlers honor the request context — a disconnected client
// cancels its in-flight run, sweep, or dataset build.
//
// Every response carries an X-Request-ID header. Appending ?trace=1 to
// any query endpoint additionally appends a per-request NDJSON span
// summary after the normal body (Content-Type becomes
// application/x-ndjson), decomposing the request into dataset-load /
// warm / experiment / render phases.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync/atomic"
	"time"

	policyscope "github.com/policyscope/policyscope"
	"github.com/policyscope/policyscope/dataset"
	"github.com/policyscope/policyscope/experiment"
	"github.com/policyscope/policyscope/infer"
	"github.com/policyscope/policyscope/internal/simulate"
	"github.com/policyscope/policyscope/internal/sweep"
	"github.com/policyscope/policyscope/obs"
)

// Server handles the HTTP surface over one dataset pool.
type Server struct {
	pool   *dataset.Pool
	mux    *http.ServeMux
	start  time.Time
	limits Limits
	// heavy/light are the per-class admission gates (nil = disabled).
	heavy, light *gate
	// retryAfter is the pre-rendered Retry-After header value for sheds.
	retryAfter string
	// ready flips once the default dataset's study is built (healthz
	// reports it).
	ready atomic.Bool
	// draining flips when graceful shutdown begins; healthz turns 503 so
	// load balancers stop routing here while in-flight requests finish.
	draining atomic.Bool
	// inflightShards counts /sweep/shard requests currently streaming —
	// the load figure sweepd reports in its fleet heartbeats.
	inflightShards atomic.Int64
}

// New returns an http.Handler serving the pool.
func New(pool *dataset.Pool, opts ...Option) *Server {
	s := &Server{pool: pool, mux: http.NewServeMux(), start: time.Now()}
	for _, opt := range opts {
		opt(s)
	}
	s.limits = s.limits.withDefaults()
	s.heavy = newGate(s.limits.MaxHeavy)
	s.light = newGate(s.limits.MaxLight)
	s.retryAfter = retryAfterSeconds(s.limits.RetryAfter)
	s.handle("GET /datasets", "datasets", classLight, s.handleDatasets)
	s.handle("GET /experiments", "experiments", classLight, s.handleExperiments)
	s.handle("GET /infer", "infer_list", classLight, s.handleInferList)
	s.handle("POST /run/{name}", "run", classHeavy, s.handleRun)
	s.handle("POST /infer/{algo}", "infer", classHeavy, s.handleInfer)
	s.handle("POST /whatif", "whatif", classHeavy, s.handleWhatIf)
	s.handle("POST /sweep", "sweep", classHeavy, s.handleSweep)
	s.handle("POST /sweep/shard", "sweep_shard", classHeavy, s.handleSweepShard)
	s.handle("GET /healthz", "healthz", classNone, s.handleHealthz)
	// The exposition endpoint bypasses the middleware so scraping does
	// not inflate the request counters it reports.
	s.mux.Handle("GET /metrics", obs.Default.Handler())
	// Registration is idempotent by name, so with several servers in one
	// process (tests) the first pool's residency wins — acceptable for a
	// process-wide gauge.
	obs.NewGaugeFunc("policyscope_pool_resident",
		"Datasets currently resident in the session pool.",
		func() float64 { return float64(s.pool.Stats().Resident) })
	return s
}

// handle registers one instrumented route: request/latency/status-class
// metrics with handles pre-resolved per endpoint, an X-Request-ID
// header, optional ?trace=1 span capture, admission control for the
// endpoint's class, panic recovery, the server-side request deadline,
// and a debug-level access log.
func (s *Server) handle(pattern, name string, class endpointClass, h http.HandlerFunc) {
	rt := newRoute(name)
	g := s.gateFor(class)
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := obs.NextID()
		w.Header().Set("X-Request-ID", id)
		var tr *obs.Trace
		if r.URL.Query().Get("trace") == "1" {
			var ctx context.Context
			ctx, tr = obs.WithTrace(r.Context(), id)
			r = r.WithContext(ctx)
		}
		sw := &statusWriter{ResponseWriter: w, traced: tr != nil}
		rt.requests.Inc()
		if g != nil && !g.enter() {
			rt.shed.Inc()
			s.shed(sw, name)
			rt.observeStatus(http.StatusTooManyRequests)
			return
		}
		mHTTPInflight.Add(1)
		func() {
			defer func() {
				v := recover()
				mHTTPInflight.Add(-1)
				if g != nil {
					g.leave()
				}
				if v == nil {
					return
				}
				if v == http.ErrAbortHandler {
					// A deliberate stream abort, not a bug: net/http
					// expects the sentinel to propagate so it can kill the
					// connection without a log line.
					panic(v)
				}
				rt.panics.Inc()
				slog.Error("handler panic", "id", id, "endpoint", name, "panic", v)
				if sw.status == 0 {
					writeError(sw, http.StatusInternalServerError,
						fmt.Errorf("internal error (request %s)", id))
				}
			}()
			if class == classHeavy && s.limits.RequestTimeout > 0 {
				ctx, cancel := context.WithTimeout(r.Context(), s.limits.RequestTimeout)
				defer cancel()
				r = r.WithContext(ctx)
			}
			h(sw, r)
		}()
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		rt.observeStatus(status)
		dur := time.Since(start)
		rt.seconds.Observe(dur.Seconds())
		if tr != nil {
			_ = tr.WriteNDJSON(sw)
		}
		slog.Debug("http request",
			"id", id, "endpoint", name, "method", r.Method,
			"path", r.URL.Path, "status", status,
			"dur_ms", float64(dur.Microseconds())/1000)
	})
}

// SetDraining flips the server into its draining state: /healthz
// answers 503 with draining=true so load balancers pull this replica
// while in-flight requests complete. Wired as the httpd.Config.Draining
// hook by both daemons. It is one-way — a draining process is exiting.
func (s *Server) SetDraining() { s.draining.Store(true) }

// InflightShards reports how many /sweep/shard requests are currently
// streaming; sweepd carries it in fleet heartbeats so the coordinator
// sees per-worker load.
func (s *Server) InflightShards() int { return int(s.inflightShards.Load()) }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Warm builds and warms the default dataset's session eagerly
// (optional; queries warm lazily too). Non-default datasets stay cold
// until first queried.
func (s *Server) Warm(ctx context.Context) error {
	err := s.pool.Warm(ctx)
	if err == nil {
		s.ready.Store(true)
	}
	return err
}

// Pool returns the server's dataset pool.
func (s *Server) Pool() *dataset.Pool { return s.pool }

// session resolves the request's dataset (?dataset=, default when
// absent) to a warmed session, writing the error response itself on
// failure: 404 for an unknown name — before any build work — and 500
// for a failed build.
func (s *Server) session(w http.ResponseWriter, r *http.Request) (*policyscope.Session, bool) {
	name := r.URL.Query().Get("dataset")
	_, span := obs.StartSpan(r.Context(), "dataset_load")
	sess, err := s.pool.Session(r.Context(), name)
	span.End()
	if err != nil {
		var unknown *dataset.UnknownDatasetError
		if errors.As(err, &unknown) {
			writeError(w, http.StatusNotFound, err)
		} else {
			// A dataset that fails to load is the server's fault (500),
			// unless it is merely cooling down or the request ran out of
			// deadline (503).
			s.writeFailure(w, r, err)
		}
		return nil, false
	}
	if name == "" || name == s.pool.Catalog().Default() {
		s.ready.Store(true)
	}
	return sess, true
}

func (s *Server) handleDatasets(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.pool.Datasets())
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, policyscope.Experiments())
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading body: %w", err))
		return
	}
	if algo := r.URL.Query().Get("algo"); algo != "" {
		body, err = mergeAlgoQuery(name, algo, body)
		if err != nil {
			writeError(w, http.StatusUnprocessableEntity, err)
			return
		}
	}
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	res, err := sess.RunJSON(r.Context(), name, body)
	if err != nil {
		var nf *experiment.NotFoundError
		var pe *experiment.ParamError
		switch {
		case errors.As(err, &nf):
			writeError(w, http.StatusNotFound, err)
		case errors.As(err, &pe):
			writeError(w, http.StatusUnprocessableEntity, err)
		case errors.Is(err, policyscope.ErrNeedsGroundTruth):
			// The experiment exists but the selected dataset cannot
			// answer it: the request, not the server, is at fault.
			writeError(w, http.StatusUnprocessableEntity, err)
		default:
			s.writeFailure(w, r, err)
		}
		return
	}
	_, span := obs.StartSpan(r.Context(), "render")
	defer span.End()
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := res.Render(w); err != nil {
			// Headers are gone; nothing sane left to do but log-level
			// truncation, which the client sees as a short body.
			return
		}
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Name   string            `json:"name"`
		Result experiment.Result `json:"result"`
	}{Name: name, Result: res})
}

// mergeAlgoQuery folds a ?algo=<name> query shortcut into the params
// body of the two inference experiments.
func mergeAlgoQuery(name, algo string, body []byte) ([]byte, error) {
	m := map[string]any{}
	if len(bytes.TrimSpace(body)) > 0 {
		if err := json.Unmarshal(body, &m); err != nil {
			return nil, fmt.Errorf("bad params: %w", err)
		}
	}
	switch name {
	case "inferbakeoff":
		m["algos"] = []string{algo}
	case "inferensemble":
		m["algo"] = algo
	default:
		return nil, fmt.Errorf("?algo= applies only to inferbakeoff and inferensemble")
	}
	return json.Marshal(m)
}

func (s *Server) handleInferList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, policyscope.InferAlgorithms())
}

// handleInfer runs one registered inference algorithm against the
// dataset's observed paths. An unknown algorithm is rejected before the
// body is read or any dataset build starts.
func (s *Server) handleInfer(w http.ResponseWriter, r *http.Request) {
	algo := r.PathValue("algo")
	if _, ok := infer.Default.Get(algo); !ok {
		writeError(w, http.StatusUnprocessableEntity, &infer.NotFoundError{Name: algo})
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading body: %w", err))
		return
	}
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	out, err := sess.Infer(r.Context(), algo, body)
	if err != nil {
		var pe *infer.ParamError
		if errors.As(err, &pe) {
			writeError(w, http.StatusUnprocessableEntity, err)
		} else {
			s.writeFailure(w, r, err)
		}
		return
	}
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = out.Graph.WriteTo(w)
		return
	}
	recs := out.Graph.Records()
	rels := make([]string, len(recs))
	for i, rec := range recs {
		rels[i] = rec.String()
	}
	writeJSON(w, http.StatusOK, struct {
		Algorithm     string                `json:"algorithm"`
		ASes          int                   `json:"ases"`
		Edges         int                   `json:"edges"`
		Relationships []string              `json:"relationships"`
		Posterior     []infer.EdgePosterior `json:"posterior,omitempty"`
	}{out.Algorithm, out.Graph.NumNodes(), out.Graph.NumEdges(), rels, out.Posterior})
}

func (s *Server) handleWhatIf(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading body: %w", err))
		return
	}
	var sc simulate.Scenario
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sc); err != nil {
		writeError(w, http.StatusUnprocessableEntity, fmt.Errorf("bad scenario: %w", err))
		return
	}
	if len(sc.Events) == 0 {
		writeError(w, http.StatusUnprocessableEntity, fmt.Errorf("scenario has no events"))
		return
	}
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	// A study/engine construction failure is the server's fault (500) —
	// except a snapshot-only dataset, which can never run what-ifs
	// (422). Only errors past a healthy base state are
	// scenario-validation 422s.
	_, warmSpan := obs.StartSpan(r.Context(), "warm")
	err = sess.Warm()
	warmSpan.End()
	if err != nil {
		s.writeFailure(w, r, err)
		return
	}
	_, span := obs.StartSpan(r.Context(), "whatif")
	rep, err := sess.WhatIf(r.Context(), sc)
	span.End()
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = policyscope.WriteWhatIf(w, rep, 10)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

// SweepRequest is the POST /sweep body: the declarative spec plus
// executor knobs.
type SweepRequest struct {
	Spec sweep.Spec `json:"spec"`
	// Workers is the executor shard count (0 = GOMAXPROCS).
	Workers int `json:"workers"`
	// TopShifts bounds each record's per-prefix detail (0 = 3).
	TopShifts int `json:"top_shifts"`
	// TopK bounds the aggregate's critical-scenario lists (0 = 10).
	TopK int `json:"top_k"`
}

// handleSweep expands the spec, then streams one NDJSON line per
// scenario record, a final aggregate line, and a {"sweep_done": ...}
// trailer (the stream-completeness signal, mirroring /sweep/shard's
// shard_done). Spec and expansion errors are reported as ordinary JSON
// errors before any stream output; once streaming starts, a failure is
// reported as a typed {"sweep_error": ...} record in place of the
// trailer — a stream ending in neither was truncated. The request
// context aborts the sweep when the client goes away.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading body: %w", err))
		return
	}
	var req SweepRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusUnprocessableEntity, fmt.Errorf("bad sweep request: %w", err))
		return
	}
	// Structural spec validation is topology-free; reject a malformed
	// spec (naming the offending generator) before paying for a dataset
	// build.
	if err := req.Spec.Validate(); err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	_, warmSpan := obs.StartSpan(r.Context(), "warm")
	err = sess.Warm()
	warmSpan.End()
	if err != nil {
		s.writeFailure(w, r, err)
		return
	}
	_, expandSpan := obs.StartSpan(r.Context(), "expand")
	scenarios, err := sess.SweepScenarios(r.Context(), req.Spec)
	expandSpan.End()
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	_, sweepSpan := obs.StartSpan(r.Context(), "sweep")
	defer sweepSpan.End()
	records := 0
	agg, err := sess.Sweep(r.Context(), scenarios, sweep.Options{
		Workers: req.Workers, TopShifts: req.TopShifts, TopK: req.TopK,
		OnImpact: func(imp *sweep.Impact) error {
			if err := enc.Encode(imp); err != nil {
				return err
			}
			records++
			if flusher != nil {
				flusher.Flush()
			}
			return nil
		},
	})
	if err != nil {
		// Mid-stream failure: headers are long gone, so a typed error
		// record is the only channel left. When the failure is the
		// client's own disconnect the write goes nowhere — either way
		// the stream ends without sweep_done, which is the truncation
		// signal.
		_ = enc.Encode(struct {
			Err sweep.StreamError `json:"sweep_error"`
		}{sweep.StreamError{Error: err.Error()}})
		return
	}
	_ = enc.Encode(struct {
		Aggregate *sweep.Aggregate `json:"aggregate"`
	}{Aggregate: agg})
	_ = enc.Encode(struct {
		Done sweep.Done `json:"sweep_done"`
	}{sweep.Done{Scenarios: len(scenarios), Records: records}})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	draining := s.draining.Load()
	status := http.StatusOK
	if draining {
		// 503 pulls the replica from load-balancer rotation while
		// in-flight requests drain; the body says why.
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, struct {
		OK bool `json:"ok"`
		// Ready reports whether the default dataset has been built.
		Ready bool `json:"ready"`
		// Draining is true once graceful shutdown has begun: the
		// listener still answers, but no new work should be routed here.
		Draining      bool          `json:"draining"`
		UptimeSeconds float64       `json:"uptime_seconds"`
		Pool          dataset.Stats `json:"pool"`
	}{OK: !draining, Ready: s.ready.Load(), Draining: draining,
		UptimeSeconds: time.Since(s.start).Seconds(), Pool: s.pool.Stats()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, struct {
		Error string `json:"error"`
	}{Error: err.Error()})
}

// writeFailure maps a post-validation failure to its response status.
// A dataset cooling down after a failed build and a request that ran
// out of its server-side deadline are transient (503 + Retry-After);
// everything else is a genuine 500.
func (s *Server) writeFailure(w http.ResponseWriter, r *http.Request, err error) {
	var cool *dataset.BuildCooldownError
	switch {
	case errors.As(err, &cool):
		w.Header().Set("Retry-After", retryAfterSeconds(cool.RetryAfter))
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, context.DeadlineExceeded),
		errors.Is(r.Context().Err(), context.DeadlineExceeded):
		w.Header().Set("Retry-After", s.retryAfter)
		writeError(w, http.StatusServiceUnavailable,
			fmt.Errorf("request deadline exceeded: %w", err))
	default:
		writeError(w, http.StatusInternalServerError, err)
	}
}
