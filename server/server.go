// Package server exposes a policyscope Session over HTTP/JSON — the
// query-service shape of the related inference systems (named,
// parameterized experiments over one shared precomputed snapshot).
//
//	GET  /experiments        the catalog: names, titles, default params
//	POST /run/{name}         run one experiment; body = params JSON
//	POST /whatif             apply a scenario; body = scenario JSON
//	GET  /healthz            liveness plus session readiness
//
// /run accepts ?format=json (default) or ?format=text (the rendered
// tables/charts, as cmd/repro prints them). All computation happens on
// the shared Session: the first query pays for generation and
// simulation, later queries reuse the memoized artifacts, and what-if
// scenarios run on copy-on-write engine clones so concurrent requests
// never contend.
package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"

	policyscope "github.com/policyscope/policyscope"
	"github.com/policyscope/policyscope/experiment"
	"github.com/policyscope/policyscope/internal/simulate"
)

// Server handles the HTTP surface over one Session.
type Server struct {
	sess *policyscope.Session
	mux  *http.ServeMux
	// ready flips once the study is built (healthz reports it).
	ready atomic.Bool
}

// New returns an http.Handler serving the session.
func New(sess *policyscope.Session) *Server {
	s := &Server{sess: sess, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /experiments", s.handleExperiments)
	s.mux.HandleFunc("POST /run/{name}", s.handleRun)
	s.mux.HandleFunc("POST /whatif", s.handleWhatIf)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Warm builds the study and the base what-if engine eagerly (optional;
// queries warm lazily too).
func (s *Server) Warm() error {
	err := s.sess.Warm()
	if err == nil {
		s.ready.Store(true)
	}
	return err
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.sess.Experiments())
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading body: %w", err))
		return
	}
	res, err := s.sess.RunJSON(name, body)
	if err != nil {
		var nf *experiment.NotFoundError
		var pe *experiment.ParamError
		switch {
		case errors.As(err, &nf):
			writeError(w, http.StatusNotFound, err)
		case errors.As(err, &pe):
			writeError(w, http.StatusUnprocessableEntity, err)
		default:
			writeError(w, http.StatusInternalServerError, err)
		}
		return
	}
	s.ready.Store(true)
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := res.Render(w); err != nil {
			// Headers are gone; nothing sane left to do but log-level
			// truncation, which the client sees as a short body.
			return
		}
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Name   string            `json:"name"`
		Result experiment.Result `json:"result"`
	}{Name: name, Result: res})
}

func (s *Server) handleWhatIf(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading body: %w", err))
		return
	}
	var sc simulate.Scenario
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sc); err != nil {
		writeError(w, http.StatusUnprocessableEntity, fmt.Errorf("bad scenario: %w", err))
		return
	}
	if len(sc.Events) == 0 {
		writeError(w, http.StatusUnprocessableEntity, fmt.Errorf("scenario has no events"))
		return
	}
	// A study/engine construction failure is the server's fault (500);
	// only errors past a healthy base state are scenario-validation
	// 422s.
	if err := s.sess.Warm(); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	rep, err := s.sess.WhatIf(sc)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	s.ready.Store(true)
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = policyscope.WriteWhatIf(w, rep, 10)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		OK    bool `json:"ok"`
		Ready bool `json:"ready"`
	}{OK: true, Ready: s.ready.Load()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, struct {
		Error string `json:"error"`
	}{Error: err.Error()})
}
