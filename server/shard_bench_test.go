package server

import (
	"context"
	"net/http/httptest"
	"sync"
	"testing"

	policyscope "github.com/policyscope/policyscope"
	"github.com/policyscope/policyscope/dataset"
	"github.com/policyscope/policyscope/internal/dsweep"
	"github.com/policyscope/policyscope/internal/simulate"
	"github.com/policyscope/policyscope/internal/sweep"
)

// benchFleet is the shared fixture for the distributed-overhead
// benchmarks: one dataset pool serving a 300-AS study, the session the
// single-process baseline sweeps directly, and two HTTP workers
// (sharing the pool, like a fleet sharing a study cache) for the
// coordinator. Built once — the study build dominates setup and must
// not be attributed to either benchmark.
var (
	benchOnce sync.Once
	benchErr  error
	bench     struct {
		sess      *policyscope.Session
		spec      sweep.Spec
		scenarios []simulate.Scenario
		workers   []string
		cleanup   []func()
	}
)

func benchSetup(b *testing.B) {
	b.Helper()
	benchOnce.Do(func() {
		cfg := policyscope.Config{NumASes: 300, Seed: 11, CollectorPeers: 10, LookingGlassASes: 5}
		src := dataset.NewSynthetic(cfg)
		cat := dataset.NewCatalog()
		if benchErr = cat.Register("bench", src); benchErr != nil {
			return
		}
		pool := dataset.NewPool(cat, 1)
		bench.sess, benchErr = pool.Session(context.Background(), "bench")
		if benchErr != nil {
			return
		}
		if benchErr = bench.sess.Warm(); benchErr != nil {
			return
		}
		bench.spec = sweep.Spec{Generators: []sweep.Generator{{Kind: sweep.KindAllSingleLinkFailures, Max: 256}}}
		topo, _, err := dataset.LoadTopology(context.Background(), src)
		if err != nil {
			benchErr = err
			return
		}
		bench.scenarios, benchErr = sweep.Expand(context.Background(), topo, bench.spec)
		if benchErr != nil {
			return
		}
		srv := New(pool)
		for i := 0; i < 2; i++ {
			ts := httptest.NewServer(srv)
			bench.cleanup = append(bench.cleanup, ts.Close)
			bench.workers = append(bench.workers, ts.URL)
		}
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
}

// BenchmarkDSweepSingleProcess is the baseline: the in-process sharded
// executor over the full scenario list. One op = the whole sweep.
func BenchmarkDSweepSingleProcess(b *testing.B) {
	benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.sess.Sweep(context.Background(), bench.scenarios, sweep.Options{Workers: 2}); err != nil {
			b.Fatal(err)
		}
	}
	reportRecords(b)
}

// BenchmarkDSweepCoordinator runs the same sweep through the
// distributed coordinator over two local HTTP workers — the number
// bench_dsweep.sh gates against the single-process baseline: the fleet
// protocol (shard dispatch, NDJSON round trip, re-serialization) must
// not cost more than 20% of throughput even with zero network distance
// and shared cores.
func BenchmarkDSweepCoordinator(b *testing.B) {
	benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := dsweep.Run(context.Background(), bench.spec, bench.scenarios, dsweep.Options{
			Workers:           bench.workers,
			ShardSize:         32,
			WorkerParallelism: 1,
			Dataset:           "bench",
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	reportRecords(b)
}

func reportRecords(b *testing.B) {
	b.ReportMetric(float64(len(bench.scenarios)), "records")
	b.ReportMetric(float64(len(bench.scenarios)*b.N)/b.Elapsed().Seconds(), "records/sec")
}
