package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	policyscope "github.com/policyscope/policyscope"
	"github.com/policyscope/policyscope/dataset"
)

func testConfig() policyscope.Config {
	cfg := policyscope.DefaultConfig()
	cfg.NumASes = 200
	cfg.Seed = 5
	cfg.CollectorPeers = 10
	cfg.LookingGlassASes = 6
	return cfg
}

// testServer serves a three-dataset catalog: "default" (the synthetic
// study the old single-session server carried), "tiny" (a second
// synthetic universe), and "imported" (an MRT snapshot of tiny, i.e. a
// snapshot-only dataset).
func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	cat := dataset.NewCatalog()
	if err := cat.Register("default", dataset.NewSynthetic(testConfig())); err != nil {
		t.Fatal(err)
	}
	tiny := policyscope.Config{NumASes: 120, Seed: 7, CollectorPeers: 8, LookingGlassASes: 5}
	if err := cat.Register("tiny", dataset.NewSynthetic(tiny)); err != nil {
		t.Fatal(err)
	}
	if err := cat.Register("imported", dataset.NewMRTFile(writeTinyMRT(t, tiny))); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(dataset.NewPool(cat, 3)))
	t.Cleanup(ts.Close)
	return ts
}

// writeTinyMRT materializes an MRT snapshot for the tiny config.
func writeTinyMRT(t *testing.T, cfg policyscope.Config) string {
	t.Helper()
	study, err := policyscope.NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "tiny.mrt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := study.Snapshot.WriteMRT(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func post(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

func TestExperimentsEndpoint(t *testing.T) {
	ts := testServer(t)
	status, body := get(t, ts.URL+"/experiments")
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var infos []struct {
		Name             string          `json:"name"`
		Title            string          `json:"title"`
		Group            string          `json:"group"`
		NeedsGroundTruth bool            `json:"needs_ground_truth"`
		Params           json.RawMessage `json:"params"`
	}
	if err := json.Unmarshal(body, &infos); err != nil {
		t.Fatalf("%v in %s", err, body)
	}
	names := map[string]bool{}
	snapshotOK := map[string]bool{}
	for _, info := range infos {
		names[info.Name] = true
		snapshotOK[info.Name] = !info.NeedsGroundTruth
	}
	for _, want := range []string{"table1", "table5", "figure9", "whatif", "summary"} {
		if !names[want] {
			t.Errorf("catalog missing %s", want)
		}
	}
	if !snapshotOK["table5"] || snapshotOK["table1"] {
		t.Errorf("needs_ground_truth flags wrong: table5 snapshotOK=%v table1 snapshotOK=%v",
			snapshotOK["table5"], snapshotOK["table1"])
	}
}

func TestDatasetsEndpoint(t *testing.T) {
	ts := testServer(t)
	status, body := get(t, ts.URL+"/datasets")
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var infos []struct {
		Name    string `json:"name"`
		Default bool   `json:"default"`
		Spec    struct {
			Kind string `json:"kind"`
		} `json:"spec"`
	}
	if err := json.Unmarshal(body, &infos); err != nil {
		t.Fatalf("%v in %s", err, body)
	}
	if len(infos) != 3 {
		t.Fatalf("want 3 datasets, got %s", body)
	}
	kinds := map[string]string{}
	var def string
	for _, info := range infos {
		kinds[info.Name] = info.Spec.Kind
		if info.Default {
			def = info.Name
		}
	}
	if def != "default" || kinds["imported"] != dataset.KindMRT || kinds["tiny"] != dataset.KindSynthetic {
		t.Fatalf("unexpected catalog: %s", body)
	}
}

func TestRunEndpoint(t *testing.T) {
	ts := testServer(t)

	// Defaults (empty body), JSON response.
	status, body := post(t, ts.URL+"/run/table5", "")
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var out struct {
		Name   string `json:"name"`
		Result struct {
			Rows []json.RawMessage `json:"rows"`
		} `json:"result"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Name != "table5" || len(out.Result.Rows) == 0 {
		t.Fatalf("unexpected payload: %s", body)
	}

	// Params accepted.
	status, body = post(t, ts.URL+"/run/table6", `{"providers": 2, "max_rows": 3, "min_prefixes": 1}`)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}

	// Text rendering.
	status, body = post(t, ts.URL+"/run/table2?format=text", "")
	if status != http.StatusOK || !strings.Contains(string(body), "Table 2") {
		t.Fatalf("text format: %d %s", status, body)
	}

	// Unknown name → 404; bad params → 422.
	if status, _ = post(t, ts.URL+"/run/nope", ""); status != http.StatusNotFound {
		t.Fatalf("unknown experiment status %d", status)
	}
	if status, _ = post(t, ts.URL+"/run/table6", `{"bogus": 1}`); status != http.StatusUnprocessableEntity {
		t.Fatalf("bad params status %d", status)
	}
}

// TestDatasetSelection exercises ?dataset= across the three catalog
// entries: a second synthetic universe answers with different bytes
// than the default, an unknown name 404s before any work, and the
// imported snapshot runs snapshot-capable experiments but answers
// ground-truth-dependent ones with 422.
func TestDatasetSelection(t *testing.T) {
	ts := testServer(t)

	status, defBody := post(t, ts.URL+"/run/table5", "")
	if status != http.StatusOK {
		t.Fatalf("default: %d %s", status, defBody)
	}
	status, tinyBody := post(t, ts.URL+"/run/table5?dataset=tiny", "")
	if status != http.StatusOK {
		t.Fatalf("tiny: %d %s", status, tinyBody)
	}
	if string(defBody) == string(tinyBody) {
		t.Fatal("tiny dataset answered with the default dataset's bytes")
	}

	// Unknown dataset → 404, and no session was built for it.
	if status, _ = post(t, ts.URL+"/run/table5?dataset=nope", ""); status != http.StatusNotFound {
		t.Fatalf("unknown dataset status %d", status)
	}

	// The imported MRT snapshot runs the SA detector...
	status, body := post(t, ts.URL+"/run/table5?dataset=imported", "")
	if status != http.StatusOK {
		t.Fatalf("imported table5: %d %s", status, body)
	}
	// ...but has no ground truth for Table 1 or what-ifs.
	status, body = post(t, ts.URL+"/run/table1?dataset=imported", "")
	if status != http.StatusUnprocessableEntity || !strings.Contains(string(body), "ground truth") {
		t.Fatalf("imported table1: %d %s", status, body)
	}
	status, body = post(t, ts.URL+"/whatif?dataset=imported", `{"events": [{"kind": "link_fail", "a": 1, "b": 2}]}`)
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("imported whatif: %d %s", status, body)
	}
}

func TestWhatIfEndpoint(t *testing.T) {
	ts := testServer(t)

	// Discover a failover subject through the default whatif run.
	status, body := post(t, ts.URL+"/run/whatif", "")
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var run struct {
		Result struct {
			Report struct {
				Scenario struct {
					Events []json.RawMessage `json:"events"`
				} `json:"scenario"`
			} `json:"report"`
		} `json:"result"`
	}
	if err := json.Unmarshal(body, &run); err != nil {
		t.Fatal(err)
	}
	if len(run.Result.Report.Scenario.Events) == 0 {
		t.Skip("no failover subject at this scale")
	}
	event, err := json.Marshal(run.Result.Report.Scenario)
	if err != nil {
		t.Fatal(err)
	}

	// Re-apply the same scenario via the dedicated endpoint.
	status, body = post(t, ts.URL+"/whatif", string(event))
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var rep struct {
		Delta struct {
			Recomputed int `json:"Recomputed"`
		} `json:"Delta"`
	}
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Delta.Recomputed == 0 {
		t.Fatalf("what-if recomputed nothing: %s", body)
	}

	// Bad bodies rejected.
	if status, _ = post(t, ts.URL+"/whatif", `{"events": []}`); status != http.StatusUnprocessableEntity {
		t.Fatalf("empty scenario status %d", status)
	}
	if status, _ = post(t, ts.URL+"/whatif", `{"bogus": 1}`); status != http.StatusUnprocessableEntity {
		t.Fatalf("unknown field status %d", status)
	}
}

func TestSweepEndpoint(t *testing.T) {
	ts := testServer(t)

	// A capped single-link-failure sweep streams NDJSON: one record per
	// scenario, a final aggregate line, and the sweep_done trailer.
	status, body := post(t, ts.URL+"/sweep",
		`{"spec": {"generators": [{"kind": "all_single_link_failures", "max": 6}]}, "workers": 3}`)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) != 8 {
		t.Fatalf("want 6 records + aggregate + sweep_done, got %d lines: %s", len(lines), body)
	}
	for i, line := range lines[:6] {
		var rec struct {
			Index int    `json:"index"`
			Name  string `json:"name"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d: %v in %s", i, err, line)
		}
		if rec.Index != i || !strings.HasPrefix(rec.Name, "link_fail:") {
			t.Fatalf("line %d out of order or misnamed: %s", i, line)
		}
	}
	var final struct {
		Aggregate struct {
			Scenarios int `json:"scenarios"`
		} `json:"aggregate"`
	}
	if err := json.Unmarshal([]byte(lines[6]), &final); err != nil {
		t.Fatalf("aggregate line: %v in %s", err, lines[6])
	}
	if final.Aggregate.Scenarios != 6 {
		t.Fatalf("aggregate scenarios = %d", final.Aggregate.Scenarios)
	}
	// The trailer is the completeness signal: scenarios and records must
	// cross-check, and its content is deterministic (byte-identity below
	// covers it too).
	var trailer struct {
		Done *struct {
			Scenarios int `json:"scenarios"`
			Records   int `json:"records"`
		} `json:"sweep_done"`
	}
	if err := json.Unmarshal([]byte(lines[7]), &trailer); err != nil || trailer.Done == nil {
		t.Fatalf("sweep_done trailer: %v in %s", err, lines[7])
	}
	if trailer.Done.Scenarios != 6 || trailer.Done.Records != 6 {
		t.Fatalf("trailer counts = %+v, want 6/6", trailer.Done)
	}

	// Identical request → byte-identical stream (deterministic across
	// requests, hence across worker placements).
	status, body2 := post(t, ts.URL+"/sweep",
		`{"spec": {"generators": [{"kind": "all_single_link_failures", "max": 6}]}, "workers": 8}`)
	if status != http.StatusOK || string(body2) != string(body) {
		t.Fatalf("sweep stream not deterministic across worker counts")
	}

	// Bad specs rejected before any stream output.
	if status, _ = post(t, ts.URL+"/sweep", `{"spec": {"generators": [{"kind": "nope"}]}}`); status != http.StatusUnprocessableEntity {
		t.Fatalf("bad generator status %d", status)
	}
	if status, _ = post(t, ts.URL+"/sweep", `{"bogus": 1}`); status != http.StatusUnprocessableEntity {
		t.Fatalf("unknown field status %d", status)
	}
	if status, _ = post(t, ts.URL+"/sweep", `{"spec": {}}`); status != http.StatusUnprocessableEntity {
		t.Fatalf("empty spec status %d", status)
	}
}

// TestSweepClientDisconnect proves a canceled request context stops an
// in-flight sweep (the satellite contract: a dead client cancels its
// work instead of burning the executor).
func TestSweepClientDisconnect(t *testing.T) {
	ts := testServer(t)
	// Warm so the sweep itself is the only slow part.
	if status, body := post(t, ts.URL+"/run/overview", ""); status != http.StatusOK {
		t.Fatalf("warm: %d %s", status, body)
	}
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/sweep",
		strings.NewReader(`{"spec": {"generators": [{"kind": "all_single_link_failures"}]}, "workers": 1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	// Read one record, then walk away.
	buf := make([]byte, 1)
	if _, err := resp.Body.Read(buf); err != nil {
		t.Fatalf("first byte: %v", err)
	}
	cancel()
	if _, err := io.ReadAll(resp.Body); err == nil {
		t.Fatal("expected a truncated stream after cancellation")
	}
}

// TestConcurrentRequests hammers one server with a mixed multi-dataset
// workload — the production pattern the pool exists for. Run with
// -race.
func TestConcurrentRequests(t *testing.T) {
	ts := testServer(t)
	paths := []string{
		"/run/table2", "/run/table5", "/run/table7", "/run/case3",
		"/run/atoms", "/run/whatif", "/run/summary",
		"/run/table5?dataset=tiny", "/run/table8?dataset=imported",
	}
	var wg sync.WaitGroup
	errs := make(chan string, 2*len(paths))
	for round := 0; round < 2; round++ {
		for _, p := range paths {
			wg.Add(1)
			go func(p string) {
				defer wg.Done()
				status, body := post(t, ts.URL+p, "")
				if status != http.StatusOK {
					errs <- fmt.Sprintf("%s: %d %s", p, status, body)
				}
			}(p)
		}
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

func TestHealthz(t *testing.T) {
	ts := testServer(t)
	status, body := get(t, ts.URL+"/healthz")
	if status != http.StatusOK || !strings.Contains(string(body), `"ok": true`) {
		t.Fatalf("healthz: %d %s", status, body)
	}
	var h struct {
		OK    bool `json:"ok"`
		Ready bool `json:"ready"`
		Pool  struct {
			Datasets int    `json:"datasets"`
			Default  string `json:"default"`
			Resident int    `json:"resident"`
			Capacity int    `json:"capacity"`
		} `json:"pool"`
	}
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Pool.Datasets != 3 || h.Pool.Default != "default" || h.Pool.Capacity != 3 {
		t.Fatalf("pool stats: %s", body)
	}
	if h.Ready {
		t.Fatal("ready before any default-dataset query")
	}

	// A default-dataset query flips readiness and registers residency.
	if status, body := post(t, ts.URL+"/run/table5", ""); status != http.StatusOK {
		t.Fatalf("table5: %d %s", status, body)
	}
	_, body = get(t, ts.URL+"/healthz")
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if !h.Ready || h.Pool.Resident != 1 {
		t.Fatalf("after query: %s", body)
	}
}

func TestInferListEndpoint(t *testing.T) {
	ts := testServer(t)
	status, body := get(t, ts.URL+"/infer")
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var infos []struct {
		Name          string          `json:"name"`
		Title         string          `json:"title"`
		Probabilistic bool            `json:"probabilistic"`
		Params        json.RawMessage `json:"params"`
	}
	if err := json.Unmarshal(body, &infos); err != nil {
		t.Fatalf("%v in %s", err, body)
	}
	names := map[string]bool{}
	for _, info := range infos {
		names[info.Name] = true
		if info.Title == "" {
			t.Errorf("algorithm %s: no title", info.Name)
		}
	}
	for _, want := range []string{"gao", "rank", "pari"} {
		if !names[want] {
			t.Errorf("algorithm catalog missing %s", want)
		}
	}
}

func TestInferEndpoint(t *testing.T) {
	ts := testServer(t)

	// An unknown algorithm is a 422 before any dataset build: the pool
	// must still be empty afterwards.
	status, body := post(t, ts.URL+"/infer/nope", "")
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("bad algo: %d %s", status, body)
	}
	if _, hbody := get(t, ts.URL+"/healthz"); !strings.Contains(string(hbody), `"resident": 0`) {
		t.Fatalf("bad algo built a dataset: %s", hbody)
	}

	// Bad params: 422.
	if status, body := post(t, ts.URL+"/infer/gao", `{"bogus":1}`); status != http.StatusUnprocessableEntity {
		t.Fatalf("bad params: %d %s", status, body)
	}

	// A real run returns the annotated edge list; pari adds a posterior.
	status, body = post(t, ts.URL+"/infer/gao", "")
	if status != http.StatusOK {
		t.Fatalf("gao: %d %s", status, body)
	}
	var res struct {
		Algorithm     string   `json:"algorithm"`
		ASes          int      `json:"ases"`
		Edges         int      `json:"edges"`
		Relationships []string `json:"relationships"`
		Posterior     []struct {
			A   uint32  `json:"a"`
			B   uint32  `json:"b"`
			P2C float64 `json:"p2c"`
		} `json:"posterior"`
	}
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatalf("%v in %s", err, body)
	}
	if res.Algorithm != "gao" || res.Edges == 0 || len(res.Relationships) != res.Edges || len(res.Posterior) != 0 {
		t.Fatalf("gao response shape: %s", body)
	}
	if !strings.Contains(res.Relationships[0], "|") {
		t.Fatalf("relationship not in a|b|rel form: %q", res.Relationships[0])
	}

	status, body = post(t, ts.URL+"/infer/pari?dataset=imported", `{"smoothing":0.25}`)
	if status != http.StatusOK {
		t.Fatalf("pari on import: %d %s", status, body)
	}
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Posterior) != res.Edges || res.Edges == 0 {
		t.Fatalf("pari posterior shape: %d edges, %d posterior rows", res.Edges, len(res.Posterior))
	}

	// Text format streams the CAIDA file body.
	resp, err := http.Post(ts.URL+"/infer/rank?format=text", "application/json", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	text, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("text format content type %q", ct)
	}
	lines := strings.Split(strings.TrimSpace(string(text)), "\n")
	if len(lines) == 0 || strings.Count(lines[0], "|") != 2 {
		t.Fatalf("text body not a|b|rel:\n%s", text)
	}
}

func TestRunAlgoQueryShortcut(t *testing.T) {
	ts := testServer(t)

	status, body := post(t, ts.URL+"/run/inferbakeoff?algo=rank", "")
	if status != http.StatusOK {
		t.Fatalf("bakeoff?algo=rank: %d %s", status, body)
	}
	var wrapped struct {
		Result struct {
			Algorithms []struct {
				Name string `json:"name"`
			} `json:"algorithms"`
		} `json:"result"`
	}
	if err := json.Unmarshal(body, &wrapped); err != nil {
		t.Fatal(err)
	}
	if len(wrapped.Result.Algorithms) != 1 || wrapped.Result.Algorithms[0].Name != "rank" {
		t.Fatalf("?algo= did not narrow the bakeoff: %s", body)
	}

	// The shortcut composes with a params body.
	status, body = post(t, ts.URL+"/run/inferbakeoff?algo=gao", `{"score":true}`)
	if status != http.StatusOK {
		t.Fatalf("scored bakeoff: %d %s", status, body)
	}
	if !strings.Contains(string(body), `"score"`) {
		t.Fatalf("score=true body ignored: %s", body)
	}

	// On an experiment that does not take an algorithm: 422.
	if status, body := post(t, ts.URL+"/run/table5?algo=gao", ""); status != http.StatusUnprocessableEntity {
		t.Fatalf("?algo= on table5: %d %s", status, body)
	}

	// An unknown algorithm via the shortcut surfaces as a 422 from the
	// experiment's own validation.
	if status, body := post(t, ts.URL+"/run/inferbakeoff?algo=nope", ""); status != http.StatusUnprocessableEntity {
		t.Fatalf("bad ?algo=: %d %s", status, body)
	}
}
