package server

import (
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"
)

// Endpoint classes for admission control. Catalog reads cost
// microseconds; /run, /infer, /whatif, /sweep, and /sweep/shard each
// pin a core (or several) for the whole request, so they get a much
// smaller in-flight bound. Shedding over the bound with 429 keeps the
// process answering instead of queueing itself to death.
type endpointClass int

const (
	// classNone exempts an endpoint from admission entirely (/healthz:
	// load balancers must always get a probe answer, especially from an
	// overloaded or draining process).
	classNone endpointClass = iota
	// classLight is the cheap catalog/read tier.
	classLight
	// classHeavy is the compute tier: experiments, inference, what-ifs,
	// sweeps, and sweep shards.
	classHeavy
)

// Limits is the server's admission-control configuration.
type Limits struct {
	// MaxHeavy bounds concurrently admitted heavy requests (run, infer,
	// whatif, sweep, sweep/shard). 0 takes DefaultMaxHeavy; negative
	// disables the gate.
	MaxHeavy int
	// MaxLight bounds concurrently admitted light requests (catalog
	// reads). 0 takes DefaultMaxLight; negative disables the gate.
	MaxLight int
	// RequestTimeout, when positive, is a server-side deadline applied
	// to every heavy request's context — a sweep or run that outlives it
	// is canceled through the existing context plumbing. 0 disables it
	// (long NDJSON sweeps run as long as they need by default).
	RequestTimeout time.Duration
	// RetryAfter is the Retry-After hint on shed (429) responses.
	// 0 takes DefaultRetryAfter.
	RetryAfter time.Duration
}

// Admission defaults. MaxHeavy is deliberately generous — the gate
// exists to stop unbounded pile-up under overload, not to serialize a
// busy-but-healthy process.
const (
	DefaultMaxHeavy   = 64
	DefaultMaxLight   = 1024
	DefaultRetryAfter = time.Second
)

func (l Limits) withDefaults() Limits {
	if l.MaxHeavy == 0 {
		l.MaxHeavy = DefaultMaxHeavy
	}
	if l.MaxLight == 0 {
		l.MaxLight = DefaultMaxLight
	}
	if l.RetryAfter == 0 {
		l.RetryAfter = DefaultRetryAfter
	}
	return l
}

// Option configures a Server at construction.
type Option func(*Server)

// WithLimits sets the server's admission-control limits.
func WithLimits(l Limits) Option {
	return func(s *Server) { s.limits = l }
}

// gate is a non-blocking in-flight bound: enter either admits
// immediately or reports shed. There is no queue on purpose — queued
// requests under overload just time out holding memory; better to 429
// now and let the client retry against a less-loaded replica.
type gate struct {
	max int64
	cur atomic.Int64
}

func newGate(max int) *gate {
	if max < 0 {
		return nil // disabled
	}
	return &gate{max: int64(max)}
}

func (g *gate) enter() bool {
	if g.cur.Add(1) > g.max {
		g.cur.Add(-1)
		return false
	}
	return true
}

func (g *gate) leave() { g.cur.Add(-1) }

func (g *gate) inflight() int64 { return g.cur.Load() }

// gateFor maps an endpoint class to its gate (nil = exempt).
func (s *Server) gateFor(class endpointClass) *gate {
	switch class {
	case classHeavy:
		return s.heavy
	case classLight:
		return s.light
	default:
		return nil
	}
}

// shed writes the 429 load-shed response with its Retry-After hint.
func (s *Server) shed(w http.ResponseWriter, name string) {
	w.Header().Set("Retry-After", s.retryAfter)
	writeError(w, http.StatusTooManyRequests,
		fmt.Errorf("overloaded: too many in-flight %s requests, retry after %ss", name, s.retryAfter))
}

// retryAfterSeconds renders a duration as whole Retry-After seconds
// (minimum 1 — a zero hint reads as "retry immediately").
func retryAfterSeconds(d time.Duration) string {
	secs := int(d.Round(time.Second) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}
