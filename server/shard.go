package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"

	"github.com/policyscope/policyscope/internal/dsweep"
	"github.com/policyscope/policyscope/internal/sweep"
	"github.com/policyscope/policyscope/obs"
)

// handleSweepShard runs one contiguous slice of a sweep's deterministic
// expansion — the worker half of the distributed coordinator protocol
// (internal/dsweep). The body is a dsweep.ShardRequest; the response
// streams the slice's Impact records as NDJSON, each carrying its
// *global* scenario index, then one {"shard_done":{...}} trailer line.
// The trailer is the stream-integrity signal: its absence tells the
// coordinator this worker died mid-shard and the shard must be retried.
//
// Every rejection (bad spec, range out of bounds, expansion mismatch)
// happens before the stream starts, as a 4xx the coordinator treats as
// permanent. Spec validation runs before any dataset work so a
// malformed spec fails in microseconds even on a cold worker.
func (s *Server) handleSweepShard(w http.ResponseWriter, r *http.Request) {
	s.inflightShards.Add(1)
	defer s.inflightShards.Add(-1)
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 8<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading body: %w", err))
		return
	}
	var req dsweep.ShardRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusUnprocessableEntity, fmt.Errorf("bad shard request: %w", err))
		return
	}
	if err := req.Spec.Validate(); err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	if err := req.ValidateRange(-1); err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	_, warmSpan := obs.StartSpan(r.Context(), "warm")
	err = sess.Warm()
	warmSpan.End()
	if err != nil {
		s.writeFailure(w, r, err)
		return
	}
	_, expandSpan := obs.StartSpan(r.Context(), "expand")
	scenarios, err := sess.SweepScenariosCached(r.Context(), req.Spec)
	expandSpan.End()
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	if req.ExpectTotal > 0 && req.ExpectTotal != len(scenarios) {
		writeError(w, http.StatusUnprocessableEntity, fmt.Errorf(
			"scenario universe mismatch: spec expands to %d scenarios here, coordinator expects %d (is this worker on the coordinator's dataset?)",
			len(scenarios), req.ExpectTotal))
		return
	}
	if req.Vantages != "" {
		st, err := sess.Study()
		if err != nil {
			s.writeFailure(w, r, err)
			return
		}
		if fp := dsweep.VantageFingerprint(st.Peers); fp != req.Vantages {
			writeError(w, http.StatusUnprocessableEntity, fmt.Errorf(
				"vantage set mismatch: this worker's dataset has %d collector peers (fingerprint %s), coordinator sent %s — same topology, different vantages silently changes every record; check -peers (and manifest) parity across the fleet",
				len(st.Peers), fp, req.Vantages))
			return
		}
	}
	if err := req.ValidateRange(len(scenarios)); err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	var (
		statsMu sync.Mutex
		stats   []sweep.WorkerStats
		records int
	)
	_, shardSpan := obs.StartSpan(r.Context(), fmt.Sprintf("shard[%d,%d)", req.Start, req.End))
	defer shardSpan.End()
	_, err = sess.Sweep(r.Context(), scenarios[req.Start:req.End], sweep.Options{
		Workers:   req.Workers,
		TopShifts: req.TopShifts,
		BaseIndex: req.Start,
		OnImpact: func(imp *sweep.Impact) error {
			if err := enc.Encode(imp); err != nil {
				return err
			}
			records++
			if flusher != nil {
				flusher.Flush()
			}
			return nil
		},
		OnWorkerDone: func(ws sweep.WorkerStats) {
			statsMu.Lock()
			stats = append(stats, ws)
			statsMu.Unlock()
		},
	})
	if err != nil {
		// Mid-stream failure: end without a trailer so the coordinator
		// sees a truncated shard and retries it.
		return
	}
	// Worker drain order is nondeterministic; the trailer is not.
	sort.Slice(stats, func(i, j int) bool { return stats[i].Worker < stats[j].Worker })
	_ = enc.Encode(struct {
		ShardDone dsweep.ShardDone `json:"shard_done"`
	}{ShardDone: dsweep.ShardDone{
		Start:       req.Start,
		End:         req.End,
		Seq:         req.Seq,
		Records:     records,
		WorkerStats: stats,
	}})
	if flusher != nil {
		flusher.Flush()
	}
}
