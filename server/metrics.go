package server

import (
	"net/http"

	"github.com/policyscope/policyscope/obs"
)

// HTTP surface metrics. Endpoint label values are the static route
// names registered in New, so every handle is resolved once at
// construction — request handling itself never formats a label.
var (
	mHTTPRequests = obs.NewCounterVec("policyscope_http_requests_total",
		"HTTP requests received by endpoint.", "endpoint")
	mHTTPResponses = obs.NewCounterVec("policyscope_http_responses_total",
		"HTTP responses by endpoint and status class.", "endpoint", "class")
	mHTTPSeconds = obs.NewHistogramVec("policyscope_http_request_seconds",
		"HTTP request latency by endpoint.", nil, "endpoint")
	mHTTPInflight = obs.NewGauge("policyscope_http_inflight",
		"HTTP requests currently being served.")
	mHTTPShed = obs.NewCounterVec("policyscope_http_shed_total",
		"Requests shed with 429 by the admission gate, by endpoint.", "endpoint")
	mHTTPPanics = obs.NewCounterVec("policyscope_http_panics_total",
		"Handler panics recovered (answered 500 instead of killing the process), by endpoint.", "endpoint")
)

var statusClasses = [5]string{"1xx", "2xx", "3xx", "4xx", "5xx"}

// route carries one endpoint's pre-resolved metric handles.
type route struct {
	name     string
	requests *obs.Counter
	seconds  *obs.Histogram
	shed     *obs.Counter
	panics   *obs.Counter
	classes  [5]*obs.Counter
}

func newRoute(name string) *route {
	rt := &route{
		name:     name,
		requests: mHTTPRequests.With(name),
		seconds:  mHTTPSeconds.With(name),
		shed:     mHTTPShed.With(name),
		panics:   mHTTPPanics.With(name),
	}
	for i, class := range statusClasses {
		rt.classes[i] = mHTTPResponses.With(name, class)
	}
	return rt
}

func (rt *route) observeStatus(status int) {
	i := status/100 - 1
	if i < 0 || i >= len(rt.classes) {
		i = 4
	}
	rt.classes[i].Inc()
}

// statusWriter records the response status for the middleware and, when
// the request is traced, rewrites the Content-Type to NDJSON — the span
// summary is appended after the normal body, so the response as a whole
// is a line stream, not a single JSON document.
type statusWriter struct {
	http.ResponseWriter
	status int
	traced bool
}

func (sw *statusWriter) WriteHeader(status int) {
	if sw.status == 0 {
		sw.status = status
		if sw.traced {
			sw.Header().Set("Content-Type", "application/x-ndjson")
		}
	}
	sw.ResponseWriter.WriteHeader(status)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if sw.status == 0 {
		sw.WriteHeader(http.StatusOK)
	}
	return sw.ResponseWriter.Write(b)
}

// Flush keeps the /sweep NDJSON stream incremental through the wrapper.
func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}
