package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"github.com/policyscope/policyscope/obs"
)

// TestMetricsEndpoint drives one request through every layer (dataset
// build, converge, experiment, HTTP) and checks that /metrics then
// exposes samples from each metric family the stack registers.
func TestMetricsEndpoint(t *testing.T) {
	ts := testServer(t)
	if status, body := post(t, ts.URL+"/run/table5", ""); status != http.StatusOK {
		t.Fatalf("priming run: status %d: %s", status, body)
	}
	status, body := get(t, ts.URL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	samples, err := obs.ParseText(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("parsing exposition: %v", err)
	}
	// One representative metric per instrumented layer.
	for _, want := range []string{
		"policyscope_converge_runs_total",           // engine
		"policyscope_pool_misses_total",             // dataset pool
		"policyscope_session_experiment_runs_total", // session
		"policyscope_http_requests_total",           // HTTP middleware
		"policyscope_pool_resident",                 // server gauge func
		"policyscope_converge_seconds_count",        // histogram family
	} {
		if _, ok := obs.Find(samples, want, ""); !ok {
			t.Errorf("no %s sample in /metrics", want)
		}
	}
	// The run endpoint's counter must have advanced with the right label.
	if v, ok := obs.Find(samples, "policyscope_http_requests_total", `endpoint="run"`); !ok || v < 1 {
		t.Errorf("policyscope_http_requests_total{endpoint=%q} missing or zero (%v, %v)", "run", v, ok)
	}
}

// TestTraceNDJSON: ?trace=1 appends a span waterfall after the body and
// flips the Content-Type to NDJSON; phases include dataset_load and the
// experiment span added by Session.Run.
func TestTraceNDJSON(t *testing.T) {
	ts := testServer(t)
	resp, err := http.Post(ts.URL+"/run/table5?trace=1", "application/json", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Content-Type"); got != "application/x-ndjson" {
		t.Errorf("Content-Type = %q, want application/x-ndjson", got)
	}
	reqID := resp.Header.Get("X-Request-ID")
	if reqID == "" {
		t.Error("no X-Request-ID header")
	}

	// The body is the JSON result followed by NDJSON span lines; the
	// span lines are exactly those mentioning "trace".
	var names []string
	var summary struct {
		Trace   string  `json:"trace"`
		TotalMs float64 `json:"total_ms"`
		Spans   int     `json:"spans"`
	}
	sawSummary := false
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if !bytes.Contains(line, []byte(`"trace"`)) {
			continue
		}
		var span struct {
			Trace string `json:"trace"`
			Name  string `json:"name"`
		}
		if err := json.Unmarshal(line, &span); err != nil {
			t.Fatalf("bad span line %q: %v", line, err)
		}
		if span.Trace != reqID {
			t.Errorf("span trace %q != request ID %q", span.Trace, reqID)
		}
		if span.Name != "" {
			names = append(names, span.Name)
		} else if err := json.Unmarshal(line, &summary); err == nil && summary.Spans > 0 {
			sawSummary = true
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(names, ",")
	for _, phase := range []string{"dataset_load", "experiment:table5", "render"} {
		if !strings.Contains(joined, phase) {
			t.Errorf("no %q span in trace (got %s)", phase, joined)
		}
	}
	if !sawSummary {
		t.Error("no trace summary line")
	}
	if sawSummary && summary.Spans != len(names) {
		t.Errorf("summary says %d spans, saw %d", summary.Spans, len(names))
	}
}

// TestTraceOffByDefault: without ?trace=1 the body stays plain JSON
// with no span lines.
func TestTraceOffByDefault(t *testing.T) {
	ts := testServer(t)
	resp, err := http.Post(ts.URL+"/run/table5", "application/json", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); got != "application/json" {
		t.Errorf("Content-Type = %q, want application/json", got)
	}
	if resp.Header.Get("X-Request-ID") == "" {
		t.Error("no X-Request-ID header")
	}
}

// TestSweepTrace: the sweep stream keeps its record lines and gains
// warm/expand/sweep spans at the end.
func TestSweepTrace(t *testing.T) {
	ts := testServer(t)
	body := `{"spec": {"generators": [{"kind": "all_single_link_failures", "max": 4}]}}`
	status, out := post(t, ts.URL+"/sweep?trace=1&dataset=tiny", body)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, out)
	}
	text := string(out)
	for _, phase := range []string{`"dataset_load"`, `"warm"`, `"expand"`, `"sweep"`} {
		if !strings.Contains(text, phase) {
			t.Errorf("no %s span in sweep trace", phase)
		}
	}
	if !strings.Contains(text, `"aggregate"`) {
		t.Error("sweep stream lost its aggregate line")
	}
}

// TestHealthzEnriched: healthz reports uptime and, once a dataset is
// resident, per-entry readiness and age.
func TestHealthzEnriched(t *testing.T) {
	ts := testServer(t)
	if status, body := post(t, ts.URL+"/run/table5?dataset=tiny", ""); status != http.StatusOK {
		t.Fatalf("priming run: status %d: %s", status, body)
	}
	status, body := get(t, ts.URL+"/healthz")
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var hz struct {
		OK            bool    `json:"ok"`
		UptimeSeconds float64 `json:"uptime_seconds"`
		Pool          struct {
			Entries []struct {
				Name         string  `json:"name"`
				Ready        bool    `json:"ready"`
				AgeSeconds   float64 `json:"age_seconds"`
				BuildSeconds float64 `json:"build_seconds"`
			} `json:"entries"`
		} `json:"pool"`
	}
	if err := json.Unmarshal(body, &hz); err != nil {
		t.Fatalf("%v in %s", err, body)
	}
	if !hz.OK {
		t.Error("not ok")
	}
	if hz.UptimeSeconds <= 0 {
		t.Errorf("uptime_seconds = %v, want > 0", hz.UptimeSeconds)
	}
	var tiny bool
	for _, e := range hz.Pool.Entries {
		if e.Name == "tiny" {
			tiny = true
			if !e.Ready {
				t.Error("tiny entry not ready after a successful run")
			}
			if e.BuildSeconds <= 0 {
				t.Errorf("tiny build_seconds = %v, want > 0", e.BuildSeconds)
			}
		}
	}
	if !tiny {
		t.Errorf("no pool entry for tiny in %s", body)
	}
}
