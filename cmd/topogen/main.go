// Command topogen generates a synthetic annotated Internet and writes
// its ground truth to files: the AS-relationship graph in the CAIDA
// a|b|rel format, the prefix-to-origin table, and a policy summary.
//
// Usage:
//
//	topogen [-ases 2000] [-seed 42] [-rel rel.txt] [-prefixes prefixes.txt]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"github.com/policyscope/policyscope/internal/netx"
	"github.com/policyscope/policyscope/internal/topogen"
)

func main() {
	var (
		ases     = flag.Int("ases", 2000, "number of ASes")
		seed     = flag.Int64("seed", 42, "random seed")
		relPath  = flag.String("rel", "", "write AS relationships (CAIDA format) to this file ('-' = stdout)")
		pfxPath  = flag.String("prefixes", "", "write prefix origins to this file ('-' = stdout)")
		showStat = flag.Bool("stats", true, "print topology statistics")
	)
	flag.Parse()

	topo, err := topogen.Generate(topogen.DefaultConfig(*ases, *seed))
	if err != nil {
		fmt.Fprintf(os.Stderr, "topogen: %v\n", err)
		os.Exit(1)
	}

	if *showStat {
		tiers := map[int]int{}
		for _, asn := range topo.Order {
			tiers[topo.TierOf(asn)]++
		}
		selective, tagged := 0, 0
		for _, asn := range topo.Order {
			pol := topo.Policies[asn]
			selective += len(pol.Export.OriginProviders) + len(pol.Export.NoUpstream)
			if pol.Tagging != nil {
				tagged++
			}
		}
		fmt.Printf("ASes: %d (tier1 %d, tier2 %d, stubs %d)\n",
			len(topo.Order), tiers[1], tiers[2], tiers[3])
		fmt.Printf("edges: %d, prefixes: %d\n", topo.Graph.NumEdges(), topo.TotalPrefixes())
		fmt.Printf("selective announcement policies: %d, tagging ASes: %d\n", selective, tagged)
	}

	if *relPath != "" {
		if err := writeTo(*relPath, func(w *bufio.Writer) error {
			_, err := topo.Graph.WriteTo(w)
			return err
		}); err != nil {
			fmt.Fprintf(os.Stderr, "topogen: %v\n", err)
			os.Exit(1)
		}
	}
	if *pfxPath != "" {
		if err := writeTo(*pfxPath, func(w *bufio.Writer) error {
			var prefixes []netx.Prefix
			for p := range topo.PrefixOrigin {
				prefixes = append(prefixes, p)
			}
			netx.SortPrefixes(prefixes)
			for _, p := range prefixes {
				if _, err := fmt.Fprintf(w, "%s %s\n", p, topo.PrefixOrigin[p]); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			fmt.Fprintf(os.Stderr, "topogen: %v\n", err)
			os.Exit(1)
		}
	}
}

func writeTo(path string, fn func(*bufio.Writer) error) error {
	var f *os.File
	if path == "-" {
		f = os.Stdout
	} else {
		var err error
		f, err = os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
	}
	w := bufio.NewWriter(f)
	if err := fn(w); err != nil {
		return err
	}
	return w.Flush()
}
