// Command inferexport runs the paper's Figure-4 selective-announcement
// detector against an MRT collector snapshot plus a relationship file,
// printing the Table 5 view and, per SA prefix, the observing vantage,
// origin and curving next hop.
//
// Usage:
//
//	inferexport -in table.mrt -rel rel.txt [-details]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"github.com/policyscope/policyscope/internal/asgraph"
	"github.com/policyscope/policyscope/internal/core"
	"github.com/policyscope/policyscope/internal/reports"
	"github.com/policyscope/policyscope/internal/routeviews"
)

func main() {
	var (
		in      = flag.String("in", "", "input MRT file (required)")
		rel     = flag.String("rel", "", "relationship file, CAIDA format (required)")
		details = flag.Bool("details", false, "list every SA prefix")
	)
	flag.Parse()
	if *in == "" || *rel == "" {
		fmt.Fprintln(os.Stderr, "inferexport: -in and -rel are required")
		os.Exit(2)
	}

	f, err := os.Open(*in)
	if err != nil {
		fail(err)
	}
	snap, err := routeviews.ReadMRT(bufio.NewReader(f))
	f.Close()
	if err != nil {
		fail(err)
	}
	rf, err := os.Open(*rel)
	if err != nil {
		fail(err)
	}
	graph, err := asgraph.Read(bufio.NewReader(rf))
	rf.Close()
	if err != nil {
		fail(err)
	}

	analyzer := &core.ExportAnalyzer{Graph: graph}
	table := &reports.Table{
		Title:   "SA prefixes per collector peer (Figure 4 algorithm)",
		Columns: []string{"AS", "cone prefixes", "SA", "% SA"},
	}
	for _, peer := range snap.Peers {
		view := core.ViewFromPeerTable(snap.Table, peer)
		res := analyzer.SAPrefixes(view)
		table.AddRow(peer.String(), fmt.Sprintf("%d", res.ConePrefixes),
			fmt.Sprintf("%d", len(res.SA)), reports.Pct(res.SAPct()))
		if *details {
			for _, sa := range res.SA {
				fmt.Printf("  %v: %s originated by %v arrives via %v (%v)\n",
					peer, sa.Prefix, sa.Origin, sa.NextHop, sa.NextHopRel)
			}
		}
	}
	if _, err := table.WriteTo(os.Stdout); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "inferexport: %v\n", err)
	os.Exit(1)
}
