// Package cmdtest smoke-tests every binary under cmd/: each CLI is
// built with the local toolchain and driven through a tiny end-to-end
// invocation (topogen → simulate → inferrel/inferexport, a scenario
// what-if, the looking glass, the IRR generator and the repro harness),
// so flag-parsing or wiring regressions in the mains are caught by
// `go test ./...` even though main packages have no importable API.
package cmdtest

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// repoRoot resolves the module root (two levels above this package).
func repoRoot(t *testing.T) string {
	t.Helper()
	abs, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(abs, "go.mod")); err != nil {
		t.Fatalf("module root not found at %s: %v", abs, err)
	}
	return abs
}

// buildCmds compiles every cmd/ binary into dir and returns their paths.
func buildCmds(t *testing.T, dir string) map[string]string {
	t.Helper()
	root := repoRoot(t)
	entries, err := os.ReadDir(filepath.Join(root, "cmd"))
	if err != nil {
		t.Fatal(err)
	}
	bins := make(map[string]string)
	for _, e := range entries {
		if !e.IsDir() || e.Name() == "cmdtest" {
			continue
		}
		bin := filepath.Join(dir, e.Name())
		cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+e.Name())
		cmd.Dir = root
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", e.Name(), err, out)
		}
		bins[e.Name()] = bin
	}
	return bins
}

// run executes a binary and returns combined stdout/stderr.
func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	if err := cmd.Run(); err != nil {
		t.Fatalf("%s %s: %v\n%s", filepath.Base(bin), strings.Join(args, " "), err, buf.String())
	}
	return buf.String()
}

// firstProviderEdge extracts one provider|customer edge from a CAIDA
// relationship file.
func firstProviderEdge(t *testing.T, relPath string) (string, string) {
	t.Helper()
	f, err := os.Open(relPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, "|")
		if len(parts) == 3 && parts[2] == "-1" {
			return parts[0], parts[1]
		}
	}
	t.Fatal("no provider-customer edge in relationship file")
	return "", ""
}

func TestCLISmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short mode")
	}
	dir := t.TempDir()
	bins := buildCmds(t, dir)

	relPath := filepath.Join(dir, "rel.txt")
	pfxPath := filepath.Join(dir, "prefixes.txt")
	mrtPath := filepath.Join(dir, "base.mrt")
	afterPath := filepath.Join(dir, "after.mrt")
	irrPath := filepath.Join(dir, "irr.rpsl")
	inferredRel := filepath.Join(dir, "rel-inferred.txt")

	// topogen writes the ground truth the other CLIs consume.
	out := run(t, bins["topogen"], "-ases", "40", "-seed", "3", "-rel", relPath, "-prefixes", pfxPath)
	if !strings.Contains(out, "ASes: 40") {
		t.Fatalf("topogen stats missing:\n%s", out)
	}
	for _, p := range []string{relPath, pfxPath} {
		if fi, err := os.Stat(p); err != nil || fi.Size() == 0 {
			t.Fatalf("topogen output %s empty or missing (%v)", p, err)
		}
	}

	// simulate produces the collector snapshot.
	out = run(t, bins["simulate"], "-ases", "40", "-seed", "3", "-peers", "5", "-out", mrtPath)
	if !strings.Contains(out, "wrote") {
		t.Fatalf("simulate output:\n%s", out)
	}

	// simulate -scenario: fail a real link from the same deterministic
	// topology and verify the incremental what-if report.
	provider, customer := firstProviderEdge(t, relPath)
	scenarioPath := filepath.Join(dir, "events.json")
	events := fmt.Sprintf(`{"name":"smoke","events":[{"kind":"link_fail","a":%s,"b":%s}]}`, provider, customer)
	if err := os.WriteFile(scenarioPath, []byte(events), 0o644); err != nil {
		t.Fatal(err)
	}
	out = run(t, bins["simulate"], "-ases", "40", "-seed", "3", "-peers", "5",
		"-scenario", scenarioPath, "-out", afterPath)
	if !strings.Contains(out, "scenario smoke") || !strings.Contains(out, "re-converged") {
		t.Fatalf("simulate -scenario report missing:\n%s", out)
	}

	// sweep: a capped single-link-failure fleet over the same topology,
	// records to a file, rendered aggregate to stdout.
	recPath := filepath.Join(dir, "records.ndjson")
	out = run(t, bins["sweep"], "-ases", "40", "-seed", "3", "-peers", "5",
		"-j", "2", "-max", "5", "-quiet", "-records", recPath, "-format", "text")
	if !strings.Contains(out, "Most critical") || !strings.Contains(out, "scenarios=5 workers=2") {
		t.Fatalf("sweep output missing aggregate or summary line:\n%s", out)
	}
	recData, err := os.ReadFile(recPath)
	if err != nil {
		t.Fatal(err)
	}
	recLines := strings.Split(strings.TrimSpace(string(recData)), "\n")
	if len(recLines) != 6 {
		t.Fatalf("sweep wrote %d lines, want 5 records + sweep_done trailer:\n%s", len(recLines), recData)
	}
	var rec struct {
		Index int    `json:"index"`
		Name  string `json:"name"`
	}
	if err := json.Unmarshal([]byte(recLines[4]), &rec); err != nil || rec.Index != 4 {
		t.Fatalf("sweep record 4 malformed (%v): %s", err, recLines[4])
	}
	var trailer struct {
		Done *struct {
			Scenarios int `json:"scenarios"`
			Records   int `json:"records"`
		} `json:"sweep_done"`
	}
	if err := json.Unmarshal([]byte(recLines[5]), &trailer); err != nil || trailer.Done == nil ||
		trailer.Done.Scenarios != 5 || trailer.Done.Records != 5 {
		t.Fatalf("sweep_done trailer malformed (%v): %s", err, recLines[5])
	}

	// inferrel recovers relationships from the snapshot and scores them.
	out = run(t, bins["inferrel"], "-in", mrtPath, "-out", inferredRel, "-truth", relPath)
	if !strings.Contains(out, "inferred") {
		t.Fatalf("inferrel output:\n%s", out)
	}

	// The registry surface: -list names every algorithm, -algo selects
	// one with -p parameter overrides, -score prints the per-class
	// scorecard, and an unknown algorithm fails before touching input.
	out = run(t, bins["inferrel"], "-list")
	for _, name := range []string{"gao", "rank", "pari"} {
		if !strings.Contains(out, name) {
			t.Fatalf("inferrel -list missing %s:\n%s", name, out)
		}
	}
	out = run(t, bins["inferrel"], "-in", mrtPath, "-algo", "rank", "-p", "peer_ratio=6",
		"-out", filepath.Join(dir, "rel-rank.txt"), "-truth", relPath, "-score")
	if !strings.Contains(out, "rank: inferred") || !strings.Contains(out, "precision") {
		t.Fatalf("inferrel -algo rank -score output:\n%s", out)
	}
	posteriorPath := filepath.Join(dir, "posterior.json")
	run(t, bins["inferrel"], "-in", mrtPath, "-algo", "pari", "-posterior", "-out", posteriorPath)
	postData, err := os.ReadFile(posteriorPath)
	if err != nil {
		t.Fatal(err)
	}
	var posterior []map[string]any
	if err := json.Unmarshal(postData, &posterior); err != nil || len(posterior) == 0 {
		t.Fatalf("inferrel -posterior wrote bad JSON (%v):\n%s", err, postData)
	}
	badAlgo := exec.Command(bins["inferrel"], "-in", mrtPath, "-algo", "nope")
	if out, err := badAlgo.CombinedOutput(); err == nil || !strings.Contains(string(out), "unknown algorithm") {
		t.Fatalf("inferrel -algo nope: err=%v out=%s", err, out)
	}

	// inferexport runs the Figure-4 SA detector.
	out = run(t, bins["inferexport"], "-in", mrtPath, "-rel", relPath)
	if !strings.Contains(out, "SA prefixes per collector peer") {
		t.Fatalf("inferexport output:\n%s", out)
	}

	// irrgen emits an RPSL database and re-analyzes it.
	run(t, bins["irrgen"], "-ases", "40", "-seed", "3", "-out", irrPath)
	if fi, err := os.Stat(irrPath); err != nil || fi.Size() == 0 {
		t.Fatalf("irrgen wrote nothing (%v)", err)
	}
	out = run(t, bins["irrgen"], "-analyze", irrPath, "-rel", relPath, "-minneighbors", "1")
	if len(strings.TrimSpace(out)) == 0 {
		t.Fatal("irrgen -analyze printed nothing")
	}

	// lookingglass lists its vantage ASes.
	out = run(t, bins["lookingglass"], "-ases", "40", "-seed", "3")
	if !strings.Contains(out, "available vantage ASes") {
		t.Fatalf("lookingglass output:\n%s", out)
	}
}

// runFail executes a binary expecting a non-zero exit and returns the
// combined output.
func runFail(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	if err := cmd.Run(); err == nil {
		t.Fatalf("%s %s: expected failure\n%s", filepath.Base(bin), strings.Join(args, " "), buf.String())
	}
	return buf.String()
}

// TestDatasetCLISmoke drives the dataset plumbing end to end across
// CLIs: simulate exports an MRT snapshot, a manifest names it, repro
// imports it (snapshot-capable experiment runs; a ground-truth one
// reports why it cannot), and the study cache accelerates a repeat run.
func TestDatasetCLISmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short mode")
	}
	dir := t.TempDir()
	root := repoRoot(t)
	bins := map[string]string{}
	for _, name := range []string{"repro", "simulate"} {
		bin := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
		cmd.Dir = root
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", name, err, out)
		}
		bins[name] = bin
	}

	// Export a snapshot, catalog it in a manifest.
	mrtPath := filepath.Join(dir, "snap.mrt")
	run(t, bins["simulate"], "-ases", "60", "-seed", "3", "-peers", "6", "-out", mrtPath)
	manifestPath := filepath.Join(dir, "datasets.json")
	manifest := `{"datasets": [{"name": "imported", "mrt": "snap.mrt"}]}`
	if err := os.WriteFile(manifestPath, []byte(manifest), 0o644); err != nil {
		t.Fatal(err)
	}

	// The imported snapshot answers the SA detector...
	out := run(t, bins["repro"], "-manifest", manifestPath, "-dataset", "imported", "-run", "table5")
	if !strings.Contains(out, "Table 5") {
		t.Fatalf("repro over MRT dataset:\n%s", out)
	}
	// ...and refuses ground-truth experiments with the typed reason.
	out = runFail(t, bins["repro"], "-manifest", manifestPath, "-dataset", "imported", "-run", "table1")
	if !strings.Contains(out, "ground truth") {
		t.Fatalf("repro GT experiment over MRT dataset:\n%s", out)
	}
	// An unknown dataset fails before any work.
	out = runFail(t, bins["repro"], "-dataset", "nope", "-run", "table5")
	if !strings.Contains(out, "unknown dataset") {
		t.Fatalf("repro unknown dataset:\n%s", out)
	}
	// So do an unknown experiment and a bad parameter — at the default
	// 2000-AS config, where a pre-validation regression would stall for
	// minutes building the study first.
	out = runFail(t, bins["repro"], "-run", "nope")
	if !strings.Contains(out, "unknown experiment") {
		t.Fatalf("repro unknown experiment:\n%s", out)
	}
	out = runFail(t, bins["repro"], "-run", "table6", "-p", "bogus=1")
	if !strings.Contains(out, "unknown parameter") {
		t.Fatalf("repro bad param:\n%s", out)
	}

	// The cache: a cold run populates the store, the warm run hits it.
	cacheDir := filepath.Join(dir, "cache")
	args := []string{"-ases", "150", "-seed", "4", "-peers", "8", "-lg", "4",
		"-cache-dir", cacheDir, "-run", "table5", "-format", "json"}
	coldOut := run(t, bins["repro"], args...)
	entries, err := os.ReadDir(cacheDir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("cache dir not populated (%v)", err)
	}
	warmOut := run(t, bins["repro"], args...)
	stripTimings := func(s string) string {
		var kept []string
		for _, line := range strings.Split(s, "\n") {
			// slog progress lines carry timestamps and elapsed times that
			// differ between the cold and warm run; only the experiment
			// bytes on stdout must match.
			if strings.Contains(line, "msg=") {
				continue
			}
			kept = append(kept, line)
		}
		return strings.Join(kept, "\n")
	}
	if stripTimings(coldOut) != stripTimings(warmOut) {
		t.Fatalf("cache hit changed experiment bytes:\ncold: %s\nwarm: %s", coldOut, warmOut)
	}
}

// writeRelHierarchy synthesizes a deterministic CAIDA as-rel file with
// n ASes: a 5-AS tier-1 peering clique, n/20 dual-homed tier-2 transit
// ASes, and dual-homed tier-3 edges for the rest.
func writeRelHierarchy(t *testing.T, path string, n int) {
	t.Helper()
	var b bytes.Buffer
	b.WriteString("# synthesized as-rel hierarchy\n")
	const t1 = 5
	t2 := n / 20
	for i := 1; i <= t1; i++ {
		for j := i + 1; j <= t1; j++ {
			fmt.Fprintf(&b, "%d|%d|0\n", i, j)
		}
	}
	for i := 0; i < t2; i++ {
		asn := t1 + 1 + i
		fmt.Fprintf(&b, "%d|%d|-1\n", 1+i%t1, asn)
		fmt.Fprintf(&b, "%d|%d|-1\n", 1+(i+1)%t1, asn)
	}
	for asn := t1 + t2 + 1; asn <= n; asn++ {
		i := asn - t1 - t2 - 1
		fmt.Fprintf(&b, "%d|%d|-1\n", t1+1+i%t2, asn)
		fmt.Fprintf(&b, "%d|%d|-1\n", t1+1+(i*7+3)%t2, asn)
	}
	if err := os.WriteFile(path, b.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestReproCAIDASmoke is the internet-scale acceptance path: a 20k-AS
// CAIDA-format relationships file — 33x the paper preset — loads
// through "-dataset caida:<path>", converges end to end, and answers an
// experiment; a second run resolves the whole dataset from the study
// cache (the entry embeds the graph, so the hit is self-contained).
func TestReproCAIDASmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries and converges a 20k-AS graph; skipped in -short mode")
	}
	dir := t.TempDir()
	root := repoRoot(t)
	bin := filepath.Join(dir, "repro")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/repro")
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build repro: %v\n%s", err, out)
	}
	relPath := filepath.Join(dir, "as-rel-20k.txt")
	writeRelHierarchy(t, relPath, 20000)

	cacheDir := filepath.Join(dir, "cache")
	args := []string{"-dataset", "caida:" + relPath, "-cache-dir", cacheDir, "-run", "table5"}
	out := run(t, bin, args...)
	if !strings.Contains(out, "Table 5") {
		t.Fatalf("repro over 20k-AS CAIDA graph:\n%s", out)
	}
	entries, err := os.ReadDir(cacheDir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("CAIDA study cache not populated (%v)", err)
	}
	// The warm run must still answer (and identically), now from disk.
	warm := run(t, bin, args...)
	if !strings.Contains(warm, "Table 5") {
		t.Fatalf("warm repro over CAIDA cache:\n%s", warm)
	}
}

// TestReproSmoke runs the complete experiment harness (including the
// appended what-if) at a small scale. Kept separate: it is the slowest
// CLI invocation.
func TestReproSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short mode")
	}
	dir := t.TempDir()
	root := repoRoot(t)
	bin := filepath.Join(dir, "repro")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/repro")
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build repro: %v\n%s", err, out)
	}
	out := run(t, bin, "-ases", "300", "-seed", "1", "-peers", "12", "-lg", "6",
		"-daily", "0", "-hourly", "0", "-routers", "6")
	for _, want := range []string{"Table 5", "Summary: paper vs measured", "What-if"} {
		if !strings.Contains(out, want) {
			t.Fatalf("repro output missing %q", want)
		}
	}

	// Single-experiment mode with parameter overrides.
	out = run(t, bin, "-ases", "300", "-seed", "1", "-peers", "12", "-lg", "6",
		"-run", "table6", "-p", "providers=2", "-p", "max_rows=3")
	if !strings.Contains(out, "Table 6") {
		t.Fatalf("repro -run table6 output:\n%s", out)
	}
}

// TestReproJSONByteStable is the acceptance bar for the JSON surface:
// two runs at a fixed seed must emit byte-identical documents.
func TestReproJSONByteStable(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short mode")
	}
	dir := t.TempDir()
	root := repoRoot(t)
	bin := filepath.Join(dir, "repro")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/repro")
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build repro: %v\n%s", err, out)
	}
	args := []string{"-ases", "250", "-seed", "3", "-peers", "10", "-lg", "5",
		"-daily", "2", "-hourly", "0", "-routers", "4", "-format", "json"}
	jsonOut := func() []byte {
		t.Helper()
		cmd := exec.Command(bin, args...)
		var stdout, stderr bytes.Buffer
		cmd.Stdout = &stdout
		cmd.Stderr = &stderr
		if err := cmd.Run(); err != nil {
			t.Fatalf("repro -format json: %v\n%s", err, stderr.String())
		}
		return stdout.Bytes()
	}
	a, b := jsonOut(), jsonOut()
	if !bytes.Equal(a, b) {
		t.Fatal("repro -format json is not byte-stable across runs at a fixed seed")
	}
	var doc struct {
		Experiments []struct {
			Name string `json:"name"`
		} `json:"experiments"`
	}
	if err := json.Unmarshal(a, &doc); err != nil {
		t.Fatalf("output is not JSON: %v", err)
	}
	if len(doc.Experiments) < 20 {
		t.Fatalf("only %d experiments in the sweep", len(doc.Experiments))
	}
}

// TestServerInferSmoke drives the policyscoped /infer surface end to
// end: the algorithm catalog, a real inference run, and the
// fail-before-work contract (bad algo → 422 with no dataset built).
func TestServerInferSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short mode")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "policyscoped")
	build := exec.Command("go", "build", "-o", bin, "./cmd/policyscoped")
	build.Dir = repoRoot(t)
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build policyscoped: %v\n%s", err, out)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	srv := exec.Command(bin, "-addr", addr, "-ases", "60", "-seed", "3", "-peers", "5", "-lg", "3")
	var srvLog bytes.Buffer
	srv.Stdout = &srvLog
	srv.Stderr = &srvLog
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Process.Kill()
		srv.Wait()
	})

	base := "http://" + addr
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("policyscoped never became healthy: %v\n%s", err, srvLog.String())
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Bad algorithm: 422 before any dataset is built.
	resp, err := http.Post(base+"/infer/nope", "application/json", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 422 || !strings.Contains(string(body), "unknown algorithm") {
		t.Fatalf("/infer/nope: %d %s", resp.StatusCode, body)
	}
	resp, err = http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `"resident": 0`) {
		t.Fatalf("bad algo built a dataset: %s", body)
	}

	// The algorithm catalog.
	resp, err = http.Get(base + "/infer")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, name := range []string{"gao", "rank", "pari"} {
		if !strings.Contains(string(body), `"`+name+`"`) {
			t.Fatalf("GET /infer missing %s: %s", name, body)
		}
	}

	// A real run pays for the dataset build and returns the edge list.
	resp, err = http.Post(base+"/infer/rank", "application/json", strings.NewReader(`{"peer_ratio":6}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var res struct {
		Algorithm     string   `json:"algorithm"`
		Edges         int      `json:"edges"`
		Relationships []string `json:"relationships"`
	}
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatalf("%v in %s", err, body)
	}
	if resp.StatusCode != 200 || res.Algorithm != "rank" || res.Edges == 0 || len(res.Relationships) != res.Edges {
		t.Fatalf("/infer/rank: %d %s", resp.StatusCode, body)
	}
}

// TestGracefulShutdownSmoke sends SIGTERM to a live policyscoped while
// it is mid-way through streaming a /sweep response. The drain contract:
// the in-flight stream runs to completion (records, aggregate, and the
// sweep_done trailer all arrive), and the daemon exits 0.
func TestGracefulShutdownSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short mode")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "policyscoped")
	build := exec.Command("go", "build", "-o", bin, "./cmd/policyscoped")
	build.Dir = repoRoot(t)
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build policyscoped: %v\n%s", err, out)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	srv := exec.Command(bin, "-addr", addr, "-ases", "60", "-seed", "3", "-peers", "5", "-lg", "3",
		"-drain-timeout", "30s")
	var srvLog bytes.Buffer
	srv.Stdout = &srvLog
	srv.Stderr = &srvLog
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	exited := false
	t.Cleanup(func() {
		if !exited {
			srv.Process.Kill()
			srv.Wait()
		}
	})

	base := "http://" + addr
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("policyscoped never became healthy: %v\n%s", err, srvLog.String())
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Open the sweep stream, read the first record, then SIGTERM the
	// daemon while the stream is still going.
	resp, err := http.Post(base+"/sweep", "application/json",
		strings.NewReader(`{"spec": {"generators": [{"kind": "all_single_link_failures", "max": 40}]}, "workers": 1}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("/sweep: %d %s", resp.StatusCode, body)
	}
	reader := bufio.NewReader(resp.Body)
	first, err := reader.ReadString('\n')
	if err != nil {
		t.Fatalf("reading first sweep record: %v", err)
	}
	if err := srv.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	// The in-flight stream must complete through the drain.
	rest, err := io.ReadAll(reader)
	if err != nil {
		t.Fatalf("stream cut during drain: %v\n%s", err, srvLog.String())
	}
	lines := strings.Split(strings.TrimSpace(first+string(rest)), "\n")
	if len(lines) != 42 { // 40 records + aggregate + sweep_done
		t.Fatalf("drained stream has %d lines, want 42:\n%s", len(lines), srvLog.String())
	}
	if !strings.Contains(lines[41], `"sweep_done"`) {
		t.Fatalf("drained stream missing sweep_done trailer: %s", lines[41])
	}

	// And the daemon exits cleanly.
	done := make(chan error, 1)
	go func() { done <- srv.Wait() }()
	select {
	case err := <-done:
		exited = true
		if err != nil {
			t.Fatalf("daemon exited non-zero after drain: %v\n%s", err, srvLog.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon never exited after SIGTERM\n%s", srvLog.String())
	}
	if !strings.Contains(srvLog.String(), "drained") {
		t.Fatalf("daemon log missing drain record:\n%s", srvLog.String())
	}
}

// TestDistributedSweepSmoke drives the fleet path through real
// binaries: two sweepd workers and a cmd/sweep coordinator, compared
// byte for byte against the same sweep run locally, then resumed from
// its checkpoint.
func TestDistributedSweepSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short mode")
	}
	dir := t.TempDir()
	root := repoRoot(t)
	bins := map[string]string{}
	for _, name := range []string{"sweep", "sweepd"} {
		bin := filepath.Join(dir, name)
		build := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
		build.Dir = root
		if out, err := build.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", name, err, out)
		}
		bins[name] = bin
	}

	// Two workers over the same flag-derived dataset as the coordinator.
	var addrs []string
	for i := 0; i < 2; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addr := ln.Addr().String()
		ln.Close()
		w := exec.Command(bins["sweepd"], "-addr", addr,
			"-ases", "60", "-seed", "3", "-peers", "5", "-lg", "3")
		var wLog bytes.Buffer
		w.Stdout = &wLog
		w.Stderr = &wLog
		if err := w.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			w.Process.Kill()
			w.Wait()
		})
		deadline := time.Now().Add(15 * time.Second)
		for {
			resp, err := http.Get("http://" + addr + "/healthz")
			if err == nil {
				resp.Body.Close()
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("sweepd %s never became healthy: %v\n%s", addr, err, wLog.String())
			}
			time.Sleep(50 * time.Millisecond)
		}
		addrs = append(addrs, addr)
	}

	cfgArgs := []string{"-ases", "60", "-seed", "3", "-peers", "5",
		"-gen", "all_single_link_failures", "-max", "15", "-quiet"}
	localOut := filepath.Join(dir, "local.ndjson")
	run(t, bins["sweep"], append(cfgArgs, "-records", localOut)...)

	distOut := filepath.Join(dir, "dist.ndjson")
	cpDir := filepath.Join(dir, "checkpoint")
	distArgs := append(cfgArgs, "-records", distOut,
		"-workers", addrs[0]+","+addrs[1], "-shard-size", "4", "-checkpoint", cpDir)
	run(t, bins["sweep"], distArgs...)

	local, err := os.ReadFile(localOut)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := os.ReadFile(distOut)
	if err != nil {
		t.Fatal(err)
	}
	if len(local) == 0 || !bytes.Equal(local, dist) {
		t.Fatalf("distributed records differ from local run (%d vs %d bytes)", len(dist), len(local))
	}

	// Reusing the checkpoint without -resume is refused; with -resume
	// the finished run replays entirely from the spool, byte-identical.
	out := runFail(t, bins["sweep"], distArgs...)
	if !strings.Contains(out, "-resume") {
		t.Fatalf("checkpoint reuse not refused: %s", out)
	}
	out = run(t, bins["sweep"], append(distArgs, "-resume")...)
	if !strings.Contains(out, "resumed from checkpoint") {
		t.Fatalf("resume did not replay from checkpoint: %s", out)
	}
	resumed, err := os.ReadFile(distOut)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(local, resumed) {
		t.Fatal("resumed records differ from local run")
	}
}

// TestFleetSweepSmoke drives dynamic fleet membership through real
// binaries: a cmd/sweep coordinator starts with -fleet-addr and no
// static workers at all; a sweepd started afterwards self-registers via
// -coordinator heartbeats, runs every shard, and the records still match
// the local run byte for byte.
func TestFleetSweepSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short mode")
	}
	dir := t.TempDir()
	root := repoRoot(t)
	bins := map[string]string{}
	for _, name := range []string{"sweep", "sweepd"} {
		bin := filepath.Join(dir, name)
		build := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
		build.Dir = root
		if out, err := build.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", name, err, out)
		}
		bins[name] = bin
	}

	freeAddr := func() string {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addr := ln.Addr().String()
		ln.Close()
		return addr
	}

	cfgArgs := []string{"-ases", "60", "-seed", "3", "-peers", "5",
		"-gen", "all_single_link_failures", "-max", "15", "-quiet"}
	localOut := filepath.Join(dir, "local.ndjson")
	run(t, bins["sweep"], append(cfgArgs, "-records", localOut)...)

	fleetAddr := freeAddr()
	distOut := filepath.Join(dir, "dist.ndjson")
	coord := exec.Command(bins["sweep"], append(cfgArgs, "-records", distOut,
		"-fleet-addr", fleetAddr, "-shard-size", "4", "-grace", "60s")...)
	var coordLog bytes.Buffer
	coord.Stdout = &coordLog
	coord.Stderr = &coordLog
	if err := coord.Start(); err != nil {
		t.Fatal(err)
	}
	coordDone := false
	t.Cleanup(func() {
		if !coordDone {
			coord.Process.Kill()
			coord.Wait()
		}
	})

	workerAddr := freeAddr()
	w := exec.Command(bins["sweepd"], "-addr", workerAddr,
		"-ases", "60", "-seed", "3", "-peers", "5", "-lg", "3",
		"-coordinator", "http://"+fleetAddr,
		"-advertise", "http://"+workerAddr,
		"-heartbeat", "200ms")
	var wLog bytes.Buffer
	w.Stdout = &wLog
	w.Stderr = &wLog
	if err := w.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		w.Process.Kill()
		w.Wait()
	})

	done := make(chan error, 1)
	go func() { done <- coord.Wait() }()
	select {
	case err := <-done:
		coordDone = true
		if err != nil {
			t.Fatalf("fleet coordinator failed: %v\ncoordinator: %s\nworker: %s", err, coordLog.String(), wLog.String())
		}
	case <-time.After(90 * time.Second):
		t.Fatalf("fleet coordinator never finished\ncoordinator: %s\nworker: %s", coordLog.String(), wLog.String())
	}

	local, err := os.ReadFile(localOut)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := os.ReadFile(distOut)
	if err != nil {
		t.Fatal(err)
	}
	if len(local) == 0 || !bytes.Equal(local, dist) {
		t.Fatalf("fleet records differ from local run (%d vs %d bytes)", len(dist), len(local))
	}
	if !strings.Contains(coordLog.String(), "worker joined dispatch") {
		t.Fatalf("coordinator never admitted the registered worker:\n%s", coordLog.String())
	}
}
