// Command lookingglass simulates a small Internet and answers Cisco-
// style queries against any vantage AS's table, the way the paper
// queried 15 Looking Glass servers.
//
// Usage:
//
//	lookingglass [-ases 400] [-seed 42] -as 0 "show ip bgp"
//	lookingglass -as <ASN> "show ip bgp 20.1.2.0/24"
//
// With -as 0 the tool lists the available vantage ASes.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/policyscope/policyscope/internal/bgp"
	"github.com/policyscope/policyscope/internal/lookingglass"
	"github.com/policyscope/policyscope/internal/routeviews"
	"github.com/policyscope/policyscope/internal/simulate"
	"github.com/policyscope/policyscope/internal/topogen"
)

func main() {
	var (
		ases = flag.Int("ases", 400, "number of ASes")
		seed = flag.Int64("seed", 42, "random seed")
		asn  = flag.Uint("as", 0, "vantage AS to query (0 lists vantages)")
	)
	flag.Parse()

	topo, err := topogen.Generate(topogen.DefaultConfig(*ases, *seed))
	if err != nil {
		fail(err)
	}
	peers := routeviews.SelectPeers(topo, 15)
	res, err := simulate.Run(topo, simulate.Options{VantagePoints: peers})
	if err != nil {
		fail(err)
	}
	tables := make(map[bgp.ASN]*bgp.RIB, len(peers))
	for _, p := range peers {
		tables[p] = res.Tables[p]
	}
	srv := lookingglass.NewServer(tables)

	if *asn == 0 {
		fmt.Println("available vantage ASes:")
		for _, a := range srv.ASes() {
			info := topo.ASes[a]
			fmt.Printf("  %-8v %-24s degree %3d tier %d\n", a, info.Name, topo.Graph.Degree(a), info.Tier)
		}
		return
	}
	command := strings.Join(flag.Args(), " ")
	if command == "" {
		command = "show ip bgp"
	}
	if err := srv.Query(bgp.ASN(*asn), command, os.Stdout); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "lookingglass: %v\n", err)
	os.Exit(1)
}
