// Command lookingglass simulates a small Internet and answers Cisco-
// style queries against any vantage AS's table, the way the paper
// queried 15 Looking Glass servers.
//
// Usage:
//
//	lookingglass [-ases 400] [-seed 42] -as 0 "show ip bgp"
//	lookingglass -as <ASN> "show ip bgp 20.1.2.0/24"
//
// With -as 0 the tool lists the available vantage ASes.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	policyscope "github.com/policyscope/policyscope"
	"github.com/policyscope/policyscope/internal/bgp"
)

func main() {
	var (
		ases  = flag.Int("ases", 400, "number of ASes")
		seed  = flag.Int64("seed", 42, "random seed")
		peers = flag.Int("peers", 15, "vantage AS count")
		asn   = flag.Uint("as", 0, "vantage AS to query (0 lists vantages)")
	)
	flag.Parse()

	// The Session owns the whole setup path — generation, simulation,
	// vantage selection — shared with the other CLIs and the server.
	cfg := policyscope.DefaultConfig()
	cfg.NumASes = *ases
	cfg.Seed = *seed
	cfg.CollectorPeers = *peers
	cfg.LookingGlassASes = *peers
	sess := policyscope.NewSession(cfg)

	srv, err := sess.LookingGlass()
	if err != nil {
		fail(err)
	}

	if *asn == 0 {
		study, err := sess.Study()
		if err != nil {
			fail(err)
		}
		fmt.Println("available vantage ASes:")
		for _, a := range srv.ASes() {
			info := study.Topo.ASes[a]
			fmt.Printf("  %-8v %-24s degree %3d tier %d\n", a, info.Name, study.Topo.Graph.Degree(a), info.Tier)
		}
		return
	}
	command := strings.Join(flag.Args(), " ")
	if command == "" {
		command = "show ip bgp"
	}
	if err := srv.Query(bgp.ASN(*asn), command, os.Stdout); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "lookingglass: %v\n", err)
	os.Exit(1)
}
