// Command inferrel reads an MRT TABLE_DUMP_V2 collector snapshot, runs
// Gao's AS-relationship inference over its AS paths, and writes the
// inferred annotated graph in the CAIDA a|b|rel format. With -truth it
// also scores the inference (the paper's Section 4.3 bound).
//
// Usage:
//
//	inferrel -in table.mrt [-out rel.txt] [-truth rel-truth.txt]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"github.com/policyscope/policyscope/internal/asgraph"
	"github.com/policyscope/policyscope/internal/gaorelation"
	"github.com/policyscope/policyscope/internal/routeviews"
)

func main() {
	var (
		in    = flag.String("in", "", "input MRT file (required)")
		out   = flag.String("out", "-", "output relationship file ('-' = stdout)")
		truth = flag.String("truth", "", "optional ground-truth relationship file to score against")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "inferrel: -in is required")
		os.Exit(2)
	}

	f, err := os.Open(*in)
	if err != nil {
		fail(err)
	}
	snap, err := routeviews.ReadMRT(bufio.NewReader(f))
	f.Close()
	if err != nil {
		fail(err)
	}

	opts := gaorelation.DefaultOptions()
	opts.VantagePoints = snap.Peers
	inf := gaorelation.Infer(snap.AllPaths(), opts)
	fmt.Fprintf(os.Stderr, "inferred %d edges over %d ASes from %d peers\n",
		inf.Graph.NumEdges(), inf.Graph.NumNodes(), len(snap.Peers))

	var dst *os.File
	if *out == "-" {
		dst = os.Stdout
	} else {
		dst, err = os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer dst.Close()
	}
	w := bufio.NewWriter(dst)
	if _, err := inf.Graph.WriteTo(w); err != nil {
		fail(err)
	}
	if err := w.Flush(); err != nil {
		fail(err)
	}

	if *truth != "" {
		tf, err := os.Open(*truth)
		if err != nil {
			fail(err)
		}
		truthGraph, err := asgraph.Read(bufio.NewReader(tf))
		tf.Close()
		if err != nil {
			fail(err)
		}
		acc := gaorelation.Score(inf.Graph, truthGraph)
		fmt.Fprintf(os.Stderr, "accuracy: %.2f%% of %d observed edges (missed %d, spurious %d)\n",
			100*acc.Fraction(), acc.Total, acc.MissedEdges, acc.SpuriousEdges)
		for truthRel, byInferred := range acc.Confusion {
			for inferredRel, n := range byInferred {
				if truthRel != inferredRel {
					fmt.Fprintf(os.Stderr, "  %v inferred as %v: %d\n", truthRel, inferredRel, n)
				}
			}
		}
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "inferrel: %v\n", err)
	os.Exit(1)
}
