// Command inferrel runs AS-relationship inference over an MRT
// TABLE_DUMP_V2 collector snapshot through the pluggable algorithm
// registry and writes the inferred annotated graph in the CAIDA a|b|rel
// format. With -truth it also scores the inference (the paper's
// Section 4.3 bound); probabilistic algorithms can emit their full
// per-edge posterior instead of the MAP graph.
//
// Usage:
//
//	inferrel -list
//	inferrel -in table.mrt [-algo gao|rank|pari] [-p key=value]... [-out rel.txt]
//	inferrel -in table.mrt -truth rel.txt [-score]
//	inferrel -in table.mrt -algo pari -posterior
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"github.com/policyscope/policyscope/infer"
	"github.com/policyscope/policyscope/internal/asgraph"
	"github.com/policyscope/policyscope/internal/routeviews"
)

func main() {
	var (
		in        = flag.String("in", "", "input MRT file (required unless -list)")
		out       = flag.String("out", "-", "output relationship file ('-' = stdout)")
		algo      = flag.String("algo", "gao", "inference algorithm (see -list)")
		list      = flag.Bool("list", false, "list registered algorithms and exit")
		truth     = flag.String("truth", "", "optional ground-truth relationship file to score against")
		score     = flag.Bool("score", false, "with -truth, print the full per-class scorecard")
		posterior = flag.Bool("posterior", false, "write the per-edge posterior JSON instead of the inferred graph (probabilistic algorithms only)")
	)
	var params paramList
	flag.Var(&params, "p", "algorithm parameter override key=value (repeatable)")
	flag.Parse()

	if *list {
		for _, info := range infer.Default.Infos() {
			kind := ""
			if info.Probabilistic {
				kind = " [probabilistic]"
			}
			fmt.Printf("%-6s %s%s\n", info.Name, info.Title, kind)
		}
		return
	}
	if *in == "" {
		fmt.Fprintln(os.Stderr, "inferrel: -in is required")
		os.Exit(2)
	}
	if *score && *truth == "" {
		fmt.Fprintln(os.Stderr, "inferrel: -score requires -truth")
		os.Exit(2)
	}
	// Reject a bad algorithm or parameter before touching the input.
	a, ok := infer.Default.Get(*algo)
	if !ok {
		fail(&infer.NotFoundError{Name: *algo})
	}
	if _, err := infer.Default.DecodeKV(*algo, params); err != nil {
		fail(err)
	}
	if *posterior && !a.Probabilistic {
		fmt.Fprintf(os.Stderr, "inferrel: -posterior needs a probabilistic algorithm; %q is not\n", *algo)
		os.Exit(2)
	}

	f, err := os.Open(*in)
	if err != nil {
		fail(err)
	}
	snap, err := routeviews.ReadMRT(bufio.NewReader(f))
	f.Close()
	if err != nil {
		fail(err)
	}

	res, err := infer.Default.RunKV(context.Background(),
		infer.Input{Paths: snap.AllPaths(), VantagePoints: snap.Peers}, *algo, params)
	if err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "%s: inferred %d edges over %d ASes from %d peers\n",
		*algo, res.Graph.NumEdges(), res.Graph.NumNodes(), len(snap.Peers))

	var dst *os.File
	if *out == "-" {
		dst = os.Stdout
	} else {
		dst, err = os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer dst.Close()
	}
	w := bufio.NewWriter(dst)
	if *posterior {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res.Posterior); err != nil {
			fail(err)
		}
	} else if _, err := res.Graph.WriteTo(w); err != nil {
		fail(err)
	}
	if err := w.Flush(); err != nil {
		fail(err)
	}

	if *truth != "" {
		tf, err := os.Open(*truth)
		if err != nil {
			fail(err)
		}
		truthGraph, err := asgraph.Read(bufio.NewReader(tf))
		tf.Close()
		if err != nil {
			fail(err)
		}
		sc := infer.Score(res.Graph, truthGraph)
		fmt.Fprintf(os.Stderr, "accuracy: %.2f%% of %d observed edges (missed %d, spurious %d)\n",
			100*sc.Accuracy, sc.SharedEdges, sc.MissedEdges, sc.SpuriousEdges)
		if *score {
			for _, key := range []string{"p2c", "p2p", "sibling"} {
				cs := sc.ByClass[key]
				fmt.Fprintf(os.Stderr, "  %-7s truth %d inferred %d correct %d precision %.2f recall %.2f\n",
					key, cs.Truth, cs.Inferred, cs.Correct, cs.Precision, cs.Recall)
			}
		}
	}
}

// paramList collects repeated -p key=value flags.
type paramList []string

func (p *paramList) String() string { return fmt.Sprint([]string(*p)) }

func (p *paramList) Set(v string) error {
	*p = append(*p, v)
	return nil
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "inferrel: %v\n", err)
	os.Exit(1)
}
