// Command irrgen generates a synthetic IRR (RPSL aut-num database) from
// a topology's ground-truth policies, or parses an existing one and
// prints the Table 3 import-policy analysis.
//
// Usage:
//
//	irrgen [-ases 2000] [-seed 42] -out radb.db          # generate
//	irrgen -analyze radb.db -rel rel.txt [-mindate 20020101]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"github.com/policyscope/policyscope/internal/asgraph"
	"github.com/policyscope/policyscope/internal/core"
	"github.com/policyscope/policyscope/internal/irr"
	"github.com/policyscope/policyscope/internal/reports"
	"github.com/policyscope/policyscope/internal/topogen"
)

func main() {
	var (
		ases    = flag.Int("ases", 2000, "number of ASes (generation mode)")
		seed    = flag.Int64("seed", 42, "random seed")
		out     = flag.String("out", "", "write a generated RPSL database to this file ('-' = stdout)")
		analyze = flag.String("analyze", "", "parse this RPSL database and run the Table 3 analysis")
		rel     = flag.String("rel", "", "relationship file for -analyze")
		minDate = flag.Int("mindate", 20020101, "discard aut-num objects older than this date")
		minNbrs = flag.Int("minneighbors", 4, "minimum known-relationship import lines per AS")
	)
	flag.Parse()

	switch {
	case *analyze != "":
		if *rel == "" {
			fmt.Fprintln(os.Stderr, "irrgen: -analyze requires -rel")
			os.Exit(2)
		}
		f, err := os.Open(*analyze)
		if err != nil {
			fail(err)
		}
		db, err := irr.Parse(bufio.NewReader(f))
		f.Close()
		if err != nil {
			fail(err)
		}
		rf, err := os.Open(*rel)
		if err != nil {
			fail(err)
		}
		graph, err := asgraph.Read(bufio.NewReader(rf))
		rf.Close()
		if err != nil {
			fail(err)
		}
		rows := core.IRRTypicality(db, graph, *minDate, *minNbrs)
		table := &reports.Table{
			Title:   "Typical local preference from IRR (Table 3 analysis)",
			Columns: []string{"AS", "% typical pairs", "import lines"},
		}
		for _, r := range rows {
			table.AddRow(r.AS.String(), reports.Pct(r.TypicalPct()), fmt.Sprintf("%d", r.Neighbors))
		}
		if _, err := table.WriteTo(os.Stdout); err != nil {
			fail(err)
		}

	case *out != "":
		topo, err := topogen.Generate(topogen.DefaultConfig(*ases, *seed))
		if err != nil {
			fail(err)
		}
		db := irr.Generate(topo, irr.DefaultGenOptions(*seed+1))
		var f *os.File
		if *out == "-" {
			f = os.Stdout
		} else {
			f, err = os.Create(*out)
			if err != nil {
				fail(err)
			}
			defer f.Close()
		}
		w := bufio.NewWriter(f)
		if _, err := db.WriteTo(w); err != nil {
			fail(err)
		}
		if err := w.Flush(); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %d aut-num objects\n", len(db.Objects))

	default:
		fmt.Fprintln(os.Stderr, "irrgen: use -out to generate or -analyze to mine a database")
		os.Exit(2)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "irrgen: %v\n", err)
	os.Exit(1)
}
