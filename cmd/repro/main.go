// Command repro runs the complete experiment suite of "On Inferring and
// Characterizing Internet Routing Policies" (IMC 2003) on a synthetic
// Internet and prints every table and figure next to the paper's
// reported shape.
//
// Usage:
//
//	repro [-ases 2000] [-seed 42] [-peers 56] [-lg 15] [-inferred]
//	      [-daily 31] [-hourly 12] [-routers 30]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	policyscope "github.com/policyscope/policyscope"
)

func main() {
	var (
		ases     = flag.Int("ases", 2000, "number of ASes in the synthetic Internet")
		seed     = flag.Int64("seed", 42, "random seed (runs are deterministic per seed)")
		peers    = flag.Int("peers", 56, "collector peer count (the paper's RouteViews had 56)")
		lg       = flag.Int("lg", 15, "Looking Glass vantage count")
		inferred = flag.Bool("inferred", false, "use Gao-inferred relationships instead of ground truth")
		daily    = flag.Int("daily", 31, "daily persistence epochs (0 skips Figures 6a/7a)")
		hourly   = flag.Int("hourly", 12, "hourly persistence epochs (0 skips Figures 6b/7b)")
		routers  = flag.Int("routers", 30, "border routers in the Figure 2(b) refinement")
	)
	flag.Parse()

	start := time.Now()
	cfg := policyscope.DefaultConfig()
	cfg.NumASes = *ases
	cfg.Seed = *seed
	cfg.CollectorPeers = *peers
	cfg.LookingGlassASes = *lg
	cfg.UseInferredRelationships = *inferred

	fmt.Fprintf(os.Stderr, "generating and simulating %d ASes (seed %d)...\n", *ases, *seed)
	study, err := policyscope.NewStudy(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "repro: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "converged in %v; running experiments\n", time.Since(start).Round(time.Millisecond))

	opts := policyscope.DefaultRunAllOptions()
	opts.DailyEpochs = *daily
	opts.HourlyEpochs = *hourly
	opts.Routers = *routers
	if err := study.RunAll(os.Stdout, opts); err != nil {
		fmt.Fprintf(os.Stderr, "repro: %v\n", err)
		os.Exit(1)
	}
	if err := study.RenderSummary(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "repro: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "total %v\n", time.Since(start).Round(time.Millisecond))
}
