// Command repro runs the experiment suite of "On Inferring and
// Characterizing Internet Routing Policies" (IMC 2003) on a synthetic
// Internet and prints every table and figure next to the paper's
// reported shape — or, with -format json, emits the full sweep as one
// deterministic JSON document (byte-stable across runs at a fixed
// seed).
//
// Usage:
//
//	repro [-ases 2000] [-seed 42] [-peers 56] [-lg 15] [-inferred]
//	      [-daily 31] [-hourly 12] [-routers 30] [-format text|json]
//	      [-dataset name] [-manifest datasets.json] [-cache-dir dir]
//	      [-log-level info] [-log-format text]
//
// The run executes against a dataset: by default the flag-derived
// synthetic configuration, with -dataset any built-in preset (paper,
// small, large) or manifest entry — including imported MRT snapshots,
// where ground-truth-free experiments run and the rest report that they
// need ground truth. -cache-dir makes repeat runs of the same dataset
// load the converged tables from disk instead of re-simulating.
//
// Single experiments run by registry name, with key=value parameter
// overrides:
//
//	repro -run table5
//	repro -run table6 -p providers=2 -p max_rows=4
//	repro -dataset small -cache-dir /tmp/psc -run table5
//	repro -list
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"time"

	policyscope "github.com/policyscope/policyscope"
	"github.com/policyscope/policyscope/dataset"
	"github.com/policyscope/policyscope/internal/profiling"
	"github.com/policyscope/policyscope/obs"
)

// profStop flushes any active profiles; fail() and normal returns both
// run it so -cpuprofile/-memprofile survive error exits.
var profStop = func() {}

func main() {
	var (
		ases       = flag.Int("ases", 2000, "number of ASes in the synthetic Internet")
		seed       = flag.Int64("seed", 42, "random seed (runs are deterministic per seed)")
		peers      = flag.Int("peers", 56, "collector peer count (the paper's RouteViews had 56)")
		lg         = flag.Int("lg", 15, "Looking Glass vantage count")
		inferred   = flag.Bool("inferred", false, "use Gao-inferred relationships instead of ground truth")
		daily      = flag.Int("daily", 31, "daily persistence epochs (0 skips Figures 6a/7a)")
		hourly     = flag.Int("hourly", 12, "hourly persistence epochs (0 skips Figures 6b/7b)")
		routers    = flag.Int("routers", 30, "border routers in the Figure 2(b) refinement")
		format     = flag.String("format", "text", "output format: text or json")
		runName    = flag.String("run", "", "run a single experiment by registry name")
		list       = flag.Bool("list", false, "list the experiment catalog and exit")
		dsName     = flag.String("dataset", "", "dataset to run against (preset or manifest entry; default: flag-derived config)")
		manifest   = flag.String("manifest", "", "JSON dataset manifest to add to the catalog")
		cacheDir   = flag.String("cache-dir", "", "content-addressed study cache directory")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		logFlags   obs.LogFlags
	)
	var params paramList
	flag.Var(&params, "p", "experiment parameter override key=value (repeatable, with -run)")
	logFlags.Register(flag.CommandLine)
	flag.Parse()
	if err := logFlags.SetDefault(os.Stderr); err != nil {
		fail(err)
	}

	if *format != "text" && *format != "json" {
		fmt.Fprintf(os.Stderr, "repro: -format must be text or json\n")
		os.Exit(2)
	}
	if len(params) > 0 && *runName == "" {
		fmt.Fprintf(os.Stderr, "repro: -p requires -run <experiment>\n")
		os.Exit(2)
	}
	profStop = profiling.MustStart(*cpuProfile, *memProfile, fail)
	defer profStop()

	cfg := policyscope.DefaultConfig()
	cfg.NumASes = *ases
	cfg.Seed = *seed
	cfg.CollectorPeers = *peers
	cfg.LookingGlassASes = *lg
	cfg.UseInferredRelationships = *inferred

	cat, err := dataset.BuildCatalog(cfg, *dsName, *manifest, *cacheDir)
	if err != nil {
		fail(err)
	}

	if *list {
		for _, info := range policyscope.Experiments() {
			gt := ""
			if info.NeedsGroundTruth {
				gt = "needs ground truth"
			}
			fmt.Printf("%-10s %-10s %-18s %s\n", info.Name, info.Group, gt, info.Title)
		}
		return
	}

	// Fail fast on a bad -run name or -p override: the check is a
	// catalog lookup, the dataset load it precedes can be minutes.
	if *runName != "" {
		if err := policyscope.ValidateKV(*runName, params); err != nil {
			fail(err)
		}
	}

	// Ctrl-C cancels the in-flight experiment instead of killing the
	// process mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	start := time.Now()
	src, _ := cat.Get(cat.Default())
	slog.Info("loading dataset", "dataset", cat.Default())
	study, err := src.Load(ctx)
	if err != nil {
		fail(err)
	}
	slog.Info("dataset ready", "elapsed", time.Since(start).Round(time.Millisecond))
	sess := policyscope.NewSessionFromStudy(study)
	if *runName != "" {
		res, err := sess.RunKV(ctx, *runName, params)
		if err != nil {
			fail(err)
		}
		if *format == "json" {
			emitJSON(res)
		} else if err := res.Render(os.Stdout); err != nil {
			fail(err)
		}
		slog.Info("done", "total", time.Since(start).Round(time.Millisecond))
		return
	}

	opts := policyscope.DefaultRunAllOptions()
	opts.DailyEpochs = *daily
	opts.HourlyEpochs = *hourly
	opts.Routers = *routers

	if *format == "json" {
		doc, err := sess.RunAllJSON(ctx, opts)
		if err != nil {
			fail(err)
		}
		emitJSON(doc)
	} else if err := sess.RunAll(ctx, os.Stdout, opts); err != nil {
		fail(err)
	}
	slog.Info("done", "total", time.Since(start).Round(time.Millisecond))
}

// emitJSON writes indented, deterministic JSON.
func emitJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fail(err)
	}
}

// paramList collects repeated -p key=value flags.
type paramList []string

func (p *paramList) String() string { return fmt.Sprint([]string(*p)) }

func (p *paramList) Set(v string) error {
	*p = append(*p, v)
	return nil
}

func fail(err error) {
	profStop()
	slog.Error("fatal", "err", err)
	os.Exit(1)
}
