// Command sweepd is a distributed-sweep worker daemon: the sweep
// executor behind the server's POST /sweep/shard endpoint, meant to run
// as a fleet behind one cmd/sweep coordinator (-workers). It serves the
// full query surface (it *is* the policyscope server over a dataset
// pool), but its defaults are tuned for fleet membership: point every
// worker's -cache-dir at the shared content-addressed study cache and
// the first fleet member to build a dataset pays for it once — the rest
// warm from the cache instead of regenerating.
//
// Usage:
//
//	sweepd [-addr :8081] [-ases 2000] [-seed 42] [-peers 56]
//	       [-dataset name] [-manifest datasets.json]
//	       [-cache-dir /shared/psc-cache] [-pool 4] [-warm]
//	       [-coordinator http://coord:9000] [-advertise http://me:8081]
//	       [-heartbeat 5s] [-max-inflight 64] [-request-timeout 0]
//	       [-drain-timeout 30s] [-read-timeout 1m] [-idle-timeout 2m]
//	       [-log-level info] [-log-format text] [-debug-addr :6061]
//
// A two-worker local fleet with a static worker list (dataset-shaping
// flags -ases/-seed/-peers must match the coordinator's — the shard
// protocol fingerprints the scenario universe and the vantage set and
// rejects a drifted worker instead of merging it):
//
//	sweepd -addr :8081 -ases 800 -peers 24 -cache-dir /tmp/psc -warm &
//	sweepd -addr :8082 -ases 800 -peers 24 -cache-dir /tmp/psc -warm &
//	sweep -ases 800 -gen all_single_link_failures \
//	      -workers localhost:8081,localhost:8082 -records -
//
// With -coordinator the worker instead registers itself against a
// cmd/sweep coordinator running -fleet-addr, and keeps itself live with
// heartbeats carrying its in-flight shard count and health; workers can
// then join and leave a running sweep without the coordinator being
// restarted:
//
//	sweep -ases 800 -fleet-addr :9000 -records -   # no static -workers
//	sweepd -addr :8081 -ases 800 -peers 24 \
//	       -coordinator http://localhost:9000 \
//	       -advertise http://localhost:8081 &
//
// The coordinator verifies every record against its own expansion, so a
// worker pointed at a different dataset is rejected, not merged. The
// daemon runs on the hardened httpd lifecycle: SIGTERM drains in-flight
// shard streams (bounded by -drain-timeout) before exit, and /healthz
// reports draining so the coordinator's next heartbeat sees it.
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"strings"
	"time"

	policyscope "github.com/policyscope/policyscope"
	"github.com/policyscope/policyscope/dataset"
	"github.com/policyscope/policyscope/internal/dsweep"
	"github.com/policyscope/policyscope/internal/httpd"
	"github.com/policyscope/policyscope/obs"
	"github.com/policyscope/policyscope/server"
)

func main() {
	var (
		addr      = flag.String("addr", ":8081", "listen address")
		ases      = flag.Int("ases", 2000, "number of ASes in the flag-derived \"default\" dataset")
		seed      = flag.Int64("seed", 42, "random seed (runs are deterministic per seed)")
		peers     = flag.Int("peers", 56, "collector peer count")
		lg        = flag.Int("lg", 15, "Looking Glass vantage count")
		inferred  = flag.Bool("inferred", false, "use Gao-inferred relationships instead of ground truth")
		warm      = flag.Bool("warm", false, "build and warm the default dataset before accepting shards")
		dsName    = flag.String("dataset", "", "default dataset name (preset, manifest entry, or \"default\")")
		manifest  = flag.String("manifest", "", "JSON dataset manifest to add to the catalog")
		cacheDir  = flag.String("cache-dir", "", "shared content-addressed study cache (fleet cold-start is one build, not N)")
		poolSize  = flag.Int("pool", dataset.DefaultMaxSessions, "max warmed sessions resident at once")
		debugAddr = flag.String("debug-addr", "", "serve /debug/pprof/* and /metrics on this extra address (off when empty)")
		coord     = flag.String("coordinator", "", "coordinator base URL for fleet self-registration (empty = static -workers membership)")
		advertise = flag.String("advertise", "", "base URL to register with -coordinator (default http://<addr>)")
		heartbeat = flag.Duration("heartbeat", dsweep.DefaultHeartbeatInterval, "heartbeat interval in -coordinator mode")
		maxHeavy  = flag.Int("max-inflight", server.DefaultMaxHeavy, "admission bound on concurrent expensive requests (shards, runs); excess sheds 429 (-1 = unbounded)")
		maxLight  = flag.Int("max-inflight-light", server.DefaultMaxLight, "admission bound on concurrent catalog reads; excess sheds 429 (-1 = unbounded)")
		reqTO     = flag.Duration("request-timeout", 0, "server-side deadline per expensive request (0 = none)")
		logFlags  obs.LogFlags
		srvFlags  httpd.Flags
	)
	logFlags.Register(flag.CommandLine)
	srvFlags.Register(flag.CommandLine)
	flag.Parse()
	if err := logFlags.SetDefault(os.Stderr); err != nil {
		fail(err)
	}

	cfg := policyscope.DefaultConfig()
	cfg.NumASes = *ases
	cfg.Seed = *seed
	cfg.CollectorPeers = *peers
	cfg.LookingGlassASes = *lg
	cfg.UseInferredRelationships = *inferred

	cat, err := dataset.BuildCatalog(cfg, *dsName, *manifest, *cacheDir)
	if err != nil {
		fail(err)
	}
	pool := dataset.NewPool(cat, *poolSize)
	srv := server.New(pool, server.WithLimits(server.Limits{
		MaxHeavy: *maxHeavy, MaxLight: *maxLight, RequestTimeout: *reqTO,
	}))
	if *debugAddr != "" {
		go serveDebug(*debugAddr)
	}
	if *warm {
		start := time.Now()
		slog.Info("warming dataset", "dataset", cat.Default())
		if err := srv.Warm(context.Background()); err != nil {
			fail(err)
		}
		slog.Info("warm complete", "dataset", cat.Default(),
			"elapsed", time.Since(start).Round(time.Millisecond))
	}

	ctx, cancelBeats := context.WithCancel(context.Background())
	defer cancelBeats()
	draining := func() {
		// Stop heartbeating the moment the drain starts: the coordinator
		// sees the registration expire and routes around this worker
		// while its in-flight shard streams finish.
		cancelBeats()
		srv.SetDraining()
	}
	if *coord != "" {
		adv := *advertise
		if adv == "" {
			adv = "http://" + strings.TrimPrefix(*addr, "http://")
		}
		go func() {
			err := dsweep.HeartbeatLoop(ctx, dsweep.HeartbeatOptions{
				Coordinator: *coord,
				Advertise:   adv,
				Interval:    *heartbeat,
				Status: func() dsweep.Heartbeat {
					return dsweep.Heartbeat{
						InFlightShards: srv.InflightShards(),
						Healthy:        true,
					}
				},
			})
			if err != nil && !errors.Is(err, context.Canceled) {
				slog.Error("heartbeat loop", "err", err)
			}
		}()
	}

	slog.Info("sweep worker serving", "addr", *addr,
		"datasets", len(cat.Names()), "default", cat.Default(),
		"coordinator", *coord)
	hcfg := srvFlags.Config(*addr)
	hcfg.Draining = draining
	if err := httpd.Run(context.Background(), hcfg, srv); err != nil {
		fail(err)
	}
}

// serveDebug exposes the profiling and metrics endpoints on their own
// mux — never the public one.
func serveDebug(addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/metrics", obs.Default.Handler())
	slog.Info("debug server", "addr", addr)
	if err := http.ListenAndServe(addr, mux); err != nil {
		slog.Error("debug server failed", "err", err)
	}
}

func fail(err error) {
	slog.Error("fatal", "err", err)
	os.Exit(1)
}
