// Command policyscoped serves the experiment catalog over HTTP/JSON: a
// long-lived query service over one precomputed synthetic-Internet
// study, the production shape of the repro harness.
//
// Usage:
//
//	policyscoped [-addr :8080] [-ases 2000] [-seed 42] [-peers 56]
//	             [-lg 15] [-inferred] [-warm]
//
// Endpoints:
//
//	GET  /experiments     list the catalog with default params
//	POST /run/{name}      run one experiment (?format=json|text)
//	POST /whatif          apply a scenario JSON to the converged study
//	POST /sweep           stream a batch sweep as NDJSON records + aggregate
//	GET  /healthz         liveness + readiness
//
// Example:
//
//	policyscoped -ases 800 &
//	curl -s localhost:8080/experiments | jq '.[].name'
//	curl -s -X POST localhost:8080/run/table5 | jq '.result.rows[0]'
//	curl -s -X POST 'localhost:8080/run/table6?format=text' -d '{"providers": 2}'
//	curl -sN -X POST localhost:8080/sweep \
//	  -d '{"spec": {"generators": [{"kind": "all_single_link_failures"}]}, "workers": 8}'
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	policyscope "github.com/policyscope/policyscope"
	"github.com/policyscope/policyscope/server"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		ases     = flag.Int("ases", 2000, "number of ASes in the synthetic Internet")
		seed     = flag.Int64("seed", 42, "random seed (runs are deterministic per seed)")
		peers    = flag.Int("peers", 56, "collector peer count")
		lg       = flag.Int("lg", 15, "Looking Glass vantage count")
		inferred = flag.Bool("inferred", false, "use Gao-inferred relationships instead of ground truth")
		warm     = flag.Bool("warm", false, "build the study before accepting traffic")
	)
	flag.Parse()

	cfg := policyscope.DefaultConfig()
	cfg.NumASes = *ases
	cfg.Seed = *seed
	cfg.CollectorPeers = *peers
	cfg.LookingGlassASes = *lg
	cfg.UseInferredRelationships = *inferred

	srv := server.New(policyscope.NewSession(cfg))
	if *warm {
		start := time.Now()
		fmt.Fprintf(os.Stderr, "policyscoped: warming %d-AS study (seed %d)...\n", *ases, *seed)
		if err := srv.Warm(); err != nil {
			fmt.Fprintf(os.Stderr, "policyscoped: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "policyscoped: ready in %v\n", time.Since(start).Round(time.Millisecond))
	}
	fmt.Fprintf(os.Stderr, "policyscoped: serving on %s\n", *addr)
	if err := http.ListenAndServe(*addr, srv); err != nil {
		fmt.Fprintf(os.Stderr, "policyscoped: %v\n", err)
		os.Exit(1)
	}
}
