// Command policyscoped serves the experiment catalog over HTTP/JSON: a
// long-lived query service over a pool of precomputed studies — many
// universes (synthetic presets, manifest entries, imported MRT
// snapshots) behind one process, the production shape of the repro
// harness.
//
// Usage:
//
//	policyscoped [-addr :8080] [-ases 2000] [-seed 42] [-peers 56]
//	             [-lg 15] [-inferred] [-warm]
//	             [-dataset name] [-manifest datasets.json]
//	             [-cache-dir .policyscope-cache] [-pool 4]
//	             [-max-inflight 64] [-max-inflight-light 1024]
//	             [-request-timeout 0] [-drain-timeout 30s]
//	             [-read-timeout 1m] [-write-timeout 0] [-idle-timeout 2m]
//	             [-log-level info] [-log-format text] [-debug-addr :6060]
//
// The daemon runs on the hardened httpd lifecycle: real read/idle
// timeouts, and SIGTERM/SIGINT triggers a graceful drain — /healthz
// flips to 503 draining, the listener closes, and in-flight requests
// get -drain-timeout to finish before connections are cut. Admission
// control sheds load beyond -max-inflight with 429 + Retry-After
// instead of queueing it.
//
// The dataset catalog holds the built-in presets (paper, small, large),
// the manifest's entries, and the flag-derived configuration under the
// name "default" (the default dataset unless -dataset or the manifest
// says otherwise). Every query endpoint accepts ?dataset=<name>; the
// pool keeps at most -pool warmed sessions, LRU-evicted.
//
// Endpoints:
//
//	GET  /datasets        list the dataset catalog + pool residency
//	GET  /experiments     list the experiment catalog with default params
//	GET  /infer           list the inference-algorithm catalog
//	POST /run/{name}      run one experiment (?format=json|text, ?dataset=,
//	                      ?algo= narrows inferbakeoff/inferensemble)
//	POST /infer/{algo}    run one inference algorithm (?format=json|text, ?dataset=)
//	POST /whatif          apply a scenario JSON (?dataset=)
//	POST /sweep           stream a batch sweep as NDJSON (?dataset=)
//	GET  /healthz         liveness + default readiness + pool stats (entry
//	                      ages, last build errors, uptime)
//	GET  /metrics         Prometheus text exposition of the obs registry
//
// Appending ?trace=1 to a query endpoint appends a per-request NDJSON
// span summary after the body. -debug-addr starts a second listener
// serving /debug/pprof/* and a /metrics mirror — opt-in, so profiling
// endpoints never share the public address.
//
// Example:
//
//	policyscoped -ases 800 -cache-dir /tmp/psc &
//	curl -s localhost:8080/datasets | jq '.[].name'
//	curl -s -X POST localhost:8080/run/table5 | jq '.result.rows[0]'
//	curl -s -X POST 'localhost:8080/run/table5?dataset=small' | jq '.result'
//	curl -s -X POST 'localhost:8080/run/table6?format=text' -d '{"providers": 2}'
package main

import (
	"context"
	"flag"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"time"

	policyscope "github.com/policyscope/policyscope"
	"github.com/policyscope/policyscope/dataset"
	"github.com/policyscope/policyscope/internal/httpd"
	"github.com/policyscope/policyscope/obs"
	"github.com/policyscope/policyscope/server"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		ases      = flag.Int("ases", 2000, "number of ASes in the flag-derived \"default\" dataset")
		seed      = flag.Int64("seed", 42, "random seed (runs are deterministic per seed)")
		peers     = flag.Int("peers", 56, "collector peer count")
		lg        = flag.Int("lg", 15, "Looking Glass vantage count")
		inferred  = flag.Bool("inferred", false, "use Gao-inferred relationships instead of ground truth")
		warm      = flag.Bool("warm", false, "build the default dataset before accepting traffic")
		dsName    = flag.String("dataset", "", "default dataset name (preset, manifest entry, or \"default\")")
		manifest  = flag.String("manifest", "", "JSON dataset manifest to add to the catalog")
		cacheDir  = flag.String("cache-dir", "", "content-addressed study cache directory (cold starts load from it)")
		poolSize  = flag.Int("pool", dataset.DefaultMaxSessions, "max warmed sessions resident at once")
		debugAddr = flag.String("debug-addr", "", "serve /debug/pprof/* and /metrics on this extra address (off when empty)")
		maxHeavy  = flag.Int("max-inflight", server.DefaultMaxHeavy, "admission bound on concurrent expensive requests (/run, /infer, /whatif, /sweep); excess sheds 429 (-1 = unbounded)")
		maxLight  = flag.Int("max-inflight-light", server.DefaultMaxLight, "admission bound on concurrent catalog reads; excess sheds 429 (-1 = unbounded)")
		reqTO     = flag.Duration("request-timeout", 0, "server-side deadline per expensive request (0 = none)")
		logFlags  obs.LogFlags
		srvFlags  httpd.Flags
	)
	logFlags.Register(flag.CommandLine)
	srvFlags.Register(flag.CommandLine)
	flag.Parse()
	if err := logFlags.SetDefault(os.Stderr); err != nil {
		fail(err)
	}

	cfg := policyscope.DefaultConfig()
	cfg.NumASes = *ases
	cfg.Seed = *seed
	cfg.CollectorPeers = *peers
	cfg.LookingGlassASes = *lg
	cfg.UseInferredRelationships = *inferred

	cat, err := dataset.BuildCatalog(cfg, *dsName, *manifest, *cacheDir)
	if err != nil {
		fail(err)
	}
	pool := dataset.NewPool(cat, *poolSize)
	srv := server.New(pool, server.WithLimits(server.Limits{
		MaxHeavy: *maxHeavy, MaxLight: *maxLight, RequestTimeout: *reqTO,
	}))
	if *debugAddr != "" {
		go serveDebug(*debugAddr)
	}
	if *warm {
		start := time.Now()
		slog.Info("warming dataset", "dataset", cat.Default())
		if err := srv.Warm(context.Background()); err != nil {
			fail(err)
		}
		slog.Info("warm complete", "dataset", cat.Default(),
			"elapsed", time.Since(start).Round(time.Millisecond))
	}
	slog.Info("serving", "addr", *addr, "datasets", len(cat.Names()), "default", cat.Default())
	hcfg := srvFlags.Config(*addr)
	hcfg.Draining = srv.SetDraining
	if err := httpd.Run(context.Background(), hcfg, srv); err != nil {
		fail(err)
	}
}

// serveDebug exposes the profiling and metrics endpoints on their own
// mux — never the public one — so enabling pprof is an explicit,
// separately-addressable choice.
func serveDebug(addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/metrics", obs.Default.Handler())
	slog.Info("debug server", "addr", addr)
	if err := http.ListenAndServe(addr, mux); err != nil {
		slog.Error("debug server failed", "err", err)
	}
}

func fail(err error) {
	slog.Error("fatal", "err", err)
	os.Exit(1)
}
