// Command simulate computes a dataset's converged BGP state and writes
// the RouteViews-style collector snapshot as an MRT TABLE_DUMP_V2 file
// — the same format family real collectors archive (and the format
// policyscope imports back as a snapshot-only dataset).
//
// The topology comes from the dataset catalog: by default the
// flag-derived synthetic configuration, with -dataset any built-in
// preset or manifest entry. Snapshot-only datasets (MRT imports) carry
// no topology to simulate and are rejected. With -cache-dir the
// dataset's converged tables load from the study cache when present
// (snapshot output path only: -scenario builds an engine that runs its
// own convergence, so the cache cannot help it).
//
// With -scenario it additionally runs a what-if: the events in the JSON
// file (link failures/restorations, prefix withdrawals/announcements,
// policy edits) are applied to the converged state, the affected
// prefixes are re-converged incrementally, a catchment-shift report is
// printed, and the post-event snapshot is the one written out. The
// scenario runs through the sweep subsystem's single-scenario path
// (internal/sweep.Apply), so a lone what-if and a cmd/sweep member
// produce identical impact records. -j bounds simulation parallelism.
//
// Usage:
//
//	simulate [-ases 2000] [-seed 42] [-peers 56] [-j 8] -out table.mrt
//	simulate -ases 800 -scenario events.json -out after.mrt
//	simulate -dataset paper -cache-dir /tmp/psc -out paper.mrt
//
// An events.json looks like:
//
//	{"name": "maintenance", "events": [
//	  {"kind": "link_fail", "a": 64512, "b": 64513},
//	  {"kind": "local_pref", "as": 64514, "neighbor": 64515, "value": 80}
//	]}
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	policyscope "github.com/policyscope/policyscope"
	"github.com/policyscope/policyscope/dataset"
	"github.com/policyscope/policyscope/internal/bgp"
	"github.com/policyscope/policyscope/internal/routeviews"
	"github.com/policyscope/policyscope/internal/simulate"
	"github.com/policyscope/policyscope/internal/sweep"
)

func main() {
	var (
		ases     = flag.Int("ases", 2000, "number of ASes (flag-derived dataset)")
		seed     = flag.Int64("seed", 42, "random seed")
		peers    = flag.Int("peers", 56, "collector peers")
		parallel = flag.Int("j", 0, "simulation worker parallelism (0 = GOMAXPROCS)")
		out      = flag.String("out", "table.mrt", "output MRT file ('-' = stdout)")
		scenario = flag.String("scenario", "", "what-if events JSON; the post-event snapshot is written")
		dsName   = flag.String("dataset", "", "dataset to simulate (preset or manifest entry; default: flag-derived config)")
		manifest = flag.String("manifest", "", "JSON dataset manifest to add to the catalog")
		cacheDir = flag.String("cache-dir", "", "content-addressed study cache directory")
	)
	flag.Parse()

	cfg := policyscope.Config{
		NumASes:        *ases,
		Seed:           *seed,
		CollectorPeers: *peers,
		Parallelism:    *parallel,
	}
	cat, err := dataset.BuildCatalog(cfg, *dsName, *manifest, *cacheDir)
	if err != nil {
		fail(err)
	}
	src, _ := cat.Get(cat.Default())

	var res *simulate.Result
	var peerSet []bgp.ASN
	if *scenario == "" {
		// The converged base state is the output: a full load (which the
		// study cache accelerates) is exactly what we need.
		study, err := src.Load(context.Background())
		if err != nil {
			fail(err)
		}
		if !study.HasGroundTruth() {
			fail(fmt.Errorf("dataset %q is snapshot-only: nothing to simulate", cat.Default()))
		}
		peerSet = study.Peers
		res = study.Result
	} else {
		sc, err := simulate.LoadScenarioFile(*scenario)
		if err != nil {
			fail(err)
		}
		// Topology only: the engine converges the base state itself, so
		// a full study load would simulate everything twice.
		topo, peers, err := dataset.LoadTopology(context.Background(), src)
		if err != nil {
			fail(err)
		}
		peerSet = peers
		eng, err := simulate.NewEngine(topo, simulate.Options{VantagePoints: peerSet, Parallelism: *parallel})
		if err != nil {
			fail(err)
		}
		start := time.Now()
		// The sweep subsystem's single-scenario path: identical impact
		// accounting whether a scenario runs alone or inside a fleet.
		imp, delta, err := sweep.Apply(eng, sc, 10)
		if err != nil {
			fail(err)
		}
		name := sc.Name
		if name == "" {
			name = *scenario
		}
		fmt.Fprintf(os.Stderr,
			"scenario %s: %d event(s), re-converged %d/%d prefixes in %v, %d AS-level best shifts, reach -%d/+%d\n",
			name, len(sc.Events), delta.Recomputed, delta.TotalPrefixes,
			time.Since(start).Round(time.Millisecond), imp.ShiftedASes,
			imp.LostReachPairs, imp.GainedReachPairs)
		for i, sh := range delta.Shifts {
			if i >= 10 {
				fmt.Fprintf(os.Stderr, "  ... %d more shifted prefixes\n", len(delta.Shifts)-10)
				break
			}
			fmt.Fprintf(os.Stderr, "  %v (AS%d): %d shifted, %d lost, %d gained\n",
				sh.Prefix, sh.Origin, sh.Shifted, sh.Lost, sh.Gained)
		}
		res = eng.Result()
	}
	if len(res.Unconverged) > 0 {
		fail(fmt.Errorf("%d prefixes did not converge", len(res.Unconverged)))
	}
	snap, err := routeviews.Collect(res, peerSet, uint32(time.Now().Unix()))
	if err != nil {
		fail(err)
	}

	var f *os.File
	if *out == "-" {
		f = os.Stdout
	} else {
		f, err = os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
	}
	w := bufio.NewWriter(f)
	if err := snap.WriteMRT(w); err != nil {
		fail(err)
	}
	if err := w.Flush(); err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d prefixes from %d peers to %s\n",
		len(snap.Prefixes()), len(snap.Peers), *out)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "simulate: %v\n", err)
	os.Exit(1)
}
