// Command simulate generates a topology, computes its converged BGP
// state, and writes the RouteViews-style collector snapshot as an MRT
// TABLE_DUMP_V2 file — the same format family real collectors archive.
//
// Usage:
//
//	simulate [-ases 2000] [-seed 42] [-peers 56] -out table.mrt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/policyscope/policyscope/internal/routeviews"
	"github.com/policyscope/policyscope/internal/simulate"
	"github.com/policyscope/policyscope/internal/topogen"
)

func main() {
	var (
		ases  = flag.Int("ases", 2000, "number of ASes")
		seed  = flag.Int64("seed", 42, "random seed")
		peers = flag.Int("peers", 56, "collector peers")
		out   = flag.String("out", "table.mrt", "output MRT file ('-' = stdout)")
	)
	flag.Parse()

	topo, err := topogen.Generate(topogen.DefaultConfig(*ases, *seed))
	if err != nil {
		fail(err)
	}
	peerSet := routeviews.SelectPeers(topo, *peers)
	res, err := simulate.Run(topo, simulate.Options{VantagePoints: peerSet})
	if err != nil {
		fail(err)
	}
	if len(res.Unconverged) > 0 {
		fail(fmt.Errorf("%d prefixes did not converge", len(res.Unconverged)))
	}
	snap, err := routeviews.Collect(res, peerSet, uint32(time.Now().Unix()))
	if err != nil {
		fail(err)
	}

	var f *os.File
	if *out == "-" {
		f = os.Stdout
	} else {
		f, err = os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
	}
	w := bufio.NewWriter(f)
	if err := snap.WriteMRT(w); err != nil {
		fail(err)
	}
	if err := w.Flush(); err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d prefixes from %d peers to %s\n",
		len(snap.Prefixes()), len(snap.Peers), *out)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "simulate: %v\n", err)
	os.Exit(1)
}
