// Command sweep runs a batch what-if sweep over a generated topology:
// a declarative spec (or a -gen shorthand) expands into a scenario
// family — every single-link failure, the de-peerings of a target AS,
// prefix withdrawals, hijack grids, policy flips — and the sharded
// executor runs them on -j worker-owned copy-on-write engine clones,
// streaming per-scenario impact records and printing the final
// aggregate.
//
// The topology comes from the dataset catalog: by default the
// flag-derived synthetic configuration, with -dataset any built-in
// preset or manifest entry (snapshot-only MRT datasets carry no
// topology and are rejected). The sweep engine always runs its own
// base convergence, so there is no -cache-dir here — the study cache
// stores converged tables, which a sweep cannot reuse.
//
// Usage:
//
//	sweep -ases 800 -seed 42 -j 8                       # all single-link failures
//	sweep -gen all_provider_depeerings -as 64512        # one family by shorthand
//	sweep -spec sweep.json -records records.ndjson      # full spec, records to file
//	sweep -dataset paper                                # a catalog preset
//	sweep -format text                                  # rendered aggregate tables
//
// With -workers the command becomes a distributed coordinator instead
// of running scenarios itself: the scenario index space is partitioned
// into contiguous shards (-shard-size) dispatched to the listed sweepd
// fleet, with per-shard lease timeouts (-lease), bounded retry
// (-retries), reassignment of failed workers' shards, and an optional
// resumable checkpoint:
//
//	sweep -ases 800 -workers host1:8081,host2:8081 \
//	      -checkpoint /tmp/cp -records records.ndjson   # distributed
//	sweep ... -checkpoint /tmp/cp -resume               # continue a killed run
//
// Distributed output — records and aggregate — is byte-identical to the
// single-process run of the same spec.
//
// Records stream in scenario index order (deterministic for a given
// topology and spec regardless of -j or the fleet layout). Progress
// goes to stderr as structured logs (-log-level, -log-format); the
// final "sweep done" line carries scenarios=N workers=J elapsed_ms=T,
// and -log-level debug adds one "worker done" line per worker with its
// busy time — the per-worker utilization behind any J>1 speedup claim.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	policyscope "github.com/policyscope/policyscope"
	"github.com/policyscope/policyscope/dataset"
	"github.com/policyscope/policyscope/internal/bgp"
	"github.com/policyscope/policyscope/internal/dsweep"
	"github.com/policyscope/policyscope/internal/profiling"
	"github.com/policyscope/policyscope/internal/simulate"
	"github.com/policyscope/policyscope/internal/sweep"
	"github.com/policyscope/policyscope/obs"
)

// profStop flushes any active profiles; fail() and normal returns both
// run it so -cpuprofile/-memprofile survive error exits.
var profStop = func() {}

func main() {
	var (
		ases       = flag.Int("ases", 800, "number of ASes")
		seed       = flag.Int64("seed", 42, "random seed")
		peers      = flag.Int("peers", 24, "collector peers (the sweep's vantage points)")
		jobs       = flag.Int("j", 0, "sweep worker count; with -workers, the executor parallelism on each remote worker (0 = GOMAXPROCS)")
		workerList = flag.String("workers", "", "comma-separated sweepd worker addresses (host:port); run as a distributed coordinator (with -fleet-addr, the static seed list)")
		fleetAddr  = flag.String("fleet-addr", "", "listen address for worker self-registration (POST /fleet/register); enables dynamic fleet membership")
		fleetTTL   = flag.Duration("fleet-ttl", dsweep.DefaultFleetTTL, "heartbeat liveness window in -fleet-addr mode; missed heartbeats past it evict the worker")
		grace      = flag.Duration("grace", 30*time.Second, "how long a -fleet-addr run tolerates zero live workers before failing")
		noSpec     = flag.Bool("no-speculate", false, "disable speculative re-dispatch of straggler shards")
		specAfter  = flag.Duration("speculate-after", 5*time.Second, "straggler floor: never speculate a shard attempt younger than this")
		adaptive   = flag.Bool("adaptive-shards", false, "shrink tail shards to a quarter of -shard-size so the last shard cannot dominate wall time")
		shardSize  = flag.Int("shard-size", dsweep.DefaultShardSize, "scenarios per shard in -workers mode")
		checkpoint = flag.String("checkpoint", "", "checkpoint directory in -workers mode: completed shards spool here for -resume")
		resume     = flag.Bool("resume", false, "resume from -checkpoint instead of refusing to reuse it")
		lease      = flag.Duration("lease", 5*time.Minute, "per-shard lease timeout in -workers mode")
		retries    = flag.Int("retries", 3, "max attempts per shard in -workers mode")
		trace      = flag.Bool("trace", false, "dump a coordinator span waterfall (NDJSON) to stderr in -workers mode")
		specPath   = flag.String("spec", "", "sweep spec JSON file ('-' = stdin)")
		gen        = flag.String("gen", "", "generator shorthand instead of -spec (e.g. all_single_link_failures)")
		genAS      = flag.Int("as", 0, "target AS for per-AS generators (-gen)")
		genMax     = flag.Int("max", 0, "cap the generator's scenario count (-gen)")
		genTier    = flag.Int("tier", 0, "restrict link failures to links touching this tier (-gen)")
		records    = flag.String("records", "", "write per-scenario NDJSON records to this file ('-' = stdout)")
		format     = flag.String("format", "json", "aggregate output: json or text")
		topK       = flag.Int("top", 10, "aggregate top-k critical scenarios")
		topShifts  = flag.Int("top-shifts", 3, "per-record most-shifted prefix detail")
		quiet      = flag.Bool("quiet", false, "suppress progress output")
		dsName     = flag.String("dataset", "", "dataset to sweep (preset or manifest entry; default: flag-derived config)")
		manifest   = flag.String("manifest", "", "JSON dataset manifest to add to the catalog")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		logFlags   obs.LogFlags
	)
	logFlags.Register(flag.CommandLine)
	flag.Parse()
	if err := logFlags.SetDefault(os.Stderr); err != nil {
		fail(err)
	}
	if *format != "json" && *format != "text" {
		fail(fmt.Errorf("-format must be json or text"))
	}
	if *specPath != "" && *gen != "" {
		fail(fmt.Errorf("-spec and -gen are mutually exclusive"))
	}
	if *resume && *checkpoint == "" {
		fail(fmt.Errorf("-resume requires -checkpoint"))
	}
	distributed := *workerList != "" || *fleetAddr != ""
	if !distributed && (*checkpoint != "" || *resume) {
		fail(fmt.Errorf("-checkpoint/-resume apply to -workers/-fleet-addr mode only"))
	}
	profStop = profiling.MustStart(*cpuProfile, *memProfile, fail)
	defer profStop()

	spec, err := resolveSpec(*specPath, *gen, *genAS, *genMax, *genTier)
	if err != nil {
		fail(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cat, err := dataset.BuildCatalog(policyscope.Config{
		NumASes: *ases, Seed: *seed, CollectorPeers: *peers,
	}, *dsName, *manifest, "")
	if err != nil {
		fail(err)
	}
	slog.Info("loading dataset", "dataset", cat.Default())
	src, _ := cat.Get(cat.Default())
	// Topology only: the engine below runs its own convergence, so a
	// full study load would converge the base state twice.
	topo, peerSet, err := dataset.LoadTopology(ctx, src)
	if err != nil {
		fail(err)
	}
	scenarios, err := sweep.Expand(ctx, topo, spec)
	if err != nil {
		fail(err)
	}

	var recW *bufio.Writer
	if *records != "" {
		f := os.Stdout
		if *records != "-" {
			f, err = os.Create(*records)
			if err != nil {
				fail(err)
			}
			defer f.Close()
		}
		recW = bufio.NewWriter(f)
		defer recW.Flush()
	}
	var recEnc *json.Encoder
	if recW != nil {
		recEnc = json.NewEncoder(recW)
	}

	done := 0
	step := len(scenarios) / 20
	if step < 1 {
		step = 1
	}
	start := time.Now()
	onImpact := func(imp *sweep.Impact) error {
		if recEnc != nil {
			if err := recEnc.Encode(imp); err != nil {
				return err
			}
		}
		done++
		if !*quiet && (done%step == 0 || done == len(scenarios)) {
			slog.Info("sweep progress",
				"done", done, "total", len(scenarios),
				"pct", int(100*float64(done)/float64(len(scenarios))),
				"elapsed", time.Since(start).Round(time.Millisecond))
		}
		return nil
	}

	var (
		agg              *sweep.Aggregate
		effectiveWorkers int
	)
	if distributed {
		vantageFP := dsweep.VantageFingerprint(peerSet)
		var seeds []string
		if *workerList != "" {
			seeds = strings.Split(*workerList, ",")
		}
		effectiveWorkers = len(seeds)
		var fleet *dsweep.Fleet
		if *fleetAddr != "" {
			// Dynamic membership: workers self-register here and stay
			// live by heartbeating; the static -workers list (if any)
			// seeds the dispatch before the first registration lands.
			fleet = dsweep.NewFleet(*fleetTTL)
			mux := http.NewServeMux()
			mux.Handle("/fleet/register", fleet.Handler())
			ln, err := net.Listen("tcp", *fleetAddr)
			if err != nil {
				fail(err)
			}
			fsrv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
			go func() {
				if err := fsrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
					slog.Error("fleet registry", "err", err)
				}
			}()
			defer fsrv.Close()
			slog.Info("fleet registry listening", "addr", ln.Addr().String(), "ttl", fleet.TTL())
		}
		var cp *dsweep.Checkpoint
		if *checkpoint != "" {
			fp, err := dsweep.NewFingerprint(spec, *dsName, len(scenarios), *shardSize, *topShifts, *adaptive)
			if err != nil {
				fail(err)
			}
			fp.Vantages = vantageFP
			cp, err = dsweep.OpenCheckpoint(*checkpoint, fp)
			if err != nil {
				fail(err)
			}
			if cp.Resumed() && !*resume {
				fail(fmt.Errorf("checkpoint %s already holds %d completed shards; pass -resume to continue it (or remove the directory)",
					*checkpoint, cp.CompletedCount()))
			}
		}
		var tr *obs.Trace
		if *trace {
			ctx, tr = obs.WithTrace(ctx, "dsweep")
		}
		agg, err = dsweep.Run(ctx, spec, scenarios, dsweep.Options{
			Workers:            seeds,
			Fleet:              fleet,
			NoWorkerGrace:      *grace,
			ShardSize:          *shardSize,
			AdaptiveShards:     *adaptive,
			DisableSpeculation: *noSpec,
			SpeculateAfter:     *specAfter,
			TopShifts:          *topShifts,
			TopK:               *topK,
			WorkerParallelism:  *jobs,
			Dataset:            *dsName,
			Vantages:           vantageFP,
			LeaseTimeout:       *lease,
			MaxAttempts:        *retries,
			Checkpoint:         cp,
			OnImpact:           onImpact,
			OnShardDone: func(worker string, d dsweep.ShardDone) {
				slog.Debug("shard done",
					"worker", worker, "start", d.Start, "end", d.End,
					"records", d.Records)
			},
			OnSpeculate: func(sh dsweep.Shard) {
				slog.Info("speculating straggler shard",
					"index", sh.Index, "start", sh.Start, "end", sh.End)
			},
		})
		if tr != nil {
			_ = tr.WriteNDJSON(os.Stderr)
		}
		if err != nil {
			fail(err)
		}
	} else {
		// Local mode runs the executor in-process; only here is the
		// engine (and its base convergence) needed at all.
		base, err := simulate.NewEngine(topo, simulate.Options{VantagePoints: peerSet})
		if err != nil {
			fail(err)
		}
		opts := sweep.Options{Workers: *jobs, TopShifts: *topShifts, TopK: *topK, OnImpact: onImpact}
		effectiveWorkers = opts.EffectiveWorkers(len(scenarios))
		opts.OnWorkerDone = func(ws sweep.WorkerStats) {
			slog.Debug("worker done",
				"worker", ws.Worker, "scenarios", ws.Scenarios,
				"busy_ms", ws.Busy.Milliseconds(), "reclones", ws.Reclones)
		}
		agg, err = sweep.Run(ctx, base, scenarios, opts)
		if err != nil {
			fail(err)
		}
	}
	elapsed := time.Since(start)
	if recEnc != nil {
		// The records stream ends with the same {"sweep_done": ...}
		// trailer the /sweep endpoint emits: a file without one was
		// truncated. Deterministic fields only, so local and distributed
		// runs stay byte-identical.
		if err := recEnc.Encode(struct {
			Done sweep.Done `json:"sweep_done"`
		}{sweep.Done{Scenarios: len(scenarios), Records: done}}); err != nil {
			fail(err)
		}
	}
	if recW != nil {
		if err := recW.Flush(); err != nil {
			fail(err)
		}
	}

	// Records on stdout imply NDJSON mode: the aggregate then only
	// reaches stderr, keeping the record stream pure.
	if *records != "-" {
		if *format == "text" {
			if err := (policyscope.SweepResult{Spec: spec, Aggregate: agg}).Render(os.Stdout); err != nil {
				fail(err)
			}
		} else {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(agg); err != nil {
				fail(err)
			}
		}
	}
	slog.Info("sweep done",
		"scenarios", agg.Scenarios, "workers", effectiveWorkers,
		"elapsed_ms", elapsed.Milliseconds())
}

// resolveSpec builds the sweep spec from -spec, -gen, or the default
// (every single-link failure).
func resolveSpec(specPath, gen string, genAS, genMax, genTier int) (sweep.Spec, error) {
	switch {
	case specPath == "-":
		return sweep.Load(os.Stdin)
	case specPath != "":
		return sweep.LoadFile(specPath)
	case gen != "":
		return sweep.Spec{
			Name: gen,
			Generators: []sweep.Generator{{
				Kind: gen, AS: bgp.ASN(genAS), Max: genMax, Tier: genTier,
			}},
		}, nil
	default:
		return sweep.Spec{
			Name:       "all-single-link-failures",
			Generators: []sweep.Generator{{Kind: sweep.KindAllSingleLinkFailures, Max: genMax, Tier: genTier}},
		}, nil
	}
}

func fail(err error) {
	profStop()
	slog.Error("fatal", "err", err)
	os.Exit(1)
}
