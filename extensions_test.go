package policyscope

import (
	"bytes"
	"strings"
	"testing"

	"github.com/policyscope/policyscope/internal/bgp"
)

func TestPolicyAtoms(t *testing.T) {
	s := smallStudy(t)
	res := s.PolicyAtoms()
	if res.Stats.Atoms == 0 || res.Stats.Prefixes == 0 {
		t.Fatalf("empty decomposition: %+v", res.Stats)
	}
	if res.Stats.Atoms > res.Stats.Prefixes {
		t.Fatalf("more atoms than prefixes: %+v", res.Stats)
	}
	if res.Attribution.MultiAtomOrigins == 0 {
		t.Fatal("no multi-atom origins at default policy mix")
	}
	// The paper's claim: selective export is the major cause.
	if got := res.Attribution.ExplainedPct(); got < 50 {
		t.Errorf("only %.1f%% of atom splits explained by selective announcement", got)
	}
	var buf bytes.Buffer
	if _, err := RenderPolicyAtoms(res).WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "atoms") {
		t.Fatal("render missing content")
	}
}

func TestDecisionCharacterization(t *testing.T) {
	s := smallStudy(t)
	rows := s.DecisionCharacterization()
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	// Section 4.1's claim is about cross-class choices: localpref must
	// decide a substantial share overall. Vantages whose candidates are
	// mostly same-class (two providers with identical jittered values)
	// legitimately fall through to path length, so the assertion is on
	// the aggregate.
	totalContested, totalLocalPref := 0, 0
	for _, r := range rows {
		totalContested += r.Contested
		totalLocalPref += r.ByStep[bgp.StepLocalPref]
	}
	if totalContested == 0 {
		t.Fatal("no contested prefixes anywhere")
	}
	if share := float64(totalLocalPref) / float64(totalContested); share < 0.25 {
		t.Errorf("localpref decided only %.2f of %d contested prefixes overall", share, totalContested)
	}
	var buf bytes.Buffer
	if _, err := RenderDecisionCharacterization(rows).WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "localpref") {
		t.Fatal("render missing content")
	}
}

func TestMultiSiteConfounder(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumASes = 300
	cfg.Seed = 13
	cfg.CollectorPeers = 14
	s, err := NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	impact := s.MultiSiteConfounder(3)
	if impact.MultiSiteOrigins == 0 {
		t.Skip("no multi-site origins drawn at this seed")
	}
	if impact.FromMultiSite > impact.SAPrefixes {
		t.Fatalf("inconsistent impact: %+v", impact)
	}
	// Multi-site artifacts must be a minority of SA detections at the
	// default 3% incidence.
	if impact.SAPrefixes > 0 && impact.Pct() > 50 {
		t.Errorf("multi-site artifacts dominate SA: %+v", impact)
	}
	var buf bytes.Buffer
	if _, err := RenderMultiSite(impact).WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "multi-site") {
		t.Fatal("render missing content")
	}
}

// TestMultiSiteOriginsAreDetectedAsSA pins the confounder mechanism:
// a multi-site origin's prefixes are genuinely selectively announced
// from the provider's viewpoint, which is exactly why the paper flags
// the case.
func TestMultiSiteOriginsAreDetectedAsSA(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumASes = 400
	cfg.Seed = 17
	cfg.CollectorPeers = 20
	s, err := NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var multiSite []bgp.ASN
	for _, asn := range s.Topo.Order {
		if s.Topo.ASes[asn].MultiSite {
			multiSite = append(multiSite, asn)
		}
	}
	if len(multiSite) == 0 {
		t.Skip("no multi-site origins at this seed")
	}
	// Every multi-site origin has per-prefix single-provider policies.
	for _, asn := range multiSite {
		pol := s.Topo.Policies[asn]
		info := s.Topo.ASes[asn]
		if len(pol.Export.OriginProviders) != len(info.Prefixes) {
			t.Fatalf("%v: multi-site origin missing per-prefix homing", asn)
		}
		for _, set := range pol.Export.OriginProviders {
			if len(set) != 1 {
				t.Fatalf("%v: site homed on %d providers", asn, len(set))
			}
		}
	}
}
