package dataset

import (
	"context"
	"fmt"
	"os"

	policyscope "github.com/policyscope/policyscope"
	"github.com/policyscope/policyscope/internal/asgraph"
	"github.com/policyscope/policyscope/internal/bgp"
	"github.com/policyscope/policyscope/internal/netx"
	"github.com/policyscope/policyscope/internal/routeviews"
	"github.com/policyscope/policyscope/internal/simulate"
	"github.com/policyscope/policyscope/internal/topogen"
)

// KindCAIDA is the Spec.Kind of CAIDA relationship-file sources.
const KindCAIDA = "caida"

// CAIDASpec declares a CAIDA source: a serialized AS-relationship graph
// ("a|b|-1" provider→customer, "a|b|0" peer, "a|b|1" sibling — the
// as-rel file format) plus the synthesis knobs that turn a bare graph
// into a runnable universe. The spec fully determines the generated
// data, so it is the cache-key material; execution knobs (Parallelism)
// live on the source, not here.
type CAIDASpec struct {
	// Path is the relationships file.
	Path string `json:"path"`
	// MaxPrefixes bounds how many /24s are synthesized over the graph
	// (origins are stride-selected across all connected ASes). The
	// default is 2048; the cap is 65536.
	MaxPrefixes int `json:"max_prefixes,omitempty"`
	// CollectorPeers is the RouteViews-style peer count (default 24).
	CollectorPeers int `json:"peers,omitempty"`
	// LookingGlassASes is the Looking-Glass vantage count (default 15).
	LookingGlassASes int `json:"lg,omitempty"`
	// Seed drives the deterministic synthesis choices.
	Seed int64 `json:"seed,omitempty"`
}

// withDefaults returns the spec with every zero knob resolved, so the
// canonical spec (and hence the cache key) is independent of which
// defaults the constructing code spelled out.
func (sp CAIDASpec) withDefaults() CAIDASpec {
	if sp.MaxPrefixes <= 0 {
		sp.MaxPrefixes = 2048
	}
	if sp.MaxPrefixes > 65536 {
		sp.MaxPrefixes = 65536
	}
	if sp.CollectorPeers <= 0 {
		sp.CollectorPeers = 24
	}
	if sp.LookingGlassASes <= 0 {
		sp.LookingGlassASes = 15
	}
	return sp
}

// CAIDAFile loads a CAIDA-format AS-relationship file as a full
// ground-truth dataset: the real (internet-scale) graph topology with
// default routing policies, synthesized prefix originations, and a BGP
// simulation to convergence over it. It is the bridge from the paper's
// synthetic universes to measured AS graphs 10-100x their size.
type CAIDAFile struct {
	// Path is the relationships file.
	Path string
	// MaxPrefixes, CollectorPeers, LookingGlassASes, Seed mirror
	// CAIDASpec (zero values take the spec defaults).
	MaxPrefixes      int
	CollectorPeers   int
	LookingGlassASes int
	Seed             int64
	// Parallelism bounds simulation workers (execution knob; not part
	// of the spec).
	Parallelism int
}

// NewCAIDAFile returns a source over the relationships file at path.
func NewCAIDAFile(path string) *CAIDAFile { return &CAIDAFile{Path: path} }

// Spec implements Source. The spec carries the resolved defaults so
// equivalent constructions share one cache entry.
func (c *CAIDAFile) Spec() Spec {
	sp := CAIDASpec{
		Path:             c.Path,
		MaxPrefixes:      c.MaxPrefixes,
		CollectorPeers:   c.CollectorPeers,
		LookingGlassASes: c.LookingGlassASes,
		Seed:             c.Seed,
	}.withDefaults()
	return Spec{Kind: KindCAIDA, CAIDA: &sp}
}

// readGraph parses the relationships file.
func (c *CAIDAFile) readGraph() (*asgraph.Graph, error) {
	f, err := os.Open(c.Path)
	if err != nil {
		return nil, fmt.Errorf("dataset: open CAIDA relationships: %w", err)
	}
	defer f.Close()
	g, err := asgraph.Read(f)
	if err != nil {
		return nil, fmt.Errorf("dataset: %s: %w", c.Path, err)
	}
	return g, nil
}

// Load parses the graph, synthesizes the topology and simulates it to
// convergence.
func (c *CAIDAFile) Load(ctx context.Context) (*policyscope.Study, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	g, err := c.readGraph()
	if err != nil {
		return nil, err
	}
	return c.buildStudy(ctx, g)
}

// buildStudy runs the simulation pipeline over an already-parsed graph
// (Load, and the cache's topology-regeneration path when only tables
// were persisted).
func (c *CAIDAFile) buildStudy(ctx context.Context, g *asgraph.Graph) (*policyscope.Study, error) {
	sp := *c.Spec().CAIDA
	topo, err := CAIDATopology(g, sp)
	if err != nil {
		return nil, err
	}
	peers := routeviews.SelectPeers(topo, sp.CollectorPeers)
	if len(peers) == 0 {
		return nil, fmt.Errorf("dataset: %s: graph has no eligible collector peers", c.Path)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	intern := bgp.NewIntern()
	res, err := simulate.Run(topo, simulate.Options{
		VantagePoints: peers,
		Parallelism:   c.Parallelism,
		Intern:        intern,
	})
	if err != nil {
		return nil, err
	}
	if len(res.Unconverged) > 0 {
		return nil, fmt.Errorf("dataset: %s: %d prefixes did not converge", c.Path, len(res.Unconverged))
	}
	snap, err := routeviews.Collect(res, peers, 0)
	if err != nil {
		return nil, err
	}
	return policyscope.NewStudyFromInputs(policyscope.StudyInputs{
		Config:   c.studyConfig(topo, peers),
		Topo:     topo,
		Result:   res,
		Peers:    peers,
		Snapshot: snap,
		Intern:   intern,
	})
}

// studyConfig derives the analysis configuration a CAIDA study reports.
func (c *CAIDAFile) studyConfig(topo *topogen.Topology, peers []bgp.ASN) policyscope.Config {
	sp := *c.Spec().CAIDA
	return policyscope.Config{
		NumASes:          len(topo.Order),
		Seed:             sp.Seed,
		CollectorPeers:   len(peers),
		LookingGlassASes: sp.LookingGlassASes,
		Parallelism:      c.Parallelism,
	}
}

// CAIDATopology annotates a relationship graph into a runnable
// topology: tiers from the provider hierarchy, default (nil) policies
// everywhere, and MaxPrefixes /24 originations stride-selected over the
// connected ASes. Deterministic in (graph, spec).
func CAIDATopology(g *asgraph.Graph, spec CAIDASpec) (*topogen.Topology, error) {
	spec = spec.withDefaults()
	nodes := g.Nodes()
	if len(nodes) == 0 {
		return nil, fmt.Errorf("dataset: CAIDA graph is empty")
	}
	tiers := g.Tiers()
	topo := &topogen.Topology{
		Config:       topogen.DefaultConfig(len(nodes), spec.Seed),
		Graph:        g,
		ASes:         make(map[bgp.ASN]*topogen.ASInfo, len(nodes)),
		Order:        nodes,
		PrefixOrigin: make(map[netx.Prefix]bgp.ASN, spec.MaxPrefixes),
		Policies:     make(map[bgp.ASN]*topogen.Policy),
	}
	eligible := make([]bgp.ASN, 0, len(nodes))
	for _, asn := range nodes {
		tier := tiers[asn]
		if tier < 1 || tier > 3 {
			tier = 3
		}
		topo.ASes[asn] = &topogen.ASInfo{
			ASN:    asn,
			Name:   fmt.Sprintf("AS%d", asn),
			Region: regionOf(asn),
			Tier:   tier,
		}
		if g.Degree(asn) > 0 {
			eligible = append(eligible, asn)
		}
	}
	if len(eligible) == 0 {
		return nil, fmt.Errorf("dataset: CAIDA graph has no edges")
	}
	n := spec.MaxPrefixes
	if n > len(eligible) {
		n = len(eligible)
	}
	for i := 0; i < n; i++ {
		// Stride selection spreads origins evenly across the (ascending)
		// AS numbering, so the prefix set samples every region of the
		// hierarchy instead of clustering at low ASNs.
		origin := eligible[i*len(eligible)/n]
		p := netx.Prefix{Addr: 11<<24 | uint32(i)<<8, Len: 24}
		topo.PrefixOrigin[p] = origin
		info := topo.ASes[origin]
		info.Prefixes = append(info.Prefixes, p)
	}
	return topo, nil
}

// regionOf tags an AS with a deterministic pseudo-region, weighted
// roughly like the generator's draw (CAIDA files carry no geography).
func regionOf(asn bgp.ASN) topogen.Region {
	switch x := asn % 20; {
	case x < 11:
		return topogen.RegionNA
	case x < 18:
		return topogen.RegionEU
	case x < 19:
		return topogen.RegionAS
	default:
		return topogen.RegionAU
	}
}
