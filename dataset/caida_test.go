package dataset

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	policyscope "github.com/policyscope/policyscope"
)

// writeRelFile synthesizes a deterministic CAIDA as-rel hierarchy with
// exactly n ASes: a 5-AS tier-1 peering clique, n/20 tier-2 transit
// ASes dual-homed into the clique, and the rest dual-homed tier-3 edge
// ASes. The arithmetic parent choice keeps the file reproducible
// without a seed.
func writeRelFile(tb testing.TB, path string, n int) {
	tb.Helper()
	if n < 30 {
		tb.Fatalf("writeRelFile wants >= 30 ASes, got %d", n)
	}
	var b bytes.Buffer
	b.WriteString("# synthesized as-rel hierarchy for tests\n")
	const t1 = 5
	t2 := n / 20
	if t2 < 10 {
		t2 = 10
	}
	// Tier-1 clique: ASNs 1..t1, all peers.
	for i := 1; i <= t1; i++ {
		for j := i + 1; j <= t1; j++ {
			fmt.Fprintf(&b, "%d|%d|0\n", i, j)
		}
	}
	// Tier-2: ASNs t1+1..t1+t2, two providers in the clique each.
	for i := 0; i < t2; i++ {
		asn := t1 + 1 + i
		fmt.Fprintf(&b, "%d|%d|-1\n", 1+i%t1, asn)
		fmt.Fprintf(&b, "%d|%d|-1\n", 1+(i+1)%t1, asn)
	}
	// Tier-3: the rest, two tier-2 providers each.
	for asn := t1 + t2 + 1; asn <= n; asn++ {
		i := asn - t1 - t2 - 1
		fmt.Fprintf(&b, "%d|%d|-1\n", t1+1+i%t2, asn)
		fmt.Fprintf(&b, "%d|%d|-1\n", t1+1+(i*7+3)%t2, asn)
	}
	if err := os.WriteFile(path, b.Bytes(), 0o644); err != nil {
		tb.Fatal(err)
	}
}

func relFixture(tb testing.TB, n int) string {
	tb.Helper()
	path := filepath.Join(tb.TempDir(), fmt.Sprintf("as-rel-%d.txt", n))
	writeRelFile(tb, path, n)
	return path
}

func TestCAIDATopologyDeterministic(t *testing.T) {
	path := relFixture(t, 200)
	src := NewCAIDAFile(path)
	src.MaxPrefixes = 40
	g, err := src.readGraph()
	if err != nil {
		t.Fatal(err)
	}
	spec := *src.Spec().CAIDA
	a, err := CAIDATopology(g, spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CAIDATopology(g, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Order) != 200 || len(a.PrefixOrigin) != 40 {
		t.Fatalf("topology: %d ASes, %d prefixes", len(a.Order), len(a.PrefixOrigin))
	}
	if fmt.Sprint(a.Order) != fmt.Sprint(b.Order) || fmt.Sprint(a.PrefixOrigin) != fmt.Sprint(b.PrefixOrigin) {
		t.Fatal("CAIDATopology is not deterministic")
	}
	// The clique landed in tier 1; everything is tiered 1..3.
	if a.ASes[1].Tier != 1 {
		t.Fatalf("clique AS tier = %d", a.ASes[1].Tier)
	}
	for asn, info := range a.ASes {
		if info.Tier < 1 || info.Tier > 3 {
			t.Fatalf("AS %d tier %d out of range", asn, info.Tier)
		}
	}
}

func TestCAIDASourceLoad(t *testing.T) {
	path := relFixture(t, 300)
	src := NewCAIDAFile(path)
	src.MaxPrefixes = 32
	src.CollectorPeers = 8
	if sp := src.Spec(); sp.Kind != KindCAIDA || sp.CAIDA == nil || sp.CAIDA.MaxPrefixes != 32 {
		t.Fatalf("spec: %+v", sp)
	}
	study, err := src.Load(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !study.HasGroundTruth() {
		t.Fatal("CAIDA study lacks ground truth")
	}
	if study.Intern == nil {
		t.Fatal("CAIDA study has no intern table")
	}
	if got := len(study.Topo.Order); got != 300 {
		t.Fatalf("topology has %d ASes", got)
	}
	if len(study.Peers) == 0 || len(study.Result.Tables) == 0 {
		t.Fatal("no collector peers/tables")
	}
	// The study answers ground-truth experiments.
	sess := policyscope.NewSessionFromStudy(study)
	if _, err := sess.Run(context.Background(), "table5", nil); err != nil {
		t.Fatalf("table5: %v", err)
	}
	if _, err := sess.Run(context.Background(), "whatif", nil); err != nil {
		t.Fatalf("whatif: %v", err)
	}

	// LoadTopology takes the fast path (no simulation) and agrees with
	// the full load on topology size and peer set.
	topo, peers, err := LoadTopology(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}
	if len(topo.Order) != 300 || fmt.Sprint(peers) != fmt.Sprint(study.Peers) {
		t.Fatalf("LoadTopology diverged: %d ASes, peers %v vs %v", len(topo.Order), peers, study.Peers)
	}
}

// TestCAIDACacheRoundTrip: a cache hit must answer byte-identically to
// the cold load and must not touch the relationships file — the graph
// is embedded in the entry, so deleting the source file proves the hit
// path is self-contained.
func TestCAIDACacheRoundTrip(t *testing.T) {
	path := relFixture(t, 300)
	dir := t.TempDir()
	mkSrc := func() *CAIDAFile {
		src := NewCAIDAFile(path)
		src.MaxPrefixes = 32
		src.CollectorPeers = 8
		return src
	}
	cold, err := NewCached(mkSrc(), dir).Load(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	warm, err := NewCached(mkSrc(), dir).Load(context.Background())
	if err != nil {
		t.Fatalf("cache hit after deleting the relationships file: %v", err)
	}
	if warm.Intern == nil {
		t.Fatal("cache hit carries no intern table")
	}
	names := []string{"overview", "table2", "table5", "whatif"}
	want := experimentBytes(t, cold, names)
	got := experimentBytes(t, warm, names)
	for _, name := range names {
		if want[name] != got[name] {
			t.Errorf("%s: CAIDA cache hit diverged", name)
		}
	}
}

func TestCAIDAManifestEntry(t *testing.T) {
	dir := t.TempDir()
	writeRelFile(t, filepath.Join(dir, "as-rel.txt"), 200)
	manifest := `{
  "default": "measured",
  "datasets": [
    {"name": "measured", "caida": {"path": "as-rel.txt", "max_prefixes": 16, "peers": 6}}
  ]
}`
	mPath := filepath.Join(dir, "datasets.json")
	if err := os.WriteFile(mPath, []byte(manifest), 0o644); err != nil {
		t.Fatal(err)
	}
	cat := Builtin()
	if err := cat.LoadManifestFile(mPath); err != nil {
		t.Fatal(err)
	}
	if cat.Default() != "measured" {
		t.Fatalf("default = %q", cat.Default())
	}
	src, ok := cat.Get("measured")
	if !ok {
		t.Fatal("manifest caida entry missing")
	}
	sp := src.Spec()
	// Relative paths resolve against the manifest directory.
	if sp.Kind != KindCAIDA || sp.CAIDA.Path != filepath.Join(dir, "as-rel.txt") || sp.CAIDA.MaxPrefixes != 16 {
		t.Fatalf("spec = %+v", sp)
	}
	study, err := src.Load(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(study.Topo.Order) != 200 {
		t.Fatalf("manifest caida load: %d ASes", len(study.Topo.Order))
	}

	// A caida entry combined with another kind is rejected.
	bad := `{"datasets": [{"name": "x", "mrt": "y.mrt", "caida": {"path": "as-rel.txt"}}]}`
	if err := Builtin().LoadManifest(bytes.NewReader([]byte(bad)), dir); err == nil {
		t.Error("manifest accepted caida+mrt entry")
	}
	// A caida entry without a path is rejected.
	bad = `{"datasets": [{"name": "x", "caida": {"max_prefixes": 4}}]}`
	if err := Builtin().LoadManifest(bytes.NewReader([]byte(bad)), dir); err == nil {
		t.Error("manifest accepted pathless caida entry")
	}
}

// TestBuildCatalogAdHocCAIDA: "-dataset caida:<path>" names an ad-hoc
// relationships file on any CLI, no manifest needed.
func TestBuildCatalogAdHocCAIDA(t *testing.T) {
	path := relFixture(t, 200)
	name := "caida:" + path
	flagCfg := tinyConfig(3)
	flagCfg.Parallelism = 3
	cat, err := BuildCatalog(flagCfg, name, "", "")
	if err != nil {
		t.Fatal(err)
	}
	if cat.Default() != name {
		t.Fatalf("default = %q", cat.Default())
	}
	src, ok := cat.Get(name)
	if !ok {
		t.Fatal("ad-hoc caida dataset not registered")
	}
	cf, ok := src.(*CAIDAFile)
	if !ok {
		t.Fatalf("source is %T", src)
	}
	if cf.Path != path || cf.Parallelism != 3 {
		t.Fatalf("source = %+v", cf)
	}

	// With a cache dir the source is wrapped like synthetic presets.
	cat, err = BuildCatalog(flagCfg, name, "", t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if src, _ := cat.Get(name); !isCached(src) {
		t.Error("ad-hoc caida source not wrapped by -cache-dir")
	}

	// A bare "caida:" is rejected before any work.
	if _, err := BuildCatalog(flagCfg, "caida:", "", ""); err == nil {
		t.Error("empty caida path accepted")
	}
}

// TestCAIDALargeGraphEndToEnd is the scale acceptance test: a
// synthesized 20k-AS relationships file — 33x the paper preset — loads
// through the CAIDA source, converges end to end, and answers
// experiments. Prefix count is bounded to keep the test CI-sized; the
// graph itself is full-scale.
func TestCAIDALargeGraphEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("20k-AS convergence; skipped in -short mode")
	}
	const nASes = 20000
	path := relFixture(t, nASes)
	src := NewCAIDAFile(path)
	src.MaxPrefixes = 64
	study, err := src.Load(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(study.Topo.Order); got < nASes {
		t.Fatalf("topology has %d ASes, want >= %d", got, nASes)
	}
	if len(study.Result.ReachCount) != 64 {
		t.Fatalf("%d prefixes converged, want 64", len(study.Result.ReachCount))
	}
	// Routes actually propagated across the hierarchy: every prefix is
	// reachable from the overwhelming majority of the graph.
	for p, n := range study.Result.ReachCount {
		if n < nASes/2 {
			t.Fatalf("prefix %v reached only %d of %d ASes", p, n, nASes)
		}
	}
	sess := policyscope.NewSessionFromStudy(study)
	res, err := sess.Run(context.Background(), "table5", nil)
	if err != nil {
		t.Fatalf("table5 over 20k ASes: %v", err)
	}
	if blob, err := json.Marshal(res); err != nil || len(blob) == 0 {
		t.Fatalf("table5 result unmarshalable: %v", err)
	}
}
