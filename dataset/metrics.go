package dataset

import "github.com/policyscope/policyscope/obs"

// Pool metrics, process-wide across all pools (a serving process runs
// one). The counters mirror Pool.Stats so dashboards and healthz agree;
// the histograms answer what Stats cannot: how long builds take per
// outcome and how long hits wait on in-flight builds.
var (
	mPoolHits = obs.NewCounter("policyscope_pool_hits_total",
		"Session resolutions served from a resident (or in-flight) pool entry.")
	mPoolMisses = obs.NewCounter("policyscope_pool_misses_total",
		"Session resolutions that started a new dataset build.")
	mPoolEvictions = obs.NewCounter("policyscope_pool_evictions_total",
		"Warmed sessions evicted by the LRU bound.")
	mPoolBuildSeconds = obs.NewHistogramVec("policyscope_pool_build_seconds",
		"Dataset build (Source.Load + session construction) latency by outcome.",
		nil, "outcome")
	mPoolBuildOK     = mPoolBuildSeconds.With("ok")
	mPoolBuildError  = mPoolBuildSeconds.With("error")
	mPoolWaitSeconds = obs.NewHistogram("policyscope_pool_wait_seconds",
		"Time a pool hit spent waiting for the entry to become ready (0 for warm hits).", nil)
	mPoolCooldownRejects = obs.NewCounter("policyscope_pool_cooldown_rejects_total",
		"Session requests refused because the dataset's last build failed within the cooldown window.")
)
