// Package dataset makes the data a study runs over a first-class API
// parameter. The paper's analyses are functions of a BGP table snapshot
// — RouteViews MRT dumps plus Looking Glass views — and the related
// AS-relationship pipelines (Gao; Dimitropoulos et al.) are likewise
// parameterized by which RIB snapshot they ingest. This package gives
// policyscope the same shape:
//
//   - Source yields a Study's inputs: Synthetic (a named generator
//     configuration), MRTFile (an imported TABLE_DUMP_V2 snapshot,
//     loaded into a snapshot-only Study), and Cached (a
//     content-addressed on-disk store over any source, so expensive
//     synthetic generation is paid once per spec).
//   - Catalog names sources: built-in presets (paper, small, large)
//     plus entries from a JSON manifest.
//   - Pool is a bounded LRU of warmed Sessions keyed by dataset name,
//     with singleflight builds, so one server process serves many
//     universes concurrently.
package dataset

import (
	"context"
	"fmt"
	"os"

	policyscope "github.com/policyscope/policyscope"
	"github.com/policyscope/policyscope/internal/bgp"
	"github.com/policyscope/policyscope/internal/routeviews"
	"github.com/policyscope/policyscope/internal/topogen"
)

// Source kinds, as reported by Spec.Kind. KindCAIDA is declared with
// its source in caida.go.
const (
	KindSynthetic = "synthetic"
	KindMRT       = "mrt"
	KindStudy     = "study"
)

// Source yields a Study's inputs. Implementations are cheap to
// construct; all acquisition cost is in Load.
type Source interface {
	// Spec describes the source declaratively. The canonical JSON
	// encoding of the spec is stable across processes and is the cache
	// key material.
	Spec() Spec
	// Load materializes the study. ctx gates the work: generation and
	// import honor cancellation at their checkpoints.
	Load(ctx context.Context) (*policyscope.Study, error)
}

// Spec is a source's declarative description — what a catalog lists and
// what the cache hashes.
type Spec struct {
	// Kind is one of KindSynthetic, KindMRT, KindStudy.
	Kind string `json:"kind"`
	// Synthetic carries the generator configuration for synthetic
	// sources.
	Synthetic *policyscope.Config `json:"synthetic,omitempty"`
	// MRT is the snapshot path for MRT sources.
	MRT string `json:"mrt,omitempty"`
	// CAIDA carries the relationship-file configuration for CAIDA
	// sources.
	CAIDA *CAIDASpec `json:"caida,omitempty"`
}

// Synthetic generates a study from a policyscope configuration — the
// topogen preset path NewStudy always took, packaged as a source.
type Synthetic struct {
	Config policyscope.Config
}

// NewSynthetic returns a synthetic source for cfg.
func NewSynthetic(cfg policyscope.Config) *Synthetic { return &Synthetic{Config: cfg} }

// Spec implements Source. Parallelism is canonicalized away: it is an
// execution knob that cannot change the generated data (the simulation
// is deterministic across worker counts), so it must not split the
// cache key.
func (s *Synthetic) Spec() Spec {
	cfg := s.Config
	cfg.Parallelism = 0
	return Spec{Kind: KindSynthetic, Synthetic: &cfg}
}

// Load generates, simulates and collects the study.
func (s *Synthetic) Load(ctx context.Context) (*policyscope.Study, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return policyscope.NewStudy(s.Config)
}

// MRTFile loads a TABLE_DUMP/TABLE_DUMP_V2 snapshot into a
// snapshot-only study: ground-truth-free experiments run over the
// imported table (relationships Gao-inferred from the observed paths),
// ground-truth-dependent ones return policyscope.ErrNeedsGroundTruth.
type MRTFile struct {
	// Path is the MRT file.
	Path string
	// Config carries analysis knobs (Seed, Parallelism); sizing fields
	// are derived from the snapshot. The zero value is fine.
	Config policyscope.Config
}

// NewMRTFile returns a source over the MRT file at path.
func NewMRTFile(path string) *MRTFile { return &MRTFile{Path: path} }

// Spec implements Source.
func (m *MRTFile) Spec() Spec { return Spec{Kind: KindMRT, MRT: m.Path} }

// Load parses the dump and assembles the snapshot-only study.
func (m *MRTFile) Load(ctx context.Context) (*policyscope.Study, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	f, err := os.Open(m.Path)
	if err != nil {
		return nil, fmt.Errorf("dataset: open MRT: %w", err)
	}
	defer f.Close()
	snap, err := routeviews.ReadMRT(f)
	if err != nil {
		return nil, fmt.Errorf("dataset: %s: %w", m.Path, err)
	}
	if len(snap.Peers) == 0 {
		return nil, fmt.Errorf("dataset: %s: snapshot has no peer index", m.Path)
	}
	if len(snap.Prefixes()) == 0 {
		return nil, fmt.Errorf("dataset: %s: snapshot has no routes", m.Path)
	}
	return policyscope.NewStudyFromSnapshot(snap, m.Config)
}

// LoadTopology yields just a dataset's annotated topology and collector
// peer set — what an engine-building consumer (cmd/sweep, cmd/simulate
// -scenario) actually needs. For synthetic sources this generates the
// topology *without* simulating it (the engine will run its own
// convergence), skipping the converged-tables work a full Load pays;
// a Cached wrapper is unwrapped for the same reason — generation alone
// is cheaper than any disk load. Snapshot-only sources carry no
// topology and return an error wrapping policyscope.ErrNeedsGroundTruth.
func LoadTopology(ctx context.Context, src Source) (*topogen.Topology, []bgp.ASN, error) {
	if c, ok := src.(*Cached); ok {
		src = c.Source
	}
	if s, ok := src.(*Synthetic); ok {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		return policyscope.GenerateTopology(s.Config)
	}
	if c, ok := src.(*CAIDAFile); ok {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		g, err := c.readGraph()
		if err != nil {
			return nil, nil, err
		}
		sp := *c.Spec().CAIDA
		topo, err := CAIDATopology(g, sp)
		if err != nil {
			return nil, nil, err
		}
		return topo, routeviews.SelectPeers(topo, sp.CollectorPeers), nil
	}
	study, err := src.Load(ctx)
	if err != nil {
		return nil, nil, err
	}
	if !study.HasGroundTruth() {
		return nil, nil, fmt.Errorf("dataset: snapshot-only dataset: %w", policyscope.ErrNeedsGroundTruth)
	}
	return study.Topo, study.Peers, nil
}

// studySource adapts an already-built study (tests, embedding a
// pre-warmed dataset into a catalog). Load hands out the same study;
// studies are safe for concurrent read-only use.
type studySource struct{ study *policyscope.Study }

// FromStudy wraps an already-built study as a source.
func FromStudy(s *policyscope.Study) Source { return &studySource{study: s} }

func (s *studySource) Spec() Spec {
	cfg := s.study.Config
	return Spec{Kind: KindStudy, Synthetic: &cfg}
}

func (s *studySource) Load(context.Context) (*policyscope.Study, error) { return s.study, nil }
