package dataset

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"

	policyscope "github.com/policyscope/policyscope"
)

// Catalog names sources. It is populated from the built-in presets, a
// JSON manifest, and programmatic registration, and is safe for
// concurrent use once serving starts.
type Catalog struct {
	mu      sync.RWMutex
	sources map[string]Source
	order   []string
	def     string
	// defExplicit records that def was chosen deliberately (SetDefault,
	// a manifest "default") rather than falling out of registration
	// order or the built-in presets — BuildCatalog only overrides an
	// implicit default with the flag-derived configuration.
	defExplicit bool
}

// NewCatalog returns an empty catalog with no default.
func NewCatalog() *Catalog { return &Catalog{sources: make(map[string]Source)} }

// Builtin returns a catalog holding the built-in presets — paper (the
// laptop-scale paper reproduction every CLI defaulted to), small (a
// smoke-test universe), large (the 2000-AS, 56-peer dimension of the
// paper's actual collector) — with "paper" as the default.
func Builtin() *Catalog {
	c := NewCatalog()
	paper := policyscope.DefaultConfig()
	small := policyscope.Config{NumASes: 200, Seed: 42, CollectorPeers: 12, LookingGlassASes: 8}
	large := policyscope.Config{NumASes: 2000, Seed: 42, CollectorPeers: 56, LookingGlassASes: 15}
	for _, p := range []struct {
		name string
		cfg  policyscope.Config
	}{{"paper", paper}, {"small", small}, {"large", large}} {
		if err := c.Register(p.name, NewSynthetic(p.cfg)); err != nil {
			panic(err) // static names cannot collide
		}
	}
	c.def = "paper"
	return c
}

// Register adds a named source. Names are unique; registering a
// duplicate or an empty name is an error.
func (c *Catalog) Register(name string, src Source) error {
	if name == "" {
		return fmt.Errorf("dataset: registering with empty name")
	}
	if src == nil {
		return fmt.Errorf("dataset: %s: nil source", name)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.sources[name]; dup {
		return fmt.Errorf("dataset: duplicate dataset %q", name)
	}
	c.sources[name] = src
	c.order = append(c.order, name)
	if c.def == "" {
		c.def = name
	}
	return nil
}

// Get returns the source registered under name.
func (c *Catalog) Get(name string) (Source, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	src, ok := c.sources[name]
	return src, ok
}

// Names returns every dataset name in registration order.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]string(nil), c.order...)
}

// Default returns the default dataset name ("" on an empty catalog).
func (c *Catalog) Default() string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.def
}

// SetDefault makes name the default dataset.
func (c *Catalog) SetDefault(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.sources[name]; !ok {
		return fmt.Errorf("dataset: unknown dataset %q", name)
	}
	c.def = name
	c.defExplicit = true
	return nil
}

// defaultExplicit reports whether the default was chosen deliberately.
func (c *Catalog) defaultExplicit() bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.defExplicit
}

// EnableCache wraps every registered synthetic and CAIDA source in a
// Cached store at dir (both pay a BGP simulation on a cold load; CAIDA
// entries embed the graph bytes, so a hit stays consistent with the
// tables it was written with). Study-backed sources are left alone
// (their Load is already free), as are sources already wrapped — and
// MRT sources: the spec key is the file *path*, so a cache entry would
// keep serving the old snapshot after the file changed, while the hit
// path would have to re-parse the bytes anyway.
func (c *Catalog) EnableCache(dir string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for name, src := range c.sources {
		if _, ok := src.(*Cached); ok {
			continue
		}
		if k := src.Spec().Kind; k != KindSynthetic && k != KindCAIDA {
			continue
		}
		c.sources[name] = NewCached(src, dir)
	}
}

// BuildCatalog assembles the catalog every CLI shares: the built-in
// presets, the optional JSON manifest, and the flag-derived synthetic
// configuration registered under "default". The default dataset
// resolves by precedence: an explicit -dataset name, then a manifest
// "default", then the flag-derived configuration (the pre-catalog CLI
// behavior). A non-empty cacheDir wraps every loadable source in the
// on-disk store.
func BuildCatalog(flagCfg policyscope.Config, datasetName, manifestPath, cacheDir string) (*Catalog, error) {
	cat := Builtin()
	if manifestPath != "" {
		if err := cat.LoadManifestFile(manifestPath); err != nil {
			return nil, err
		}
	}
	// The flag-derived configuration registers under "default" — unless
	// a manifest entry already claimed the name, in which case the
	// manifest wins (an explicit dataset beats implicit flags).
	if _, taken := cat.Get("default"); !taken {
		if err := cat.Register("default", NewSynthetic(flagCfg)); err != nil {
			return nil, err
		}
	}
	// "caida:<path>" names an ad-hoc CAIDA relationships file without a
	// manifest; the literal string is the dataset name.
	if path, ok := strings.CutPrefix(datasetName, "caida:"); ok {
		if path == "" {
			return nil, fmt.Errorf("dataset: %q names no relationships file", datasetName)
		}
		if _, taken := cat.Get(datasetName); !taken {
			src := NewCAIDAFile(path)
			src.Parallelism = flagCfg.Parallelism
			if err := cat.Register(datasetName, src); err != nil {
				return nil, err
			}
		}
	}
	switch {
	case datasetName != "":
		if err := cat.SetDefault(datasetName); err != nil {
			return nil, err
		}
	case cat.defaultExplicit():
		// the manifest chose; keep it
	default:
		if err := cat.SetDefault("default"); err != nil {
			return nil, err
		}
	}
	if cacheDir != "" {
		cat.EnableCache(cacheDir)
	}
	return cat, nil
}

// Manifest is the JSON catalog file:
//
//	{
//	  "default": "stress",
//	  "datasets": [
//	    {"name": "stress", "synthetic": {"ases": 5000, "seed": 7, "peers": 56}},
//	    {"name": "rv-snapshot", "mrt": "snapshots/rv.mrt"}
//	  ]
//	}
//
// Relative MRT paths resolve against the manifest file's directory.
type Manifest struct {
	// Default optionally names the default dataset.
	Default string `json:"default,omitempty"`
	// Datasets lists the entries in catalog order.
	Datasets []ManifestEntry `json:"datasets"`
}

// ManifestEntry declares one dataset: exactly one of Synthetic, MRT or
// CAIDA.
type ManifestEntry struct {
	Name      string              `json:"name"`
	Synthetic *policyscope.Config `json:"synthetic,omitempty"`
	MRT       string              `json:"mrt,omitempty"`
	CAIDA     *CAIDASpec          `json:"caida,omitempty"`
}

// LoadManifest registers every dataset of the manifest read from r.
// baseDir resolves relative MRT paths ("" = current directory).
func (c *Catalog) LoadManifest(r io.Reader, baseDir string) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var m Manifest
	if err := dec.Decode(&m); err != nil {
		return fmt.Errorf("dataset: bad manifest: %w", err)
	}
	if len(m.Datasets) == 0 {
		return fmt.Errorf("dataset: manifest lists no datasets")
	}
	for i, e := range m.Datasets {
		if e.Name == "" {
			return fmt.Errorf("dataset: manifest entry %d has no name", i)
		}
		declared := 0
		for _, set := range []bool{e.Synthetic != nil, e.MRT != "", e.CAIDA != nil} {
			if set {
				declared++
			}
		}
		if declared > 1 {
			return fmt.Errorf("dataset: %s: declares more than one of synthetic, mrt, caida", e.Name)
		}
		var src Source
		switch {
		case e.Synthetic != nil:
			src = NewSynthetic(*e.Synthetic)
		case e.MRT != "":
			path := e.MRT
			if baseDir != "" && !filepath.IsAbs(path) {
				path = filepath.Join(baseDir, path)
			}
			src = NewMRTFile(path)
		case e.CAIDA != nil:
			sp := *e.CAIDA
			if sp.Path == "" {
				return fmt.Errorf("dataset: %s: caida entry has no path", e.Name)
			}
			if baseDir != "" && !filepath.IsAbs(sp.Path) {
				sp.Path = filepath.Join(baseDir, sp.Path)
			}
			src = &CAIDAFile{
				Path:             sp.Path,
				MaxPrefixes:      sp.MaxPrefixes,
				CollectorPeers:   sp.CollectorPeers,
				LookingGlassASes: sp.LookingGlassASes,
				Seed:             sp.Seed,
			}
		default:
			return fmt.Errorf("dataset: %s: needs synthetic, mrt or caida", e.Name)
		}
		if err := c.Register(e.Name, src); err != nil {
			// Typically a clash with a built-in preset (paper, small,
			// large) or a repeated manifest name.
			return fmt.Errorf("dataset: manifest entry %d (%s): %w", i, e.Name, err)
		}
	}
	if m.Default != "" {
		if err := c.SetDefault(m.Default); err != nil {
			return err
		}
	}
	return nil
}

// LoadManifestFile reads the manifest at path; relative MRT paths
// resolve against the manifest's directory.
func (c *Catalog) LoadManifestFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return c.LoadManifest(f, filepath.Dir(path))
}

// Info is the serializable catalog row (what GET /datasets returns).
type Info struct {
	Name    string `json:"name"`
	Default bool   `json:"default,omitempty"`
	Spec    Spec   `json:"spec"`
	// Resident reports whether a warmed session is in the pool (set by
	// Pool.Datasets; always false straight from a catalog).
	Resident bool `json:"resident,omitempty"`
}

// Infos returns the serializable catalog in registration order.
func (c *Catalog) Infos() []Info {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]Info, 0, len(c.order))
	for _, name := range c.order {
		out = append(out, Info{Name: name, Default: name == c.def, Spec: c.sources[name].Spec()})
	}
	return out
}
