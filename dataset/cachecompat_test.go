package dataset

import (
	"bytes"
	"context"
	"encoding/gob"
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"

	policyscope "github.com/policyscope/policyscope"
	"github.com/policyscope/policyscope/internal/bgp"
	"github.com/policyscope/policyscope/internal/netx"
	"github.com/policyscope/policyscope/internal/routeviews"
	"github.com/policyscope/policyscope/internal/simulate"
	"github.com/policyscope/policyscope/internal/topogen"
)

// The gob-era cache codec (format version 1, used through PR 5), kept
// verbatim as a test oracle: the flat studyfmt payload must reconstruct
// studies whose experiment output is byte-identical to what the gob
// round trip produced.

type gobStudy struct {
	Config      policyscope.Config
	Peers       []bgp.ASN
	GroundTruth bool
	Tables      []gobTable
	ReachCount  map[netx.Prefix]int
	Timestamp   uint32
	MRT         []byte
}

type gobTable struct {
	Owner  bgp.ASN
	Routes []gobRoute
}

type gobRoute struct {
	From  bgp.ASN
	Route bgp.Route
}

func gobEncodeStudy(t *testing.T, s *policyscope.Study) []byte {
	t.Helper()
	payload := gobStudy{Config: s.Config, Peers: s.Peers, GroundTruth: s.HasGroundTruth()}
	if !payload.GroundTruth {
		t.Fatal("gob oracle only models ground-truth studies here")
	}
	payload.Timestamp = s.Snapshot.Timestamp
	payload.ReachCount = s.Result.ReachCount
	owners := make([]bgp.ASN, 0, len(s.Result.Tables))
	for asn := range s.Result.Tables {
		owners = append(owners, asn)
	}
	sort.Slice(owners, func(i, j int) bool { return owners[i] < owners[j] })
	for _, asn := range owners {
		ct := gobTable{Owner: asn}
		s.Result.Tables[asn].EachCandidate(func(_ netx.Prefix, from bgp.ASN, r *bgp.Route) {
			ct.Routes = append(ct.Routes, gobRoute{From: from, Route: *r})
		})
		payload.Tables = append(payload.Tables, ct)
	}
	var blob bytes.Buffer
	if err := gob.NewEncoder(&blob).Encode(payload); err != nil {
		t.Fatal(err)
	}
	return blob.Bytes()
}

func gobDecodeStudy(t *testing.T, blob []byte) *policyscope.Study {
	t.Helper()
	var payload gobStudy
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&payload); err != nil {
		t.Fatal(err)
	}
	topo, err := topogen.Generate(payload.Config.TopologyConfig())
	if err != nil {
		t.Fatal(err)
	}
	res := &simulate.Result{
		Tables:     make(map[bgp.ASN]*bgp.RIB, len(payload.Tables)),
		ReachCount: payload.ReachCount,
	}
	for _, ct := range payload.Tables {
		rib := bgp.NewRIB(ct.Owner)
		for i := range ct.Routes {
			cr := &ct.Routes[i]
			rib.Upsert(cr.From, &cr.Route)
		}
		res.Tables[ct.Owner] = rib
	}
	snap, err := routeviews.Collect(res, payload.Peers, payload.Timestamp)
	if err != nil {
		t.Fatal(err)
	}
	study, err := policyscope.NewStudyFromInputs(policyscope.StudyInputs{
		Config:   payload.Config,
		Topo:     topo,
		Result:   res,
		Peers:    payload.Peers,
		Snapshot: snap,
	})
	if err != nil {
		t.Fatal(err)
	}
	return study
}

// experimentBytes runs the named experiments and returns their marshaled
// results keyed by name.
func experimentBytes(t *testing.T, study *policyscope.Study, names []string) map[string]string {
	t.Helper()
	sess := policyscope.NewSessionFromStudy(study)
	out := make(map[string]string, len(names))
	for _, name := range names {
		res, err := sess.Run(context.Background(), name, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		blob, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		out[name] = string(blob)
	}
	return out
}

// TestFlatCacheMatchesGobEra is the refactor's equivalence bar: a study
// round-tripped through the flat studyfmt cache must answer a
// ground-truth-heavy slice of the experiment catalog byte-identically
// to the same study round-tripped through the PR-5 gob codec.
func TestFlatCacheMatchesGobEra(t *testing.T) {
	cfg := tinyConfig(37)
	cold, err := NewSynthetic(cfg).Load(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	gobEra := gobDecodeStudy(t, gobEncodeStudy(t, cold))

	dir := t.TempDir()
	if _, err := NewCached(NewSynthetic(cfg), dir).Load(context.Background()); err != nil {
		t.Fatal(err)
	}
	flat, err := NewCached(&failingSource{spec: NewSynthetic(cfg).Spec()}, dir).Load(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	names := []string{"overview", "table2", "case3", "decision", "table5", "whatif"}
	want := experimentBytes(t, gobEra, names)
	got := experimentBytes(t, flat, names)
	for _, name := range names {
		if want[name] != got[name] {
			t.Errorf("%s: flat cache diverged from gob era\n want %s\n  got %s", name, want[name], got[name])
		}
	}
}

// TestCachedStaleVersionFallsThrough: an entry carrying a different
// format version byte must be treated as a miss (regenerate + repair),
// never misread.
func TestCachedStaleVersionFallsThrough(t *testing.T) {
	dir := t.TempDir()
	cfg := tinyConfig(53)
	cold := NewCached(NewSynthetic(cfg), dir)
	if _, err := cold.Load(context.Background()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, cold.Key()+".study")
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	good := append([]byte(nil), blob...)
	blob[4]++ // future format version
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	src := &countingSource{Synthetic: Synthetic{Config: cfg}}
	c := NewCached(src, dir)
	study, err := c.Load(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !study.HasGroundTruth() {
		t.Fatal("fallthrough load incomplete")
	}
	if n := src.loads.Load(); n != 1 {
		t.Fatalf("stale-version entry was not treated as a miss (loads=%d)", n)
	}
	repaired, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if repaired[4] != good[4] {
		t.Fatalf("entry not rewritten at the current version (byte %d)", repaired[4])
	}
	if _, err := NewCached(&failingSource{spec: c.Spec()}, dir).Load(context.Background()); err != nil {
		t.Fatalf("repaired entry unreadable: %v", err)
	}
}

// TestCachedTruncatedEntryFallsThrough: truncation at any point —
// inside the header, the directory, or mid-section — degrades to a
// regenerating miss, not a failure.
func TestCachedTruncatedEntryFallsThrough(t *testing.T) {
	dir := t.TempDir()
	cfg := tinyConfig(59)
	cold := NewCached(NewSynthetic(cfg), dir)
	if _, err := cold.Load(context.Background()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, cold.Key()+".study")
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 4, 40, len(blob) / 2, len(blob) - 1} {
		if err := os.WriteFile(path, blob[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		src := &countingSource{Synthetic: Synthetic{Config: cfg}}
		study, err := NewCached(src, dir).Load(context.Background())
		if err != nil {
			t.Fatalf("truncation at %d: %v", n, err)
		}
		if !study.HasGroundTruth() || src.loads.Load() != 1 {
			t.Fatalf("truncation at %d: not a regenerating miss (loads=%d)", n, src.loads.Load())
		}
	}
}

// TestCacheHitInternSharingRace: a cache hit's study carries the intern
// table its decoder populated; concurrent pool hits build engines and
// run what-if work against that shared table. Run with -race — the
// point of the test is that first-writer-wins interning from many
// engine workers is clean.
func TestCacheHitInternSharingRace(t *testing.T) {
	dir := t.TempDir()
	cfg := tinyConfig(61)
	if _, err := NewCached(NewSynthetic(cfg), dir).Load(context.Background()); err != nil {
		t.Fatal(err)
	}
	cat := NewCatalog()
	if err := cat.Register("cached", NewCached(&failingSource{spec: NewSynthetic(cfg).Spec()}, dir)); err != nil {
		t.Fatal(err)
	}
	pool := NewPool(cat, 2)

	sess, err := pool.Session(context.Background(), "cached")
	if err != nil {
		t.Fatal(err)
	}
	study, err := sess.Study()
	if err != nil {
		t.Fatal(err)
	}
	if study.Intern == nil {
		t.Fatal("cache-hit study has no shared intern table")
	}

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s, err := pool.Session(context.Background(), "cached")
			if err != nil {
				errs <- err
				return
			}
			// Alternate a full engine build (whatif re-converges through
			// the shared intern) with a plain table read.
			name := "whatif"
			if w%2 == 1 {
				name = "table2"
			}
			if _, err := s.Run(context.Background(), name, nil); err != nil {
				errs <- err
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
