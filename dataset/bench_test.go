package dataset

// Pool/cache benchmarks, snapshotted by scripts/bench_pool.sh into
// BENCH_pool.json: cold synthetic generation vs a cache-hit load of the
// same dataset (the acceptance bar is >= 10x), and concurrent
// mixed-dataset query throughput through the pool (the multi-tenant
// successor of BenchmarkSessionConcurrentQueries' single-session
// number).

import (
	"context"
	"sync"
	"testing"

	policyscope "github.com/policyscope/policyscope"
)

// benchConfig is the "paper" preset — the dataset a cold server start
// would build.
func benchConfig() policyscope.Config { return policyscope.DefaultConfig() }

// BenchmarkDatasetColdGenerate is the price of a cold start: full
// synthetic generation + BGP simulation to convergence + collection.
func BenchmarkDatasetColdGenerate(b *testing.B) {
	src := NewSynthetic(benchConfig())
	for i := 0; i < b.N; i++ {
		study, err := src.Load(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if study.Snapshot == nil {
			b.Fatal("no snapshot")
		}
	}
}

// BenchmarkDatasetCacheHit is the same dataset through a warmed cache:
// deterministic topology regeneration plus a converged-table load from
// disk.
func BenchmarkDatasetCacheHit(b *testing.B) {
	dir := b.TempDir()
	warm := NewCached(NewSynthetic(benchConfig()), dir)
	if _, err := warm.Load(context.Background()); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		study, err := warm.Load(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if study.Snapshot == nil {
			b.Fatal("no snapshot")
		}
	}
}

var (
	benchPoolOnce sync.Once
	benchPool     *Pool
)

// sharedPool holds three warmed universes; pool capacity covers them
// all, so the benchmark measures steady-state routing, not churn.
func sharedPool(b *testing.B) *Pool {
	b.Helper()
	benchPoolOnce.Do(func() {
		cat := NewCatalog()
		for i, cfg := range []policyscope.Config{
			{NumASes: 800, Seed: 42, CollectorPeers: 24, LookingGlassASes: 12},
			{NumASes: 400, Seed: 7, CollectorPeers: 16, LookingGlassASes: 8},
			{NumASes: 200, Seed: 9, CollectorPeers: 12, LookingGlassASes: 6},
		} {
			name := []string{"large", "mid", "small"}[i]
			if err := cat.Register(name, NewSynthetic(cfg)); err != nil {
				b.Fatal(err)
			}
		}
		pool := NewPool(cat, 3)
		for _, name := range cat.Names() {
			sess, err := pool.Session(context.Background(), name)
			if err != nil {
				b.Fatal(err)
			}
			// Warm the lazy gates each query mix touches.
			for _, q := range []string{"table2", "table5", "table10", "decision"} {
				if _, err := sess.Run(context.Background(), q, nil); err != nil {
					b.Fatal(err)
				}
			}
		}
		benchPool = pool
	})
	if benchPool == nil {
		b.Skip("pool construction failed earlier")
	}
	return benchPool
}

// BenchmarkPoolConcurrentMixedQueries rotates parallel queries across
// the three resident datasets — the multi-tenant serving pattern. Each
// op is one pool resolution plus one registry query.
func BenchmarkPoolConcurrentMixedQueries(b *testing.B) {
	pool := sharedPool(b)
	names := pool.Catalog().Names()
	queries := []string{"table2", "table5", "table10", "decision"}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			name := names[i%len(names)]
			q := queries[(i/len(names))%len(queries)]
			i++
			sess, err := pool.Session(context.Background(), name)
			if err != nil {
				b.Error(err)
				return
			}
			if _, err := sess.Run(context.Background(), q, nil); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
}
