package dataset

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	policyscope "github.com/policyscope/policyscope"
	"github.com/policyscope/policyscope/internal/bgp"
	"github.com/policyscope/policyscope/internal/netx"
	"github.com/policyscope/policyscope/internal/routeviews"
	"github.com/policyscope/policyscope/internal/simulate"
	"github.com/policyscope/policyscope/internal/topogen"
)

// cacheFormatVersion is hashed into every cache key, so a codec change
// invalidates old entries instead of misreading them.
const cacheFormatVersion = 1

// Cached wraps a source with a content-addressed on-disk store: entries
// are keyed by a hash of the wrapped source's spec, so the expensive
// part of a synthetic dataset — BGP simulation to convergence — is paid
// once per configuration and cold server/CLI starts load the converged
// tables from disk. The topology itself is not stored: generation is
// deterministic in the configuration and cheap next to simulation, so a
// hit regenerates it and replays the persisted tables.
//
// Cache misses and unreadable/corrupt entries fall through to the
// wrapped source; the store is repopulated best-effort (a write failure
// degrades to cold loads, never to a load failure).
type Cached struct {
	Source Source
	// Dir is the store directory, created on first write.
	Dir string
}

// NewCached wraps src with the store at dir.
func NewCached(src Source, dir string) *Cached { return &Cached{Source: src, Dir: dir} }

// Spec implements Source (the wrapper is transparent).
func (c *Cached) Spec() Spec { return c.Source.Spec() }

// Key returns the content-addressed store key for the wrapped spec.
func (c *Cached) Key() string {
	return Fingerprint(c.Source.Spec())
}

// Fingerprint hashes a spec (plus the cache format version) to its
// store key.
func Fingerprint(sp Spec) string {
	blob, err := json.Marshal(struct {
		Version int  `json:"v"`
		Spec    Spec `json:"spec"`
	}{Version: cacheFormatVersion, Spec: sp})
	if err != nil {
		// Spec is plain data; Marshal cannot fail on it.
		panic(fmt.Sprintf("dataset: marshal spec: %v", err))
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:16])
}

func (c *Cached) path() string { return filepath.Join(c.Dir, c.Key()+".study") }

// Load returns the cached study when the store has a valid entry, and
// otherwise loads from the wrapped source and persists the result.
func (c *Cached) Load(ctx context.Context) (*policyscope.Study, error) {
	if study, err := readCacheFile(ctx, c.path()); err == nil {
		c.overlayExecutionKnobs(study)
		return study, nil
	}
	study, err := c.Source.Load(ctx)
	if err != nil {
		return nil, err
	}
	_ = writeCacheFile(c.path(), study) // best-effort
	return study, nil
}

// overlayExecutionKnobs replaces the execution-only configuration a
// cache entry preserved from its writer with the reading source's:
// Parallelism cannot change the data (it is canonicalized out of the
// cache key for the same reason), so the current process's setting —
// not the writer's — must drive engines built from a hit, and appear
// in serialized documents.
func (c *Cached) overlayExecutionKnobs(study *policyscope.Study) {
	switch src := c.Source.(type) {
	case *Synthetic:
		study.Config.Parallelism = src.Config.Parallelism
	case *MRTFile:
		study.Config.Parallelism = src.Config.Parallelism
	}
}

// cachedStudy is the on-disk payload. Ground-truth studies persist the
// converged per-vantage tables (the topology is regenerated from
// Config); snapshot-only studies persist the MRT bytes.
type cachedStudy struct {
	Config policyscope.Config
	Peers  []bgp.ASN
	// GroundTruth selects the payload below.
	GroundTruth bool
	// Tables / ReachCount / Timestamp: the simulation result of a
	// ground-truth study.
	Tables     []cachedTable
	ReachCount map[netx.Prefix]int
	Timestamp  uint32
	// MRT: the serialized snapshot of a snapshot-only study.
	MRT []byte
}

type cachedTable struct {
	Owner  bgp.ASN
	Routes []cachedRoute
}

type cachedRoute struct {
	From  bgp.ASN
	Route bgp.Route
}

func writeCacheFile(path string, s *policyscope.Study) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	payload := cachedStudy{Config: s.Config, Peers: s.Peers, GroundTruth: s.HasGroundTruth()}
	if payload.GroundTruth {
		payload.Timestamp = s.Snapshot.Timestamp
		payload.ReachCount = s.Result.ReachCount
		owners := make([]bgp.ASN, 0, len(s.Result.Tables))
		for asn := range s.Result.Tables {
			owners = append(owners, asn)
		}
		sort.Slice(owners, func(i, j int) bool { return owners[i] < owners[j] })
		for _, asn := range owners {
			ct := cachedTable{Owner: asn}
			s.Result.Tables[asn].EachCandidate(func(_ netx.Prefix, from bgp.ASN, r *bgp.Route) {
				ct.Routes = append(ct.Routes, cachedRoute{From: from, Route: *r})
			})
			payload.Tables = append(payload.Tables, ct)
		}
	} else {
		var buf bytes.Buffer
		if err := s.Snapshot.WriteMRT(&buf); err != nil {
			return err
		}
		payload.MRT = buf.Bytes()
	}
	var blob bytes.Buffer
	if err := gob.NewEncoder(&blob).Encode(payload); err != nil {
		return err
	}
	// Atomic publish: a concurrent reader sees either no entry or a
	// complete one.
	tmp, err := os.CreateTemp(filepath.Dir(path), ".cache-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(blob.Bytes()); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

func readCacheFile(ctx context.Context, path string) (*policyscope.Study, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var payload cachedStudy
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&payload); err != nil {
		return nil, fmt.Errorf("dataset: corrupt cache entry %s: %w", path, err)
	}
	if !payload.GroundTruth {
		snap, err := routeviews.ReadMRT(bytes.NewReader(payload.MRT))
		if err != nil {
			return nil, fmt.Errorf("dataset: corrupt cache entry %s: %w", path, err)
		}
		return policyscope.NewStudyFromSnapshot(snap, payload.Config)
	}
	// Generation is deterministic in the configuration: regenerate the
	// ground truth, then replay the persisted converged tables instead
	// of re-simulating.
	topo, err := topogen.Generate(payload.Config.TopologyConfig())
	if err != nil {
		return nil, err
	}
	res := &simulate.Result{
		Tables:     make(map[bgp.ASN]*bgp.RIB, len(payload.Tables)),
		ReachCount: payload.ReachCount,
	}
	for _, ct := range payload.Tables {
		rib := bgp.NewRIB(ct.Owner)
		for i := range ct.Routes {
			cr := &ct.Routes[i]
			rib.Upsert(cr.From, &cr.Route)
		}
		res.Tables[ct.Owner] = rib
	}
	snap, err := routeviews.Collect(res, payload.Peers, payload.Timestamp)
	if err != nil {
		return nil, fmt.Errorf("dataset: corrupt cache entry %s: %w", path, err)
	}
	return policyscope.NewStudyFromInputs(policyscope.StudyInputs{
		Config:   payload.Config,
		Topo:     topo,
		Result:   res,
		Peers:    payload.Peers,
		Snapshot: snap,
	})
}
