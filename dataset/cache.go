package dataset

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	policyscope "github.com/policyscope/policyscope"
	"github.com/policyscope/policyscope/internal/asgraph"
	"github.com/policyscope/policyscope/internal/bgp"
	"github.com/policyscope/policyscope/internal/netx"
	"github.com/policyscope/policyscope/internal/routeviews"
	"github.com/policyscope/policyscope/internal/simulate"
	"github.com/policyscope/policyscope/internal/studyfmt"
	"github.com/policyscope/policyscope/internal/topogen"
)

// cacheFormatVersion is hashed into every cache key, so a codec change
// invalidates old entries instead of misreading them. Version 2 is the
// flat studyfmt payload (version 1 was gob); the version byte inside
// the blob catches entries that survive a key collision or a hand-moved
// file, so both layers fall through to regeneration.
const cacheFormatVersion = 2

// Cached wraps a source with a content-addressed on-disk store: entries
// are keyed by a hash of the wrapped source's spec, so the expensive
// part of a synthetic dataset — BGP simulation to convergence — is paid
// once per configuration and cold server/CLI starts load the converged
// tables from disk. The payload is the studyfmt flat binary format:
// converged tables decode in parallel straight into bulk-installed RIBs
// while the topology regenerates concurrently (synthetic topologies are
// deterministic in the configuration and cheap next to simulation;
// CAIDA graphs are embedded in the entry, since no configuration can
// regenerate a measured file).
//
// Cache misses and unreadable/corrupt/stale-version entries fall
// through to the wrapped source; the store is repopulated best-effort
// (a write failure degrades to cold loads, never to a load failure).
type Cached struct {
	Source Source
	// Dir is the store directory, created on first write.
	Dir string
}

// NewCached wraps src with the store at dir.
func NewCached(src Source, dir string) *Cached { return &Cached{Source: src, Dir: dir} }

// Spec implements Source (the wrapper is transparent).
func (c *Cached) Spec() Spec { return c.Source.Spec() }

// Key returns the content-addressed store key for the wrapped spec.
func (c *Cached) Key() string {
	return Fingerprint(c.Source.Spec())
}

// Fingerprint hashes a spec (plus the cache format version) to its
// store key.
func Fingerprint(sp Spec) string {
	blob, err := json.Marshal(struct {
		Version int  `json:"v"`
		Spec    Spec `json:"spec"`
	}{Version: cacheFormatVersion, Spec: sp})
	if err != nil {
		// Spec is plain data; Marshal cannot fail on it.
		panic(fmt.Sprintf("dataset: marshal spec: %v", err))
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:16])
}

func (c *Cached) path() string { return filepath.Join(c.Dir, c.Key()+".study") }

// Load returns the cached study when the store has a valid entry, and
// otherwise loads from the wrapped source and persists the result.
func (c *Cached) Load(ctx context.Context) (*policyscope.Study, error) {
	if study, err := c.readCacheFile(ctx, c.path()); err == nil {
		c.overlayExecutionKnobs(study)
		return study, nil
	} else if ctx.Err() != nil {
		return nil, err
	}
	study, err := c.Source.Load(ctx)
	if err != nil {
		return nil, err
	}
	_ = c.writeCacheFile(c.path(), study) // best-effort
	return study, nil
}

// overlayExecutionKnobs replaces the execution-only configuration a
// cache entry preserved from its writer with the reading source's:
// Parallelism cannot change the data (it is canonicalized out of the
// cache key for the same reason), so the current process's setting —
// not the writer's — must drive engines built from a hit, and appear
// in serialized documents.
func (c *Cached) overlayExecutionKnobs(study *policyscope.Study) {
	switch src := c.Source.(type) {
	case *Synthetic:
		study.Config.Parallelism = src.Config.Parallelism
	case *MRTFile:
		study.Config.Parallelism = src.Config.Parallelism
	case *CAIDAFile:
		study.Config.Parallelism = src.Parallelism
	}
}

// writeCacheFile encodes s and atomically publishes it at path: a
// concurrent reader sees either no entry or a complete one.
func (c *Cached) writeCacheFile(path string, s *policyscope.Study) error {
	blob, err := c.encodeStudy(s)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".cache-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// encodeStudy builds the flat payload. Ground-truth studies persist the
// converged vantage tables plus the collector table (the topology is
// regenerated from Config, or from the embedded CAIDA graph for CAIDA
// sources); snapshot-only studies persist the MRT bytes.
func (c *Cached) encodeStudy(s *policyscope.Study) ([]byte, error) {
	cfgJSON, err := json.Marshal(s.Config)
	if err != nil {
		return nil, err
	}
	fs := &studyfmt.Study{ConfigJSON: cfgJSON, GroundTruth: s.HasGroundTruth()}
	if !fs.GroundTruth {
		var buf bytes.Buffer
		if err := s.Snapshot.WriteMRT(&buf); err != nil {
			return nil, err
		}
		fs.MRT = buf.Bytes()
		return studyfmt.Encode(fs)
	}
	if _, ok := c.Source.(*CAIDAFile); ok {
		var buf bytes.Buffer
		if _, err := s.Topo.Graph.WriteTo(&buf); err != nil {
			return nil, err
		}
		fs.TopoCAIDA = buf.Bytes()
	}
	fs.Timestamp = s.Snapshot.Timestamp
	fs.Peers = s.Peers
	fs.Reach = make([]studyfmt.ReachEntry, 0, len(s.Result.ReachCount))
	for p, n := range s.Result.ReachCount {
		fs.Reach = append(fs.Reach, studyfmt.ReachEntry{Prefix: p, Count: n})
	}
	sort.Slice(fs.Reach, func(i, j int) bool {
		return fs.Reach[i].Prefix.Compare(fs.Reach[j].Prefix) < 0
	})
	owners := make([]bgp.ASN, 0, len(s.Result.Tables))
	for asn := range s.Result.Tables {
		owners = append(owners, asn)
	}
	sort.Slice(owners, func(i, j int) bool { return owners[i] < owners[j] })
	fs.Tables = make([]studyfmt.Table, 0, len(owners)+1)
	for _, asn := range owners {
		fs.Tables = append(fs.Tables, studyfmt.Table{Owner: asn, RIB: s.Result.Tables[asn]})
	}
	fs.Tables = append(fs.Tables, studyfmt.Table{
		Owner: s.Snapshot.Table.Owner, Collector: true, RIB: s.Snapshot.Table,
	})
	return studyfmt.Encode(fs)
}

// readCacheFile loads a cache entry. Any decode failure — truncation,
// corruption, a different format version — is returned as an error and
// treated by Load as a miss. For ground-truth entries the topology
// regenerates on its own goroutine while the tables decode in parallel,
// so the two dominant costs of a hit overlap.
func (c *Cached) readCacheFile(ctx context.Context, path string) (*policyscope.Study, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	h, err := studyfmt.DecodeHeader(blob)
	if err != nil {
		return nil, fmt.Errorf("dataset: cache entry %s: %w", path, err)
	}
	var cfg policyscope.Config
	if err := json.Unmarshal(h.ConfigJSON, &cfg); err != nil {
		return nil, fmt.Errorf("dataset: cache entry %s: bad config: %w", path, err)
	}

	if !h.GroundTruth {
		fs, err := h.DecodeBody(studyfmt.DecodeOptions{Parallelism: cfg.Parallelism})
		if err != nil {
			return nil, fmt.Errorf("dataset: cache entry %s: %w", path, err)
		}
		snap, err := routeviews.ReadMRT(bytes.NewReader(fs.MRT))
		if err != nil {
			return nil, fmt.Errorf("dataset: cache entry %s: %w", path, err)
		}
		return policyscope.NewStudyFromSnapshot(snap, cfg)
	}

	type topoResult struct {
		topo *topogen.Topology
		err  error
	}
	topoCh := make(chan topoResult, 1)
	go func() {
		var tr topoResult
		if h.TopoCAIDA {
			tr.topo, tr.err = c.topologyFromCAIDA(h.Topo)
		} else {
			tr.topo, tr.err = topogen.Generate(cfg.TopologyConfig())
		}
		topoCh <- tr
	}()

	intern := bgp.NewIntern()
	fs, err := h.DecodeBody(studyfmt.DecodeOptions{Parallelism: cfg.Parallelism, Intern: intern})
	if err != nil {
		return nil, fmt.Errorf("dataset: cache entry %s: %w", path, err)
	}
	res := &simulate.Result{
		Tables:     make(map[bgp.ASN]*bgp.RIB, len(fs.Tables)),
		ReachCount: make(map[netx.Prefix]int, len(fs.Reach)),
	}
	for _, re := range fs.Reach {
		res.ReachCount[re.Prefix] = re.Count
	}
	var collector *bgp.RIB
	for _, t := range fs.Tables {
		if t.Collector {
			if collector != nil {
				return nil, fmt.Errorf("dataset: cache entry %s: multiple collector tables", path)
			}
			collector = t.RIB
		} else {
			res.Tables[t.Owner] = t.RIB
		}
	}
	if collector == nil {
		return nil, fmt.Errorf("dataset: cache entry %s: no collector table", path)
	}
	tr := <-topoCh
	if tr.err != nil {
		return nil, fmt.Errorf("dataset: cache entry %s: %w", path, tr.err)
	}
	snap := &routeviews.Snapshot{Timestamp: fs.Timestamp, Peers: fs.Peers, Table: collector}
	return policyscope.NewStudyFromInputs(policyscope.StudyInputs{
		Config:   cfg,
		Topo:     tr.topo,
		Result:   res,
		Peers:    fs.Peers,
		Snapshot: snap,
		Intern:   intern,
	})
}

// topologyFromCAIDA rebuilds a CAIDA source's topology from the graph
// bytes embedded in a cache entry, using the live source's spec (the
// cache key guarantees it matches the writer's).
func (c *Cached) topologyFromCAIDA(graphBytes []byte) (*topogen.Topology, error) {
	cf, ok := c.Source.(*CAIDAFile)
	if !ok {
		return nil, fmt.Errorf("dataset: entry embeds a CAIDA topology but the source is %T", c.Source)
	}
	g, err := asgraph.Read(bytes.NewReader(graphBytes))
	if err != nil {
		return nil, err
	}
	return CAIDATopology(g, *cf.Spec().CAIDA)
}
