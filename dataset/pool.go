package dataset

import (
	"container/list"
	"context"
	"fmt"
	"sync"
	"time"

	policyscope "github.com/policyscope/policyscope"
	"github.com/policyscope/policyscope/obs"
)

// DefaultMaxSessions bounds the pool when the caller passes no limit: a
// handful of warmed universes is the memory envelope of one serving
// process.
const DefaultMaxSessions = 4

// DefaultFailureCooldown is how long the pool refuses to rebuild a
// dataset after its build failed. Without it a broken manifest entry
// hot-loops the builder: every request against the name pays a fresh
// (possibly expensive) failing Load. Requests during the cooldown get a
// typed *BuildCooldownError carrying the remaining wait, which servers
// surface as 503 + Retry-After.
const DefaultFailureCooldown = 5 * time.Second

// BuildCooldownError reports a dataset whose last build failed recently
// enough that the pool is refusing to retry yet.
type BuildCooldownError struct {
	Name string
	// RetryAfter is how long until the pool will attempt the build again.
	RetryAfter time.Duration
	// LastError is the failure that started the cooldown.
	LastError string
}

func (e *BuildCooldownError) Error() string {
	return fmt.Sprintf("dataset: %q build failing, cooling down %s: %s",
		e.Name, e.RetryAfter.Round(time.Millisecond), e.LastError)
}

// UnknownDatasetError reports a name the catalog does not know. Servers
// map it to 404 before doing any work.
type UnknownDatasetError struct{ Name string }

func (e *UnknownDatasetError) Error() string {
	return fmt.Sprintf("dataset: unknown dataset %q", e.Name)
}

// Pool is a bounded LRU of warmed Sessions keyed by dataset name.
// Builds are deduplicated singleflight-style: N concurrent first
// queries against one dataset trigger one Load, and the other N-1 block
// until it resolves. Failed builds are not cached as entries, but the
// failure starts a cooldown (DefaultFailureCooldown) during which
// requests for that dataset get a *BuildCooldownError instead of a
// fresh build attempt. Evicted sessions are simply released; in-flight
// queries against them finish on their own references.
type Pool struct {
	cat      *Catalog
	max      int
	cooldown time.Duration

	mu      sync.Mutex
	entries map[string]*poolEntry
	lru     *list.List // front = most recently used; values are *poolEntry

	hits, misses, evictions uint64

	// lastErr remembers the most recent build failure per dataset name.
	// Failed builds are not cached as entries, so without this a
	// flapping source is indistinguishable from a cold one in Stats —
	// healthz needs the difference. A successful build clears the mark.
	lastErr   map[string]string
	lastErrAt map[string]time.Time
}

type poolEntry struct {
	name string
	elem *list.Element
	// ready closes when the build resolves; sess/err are immutable
	// afterwards.
	ready chan struct{}
	sess  *policyscope.Session
	err   error

	created  time.Time     // when the build started
	buildDur time.Duration // set when ready closes with success
}

// NewPool returns a pool over cat retaining at most maxSessions warmed
// sessions (<= 0 takes DefaultMaxSessions).
func NewPool(cat *Catalog, maxSessions int) *Pool {
	if maxSessions <= 0 {
		maxSessions = DefaultMaxSessions
	}
	return &Pool{
		cat:       cat,
		max:       maxSessions,
		cooldown:  DefaultFailureCooldown,
		entries:   make(map[string]*poolEntry),
		lru:       list.New(),
		lastErr:   make(map[string]string),
		lastErrAt: make(map[string]time.Time),
	}
}

// Catalog returns the pool's catalog.
func (p *Pool) Catalog() *Catalog { return p.cat }

// SetFailureCooldown overrides how long a failed build blocks retries
// for its dataset (0 disables the cooldown entirely). Call before
// serving traffic; it is not synchronized against concurrent Sessions.
func (p *Pool) SetFailureCooldown(d time.Duration) { p.cooldown = d }

// Session returns the warmed session for the named dataset, building it
// on first use ("" resolves to the catalog default). An unknown name
// returns *UnknownDatasetError before any work. ctx bounds both a
// build this call performs and the wait for a build another call is
// performing.
func (p *Pool) Session(ctx context.Context, name string) (*policyscope.Session, error) {
	if name == "" {
		name = p.cat.Default()
	}
	src, ok := p.cat.Get(name)
	if !ok {
		return nil, &UnknownDatasetError{Name: name}
	}

	p.mu.Lock()
	if e, ok := p.entries[name]; ok {
		p.lru.MoveToFront(e.elem)
		p.hits++
		p.mu.Unlock()
		mPoolHits.Inc()
		var wait time.Time
		if obs.Enabled() {
			wait = time.Now()
		}
		select {
		case <-e.ready:
			if !wait.IsZero() {
				mPoolWaitSeconds.ObserveSince(wait)
			}
			return e.sess, e.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	// A miss against a dataset whose last build just failed is refused
	// until the cooldown lapses — the alternative is every request
	// hot-looping an expensive failing Load. The typed error carries the
	// remaining wait so servers can answer 503 + Retry-After.
	if p.cooldown > 0 {
		if at, ok := p.lastErrAt[name]; ok {
			if rem := p.cooldown - time.Since(at); rem > 0 {
				err := &BuildCooldownError{Name: name, RetryAfter: rem, LastError: p.lastErr[name]}
				p.mu.Unlock()
				mPoolCooldownRejects.Inc()
				return nil, err
			}
		}
	}
	e := &poolEntry{name: name, ready: make(chan struct{}), created: time.Now()}
	e.elem = p.lru.PushFront(e)
	p.entries[name] = e
	p.misses++
	p.evictLocked()
	p.mu.Unlock()
	mPoolMisses.Inc()

	// Build outside the lock so other datasets keep resolving, and on a
	// context detached from the triggering request: the build serves
	// every waiter (and the pool afterwards), so one client's
	// disconnect must not poison it with that client's cancellation.
	go func() {
		study, err := src.Load(context.WithoutCancel(ctx))
		if err != nil {
			e.err = err
			e.buildDur = time.Since(e.created)
			mPoolBuildError.Observe(e.buildDur.Seconds())
			close(e.ready)
			// Do not cache the failure as an entry; remember it so Stats
			// can tell a failing source from a cold one, and so the
			// cooldown check can refuse immediate retries.
			p.mu.Lock()
			p.lastErr[name] = err.Error()
			p.lastErrAt[name] = time.Now()
			if p.entries[name] == e {
				delete(p.entries, name)
				p.lru.Remove(e.elem)
			}
			p.mu.Unlock()
			return
		}
		e.sess = policyscope.NewSessionFromStudy(study)
		e.buildDur = time.Since(e.created)
		mPoolBuildOK.Observe(e.buildDur.Seconds())
		close(e.ready)
		// The entry is now evictable; trim any excess that accumulated
		// while builds were in flight.
		p.mu.Lock()
		delete(p.lastErr, name)
		delete(p.lastErrAt, name)
		p.evictLocked()
		p.mu.Unlock()
	}()
	select {
	case <-e.ready:
		return e.sess, e.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// evictLocked trims the LRU tail beyond the size bound, skipping
// entries whose build has not resolved: evicting one would defeat the
// singleflight dedup exactly under the cold-start stampede the pool
// absorbs (the next request would start a duplicate build of a study
// that is already being built). The pool may therefore briefly exceed
// its bound by the number of concurrent first builds; each build trims
// again when it resolves.
func (p *Pool) evictLocked() {
	over := p.lru.Len() - p.max
	for el := p.lru.Back(); el != nil && over > 0; {
		prev := el.Prev()
		e := el.Value.(*poolEntry)
		select {
		case <-e.ready:
			p.lru.Remove(el)
			delete(p.entries, e.name)
			p.evictions++
			mPoolEvictions.Inc()
			over--
		default:
			// build in flight; keep
		}
		el = prev
	}
}

// Warm builds and fully warms the default dataset's session (study plus
// what-if engine where the dataset has ground truth). Servers call it
// before accepting traffic; the non-default datasets stay cold until
// queried.
func (p *Pool) Warm(ctx context.Context) error {
	name := p.cat.Default()
	if name == "" {
		return fmt.Errorf("dataset: pool has no default dataset")
	}
	sess, err := p.Session(ctx, name)
	if err != nil {
		return err
	}
	return sess.Warm()
}

// Stats is the pool's observable state (healthz material).
type Stats struct {
	// Datasets is how many datasets the catalog knows.
	Datasets int `json:"datasets"`
	// Default is the catalog's default dataset name.
	Default string `json:"default"`
	// Resident counts sessions currently retained (including builds in
	// flight); ResidentNames lists them, most recently used first.
	Resident      int      `json:"resident"`
	ResidentNames []string `json:"resident_names,omitempty"`
	// Capacity is the LRU bound.
	Capacity int `json:"capacity"`
	// Hits / Misses / Evictions count Session resolutions against the
	// pool since start.
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	// Entries describes each resident entry, most recently used first
	// (same order as ResidentNames).
	Entries []EntryStat `json:"entries,omitempty"`
	// LastErrors maps dataset name → most recent build failure, for
	// datasets whose last build failed (cleared by a later success).
	// Failed builds leave no resident entry, so this is the only trace
	// that distinguishes a failing source from a never-queried one.
	LastErrors map[string]EntryError `json:"last_errors,omitempty"`
}

// EntryStat describes one resident pool entry.
type EntryStat struct {
	Name string `json:"name"`
	// Ready is false while the build is still in flight.
	Ready bool `json:"ready"`
	// AgeSeconds is the time since the build started.
	AgeSeconds float64 `json:"age_seconds"`
	// BuildSeconds is how long the build took (0 while in flight).
	BuildSeconds float64 `json:"build_seconds,omitempty"`
}

// EntryError is a remembered build failure.
type EntryError struct {
	Error string `json:"error"`
	// AgeSeconds is the time since the failure.
	AgeSeconds float64 `json:"age_seconds"`
	// RetryAfterSeconds is how long until the pool will retry the build
	// (0 once the failure cooldown has lapsed or is disabled).
	RetryAfterSeconds float64 `json:"retry_after_seconds,omitempty"`
}

// Stats snapshots the pool counters.
func (p *Pool) Stats() Stats {
	now := time.Now()
	p.mu.Lock()
	defer p.mu.Unlock()
	st := Stats{
		Datasets:  len(p.cat.Names()),
		Default:   p.cat.Default(),
		Resident:  p.lru.Len(),
		Capacity:  p.max,
		Hits:      p.hits,
		Misses:    p.misses,
		Evictions: p.evictions,
	}
	for el := p.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*poolEntry)
		st.ResidentNames = append(st.ResidentNames, e.name)
		es := EntryStat{Name: e.name, AgeSeconds: now.Sub(e.created).Seconds()}
		select {
		case <-e.ready:
			// The ready close orders e.buildDur's write before this
			// read, so touching it without further locking is race-free.
			es.Ready = true
			es.BuildSeconds = e.buildDur.Seconds()
		default:
		}
		st.Entries = append(st.Entries, es)
	}
	if len(p.lastErr) > 0 {
		st.LastErrors = make(map[string]EntryError, len(p.lastErr))
		for name, msg := range p.lastErr {
			ee := EntryError{Error: msg, AgeSeconds: now.Sub(p.lastErrAt[name]).Seconds()}
			if rem := p.cooldown - now.Sub(p.lastErrAt[name]); p.cooldown > 0 && rem > 0 {
				ee.RetryAfterSeconds = rem.Seconds()
			}
			st.LastErrors[name] = ee
		}
	}
	return st
}

// Datasets returns the catalog rows annotated with pool residency.
func (p *Pool) Datasets() []Info {
	infos := p.cat.Infos()
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range infos {
		_, resident := p.entries[infos[i].Name]
		infos[i].Resident = resident
	}
	return infos
}
