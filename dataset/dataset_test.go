package dataset

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	policyscope "github.com/policyscope/policyscope"
)

// tinyConfig returns a fast-to-build study configuration; vary seed to
// get distinct universes.
func tinyConfig(seed int64) policyscope.Config {
	return policyscope.Config{NumASes: 150, Seed: seed, CollectorPeers: 10, LookingGlassASes: 6}
}

func writeMRT(t *testing.T, study *policyscope.Study) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "snap.mrt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := study.Snapshot.WriteMRT(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSyntheticSource(t *testing.T) {
	src := NewSynthetic(tinyConfig(3))
	if sp := src.Spec(); sp.Kind != KindSynthetic || sp.Synthetic == nil || sp.Synthetic.NumASes != 150 {
		t.Fatalf("spec: %+v", sp)
	}
	study, err := src.Load(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !study.HasGroundTruth() || len(study.Peers) == 0 {
		t.Fatal("synthetic study incomplete")
	}
}

// TestMRTRoundTripExperiments is the import contract: a synthetic
// study's snapshot written as MRT and imported back as a snapshot-only
// dataset reproduces byte-identical results for every
// ground-truth-free registry experiment, and answers every
// ground-truth-dependent one with ErrNeedsGroundTruth rather than a
// panic. The originating study analyzes over inferred relationships —
// the paper's actual setting, and the only relationship source an
// import can have.
func TestMRTRoundTripExperiments(t *testing.T) {
	cfg := tinyConfig(11)
	cfg.UseInferredRelationships = true
	study, err := policyscope.NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	truth := policyscope.NewSessionFromStudy(study)

	src := NewMRTFile(writeMRT(t, study))
	imported, err := src.Load(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if imported.HasGroundTruth() {
		t.Fatal("MRT import claims ground truth")
	}
	snapSess := policyscope.NewSessionFromStudy(imported)

	ctx := context.Background()
	ranFree := 0
	for _, info := range truth.Experiments() {
		if info.NeedsGroundTruth {
			_, err := snapSess.Run(ctx, info.Name, nil)
			if !errors.Is(err, policyscope.ErrNeedsGroundTruth) {
				t.Errorf("%s: want ErrNeedsGroundTruth, got %v", info.Name, err)
			}
			continue
		}
		ranFree++
		want, err := truth.Run(ctx, info.Name, nil)
		if err != nil {
			t.Fatalf("%s on synthetic: %v", info.Name, err)
		}
		got, err := snapSess.Run(ctx, info.Name, nil)
		if err != nil {
			t.Fatalf("%s on import: %v", info.Name, err)
		}
		wantJSON, err := json.Marshal(want)
		if err != nil {
			t.Fatal(err)
		}
		gotJSON, err := json.Marshal(got)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wantJSON, gotJSON) {
			t.Errorf("%s: import diverged from origin\n want %s\n  got %s", info.Name, wantJSON, gotJSON)
		}
	}
	if ranFree < 5 {
		t.Fatalf("only %d ground-truth-free experiments ran; the import surface shrank", ranFree)
	}

	// The full battery over the import filters to the snapshot-capable
	// experiments instead of aborting at the first ground-truth one.
	doc, err := snapSess.RunAllJSON(ctx, policyscope.RunAllOptions{})
	if err != nil {
		t.Fatalf("RunAllJSON on import: %v", err)
	}
	if len(doc.Experiments) != ranFree {
		var names []string
		for _, e := range doc.Experiments {
			names = append(names, e.Name)
		}
		t.Fatalf("RunAll on import ran %v, want the %d snapshot-capable experiments", names, ranFree)
	}
}

// failingSource stands in for an expensive source that must not be hit.
type failingSource struct{ spec Spec }

func (f *failingSource) Spec() Spec { return f.spec }
func (f *failingSource) Load(context.Context) (*policyscope.Study, error) {
	return nil, fmt.Errorf("cold load reached")
}

func TestCachedSourceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cfg := tinyConfig(7)
	cold := NewCached(NewSynthetic(cfg), dir)
	study, err := cold.Load(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, cold.Key()+".study")); err != nil {
		t.Fatalf("cache entry not written: %v", err)
	}

	// A second Cached over the same spec but a poisoned inner source
	// must resolve purely from disk.
	hit := NewCached(&failingSource{spec: cold.Spec()}, dir)
	cached, err := hit.Load(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !cached.HasGroundTruth() {
		t.Fatal("cache hit lost ground truth")
	}

	// The reconstructed study answers a ground-truth-heavy slice of the
	// catalog byte-identically: overview (topology + inference +
	// SA truth), table2 (full vantage tables), case3 (path index),
	// decision (decision-step provenance), table5 (snapshot), whatif
	// (engine over the regenerated topology).
	a := policyscope.NewSessionFromStudy(study)
	b := policyscope.NewSessionFromStudy(cached)
	ctx := context.Background()
	for _, name := range []string{"overview", "table2", "case3", "decision", "table5", "whatif"} {
		want, err := a.Run(ctx, name, nil)
		if err != nil {
			t.Fatalf("%s cold: %v", name, err)
		}
		got, err := b.Run(ctx, name, nil)
		if err != nil {
			t.Fatalf("%s cached: %v", name, err)
		}
		wantJSON, _ := json.Marshal(want)
		gotJSON, _ := json.Marshal(got)
		if !bytes.Equal(wantJSON, gotJSON) {
			t.Errorf("%s: cache hit diverged\n want %s\n  got %s", name, wantJSON, gotJSON)
		}
	}
}

// TestCachedHitOverlaysParallelism: a hit must carry the *reading*
// process's execution knob, not the writer's — Parallelism is
// canonicalized out of the key, so entries are shared across -j values.
func TestCachedHitOverlaysParallelism(t *testing.T) {
	dir := t.TempDir()
	cfg := tinyConfig(19)
	if _, err := NewCached(NewSynthetic(cfg), dir).Load(context.Background()); err != nil {
		t.Fatal(err)
	}
	cfg8 := cfg
	cfg8.Parallelism = 8
	reader := NewCached(NewSynthetic(cfg8), dir)
	entry := filepath.Join(dir, reader.Key()+".study")
	before, err := os.Stat(entry)
	if err != nil {
		t.Fatalf("reader hashes to a different key: %v", err)
	}
	study, err := reader.Load(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if study.Config.Parallelism != 8 {
		t.Fatalf("hit kept the writer's Parallelism %d", study.Config.Parallelism)
	}
	after, err := os.Stat(entry)
	if err != nil {
		t.Fatal(err)
	}
	if !after.ModTime().Equal(before.ModTime()) {
		t.Fatal("entry rewritten: the load was a miss, not a hit")
	}
}

func TestCachedSnapshotOnlySource(t *testing.T) {
	cfg := tinyConfig(13)
	cfg.UseInferredRelationships = true
	study, err := policyscope.NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	cold := NewCached(NewMRTFile(writeMRT(t, study)), dir)
	first, err := cold.Load(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	hit := NewCached(&failingSource{spec: cold.Spec()}, dir)
	second, err := hit.Load(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if second.HasGroundTruth() {
		t.Fatal("snapshot-only cache entry grew ground truth")
	}
	aRes, _ := policyscope.NewSessionFromStudy(first).Run(context.Background(), "table5", nil)
	bRes, _ := policyscope.NewSessionFromStudy(second).Run(context.Background(), "table5", nil)
	aJSON, _ := json.Marshal(aRes)
	bJSON, _ := json.Marshal(bRes)
	if !bytes.Equal(aJSON, bJSON) {
		t.Fatal("snapshot cache hit diverged")
	}
}

func TestCachedCorruptEntryFallsThrough(t *testing.T) {
	dir := t.TempDir()
	c := NewCached(NewSynthetic(tinyConfig(5)), dir)
	path := filepath.Join(dir, c.Key()+".study")
	if err := os.WriteFile(path, []byte("not a cache entry"), 0o644); err != nil {
		t.Fatal(err)
	}
	study, err := c.Load(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !study.HasGroundTruth() {
		t.Fatal("fallthrough load incomplete")
	}
	// The corrupt entry was repaired.
	hit := NewCached(&failingSource{spec: c.Spec()}, dir)
	if _, err := hit.Load(context.Background()); err != nil {
		t.Fatalf("repaired entry unreadable: %v", err)
	}
}

func TestCatalogManifest(t *testing.T) {
	dir := t.TempDir()
	study, err := policyscope.NewStudy(tinyConfig(17))
	if err != nil {
		t.Fatal(err)
	}
	mrtPath := filepath.Join(dir, "import.mrt")
	f, err := os.Create(mrtPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := study.Snapshot.WriteMRT(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	manifest := `{
  "default": "stress",
  "datasets": [
    {"name": "stress", "synthetic": {"ases": 5000, "seed": 7, "peers": 56}},
    {"name": "import", "mrt": "import.mrt"}
  ]
}`
	mPath := filepath.Join(dir, "datasets.json")
	if err := os.WriteFile(mPath, []byte(manifest), 0o644); err != nil {
		t.Fatal(err)
	}

	cat := Builtin()
	if err := cat.LoadManifestFile(mPath); err != nil {
		t.Fatal(err)
	}
	if cat.Default() != "stress" {
		t.Fatalf("default = %q", cat.Default())
	}
	names := cat.Names()
	if len(names) != 5 { // paper, small, large + 2 manifest entries
		t.Fatalf("names = %v", names)
	}
	src, ok := cat.Get("import")
	if !ok {
		t.Fatal("manifest MRT entry missing")
	}
	// Relative MRT paths resolve against the manifest's directory.
	if _, err := src.Load(context.Background()); err != nil {
		t.Fatalf("manifest MRT load: %v", err)
	}
	if sp := src.Spec(); sp.Kind != KindMRT || sp.MRT != mrtPath {
		t.Fatalf("spec = %+v", sp)
	}

	// Rejections: duplicates, both kinds, neither kind.
	for _, bad := range []string{
		`{"datasets": [{"name": "paper", "synthetic": {"ases": 10, "seed": 1}}]}`,
		`{"datasets": [{"name": "x", "synthetic": {"ases": 10, "seed": 1}, "mrt": "y"}]}`,
		`{"datasets": [{"name": "x"}]}`,
		`{"datasets": []}`,
	} {
		c := Builtin()
		if err := c.LoadManifest(bytes.NewReader([]byte(bad)), dir); err == nil {
			t.Errorf("manifest accepted: %s", bad)
		}
	}
}

// TestSpecCanonicalizesParallelism: the worker count cannot change the
// generated data, so it must not split the cache key.
func TestSpecCanonicalizesParallelism(t *testing.T) {
	a := tinyConfig(3)
	b := tinyConfig(3)
	b.Parallelism = 8
	if Fingerprint(NewSynthetic(a).Spec()) != Fingerprint(NewSynthetic(b).Spec()) {
		t.Fatal("Parallelism split the cache key")
	}
	c := tinyConfig(4)
	if Fingerprint(NewSynthetic(a).Spec()) == Fingerprint(NewSynthetic(c).Spec()) {
		t.Fatal("distinct seeds share a cache key")
	}
}

// TestEnableCacheSkipsMRT: the cache key for an MRT source is the file
// path, so wrapping it would serve stale data after the file changes
// (and a hit re-parses the bytes anyway — no win).
func TestEnableCacheSkipsMRT(t *testing.T) {
	cat := NewCatalog()
	if err := cat.Register("syn", NewSynthetic(tinyConfig(3))); err != nil {
		t.Fatal(err)
	}
	if err := cat.Register("mrt", NewMRTFile("x.mrt")); err != nil {
		t.Fatal(err)
	}
	cat.EnableCache(t.TempDir())
	if src, _ := cat.Get("syn"); !isCached(src) {
		t.Error("synthetic source not wrapped")
	}
	if src, _ := cat.Get("mrt"); isCached(src) {
		t.Error("MRT source wrapped in the path-keyed cache")
	}
}

func isCached(src Source) bool { _, ok := src.(*Cached); return ok }

// TestBuildCatalogManifestOwnsDefault: a manifest entry named
// "default" wins over the flag-derived configuration instead of
// failing startup with a duplicate-name error.
func TestBuildCatalogManifestOwnsDefault(t *testing.T) {
	dir := t.TempDir()
	mPath := filepath.Join(dir, "datasets.json")
	manifest := `{"datasets": [{"name": "default", "synthetic": {"ases": 77, "seed": 1}}]}`
	if err := os.WriteFile(mPath, []byte(manifest), 0o644); err != nil {
		t.Fatal(err)
	}
	cat, err := BuildCatalog(tinyConfig(3), "", mPath, "")
	if err != nil {
		t.Fatal(err)
	}
	src, ok := cat.Get("default")
	if !ok {
		t.Fatal("no default dataset")
	}
	if sp := src.Spec(); sp.Synthetic == nil || sp.Synthetic.NumASes != 77 {
		t.Fatalf("flag config shadowed the manifest's default: %+v", sp)
	}

	// A manifest default that names the built-in default ("paper") is
	// still an explicit choice: the flag-derived config must not
	// override it.
	keepPaper := filepath.Join(dir, "keep-paper.json")
	if err := os.WriteFile(keepPaper,
		[]byte(`{"default": "paper", "datasets": [{"name": "x", "synthetic": {"ases": 9, "seed": 1}}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	cat2, err := BuildCatalog(tinyConfig(3), "", keepPaper, "")
	if err != nil {
		t.Fatal(err)
	}
	if cat2.Default() != "paper" {
		t.Fatalf("manifest default \"paper\" overridden to %q", cat2.Default())
	}

	// A manifest clash with a preset stays an error, but a readable one.
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"datasets": [{"name": "paper", "synthetic": {"ases": 9, "seed": 1}}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := BuildCatalog(tinyConfig(3), "", bad, ""); err == nil || !strings.Contains(err.Error(), "manifest entry 0 (paper)") {
		t.Fatalf("preset clash error unhelpful: %v", err)
	}
}

// TestPoolBuildSurvivesCallerCancel: the waiter whose context dies gets
// its own cancellation error, while the build — which serves everyone —
// completes and lands in the pool for the next caller.
func TestPoolBuildSurvivesCallerCancel(t *testing.T) {
	cat := NewCatalog()
	src := &countingSource{Synthetic: Synthetic{Config: tinyConfig(41)}}
	if err := cat.Register("only", src); err != nil {
		t.Fatal(err)
	}
	pool := NewPool(cat, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := pool.Session(ctx, "only"); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled caller got %v", err)
	}
	// The detached build finishes and is reused: no second Load.
	sess, err := pool.Session(context.Background(), "only")
	if err != nil {
		t.Fatal(err)
	}
	if sess == nil || src.loads.Load() != 1 {
		t.Fatalf("loads = %d after canceled first caller", src.loads.Load())
	}
}

// countingSource counts Load calls through to a synthetic source.
type countingSource struct {
	Synthetic
	loads atomic.Int64
}

func (c *countingSource) Load(ctx context.Context) (*policyscope.Study, error) {
	c.loads.Add(1)
	return c.Synthetic.Load(ctx)
}

// gatedSource blocks Load until released, modeling a slow build.
type gatedSource struct {
	countingSource
	release chan struct{}
}

func (g *gatedSource) Load(ctx context.Context) (*policyscope.Study, error) {
	<-g.release
	return g.countingSource.Load(ctx)
}

// TestLoadTopology: synthetic (and cached-synthetic) sources yield the
// topology without simulating; snapshot-only sources are rejected with
// the typed sentinel. The peer set matches a full Load of the same
// source.
func TestLoadTopology(t *testing.T) {
	cfg := tinyConfig(29)
	src := NewSynthetic(cfg)
	topo, peers, err := LoadTopology(context.Background(), NewCached(src, t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	study, err := src.Load(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(topo.Order) != len(study.Topo.Order) || fmt.Sprint(peers) != fmt.Sprint(study.Peers) {
		t.Fatalf("LoadTopology diverged from Load: %d ASes, peers %v vs %v",
			len(topo.Order), peers, study.Peers)
	}

	if _, _, err := LoadTopology(context.Background(), NewMRTFile(writeMRT(t, study))); !errors.Is(err, policyscope.ErrNeedsGroundTruth) {
		t.Fatalf("snapshot-only source: want ErrNeedsGroundTruth, got %v", err)
	}
}

// TestPoolKeepsInFlightBuilds: trimming the LRU must never evict an
// entry whose build is still running — that would defeat singleflight
// under exactly the cold-start stampede the pool absorbs.
func TestPoolKeepsInFlightBuilds(t *testing.T) {
	cat := NewCatalog()
	slow := &gatedSource{release: make(chan struct{})}
	slow.Config = tinyConfig(43)
	if err := cat.Register("slow", slow); err != nil {
		t.Fatal(err)
	}
	fast := &countingSource{Synthetic: Synthetic{Config: tinyConfig(44)}}
	if err := cat.Register("fast", fast); err != nil {
		t.Fatal(err)
	}
	pool := NewPool(cat, 1)

	first := make(chan error, 1)
	go func() {
		_, err := pool.Session(context.Background(), "slow")
		first <- err
	}()
	// "fast" lands while "slow" is mid-build; capacity 1 must not evict
	// the building entry (that would strand its waiters' singleflight).
	if _, err := pool.Session(context.Background(), "fast"); err != nil {
		t.Fatal(err)
	}
	// A second request for "slow" must join the in-flight build, not
	// start a duplicate one against a freshly inserted entry.
	second := make(chan error, 1)
	go func() {
		_, err := pool.Session(context.Background(), "slow")
		second <- err
	}()
	close(slow.release)
	if err := <-first; err != nil {
		t.Fatal(err)
	}
	if err := <-second; err != nil {
		t.Fatal(err)
	}
	if n := slow.loads.Load(); n != 1 {
		t.Fatalf("slow dataset built %d times; the in-flight entry was evicted", n)
	}
	// Once every build resolves, the pool settles back to capacity.
	st := pool.Stats()
	if st.Resident > 1 {
		t.Fatalf("pool settled above capacity: %+v", st)
	}
}

// TestPoolSingleflight proves N concurrent first queries against one
// dataset trigger exactly one build.
func TestPoolSingleflight(t *testing.T) {
	cat := NewCatalog()
	src := &countingSource{Synthetic: Synthetic{Config: tinyConfig(23)}}
	if err := cat.Register("only", src); err != nil {
		t.Fatal(err)
	}
	pool := NewPool(cat, 2)
	var wg sync.WaitGroup
	sessions := make([]*policyscope.Session, 10)
	for i := range sessions {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sess, err := pool.Session(context.Background(), "only")
			if err != nil {
				t.Error(err)
				return
			}
			sessions[i] = sess
		}(i)
	}
	wg.Wait()
	if n := src.loads.Load(); n != 1 {
		t.Fatalf("source loaded %d times", n)
	}
	for _, sess := range sessions[1:] {
		if sess != sessions[0] {
			t.Fatal("concurrent callers got different sessions")
		}
	}
}

func TestPoolUnknownDataset(t *testing.T) {
	pool := NewPool(Builtin(), 1)
	_, err := pool.Session(context.Background(), "nope")
	var unknown *UnknownDatasetError
	if !errors.As(err, &unknown) || unknown.Name != "nope" {
		t.Fatalf("err = %v", err)
	}
}

func TestPoolFailedBuildRetries(t *testing.T) {
	cat := NewCatalog()
	if err := cat.Register("broken", NewMRTFile(filepath.Join(t.TempDir(), "missing.mrt"))); err != nil {
		t.Fatal(err)
	}
	pool := NewPool(cat, 1)
	pool.SetFailureCooldown(50 * time.Millisecond)
	if _, err := pool.Session(context.Background(), "broken"); err == nil {
		t.Fatal("expected load failure")
	}
	// Inside the cooldown the pool refuses to hot-loop the builder: the
	// request gets a typed cooldown error without a fresh Load.
	_, err := pool.Session(context.Background(), "broken")
	var cool *BuildCooldownError
	if !errors.As(err, &cool) {
		t.Fatalf("err during cooldown = %v, want *BuildCooldownError", err)
	}
	if cool.Name != "broken" || cool.RetryAfter <= 0 || cool.LastError == "" {
		t.Fatalf("cooldown error incomplete: %+v", cool)
	}
	st := pool.Stats()
	if st.Resident != 0 || st.Misses != 1 {
		t.Fatalf("stats after cooldown reject: %+v (cooldown reject must not count a miss)", st)
	}
	// The failure leaves no entry but must leave a trace: healthz
	// distinguishes a failing source from a cold one by LastErrors.
	le, ok := st.LastErrors["broken"]
	if !ok || le.Error == "" {
		t.Fatalf("stats carry no last error for the failing dataset: %+v", st)
	}
	if le.AgeSeconds < 0 {
		t.Fatalf("negative error age: %+v", le)
	}
	if le.RetryAfterSeconds <= 0 {
		t.Fatalf("cooldown not visible in stats: %+v", le)
	}
	// Once the cooldown lapses the failure is not cached: the pool
	// retries the source (and fails afresh).
	time.Sleep(60 * time.Millisecond)
	if _, err := pool.Session(context.Background(), "broken"); err == nil {
		t.Fatal("expected load failure on retry")
	} else if errors.As(err, &cool) {
		t.Fatalf("retry after cooldown still rejected: %v", err)
	}
	if st := pool.Stats(); st.Misses != 2 {
		t.Fatalf("retry after cooldown did not reach the source: %+v", st)
	}
}

// TestPoolStatsEntries: resident entries report readiness, age and
// build duration.
func TestPoolStatsEntries(t *testing.T) {
	cat := NewCatalog()
	if err := cat.Register("only", NewSynthetic(tinyConfig(23))); err != nil {
		t.Fatal(err)
	}
	pool := NewPool(cat, 2)
	if _, err := pool.Session(context.Background(), "only"); err != nil {
		t.Fatal(err)
	}
	st := pool.Stats()
	if len(st.Entries) != 1 {
		t.Fatalf("entries = %+v, want 1", st.Entries)
	}
	e := st.Entries[0]
	if e.Name != "only" || !e.Ready {
		t.Fatalf("entry = %+v, want ready entry for %q", e, "only")
	}
	if e.AgeSeconds <= 0 || e.BuildSeconds <= 0 || e.BuildSeconds > e.AgeSeconds {
		t.Fatalf("entry timings inconsistent: %+v", e)
	}
	if len(st.LastErrors) != 0 {
		t.Fatalf("unexpected last errors: %+v", st.LastErrors)
	}
}

// TestPoolConcurrentMixedDatasets is the acceptance scenario: at least
// 8 concurrent queries across at least 3 datasets through a pool small
// enough to force evictions, racing rebuilds against evictions and
// verifying every dataset keeps answering with its own deterministic
// bytes. Run with -race.
func TestPoolConcurrentMixedDatasets(t *testing.T) {
	cat := NewCatalog()
	names := []string{"a", "b", "c", "d"}
	for i, name := range names {
		if err := cat.Register(name, NewSynthetic(tinyConfig(int64(31+i)))); err != nil {
			t.Fatal(err)
		}
	}
	pool := NewPool(cat, 2) // 4 datasets through 2 slots → guaranteed churn

	// Reference bytes per dataset, computed single-threaded.
	want := make(map[string]string, len(names))
	for _, name := range names {
		sess, err := pool.Session(context.Background(), name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sess.Run(context.Background(), "table5", nil)
		if err != nil {
			t.Fatal(err)
		}
		blob, _ := json.Marshal(res)
		want[name] = string(blob)
	}

	const workers = 12
	const rounds = 3
	var wg sync.WaitGroup
	errs := make(chan error, workers*rounds)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				name := names[(w+r)%len(names)]
				sess, err := pool.Session(context.Background(), name)
				if err != nil {
					errs <- fmt.Errorf("%s: %w", name, err)
					return
				}
				res, err := sess.Run(context.Background(), "table5", nil)
				if err != nil {
					errs <- fmt.Errorf("%s table5: %w", name, err)
					return
				}
				blob, _ := json.Marshal(res)
				if string(blob) != want[name] {
					errs <- fmt.Errorf("%s answered another dataset's bytes", name)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := pool.Stats()
	if st.Evictions == 0 {
		t.Fatal("pool never evicted: the test lost its churn")
	}
	if st.Resident > 2 {
		t.Fatalf("resident %d exceeds capacity 2", st.Resident)
	}
	t.Logf("pool stats: %+v", st)
}
