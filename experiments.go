package policyscope

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/policyscope/policyscope/internal/bgp"
	"github.com/policyscope/policyscope/internal/core"
	"github.com/policyscope/policyscope/internal/ibgp"
	"github.com/policyscope/policyscope/internal/irr"
	"github.com/policyscope/policyscope/internal/netx"
	"github.com/policyscope/policyscope/internal/reports"
	"github.com/policyscope/policyscope/internal/routeviews"
	"github.com/policyscope/policyscope/internal/simulate"
	"github.com/policyscope/policyscope/internal/topogen"
)

// This file maps each table and figure of the paper to an experiment
// method plus a renderer. The per-experiment index lives in DESIGN.md;
// paper-vs-measured numbers are recorded in EXPERIMENTS.md.

// ---- Table 1 -------------------------------------------------------------

// Table1Row describes one vantage AS like the paper's dataset table.
type Table1Row struct {
	AS     bgp.ASN
	Name   string
	Degree int
	Tier   int
	Region topogen.Region
	// LookingGlass marks full-table vantages.
	LookingGlass bool
}

// Table1Dataset describes the study's vantage set.
func (s *Study) Table1Dataset() []Table1Row {
	lg := make(map[bgp.ASN]bool, len(s.LookingGlass))
	for _, asn := range s.LookingGlass {
		lg[asn] = true
	}
	rows := make([]Table1Row, 0, len(s.Peers))
	for _, asn := range s.Peers {
		info := s.Topo.ASes[asn]
		rows = append(rows, Table1Row{
			AS:           asn,
			Name:         info.Name,
			Degree:       s.Topo.Graph.Degree(asn),
			Tier:         info.Tier,
			Region:       info.Region,
			LookingGlass: lg[asn],
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Degree > rows[j].Degree })
	return rows
}

// RenderTable1 renders the dataset table.
func RenderTable1(rows []Table1Row) *reports.Table {
	t := &reports.Table{
		Title:   "Table 1: vantage ASes (collector peers; LG = full-table Looking Glass)",
		Columns: []string{"AS", "name", "degree", "tier", "location", "LG"},
	}
	for _, r := range rows {
		lg := ""
		if r.LookingGlass {
			lg = "yes"
		}
		t.AddRow(r.AS.String(), r.Name, fmt.Sprintf("%d", r.Degree),
			fmt.Sprintf("%d", r.Tier), string(r.Region), lg)
	}
	return t
}

// ---- Table 2 / Figure 2 --------------------------------------------------

// Table2TypicalLocalPref measures per-AS local-preference typicality at
// the Looking Glass vantages.
func (s *Study) Table2TypicalLocalPref() []core.TypicalityResult {
	a := &core.ImportAnalyzer{Graph: s.Graph}
	out := make([]core.TypicalityResult, 0, len(s.LookingGlass))
	for _, asn := range s.LookingGlass {
		out = append(out, a.Typicality(s.Result.Tables[asn]))
	}
	return out
}

// RenderTable2 renders typicality results.
func RenderTable2(rows []core.TypicalityResult) *reports.Table {
	t := &reports.Table{
		Title:   "Table 2: typical local preference assignment (Looking Glass vantages)",
		Columns: []string{"AS", "% typical localpref", "comparable prefixes"},
		Note:    "paper: 94.3-100% across 15 ASes",
	}
	for _, r := range rows {
		t.AddRow(r.AS.String(), reports.Pct(r.TypicalPct()), fmt.Sprintf("%d", r.Comparable))
	}
	return t
}

// Figure2aConsistency measures next-hop-keyed preference share per
// Looking Glass AS.
func (s *Study) Figure2aConsistency() []core.ConsistencyResult {
	a := &core.ImportAnalyzer{Graph: s.Graph}
	out := make([]core.ConsistencyResult, 0, len(s.LookingGlass))
	for _, asn := range s.LookingGlass {
		out = append(out, a.NextHopConsistency(s.Result.Tables[asn]))
	}
	return out
}

// Figure2bRouterConsistency builds the 30-router refinement of the
// largest Tier-1 and measures per-router consistency.
func (s *Study) Figure2bRouterConsistency(routers, driftRouters int) ([]core.ConsistencyResult, error) {
	t1 := s.TierOneVantages(1)
	if len(t1) == 0 {
		return nil, fmt.Errorf("policyscope: no tier-1 vantage")
	}
	m, err := ibgp.Build(s.Topo, t1[0], s.Result.Tables[t1[0]], ibgp.Options{
		Routers:      routers,
		DriftRouters: driftRouters,
		DriftShare:   0.25,
		Seed:         s.Config.Seed,
	})
	if err != nil {
		return nil, err
	}
	a := &core.ImportAnalyzer{Graph: s.Graph}
	return a.RouterConsistency(m), nil
}

// RenderFigure2 renders either consistency series as a chart.
func RenderFigure2(title string, rows []core.ConsistencyResult) *reports.Chart {
	c := &reports.Chart{
		Title:  title,
		XLabel: "AS / router",
		YLabel: "% prefixes with next-hop-keyed localpref",
		Series: map[string][]float64{"consistency": {}},
	}
	for _, r := range rows {
		label := r.AS.String()
		if r.Router > 0 {
			label = fmt.Sprintf("router %d", r.Router)
		}
		c.X = append(c.X, label)
		c.Series["consistency"] = append(c.Series["consistency"], r.Pct())
	}
	return c
}

// ---- Table 3 ---------------------------------------------------------------

// Table3Options parameterizes the IRR experiment.
type Table3Options struct {
	// MinDate filters stale objects (paper: updated during 2002).
	MinDate int
	// MinNeighbors keeps ASes with enough known-relationship imports
	// (the paper used >50 on the real Internet).
	MinNeighbors int
	// Gen controls registry synthesis; zero values take defaults.
	Gen irr.GenOptions
}

// Table3IRR generates a registry from ground truth and mines it.
func (s *Study) Table3IRR(opts Table3Options) []core.IRRTypicalityResult {
	gen := opts.Gen
	if gen.FreshDate == 0 {
		gen = irr.DefaultGenOptions(s.Config.Seed + 1)
	}
	if opts.MinDate == 0 {
		opts.MinDate = 20020101
	}
	if opts.MinNeighbors == 0 {
		opts.MinNeighbors = 4
	}
	db := irr.Generate(s.Topo, gen)
	return core.IRRTypicality(db, s.Graph, opts.MinDate, opts.MinNeighbors)
}

// RenderTable3 renders the IRR typicality table.
func RenderTable3(rows []core.IRRTypicalityResult) *reports.Table {
	t := &reports.Table{
		Title:   "Table 3: typical local preference from IRR (fresh aut-num objects)",
		Columns: []string{"AS", "% typical pairs", "import lines"},
		Note:    "paper: 80-100% across 62 ASes",
	}
	for _, r := range rows {
		t.AddRow(r.AS.String(), reports.Pct(r.TypicalPct()), fmt.Sprintf("%d", r.Neighbors))
	}
	return t
}

// ---- Table 4 / Figure 9 / Table 11 ----------------------------------------

// Table4Row is one AS's verification outcome plus how its semantics were
// obtained.
type Table4Row struct {
	Result core.VerificationResult
	// Published is true when the scheme came from the operator (IRR or
	// web) rather than count-based inference.
	Published bool
}

// Table4Verification verifies relationships via communities at tagging
// vantages, published schemes first, inferred otherwise (maxASes caps the
// table like the paper's 9 rows).
func (s *Study) Table4Verification(maxASes int) []Table4Row {
	var out []Table4Row
	for _, asn := range s.Peers {
		pol := s.Topo.Policies[asn]
		if pol.Tagging == nil {
			continue
		}
		rib := s.Result.Tables[asn]
		var sem core.CommunitySemantics
		if pol.Tagging.Published {
			sem = core.SemanticsFromScheme(asn, pol.Tagging.Scheme(), pol.Tagging.ClassOf)
		} else {
			sem = core.InferCommunitySemantics(rib, s.HasProviders(asn))
		}
		if len(sem.ClassOf) == 0 {
			continue
		}
		res := core.VerifyRelationships(rib, sem, s.Graph)
		if res.Neighbors == 0 {
			continue
		}
		out = append(out, Table4Row{Result: res, Published: pol.Tagging.Published})
		if maxASes > 0 && len(out) >= maxASes {
			break
		}
	}
	return out
}

// RenderTable4 renders verification rows.
func RenderTable4(rows []Table4Row) *reports.Table {
	t := &reports.Table{
		Title:   "Table 4: AS relationships verified via BGP communities",
		Columns: []string{"AS", "neighbors", "% verified", "semantics"},
		Note:    "paper: 94.1-99.55% across 9 ASes",
	}
	for _, r := range rows {
		src := "inferred (Fig 9)"
		if r.Published {
			src = "published"
		}
		t.AddRow(r.Result.AS.String(), fmt.Sprintf("%d", r.Result.Neighbors),
			reports.Pct(r.Result.VerifiedPct()), src)
	}
	return t
}

// Figure9NeighborRanks ranks next-hop ASes by announced prefixes for n
// vantage ASes.
func (s *Study) Figure9NeighborRanks(n int) map[bgp.ASN][]core.NeighborRank {
	out := make(map[bgp.ASN][]core.NeighborRank, n)
	for _, asn := range s.Peers {
		if len(out) >= n {
			break
		}
		out[asn] = core.RankNeighbors(s.Result.Tables[asn])
	}
	return out
}

// RenderFigure9 renders one AS's rank series.
func RenderFigure9(asn bgp.ASN, ranks []core.NeighborRank) *reports.Chart {
	c := &reports.Chart{
		Title:  fmt.Sprintf("Figure 9: prefixes announced by next-hop ASes of %v", asn),
		XLabel: "rank (next-hop AS)",
		YLabel: "prefixes",
		LogY:   true,
		Series: map[string][]float64{"prefixes": {}},
	}
	for i, r := range ranks {
		c.X = append(c.X, fmt.Sprintf("%02d %v", i+1, r.Neighbor))
		c.Series["prefixes"] = append(c.Series["prefixes"], float64(r.Prefixes))
	}
	return c
}

// Table11Scheme returns a published tagging scheme (the Table 11
// analogue); ok is false when no vantage publishes one.
func (s *Study) Table11Scheme() (bgp.ASN, []topogen.TagSchemeEntry, bool) {
	for _, asn := range s.Peers {
		pol := s.Topo.Policies[asn]
		if pol.Tagging != nil && pol.Tagging.Published {
			return asn, pol.Tagging.Scheme(), true
		}
	}
	return 0, nil, false
}

// RenderTable11 renders a tagging scheme.
func RenderTable11(asn bgp.ASN, scheme []topogen.TagSchemeEntry) *reports.Table {
	t := &reports.Table{
		Title:   fmt.Sprintf("Table 11: tagging communities published by %v", asn),
		Columns: []string{"community", "meaning"},
	}
	for _, e := range scheme {
		t.AddRow(e.Community.String(), e.Description)
	}
	return t
}

// ---- Table 5 / 6 -----------------------------------------------------------

// Table5SAPrefixes runs the Figure-4 SA detector at every collector peer.
func (s *Study) Table5SAPrefixes() []core.SAResult {
	a := &core.ExportAnalyzer{Graph: s.Graph}
	out := make([]core.SAResult, 0, len(s.Peers))
	for _, asn := range s.Peers {
		out = append(out, a.SAPrefixes(s.PeerView(asn)))
	}
	return out
}

// RenderTable5 renders SA shares.
func RenderTable5(rows []core.SAResult) *reports.Table {
	t := &reports.Table{
		Title:   "Table 5: selectively announced (SA) prefixes per vantage",
		Columns: []string{"AS", "cone prefixes", "SA prefixes", "% SA"},
		Note:    "paper: 0-48.6% across 16 ASes, tens of percent at Tier-1s",
	}
	for _, r := range rows {
		t.AddRow(r.Vantage.String(), fmt.Sprintf("%d", r.ConePrefixes),
			fmt.Sprintf("%d", len(r.SA)), reports.Pct(r.SAPct()))
	}
	return t
}

// Table6CustomerView measures per-customer SA shares against the top
// Tier-1 vantages.
func (s *Study) Table6CustomerView(providers, maxRows, minPrefixes int) []core.CustomerSARow {
	t1 := s.TierOneVantages(providers)
	views := make([]core.BestView, 0, len(t1))
	for _, asn := range t1 {
		views = append(views, s.PeerView(asn))
	}
	a := &core.ExportAnalyzer{Graph: s.Graph}
	rows := a.CustomerView(views, minPrefixes)
	if maxRows > 0 && len(rows) > maxRows {
		rows = rows[:maxRows]
	}
	return rows
}

// RenderTable6 renders the customer view.
func RenderTable6(rows []core.CustomerSARow) *reports.Table {
	t := &reports.Table{
		Title:   "Table 6: SA prefixes per customer of the top Tier-1 providers",
		Columns: []string{"customer", "prefixes", "SA prefixes", "% SA"},
		Note:    "paper: 17-97% across 8 customers",
	}
	for _, r := range rows {
		t.AddRow(r.Customer.String(), fmt.Sprintf("%d", r.Prefixes),
			fmt.Sprintf("%d", r.SACount), reports.Pct(r.SAPct()))
	}
	return t
}

// ---- Table 7 / 8 / 9 / Case 3 ----------------------------------------------

// Table7Verification verifies SA prefixes at the top Tier-1s.
func (s *Study) Table7Verification(providers int) []core.SAVerification {
	a := &core.ExportAnalyzer{Graph: s.Graph}
	allPaths := s.AllObservedPaths()
	var out []core.SAVerification
	for _, asn := range s.TierOneVantages(providers) {
		sa := a.SAPrefixes(s.PeerView(asn))
		out = append(out, core.VerifySAPrefixes(sa, s.Graph, allPaths, 0))
	}
	return out
}

// RenderTable7 renders SA verification.
func RenderTable7(rows []core.SAVerification) *reports.Table {
	t := &reports.Table{
		Title:   "Table 7: SA prefixes verified via active customer paths",
		Columns: []string{"provider", "SA prefixes", "% verified"},
		Note:    "paper: 95-97.6% for AS1/AS3549/AS7018",
	}
	for _, r := range rows {
		t.AddRow(r.Provider.String(), fmt.Sprintf("%d", r.SACount), reports.Pct(r.VerifiedPct()))
	}
	return t
}

// Table8Multihoming classifies SA origins at the top Tier-1s.
func (s *Study) Table8Multihoming(providers int) []core.MultihomingResult {
	a := &core.ExportAnalyzer{Graph: s.Graph}
	var out []core.MultihomingResult
	for _, asn := range s.TierOneVantages(providers) {
		sa := a.SAPrefixes(s.PeerView(asn))
		out = append(out, core.ClassifyMultihoming(sa, s.Graph))
	}
	return out
}

// RenderTable8 renders the multihoming split.
func RenderTable8(rows []core.MultihomingResult) *reports.Table {
	t := &reports.Table{
		Title:   "Table 8: multihomed vs single-homed ASes originating SA prefixes",
		Columns: []string{"provider", "multihomed", "single-homed", "% multihomed"},
		Note:    "paper: ~75% multihomed",
	}
	for _, r := range rows {
		t.AddRow(r.Provider.String(), fmt.Sprintf("%d", r.Multihomed),
			fmt.Sprintf("%d", r.SingleHomed), reports.Pct(r.MultihomedPct()))
	}
	return t
}

// Table9SplitAggregate counts Case-1/Case-2 signatures at the top
// Tier-1s.
func (s *Study) Table9SplitAggregate(providers int) []core.SplitAggregateResult {
	a := &core.ExportAnalyzer{Graph: s.Graph}
	var out []core.SplitAggregateResult
	for _, asn := range s.TierOneVantages(providers) {
		view := s.PeerView(asn)
		sa := a.SAPrefixes(view)
		out = append(out, core.AnalyzeSplitAggregate(sa, view, s.Graph))
	}
	return out
}

// RenderTable9 renders splitting/aggregation counts.
func RenderTable9(rows []core.SplitAggregateResult) *reports.Table {
	t := &reports.Table{
		Title:   "Table 9: prefix splitting and aggregation among SA prefixes",
		Columns: []string{"provider", "SA prefixes", "splitting", "aggregating"},
		Note:    "paper: both minority causes (127-218 of 3431-9120)",
	}
	for _, r := range rows {
		t.AddRow(r.Provider.String(), fmt.Sprintf("%d", r.SACount),
			fmt.Sprintf("%d", r.Splitting), fmt.Sprintf("%d", r.Aggregating))
	}
	return t
}

// Case3Selective runs the selective-announcing breakdown at the top
// Tier-1s.
func (s *Study) Case3Selective(providers int) []core.SelectiveAnnouncingResult {
	a := &core.ExportAnalyzer{Graph: s.Graph}
	pathIdx := s.PathIndex()
	var out []core.SelectiveAnnouncingResult
	for _, asn := range s.TierOneVantages(providers) {
		sa := a.SAPrefixes(s.PeerView(asn))
		out = append(out, core.AnalyzeSelectiveAnnouncing(sa, s.Graph, pathIdx))
	}
	return out
}

// RenderCase3 renders the Case-3 breakdown.
func RenderCase3(rows []core.SelectiveAnnouncingResult) *reports.Table {
	t := &reports.Table{
		Title:   "Case 3 (Section 5.1.5): how SA origins export to vantage-side providers",
		Columns: []string{"provider", "SA", "% identified", "% exported", "% withheld"},
		Note:    "paper (AS1): ~90% identified; 21% exported, 79% withheld",
	}
	for _, r := range rows {
		t.AddRow(r.Provider.String(), fmt.Sprintf("%d", r.SACount),
			reports.Pct(r.IdentifiedPct()), reports.Pct(r.ExportedPct()), reports.Pct(r.WithheldPct()))
	}
	return t
}

// ---- Table 10 ---------------------------------------------------------------

// Table10PeerExport measures export-to-peer behaviour at the top
// Tier-1s.
func (s *Study) Table10PeerExport(providers int) []core.PeerExportResult {
	universe := core.OriginUniverse(s.AllPeerViews())
	var out []core.PeerExportResult
	for _, asn := range s.TierOneVantages(providers) {
		out = append(out, core.AnalyzePeerExport(s.PeerView(asn), s.Graph, universe))
	}
	return out
}

// RenderTable10 renders peer-export shares.
func RenderTable10(rows []core.PeerExportResult) *reports.Table {
	t := &reports.Table{
		Title:   "Table 10: peers announcing all their prefixes directly",
		Columns: []string{"AS", "peers", "announcing all", "%"},
		Note:    "paper: 86-100% for AS1/AS3549/AS7018",
	}
	for _, r := range rows {
		t.AddRow(r.Vantage.String(), fmt.Sprintf("%d", len(r.Rows)),
			fmt.Sprintf("%d", r.Announcing()), reports.Pct(r.AnnouncingPct()))
	}
	return t
}

// ---- Figures 6 and 7 ---------------------------------------------------------

// PersistenceOptions sizes the Figure 6/7 series.
type PersistenceOptions struct {
	// Epochs is the series length (31 daily epochs in Fig 6a, 12-24
	// hourly in Fig 6b).
	Epochs int
	// ChurnFraction is the per-epoch share of multihomed origins
	// re-rolling one prefix's export policy. Zero keeps the default;
	// a negative value disables churn (a control series).
	ChurnFraction float64
	// EpochSeconds spaces snapshot timestamps (86400 daily, 3600 hourly).
	EpochSeconds uint32
}

// Figure6and7Persistence collects an epoch series and analyzes SA
// persistence at the largest Tier-1. The churn runs on a private
// topology clone, so the study stays on the base configuration and
// concurrent queries never observe mid-experiment policies.
func (s *Study) Figure6and7Persistence(opts PersistenceOptions) (core.PersistenceResult, error) {
	if opts.Epochs <= 0 {
		opts.Epochs = 31
	}
	if opts.ChurnFraction == 0 {
		// Tuned so roughly a sixth of ever-SA prefixes shift over a
		// 31-epoch series, the paper's Figure 7(a) observation.
		opts.ChurnFraction = 0.008
	}
	if opts.EpochSeconds == 0 {
		opts.EpochSeconds = 86400
	}
	t1 := s.TierOneVantages(1)
	if len(t1) == 0 {
		return core.PersistenceResult{}, fmt.Errorf("policyscope: no tier-1 vantage")
	}
	series, err := routeviews.CollectSeries(s.Topo.Clone(), routeviews.SeriesOptions{
		Epochs:        opts.Epochs,
		ChurnFraction: opts.ChurnFraction,
		Seed:          s.Config.Seed + 7,
		EpochSeconds:  opts.EpochSeconds,
		Simulate: simulate.Options{
			VantagePoints: s.Peers,
			Parallelism:   s.Config.Parallelism,
		},
		Peers: s.Peers,
	})
	if err != nil {
		return core.PersistenceResult{}, err
	}
	a := &core.ExportAnalyzer{Graph: s.Graph}
	views := make([]core.BestView, 0, opts.Epochs)
	times := make([]uint32, 0, opts.Epochs)
	for _, snap := range series.Snapshots {
		views = append(views, core.ViewFromPeerTable(snap.Table, t1[0]))
		times = append(times, snap.Timestamp)
	}
	return core.AnalyzePersistence(a, views, times), nil
}

// RenderFigure6 renders the per-epoch counts.
func RenderFigure6(res core.PersistenceResult, xlabel string) *reports.Chart {
	c := &reports.Chart{
		Title:       fmt.Sprintf("Figure 6: persistence of SA prefixes for %v", res.Vantage),
		XLabel:      xlabel,
		YLabel:      "prefixes",
		LogY:        true,
		Series:      map[string][]float64{"All prefixes": {}, "SA prefixes": {}},
		SeriesOrder: []string{"All prefixes", "SA prefixes"},
	}
	for i, p := range res.Points {
		c.X = append(c.X, fmt.Sprintf("%d", i+1))
		c.Series["All prefixes"] = append(c.Series["All prefixes"], float64(p.AllPrefixes))
		c.Series["SA prefixes"] = append(c.Series["SA prefixes"], float64(p.SAPrefixes))
	}
	return c
}

// RenderFigure7 renders the uptime histogram.
func RenderFigure7(res core.PersistenceResult, xlabel string) *reports.Chart {
	c := &reports.Chart{
		Title:       fmt.Sprintf("Figure 7: SA uptime for %v (shifting share %.2f)", res.Vantage, res.ShiftingShare()),
		XLabel:      xlabel,
		YLabel:      "prefixes",
		Series:      map[string][]float64{"Remaining SA": {}, "Shifting SA to non-SA": {}},
		SeriesOrder: []string{"Remaining SA", "Shifting SA to non-SA"},
	}
	for _, b := range res.UptimeHistogram() {
		c.X = append(c.X, fmt.Sprintf("%d", b.Uptime))
		c.Series["Remaining SA"] = append(c.Series["Remaining SA"], float64(b.RemainingSA))
		c.Series["Shifting SA to non-SA"] = append(c.Series["Shifting SA to non-SA"], float64(b.Shifting))
	}
	return c
}

// ---- ground truth scoring ----------------------------------------------------

// studyTruth adapts the generator's policies to core.GroundTruth: a
// prefix counts as selectively announced when any configured mechanism —
// origin subset, no-upstream tag, transit exclusion, or provider
// aggregation — could have withheld it somewhere.
type studyTruth struct{ topo *topogen.Topology }

// IsSelectivelyAnnounced implements core.GroundTruth.
func (g studyTruth) IsSelectivelyAnnounced(prefix netx.Prefix) bool {
	origin, ok := g.topo.PrefixOrigin[prefix]
	if !ok {
		return false
	}
	pol := g.topo.Policies[origin]
	if _, sel := pol.Export.OriginProviders[prefix]; sel {
		return true
	}
	if _, tagged := pol.Export.NoUpstream[prefix]; tagged {
		return true
	}
	for _, asn := range g.topo.Order {
		p := g.topo.Policies[asn]
		if p.Export.AggregateSpecifics[prefix] {
			return true
		}
		if p.Export.TransitSelective > 0 {
			for _, provider := range g.topo.Graph.Providers(asn) {
				if p.Export.TransitExcluded(asn, prefix, provider) {
					return true
				}
			}
		}
	}
	return false
}

// SAGroundTruthScore validates every vantage's SA detections against the
// generator's configuration, returning (truePositives, falsePositives) —
// the validation the paper could not run.
func (s *Study) SAGroundTruthScore() (tp, fp int) {
	truth := studyTruth{s.Topo}
	a := &core.ExportAnalyzer{Graph: s.Topo.Graph}
	for _, asn := range s.Peers {
		res := a.SAPrefixes(s.PeerView(asn))
		t, f := core.ScoreSA(res, truth)
		tp += t
		fp += f
	}
	return tp, fp
}

// ChurnSeed derives a deterministic rng for ad-hoc experiment extensions.
func (s *Study) ChurnSeed(salt int64) *rand.Rand {
	return rand.New(rand.NewSource(s.Config.Seed ^ salt))
}
