package policyscope

import (
	"bytes"
	"strings"
	"testing"

	"github.com/policyscope/policyscope/internal/simulate"
)

func TestStudyWhatIfFailover(t *testing.T) {
	s := smallStudy(t)
	sc, stub, provider, ok := s.FailoverScenario()
	if !ok {
		t.Fatal("no failover scenario available")
	}
	if stub == 0 || provider == 0 {
		t.Fatalf("bad endpoints %v %v", stub, provider)
	}
	rep, err := s.WhatIf(sc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Delta.Recomputed == 0 {
		t.Fatal("failover recomputed nothing")
	}
	if rep.Delta.Recomputed >= rep.Delta.TotalPrefixes {
		t.Fatalf("failover recomputed everything (%d/%d): incrementality lost",
			rep.Delta.Recomputed, rep.Delta.TotalPrefixes)
	}
	if len(rep.Delta.Shifts) == 0 {
		t.Fatal("no catchment shifts for a multihomed stub failover")
	}
	// The study itself must stay on the base configuration.
	if s.Topo.Graph.Rel(stub, provider) == 0 {
		t.Fatal("what-if mutated the study topology")
	}

	var buf bytes.Buffer
	if err := WriteWhatIf(&buf, rep, 5); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"What-if", "re-converged", "Prefix", "Collector peers"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestStudyWhatIfEngineChained(t *testing.T) {
	s := smallStudy(t)
	eng, err := s.WhatIfEngine()
	if err != nil {
		t.Fatal(err)
	}
	sc, stub, provider, ok := s.FailoverScenario()
	if !ok {
		t.Skip("no failover subject")
	}
	if _, err := eng.Apply(sc); err != nil {
		t.Fatal(err)
	}
	// Chain a second event on the compounded state: restore the link.
	rel := s.Topo.Graph.Rel(stub, provider)
	restore := simulate.Scenario{Events: []simulate.Event{simulate.RestoreLink(stub, provider, rel)}}
	delta, err := eng.Apply(restore)
	if err != nil {
		t.Fatal(err)
	}
	if delta.Recomputed == 0 {
		t.Fatal("restore recomputed nothing")
	}
	base, err := simulate.Run(s.Topo, simulate.Options{VantagePoints: s.Peers})
	if err != nil {
		t.Fatal(err)
	}
	if diffs := simulate.DiffResults(eng.Result(), base); len(diffs) > 0 {
		t.Fatalf("fail+restore did not round-trip: %v", diffs[:min(3, len(diffs))])
	}
}
