package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestWriteTextGolden pins the exposition format byte-for-byte: sorted
// metric order, HELP/TYPE comments, cumulative le= buckets, label
// rendering. Prometheus scrapers and the bench scripts both parse this
// text, so format drift is a real break.
func TestWriteTextGolden(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("test_requests_total", "Requests served.")
	c.Add(3)
	g := r.NewGauge("test_inflight", "In-flight requests.")
	g.Set(2)
	r.NewGaugeFunc("test_pool_resident", "Resident sessions.", func() float64 { return 1.5 })
	h := r.NewHistogram("test_latency_seconds", "Request latency.", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.005)
	h.Observe(0.25)
	h.Observe(5)
	cv := r.NewCounterVec("test_status_total", "Responses by status class.", "class")
	cv.With("2xx").Add(7)
	cv.With("5xx").Inc()
	hv := r.NewHistogramVec("test_phase_seconds", "Phase latency.", []float64{0.5}, "phase")
	hv.With("converge").Observe(0.25)

	var sb strings.Builder
	r.WriteText(&sb)
	want := `# HELP test_inflight In-flight requests.
# TYPE test_inflight gauge
test_inflight 2
# HELP test_latency_seconds Request latency.
# TYPE test_latency_seconds histogram
test_latency_seconds_bucket{le="0.01"} 2
test_latency_seconds_bucket{le="0.1"} 2
test_latency_seconds_bucket{le="1"} 3
test_latency_seconds_bucket{le="+Inf"} 4
test_latency_seconds_sum 5.26
test_latency_seconds_count 4
# HELP test_phase_seconds Phase latency.
# TYPE test_phase_seconds histogram
test_phase_seconds_bucket{phase="converge",le="0.5"} 1
test_phase_seconds_bucket{phase="converge",le="+Inf"} 1
test_phase_seconds_sum{phase="converge"} 0.25
test_phase_seconds_count{phase="converge"} 1
# HELP test_pool_resident Resident sessions.
# TYPE test_pool_resident gauge
test_pool_resident 1.5
# HELP test_requests_total Requests served.
# TYPE test_requests_total counter
test_requests_total 3
# HELP test_status_total Responses by status class.
# TYPE test_status_total counter
test_status_total{class="2xx"} 7
test_status_total{class="5xx"} 1
`
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestParseRoundTrip renders a registry, parses it back with the
// minimal parser, and checks every sample against the live handles.
func TestParseRoundTrip(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("rt_events_total", "Events.")
	c.Add(41)
	c.Inc()
	h := r.NewHistogram("rt_seconds", "Latency.", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(3)
	cv := r.NewCounterVec("rt_by_kind_total", "By kind.", "kind")
	cv.With("a").Add(5)

	var sb strings.Builder
	r.WriteText(&sb)
	samples, err := ParseText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("ParseText: %v", err)
	}
	check := func(name, labelSub string, want float64) {
		t.Helper()
		got, ok := Find(samples, name, labelSub)
		if !ok {
			t.Fatalf("sample %s{%s} missing", name, labelSub)
		}
		if got != want {
			t.Errorf("%s{%s} = %v, want %v", name, labelSub, got, want)
		}
	}
	check("rt_events_total", "", 42)
	check("rt_by_kind_total", `kind="a"`, 5)
	check("rt_seconds_count", "", 3)
	check("rt_seconds_sum", "", 5)
	check("rt_seconds_bucket", `le="1"`, 1)
	check("rt_seconds_bucket", `le="2"`, 2)
	check("rt_seconds_bucket", `le="+Inf"`, 3)
}

// TestConcurrentHammer drives every metric kind from many goroutines
// while a reader renders — the -race proof that hot-path increments
// and exposition are data-race free.
func TestConcurrentHammer(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("hammer_total", "h")
	g := r.NewGauge("hammer_gauge", "h")
	h := r.NewHistogram("hammer_seconds", "h", nil)
	child := r.NewCounterVec("hammer_vec_total", "h", "k").With("x")

	const goroutines, iters = 8, 2000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < iters; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(j%10) / 1000)
				child.Inc()
			}
		}()
	}
	stop := make(chan struct{})
	var rd sync.WaitGroup
	rd.Add(1)
	go func() {
		defer rd.Done()
		for {
			select {
			case <-stop:
				return
			default:
				var sb strings.Builder
				r.WriteText(&sb)
			}
		}
	}()
	wg.Wait()
	close(stop)
	rd.Wait()

	const want = goroutines * iters
	if c.Value() != want {
		t.Errorf("counter = %d, want %d", c.Value(), want)
	}
	if g.Value() != want {
		t.Errorf("gauge = %d, want %d", g.Value(), want)
	}
	if h.Count() != want {
		t.Errorf("histogram count = %d, want %d", h.Count(), want)
	}
	if child.Value() != want {
		t.Errorf("vec child = %d, want %d", child.Value(), want)
	}
}

// TestHotPathAllocFree proves the per-event operations allocate
// nothing — the property the instrumented zero-alloc converge core
// inherits.
func TestHotPathAllocFree(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("alloc_total", "a")
	g := r.NewGauge("alloc_gauge", "a")
	h := r.NewHistogram("alloc_seconds", "a", nil)
	child := r.NewCounterVec("alloc_vec_total", "a", "k").With("x")
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(7)
		g.Add(-1)
		h.Observe(0.004)
		child.Inc()
	}); n != 0 {
		t.Errorf("hot-path ops allocate %v per run, want 0", n)
	}
}

// TestRegistryIdempotent checks same-name registration returns the
// same handle and cross-kind collisions panic.
func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.NewCounter("idem_total", "x")
	b := r.NewCounter("idem_total", "x")
	if a != b {
		t.Error("re-registering a counter returned a different handle")
	}
	defer func() {
		if recover() == nil {
			t.Error("cross-kind re-registration did not panic")
		}
	}()
	r.NewGauge("idem_total", "x")
}

func TestTraceSpans(t *testing.T) {
	ctx, tr := WithTrace(t.Context(), "t1")
	ctx2, outer := StartSpan(ctx, "outer")
	_, inner := StartSpan(ctx2, "inner")
	time.Sleep(time.Millisecond)
	inner.End()
	outer.End()

	recs := tr.Records()
	if len(recs) != 2 {
		t.Fatalf("got %d spans, want 2", len(recs))
	}
	if recs[0].Name != "inner" || recs[0].Parent != "outer" {
		t.Errorf("inner span = %+v, want name inner parent outer", recs[0])
	}
	if recs[1].Name != "outer" || recs[1].Parent != "" {
		t.Errorf("outer span = %+v, want name outer no parent", recs[1])
	}
	if recs[0].DurMs <= 0 {
		t.Errorf("inner duration %v, want > 0", recs[0].DurMs)
	}

	var sb strings.Builder
	if err := tr.WriteNDJSON(&sb); err != nil {
		t.Fatalf("WriteNDJSON: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("NDJSON lines = %d, want 2 spans + summary", len(lines))
	}
	if !strings.Contains(lines[2], `"total_ms"`) {
		t.Errorf("last line %q is not the summary", lines[2])
	}
}

// TestNilSpanSafe: the un-traced path must tolerate nil spans — every
// instrumented call site relies on it.
func TestNilSpanSafe(t *testing.T) {
	ctx, s := StartSpan(t.Context(), "no-trace")
	if s != nil {
		t.Fatal("StartSpan without a trace returned a non-nil span")
	}
	s.End() // must not panic
	if TraceFrom(ctx) != nil {
		t.Error("TraceFrom on plain context is non-nil")
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().NewCounter("bench_total", "b")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().NewHistogram("bench_seconds", "b", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.0042)
	}
}

// BenchmarkWriteText measures /metrics render latency over a registry
// about the size of the real one.
func BenchmarkWriteText(b *testing.B) {
	r := NewRegistry()
	for _, n := range []string{"a", "b", "c", "d", "e", "f", "g", "h"} {
		r.NewCounter("bench_"+n+"_total", "b").Add(12345)
		r.NewHistogram("bench_"+n+"_seconds", "b", nil).Observe(0.1)
	}
	b.ReportAllocs()
	var sb strings.Builder
	for i := 0; i < b.N; i++ {
		sb.Reset()
		r.WriteText(&sb)
	}
}
