package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Sample is one parsed exposition line: a metric name, its rendered
// label set (normalized to the exact `k="v",...` text between braces,
// "" when unlabeled), and the value.
type Sample struct {
	Name   string
	Labels string
	Value  float64
}

// ParseText parses the subset of the Prometheus text exposition format
// that WriteText emits: `# HELP`/`# TYPE` comments and
// `name[{labels}] value` samples. It exists for the round-trip test
// (render → parse → compare against live handles) and for scripts that
// scrape /metrics without a Prometheus client; it is not a general
// scrape parser (no timestamps, no escaped-newline continuation).
func ParseText(r io.Reader) ([]Sample, error) {
	var out []Sample
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		labels := ""
		rest := ""
		if i := strings.IndexByte(line, '{'); i >= 0 {
			j := strings.LastIndexByte(line, '}')
			if j < i {
				return nil, fmt.Errorf("obs: malformed sample line %q", line)
			}
			name = line[:i]
			labels = line[i+1 : j]
			rest = strings.TrimSpace(line[j+1:])
		} else {
			fields := strings.Fields(line)
			if len(fields) != 2 {
				return nil, fmt.Errorf("obs: malformed sample line %q", line)
			}
			name, rest = fields[0], fields[1]
		}
		v, err := strconv.ParseFloat(rest, 64)
		if err != nil {
			return nil, fmt.Errorf("obs: bad value in %q: %w", line, err)
		}
		out = append(out, Sample{Name: name, Labels: labels, Value: v})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Find returns the value of the first sample matching name and, when
// labelSub is non-empty, whose label text contains labelSub.
func Find(samples []Sample, name, labelSub string) (float64, bool) {
	for _, s := range samples {
		if s.Name != name {
			continue
		}
		if labelSub != "" && !strings.Contains(s.Labels, labelSub) {
			continue
		}
		return s.Value, true
	}
	return 0, false
}
