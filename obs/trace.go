package obs

import (
	"context"
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Trace collects the spans of one request. It is attached to a context
// by WithTrace at the server edge (only when the caller asked, e.g.
// ?trace=1), so the un-traced hot path carries a nil trace and every
// span call short-circuits on a nil check.
type Trace struct {
	ID    string
	start time.Time

	mu    sync.Mutex
	spans []SpanRecord
}

// SpanRecord is one finished span, with times relative to the trace
// start so the NDJSON dump reads as a waterfall.
type SpanRecord struct {
	Name    string  `json:"name"`
	Parent  string  `json:"parent,omitempty"`
	StartMs float64 `json:"start_ms"`
	DurMs   float64 `json:"dur_ms"`
}

type traceKey struct{}

var traceSeq atomic.Uint64

// NextID returns a process-unique request/trace ID. IDs are sequential
// per process start — enough to correlate log lines with trace dumps
// without pulling in crypto/rand on every request.
func NextID() string {
	n := traceSeq.Add(1)
	return "r" + itoa(n)
}

func itoa(n uint64) string {
	var buf [20]byte
	i := len(buf)
	for {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
		if n == 0 {
			break
		}
	}
	return string(buf[i:])
}

// WithTrace attaches a new Trace to ctx and returns both.
func WithTrace(ctx context.Context, id string) (context.Context, *Trace) {
	tr := &Trace{ID: id, start: time.Now()}
	return context.WithValue(ctx, traceKey{}, tr), tr
}

// TraceFrom returns the Trace attached to ctx, or nil.
func TraceFrom(ctx context.Context) *Trace {
	tr, _ := ctx.Value(traceKey{}).(*Trace)
	return tr
}

// Span is an in-flight timed phase. The zero value and nil are inert:
// StartSpan on an un-traced context returns nil and End on nil is a
// no-op, so instrumented call sites never branch on "is tracing on".
type Span struct {
	tr     *Trace
	name   string
	parent string
	start  time.Time
}

type spanKey struct{}

// StartSpan opens a span named name under the trace (and parent span)
// carried by ctx. The returned context parents nested spans. Without a
// trace attached it returns ctx unchanged and a nil span.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	tr := TraceFrom(ctx)
	if tr == nil {
		return ctx, nil
	}
	parent := ""
	if p, _ := ctx.Value(spanKey{}).(*Span); p != nil {
		parent = p.name
	}
	s := &Span{tr: tr, name: name, parent: parent, start: time.Now()}
	return context.WithValue(ctx, spanKey{}, s), s
}

// End records the span. Safe on nil.
func (s *Span) End() {
	if s == nil {
		return
	}
	rec := SpanRecord{
		Name:    s.name,
		Parent:  s.parent,
		StartMs: float64(s.start.Sub(s.tr.start).Microseconds()) / 1000,
		DurMs:   float64(time.Since(s.start).Microseconds()) / 1000,
	}
	s.tr.mu.Lock()
	s.tr.spans = append(s.tr.spans, rec)
	s.tr.mu.Unlock()
}

// Records returns the finished spans in End order.
func (t *Trace) Records() []SpanRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, len(t.spans))
	copy(out, t.spans)
	return out
}

// WriteNDJSON writes one JSON object per finished span plus a final
// summary line carrying the trace ID and total duration.
func (t *Trace) WriteNDJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, rec := range t.Records() {
		line := struct {
			Trace string `json:"trace"`
			SpanRecord
		}{Trace: t.ID, SpanRecord: rec}
		if err := enc.Encode(line); err != nil {
			return err
		}
	}
	return enc.Encode(struct {
		Trace   string  `json:"trace"`
		TotalMs float64 `json:"total_ms"`
		Spans   int     `json:"spans"`
	}{t.ID, float64(time.Since(t.start).Microseconds()) / 1000, len(t.spans)})
}
