// Package obs is the repo's dependency-free observability kit: a
// metrics registry (counters, gauges, fixed-bucket histograms) that
// renders Prometheus text exposition, a context-propagated span API
// for per-request phase timing, and slog setup helpers shared by the
// CLIs and the server.
//
// The registry is built for hot paths. Handles are resolved once at
// registration time (package init or constructor); after that every
// increment is a single atomic op — no map lookups, no label
// formatting, no allocation. Label variants (CounterVec/HistogramVec)
// pay their map cost in With(), which callers run at registration
// time, never per event. The instrumented zero-alloc convergence core
// depends on this: its AllocsPerRun guards run with obs compiled in
// and enabled.
//
// There is deliberately no Prometheus client dependency: the text
// exposition format is a page of code, the container image is stdlib
// only, and the client library's default pipeline (label hashing,
// sync.Map lookups, protobuf) costs allocations on paths this repo
// has spent two PRs stripping to zero.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// enabled gates the *timing capture* sites (time.Now pairs around
// converge/apply and similar), letting bench_obs.sh measure the
// instrumented-vs-not delta in one binary. Pure counter increments are
// cheaper than the branch and stay unconditional.
var enabled atomic.Bool

func init() { enabled.Store(true) }

// SetEnabled turns optional timing capture on or off (default on).
func SetEnabled(v bool) { enabled.Store(v) }

// Enabled reports whether optional timing capture is on.
func Enabled() bool { return enabled.Load() }

// Default is the process-wide registry. Package-level instrumentation
// (engine, pool, sweep, session, server) registers here; cmd binaries
// expose it at /metrics.
var Default = NewRegistry()

// metric is anything the registry can render.
type metric interface {
	name() string
	help() string
	typ() string
	write(w io.Writer)
}

// Registry holds named metrics and renders them as Prometheus text
// exposition. Registration is mutex-protected and idempotent by name;
// reads of registered handles are lock-free.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]metric)}
}

// register installs m under its name, or returns the existing metric
// of the same name. A name collision across metric kinds panics: it is
// a programming error, caught at init time because all handles resolve
// at init time.
func (r *Registry) register(m metric) metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.metrics[m.name()]; ok {
		if prev.typ() != m.typ() {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", m.name(), m.typ(), prev.typ()))
		}
		return prev
	}
	r.metrics[m.name()] = m
	return m
}

// WriteText renders every registered metric in Prometheus text
// exposition format, sorted by metric name so output is deterministic
// (golden-testable). Values read atomically; rendering never blocks
// writers.
func (r *Registry) WriteText(w io.Writer) {
	r.mu.Lock()
	names := make([]string, 0, len(r.metrics))
	for n := range r.metrics {
		names = append(names, n)
	}
	ms := make([]metric, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		ms = append(ms, r.metrics[n])
	}
	r.mu.Unlock()
	for _, m := range ms {
		fmt.Fprintf(w, "# HELP %s %s\n", m.name(), m.help())
		fmt.Fprintf(w, "# TYPE %s %s\n", m.name(), m.typ())
		m.write(w)
	}
}

// Handler serves WriteText over HTTP — mount as GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteText(w)
	})
}

// ---- Counter ----

// Counter is a monotonically increasing uint64. Inc/Add are single
// atomic ops: allocation-free and race-clean.
type Counter struct {
	base
	v atomic.Uint64
}

// NewCounter registers (or fetches) a counter on r.
func (r *Registry) NewCounter(name, help string) *Counter {
	return r.register(&Counter{base: base{n: name, h: help, t: "counter"}}).(*Counter)
}

// NewCounter registers a counter on the Default registry.
func NewCounter(name, help string) *Counter { return Default.NewCounter(name, help) }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) write(w io.Writer) {
	fmt.Fprintf(w, "%s %d\n", c.n, c.v.Load())
}

// ---- Gauge ----

// Gauge is an int64 that can go up and down.
type Gauge struct {
	base
	v atomic.Int64
}

// NewGauge registers (or fetches) a gauge on r.
func (r *Registry) NewGauge(name, help string) *Gauge {
	return r.register(&Gauge{base: base{n: name, h: help, t: "gauge"}}).(*Gauge)
}

// NewGauge registers a gauge on the Default registry.
func NewGauge(name, help string) *Gauge { return Default.NewGauge(name, help) }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (negative to decrement).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) write(w io.Writer) {
	fmt.Fprintf(w, "%s %d\n", g.n, g.v.Load())
}

// ---- GaugeFunc ----

// GaugeFunc evaluates fn at render time — for values that already live
// elsewhere (pool residency, goroutine count) and should not be
// double-tracked.
type GaugeFunc struct {
	base
	fn func() float64
}

// NewGaugeFunc registers a render-time gauge on r.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) *GaugeFunc {
	return r.register(&GaugeFunc{base: base{n: name, h: help, t: "gauge"}, fn: fn}).(*GaugeFunc)
}

// NewGaugeFunc registers a render-time gauge on the Default registry.
func NewGaugeFunc(name, help string, fn func() float64) *GaugeFunc {
	return Default.NewGaugeFunc(name, help, fn)
}

func (g *GaugeFunc) write(w io.Writer) {
	fmt.Fprintf(w, "%s %s\n", g.n, formatFloat(g.fn()))
}

// ---- Histogram ----

// DefBuckets covers microseconds to minutes — wide enough for both a
// counter increment and an 80k-AS converge. Values are seconds.
var DefBuckets = []float64{
	1e-6, 1e-5, 1e-4, 5e-4, 1e-3, 5e-3, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 60,
}

// Histogram is a fixed-bucket latency histogram. Buckets are cumulative
// at render time (Prometheus le= semantics) but stored per-bucket so
// Observe touches exactly one bucket counter, the count, and the sum.
// The sum is a float64 stored as bits and updated by CAS; contention on
// it is bounded by the observation rate of one metric, which for every
// site in this repo is per-request or per-scenario, not per-event.
type Histogram struct {
	base
	bounds  []float64 // sorted upper bounds; implicit +Inf after
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// NewHistogram registers (or fetches) a histogram on r. A nil or empty
// bounds slice means DefBuckets. Bounds must be sorted ascending.
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	h := &Histogram{
		base:    base{n: name, h: help, t: "histogram"},
		bounds:  bounds,
		buckets: make([]atomic.Uint64, len(bounds)+1),
	}
	return r.register(h).(*Histogram)
}

// NewHistogram registers a histogram on the Default registry.
func NewHistogram(name, help string, bounds []float64) *Histogram {
	return Default.NewHistogram(name, help, bounds)
}

// Observe records v (in seconds for latency histograms). Allocation
// free: binary search over a fixed bounds slice plus three atomics.
func (h *Histogram) Observe(v float64) {
	// Inline lower-bound search; sort.SearchFloat64s would be fine but
	// this keeps the hot path free of interface calls.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.buckets[lo].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Seconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

func (h *Histogram) write(w io.Writer) {
	h.writeAs(w, h.n, "")
}

// writeAs renders the bucket/sum/count triplet under name with an
// optional extra label pair (used by HistogramVec children).
func (h *Histogram) writeAs(w io.Writer, name, labels string) {
	var cum uint64
	for i, b := range h.bounds {
		cum += h.buckets[i].Load()
		fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", name, labels, formatFloat(b), cum)
	}
	cum += h.buckets[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", name, labels, cum)
	lb := maybeBraces(labels)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, lb, formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, lb, h.count.Load())
}

// maybeBraces wraps a non-empty rendered label list ("k=\"v\",") in
// braces for _sum/_count lines, trimming the trailing comma.
func maybeBraces(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + strings.TrimSuffix(labels, ",") + "}"
}

// ---- Vec variants ----

// CounterVec is a family of counters distinguished by label values.
// With() resolves (and lazily creates) the child under a mutex — call
// it at registration time and hold the *Counter; never call With on a
// hot path.
type CounterVec struct {
	base
	labels   []string
	mu       sync.Mutex
	children map[string]*vecChild[*Counter]
}

type vecChild[T any] struct {
	labelStr string // rendered `k="v",` pairs in declaration order
	m        T
}

// NewCounterVec registers a counter family on r.
func (r *Registry) NewCounterVec(name, help string, labels ...string) *CounterVec {
	v := &CounterVec{
		base:     base{n: name, h: help, t: "counter"},
		labels:   labels,
		children: make(map[string]*vecChild[*Counter]),
	}
	return r.register(v).(*CounterVec)
}

// NewCounterVec registers a counter family on the Default registry.
func NewCounterVec(name, help string, labels ...string) *CounterVec {
	return Default.NewCounterVec(name, help, labels...)
}

// With returns the child counter for the given label values (one per
// declared label, in order).
func (v *CounterVec) With(values ...string) *Counter {
	key, labelStr := vecKey(v.n, v.labels, values)
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.children[key]; ok {
		return c.m
	}
	c := &vecChild[*Counter]{labelStr: labelStr, m: &Counter{base: v.base}}
	v.children[key] = c
	return c.m
}

func (v *CounterVec) write(w io.Writer) {
	for _, c := range v.sortedChildren() {
		fmt.Fprintf(w, "%s{%s} %d\n", v.n, strings.TrimSuffix(c.labelStr, ","), c.m.Value())
	}
}

func (v *CounterVec) sortedChildren() []*vecChild[*Counter] {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]*vecChild[*Counter], 0, len(v.children))
	for _, c := range v.children {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].labelStr < out[j].labelStr })
	return out
}

// HistogramVec is a family of histograms distinguished by label
// values; same With() contract as CounterVec.
type HistogramVec struct {
	base
	labels   []string
	bounds   []float64
	mu       sync.Mutex
	children map[string]*vecChild[*Histogram]
}

// NewHistogramVec registers a histogram family on r. Nil bounds means
// DefBuckets.
func (r *Registry) NewHistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	v := &HistogramVec{
		base:     base{n: name, h: help, t: "histogram"},
		labels:   labels,
		bounds:   bounds,
		children: make(map[string]*vecChild[*Histogram]),
	}
	return r.register(v).(*HistogramVec)
}

// NewHistogramVec registers a histogram family on the Default registry.
func NewHistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	return Default.NewHistogramVec(name, help, bounds, labels...)
}

// With returns the child histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	key, labelStr := vecKey(v.n, v.labels, values)
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.children[key]; ok {
		return c.m
	}
	h := &Histogram{
		base:    v.base,
		bounds:  v.bounds,
		buckets: make([]atomic.Uint64, len(v.bounds)+1),
	}
	v.children[key] = &vecChild[*Histogram]{labelStr: labelStr, m: h}
	return h
}

func (v *HistogramVec) write(w io.Writer) {
	v.mu.Lock()
	out := make([]*vecChild[*Histogram], 0, len(v.children))
	for _, c := range v.children {
		out = append(out, c)
	}
	v.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].labelStr < out[j].labelStr })
	for _, c := range out {
		c.m.writeAs(w, v.n, c.labelStr)
	}
}

// vecKey validates the value count and renders the cache key plus the
// `k="v",`-joined label string.
func vecKey(name string, labels, values []string) (key, labelStr string) {
	if len(values) != len(labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", name, len(labels), len(values)))
	}
	var sb strings.Builder
	for i, l := range labels {
		sb.WriteString(l)
		sb.WriteString("=\"")
		sb.WriteString(escapeLabel(values[i]))
		sb.WriteString("\",")
	}
	s := sb.String()
	return s, s
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// ---- shared bits ----

type base struct {
	n, h, t string
}

func (b base) name() string { return b.n }
func (b base) help() string { return b.h }
func (b base) typ() string  { return b.t }

// formatFloat renders a float the way Prometheus expects: integers
// without a decimal point, everything else in shortest round-trip
// form.
func formatFloat(f float64) string {
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return strconv.FormatInt(int64(f), 10)
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}
