package obs

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// LogFlags is the parsed form of the shared -log-level / -log-format
// CLI flags. Zero value means "info" + "text".
type LogFlags struct {
	Level  string // debug | info | warn | error
	Format string // text | json
}

// Register wires the shared -log-level / -log-format flags into fs, so
// every command spells them identically.
func (f *LogFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.Level, "log-level", "info", "log level: debug|info|warn|error")
	fs.StringVar(&f.Format, "log-format", "text", "log format: text|json")
}

// SetDefault builds the logger per the flags and installs it as the
// process-wide slog default.
func (f LogFlags) SetDefault(w io.Writer) error {
	l, err := NewLogger(w, f)
	if err != nil {
		return err
	}
	slog.SetDefault(l)
	return nil
}

// NewLogger builds a slog.Logger writing to w per the flags. Unknown
// levels or formats are an error so a typo'd flag fails fast instead
// of silently logging at the wrong level.
func NewLogger(w io.Writer, f LogFlags) (*slog.Logger, error) {
	var level slog.Level
	switch strings.ToLower(f.Level) {
	case "", "info":
		level = slog.LevelInfo
	case "debug":
		level = slog.LevelDebug
	case "warn", "warning":
		level = slog.LevelWarn
	case "error":
		level = slog.LevelError
	default:
		return nil, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error)", f.Level)
	}
	opts := &slog.HandlerOptions{Level: level}
	switch strings.ToLower(f.Format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want text|json)", f.Format)
	}
}
