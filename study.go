// Package policyscope reproduces "On Inferring and Characterizing
// Internet Routing Policies" (Wang & Gao, IMC 2003) end to end on a
// synthetic Internet: it generates an annotated AS topology with ground-
// truth routing policies, simulates BGP to convergence, collects
// RouteViews-style and Looking-Glass-style vantage data, and runs the
// paper's inference algorithms — import-policy typicality, next-hop
// consistency, the Figure-4 selective-announcement (SA) detector,
// community-based verification, persistence, cause analysis and
// export-to-peer behaviour.
//
// The entry point is a Study:
//
//	study, err := policyscope.NewStudy(policyscope.DefaultConfig())
//	...
//	res := study.Table5SAPrefixes()
//	table := study.RenderTable5(res)
//	table.WriteTo(os.Stdout)
//
// Every experiment is deterministic in Config.Seed.
package policyscope

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/policyscope/policyscope/internal/asgraph"
	"github.com/policyscope/policyscope/internal/bgp"
	"github.com/policyscope/policyscope/internal/core"
	"github.com/policyscope/policyscope/internal/gaorelation"
	"github.com/policyscope/policyscope/internal/netx"
	"github.com/policyscope/policyscope/internal/routeviews"
	"github.com/policyscope/policyscope/internal/simulate"
	"github.com/policyscope/policyscope/internal/topogen"
)

// ErrNeedsGroundTruth is the sentinel wrapped by every failure caused by
// asking a snapshot-only study (an imported MRT table dump) for an
// analysis that reads generator ground truth — the annotated topology,
// the full per-vantage tables, or the simulation engine. Match with
// errors.Is.
var ErrNeedsGroundTruth = errors.New("needs ground truth, but the study is snapshot-only")

// NeedsGroundTruthError reports which operation required ground truth.
type NeedsGroundTruthError struct {
	// Op names the experiment or subsystem ("table1", "what-if engine").
	Op string
}

func (e *NeedsGroundTruthError) Error() string {
	return fmt.Sprintf("policyscope: %s %v", e.Op, ErrNeedsGroundTruth)
}

// Unwrap makes errors.Is(err, ErrNeedsGroundTruth) succeed.
func (e *NeedsGroundTruthError) Unwrap() error { return ErrNeedsGroundTruth }

// Config sizes a study. The JSON names are the dataset-manifest and
// wire vocabulary (dataset.Catalog, RunAllDocument).
type Config struct {
	// NumASes is the synthetic Internet's size.
	NumASes int `json:"ases"`
	// Seed drives every random choice.
	Seed int64 `json:"seed"`
	// CollectorPeers is the RouteViews-style peer count (the paper's
	// collector had 56 peers).
	CollectorPeers int `json:"peers,omitempty"`
	// LookingGlassASes is how many vantage ASes expose full tables with
	// local preference (the paper used 15).
	LookingGlassASes int `json:"lg,omitempty"`
	// UseInferredRelationships switches the analyses from ground-truth
	// relationships to Gao-inferred ones (the paper's actual setting;
	// Section 4.3 bounds the error).
	UseInferredRelationships bool `json:"inferred,omitempty"`
	// Parallelism bounds simulation workers (0 = GOMAXPROCS).
	Parallelism int `json:"parallelism,omitempty"`
	// Tuning optionally adjusts the synthetic Internet's policy mix.
	Tuning *TopologyTuning `json:"tuning,omitempty"`
}

// TopologyTuning exposes the generator knobs that change experiment
// shapes. Nil fields keep their defaults; a non-nil pointer is applied
// verbatim, so a knob can be tuned all the way down to zero (e.g.
// Prob(0) on SelectiveAnnounceProb disables selective announcement
// outright — impossible back when zero values meant "default").
type TopologyTuning struct {
	// TierOneCount overrides the Tier-1 clique size (0 keeps the
	// derived default; a zero-sized clique is not a valid Internet).
	TierOneCount int `json:"tier_one_count,omitempty"`
	// SelectiveAnnounceProb is the probability a multihomed origin
	// selectively announces a prefix (drives Tables 5-9).
	SelectiveAnnounceProb *float64 `json:"selective_announce_prob,omitempty"`
	// AtypicalPrefProb is the share of sessions with class-order
	// violations (drives Tables 2-3).
	AtypicalPrefProb *float64 `json:"atypical_pref_prob,omitempty"`
	// TaggingProb is the share of ASes deploying relationship-tagging
	// communities (drives Table 4 coverage).
	TaggingProb *float64 `json:"tagging_prob,omitempty"`
	// PeerSelectiveProb is the probability a peer withholds prefixes
	// from another peer (drives Table 10).
	PeerSelectiveProb *float64 `json:"peer_selective_prob,omitempty"`
	// MeanPrefixesStub scales table sizes.
	MeanPrefixesStub *float64 `json:"mean_prefixes_stub,omitempty"`
}

// Prob returns a pointer to v — shorthand for populating
// TopologyTuning's optional knobs in literals.
func Prob(v float64) *float64 { return &v }

// DefaultConfig returns a laptop-scale study that exercises every
// experiment in seconds.
func DefaultConfig() Config {
	return Config{
		NumASes:          600,
		Seed:             42,
		CollectorPeers:   24,
		LookingGlassASes: 15,
	}
}

// Study is an Internet plus the vantage data the experiments consume.
// Synthetic studies carry the full ground truth (generated topology and
// converged per-vantage tables); snapshot-only studies — built from an
// imported MRT table dump — carry just the collector snapshot, run the
// snapshot-driven experiments, and answer ground-truth-dependent ones
// with ErrNeedsGroundTruth.
type Study struct {
	Config Config
	// Topo is the generated ground truth (nil for snapshot-only studies).
	Topo *topogen.Topology
	// Peers are the collector's peer ASes (all of them vantage points).
	Peers []bgp.ASN
	// LookingGlass is the subset of peers whose full tables play the
	// role of the paper's 15 Looking Glass servers (empty when the study
	// has no full tables).
	LookingGlass []bgp.ASN
	// Result holds the converged state (full tables at every peer; nil
	// for snapshot-only studies).
	Result *simulate.Result
	// Snapshot is the collector's best-route view.
	Snapshot *routeviews.Snapshot
	// Graph is the relationship source used by the analyses: the ground
	// truth by default, the Gao-inferred graph when configured — and
	// always the inferred graph for snapshot-only studies, which have no
	// ground truth to consult.
	Graph *asgraph.Graph
	// Intern is the shared canonical-attribute table: the table decoder,
	// the simulation engine and the cache encoder all draw AS paths and
	// community sets from it, so equal attribute values are one
	// allocation study-wide. Always non-nil for studies built through
	// NewStudyFromInputs.
	Intern *bgp.Intern

	tiers map[bgp.ASN]int

	// Lazily memoized shared artifacts. All gates are safe for
	// concurrent use, so many Session queries can share one Study.
	inferOnce    sync.Once
	inferred     *gaorelation.Inference
	pathOnce     sync.Once
	pathIdx      map[netx.Prefix][]bgp.Path
	allPaths     []bgp.Path
	snapPathOnce sync.Once
	snapPaths    []bgp.Path
}

// SnapshotPaths returns the deduplicated observed AS paths of the
// collector snapshot — the input every relationship-inference
// algorithm consumes — computed once and memoized. Safe for concurrent
// callers; treat the result as read-only.
func (s *Study) SnapshotPaths() []bgp.Path {
	s.snapPathOnce.Do(func() {
		s.snapPaths = s.Snapshot.AllPaths()
	})
	return s.snapPaths
}

// Inference returns the Gao relationship-inference output, computing it
// on first use (the Section 4.3 comparison input). Safe for concurrent
// callers.
func (s *Study) Inference() *gaorelation.Inference {
	s.inferOnce.Do(func() {
		opts := gaorelation.DefaultOptions()
		opts.VantagePoints = s.Peers
		s.inferred = gaorelation.Infer(s.SnapshotPaths(), opts)
	})
	return s.inferred
}

// PathIndex returns the prefix → observed-AS-paths index over every
// vantage table, built once and memoized (Tables 7 and Case 3 share
// it). Safe for concurrent callers; treat the result as read-only.
func (s *Study) PathIndex() map[netx.Prefix][]bgp.Path {
	s.pathOnce.Do(func() {
		s.pathIdx = core.PathsByPrefix(s.VantageTables())
		s.allPaths = core.AllPathsOf(s.pathIdx)
	})
	return s.pathIdx
}

// AllObservedPaths returns every distinct observed AS path (derived
// from PathIndex, memoized with it).
func (s *Study) AllObservedPaths() []bgp.Path {
	s.PathIndex()
	return s.allPaths
}

// TopologyConfig resolves the generator configuration the study will
// use: defaults sized by NumASes and Seed with the tuning overlay
// applied. Nil tuning pointers keep the defaults; non-nil pointers are
// applied verbatim, explicit zeros included.
func (cfg Config) TopologyConfig() topogen.Config {
	tcfg := topogen.DefaultConfig(cfg.NumASes, cfg.Seed)
	if tn := cfg.Tuning; tn != nil {
		if tn.TierOneCount > 0 {
			tcfg.TierOneCount = tn.TierOneCount
		}
		if tn.SelectiveAnnounceProb != nil {
			tcfg.SelectiveAnnounceProb = *tn.SelectiveAnnounceProb
		}
		if tn.AtypicalPrefProb != nil {
			tcfg.AtypicalPrefProb = *tn.AtypicalPrefProb
		}
		if tn.TaggingProb != nil {
			tcfg.TaggingProb = *tn.TaggingProb
		}
		if tn.PeerSelectiveProb != nil {
			tcfg.PeerSelectiveProb = *tn.PeerSelectiveProb
		}
		if tn.MeanPrefixesStub != nil {
			tcfg.MeanPrefixesStub = *tn.MeanPrefixesStub
		}
	}
	return tcfg
}

// StudyInputs is the raw material a Study is assembled from. Dataset
// sources — synthetic generation, MRT import, the on-disk cache — own
// data acquisition and hand the result here; NewStudyFromInputs only
// derives the shared analysis state (Looking Glass selection, the
// relationship graph, the tier map).
type StudyInputs struct {
	// Config records how the inputs were produced (or, for imports, how
	// to analyze them: seed, parallelism, inference toggle).
	Config Config
	// Topo is the generated ground truth; nil for snapshot-only inputs.
	Topo *topogen.Topology
	// Result holds the full per-vantage tables; nil for snapshot-only
	// inputs. Topo and Result come and go together.
	Result *simulate.Result
	// Peers is the collector peer set; defaulted from Snapshot.Peers.
	Peers []bgp.ASN
	// Snapshot is the collector's best-route view (required).
	Snapshot *routeviews.Snapshot
	// Intern is the attribute table the inputs were built against
	// (simulation or cache decode). Nil gets a fresh table.
	Intern *bgp.Intern
}

// NewStudy generates, simulates and collects everything.
func NewStudy(cfg Config) (*Study, error) {
	in, err := GenerateInputs(cfg)
	if err != nil {
		return nil, err
	}
	return NewStudyFromInputs(in)
}

// GenerateInputs runs the synthetic pipeline — topology generation, BGP
// simulation to convergence, collector snapshot — and returns the full
// ground-truth inputs. Dataset sources call it so they can persist the
// inputs before study assembly.
func GenerateInputs(cfg Config) (StudyInputs, error) {
	if cfg.CollectorPeers <= 0 {
		cfg.CollectorPeers = 24
	}
	if cfg.LookingGlassASes <= 0 {
		cfg.LookingGlassASes = 15
	}
	topo, peers, err := GenerateTopology(cfg)
	if err != nil {
		return StudyInputs{}, err
	}
	intern := bgp.NewIntern()
	res, err := simulate.Run(topo, simulate.Options{
		VantagePoints: peers,
		Parallelism:   cfg.Parallelism,
		Intern:        intern,
	})
	if err != nil {
		return StudyInputs{}, err
	}
	if len(res.Unconverged) > 0 {
		return StudyInputs{}, fmt.Errorf("policyscope: %d prefixes did not converge", len(res.Unconverged))
	}
	snap, err := routeviews.Collect(res, peers, 0)
	if err != nil {
		return StudyInputs{}, err
	}
	return StudyInputs{Config: cfg, Topo: topo, Result: res, Peers: peers, Snapshot: snap, Intern: intern}, nil
}

// GenerateTopology generates just the annotated topology and the
// collector peer selection for cfg — the engine-only slice of
// GenerateInputs, for consumers (scenario engines, sweeps) that run
// their own convergence and have no use for the simulated tables. The
// peer set matches what a full GenerateInputs of the same cfg selects.
func GenerateTopology(cfg Config) (*topogen.Topology, []bgp.ASN, error) {
	if cfg.NumASes <= 0 {
		return nil, nil, fmt.Errorf("policyscope: NumASes must be positive")
	}
	if cfg.CollectorPeers <= 0 {
		cfg.CollectorPeers = 24
	}
	topo, err := topogen.Generate(cfg.TopologyConfig())
	if err != nil {
		return nil, nil, err
	}
	return topo, routeviews.SelectPeers(topo, cfg.CollectorPeers), nil
}

// NewStudyFromInputs assembles a Study from already-acquired inputs.
// With Topo and Result present the study is fully ground-truth-capable;
// with only a Snapshot it is snapshot-only: relationship analysis runs
// over the Gao-inferred graph (UseInferredRelationships is forced) and
// ground-truth-dependent experiments return ErrNeedsGroundTruth.
func NewStudyFromInputs(in StudyInputs) (*Study, error) {
	if in.Snapshot == nil {
		return nil, fmt.Errorf("policyscope: inputs have no snapshot")
	}
	if (in.Topo == nil) != (in.Result == nil) {
		return nil, fmt.Errorf("policyscope: inputs must carry both Topo and Result or neither")
	}
	cfg := in.Config
	peers := in.Peers
	if len(peers) == 0 {
		peers = append([]bgp.ASN(nil), in.Snapshot.Peers...)
	}
	if len(peers) == 0 {
		return nil, fmt.Errorf("policyscope: inputs have no collector peers")
	}
	if cfg.CollectorPeers <= 0 {
		cfg.CollectorPeers = len(peers)
	}
	if in.Topo == nil {
		// No ground truth to analyze against: relationships must come
		// from the observed paths.
		cfg.UseInferredRelationships = true
	}
	intern := in.Intern
	if intern == nil {
		intern = bgp.NewIntern()
	}
	s := &Study{
		Config:   cfg,
		Topo:     in.Topo,
		Peers:    peers,
		Result:   in.Result,
		Snapshot: in.Snapshot,
		Intern:   intern,
	}
	if in.Result != nil {
		if cfg.LookingGlassASes <= 0 {
			cfg.LookingGlassASes = 15
			s.Config.LookingGlassASes = 15
		}
		// Looking Glass ASes: a mix like Table 1's — the largest peers
		// plus some mid-size ones.
		lg := append([]bgp.ASN(nil), peers...)
		sort.Slice(lg, func(i, j int) bool {
			di, dj := in.Topo.Graph.Degree(lg[i]), in.Topo.Graph.Degree(lg[j])
			if di != dj {
				return di > dj
			}
			return lg[i] < lg[j]
		})
		if len(lg) > cfg.LookingGlassASes {
			lg = lg[:cfg.LookingGlassASes]
		}
		sort.Slice(lg, func(i, j int) bool { return lg[i] < lg[j] })
		s.LookingGlass = lg
	}

	// Gao inference is expensive and usually only consulted for the
	// Section 4.3 accuracy bound: leave it to the lazy gate unless the
	// study analyzes over inferred relationships.
	if cfg.UseInferredRelationships {
		s.Graph = s.Inference().Graph
	} else {
		s.Graph = in.Topo.Graph
	}
	s.tiers = s.Graph.Tiers()
	return s, nil
}

// NewStudyFromSnapshot builds a snapshot-only study over one collector
// snapshot (the MRT-import path). cfg carries analysis knobs (Seed,
// Parallelism); sizing fields are derived from the snapshot.
func NewStudyFromSnapshot(snap *routeviews.Snapshot, cfg Config) (*Study, error) {
	return NewStudyFromInputs(StudyInputs{Config: cfg, Snapshot: snap})
}

// HasGroundTruth reports whether the study carries generator ground
// truth (annotated topology + full vantage tables). Snapshot-only
// studies answer false; their ground-truth-dependent experiments return
// ErrNeedsGroundTruth.
func (s *Study) HasGroundTruth() bool { return s.Topo != nil && s.Result != nil }

// TierOneVantages returns the study's Tier-1 vantage ASes (largest
// first), the analogues of AS1/AS3549/AS7018. Tier and degree come from
// the analysis relationship graph, so snapshot-only studies (inferred
// graph) and ground-truth studies answer through the same lens.
func (s *Study) TierOneVantages(n int) []bgp.ASN {
	var t1 []bgp.ASN
	for _, asn := range s.Peers {
		if s.tiers[asn] == 1 {
			t1 = append(t1, asn)
		}
	}
	sort.Slice(t1, func(i, j int) bool {
		di, dj := s.Graph.Degree(t1[i]), s.Graph.Degree(t1[j])
		if di != dj {
			return di > dj
		}
		return t1[i] < t1[j]
	})
	if n > 0 && len(t1) > n {
		t1 = t1[:n]
	}
	return t1
}

// PeerView returns the collector's best-route view for one peer.
func (s *Study) PeerView(peer bgp.ASN) core.BestView {
	return core.ViewFromPeerTable(s.Snapshot.Table, peer)
}

// AllPeerViews returns every peer's view, in peer order.
func (s *Study) AllPeerViews() []core.BestView {
	out := make([]core.BestView, 0, len(s.Peers))
	for _, p := range s.Peers {
		out = append(out, s.PeerView(p))
	}
	return out
}

// VantageTables returns the full tables of every peer (the path-index
// input), or nil for snapshot-only studies.
func (s *Study) VantageTables() []*bgp.RIB {
	if s.Result == nil {
		return nil
	}
	out := make([]*bgp.RIB, 0, len(s.Peers))
	for _, p := range s.Peers {
		out = append(out, s.Result.Tables[p])
	}
	return out
}

// RelationshipAccuracy scores the Gao inference against ground truth —
// the Section 4.3 bound.
func (s *Study) RelationshipAccuracy() gaorelation.Accuracy {
	return gaorelation.Score(s.Inference().Graph, s.Topo.Graph)
}

// HasProviders reports whether the relationship source says asn has
// providers (the community-semantics prior).
func (s *Study) HasProviders(asn bgp.ASN) bool {
	return len(s.Graph.Providers(asn)) > 0
}
