// Package policyscope reproduces "On Inferring and Characterizing
// Internet Routing Policies" (Wang & Gao, IMC 2003) end to end on a
// synthetic Internet: it generates an annotated AS topology with ground-
// truth routing policies, simulates BGP to convergence, collects
// RouteViews-style and Looking-Glass-style vantage data, and runs the
// paper's inference algorithms — import-policy typicality, next-hop
// consistency, the Figure-4 selective-announcement (SA) detector,
// community-based verification, persistence, cause analysis and
// export-to-peer behaviour.
//
// The entry point is a Study:
//
//	study, err := policyscope.NewStudy(policyscope.DefaultConfig())
//	...
//	res := study.Table5SAPrefixes()
//	table := study.RenderTable5(res)
//	table.WriteTo(os.Stdout)
//
// Every experiment is deterministic in Config.Seed.
package policyscope

import (
	"fmt"
	"sort"
	"sync"

	"github.com/policyscope/policyscope/internal/asgraph"
	"github.com/policyscope/policyscope/internal/bgp"
	"github.com/policyscope/policyscope/internal/core"
	"github.com/policyscope/policyscope/internal/gaorelation"
	"github.com/policyscope/policyscope/internal/netx"
	"github.com/policyscope/policyscope/internal/routeviews"
	"github.com/policyscope/policyscope/internal/simulate"
	"github.com/policyscope/policyscope/internal/topogen"
)

// Config sizes a study.
type Config struct {
	// NumASes is the synthetic Internet's size.
	NumASes int
	// Seed drives every random choice.
	Seed int64
	// CollectorPeers is the RouteViews-style peer count (the paper's
	// collector had 56 peers).
	CollectorPeers int
	// LookingGlassASes is how many vantage ASes expose full tables with
	// local preference (the paper used 15).
	LookingGlassASes int
	// UseInferredRelationships switches the analyses from ground-truth
	// relationships to Gao-inferred ones (the paper's actual setting;
	// Section 4.3 bounds the error).
	UseInferredRelationships bool
	// Parallelism bounds simulation workers (0 = GOMAXPROCS).
	Parallelism int
	// Tuning optionally adjusts the synthetic Internet's policy mix.
	Tuning *TopologyTuning
}

// TopologyTuning exposes the generator knobs that change experiment
// shapes. Nil fields keep their defaults; a non-nil pointer is applied
// verbatim, so a knob can be tuned all the way down to zero (e.g.
// Prob(0) on SelectiveAnnounceProb disables selective announcement
// outright — impossible back when zero values meant "default").
type TopologyTuning struct {
	// TierOneCount overrides the Tier-1 clique size (0 keeps the
	// derived default; a zero-sized clique is not a valid Internet).
	TierOneCount int
	// SelectiveAnnounceProb is the probability a multihomed origin
	// selectively announces a prefix (drives Tables 5-9).
	SelectiveAnnounceProb *float64
	// AtypicalPrefProb is the share of sessions with class-order
	// violations (drives Tables 2-3).
	AtypicalPrefProb *float64
	// TaggingProb is the share of ASes deploying relationship-tagging
	// communities (drives Table 4 coverage).
	TaggingProb *float64
	// PeerSelectiveProb is the probability a peer withholds prefixes
	// from another peer (drives Table 10).
	PeerSelectiveProb *float64
	// MeanPrefixesStub scales table sizes.
	MeanPrefixesStub *float64
}

// Prob returns a pointer to v — shorthand for populating
// TopologyTuning's optional knobs in literals.
func Prob(v float64) *float64 { return &v }

// DefaultConfig returns a laptop-scale study that exercises every
// experiment in seconds.
func DefaultConfig() Config {
	return Config{
		NumASes:          600,
		Seed:             42,
		CollectorPeers:   24,
		LookingGlassASes: 15,
	}
}

// Study is a generated Internet plus its converged routing state and the
// vantage data every experiment consumes.
type Study struct {
	Config Config
	// Topo is the generated ground truth.
	Topo *topogen.Topology
	// Peers are the collector's peer ASes (all of them vantage points).
	Peers []bgp.ASN
	// LookingGlass is the subset of peers whose full tables play the
	// role of the paper's 15 Looking Glass servers.
	LookingGlass []bgp.ASN
	// Result holds the converged state (full tables at every peer).
	Result *simulate.Result
	// Snapshot is the collector's best-route view.
	Snapshot *routeviews.Snapshot
	// Graph is the relationship source used by the analyses: the ground
	// truth by default, the Gao-inferred graph when configured.
	Graph *asgraph.Graph

	tiers map[bgp.ASN]int

	// Lazily memoized shared artifacts. Both gates are safe for
	// concurrent use, so many Session queries can share one Study.
	inferOnce sync.Once
	inferred  *gaorelation.Inference
	pathOnce  sync.Once
	pathIdx   map[netx.Prefix][]bgp.Path
	allPaths  []bgp.Path
}

// Inference returns the Gao relationship-inference output, computing it
// on first use (the Section 4.3 comparison input). Safe for concurrent
// callers.
func (s *Study) Inference() *gaorelation.Inference {
	s.inferOnce.Do(func() {
		opts := gaorelation.DefaultOptions()
		opts.VantagePoints = s.Peers
		s.inferred = gaorelation.Infer(s.Snapshot.AllPaths(), opts)
	})
	return s.inferred
}

// PathIndex returns the prefix → observed-AS-paths index over every
// vantage table, built once and memoized (Tables 7 and Case 3 share
// it). Safe for concurrent callers; treat the result as read-only.
func (s *Study) PathIndex() map[netx.Prefix][]bgp.Path {
	s.pathOnce.Do(func() {
		s.pathIdx = core.PathsByPrefix(s.VantageTables())
		s.allPaths = core.AllPathsOf(s.pathIdx)
	})
	return s.pathIdx
}

// AllObservedPaths returns every distinct observed AS path (derived
// from PathIndex, memoized with it).
func (s *Study) AllObservedPaths() []bgp.Path {
	s.PathIndex()
	return s.allPaths
}

// TopologyConfig resolves the generator configuration the study will
// use: defaults sized by NumASes and Seed with the tuning overlay
// applied. Nil tuning pointers keep the defaults; non-nil pointers are
// applied verbatim, explicit zeros included.
func (cfg Config) TopologyConfig() topogen.Config {
	tcfg := topogen.DefaultConfig(cfg.NumASes, cfg.Seed)
	if tn := cfg.Tuning; tn != nil {
		if tn.TierOneCount > 0 {
			tcfg.TierOneCount = tn.TierOneCount
		}
		if tn.SelectiveAnnounceProb != nil {
			tcfg.SelectiveAnnounceProb = *tn.SelectiveAnnounceProb
		}
		if tn.AtypicalPrefProb != nil {
			tcfg.AtypicalPrefProb = *tn.AtypicalPrefProb
		}
		if tn.TaggingProb != nil {
			tcfg.TaggingProb = *tn.TaggingProb
		}
		if tn.PeerSelectiveProb != nil {
			tcfg.PeerSelectiveProb = *tn.PeerSelectiveProb
		}
		if tn.MeanPrefixesStub != nil {
			tcfg.MeanPrefixesStub = *tn.MeanPrefixesStub
		}
	}
	return tcfg
}

// NewStudy generates, simulates and collects everything.
func NewStudy(cfg Config) (*Study, error) {
	if cfg.NumASes <= 0 {
		return nil, fmt.Errorf("policyscope: NumASes must be positive")
	}
	if cfg.CollectorPeers <= 0 {
		cfg.CollectorPeers = 24
	}
	if cfg.LookingGlassASes <= 0 {
		cfg.LookingGlassASes = 15
	}
	topo, err := topogen.Generate(cfg.TopologyConfig())
	if err != nil {
		return nil, err
	}
	peers := routeviews.SelectPeers(topo, cfg.CollectorPeers)
	res, err := simulate.Run(topo, simulate.Options{
		VantagePoints: peers,
		Parallelism:   cfg.Parallelism,
	})
	if err != nil {
		return nil, err
	}
	if len(res.Unconverged) > 0 {
		return nil, fmt.Errorf("policyscope: %d prefixes did not converge", len(res.Unconverged))
	}
	snap, err := routeviews.Collect(res, peers, 0)
	if err != nil {
		return nil, err
	}
	s := &Study{
		Config:   cfg,
		Topo:     topo,
		Peers:    peers,
		Result:   res,
		Snapshot: snap,
	}
	// Looking Glass ASes: a mix like Table 1's — the largest peers plus
	// some mid-size ones.
	lg := append([]bgp.ASN(nil), peers...)
	sort.Slice(lg, func(i, j int) bool {
		di, dj := topo.Graph.Degree(lg[i]), topo.Graph.Degree(lg[j])
		if di != dj {
			return di > dj
		}
		return lg[i] < lg[j]
	})
	if len(lg) > cfg.LookingGlassASes {
		lg = lg[:cfg.LookingGlassASes]
	}
	sort.Slice(lg, func(i, j int) bool { return lg[i] < lg[j] })
	s.LookingGlass = lg

	// Gao inference is expensive and usually only consulted for the
	// Section 4.3 accuracy bound: leave it to the lazy gate unless the
	// study is configured to analyze over inferred relationships.
	if cfg.UseInferredRelationships {
		s.Graph = s.Inference().Graph
	} else {
		s.Graph = topo.Graph
	}
	s.tiers = s.Graph.Tiers()
	return s, nil
}

// TierOneVantages returns the study's Tier-1 vantage ASes (largest
// first), the analogues of AS1/AS3549/AS7018.
func (s *Study) TierOneVantages(n int) []bgp.ASN {
	var t1 []bgp.ASN
	for _, asn := range s.Peers {
		if s.Topo.TierOf(asn) == 1 {
			t1 = append(t1, asn)
		}
	}
	sort.Slice(t1, func(i, j int) bool {
		di, dj := s.Topo.Graph.Degree(t1[i]), s.Topo.Graph.Degree(t1[j])
		if di != dj {
			return di > dj
		}
		return t1[i] < t1[j]
	})
	if n > 0 && len(t1) > n {
		t1 = t1[:n]
	}
	return t1
}

// PeerView returns the collector's best-route view for one peer.
func (s *Study) PeerView(peer bgp.ASN) core.BestView {
	return core.ViewFromPeerTable(s.Snapshot.Table, peer)
}

// AllPeerViews returns every peer's view, in peer order.
func (s *Study) AllPeerViews() []core.BestView {
	out := make([]core.BestView, 0, len(s.Peers))
	for _, p := range s.Peers {
		out = append(out, s.PeerView(p))
	}
	return out
}

// VantageTables returns the full tables of every peer (the path-index
// input).
func (s *Study) VantageTables() []*bgp.RIB {
	out := make([]*bgp.RIB, 0, len(s.Peers))
	for _, p := range s.Peers {
		out = append(out, s.Result.Tables[p])
	}
	return out
}

// RelationshipAccuracy scores the Gao inference against ground truth —
// the Section 4.3 bound.
func (s *Study) RelationshipAccuracy() gaorelation.Accuracy {
	return gaorelation.Score(s.Inference().Graph, s.Topo.Graph)
}

// HasProviders reports whether the relationship source says asn has
// providers (the community-semantics prior).
func (s *Study) HasProviders(asn bgp.ASN) bool {
	return len(s.Graph.Providers(asn)) > 0
}
