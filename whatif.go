package policyscope

import (
	"fmt"
	"io"
	"sort"

	"github.com/policyscope/policyscope/internal/bgp"
	"github.com/policyscope/policyscope/internal/netx"
	"github.com/policyscope/policyscope/internal/reports"
	"github.com/policyscope/policyscope/internal/simulate"
)

// What-if experiments: the paper infers which routes ASes *do* use; the
// scenario engine asks which routes they *would* use after a change —
// the catchment and failover questions the related what-if literature
// (Sermpezis & Kotronis's catchment inference, Karlin et al.'s
// nation-state routing) studies. Study.WhatIf applies a scenario to the
// study's converged Internet and reports the catchment shift and
// reachability delta, re-converging incrementally.

// WhatIfReport is the outcome of one scenario application.
type WhatIfReport struct {
	Scenario simulate.Scenario
	// Delta is the raw routing change the engine observed.
	Delta *simulate.Delta
	// PeerBestChanged counts, per collector peer, prefixes whose best
	// route at that peer changed.
	PeerBestChanged map[bgp.ASN]int
	// LostReach / GainedReach total the (prefix, AS) reachability pairs
	// removed and created by the scenario.
	LostReach, GainedReach int
}

// WhatIfEngine builds a scenario engine over the study's topology and
// simulation options. The engine owns an independent topology clone;
// successive Apply calls compound on it while the study itself stays on
// the base configuration.
func (s *Study) WhatIfEngine() (*simulate.Engine, error) {
	if s.Topo == nil {
		return nil, &NeedsGroundTruthError{Op: "what-if engine"}
	}
	return simulate.NewEngine(s.Topo, simulate.Options{
		VantagePoints: s.Peers,
		Parallelism:   s.Config.Parallelism,
		Intern:        s.Intern,
	})
}

// WhatIf answers one scenario from the study's base state: it builds a
// fresh engine, applies the scenario incrementally, and summarizes the
// shift. For chained event sequences build one WhatIfEngine and Apply
// repeatedly instead.
func (s *Study) WhatIf(sc simulate.Scenario) (*WhatIfReport, error) {
	eng, err := s.WhatIfEngine()
	if err != nil {
		return nil, err
	}
	return s.whatIfOn(eng, sc)
}

func (s *Study) whatIfOn(eng *simulate.Engine, sc simulate.Scenario) (*WhatIfReport, error) {
	beforeBest := peerBestSnapshot(eng, s.Peers)
	delta, err := eng.Apply(sc)
	if err != nil {
		return nil, err
	}
	rep := &WhatIfReport{
		Scenario:        sc,
		Delta:           delta,
		PeerBestChanged: make(map[bgp.ASN]int, len(s.Peers)),
	}
	after := peerBestSnapshot(eng, s.Peers)
	for _, peer := range s.Peers {
		rep.PeerBestChanged[peer] = diffBestViews(beforeBest[peer], after[peer])
	}
	for _, rd := range delta.ReachDeltas {
		if rd.After < rd.Before {
			rep.LostReach += rd.Before - rd.After
		} else {
			rep.GainedReach += rd.After - rd.Before
		}
	}
	return rep, nil
}

// peerBestSnapshot captures each peer's best-route view as rendered
// strings (path + preference), cheap to diff.
func peerBestSnapshot(eng *simulate.Engine, peers []bgp.ASN) map[bgp.ASN]map[netx.Prefix]string {
	res := eng.Result()
	out := make(map[bgp.ASN]map[netx.Prefix]string, len(peers))
	for _, peer := range peers {
		rib := res.Tables[peer]
		if rib == nil {
			continue
		}
		view := make(map[netx.Prefix]string, rib.Len())
		rib.EachBest(func(p netx.Prefix, r *bgp.Route) {
			view[p] = r.String()
		})
		out[peer] = view
	}
	return out
}

func diffBestViews(before, after map[netx.Prefix]string) int {
	n := 0
	for p, b := range before {
		if a, ok := after[p]; !ok || a != b {
			n++
		}
	}
	for p := range after {
		if _, ok := before[p]; !ok {
			n++
		}
	}
	return n
}

// FailoverScenario is the canonical what-if: fail the link between a
// multihomed stub and its first provider. It returns the scenario plus
// the event's endpoints, or ok=false when the study has no multihomed
// stub.
func (s *Study) FailoverScenario() (simulate.Scenario, bgp.ASN, bgp.ASN, bool) {
	for _, asn := range s.Topo.Order {
		providers := s.Topo.Graph.Providers(asn)
		if len(providers) >= 2 && len(s.Topo.ASes[asn].Prefixes) > 0 {
			sc := simulate.Scenario{
				Name:   fmt.Sprintf("failover-%d-%d", asn, providers[0]),
				Events: []simulate.Event{simulate.FailLink(asn, providers[0])},
			}
			return sc, asn, providers[0], true
		}
	}
	return simulate.Scenario{}, 0, 0, false
}

// RenderWhatIf renders the report in the repro harness's table style:
// a summary header, the most-shifted prefixes, and the peers that saw
// their view change.
func RenderWhatIf(rep *WhatIfReport, maxRows int) *reports.Table {
	if maxRows <= 0 {
		maxRows = 10
	}
	name := rep.Scenario.Name
	if name == "" {
		name = fmt.Sprintf("%d event(s)", len(rep.Scenario.Events))
	}
	t := &reports.Table{
		Title: fmt.Sprintf("What-if %s: %d/%d prefixes re-converged, %d AS-level best shifts, reach -%d/+%d",
			name, rep.Delta.Recomputed, rep.Delta.TotalPrefixes,
			rep.Delta.ShiftedASes(), rep.LostReach, rep.GainedReach),
		Columns: []string{"Prefix", "Origin", "Shifted ASes", "Lost", "Gained"},
	}
	for i, sh := range rep.Delta.Shifts {
		if i >= maxRows {
			t.AddRow("...", "", fmt.Sprintf("(%d more)", len(rep.Delta.Shifts)-maxRows), "", "")
			break
		}
		t.AddRow(sh.Prefix.String(), fmt.Sprintf("AS%d", sh.Origin),
			fmt.Sprintf("%d", sh.Shifted), fmt.Sprintf("%d", sh.Lost), fmt.Sprintf("%d", sh.Gained))
	}
	return t
}

// RenderWhatIfPeers renders the per-peer view-change counts, peers with
// the largest shift first.
func RenderWhatIfPeers(rep *WhatIfReport, maxRows int) *reports.Table {
	if maxRows <= 0 {
		maxRows = 10
	}
	type row struct {
		peer bgp.ASN
		n    int
	}
	rows := make([]row, 0, len(rep.PeerBestChanged))
	for peer, n := range rep.PeerBestChanged {
		if n > 0 {
			rows = append(rows, row{peer, n})
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].n != rows[j].n {
			return rows[i].n > rows[j].n
		}
		return rows[i].peer < rows[j].peer
	})
	t := &reports.Table{
		Title:   fmt.Sprintf("Collector peers with changed best views: %d", len(rows)),
		Columns: []string{"Peer", "Changed best routes"},
	}
	for i, r := range rows {
		if i >= maxRows {
			t.AddRow("...", fmt.Sprintf("(%d more)", len(rows)-maxRows))
			break
		}
		t.AddRow(fmt.Sprintf("AS%d", r.peer), fmt.Sprintf("%d", r.n))
	}
	return t
}

// WriteWhatIf renders both what-if tables to w.
func WriteWhatIf(w io.Writer, rep *WhatIfReport, maxRows int) error {
	if _, err := RenderWhatIf(rep, maxRows).WriteTo(w); err != nil {
		return err
	}
	_, err := RenderWhatIfPeers(rep, maxRows).WriteTo(w)
	return err
}
