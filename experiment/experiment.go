// Package experiment is a typed catalog of named, parameterized
// analyses. Each experiment registers under a stable name with a typed
// parameter struct (decodable from JSON or key=value flags) and a typed
// result that both marshals to deterministic JSON and renders itself as
// text. The registry is generic over the context the experiments run
// against (policyscope instantiates it with *Session), so the catalog
// machinery carries no dependency on any particular study shape.
//
// The design follows the query-catalog pattern of related inference
// services (CAIDA's AS-relationship pipeline, catchment-query servers):
// one shared precomputed snapshot, many named queries over it.
package experiment

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"reflect"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Result is a computed experiment outcome. Implementations are plain
// data structs: they marshal to deterministic JSON via encoding/json
// (map keys are sorted, slices keep their order) and render themselves
// as text through Render.
type Result interface {
	// Render writes the human-readable report (tables/charts) to w.
	Render(w io.Writer) error
}

// Experiment describes one catalog entry. S is the query context
// (a session holding the shared precomputed artifacts).
type Experiment[S any] struct {
	// Name is the stable registry key ("table5", "whatif", ...).
	Name string
	// Title is the human-readable headline.
	Title string
	// Group classifies the entry ("table", "figure", "extension", ...).
	Group string
	// Order fixes the catalog iteration order (ascending, then Name).
	Order int
	// NeedsGroundTruth marks experiments that read generator ground
	// truth (topology annotations, full vantage tables) and therefore
	// cannot run against a snapshot-only dataset such as an imported
	// MRT table dump. Catalog consumers use it to filter; runners are
	// expected to return a typed error rather than panic.
	NeedsGroundTruth bool
	// NewParams returns a pointer to a freshly allocated parameter
	// struct carrying the experiment's defaults, or nil when the
	// experiment takes no parameters.
	NewParams func() any
	// Run executes the experiment. ctx carries cancellation from the
	// caller (a disconnected HTTP client, an interrupted CLI);
	// long-running experiments are expected to honor it. params is
	// either nil (use defaults) or a pointer of the type NewParams
	// returns.
	Run func(ctx context.Context, s S, params any) (Result, error)
}

// Info is the serializable catalog row (what a server lists).
type Info struct {
	Name             string `json:"name"`
	Title            string `json:"title"`
	Group            string `json:"group"`
	NeedsGroundTruth bool   `json:"needs_ground_truth,omitempty"`
	Params           any    `json:"params,omitempty"` // default parameter values
}

// Registry holds the catalog. The zero value is not usable; call
// NewRegistry.
type Registry[S any] struct {
	mu     sync.RWMutex
	byName map[string]*Experiment[S]
}

// NewRegistry returns an empty registry.
func NewRegistry[S any]() *Registry[S] {
	return &Registry[S]{byName: make(map[string]*Experiment[S])}
}

// MustRegister adds an experiment, panicking on an empty name, a
// duplicate, or a missing Run function — registration happens at init
// time, where a panic is a build error.
func (r *Registry[S]) MustRegister(e Experiment[S]) {
	if e.Name == "" {
		panic("experiment: registering with empty name")
	}
	if e.Run == nil {
		panic("experiment: " + e.Name + " has no Run function")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[e.Name]; dup {
		panic("experiment: duplicate registration of " + e.Name)
	}
	r.byName[e.Name] = &e
}

// Get returns the experiment registered under name.
func (r *Registry[S]) Get(name string) (*Experiment[S], bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.byName[name]
	return e, ok
}

// All returns every experiment ordered by (Order, Name).
func (r *Registry[S]) All() []*Experiment[S] {
	r.mu.RLock()
	out := make([]*Experiment[S], 0, len(r.byName))
	for _, e := range r.byName {
		out = append(out, e)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Order != out[j].Order {
			return out[i].Order < out[j].Order
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Names returns every registered name in catalog order.
func (r *Registry[S]) Names() []string {
	all := r.All()
	out := make([]string, len(all))
	for i, e := range all {
		out[i] = e.Name
	}
	return out
}

// Infos returns the serializable catalog with default parameters.
func (r *Registry[S]) Infos() []Info {
	all := r.All()
	out := make([]Info, len(all))
	for i, e := range all {
		out[i] = Info{Name: e.Name, Title: e.Title, Group: e.Group, NeedsGroundTruth: e.NeedsGroundTruth}
		if e.NewParams != nil {
			out[i].Params = e.NewParams()
		}
	}
	return out
}

// NotFoundError reports a name with no registration.
type NotFoundError struct{ Name string }

func (e *NotFoundError) Error() string {
	return fmt.Sprintf("experiment: unknown experiment %q", e.Name)
}

// ParamError reports unusable parameters (bad JSON, unknown field...).
type ParamError struct {
	Name string
	Err  error
}

func (e *ParamError) Error() string {
	return fmt.Sprintf("experiment %s: bad params: %v", e.Name, e.Err)
}

func (e *ParamError) Unwrap() error { return e.Err }

// RunJSON runs the named experiment with parameters decoded strictly
// from raw (empty raw, "null" or "{}" keep the defaults).
func (r *Registry[S]) RunJSON(ctx context.Context, s S, name string, raw []byte) (Result, error) {
	e, ok := r.Get(name)
	if !ok {
		return nil, &NotFoundError{Name: name}
	}
	params, err := e.decodeJSON(raw)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return e.Run(ctx, s, params)
}

// DecodeJSONParams resolves the named experiment and decodes raw JSON
// parameters (strict; empty raw, "null" or "{}" keep the defaults)
// without running anything — the JSON twin of DecodeKV, letting
// callers funnel every wire form through one Run entry point.
func (r *Registry[S]) DecodeJSONParams(name string, raw []byte) (any, error) {
	e, ok := r.Get(name)
	if !ok {
		return nil, &NotFoundError{Name: name}
	}
	return e.decodeJSON(raw)
}

// decodeJSON materializes the default parameters and applies a strict
// JSON decode over them.
func (e *Experiment[S]) decodeJSON(raw []byte) (any, error) {
	var params any
	if e.NewParams != nil {
		params = e.NewParams()
		if len(bytes.TrimSpace(raw)) > 0 {
			if err := DecodeJSON(params, raw); err != nil {
				return nil, &ParamError{Name: e.Name, Err: err}
			}
		}
	} else if len(bytes.TrimSpace(raw)) > 0 && !bytes.Equal(bytes.TrimSpace(raw), []byte("null")) &&
		!bytes.Equal(bytes.TrimSpace(raw), []byte("{}")) {
		return nil, &ParamError{Name: e.Name, Err: fmt.Errorf("experiment takes no parameters")}
	}
	return params, nil
}

// RunKV runs the named experiment with key=value parameter overrides
// (the CLI flag form).
func (r *Registry[S]) RunKV(ctx context.Context, s S, name string, kv []string) (Result, error) {
	e, ok := r.Get(name)
	if !ok {
		return nil, &NotFoundError{Name: name}
	}
	params, err := e.decodeKV(kv)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return e.Run(ctx, s, params)
}

// DecodeKV resolves the named experiment and decodes key=value
// overrides into its parameter struct without running anything — the
// fail-fast validation a CLI performs before paying for its dataset.
func (r *Registry[S]) DecodeKV(name string, kv []string) (any, error) {
	e, ok := r.Get(name)
	if !ok {
		return nil, &NotFoundError{Name: name}
	}
	return e.decodeKV(kv)
}

// decodeKV materializes the default parameters and applies key=value
// overrides.
func (e *Experiment[S]) decodeKV(kv []string) (any, error) {
	var params any
	if e.NewParams != nil {
		params = e.NewParams()
	}
	if len(kv) > 0 {
		if params == nil {
			return nil, &ParamError{Name: e.Name, Err: fmt.Errorf("experiment takes no parameters")}
		}
		for _, pair := range kv {
			key, value, found := strings.Cut(pair, "=")
			if !found {
				return nil, &ParamError{Name: e.Name, Err: fmt.Errorf("want key=value, got %q", pair)}
			}
			if err := Set(params, key, value); err != nil {
				return nil, &ParamError{Name: e.Name, Err: err}
			}
		}
	}
	return params, nil
}

// DecodeJSON decodes raw strictly (unknown fields rejected) into the
// parameter struct params points to.
func DecodeJSON(params any, raw []byte) error {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(params); err != nil {
		return err
	}
	return nil
}

// Set assigns one field of the parameter struct params points to,
// addressed by its JSON tag (falling back to the Go field name,
// case-insensitively). Scalar fields parse the value directly; any
// other field type takes a JSON literal.
func Set(params any, key, value string) error {
	rv := reflect.ValueOf(params)
	if rv.Kind() != reflect.Pointer || rv.IsNil() {
		return fmt.Errorf("params must be a non-nil pointer")
	}
	rv = rv.Elem()
	if rv.Kind() != reflect.Struct {
		return fmt.Errorf("params must point to a struct")
	}
	field, name := fieldByKey(rv, key)
	if !field.IsValid() {
		return fmt.Errorf("unknown parameter %q (have %s)", key, strings.Join(paramKeys(rv), ", "))
	}
	switch field.Kind() {
	case reflect.String:
		field.SetString(value)
	case reflect.Bool:
		b, err := strconv.ParseBool(value)
		if err != nil {
			return fmt.Errorf("parameter %s: %v", name, err)
		}
		field.SetBool(b)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		n, err := strconv.ParseInt(value, 10, field.Type().Bits())
		if err != nil {
			return fmt.Errorf("parameter %s: %v", name, err)
		}
		field.SetInt(n)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		n, err := strconv.ParseUint(value, 10, field.Type().Bits())
		if err != nil {
			return fmt.Errorf("parameter %s: %v", name, err)
		}
		field.SetUint(n)
	case reflect.Float32, reflect.Float64:
		f, err := strconv.ParseFloat(value, field.Type().Bits())
		if err != nil {
			return fmt.Errorf("parameter %s: %v", name, err)
		}
		field.SetFloat(f)
	default:
		if err := json.Unmarshal([]byte(value), field.Addr().Interface()); err != nil {
			return fmt.Errorf("parameter %s: %v", name, err)
		}
	}
	return nil
}

// fieldByKey resolves a settable struct field by JSON tag or field name.
func fieldByKey(rv reflect.Value, key string) (reflect.Value, string) {
	t := rv.Type()
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() {
			continue
		}
		if strings.EqualFold(jsonName(f), key) || strings.EqualFold(f.Name, key) {
			return rv.Field(i), jsonName(f)
		}
	}
	return reflect.Value{}, ""
}

// paramKeys lists the settable parameter names for error messages.
func paramKeys(rv reflect.Value) []string {
	t := rv.Type()
	out := make([]string, 0, t.NumField())
	for i := 0; i < t.NumField(); i++ {
		if f := t.Field(i); f.IsExported() {
			out = append(out, jsonName(f))
		}
	}
	return out
}

func jsonName(f reflect.StructField) string {
	tag := f.Tag.Get("json")
	if tag == "" || tag == "-" {
		return f.Name
	}
	name, _, _ := strings.Cut(tag, ",")
	if name == "" {
		return f.Name
	}
	return name
}
