package experiment

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"
)

type fakeSession struct{ calls int }

type echoParams struct {
	N     int     `json:"n"`
	Name  string  `json:"name"`
	Share float64 `json:"share"`
	Deep  []int   `json:"deep"`
}

type echoResult struct {
	Params echoParams `json:"params"`
}

func (r echoResult) Render(w io.Writer) error {
	_, err := fmt.Fprintf(w, "n=%d name=%s\n", r.Params.N, r.Params.Name)
	return err
}

func testRegistry() *Registry[*fakeSession] {
	r := NewRegistry[*fakeSession]()
	r.MustRegister(Experiment[*fakeSession]{
		Name:  "echo",
		Title: "echoes its params",
		Group: "test",
		Order: 2,
		NewParams: func() any {
			return &echoParams{N: 7, Name: "default", Share: 0.5}
		},
		Run: func(_ context.Context, s *fakeSession, params any) (Result, error) {
			s.calls++
			return echoResult{Params: *params.(*echoParams)}, nil
		},
	})
	r.MustRegister(Experiment[*fakeSession]{
		Name:  "bare",
		Title: "takes no params",
		Group: "test",
		Order: 1,
		Run: func(context.Context, *fakeSession, any) (Result, error) {
			return echoResult{}, nil
		},
	})
	return r
}

func TestRegistryOrderAndLookup(t *testing.T) {
	r := testRegistry()
	if names := r.Names(); len(names) != 2 || names[0] != "bare" || names[1] != "echo" {
		t.Fatalf("names = %v", names)
	}
	if _, ok := r.Get("echo"); !ok {
		t.Fatal("echo not found")
	}
	if _, ok := r.Get("nope"); ok {
		t.Fatal("phantom experiment")
	}
	infos := r.Infos()
	if infos[1].Name != "echo" || infos[1].Params.(*echoParams).N != 7 {
		t.Fatalf("infos = %+v", infos)
	}
}

func TestMustRegisterPanics(t *testing.T) {
	for _, e := range []Experiment[*fakeSession]{
		{Name: "", Run: func(context.Context, *fakeSession, any) (Result, error) { return nil, nil }},
		{Name: "norun"},
		{Name: "echo", Run: func(context.Context, *fakeSession, any) (Result, error) { return nil, nil }},
	} {
		r := testRegistry()
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic registering %+v", e)
				}
			}()
			r.MustRegister(e)
		}()
	}
}

func TestRunJSON(t *testing.T) {
	r := testRegistry()
	sess := &fakeSession{}
	res, err := r.RunJSON(context.Background(), sess, "echo", []byte(`{"n": 3, "deep": [1, 2]}`))
	if err != nil {
		t.Fatal(err)
	}
	got := res.(echoResult).Params
	if got.N != 3 || got.Name != "default" || len(got.Deep) != 2 {
		t.Fatalf("params = %+v (defaults must survive partial JSON)", got)
	}
	// Defaults when body empty.
	res, err = r.RunJSON(context.Background(), sess, "echo", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.(echoResult).Params.N != 7 {
		t.Fatalf("defaults not applied: %+v", res)
	}
	// Unknown field rejected.
	if _, err := r.RunJSON(context.Background(), sess, "echo", []byte(`{"bogus": 1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	// Unknown experiment is a typed error.
	var nf *NotFoundError
	if _, err := r.RunJSON(context.Background(), sess, "nope", nil); !errors.As(err, &nf) {
		t.Fatalf("want NotFoundError, got %v", err)
	}
	// Param-less experiment rejects a non-empty body...
	if _, err := r.RunJSON(context.Background(), sess, "bare", []byte(`{"n": 1}`)); err == nil {
		t.Fatal("bare accepted params")
	}
	// ...but tolerates an empty object.
	if _, err := r.RunJSON(context.Background(), sess, "bare", []byte(` {} `)); err != nil {
		t.Fatal(err)
	}
}

func TestRunKVAndSet(t *testing.T) {
	r := testRegistry()
	sess := &fakeSession{}
	res, err := r.RunKV(context.Background(), sess, "echo", []string{"n=9", "name=kv", "share=0.25", "deep=[4,5,6]"})
	if err != nil {
		t.Fatal(err)
	}
	got := res.(echoResult).Params
	if got.N != 9 || got.Name != "kv" || got.Share != 0.25 || len(got.Deep) != 3 {
		t.Fatalf("params = %+v", got)
	}
	// Field-name fallback, case-insensitively.
	p := &echoParams{}
	if err := Set(p, "N", "4"); err != nil || p.N != 4 {
		t.Fatalf("Set by field name: %v %+v", err, p)
	}
	if err := Set(p, "bogus", "1"); err == nil || !strings.Contains(err.Error(), "unknown parameter") {
		t.Fatalf("unknown key error = %v", err)
	}
	if _, err := r.RunKV(context.Background(), sess, "echo", []string{"not-a-pair"}); err == nil {
		t.Fatal("malformed pair accepted")
	}
	if _, err := r.RunKV(context.Background(), sess, "bare", []string{"n=1"}); err == nil {
		t.Fatal("param-less experiment accepted kv")
	}
}

func TestRunHonorsCanceledContext(t *testing.T) {
	r := testRegistry()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sess := &fakeSession{}
	if _, err := r.RunJSON(ctx, sess, "echo", nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if sess.calls != 0 {
		t.Fatal("experiment ran despite canceled context")
	}
	if _, err := r.RunKV(ctx, sess, "echo", nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestResultRenders(t *testing.T) {
	r := testRegistry()
	res, err := r.RunJSON(context.Background(), &fakeSession{}, "echo", nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "n=7") {
		t.Fatalf("render output %q", buf.String())
	}
}
