package policyscope

// inferops.go implements the inference-bakeoff experiments over the
// infer registry: inferbakeoff runs the registered algorithms side by
// side (scored against ground truth on demand, pairwise-agreement
// matrixed always), and inferensemble samples concrete relationship
// assignments from a probabilistic algorithm's posterior and pushes
// each through the convergence engine and sweep executor to put spread
// bars on the downstream metrics. Registration lives in registry.go,
// result types in results.go.

import (
	"context"
	"fmt"
	"math"

	"github.com/policyscope/policyscope/experiment"
	"github.com/policyscope/policyscope/infer"
	"github.com/policyscope/policyscope/internal/asgraph"
	"github.com/policyscope/policyscope/internal/atoms"
	"github.com/policyscope/policyscope/internal/routeviews"
	"github.com/policyscope/policyscope/internal/simulate"
	"github.com/policyscope/policyscope/internal/sweep"
)

// runInferBakeoff executes the bakeoff: every selected algorithm over
// the session's observed paths, summarized, optionally scored, and
// pairwise-compared. The default (unscored) result depends only on the
// collector snapshot, so it is byte-identical between a synthetic
// study and an MRT import of its snapshot like every other
// snapshot-capable experiment.
func runInferBakeoff(ctx context.Context, se *Session, p InferBakeoffParams) (experiment.Result, error) {
	algos := p.Algos
	if len(algos) == 0 {
		algos = infer.Default.Names()
	}
	// Validate every name before any study work.
	entries := make(map[string]*infer.Algorithm[infer.Input], len(algos))
	for _, name := range algos {
		a, ok := infer.Default.Get(name)
		if !ok {
			return nil, &experiment.ParamError{Name: "inferbakeoff",
				Err: &infer.NotFoundError{Name: name}}
		}
		entries[name] = a
	}
	s, err := se.Study()
	if err != nil {
		return nil, err
	}
	if p.Score && !s.HasGroundTruth() {
		return nil, &NeedsGroundTruthError{Op: "inferbakeoff scoring"}
	}
	res := &InferBakeoffResult{Scored: p.Score, Paths: len(s.SnapshotPaths())}
	outs := make(map[string]*infer.Output, len(algos))
	for _, name := range algos {
		out, err := se.Infer(ctx, name, nil)
		if err != nil {
			return nil, err
		}
		outs[name] = out
		row := InferAlgoSummary{
			Name:          name,
			Probabilistic: entries[name].Probabilistic,
			ASes:          out.Graph.NumNodes(),
			Edges:         out.Graph.NumEdges(),
		}
		for _, e := range out.Graph.Edges() {
			switch e.Rel {
			case asgraph.RelPeer:
				row.P2P++
			case asgraph.RelSibling:
				row.Siblings++
			default:
				row.P2C++
			}
		}
		if p.Score {
			row.Score = infer.Score(out.Graph, s.Topo.Graph)
		}
		res.Algorithms = append(res.Algorithms, row)
	}
	for i, a := range algos {
		for _, b := range algos[i+1:] {
			res.Agreement = append(res.Agreement, InferAgreementCell{
				A: a, B: b, Agreement: infer.Agree(outs[a].Graph, outs[b].Graph),
			})
		}
	}
	return res, nil
}

// ensembleSweepSpec is the per-sample blast-radius probe: the first max
// single-link failures in canonical edge order, identical for every
// sample because relationship flips never change the adjacency.
func ensembleSweepSpec(max int) sweep.Spec {
	return sweep.Spec{
		Name:       "ensemble-single-link-failures",
		Generators: []sweep.Generator{{Kind: sweep.KindAllSingleLinkFailures, Max: max}},
	}
}

// overlayRelationships rewrites g's annotations to match the sampled
// graph wherever both carry the edge, returning how many edges
// changed. Unobserved edges keep their original annotation: the sample
// only expresses beliefs about links the paths actually crossed.
func overlayRelationships(g, sampled *asgraph.Graph) (int, error) {
	flipped := 0
	for _, e := range sampled.Edges() {
		cur := g.Rel(e.A, e.B)
		if cur == asgraph.RelNone || cur == e.Rel {
			continue
		}
		g.RemoveEdge(e.A, e.B)
		if err := g.AddEdge(e.A, e.B, e.Rel); err != nil {
			return flipped, fmt.Errorf("policyscope: ensemble overlay %d-%d: %w", e.A, e.B, err)
		}
		flipped++
	}
	return flipped, nil
}

// runInferEnsemble executes the posterior-ensemble experiment.
func runInferEnsemble(ctx context.Context, se *Session, p InferEnsembleParams) (experiment.Result, error) {
	if p.Algo == "" {
		p.Algo = "pari"
	}
	if p.Samples <= 0 {
		p.Samples = 5
	}
	if p.Samples > 64 {
		p.Samples = 64
	}
	a, ok := infer.Default.Get(p.Algo)
	if !ok {
		return nil, &experiment.ParamError{Name: "inferensemble",
			Err: &infer.NotFoundError{Name: p.Algo}}
	}
	if !a.Probabilistic {
		return nil, &experiment.ParamError{Name: "inferensemble",
			Err: fmt.Errorf("algorithm %q has no posterior to sample", p.Algo)}
	}
	s, err := se.Study()
	if err != nil {
		return nil, err
	}
	out, err := se.Infer(ctx, p.Algo, nil)
	if err != nil {
		return nil, err
	}
	res := &InferEnsembleResult{
		Algo: p.Algo, Seed: p.Seed, SweepMax: p.SweepMax,
		PosteriorEdges: len(out.Posterior),
	}

	// Base row: the study's own converged state and (when sweeping) the
	// pristine base engine.
	baseStats := atoms.Compute(s.Snapshot.Table, s.Peers).Stats()
	res.Base = EnsembleSample{
		Index: -1, Seed: 0,
		Atoms: baseStats.Atoms, MultiPrefixAtoms: baseStats.MultiPrefixAtoms,
	}
	if p.SweepMax > 0 {
		baseEng, err := se.baseEngine()
		if err != nil {
			return nil, err
		}
		scenarios, err := sweep.Expand(ctx, baseEng.Topology(), ensembleSweepSpec(p.SweepMax))
		if err != nil {
			return nil, err
		}
		res.SweepScenarios = len(scenarios)
		agg, err := sweep.Run(ctx, baseEng, scenarios, sweep.Options{Workers: p.Workers})
		if err != nil {
			return nil, err
		}
		res.Base.SweepShiftedASes = agg.ShiftedASes
		res.Base.SweepLostReachPairs = agg.LostReachPairs
	}

	graphs := infer.SampleEnsemble(out.Posterior, p.Seed, p.Samples)
	for i, g := range graphs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		topo := s.Topo.Clone()
		flipped, err := overlayRelationships(topo.Graph, g)
		if err != nil {
			return nil, err
		}
		eng, err := simulate.NewEngine(topo, simulate.Options{
			VantagePoints: s.Peers,
			Parallelism:   s.Config.Parallelism,
			Intern:        s.Intern,
		})
		if err != nil {
			return nil, err
		}
		row := EnsembleSample{
			Index: i, Seed: p.Seed + int64(i),
			FlippedEdges: flipped, Unconverged: eng.UnconvergedCount(),
		}
		snap, err := routeviews.Collect(eng.Result(), s.Peers, 0)
		if err != nil {
			return nil, err
		}
		st := atoms.Compute(snap.Table, s.Peers).Stats()
		row.Atoms = st.Atoms
		row.MultiPrefixAtoms = st.MultiPrefixAtoms
		if p.SweepMax > 0 {
			scenarios, err := sweep.Expand(ctx, eng.Topology(), ensembleSweepSpec(p.SweepMax))
			if err != nil {
				return nil, err
			}
			agg, err := sweep.Run(ctx, eng, scenarios, sweep.Options{Workers: p.Workers})
			if err != nil {
				return nil, err
			}
			row.SweepShiftedASes = agg.ShiftedASes
			row.SweepLostReachPairs = agg.LostReachPairs
		}
		res.Samples = append(res.Samples, row)
	}
	res.Spread = ensembleSpread(res.Samples, res.Base)
	return res, nil
}

// ensembleSpread summarizes min/mean/max/stddev (population) per
// metric across the samples, with the base value alongside.
func ensembleSpread(samples []EnsembleSample, base EnsembleSample) []EnsembleSpread {
	metrics := []struct {
		name string
		get  func(EnsembleSample) float64
	}{
		{"flipped_edges", func(r EnsembleSample) float64 { return float64(r.FlippedEdges) }},
		{"unconverged", func(r EnsembleSample) float64 { return float64(r.Unconverged) }},
		{"atoms", func(r EnsembleSample) float64 { return float64(r.Atoms) }},
		{"multi_prefix_atoms", func(r EnsembleSample) float64 { return float64(r.MultiPrefixAtoms) }},
		{"sweep_shifted_ases", func(r EnsembleSample) float64 { return float64(r.SweepShiftedASes) }},
		{"sweep_lost_reach_pairs", func(r EnsembleSample) float64 { return float64(r.SweepLostReachPairs) }},
	}
	out := make([]EnsembleSpread, 0, len(metrics))
	for _, m := range metrics {
		sp := EnsembleSpread{Metric: m.name, Base: m.get(base)}
		if len(samples) == 0 {
			out = append(out, sp)
			continue
		}
		sp.Min = math.Inf(1)
		sp.Max = math.Inf(-1)
		var sum float64
		for _, r := range samples {
			v := m.get(r)
			sum += v
			sp.Min = math.Min(sp.Min, v)
			sp.Max = math.Max(sp.Max, v)
		}
		sp.Mean = sum / float64(len(samples))
		var varsum float64
		for _, r := range samples {
			d := m.get(r) - sp.Mean
			varsum += d * d
		}
		sp.StdDev = math.Sqrt(varsum / float64(len(samples)))
		out = append(out, sp)
	}
	return out
}
