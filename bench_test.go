package policyscope

// The benchmark harness: one benchmark per table and figure of the
// paper (regenerating the experiment from a shared converged study), the
// decision-process/propagation ablations, and the scenario-engine
// benchmarks comparing incremental re-convergence against full
// resimulation (snapshot them with scripts/bench_scenario.sh). Run with:
//
//	go test -bench=. -benchmem .

import (
	"context"
	"io"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/policyscope/policyscope/internal/bgp"
	"github.com/policyscope/policyscope/internal/core"
	"github.com/policyscope/policyscope/internal/gaorelation"
	"github.com/policyscope/policyscope/internal/simulate"
	"github.com/policyscope/policyscope/internal/sweep"
	"github.com/policyscope/policyscope/internal/topogen"
)

var (
	benchOnce  sync.Once
	benchStudy *Study
)

// sharedStudy amortizes generation+simulation across benchmarks; each
// benchmark then measures its experiment's analysis cost.
func sharedStudy(b *testing.B) *Study {
	b.Helper()
	benchOnce.Do(func() {
		cfg := DefaultConfig()
		cfg.NumASes = 800
		cfg.Seed = 42
		cfg.CollectorPeers = 24
		cfg.LookingGlassASes = 12
		s, err := NewStudy(cfg)
		if err != nil {
			b.Fatalf("study: %v", err)
		}
		benchStudy = s
	})
	if benchStudy == nil {
		b.Skip("study construction failed earlier")
	}
	return benchStudy
}

func BenchmarkTable1Dataset(b *testing.B) {
	s := sharedStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rows := s.Table1Dataset(); len(rows) == 0 {
			b.Fatal("empty dataset")
		}
	}
}

func BenchmarkTable2TypicalLocalPref(b *testing.B) {
	s := sharedStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rows := s.Table2TypicalLocalPref(); len(rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkTable3IRRLocalPref(b *testing.B) {
	s := sharedStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rows := s.Table3IRR(Table3Options{}); len(rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkTable4RelVerification(b *testing.B) {
	s := sharedStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rows := s.Table4Verification(9); len(rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkTable5SAPrefixes(b *testing.B) {
	s := sharedStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rows := s.Table5SAPrefixes(); len(rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkTable6CustomerSA(b *testing.B) {
	s := sharedStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Table6CustomerView(3, 8, 2)
	}
}

func BenchmarkTable7SAVerification(b *testing.B) {
	s := sharedStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rows := s.Table7Verification(3); len(rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkTable8Multihoming(b *testing.B) {
	s := sharedStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rows := s.Table8Multihoming(3); len(rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkTable9SplitAggregate(b *testing.B) {
	s := sharedStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rows := s.Table9SplitAggregate(3); len(rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkTable10PeerExport(b *testing.B) {
	s := sharedStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rows := s.Table10PeerExport(3); len(rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkTable11CommunityScheme(b *testing.B) {
	s := sharedStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Table11Scheme()
	}
}

func BenchmarkFig2aNextHopConsistency(b *testing.B) {
	s := sharedStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rows := s.Figure2aConsistency(); len(rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkFig2bRouterConsistency(b *testing.B) {
	s := sharedStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := s.Figure2bRouterConsistency(30, 4)
		if err != nil || len(rows) != 30 {
			b.Fatalf("rows %d err %v", len(rows), err)
		}
	}
}

func BenchmarkFig6Persistence(b *testing.B) {
	s := sharedStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.Figure6and7Persistence(PersistenceOptions{Epochs: 5, ChurnFraction: 0.03})
		if err != nil || len(res.Points) != 5 {
			b.Fatalf("points %d err %v", len(res.Points), err)
		}
	}
}

func BenchmarkFig7Uptime(b *testing.B) {
	s := sharedStudy(b)
	res, err := s.Figure6and7Persistence(PersistenceOptions{Epochs: 5, ChurnFraction: 0.03})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if hist := res.UptimeHistogram(); len(hist) == 0 {
			b.Fatal("empty histogram")
		}
	}
}

func BenchmarkFig9NeighborRank(b *testing.B) {
	s := sharedStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ranks := s.Figure9NeighborRanks(3); len(ranks) == 0 {
			b.Fatal("empty ranks")
		}
	}
}

// ---- scenario engine ------------------------------------------------------

// BenchmarkScenarioIncremental measures the scenario engine's
// incremental re-convergence for a single link failure (alternating
// failure and restoration so every iteration starts from a converged
// state). The subject is Study.FailoverScenario's — the same what-if
// RunAll reports. Compare against BenchmarkScenarioFullResim: the
// acceptance bar for the incremental path is a ≥5× speedup.
func BenchmarkScenarioIncremental(b *testing.B) {
	s := sharedStudy(b)
	fail, stub, provider, ok := s.FailoverScenario()
	if !ok {
		b.Fatal("no failover subject")
	}
	rel := s.Topo.Graph.Rel(stub, provider)
	eng, err := simulate.NewEngine(s.Topo, simulate.Options{
		VantagePoints: s.Peers,
		Parallelism:   s.Config.Parallelism,
	})
	if err != nil {
		b.Fatal(err)
	}
	restore := simulate.Scenario{Events: []simulate.Event{simulate.RestoreLink(stub, provider, rel)}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc := fail
		if i%2 == 1 {
			sc = restore
		}
		if _, err := eng.Apply(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScenarioFullResim is the baseline the incremental path is
// judged against: the same single-link-failure what-if answered by
// resimulating the mutated topology from scratch.
func BenchmarkScenarioFullResim(b *testing.B) {
	s := sharedStudy(b)
	fail, _, _, ok := s.FailoverScenario()
	if !ok {
		b.Fatal("no failover subject")
	}
	mutated := s.Topo.Clone()
	if err := fail.ApplyToTopology(mutated); err != nil {
		b.Fatal(err)
	}
	opts := simulate.Options{VantagePoints: s.Peers, Parallelism: s.Config.Parallelism}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := simulate.Run(mutated, opts)
		if err != nil || len(res.Tables) == 0 {
			b.Fatalf("err %v", err)
		}
	}
}

// ---- sweep fleet ----------------------------------------------------------

var (
	sweepBenchOnce      sync.Once
	sweepBenchBase      *simulate.Engine
	sweepBenchScenarios []simulate.Scenario
)

// sharedSweep memoizes the 800-AS base engine and the full
// all-single-link-failures scenario list the sweep benchmarks share.
func sharedSweep(b *testing.B) (*simulate.Engine, []simulate.Scenario) {
	s := sharedStudy(b)
	sweepBenchOnce.Do(func() {
		base, err := simulate.NewEngine(s.Topo, simulate.Options{VantagePoints: s.Peers})
		if err != nil {
			b.Fatalf("engine: %v", err)
		}
		scenarios, err := sweep.Expand(context.Background(), base.Topology(), sweep.Spec{
			Generators: []sweep.Generator{{Kind: sweep.KindAllSingleLinkFailures}},
		})
		if err != nil {
			b.Fatalf("expand: %v", err)
		}
		sweepBenchBase, sweepBenchScenarios = base, scenarios
	})
	if sweepBenchBase == nil {
		b.Skip("sweep setup failed earlier")
	}
	return sweepBenchBase, sweepBenchScenarios
}

// BenchmarkSweepSerialEngine is the pre-existing batch path: answering
// each sweep scenario with its own full engine (one complete
// resimulation per scenario — what running the fleet through
// cmd/simulate -scenario or Study.WhatIf per scenario costs). ns/op is
// the serial per-scenario price the sweep executor is judged against.
// The full sweep is infeasible at ~4.5s per scenario, so -benchtime
// sizes a sample, strided across the scenario list to avoid the
// low-ASN tier-1 links the canonical ordering fronts; the cost is
// dominated by the full resimulation, which is scenario-independent.
func BenchmarkSweepSerialEngine(b *testing.B) {
	s := sharedStudy(b)
	_, scenarios := sharedSweep(b)
	opts := simulate.Options{VantagePoints: s.Peers}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng, err := simulate.NewEngine(s.Topo, opts)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := sweep.Apply(eng, scenarios[(i*serialSampleStride)%len(scenarios)], 3); err != nil {
			b.Fatal(err)
		}
	}
}

// serialSampleStride spreads the serial sample across the scenario
// list (prime, so it cycles any realistic scenario count).
const serialSampleStride = 997

// benchmarkSweepExecutor runs the full all-single-link-failures sweep
// per op and additionally reports the per-scenario cost, the number the
// bench script compares across worker counts and against the serial
// baseline (scripts/bench_sweep.sh → BENCH_sweep.json). utilization is
// sum(per-worker busy time) / (workers × wall): ~1.0 means the shards
// computed the whole time, lower means workers idled — the diagnostic
// that tells contention apart from "machine has fewer cores than -j".
func benchmarkSweepExecutor(b *testing.B, workers int) {
	base, scenarios := sharedSweep(b)
	var busy atomic.Int64
	opts := sweep.Options{Workers: workers, OnWorkerDone: func(ws sweep.WorkerStats) {
		busy.Add(int64(ws.Busy))
	}}
	effective := opts.EffectiveWorkers(len(scenarios))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agg, err := sweep.Run(context.Background(), base, scenarios, opts)
		if err != nil {
			b.Fatal(err)
		}
		if agg.Scenarios != len(scenarios) {
			b.Fatalf("ran %d of %d scenarios", agg.Scenarios, len(scenarios))
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(scenarios)), "ns/scenario")
	b.ReportMetric(float64(len(scenarios)), "scenarios")
	b.ReportMetric(float64(busy.Load())/float64(b.Elapsed().Nanoseconds()*int64(effective)), "utilization")
}

func BenchmarkSweepExecutorJ1(b *testing.B) { benchmarkSweepExecutor(b, 1) }

func BenchmarkSweepExecutorJ8(b *testing.B) { benchmarkSweepExecutor(b, 8) }

// ---- session serving ------------------------------------------------------

// BenchmarkSessionConcurrentQueries measures mixed-query throughput on
// one shared Session — the policyscoped serving pattern. Each op is one
// registry query, rotating through cheap table scans, path-index-heavy
// verification analyses and what-if scenarios answered on copy-on-write
// engine clones; ops run from parallel goroutines. Snapshot with
// scripts/bench_query.sh → BENCH_query.json.
func BenchmarkSessionConcurrentQueries(b *testing.B) {
	s := sharedStudy(b)
	se := NewSessionFromStudy(s)
	queries := []struct {
		name   string
		params any
	}{
		{"table2", nil},
		{"table5", nil},
		{"table7", &ProvidersParams{Providers: 3}},
		{"case3", &ProvidersParams{Providers: 3}},
		{"table10", &ProvidersParams{Providers: 3}},
		{"atoms", nil},
		{"decision", nil},
		{"whatif", &WhatIfParams{MaxRows: 5}},
	}
	// Warm the lazy gates (path index, base what-if engine) so the
	// benchmark measures steady-state throughput, not first-touch
	// construction.
	for _, q := range queries {
		if _, err := se.Run(context.Background(), q.name, q.params); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			q := queries[i%len(queries)]
			i++
			if _, err := se.Run(context.Background(), q.name, q.params); err != nil {
				// b.Fatal must not run off the benchmark goroutine.
				b.Error(err)
				return
			}
		}
	})
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
}

// ---- ablations ------------------------------------------------------------

// BenchmarkAblationDecisionProcess compares full 7-step selection against
// a localpref-only truncation across the whole propagation.
func BenchmarkAblationDecisionProcess(b *testing.B) {
	topo, err := topogen.Generate(topogen.DefaultConfig(300, 9))
	if err != nil {
		b.Fatal(err)
	}
	vantage := topo.Order[:8]
	for _, bench := range []struct {
		name  string
		depth bgp.DecisionStep
	}{
		{"full7step", 0},
		{"localprefOnly", bgp.StepLocalPref},
		{"pathLength", bgp.StepASPathLen},
	} {
		b.Run(bench.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := simulate.Run(topo, simulate.Options{
					VantagePoints: vantage,
					DecisionDepth: bench.depth,
				})
				if err != nil || len(res.Tables) == 0 {
					b.Fatalf("err %v", err)
				}
			}
		})
	}
}

// BenchmarkAblationBestVsAllRoutes compares the paper's best-routes-only
// SA detection against scanning full candidate sets.
func BenchmarkAblationBestVsAllRoutes(b *testing.B) {
	s := sharedStudy(b)
	a := &core.ExportAnalyzer{Graph: s.Graph}
	peer := s.TierOneVantages(1)[0]
	b.Run("bestOnly", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res := a.SAPrefixes(s.PeerView(peer))
			if res.ConePrefixes == 0 {
				b.Fatal("empty cone")
			}
		}
	})
	b.Run("allCandidates", func(b *testing.B) {
		rib := s.Result.Tables[peer]
		for i := 0; i < b.N; i++ {
			// Build a view per candidate rank and run detection on each:
			// the cost of not exploiting the best-route observation.
			n := 0
			for _, prefix := range rib.Prefixes() {
				for range rib.Candidates(prefix) {
					n++
				}
			}
			view := core.ViewFromRIB(rib)
			res := a.SAPrefixes(view)
			if res.ConePrefixes == 0 || n == 0 {
				b.Fatal("empty")
			}
		}
	})
}

// BenchmarkAblationRelationshipSource compares SA detection driven by
// ground truth against Gao-inferred relationships (the Section 4.3
// error pathway).
func BenchmarkAblationRelationshipSource(b *testing.B) {
	s := sharedStudy(b)
	peer := s.TierOneVantages(1)[0]
	view := s.PeerView(peer)
	b.Run("groundTruth", func(b *testing.B) {
		a := &core.ExportAnalyzer{Graph: s.Topo.Graph}
		for i := 0; i < b.N; i++ {
			a.SAPrefixes(view)
		}
	})
	b.Run("gaoInferred", func(b *testing.B) {
		a := &core.ExportAnalyzer{Graph: s.Inference().Graph}
		for i := 0; i < b.N; i++ {
			a.SAPrefixes(view)
		}
	})
}

// BenchmarkAblationPropagation compares policy-rich propagation against
// the import-policy-free (shortest-path) baseline of Section 4.1.
func BenchmarkAblationPropagation(b *testing.B) {
	topo, err := topogen.Generate(topogen.DefaultConfig(300, 10))
	if err != nil {
		b.Fatal(err)
	}
	vantage := topo.Order[:8]
	b.Run("withImportPolicy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := simulate.Run(topo, simulate.Options{VantagePoints: vantage}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("shortestPath", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := simulate.Run(topo, simulate.Options{
				VantagePoints:      vantage,
				IgnoreImportPolicy: true,
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRelationshipInference measures Gao inference over the study's
// path set.
func BenchmarkRelationshipInference(b *testing.B) {
	s := sharedStudy(b)
	paths := s.Snapshot.AllPaths()
	opts := gaorelation.DefaultOptions()
	opts.VantagePoints = s.Peers
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inf := gaorelation.Infer(paths, opts)
		if inf.Graph.NumEdges() == 0 {
			b.Fatal("no edges")
		}
	}
}

// BenchmarkEndToEndStudy measures the full pipeline (generation through
// collection) at a smaller scale.
func BenchmarkEndToEndStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig()
		cfg.NumASes = 300
		cfg.Seed = int64(100 + i)
		cfg.CollectorPeers = 12
		s, err := NewStudy(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := s.RunAll(io.Discard, RunAllOptions{
			TierOneProviders: 3, Table6Rows: 8, Table6MinPrefixes: 2,
			DailyEpochs: 0, HourlyEpochs: 0, Routers: 6, DriftRouters: 1, Figure9ASes: 2,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMRTRoundTrip measures snapshot serialization.
func BenchmarkMRTRoundTrip(b *testing.B) {
	s := sharedStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Snapshot.WriteMRT(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
