// Quickstart: build a small synthetic Internet, run the paper's two
// headline inferences — import-policy typicality (Table 2) and the
// Figure-4 selective-announcement detector (Table 5) — and print the
// paper-vs-measured summary.
package main

import (
	"fmt"
	"os"

	policyscope "github.com/policyscope/policyscope"
)

func main() {
	cfg := policyscope.DefaultConfig()
	cfg.NumASes = 400
	cfg.Seed = 2003 // the paper's vintage; any seed reproduces exactly

	study, err := policyscope.NewStudy(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "quickstart: %v\n", err)
		os.Exit(1)
	}

	// Import policies: do local preferences follow AS relationships?
	if _, err := policyscope.RenderTable2(study.Table2TypicalLocalPref()).WriteTo(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "quickstart: %v\n", err)
		os.Exit(1)
	}

	// Export policies: which prefixes reach providers only through
	// "curving" peer routes?
	if _, err := policyscope.RenderTable5(study.Table5SAPrefixes()).WriteTo(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "quickstart: %v\n", err)
		os.Exit(1)
	}

	if err := study.RenderSummary(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "quickstart: %v\n", err)
		os.Exit(1)
	}
}
