// Communities: reproduce the paper's appendix — infer the semantics of
// an AS's relationship-tagging communities from prefix counts alone
// (Figure 9), compare with the operator's published scheme (Table 11),
// and verify AS relationships against the tags (Table 4).
package main

import (
	"fmt"
	"os"

	policyscope "github.com/policyscope/policyscope"
	"github.com/policyscope/policyscope/internal/core"
)

func main() {
	cfg := policyscope.DefaultConfig()
	cfg.NumASes = 500
	cfg.Seed = 21
	cfg.Tuning = &policyscope.TopologyTuning{TaggingProb: policyscope.Prob(0.6)}
	study, err := policyscope.NewStudy(cfg)
	if err != nil {
		fail(err)
	}

	// Find a tagging vantage with a published scheme (the AS12859 role).
	asn, scheme, ok := study.Table11Scheme()
	if !ok {
		fail(fmt.Errorf("no vantage published a scheme at this seed"))
	}
	if _, err := policyscope.RenderTable11(asn, scheme).WriteTo(os.Stdout); err != nil {
		fail(err)
	}

	// Figure 9 for the same AS: the count structure the inference reads.
	ranks := core.RankNeighbors(study.Result.Tables[asn])
	if len(ranks) > 15 {
		ranks = ranks[:15]
	}
	if _, err := policyscope.RenderFigure9(asn, ranks).WriteTo(os.Stdout); err != nil {
		fail(err)
	}

	// Infer semantics from counts alone and compare with the truth.
	sem := core.InferCommunitySemantics(study.Result.Tables[asn], study.HasProviders(asn))
	tagging := study.Topo.Policies[asn].Tagging
	fmt.Printf("count-based semantics inference for %v:\n", asn)
	agreements, total := 0, 0
	for c, inferred := range sem.ClassOf {
		truth, _ := tagging.ClassOf(c)
		total++
		mark := "✗"
		if truth == inferred {
			agreements++
			mark = "✓"
		}
		fmt.Printf("  %-14s inferred %-9s truth %-9s %s\n", c, inferred, truth, mark)
	}
	if total > 0 {
		fmt.Printf("  agreement: %d/%d\n\n", agreements, total)
	}

	// Table 4 across all tagging vantages.
	if _, err := policyscope.RenderTable4(study.Table4Verification(9)).WriteTo(os.Stdout); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "communities: %v\n", err)
	os.Exit(1)
}
