// Traffic engineering: the paper's core observation is that multihomed
// customers control inbound traffic by announcing prefixes to a subset
// of providers — producing SA prefixes and "curving" routes at the
// providers they bypass. This example cranks the selective-announcement
// knob, finds a concrete SA prefix at a Tier-1 vantage, and narrates the
// curving route, then shows the aggregate effect (Tables 6 and 8).
package main

import (
	"fmt"
	"os"

	policyscope "github.com/policyscope/policyscope"
)

func main() {
	cfg := policyscope.DefaultConfig()
	cfg.NumASes = 500
	cfg.Seed = 11
	cfg.Tuning = &policyscope.TopologyTuning{
		// Half of all multihomed-origin prefixes are selectively
		// announced: aggressive inbound traffic engineering.
		SelectiveAnnounceProb: policyscope.Prob(0.5),
	}
	study, err := policyscope.NewStudy(cfg)
	if err != nil {
		fail(err)
	}

	// Walk the Tier-1 analogue of the paper's AS1 and narrate its first
	// few curving routes (the Figure 5 situation).
	t1 := study.TierOneVantages(1)
	if len(t1) == 0 {
		fail(fmt.Errorf("no tier-1 vantage"))
	}
	provider := t1[0]
	fmt.Printf("Provider under study: %v (%s, degree %d)\n\n",
		provider, study.Topo.ASes[provider].Name, study.Topo.Graph.Degree(provider))

	for _, res := range study.Table5SAPrefixes() {
		if res.Vantage != provider {
			continue
		}
		fmt.Printf("%v sees %d prefixes from its customer cone; %d (%.1f%%) are selectively announced.\n\n",
			provider, res.ConePrefixes, len(res.SA), res.SAPct())
		for i, sa := range res.SA {
			if i >= 5 {
				fmt.Printf("  ... and %d more\n", len(res.SA)-5)
				break
			}
			path, ok := study.Topo.Graph.CustomerPath(provider, sa.Origin)
			fmt.Printf("  %s originated by customer %v\n", sa.Prefix, sa.Origin)
			fmt.Printf("    best route curves through %v (%v): path %v\n",
				sa.NextHop, sa.NextHopRel, sa.Route.Path)
			if ok {
				fmt.Printf("    unused customer path existed: %v\n", path)
			}
		}
		fmt.Println()
	}

	// The aggregate customer view (Table 6) and who does this (Table 8).
	if _, err := policyscope.RenderTable6(study.Table6CustomerView(3, 8, 2)).WriteTo(os.Stdout); err != nil {
		fail(err)
	}
	if _, err := policyscope.RenderTable8(study.Table8Multihoming(3)).WriteTo(os.Stdout); err != nil {
		fail(err)
	}
	fmt.Println("The paper's caution: every selectively announced prefix above is one the")
	fmt.Println("provider can only reach through a peer — connectivity without reachability.")
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "trafficengineering: %v\n", err)
	os.Exit(1)
}
