// Persistence: reproduce Figures 6 and 7 — how stable are selectively
// announced prefixes as operators churn their export policies across
// collection epochs? The paper finds SA prefixes consistently present,
// with about one sixth shifting over a month and most stable within a
// day.
package main

import (
	"fmt"
	"os"

	policyscope "github.com/policyscope/policyscope"
)

func main() {
	cfg := policyscope.DefaultConfig()
	cfg.NumASes = 350
	cfg.Seed = 31
	study, err := policyscope.NewStudy(cfg)
	if err != nil {
		fail(err)
	}

	// A month of daily snapshots with measurable policy churn.
	daily, err := study.Figure6and7Persistence(policyscope.PersistenceOptions{
		Epochs:        31,
		ChurnFraction: 0.03,
		EpochSeconds:  86400,
	})
	if err != nil {
		fail(err)
	}
	if _, err := policyscope.RenderFigure6(daily, "day").WriteTo(os.Stdout); err != nil {
		fail(err)
	}
	if _, err := policyscope.RenderFigure7(daily, "uptime (days)").WriteTo(os.Stdout); err != nil {
		fail(err)
	}
	fmt.Printf("monthly shifting share: %.2f (paper: ~1/6)\n\n", daily.ShiftingShare())

	// A day of hourly snapshots with much less churn.
	hourly, err := study.Figure6and7Persistence(policyscope.PersistenceOptions{
		Epochs:        12,
		ChurnFraction: 0.005,
		EpochSeconds:  3600,
	})
	if err != nil {
		fail(err)
	}
	if _, err := policyscope.RenderFigure6(hourly, "hour").WriteTo(os.Stdout); err != nil {
		fail(err)
	}
	fmt.Printf("hourly shifting share: %.2f (paper: most stable within a day)\n", hourly.ShiftingShare())
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "persistence: %v\n", err)
	os.Exit(1)
}
