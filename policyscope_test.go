package policyscope

import (
	"bytes"
	"strings"
	"testing"
)

func smallStudy(t *testing.T) *Study {
	t.Helper()
	cfg := DefaultConfig()
	cfg.NumASes = 250
	cfg.Seed = 7
	cfg.CollectorPeers = 14
	cfg.LookingGlassASes = 8
	s, err := NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewStudyBasics(t *testing.T) {
	s := smallStudy(t)
	if len(s.Peers) != 14 || len(s.LookingGlass) != 8 {
		t.Fatalf("vantage sizes: %d peers, %d LG", len(s.Peers), len(s.LookingGlass))
	}
	// Looking Glass ASes are peers.
	peerSet := map[string]bool{}
	for _, p := range s.Peers {
		peerSet[p.String()] = true
	}
	for _, lg := range s.LookingGlass {
		if !peerSet[lg.String()] {
			t.Fatalf("LG %v not a peer", lg)
		}
	}
	if s.Graph != s.Topo.Graph {
		t.Fatal("default must use ground-truth relationships")
	}
	if acc := s.RelationshipAccuracy(); acc.Fraction() < 0.85 {
		t.Fatalf("relationship accuracy %.3f", acc.Fraction())
	}
	if _, err := NewStudy(Config{}); err == nil {
		t.Fatal("zero config must fail")
	}
}

func TestStudyWithInferredRelationships(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumASes = 250
	cfg.Seed = 7
	cfg.CollectorPeers = 14
	cfg.UseInferredRelationships = true
	s, err := NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.Graph != s.Inference().Graph {
		t.Fatal("inferred graph not selected")
	}
	// The analyses still run and produce plausible output.
	sa := s.Table5SAPrefixes()
	if len(sa) != len(s.Peers) {
		t.Fatalf("SA rows: %d", len(sa))
	}
}

func TestExperimentsProducePaperShapes(t *testing.T) {
	s := smallStudy(t)

	rows1 := s.Table1Dataset()
	if len(rows1) != len(s.Peers) {
		t.Fatalf("table 1 rows: %d", len(rows1))
	}
	for i := 1; i < len(rows1); i++ {
		if rows1[i].Degree > rows1[i-1].Degree {
			t.Fatal("table 1 must sort by degree")
		}
	}

	rows2 := s.Table2TypicalLocalPref()
	for _, r := range rows2 {
		if r.Comparable >= 20 && r.TypicalPct() < 88 {
			t.Errorf("table 2: %v at %.1f%%", r.AS, r.TypicalPct())
		}
	}

	rows3 := s.Table3IRR(Table3Options{})
	if len(rows3) == 0 {
		t.Fatal("table 3 empty")
	}
	for _, r := range rows3 {
		if r.TypicalPct() < 60 {
			t.Errorf("table 3: %v at %.1f%%", r.AS, r.TypicalPct())
		}
	}

	rows4 := s.Table4Verification(9)
	if len(rows4) == 0 {
		t.Fatal("table 4 empty")
	}
	sawPublished := false
	for _, r := range rows4 {
		if r.Published {
			sawPublished = true
			if r.Result.VerifiedPct() < 99 {
				t.Errorf("published scheme verification %.1f%% at %v",
					r.Result.VerifiedPct(), r.Result.AS)
			}
		}
	}
	_ = sawPublished // probabilistic; presence not guaranteed at small scale

	rows5 := s.Table5SAPrefixes()
	anySA := false
	for _, r := range rows5 {
		if len(r.SA) > 0 {
			anySA = true
		}
	}
	if !anySA {
		t.Fatal("table 5 found no SA prefixes")
	}

	if rows6 := s.Table6CustomerView(3, 8, 1); len(rows6) == 0 {
		t.Fatal("table 6 empty")
	}
	if rows7 := s.Table7Verification(3); len(rows7) == 0 {
		t.Fatal("table 7 empty")
	}
	rows8 := s.Table8Multihoming(3)
	m, sh := 0, 0
	for _, r := range rows8 {
		m += r.Multihomed
		sh += r.SingleHomed
	}
	if m+sh > 0 && float64(m)/float64(m+sh) < 0.5 {
		t.Errorf("table 8: multihomed share %.2f", float64(m)/float64(m+sh))
	}
	for _, r := range s.Table9SplitAggregate(3) {
		if r.Splitting+r.Aggregating > r.SACount {
			t.Errorf("table 9 inconsistent: %+v", r)
		}
	}
	for _, r := range s.Table10PeerExport(3) {
		// Percentages over a couple of peers are noise; the paper's
		// vantages have 35-43 peers each.
		if len(r.Rows) >= 5 && r.AnnouncingPct() < 60 {
			t.Errorf("table 10: %v at %.1f%%", r.Vantage, r.AnnouncingPct())
		}
	}

	cons := s.Figure2aConsistency()
	for _, r := range cons {
		if r.Prefixes >= 50 && r.Pct() < 88 {
			t.Errorf("figure 2a: %v at %.1f%%", r.AS, r.Pct())
		}
	}
	routers, err := s.Figure2bRouterConsistency(10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(routers) != 10 {
		t.Fatalf("figure 2b rows: %d", len(routers))
	}
	// Drift routers (1..2) should sit below the best clean router.
	bestClean := 0.0
	for _, r := range routers[2:] {
		if r.Pct() > bestClean {
			bestClean = r.Pct()
		}
	}
	if bestClean < 90 {
		t.Errorf("clean routers too inconsistent: %.1f%%", bestClean)
	}

	ranks := s.Figure9NeighborRanks(3)
	if len(ranks) != 3 {
		t.Fatalf("figure 9 series: %d", len(ranks))
	}

	tp, fp := s.SAGroundTruthScore()
	if tp == 0 {
		t.Fatal("no true positives against ground truth")
	}
	if fp > tp/20 {
		t.Errorf("false positives %d vs true %d", fp, tp)
	}
}

func TestPersistenceExperiment(t *testing.T) {
	s := smallStudy(t)
	before := s.Topo.Policies[s.Peers[0]].Export.OriginProviders
	res, err := s.Figure6and7Persistence(PersistenceOptions{Epochs: 4, ChurnFraction: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 4 {
		t.Fatalf("points: %d", len(res.Points))
	}
	// Policies restored afterwards.
	after := s.Topo.Policies[s.Peers[0]].Export.OriginProviders
	if len(before) != len(after) {
		t.Fatal("policies not restored after persistence experiment")
	}
}

func TestRunAllRendersEverything(t *testing.T) {
	s := smallStudy(t)
	var buf bytes.Buffer
	opts := DefaultRunAllOptions()
	opts.DailyEpochs = 3
	opts.HourlyEpochs = 0
	opts.Routers = 6
	opts.DriftRouters = 1
	if err := s.RunAll(&buf, opts); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Table 1", "Table 2", "Table 3", "Table 4", "Table 5", "Table 6",
		"Table 7", "Table 8", "Table 9", "Table 10",
		"Figure 2(a)", "Figure 2(b)", "Figure 6", "Figure 7", "Figure 9",
		"Case 3", "relationship inference", "true positives",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("RunAll output missing %q", want)
		}
	}
	var sum bytes.Buffer
	if err := s.RenderSummary(&sum); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sum.String(), "paper") {
		t.Fatal("summary missing comparison column")
	}
}

func TestStudyDeterminism(t *testing.T) {
	a := smallStudy(t)
	b := smallStudy(t)
	var wa, wb bytes.Buffer
	if err := a.RenderSummary(&wa); err != nil {
		t.Fatal(err)
	}
	if err := b.RenderSummary(&wb); err != nil {
		t.Fatal(err)
	}
	if wa.String() != wb.String() {
		t.Fatal("summaries differ across identical configs")
	}
}
