package policyscope

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"testing"

	"github.com/policyscope/policyscope/experiment"
	"github.com/policyscope/policyscope/infer"
	"github.com/policyscope/policyscope/internal/asgraph"
	"github.com/policyscope/policyscope/internal/routeviews"
)

func serializeGraphT(t *testing.T, g *asgraph.Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func readMRTBytes(b []byte) (*routeviews.Snapshot, error) {
	return routeviews.ReadMRT(bytes.NewReader(b))
}

// TestSessionInferGaoMatchesStudyInference: the registry's gao adapter
// is byte-identical (serialized a|b|rel) to the study's own lazy Gao
// gate, across seeds of the synthetic preset and across an MRT
// round trip of the snapshot.
func TestSessionInferGaoMatchesStudyInference(t *testing.T) {
	ctx := context.Background()
	for _, seed := range []int64{1, 2, 3} {
		cfg := DefaultConfig()
		cfg.NumASes = 150
		cfg.Seed = seed
		cfg.CollectorPeers = 10
		cfg.LookingGlassASes = 6
		se := NewSession(cfg)
		out, err := se.Infer(ctx, "gao", nil)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		s, err := se.Study()
		if err != nil {
			t.Fatal(err)
		}
		want := serializeGraphT(t, s.Inference().Graph)
		if got := serializeGraphT(t, out.Graph); !bytes.Equal(got, want) {
			t.Fatalf("seed %d: registry gao differs from Study.Inference", seed)
		}

		// The same equivalence must hold on a snapshot-only import of
		// this study's MRT dump.
		var mrt bytes.Buffer
		if err := s.Snapshot.WriteMRT(&mrt); err != nil {
			t.Fatal(err)
		}
		snap, err := readMRTBytes(mrt.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		imported, err := NewStudyFromSnapshot(snap, Config{})
		if err != nil {
			t.Fatal(err)
		}
		impSess := NewSessionFromStudy(imported)
		impOut, err := impSess.Infer(ctx, "gao", nil)
		if err != nil {
			t.Fatal(err)
		}
		if got := serializeGraphT(t, impOut.Graph); !bytes.Equal(got, serializeGraphT(t, imported.Inference().Graph)) {
			t.Fatalf("seed %d: registry gao differs from Study.Inference on MRT import", seed)
		}
	}
}

// TestSessionInferMemoization: one algorithm with equal effective
// params runs once per session; different params run separately.
func TestSessionInferMemoization(t *testing.T) {
	se := smallSession(t)
	ctx := context.Background()
	a, err := se.Infer(ctx, "rank", nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := se.Infer(ctx, "rank", json.RawMessage(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("equal params did not share one memoized run")
	}
	c, err := se.InferKV(ctx, "rank", []string{"peer_ratio=9"})
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Fatal("different params shared a memoized run")
	}
}

func TestInferBakeoffExperiment(t *testing.T) {
	se := smallSession(t)
	ctx := context.Background()

	res, err := se.Run(ctx, "inferbakeoff", nil)
	if err != nil {
		t.Fatal(err)
	}
	bk := res.(*InferBakeoffResult)
	if len(bk.Algorithms) != 3 || len(bk.Agreement) != 3 {
		t.Fatalf("bakeoff shape: %d algorithms, %d agreement cells", len(bk.Algorithms), len(bk.Agreement))
	}
	if bk.Scored {
		t.Fatal("default bakeoff must not be scored")
	}
	for _, a := range bk.Algorithms {
		if a.Score != nil {
			t.Fatalf("%s: unscored run carries a scorecard", a.Name)
		}
		if a.Edges == 0 || a.P2C+a.P2P+a.Siblings != a.Edges {
			t.Fatalf("%s: class counts %d+%d+%d do not sum to %d edges", a.Name, a.P2C, a.P2P, a.Siblings, a.Edges)
		}
	}

	// Scored run: every algorithm gets a ground-truth scorecard, and
	// gao's accuracy matches the study's own Section 4.3 number.
	res, err = se.RunKV(ctx, "inferbakeoff", []string{"score=true", `algos=["gao"]`})
	if err != nil {
		t.Fatal(err)
	}
	scored := res.(*InferBakeoffResult)
	if len(scored.Algorithms) != 1 || scored.Algorithms[0].Score == nil {
		t.Fatalf("scored bakeoff: %+v", scored.Algorithms)
	}
	s, err := se.Study()
	if err != nil {
		t.Fatal(err)
	}
	acc := s.RelationshipAccuracy()
	sc := scored.Algorithms[0].Score
	if sc.SharedEdges != acc.Total || sc.Accuracy != acc.Fraction() {
		t.Fatalf("gao scorecard (%d shared, %.4f) disagrees with RelationshipAccuracy (%d, %.4f)",
			sc.SharedEdges, sc.Accuracy, acc.Total, acc.Fraction())
	}

	// Unknown algorithm: rejected before any inference.
	var nf *infer.NotFoundError
	if _, err := se.RunJSON(ctx, "inferbakeoff", []byte(`{"algos":["nope"]}`)); !errors.As(err, &nf) {
		t.Fatalf("bad algo: got %v", err)
	}

	// Rendering produces the summary and agreement tables.
	var buf bytes.Buffer
	if err := bk.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("Inference bakeoff")) ||
		!bytes.Contains(buf.Bytes(), []byte("Pairwise agreement")) {
		t.Fatalf("render missing sections:\n%s", buf.String())
	}
}

// TestInferBakeoffScoreNeedsGroundTruth: score=true on a snapshot-only
// dataset is a NeedsGroundTruth error, not a panic or a silent skip.
func TestInferBakeoffScoreNeedsGroundTruth(t *testing.T) {
	se := smallSession(t)
	s, err := se.Study()
	if err != nil {
		t.Fatal(err)
	}
	var mrt bytes.Buffer
	if err := s.Snapshot.WriteMRT(&mrt); err != nil {
		t.Fatal(err)
	}
	snap, err := readMRTBytes(mrt.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	imported, err := NewStudyFromSnapshot(snap, Config{})
	if err != nil {
		t.Fatal(err)
	}
	impSess := NewSessionFromStudy(imported)
	if _, err := impSess.RunKV(context.Background(), "inferbakeoff", []string{"score=true"}); !errors.Is(err, ErrNeedsGroundTruth) {
		t.Fatalf("want ErrNeedsGroundTruth, got %v", err)
	}
	// Unscored stays answerable.
	if _, err := impSess.Run(context.Background(), "inferbakeoff", nil); err != nil {
		t.Fatalf("unscored bakeoff on import: %v", err)
	}
}

// TestInferEnsembleDeterministicAcrossWorkers: the ensemble result is
// bit-identical JSON regardless of the sweep executor's worker count.
func TestInferEnsembleDeterministicAcrossWorkers(t *testing.T) {
	// Sampled relationship worlds are not valley-free, so convergence is
	// activation-budget-bound: keep the universe small.
	cfg := DefaultConfig()
	cfg.NumASes = 80
	cfg.Seed = 5
	cfg.CollectorPeers = 6
	cfg.LookingGlassASes = 4
	se := NewSession(cfg)
	ctx := context.Background()
	var want []byte
	for _, workers := range []int{1, 4, 8} {
		params, err := json.Marshal(map[string]any{
			"samples": 3, "seed": 5, "sweep_max": 4, "workers": workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := se.RunJSON(ctx, "inferensemble", params)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = got
		} else if !bytes.Equal(got, want) {
			t.Fatalf("workers=%d diverged:\n want %s\n  got %s", workers, want, got)
		}
	}

	var er InferEnsembleResult
	if err := json.Unmarshal(want, &er); err != nil {
		t.Fatal(err)
	}
	if len(er.Samples) != 3 || er.PosteriorEdges == 0 || er.SweepScenarios != 4 {
		t.Fatalf("ensemble shape: %+v", er)
	}
	for i, s := range er.Samples {
		if s.Index != i || s.Seed != 5+int64(i) {
			t.Fatalf("sample %d mislabelled: %+v", i, s)
		}
		if s.Atoms == 0 {
			t.Fatalf("sample %d: no atoms", i)
		}
	}
	if len(er.Spread) == 0 {
		t.Fatal("no spread rows")
	}
	var buf bytes.Buffer
	if err := er.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("Posterior ensemble")) ||
		!bytes.Contains(buf.Bytes(), []byte("Spread across samples")) {
		t.Fatalf("render missing sections:\n%s", buf.String())
	}
}

// TestInferEnsembleRejectsNonProbabilistic: only algorithms with a
// posterior can be sampled.
func TestInferEnsembleRejectsNonProbabilistic(t *testing.T) {
	se := smallSession(t)
	var pe *experiment.ParamError
	if _, err := se.RunJSON(context.Background(), "inferensemble", []byte(`{"algo":"gao"}`)); !errors.As(err, &pe) {
		t.Fatalf("want ParamError, got %v", err)
	}
}
