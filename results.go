package policyscope

// results.go gives every experiment a typed result that satisfies
// experiment.Result: plain data (deterministic JSON via encoding/json)
// plus a Render method reusing the internal/reports renderers. The
// registration table lives in registry.go.

import (
	"fmt"
	"io"

	"github.com/policyscope/policyscope/infer"
	"github.com/policyscope/policyscope/internal/bgp"
	"github.com/policyscope/policyscope/internal/core"
	"github.com/policyscope/policyscope/internal/reports"
	"github.com/policyscope/policyscope/internal/sweep"
	"github.com/policyscope/policyscope/internal/topogen"
)

// writeAll renders a sequence of report tables/charts.
func writeAll(w io.Writer, items ...interface {
	WriteTo(io.Writer) (int64, error)
}) error {
	for _, item := range items {
		if _, err := item.WriteTo(w); err != nil {
			return err
		}
	}
	return nil
}

// OverviewResult is the study's headline numbers (the former RunAll
// preamble): dimensions, the Section 4.3 inference accuracy, and the SA
// detector's score against ground truth.
type OverviewResult struct {
	ASes                    int     `json:"ases"`
	Prefixes                int     `json:"prefixes"`
	CollectorPeers          int     `json:"collector_peers"`
	LookingGlassCount       int     `json:"looking_glass"`
	Seed                    int64   `json:"seed"`
	RelationshipAccuracyPct float64 `json:"relationship_accuracy_pct"`
	ObservedEdges           int     `json:"observed_edges"`
	SATruePositives         int     `json:"sa_true_positives"`
	SAFalsePositives        int     `json:"sa_false_positives"`
}

// Render implements experiment.Result.
func (r OverviewResult) Render(w io.Writer) error {
	_, err := fmt.Fprintf(w,
		"policyscope study: %d ASes, %d prefixes, %d collector peers, seed %d\n"+
			"relationship inference (Gao): %.2f%% of %d observed edges correct\n"+
			"SA detector vs ground truth: %d true positives, %d false positives\n\n",
		r.ASes, r.Prefixes, r.CollectorPeers, r.Seed,
		r.RelationshipAccuracyPct, r.ObservedEdges,
		r.SATruePositives, r.SAFalsePositives)
	return err
}

// Table1Result is the vantage dataset.
type Table1Result struct {
	Rows []Table1Row `json:"rows"`
}

// Render implements experiment.Result.
func (r Table1Result) Render(w io.Writer) error { return writeAll(w, RenderTable1(r.Rows)) }

// Table2Result is per-LG local-preference typicality.
type Table2Result struct {
	Rows []core.TypicalityResult `json:"rows"`
}

// Render implements experiment.Result.
func (r Table2Result) Render(w io.Writer) error { return writeAll(w, RenderTable2(r.Rows)) }

// Table3Result is IRR-mined typicality.
type Table3Result struct {
	Rows []core.IRRTypicalityResult `json:"rows"`
}

// Render implements experiment.Result.
func (r Table3Result) Render(w io.Writer) error { return writeAll(w, RenderTable3(r.Rows)) }

// Figure2Result is a next-hop-consistency series (2a per AS, 2b per
// router).
type Figure2Result struct {
	Title string                   `json:"title"`
	Rows  []core.ConsistencyResult `json:"rows"`
}

// Render implements experiment.Result.
func (r Figure2Result) Render(w io.Writer) error { return writeAll(w, RenderFigure2(r.Title, r.Rows)) }

// Table4Result is community-based relationship verification.
type Table4Result struct {
	Rows []Table4Row `json:"rows"`
}

// Render implements experiment.Result.
func (r Table4Result) Render(w io.Writer) error { return writeAll(w, RenderTable4(r.Rows)) }

// Table5Result is per-vantage SA detection.
type Table5Result struct {
	Rows []core.SAResult `json:"rows"`
}

// Render implements experiment.Result.
func (r Table5Result) Render(w io.Writer) error { return writeAll(w, RenderTable5(r.Rows)) }

// Table6Result is the per-customer SA view.
type Table6Result struct {
	Rows []core.CustomerSARow `json:"rows"`
}

// Render implements experiment.Result.
func (r Table6Result) Render(w io.Writer) error { return writeAll(w, RenderTable6(r.Rows)) }

// Table7Result is SA verification via active customer paths.
type Table7Result struct {
	Rows []core.SAVerification `json:"rows"`
}

// Render implements experiment.Result.
func (r Table7Result) Render(w io.Writer) error { return writeAll(w, RenderTable7(r.Rows)) }

// Table8Result is the multihoming split of SA origins.
type Table8Result struct {
	Rows []core.MultihomingResult `json:"rows"`
}

// Render implements experiment.Result.
func (r Table8Result) Render(w io.Writer) error { return writeAll(w, RenderTable8(r.Rows)) }

// Table9Result is splitting/aggregation cause counts.
type Table9Result struct {
	Rows []core.SplitAggregateResult `json:"rows"`
}

// Render implements experiment.Result.
func (r Table9Result) Render(w io.Writer) error { return writeAll(w, RenderTable9(r.Rows)) }

// Case3Result is the Section 5.1.5 selective-announcing breakdown.
type Case3Result struct {
	Rows []core.SelectiveAnnouncingResult `json:"rows"`
}

// Render implements experiment.Result.
func (r Case3Result) Render(w io.Writer) error { return writeAll(w, RenderCase3(r.Rows)) }

// Table10Result is export-to-peer behaviour.
type Table10Result struct {
	Rows []core.PeerExportResult `json:"rows"`
}

// Render implements experiment.Result.
func (r Table10Result) Render(w io.Writer) error { return writeAll(w, RenderTable10(r.Rows)) }

// Render implements experiment.Result for the policy-atom extension.
func (r PolicyAtomsResult) Render(w io.Writer) error { return writeAll(w, RenderPolicyAtoms(r)) }

// DecisionResult is the decision-step characterization extension.
type DecisionResult struct {
	Rows []core.DecisionStats `json:"rows"`
}

// Render implements experiment.Result.
func (r DecisionResult) Render(w io.Writer) error {
	return writeAll(w, RenderDecisionCharacterization(r.Rows))
}

// Render implements experiment.Result for the multi-site confounder
// extension.
func (m MultiSiteImpact) Render(w io.Writer) error { return writeAll(w, RenderMultiSite(m)) }

// Table11Result is a published tagging scheme (Found is false when no
// vantage publishes one; Render then prints nothing, like the paper's
// table simply not existing for such a dataset).
type Table11Result struct {
	AS     bgp.ASN                  `json:"as"`
	Scheme []topogen.TagSchemeEntry `json:"scheme,omitempty"`
	Found  bool                     `json:"found"`
}

// Render implements experiment.Result.
func (r Table11Result) Render(w io.Writer) error {
	if !r.Found {
		return nil
	}
	return writeAll(w, RenderTable11(r.AS, r.Scheme))
}

// Figure9Series is one vantage's neighbor-rank curve.
type Figure9Series struct {
	AS    bgp.ASN             `json:"as"`
	Ranks []core.NeighborRank `json:"ranks"`
}

// Figure9Result is a set of neighbor-rank curves in vantage order.
type Figure9Result struct {
	Series []Figure9Series `json:"series"`
}

// Render implements experiment.Result.
func (r Figure9Result) Render(w io.Writer) error {
	for _, s := range r.Series {
		if err := writeAll(w, RenderFigure9(s.AS, s.Ranks)); err != nil {
			return err
		}
	}
	return nil
}

// PersistenceChartResult carries a persistence series rendered as
// Figure 6 (per-epoch counts) or Figure 7 (uptime histogram).
type PersistenceChartResult struct {
	Figure int                    `json:"figure"` // 6 or 7
	XLabel string                 `json:"x_label"`
	Series core.PersistenceResult `json:"series"`
}

// Render implements experiment.Result.
func (r PersistenceChartResult) Render(w io.Writer) error {
	if r.Figure == 7 {
		return writeAll(w, RenderFigure7(r.Series, "uptime ("+r.XLabel+"s)"))
	}
	return writeAll(w, RenderFigure6(r.Series, r.XLabel))
}

// WhatIfResult wraps a what-if report (nil when the study has no
// default failover subject and none was requested).
type WhatIfResult struct {
	Report  *WhatIfReport `json:"report"`
	MaxRows int           `json:"-"`
}

// Render implements experiment.Result.
func (r WhatIfResult) Render(w io.Writer) error {
	if r.Report == nil {
		return nil
	}
	return WriteWhatIf(w, r.Report, r.MaxRows)
}

// SweepResult is the registry-shaped outcome of a sweep: the expanded
// spec, the streamed aggregate, and (bounded by SweepParams.MaxRecords)
// the head of the per-scenario record stream.
type SweepResult struct {
	Spec      sweep.Spec       `json:"spec"`
	Aggregate *sweep.Aggregate `json:"aggregate"`
	Records   []*sweep.Impact  `json:"records,omitempty"`
}

// Render implements experiment.Result.
func (r SweepResult) Render(w io.Writer) error {
	a := r.Aggregate
	name := r.Spec.Name
	if name == "" {
		name = fmt.Sprintf("%d generator(s)", len(r.Spec.Generators))
	}
	summary := &reports.Table{
		Title: fmt.Sprintf(
			"Sweep %s: %d scenarios (%d with impact, %d partitioning, %d errors), %d (prefix,AS) best shifts, reach -%d/+%d",
			name, a.Scenarios, a.ScenariosWithImpact, a.ScenariosPartitioning, a.Errors,
			a.ShiftedASes, a.LostReachPairs, a.GainedReachPairs),
		Columns: []string{"Shifted (prefix,AS) pairs", "Scenarios"},
	}
	for _, b := range a.Histogram {
		summary.AddRow(b.Label, fmt.Sprintf("%d", b.Scenarios))
	}
	top := &reports.Table{
		Title:   "Most critical scenarios (by shifted pairs)",
		Columns: []string{"#", "Scenario", "Shifted", "Lost reach"},
	}
	for i, e := range a.TopByShift {
		top.AddRow(fmt.Sprintf("%d", i+1), e.Name,
			fmt.Sprintf("%d", e.ShiftedASes), fmt.Sprintf("%d", e.LostReachPairs))
	}
	peers := &reports.Table{
		Title:   fmt.Sprintf("Vantage points touched: %d", len(a.Peers)),
		Columns: []string{"Peer", "Scenarios", "Changed best routes"},
	}
	for i, p := range a.Peers {
		if i >= 10 {
			peers.AddRow("...", fmt.Sprintf("(%d more)", len(a.Peers)-10), "")
			break
		}
		peers.AddRow(fmt.Sprintf("AS%d", p.Peer),
			fmt.Sprintf("%d", p.Scenarios), fmt.Sprintf("%d", p.PrefixChanges))
	}
	return writeAll(w, summary, top, peers)
}

// InferAlgoSummary is one algorithm's row in the bakeoff: what it
// inferred, and (when scored) how it did against ground truth.
type InferAlgoSummary struct {
	Name          string `json:"name"`
	Probabilistic bool   `json:"probabilistic,omitempty"`
	ASes          int    `json:"ases"`
	Edges         int    `json:"edges"`
	// P2C counts provider-customer edges (either orientation), P2P
	// peering edges, Siblings sibling edges.
	P2C      int `json:"p2c"`
	P2P      int `json:"p2p"`
	Siblings int `json:"siblings"`
	// Score is present only on scored runs (score=true, needs ground
	// truth) so the default result stays snapshot-derivable.
	Score *infer.Scorecard `json:"score,omitempty"`
}

// InferAgreementCell is one pairwise-agreement entry between two
// algorithms' inferred graphs, in bakeoff algorithm order.
type InferAgreementCell struct {
	A         string          `json:"a"`
	B         string          `json:"b"`
	Agreement infer.Agreement `json:"agreement"`
}

// InferBakeoffResult is the inference bakeoff: per-algorithm summaries
// plus the pairwise agreement matrix (upper triangle). Unscored runs
// contain nothing derived from ground truth.
type InferBakeoffResult struct {
	Paths      int                  `json:"paths"`
	Scored     bool                 `json:"scored,omitempty"`
	Algorithms []InferAlgoSummary   `json:"algorithms"`
	Agreement  []InferAgreementCell `json:"agreement,omitempty"`
}

// Render implements experiment.Result.
func (r InferBakeoffResult) Render(w io.Writer) error {
	cols := []string{"Algorithm", "ASes", "Edges", "p2c", "p2p", "sibling"}
	if r.Scored {
		cols = append(cols, "Accuracy", "Missed", "Spurious")
	}
	summary := &reports.Table{
		Title: fmt.Sprintf("Inference bakeoff: %d algorithms over %d observed paths",
			len(r.Algorithms), r.Paths),
		Columns: cols,
	}
	for _, a := range r.Algorithms {
		name := a.Name
		if a.Probabilistic {
			name += " (MAP)"
		}
		row := []string{name, fmt.Sprintf("%d", a.ASes), fmt.Sprintf("%d", a.Edges),
			fmt.Sprintf("%d", a.P2C), fmt.Sprintf("%d", a.P2P), fmt.Sprintf("%d", a.Siblings)}
		if r.Scored {
			acc, missed, spurious := "-", "-", "-"
			if a.Score != nil {
				acc = fmt.Sprintf("%.2f%%", 100*a.Score.Accuracy)
				missed = fmt.Sprintf("%d", a.Score.MissedEdges)
				spurious = fmt.Sprintf("%d", a.Score.SpuriousEdges)
			}
			row = append(row, acc, missed, spurious)
		}
		summary.AddRow(row...)
	}
	items := []interface {
		WriteTo(io.Writer) (int64, error)
	}{summary}
	if r.Scored {
		classes := &reports.Table{
			Title:   "Per-class precision/recall vs ground truth",
			Columns: []string{"Algorithm", "Class", "Truth", "Inferred", "Correct", "Precision", "Recall"},
		}
		for _, a := range r.Algorithms {
			if a.Score == nil {
				continue
			}
			for _, key := range []string{"p2c", "p2p", "sibling"} {
				cs := a.Score.ByClass[key]
				classes.AddRow(a.Name, key, fmt.Sprintf("%d", cs.Truth),
					fmt.Sprintf("%d", cs.Inferred), fmt.Sprintf("%d", cs.Correct),
					fmt.Sprintf("%.2f", cs.Precision), fmt.Sprintf("%.2f", cs.Recall))
			}
		}
		items = append(items, classes)
	}
	if len(r.Agreement) > 0 {
		ag := &reports.Table{
			Title:   "Pairwise agreement (shared edges, identical relationship)",
			Columns: []string{"A", "B", "Shared", "Agree", "Fraction", "Only A", "Only B"},
		}
		for _, c := range r.Agreement {
			ag.AddRow(c.A, c.B, fmt.Sprintf("%d", c.Agreement.SharedEdges),
				fmt.Sprintf("%d", c.Agreement.Agree), fmt.Sprintf("%.2f", c.Agreement.Fraction),
				fmt.Sprintf("%d", c.Agreement.OnlyA), fmt.Sprintf("%d", c.Agreement.OnlyB))
		}
		items = append(items, ag)
	}
	return writeAll(w, items...)
}

// EnsembleSample is one posterior sample's downstream metrics (Index -1
// is the ground-truth base row).
type EnsembleSample struct {
	Index int   `json:"index"`
	Seed  int64 `json:"seed"`
	// FlippedEdges counts relationship annotations the sample changed
	// relative to ground truth.
	FlippedEdges int `json:"flipped_edges"`
	// Unconverged counts prefixes that hit the activation budget under
	// the sampled policies (0 in valley-free ground truth).
	Unconverged      int `json:"unconverged"`
	Atoms            int `json:"atoms"`
	MultiPrefixAtoms int `json:"multi_prefix_atoms"`
	// Sweep totals over the capped single-link-failure probe (0 when
	// sweep_max=0 disables it).
	SweepShiftedASes    int `json:"sweep_shifted_ases"`
	SweepLostReachPairs int `json:"sweep_lost_reach_pairs"`
}

// EnsembleSpread is one metric's spread over the ensemble samples.
type EnsembleSpread struct {
	Metric string  `json:"metric"`
	Min    float64 `json:"min"`
	Mean   float64 `json:"mean"`
	Max    float64 `json:"max"`
	// StdDev is the population standard deviation over the samples.
	StdDev float64 `json:"stddev"`
	// Base is the metric under the study's ground-truth relationships.
	Base float64 `json:"base"`
}

// InferEnsembleResult is the posterior-ensemble experiment: K sampled
// relationship assignments pushed through convergence and the sweep
// executor, with spread bars against the ground-truth base.
type InferEnsembleResult struct {
	Algo           string           `json:"algo"`
	Seed           int64            `json:"seed"`
	PosteriorEdges int              `json:"posterior_edges"`
	SweepMax       int              `json:"sweep_max"`
	SweepScenarios int              `json:"sweep_scenarios,omitempty"`
	Base           EnsembleSample   `json:"base"`
	Samples        []EnsembleSample `json:"samples"`
	Spread         []EnsembleSpread `json:"spread"`
}

// Render implements experiment.Result.
func (r InferEnsembleResult) Render(w io.Writer) error {
	sampleRow := func(t *reports.Table, label string, s EnsembleSample) {
		t.AddRow(label, fmt.Sprintf("%d", s.FlippedEdges), fmt.Sprintf("%d", s.Unconverged),
			fmt.Sprintf("%d", s.Atoms), fmt.Sprintf("%d", s.MultiPrefixAtoms),
			fmt.Sprintf("%d", s.SweepShiftedASes), fmt.Sprintf("%d", s.SweepLostReachPairs))
	}
	samples := &reports.Table{
		Title: fmt.Sprintf(
			"Posterior ensemble (%s): %d samples over %d edges, %d-scenario link-failure probe",
			r.Algo, len(r.Samples), r.PosteriorEdges, r.SweepScenarios),
		Columns: []string{"Sample", "Flipped", "Unconverged", "Atoms", "Multi-prefix", "Sweep shifted", "Sweep lost"},
	}
	sampleRow(samples, "base", r.Base)
	for _, s := range r.Samples {
		sampleRow(samples, fmt.Sprintf("#%d (seed %d)", s.Index, s.Seed), s)
	}
	spread := &reports.Table{
		Title:   "Spread across samples",
		Columns: []string{"Metric", "Min", "Mean", "Max", "StdDev", "Base"},
	}
	for _, sp := range r.Spread {
		spread.AddRow(sp.Metric, fmt.Sprintf("%.0f", sp.Min), fmt.Sprintf("%.1f", sp.Mean),
			fmt.Sprintf("%.0f", sp.Max), fmt.Sprintf("%.2f", sp.StdDev), fmt.Sprintf("%.0f", sp.Base))
	}
	return writeAll(w, samples, spread)
}

// SummaryRow is one paper-vs-measured comparison line.
type SummaryRow struct {
	Quantity string `json:"quantity"`
	Paper    string `json:"paper"`
	Measured string `json:"measured"`
}

// SummaryResult is the headline paper-vs-measured comparison.
type SummaryResult struct {
	Rows []SummaryRow `json:"rows"`
}

// Render implements experiment.Result.
func (r SummaryResult) Render(w io.Writer) error {
	t := &reports.Table{
		Title:   "Summary: paper vs measured",
		Columns: []string{"quantity", "paper", "measured"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Quantity, row.Paper, row.Measured)
	}
	return writeAll(w, t)
}
