package policyscope

import "github.com/policyscope/policyscope/obs"

// Session-level metrics: experiment throughput and the hit rates of
// the two per-session memo layers (persistence series, inference
// runs). Per-experiment breakdown deliberately stays out of the label
// space — ?trace=1 spans name the experiment per request, and the
// registry has enough entries that per-name counters would dominate
// the exposition.
var (
	mExperimentRuns = obs.NewCounter("policyscope_session_experiment_runs_total",
		"Experiment executions through Session.Run (all wire forms funnel here).")
	mExperimentErrors = obs.NewCounter("policyscope_session_experiment_errors_total",
		"Experiment executions that returned an error.")
	mExperimentSeconds = obs.NewHistogram("policyscope_session_experiment_seconds",
		"Wall time of one experiment execution.", nil)

	mMemo = obs.NewCounterVec("policyscope_session_memo_total",
		"Session memo lookups by cache (persist = persistence series, infer = inference runs, sweep_expand = sweep scenario expansions) and result.",
		"cache", "result")
	mMemoPersistHit  = mMemo.With("persist", "hit")
	mMemoPersistMiss = mMemo.With("persist", "miss")
	mMemoInferHit    = mMemo.With("infer", "hit")
	mMemoInferMiss   = mMemo.With("infer", "miss")
	mMemoSweepHit    = mMemo.With("sweep_expand", "hit")
	mMemoSweepMiss   = mMemo.With("sweep_expand", "miss")
)
