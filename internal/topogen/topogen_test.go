package topogen

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/policyscope/policyscope/internal/asgraph"
	"github.com/policyscope/policyscope/internal/bgp"
	"github.com/policyscope/policyscope/internal/netx"
)

func genSmall(t *testing.T, n int, seed int64) *Topology {
	t.Helper()
	topo, err := Generate(DefaultConfig(n, seed))
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestGenerateDeterministic(t *testing.T) {
	a := genSmall(t, 120, 7)
	b := genSmall(t, 120, 7)
	if !reflect.DeepEqual(a.Order, b.Order) {
		t.Fatal("AS order differs across identical seeds")
	}
	if a.Graph.NumEdges() != b.Graph.NumEdges() {
		t.Fatal("edge count differs across identical seeds")
	}
	if !reflect.DeepEqual(a.PrefixOrigin, b.PrefixOrigin) {
		t.Fatal("prefix allocation differs across identical seeds")
	}
	for _, asn := range a.Order {
		if !reflect.DeepEqual(a.Policies[asn].Import.NeighborPref, b.Policies[asn].Import.NeighborPref) {
			t.Fatalf("import policy of %v differs", asn)
		}
		if !reflect.DeepEqual(a.Policies[asn].Export.OriginProviders, b.Policies[asn].Export.OriginProviders) {
			t.Fatalf("export policy of %v differs", asn)
		}
	}
	c := genSmall(t, 120, 8)
	if reflect.DeepEqual(a.PrefixOrigin, c.PrefixOrigin) {
		t.Fatal("different seeds produced identical topologies")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Generate(Config{}); err == nil {
		t.Fatal("zero config must fail")
	}
	bad := DefaultConfig(100, 1)
	bad.AtypicalPrefProb = 1.5
	if err := bad.Validate(); err == nil {
		t.Fatal("probability > 1 must fail")
	}
	bad = DefaultConfig(100, 1)
	bad.MultihomeDist = nil
	if err := bad.Validate(); err == nil {
		t.Fatal("empty MultihomeDist must fail")
	}
	bad = DefaultConfig(100, 1)
	bad.MultihomeDist = []float64{-1, 2}
	if err := bad.Validate(); err == nil {
		t.Fatal("negative MultihomeDist must fail")
	}
	bad = DefaultConfig(100, 1)
	bad.TierOneCount = 90
	if err := bad.Validate(); err == nil {
		t.Fatal("oversized TierOneCount must fail")
	}
}

func TestHierarchyStructure(t *testing.T) {
	topo := genSmall(t, 300, 42)
	tier1 := topo.ASesByTier(1)
	if len(tier1) < 5 {
		t.Fatalf("tier-1 count = %d", len(tier1))
	}
	// Tier-1s: full peering clique, no providers.
	for i, a := range tier1 {
		if len(topo.Graph.Providers(a)) != 0 {
			t.Fatalf("tier-1 %v has providers", a)
		}
		for _, b := range tier1[i+1:] {
			if topo.Graph.Rel(a, b) != asgraph.RelPeer {
				t.Fatalf("tier-1 %v and %v are not peers", a, b)
			}
		}
	}
	// Everyone below tier 1 has at least one provider.
	for _, asn := range topo.Order {
		if topo.TierOf(asn) != 1 && len(topo.Graph.Providers(asn)) == 0 {
			t.Fatalf("%v (tier %d) has no providers", asn, topo.TierOf(asn))
		}
	}
	// Stub provider counts stay within the multihoming distribution's range.
	maxProviders := len(DefaultConfig(300, 42).MultihomeDist)
	for _, asn := range topo.ASesByTier(3) {
		if n := len(topo.Graph.Providers(asn)); n < 1 || n > maxProviders {
			t.Fatalf("stub %v has %d providers", asn, n)
		}
	}
	// Graph tiers should broadly agree with generated tiers.
	tiers := topo.Graph.Tiers()
	for _, asn := range tier1 {
		if tiers[asn] != 1 {
			t.Fatalf("graph tier of %v = %d", asn, tiers[asn])
		}
	}
}

func TestPrefixAllocationInvariants(t *testing.T) {
	topo := genSmall(t, 250, 3)
	if topo.TotalPrefixes() == 0 {
		t.Fatal("no prefixes allocated")
	}
	// PrefixOrigin and ASInfo.Prefixes agree.
	count := 0
	for _, asn := range topo.Order {
		for _, p := range topo.ASes[asn].Prefixes {
			count++
			if got, ok := topo.OriginOf(p); !ok || got != asn {
				t.Fatalf("origin of %v = %v, want %v", p, got, asn)
			}
		}
	}
	if count != topo.TotalPrefixes() {
		t.Fatalf("prefix count mismatch: %d vs %d", count, topo.TotalPrefixes())
	}

	// Overlaps only occur in sanctioned shapes: same-AS splits, or
	// provider cover block containing a delegated customer prefix.
	var all []netx.Prefix
	for p := range topo.PrefixOrigin {
		all = append(all, p)
	}
	netx.SortPrefixes(all)
	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			a, b := all[i], all[j]
			if !a.Overlaps(b) {
				continue
			}
			oa, ob := topo.PrefixOrigin[a], topo.PrefixOrigin[b]
			if oa == ob {
				continue // same-AS split pair
			}
			// One side must be provider-allocated from the other.
			cover, specific, co, so := a, b, oa, ob
			if b.Contains(a) {
				cover, specific, co, so = b, a, ob, oa
			}
			if !cover.Contains(specific) {
				t.Fatalf("overlap without containment: %v(%v) %v(%v)", a, oa, b, ob)
			}
			if topo.ASes[so].AllocatedFrom[specific] != co {
				t.Fatalf("unsanctioned overlap: %v of %v inside %v of %v", specific, so, cover, co)
			}
		}
	}
}

func TestImportPolicyBands(t *testing.T) {
	topo := genSmall(t, 300, 5)
	atypical, total := 0, 0
	for _, asn := range topo.Order {
		pol := topo.Policies[asn]
		for nb, pref := range pol.Import.NeighborPref {
			rel := topo.Graph.Rel(asn, nb)
			total++
			var lo, hi uint32
			switch rel {
			case asgraph.RelCustomer:
				lo, hi = basePrefCustomer, basePrefCustomer+prefJitter
			case asgraph.RelPeer:
				lo, hi = basePrefPeer, basePrefPeer+prefJitter
			case asgraph.RelProvider:
				lo, hi = basePrefProvider, basePrefProvider+prefJitter
			default:
				t.Fatalf("pref assigned to %v neighbor", rel)
			}
			// The session base value is always typical; violations live
			// in AtypicalPref and apply only to a prefix share.
			if pref < lo || pref >= hi {
				t.Fatalf("%v→%v (%v) base pref %d outside band [%d,%d)", asn, nb, rel, pref, lo, hi)
			}
			if pol.Import.Atypical[nb] {
				atypical++
				av, ok := pol.Import.AtypicalPref[nb]
				if !ok {
					t.Fatalf("%v→%v marked atypical without a value", asn, nb)
				}
				if av >= lo && av < hi {
					t.Fatalf("%v→%v atypical value %d inside its own typical band", asn, nb, av)
				}
			}
		}
	}
	if total == 0 {
		t.Fatal("no preferences assigned")
	}
	frac := float64(atypical) / float64(total)
	if frac > 0.06 {
		t.Fatalf("atypical fraction %.3f implausibly high", frac)
	}
}

func TestEffectiveLocalPref(t *testing.T) {
	topo := genSmall(t, 300, 5)
	// Find an atypical session and verify the violating value applies to
	// some but not (usually) all prefixes, deterministically.
	var asn, nb bgp.ASN
	for _, a := range topo.Order {
		for n := range topo.Policies[a].Import.AtypicalPref {
			asn, nb = a, n
			break
		}
		if asn != 0 {
			break
		}
	}
	if asn == 0 {
		t.Skip("no atypical session in this seed")
	}
	base := topo.Policies[asn].Import.NeighborPref[nb]
	av := topo.Policies[asn].Import.AtypicalPref[nb]
	sawBase, sawAtypical := false, false
	for p := range topo.PrefixOrigin {
		got := topo.EffectiveLocalPref(asn, nb, p)
		if got2 := topo.EffectiveLocalPref(asn, nb, p); got2 != got {
			t.Fatal("EffectiveLocalPref not deterministic")
		}
		switch got {
		case base:
			sawBase = true
		case av:
			sawAtypical = true
		default:
			// Per-prefix override plane may fire too; it deviates ±2
			// from base.
			if got > base+2 || got+2 < base {
				t.Fatalf("unexpected pref %d (base %d, atypical %d)", got, base, av)
			}
		}
	}
	if !sawAtypical {
		t.Error("atypical value never applied")
	}
	if !sawBase {
		t.Error("base value never applied")
	}
	// Unknown AS falls back to the protocol default.
	if got := topo.EffectiveLocalPref(65533, 1, netx.MustParsePrefix("20.0.0.0/24")); got != bgp.DefaultLocalPref {
		t.Fatalf("unknown AS pref = %d", got)
	}
}

func TestLocalPrefEvaluation(t *testing.T) {
	ip := ImportPolicy{
		NeighborPref: map[bgp.ASN]uint32{10: 95},
		PrefixPref: map[bgp.ASN]map[netx.Prefix]uint32{
			10: {netx.MustParsePrefix("20.0.0.0/24"): 70},
		},
	}
	if got := ip.LocalPref(10, netx.MustParsePrefix("20.0.0.0/24")); got != 70 {
		t.Fatalf("override = %d", got)
	}
	if got := ip.LocalPref(10, netx.MustParsePrefix("20.0.1.0/24")); got != 95 {
		t.Fatalf("neighbor base = %d", got)
	}
	if got := ip.LocalPref(99, netx.MustParsePrefix("20.0.1.0/24")); got != bgp.DefaultLocalPref {
		t.Fatalf("default = %d", got)
	}
}

func TestPrefixOverrideDeterminism(t *testing.T) {
	topo := genSmall(t, 200, 9)
	// Find an AS with a per-prefix neighbor.
	var asn, nb bgp.ASN
	for _, a := range topo.Order {
		for n := range topo.Policies[a].Import.PrefixPref {
			asn, nb = a, n
			break
		}
		if asn != 0 {
			break
		}
	}
	if asn == 0 {
		t.Skip("no per-prefix neighbor in this seed")
	}
	hits := 0
	for p := range topo.PrefixOrigin {
		v1, ok1 := topo.PrefixOverrideFor(asn, nb, p)
		v2, ok2 := topo.PrefixOverrideFor(asn, nb, p)
		if ok1 != ok2 || v1 != v2 {
			t.Fatalf("override not deterministic for %v", p)
		}
		if ok1 {
			hits++
		}
	}
	if hits == 0 {
		t.Log("no overrides hit for this neighbor; acceptable but unusual")
	}
	if _, ok := topo.PrefixOverrideFor(asn, 65535, netx.MustParsePrefix("20.0.0.0/24")); ok {
		t.Fatal("override for unmarked neighbor")
	}
	if _, ok := topo.PrefixOverrideFor(65535, nb, netx.MustParsePrefix("20.0.0.0/24")); ok {
		t.Fatal("override for unknown AS")
	}
}

func TestExportPolicyShapes(t *testing.T) {
	topo := genSmall(t, 400, 11)
	sawSelective, sawTag, sawSplit := false, false, false
	for _, asn := range topo.Order {
		pol := topo.Policies[asn]
		providers := topo.Graph.Providers(asn)
		pset := map[bgp.ASN]bool{}
		for _, p := range providers {
			pset[p] = true
		}
		for prefix, set := range pol.Export.OriginProviders {
			sawSelective = true
			if len(set) == 0 || len(set) >= len(providers)+1 {
				t.Fatalf("%v: selective set size %d of %d providers", asn, len(set), len(providers))
			}
			for p := range set {
				if !pset[p] {
					t.Fatalf("%v: selective set names non-provider %v", asn, p)
				}
			}
			if _, mine := topo.PrefixOrigin[prefix]; !mine {
				t.Fatalf("%v: selective policy for unoriginated prefix %v", asn, prefix)
			}
		}
		for prefix, tagged := range pol.Export.NoUpstream {
			sawTag = true
			if !pset[tagged] {
				t.Fatalf("%v: no-upstream names non-provider %v", asn, tagged)
			}
			if topo.PrefixOrigin[prefix] != asn {
				t.Fatalf("%v: no-upstream for foreign prefix", asn)
			}
		}
		// Split prefixes: a specific with OriginProviders disjoint from the
		// covering prefix's set, both originated here.
		for prefix := range pol.Export.OriginProviders {
			parent, ok := prefix.Parent()
			if !ok {
				continue
			}
			if topo.PrefixOrigin[parent] == asn {
				if cover, ok := pol.Export.OriginProviders[parent]; ok {
					disjoint := true
					for p := range pol.Export.OriginProviders[prefix] {
						if cover[p] {
							disjoint = false
						}
					}
					if disjoint {
						sawSplit = true
					}
				}
			}
		}
	}
	if !sawSelective || !sawTag {
		t.Fatalf("policy coverage: selective=%v tag=%v", sawSelective, sawTag)
	}
	_ = sawSplit // splits are probabilistic at 3%; presence checked in bigger fixture tests
}

func TestAggregationOnlyOnAllocated(t *testing.T) {
	topo := genSmall(t, 400, 13)
	sawAgg := false
	for _, asn := range topo.Order {
		for prefix := range topo.Policies[asn].Export.AggregateSpecifics {
			sawAgg = true
			origin := topo.PrefixOrigin[prefix]
			if topo.ASes[origin].AllocatedFrom[prefix] != asn {
				t.Fatalf("%v aggregates %v not allocated from it", asn, prefix)
			}
		}
	}
	if !sawAgg {
		t.Fatal("no aggregation cases generated at default config")
	}
}

func TestTransitExcludedDeterministic(t *testing.T) {
	ep := ExportPolicy{TransitSelective: 0.5}
	p := netx.MustParsePrefix("20.0.0.0/24")
	a := ep.TransitExcluded(1, p, 2)
	for i := 0; i < 10; i++ {
		if ep.TransitExcluded(1, p, 2) != a {
			t.Fatal("TransitExcluded not deterministic")
		}
	}
	off := ExportPolicy{}
	if off.TransitExcluded(1, p, 2) {
		t.Fatal("zero probability must never exclude")
	}
	// Rough rate check over many inputs.
	hits := 0
	const trials = 4000
	for i := 0; i < trials; i++ {
		q := netx.Prefix{Addr: uint32(i) << 12, Len: 20}
		if ep.TransitExcluded(1, q, 2) {
			hits++
		}
	}
	rate := float64(hits) / trials
	if rate < 0.4 || rate > 0.6 {
		t.Fatalf("exclusion rate %.3f far from configured 0.5", rate)
	}
}

func TestCommunityTaggingRoundTrip(t *testing.T) {
	ct := &CommunityTagging{AS: 12859, Variants: 3}
	rels := []asgraph.Relationship{asgraph.RelCustomer, asgraph.RelPeer, asgraph.RelProvider}
	for _, rel := range rels {
		for nb := bgp.ASN(1); nb < 50; nb++ {
			c, ok := ct.TagFor(rel, nb)
			if !ok {
				t.Fatalf("no tag for %v", rel)
			}
			back, ok := ct.ClassOf(c)
			if !ok || back != rel {
				t.Fatalf("ClassOf(TagFor(%v)) = %v, %v", rel, back, ok)
			}
		}
	}
	if _, ok := ct.TagFor(asgraph.RelSibling, 5); ok {
		t.Fatal("sibling must not be tagged")
	}
	if _, ok := ct.ClassOf(bgp.MakeCommunity(999, TagPeerBase)); ok {
		t.Fatal("foreign community must not classify")
	}
	if _, ok := ct.ClassOf(bgp.MakeCommunity(12859, 9)); ok {
		t.Fatal("out-of-range value must not classify")
	}
	scheme := ct.Scheme()
	if len(scheme) != 9 {
		t.Fatalf("scheme rows = %d, want 9 (3 classes x 3 variants)", len(scheme))
	}
}

func TestMutateExportPolicies(t *testing.T) {
	topo := genSmall(t, 300, 17)
	rng := rand.New(rand.NewSource(99))
	touched := topo.MutateExportPolicies(rng, 0.5)
	if len(touched) == 0 {
		t.Fatal("no prefixes churned at fraction 0.5")
	}
	// Mutated policies stay structurally valid.
	for _, asn := range topo.Order {
		pol := topo.Policies[asn]
		providers := topo.Graph.Providers(asn)
		pset := map[bgp.ASN]bool{}
		for _, p := range providers {
			pset[p] = true
		}
		for _, set := range pol.Export.OriginProviders {
			if len(set) == 0 {
				t.Fatalf("%v: empty selective set after mutation", asn)
			}
			for p := range set {
				if !pset[p] {
					t.Fatalf("%v: mutated set names non-provider", asn)
				}
			}
		}
	}
	// Mutation is reproducible under identical seeds.
	rng2 := rand.New(rand.NewSource(99))
	topo2 := genSmall(t, 300, 17)
	if rng2Touched := topo2.MutateExportPolicies(rng2, 0.5); len(rng2Touched) != len(touched) {
		t.Fatal("mutation not reproducible under identical seeds")
	}
	// A negative fraction is the no-churn control.
	if none := topo.MutateExportPolicies(rng, -1); len(none) != 0 {
		t.Fatalf("negative fraction churned %d prefixes", len(none))
	}
}

func TestRegionAndNameAssignment(t *testing.T) {
	topo := genSmall(t, 200, 21)
	regions := map[Region]int{}
	for _, asn := range topo.Order {
		info := topo.ASes[asn]
		if info.Name == "" {
			t.Fatalf("%v unnamed", asn)
		}
		regions[info.Region]++
	}
	if regions[RegionNA] == 0 || regions[RegionEU] == 0 {
		t.Fatalf("region distribution degenerate: %v", regions)
	}
	if regions[RegionNA] < regions[RegionAU] {
		t.Fatalf("NA should dominate AU: %v", regions)
	}
}

func TestSortedPrefixesHelper(t *testing.T) {
	m := map[netx.Prefix]bool{
		netx.MustParsePrefix("30.0.0.0/8"): true,
		netx.MustParsePrefix("10.0.0.0/8"): true,
	}
	got := sortedPrefixes(m)
	if len(got) != 2 || got[0].String() != "10.0.0.0/8" {
		t.Fatalf("sortedPrefixes = %v", got)
	}
}
