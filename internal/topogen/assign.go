package topogen

import (
	"math/rand"
	"sort"

	"github.com/policyscope/policyscope/internal/asgraph"
	"github.com/policyscope/policyscope/internal/bgp"
	"github.com/policyscope/policyscope/internal/netx"
)

// Ground-truth policy assignment. The marginals here are what the
// inference half of the repo is scored against.

// Base local-preference bands per relationship class. Individual
// neighbors get small deterministic jitter inside the band, so distinct
// neighbors usually carry distinct values (as the paper observes) while
// the class ordering customer > peer > provider holds for typical
// assignments.
const (
	basePrefCustomer = 100
	basePrefPeer     = 90
	basePrefProvider = 80
	prefJitter       = 5 // bands stay disjoint: 100..104, 90..94, 80..84
)

func (t *Topology) assignPolicies(rng *rand.Rand) {
	cfg := t.Config
	asns := make([]bgp.ASN, 0, len(t.ASes))
	for asn := range t.ASes {
		asns = append(asns, asn)
	}
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })

	for _, asn := range asns {
		p := &Policy{
			AS: asn,
			Import: ImportPolicy{
				NeighborPref: make(map[bgp.ASN]uint32),
				PrefixPref:   make(map[bgp.ASN]map[netx.Prefix]uint32),
				Atypical:     make(map[bgp.ASN]bool),
				AtypicalPref: make(map[bgp.ASN]uint32),
			},
			Export: ExportPolicy{
				OriginProviders:    make(map[netx.Prefix]map[bgp.ASN]bool),
				NoUpstream:         make(map[netx.Prefix]bgp.ASN),
				AggregateSpecifics: make(map[netx.Prefix]bool),
				PeerExclude:        make(map[transitKey]bool),
			},
		}
		t.Policies[asn] = p
		t.assignImport(rng, p)
		t.assignExport(rng, p)
		if rng.Float64() < cfg.TaggingProb {
			p.Tagging = &CommunityTagging{
				AS:        asn,
				Variants:  1 + rng.Intn(3),
				Published: rng.Float64() < cfg.PublishTaggingProb,
			}
		}
	}
	t.assignAggregation(rng)
}

func (t *Topology) assignImport(rng *rand.Rand, p *Policy) {
	cfg := t.Config
	for _, nb := range t.Graph.Neighbors(p.AS) {
		rel := t.Graph.Rel(p.AS, nb)
		var base uint32
		switch rel {
		case asgraph.RelCustomer:
			base = basePrefCustomer
		case asgraph.RelPeer:
			base = basePrefPeer
		case asgraph.RelProvider:
			base = basePrefProvider
		default: // siblings and unknowns keep the protocol default
			continue
		}
		pref := base + uint32(rng.Intn(prefJitter))
		if rng.Float64() < cfg.AtypicalPrefProb {
			if ok, v := t.atypicalPref(rng, p.AS, rel); ok {
				// The violating value applies to a hash-drawn share of
				// the neighbor's prefixes (see EffectiveLocalPref); the
				// session keeps its typical base value otherwise.
				p.Import.Atypical[nb] = true
				p.Import.AtypicalPref[nb] = v
			}
		}
		p.Import.NeighborPref[nb] = pref

		// A minority of neighbors carry per-prefix overrides; the
		// override pool is filled lazily by the simulator caller via
		// OverridePrefixes, because which prefixes arrive on a session is
		// not known at generation time. Here we only mark the neighbor.
		if rng.Float64() < cfg.PrefixPrefProb {
			p.Import.PrefixPref[nb] = make(map[netx.Prefix]uint32)
		}
	}
}

// atypicalPref draws a class-order-violating preference that is provably
// convergence-safe. Gao & Rexford's stability conditions permit any
// relative order of the peer and provider classes as long as transit ASes
// strictly prefer customer routes, so:
//
//   - at a transit AS (one with customers), atypicality is limited to
//     lifting a provider into (or above) the peer band or flattening
//     peer/provider into one band — both below the customer band;
//   - at a stub (no customers, hence never inside a dispute wheel), any
//     violation is safe, including preferring a provider or peer over
//     customers.
//
// The returned flag is false when the relationship admits no safe
// violation (e.g. a customer neighbor at a transit AS).
func (t *Topology) atypicalPref(rng *rand.Rand, asn bgp.ASN, rel asgraph.Relationship) (bool, uint32) {
	isStub := len(t.Graph.Customers(asn)) == 0
	switch rel {
	case asgraph.RelProvider:
		if isStub && rng.Float64() < 0.3 {
			// Stub prefers a provider like a customer route.
			return true, basePrefCustomer + uint32(rng.Intn(prefJitter))
		}
		// Provider lifted into the peer band ("provider not lower than
		// peer", the atypicality Table 2 mostly sees).
		return true, basePrefPeer + uint32(rng.Intn(prefJitter))
	case asgraph.RelPeer:
		if isStub {
			return true, basePrefCustomer + uint32(rng.Intn(prefJitter))
		}
		// Peer demoted into the provider band: provider ≥ peer violation
		// seen from the other side, still customer-dominant.
		return true, basePrefProvider + uint32(rng.Intn(prefJitter))
	case asgraph.RelCustomer:
		if isStub {
			// A stub with a customer neighbor cannot exist (customers
			// would make it non-stub); nothing to do.
			return false, 0
		}
		// Demoting a customer at a transit AS risks dispute wheels; skip.
		return false, 0
	}
	return false, 0
}

// EffectiveLocalPref resolves the local preference asn assigns to a
// route for prefix learned from neighbor, applying (in order) scenario
// overrides, per-prefix overrides, the atypical-prefix rule, and the
// neighbor base value. This is the single entry point the simulator
// uses, so ground-truth scoring and simulation can never disagree.
func (t *Topology) EffectiveLocalPref(asn, neighbor bgp.ASN, prefix netx.Prefix) uint32 {
	return t.EffectiveLocalPrefWith(t.Policies[asn], asn, neighbor, prefix)
}

// EffectiveLocalPrefWith is EffectiveLocalPref evaluated against an
// explicit policy instead of the topology's current one. The scenario
// engine uses it to reconstruct pre-event routes after a policy edit.
func (t *Topology) EffectiveLocalPrefWith(p *Policy, asn, neighbor bgp.ASN, prefix netx.Prefix) uint32 {
	if p == nil {
		return bgp.DefaultLocalPref
	}
	if v, ok := p.Override.LocalPref(neighbor, prefix); ok {
		return v
	}
	if v, ok := t.prefixOverrideWith(p, asn, neighbor, prefix); ok {
		return v
	}
	if av, ok := p.Import.AtypicalPref[neighbor]; ok {
		if hash01(uint32(asn), uint32(neighbor), prefix.Addr^0x5a5a5a5a, uint32(prefix.Len)) < t.Config.AtypicalPrefixShare {
			return av
		}
	}
	if v, ok := p.Import.NeighborPref[neighbor]; ok {
		return v
	}
	return bgp.DefaultLocalPref
}

// PrefixOverrideFor computes the per-prefix local preference for a
// (neighbor, prefix) pair on a neighbor marked for per-prefix
// assignment. The decision and the value are pure deterministic hashes —
// no state is mutated, so concurrent simulation workers and ground-truth
// scorers always agree. ok is false when the neighbor uses pure
// next-hop assignment or the prefix is not one of the overridden ones.
func (t *Topology) PrefixOverrideFor(asn, neighbor bgp.ASN, prefix netx.Prefix) (uint32, bool) {
	return t.prefixOverrideWith(t.Policies[asn], asn, neighbor, prefix)
}

func (t *Topology) prefixOverrideWith(p *Policy, asn, neighbor bgp.ASN, prefix netx.Prefix) (uint32, bool) {
	if p == nil {
		return 0, false
	}
	if _, marked := p.Import.PrefixPref[neighbor]; !marked {
		return 0, false
	}
	if hash01(uint32(asn), uint32(neighbor), prefix.Addr, uint32(prefix.Len)) >= t.Config.PrefixPrefShare {
		return 0, false
	}
	// Deviate from the neighbor's base value by ±2 so the prefix stands
	// out in the Fig-2 consistency measurement without leaving the band
	// entirely.
	base := p.Import.NeighborPref[neighbor]
	if base == 0 {
		base = bgp.DefaultLocalPref
	}
	delta := uint32(1 + uint32(hash01(prefix.Addr, uint32(neighbor))*2))
	if hash01(uint32(neighbor), prefix.Addr) < 0.5 {
		return base + delta, true
	}
	return base - delta, true
}

func (t *Topology) assignExport(rng *rand.Rand, p *Policy) {
	cfg := t.Config
	info := t.ASes[p.AS]
	providers := t.Graph.Providers(p.AS)

	// Backbone-less multi-site organizations: each prefix is a "site"
	// homed on exactly one provider. These are not traffic engineering
	// but look identical to selective announcement from outside — the
	// paper's AOL confounder. Multi-site assignment pre-empts the other
	// origin-side policies.
	if info.Tier == 3 && len(providers) >= 2 && len(info.Prefixes) >= 2 &&
		rng.Float64() < cfg.MultiSiteProb {
		info.MultiSite = true
		for i, prefix := range info.Prefixes {
			site := providers[i%len(providers)]
			p.Export.OriginProviders[prefix] = map[bgp.ASN]bool{site: true}
		}
		return
	}

	if len(providers) >= 2 {
		for _, prefix := range info.Prefixes {
			if rng.Float64() >= cfg.SelectiveAnnounceProb {
				continue
			}
			if rng.Float64() < cfg.NoUpstreamTagProb {
				// Announce everywhere, scope one provider's propagation.
				p.Export.NoUpstream[prefix] = providers[rng.Intn(len(providers))]
				continue
			}
			// Proper subset of providers, at least one.
			subsetSize := 1 + rng.Intn(len(providers)-1)
			perm := rng.Perm(len(providers))
			set := make(map[bgp.ASN]bool, subsetSize)
			for _, idx := range perm[:subsetSize] {
				set[providers[idx]] = true
			}
			p.Export.OriginProviders[prefix] = set
		}

		// Case-1 prefix splitting: take one prefix that can still be
		// split, announce the specific on one provider and the covering
		// prefix on the others.
		if rng.Float64() < cfg.SplitPrefixProb {
			t.splitOnePrefix(rng, p, providers)
		}
	}

	// Intermediate-AS selective announcement for transit ASes.
	if len(t.Graph.Customers(p.AS)) > 0 && len(providers) > 0 {
		p.Export.TransitSelective = cfg.TransitSelectiveProb
	}

	// Rare peer-facing withholding of own prefixes (Table 10).
	for _, peer := range t.Graph.Peers(p.AS) {
		if rng.Float64() >= cfg.PeerSelectiveProb {
			continue
		}
		// Withhold a random strict subset of own prefixes from this peer.
		if len(info.Prefixes) < 2 {
			continue
		}
		n := 1 + rng.Intn(len(info.Prefixes)-1)
		perm := rng.Perm(len(info.Prefixes))
		for _, idx := range perm[:n] {
			p.Export.PeerExclude[transitKey{Prefix: info.Prefixes[idx], Provider: peer}] = true
		}
	}
}

// splitOnePrefix implements the paper's Case 1: a /23-or-shorter prefix
// gains a more-specific half announced on a disjoint provider subset.
func (t *Topology) splitOnePrefix(rng *rand.Rand, p *Policy, providers []bgp.ASN) {
	info := t.ASes[p.AS]
	for _, prefix := range info.Prefixes {
		if prefix.Len >= 24 {
			continue
		}
		specific, _, ok := prefix.Split()
		if !ok {
			continue
		}
		if _, taken := t.PrefixOrigin[specific]; taken {
			continue
		}
		// The specific goes to provider A only; the covering prefix to
		// the remaining providers only.
		a := providers[rng.Intn(len(providers))]
		coverSet := make(map[bgp.ASN]bool)
		for _, pr := range providers {
			if pr != a {
				coverSet[pr] = true
			}
		}
		info.Prefixes = append(info.Prefixes, specific)
		netx.SortPrefixes(info.Prefixes)
		t.PrefixOrigin[specific] = p.AS
		if allocator, ok := info.AllocatedFrom[prefix]; ok {
			// Splitting a provider-allocated prefix keeps the specific
			// inside the provider's address block.
			info.AllocatedFrom[specific] = allocator
		}
		p.Export.OriginProviders[specific] = map[bgp.ASN]bool{a: true}
		p.Export.OriginProviders[prefix] = coverSet
		return
	}
}

// assignAggregation fills provider-side AggregateSpecifics for
// provider-allocated customer prefixes (Case 2).
func (t *Topology) assignAggregation(rng *rand.Rand) {
	cfg := t.Config
	for _, asn := range sortedASNs(t.ASes) {
		info := t.ASes[asn]
		prefixes := make([]netx.Prefix, 0, len(info.AllocatedFrom))
		for p := range info.AllocatedFrom {
			prefixes = append(prefixes, p)
		}
		netx.SortPrefixes(prefixes)
		for _, prefix := range prefixes {
			provider := info.AllocatedFrom[prefix]
			if rng.Float64() < cfg.AggregationProb {
				t.Policies[provider].Export.AggregateSpecifics[prefix] = true
			}
		}
	}
}

func sortedASNs(m map[bgp.ASN]*ASInfo) []bgp.ASN {
	out := make([]bgp.ASN, 0, len(m))
	for asn := range m {
		out = append(out, asn)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
