// Package topogen generates the synthetic Internet that replaces the
// paper's Nov-2002 measurement substrate: an annotated AS topology
// (Tier-1 clique, transit tiers, multihomed stubs, peering edges), a
// prefix allocation, and — crucially — a *ground-truth policy
// configuration* for every AS: import local-preference assignments and
// export policies including the selective announcement, community
// tagging, prefix splitting and provider aggregation behaviours whose
// inference the paper is about.
//
// Everything is driven by an explicit seed; two runs with equal Config
// produce identical topologies bit for bit.
package topogen

import (
	"errors"
	"fmt"
)

// Config controls topology generation. The zero value is not valid; start
// from DefaultConfig.
type Config struct {
	// Seed drives all randomness.
	Seed int64
	// NumASes is the total AS count (≥ 10).
	NumASes int

	// TierOneCount is the size of the top clique. 0 derives a count from
	// NumASes.
	TierOneCount int
	// TierTwoFraction is the share of ASes acting as regional transit.
	TierTwoFraction float64

	// PeeringDegreeT2 is the mean number of peer links per Tier-2 AS.
	PeeringDegreeT2 float64
	// StubPeeringProb is the probability a stub has one peer link.
	StubPeeringProb float64

	// MultihomeDist[k] is the probability a customer AS has k+1 providers.
	MultihomeDist []float64

	// MeanPrefixesT1/T2/Stub set prefix-count means per tier.
	MeanPrefixesT1, MeanPrefixesT2, MeanPrefixesStub float64

	// ProviderAllocatedProb is the probability a stub prefix is carved
	// from a provider's block (the precondition for Case-2 aggregation).
	ProviderAllocatedProb float64
	// AggregationProb is the probability the allocating provider actually
	// aggregates (suppresses) such a specific.
	AggregationProb float64

	// AtypicalPrefProb is the probability a neighbor carries local
	// preferences violating the customer>peer>provider order (the paper
	// measures ~0.01–5% atypical, Table 2).
	AtypicalPrefProb float64
	// AtypicalPrefixShare is the fraction of an atypical neighbor's
	// prefixes that actually receive the violating value (operators
	// deviate for specific destinations, not whole sessions; a full-
	// session violation would mark most of a table atypical, which
	// Table 2 rules out).
	AtypicalPrefixShare float64
	// PrefixPrefProb is the probability an AS carries per-prefix localpref
	// overrides for a neighbor (the paper's Fig 2 shows ~98% of prefixes
	// keyed on next-hop AS instead).
	PrefixPrefProb float64
	// PrefixPrefShare is the share of a neighbor's prefixes overridden
	// when per-prefix preferences are in use.
	PrefixPrefShare float64

	// SelectiveAnnounceProb is the probability a multihomed origin
	// announces a given prefix to only a subset of its providers
	// (Case 3, the dominant SA cause).
	SelectiveAnnounceProb float64
	// NoUpstreamTagProb is the probability a selective origin instead
	// announces to all providers but tags a scoped community asking one
	// provider not to re-export upward.
	NoUpstreamTagProb float64
	// TransitSelectiveProb is the probability a transit AS withholds a
	// given customer prefix from one of its providers (intermediate-AS
	// selective announcement).
	TransitSelectiveProb float64
	// SplitPrefixProb is the probability a multihomed origin splits a
	// prefix and announces the specific/covering pair on disjoint
	// provider subsets (Case 1).
	SplitPrefixProb float64

	// TaggingProb is the probability an AS deploys relationship-tagging
	// communities (the Appendix's verification substrate).
	TaggingProb float64
	// PublishTaggingProb is the probability a tagging AS publishes its
	// scheme (in IRR or on the web, like the paper's AS12859 and
	// AS6667); unpublished schemes must be inferred from prefix counts.
	PublishTaggingProb float64

	// PeerSelectiveProb is the probability a peer withholds some of its
	// own prefixes from a given peer (Table 10 shows this is rare).
	PeerSelectiveProb float64

	// MultiSiteProb is the probability a multihomed stub is actually a
	// backbone-less multi-site organization (the paper's AOL/AS1668
	// case): each site announces its prefixes through its own provider
	// only, producing SA-prefix *artifacts* that are not traffic
	// engineering. The paper flags these as a confounder for future
	// work; modelling them lets the repo measure their impact.
	MultiSiteProb float64
}

// DefaultConfig returns the tuning used throughout the repo: marginals
// chosen so the measured tables land in the paper's reported ranges.
func DefaultConfig(numASes int, seed int64) Config {
	return Config{
		Seed:                  seed,
		NumASes:               numASes,
		TierOneCount:          0, // derived
		TierTwoFraction:       0.16,
		PeeringDegreeT2:       3.0,
		StubPeeringProb:       0.06,
		MultihomeDist:         []float64{0.35, 0.45, 0.15, 0.05},
		MeanPrefixesT1:        14,
		MeanPrefixesT2:        5,
		MeanPrefixesStub:      2.2,
		ProviderAllocatedProb: 0.15,
		AggregationProb:       0.5,
		AtypicalPrefProb:      0.015,
		AtypicalPrefixShare:   0.10,
		PrefixPrefProb:        0.10,
		PrefixPrefShare:       0.15,
		SelectiveAnnounceProb: 0.30,
		NoUpstreamTagProb:     0.25,
		TransitSelectiveProb:  0.04,
		SplitPrefixProb:       0.03,
		TaggingProb:           0.35,
		PublishTaggingProb:    0.5,
		PeerSelectiveProb:     0.08,
		MultiSiteProb:         0.03,
	}
}

// Validate reports the first problem with c.
func (c Config) Validate() error {
	if c.NumASes < 10 {
		return errors.New("topogen: NumASes must be at least 10")
	}
	if c.TierOneCount < 0 || c.TierOneCount > c.NumASes/2 {
		return fmt.Errorf("topogen: TierOneCount %d out of range", c.TierOneCount)
	}
	if c.TierTwoFraction < 0 || c.TierTwoFraction > 0.9 {
		return fmt.Errorf("topogen: TierTwoFraction %v out of range", c.TierTwoFraction)
	}
	if len(c.MultihomeDist) == 0 {
		return errors.New("topogen: MultihomeDist empty")
	}
	var sum float64
	for _, p := range c.MultihomeDist {
		if p < 0 {
			return errors.New("topogen: negative MultihomeDist entry")
		}
		sum += p
	}
	if sum <= 0 {
		return errors.New("topogen: MultihomeDist sums to zero")
	}
	for name, p := range map[string]float64{
		"AtypicalPrefProb":      c.AtypicalPrefProb,
		"AtypicalPrefixShare":   c.AtypicalPrefixShare,
		"PrefixPrefProb":        c.PrefixPrefProb,
		"PrefixPrefShare":       c.PrefixPrefShare,
		"SelectiveAnnounceProb": c.SelectiveAnnounceProb,
		"NoUpstreamTagProb":     c.NoUpstreamTagProb,
		"TransitSelectiveProb":  c.TransitSelectiveProb,
		"SplitPrefixProb":       c.SplitPrefixProb,
		"TaggingProb":           c.TaggingProb,
		"PublishTaggingProb":    c.PublishTaggingProb,
		"PeerSelectiveProb":     c.PeerSelectiveProb,
		"MultiSiteProb":         c.MultiSiteProb,
		"ProviderAllocatedProb": c.ProviderAllocatedProb,
		"AggregationProb":       c.AggregationProb,
		"StubPeeringProb":       c.StubPeeringProb,
	} {
		if p < 0 || p > 1 {
			return fmt.Errorf("topogen: %s = %v outside [0,1]", name, p)
		}
	}
	return nil
}

func (c Config) tierOneCount() int {
	if c.TierOneCount > 0 {
		return c.TierOneCount
	}
	n := c.NumASes / 150
	if n < 5 {
		n = 5
	}
	if n > 12 {
		n = 12
	}
	return n
}
