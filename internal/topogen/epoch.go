package topogen

import (
	"math/rand"
	"sort"

	"github.com/policyscope/policyscope/internal/bgp"
	"github.com/policyscope/policyscope/internal/netx"
)

// Epoch support for the persistence experiments (Figures 6–7): network
// operators "change prefix exporting pattern at different time", so
// between collection epochs a fraction of multihomed origins re-roll the
// selective-announcement decision for one of their prefixes.

// MutateExportPolicies re-rolls the origin export policy of roughly
// `fraction` of the multihomed origin ASes, one prefix each, cycling a
// prefix between announce-to-all, announce-to-subset and no-upstream
// tagging. It returns the affected prefixes sorted, so callers can
// recompute only those routes. The rng drives which ASes churn; pass a
// per-epoch-seeded rng for reproducible series.
func (t *Topology) MutateExportPolicies(rng *rand.Rand, fraction float64) []netx.Prefix {
	var touched []netx.Prefix
	for _, asn := range t.Order {
		info := t.ASes[asn]
		providers := t.Graph.Providers(asn)
		if len(providers) < 2 || len(info.Prefixes) == 0 {
			continue
		}
		if rng.Float64() >= fraction {
			continue
		}
		prefix := info.Prefixes[rng.Intn(len(info.Prefixes))]
		pol := t.Policies[asn]
		delete(pol.Export.OriginProviders, prefix)
		delete(pol.Export.NoUpstream, prefix)
		switch rng.Intn(3) {
		case 0:
			// Announce to all providers (deletions above already did it).
		case 1:
			subsetSize := 1 + rng.Intn(len(providers)-1)
			perm := rng.Perm(len(providers))
			set := make(map[bgp.ASN]bool, subsetSize)
			for _, idx := range perm[:subsetSize] {
				set[providers[idx]] = true
			}
			pol.Export.OriginProviders[prefix] = set
		case 2:
			pol.Export.NoUpstream[prefix] = providers[rng.Intn(len(providers))]
		}
		touched = append(touched, prefix)
	}
	netx.SortPrefixes(touched)
	return touched
}

// sortedPrefixes is a small helper used by tests.
func sortedPrefixes(m map[netx.Prefix]bool) []netx.Prefix {
	out := make([]netx.Prefix, 0, len(m))
	for p := range m {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}
