package topogen

import (
	"math/rand"
	"sort"

	"github.com/policyscope/policyscope/internal/bgp"
	"github.com/policyscope/policyscope/internal/netx"
)

// Prefix allocation. Every AS receives a private address block sized by
// tier and originates prefixes carved from the block's first half; the
// second half is a delegation pool from which provider-allocated customer
// prefixes are carved (the precondition for the paper's Case-2
// "prefix aggregating" analysis, Table 9).

type blockAlloc struct {
	// cursor is the next free address, kept aligned by allocate.
	cursor uint32
}

// allocate returns the next length-aligned block of the given length.
func (b *blockAlloc) allocate(length uint8) (netx.Prefix, bool) {
	size := uint32(1) << (32 - length)
	// Align the cursor up to the block size.
	aligned := (b.cursor + size - 1) &^ (size - 1)
	if aligned < b.cursor || aligned+size < aligned {
		return netx.Prefix{}, false // exhausted the 32-bit space
	}
	b.cursor = aligned + size
	return netx.Prefix{Addr: aligned, Len: length}, true
}

type asBlock struct {
	block netx.Prefix
	// ownCursor carves the AS's own prefixes from the lower half;
	// delegCursor carves customer delegations from the upper half.
	ownCursor, delegCursor blockAlloc
	delegLimit             uint32
}

func newASBlock(block netx.Prefix) *asBlock {
	half := block.Addr + uint32(block.NumAddresses()/2)
	return &asBlock{
		block:       block,
		ownCursor:   blockAlloc{cursor: block.Addr},
		delegCursor: blockAlloc{cursor: half},
		delegLimit:  block.Addr + uint32(block.NumAddresses()-1),
	}
}

func (ab *asBlock) carveOwn(length uint8) (netx.Prefix, bool) {
	p, ok := ab.ownCursor.allocate(length)
	if !ok || p.Addr+uint32(p.NumAddresses()-1) > ab.block.Addr+uint32(ab.block.NumAddresses()/2-1) {
		return netx.Prefix{}, false
	}
	return p, true
}

func (ab *asBlock) carveDelegation(length uint8) (netx.Prefix, bool) {
	p, ok := ab.delegCursor.allocate(length)
	if !ok || p.Addr+uint32(p.NumAddresses()-1) > ab.delegLimit {
		return netx.Prefix{}, false
	}
	return p, true
}

func blockLenForTier(tier int) uint8 {
	switch tier {
	case 1:
		return 12
	case 2:
		return 16
	default:
		return 20
	}
}

func ownPrefixLen(rng *rand.Rand, tier int) uint8 {
	switch tier {
	case 1:
		return uint8(14 + rng.Intn(5)) // /14../18
	case 2:
		return uint8(18 + rng.Intn(5)) // /18../22
	default:
		return uint8(22 + rng.Intn(3)) // /22../24
	}
}

func (t *Topology) allocatePrefixes(rng *rand.Rand) {
	cfg := t.Config
	global := blockAlloc{cursor: netx.MustParsePrefix("20.0.0.0/8").Addr}

	// Deterministic order: ascending ASN.
	asns := make([]bgp.ASN, 0, len(t.ASes))
	for asn := range t.ASes {
		asns = append(asns, asn)
	}
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })

	blocks := make(map[bgp.ASN]*asBlock, len(asns))
	for _, asn := range asns {
		info := t.ASes[asn]
		block, ok := global.allocate(blockLenForTier(info.Tier))
		if !ok {
			// 32-bit space exhausted: stop allocating blocks; affected
			// ASes originate nothing. Only reachable with absurd configs.
			break
		}
		blocks[asn] = newASBlock(block)
	}

	meanFor := func(tier int) float64 {
		switch tier {
		case 1:
			return cfg.MeanPrefixesT1
		case 2:
			return cfg.MeanPrefixesT2
		default:
			return cfg.MeanPrefixesStub
		}
	}

	for _, asn := range asns {
		info := t.ASes[asn]
		ab := blocks[asn]
		if ab == nil {
			continue
		}
		count := 1 + poisson(rng, meanFor(info.Tier)-1)
		for i := 0; i < count; i++ {
			var (
				p        netx.Prefix
				ok       bool
				provider bgp.ASN
			)
			providers := t.Graph.Providers(asn)
			if info.Tier == 3 && len(providers) > 0 && rng.Float64() < cfg.ProviderAllocatedProb {
				provider = providers[rng.Intn(len(providers))]
				if pb := blocks[provider]; pb != nil {
					p, ok = pb.carveDelegation(uint8(22 + rng.Intn(3)))
				}
			}
			if !ok {
				provider = 0
				p, ok = ab.carveOwn(ownPrefixLen(rng, info.Tier))
			}
			if !ok {
				continue // block full; fewer prefixes for this AS
			}
			info.Prefixes = append(info.Prefixes, p)
			t.PrefixOrigin[p] = asn
			if provider != 0 {
				info.AllocatedFrom[p] = provider
			}
		}
		netx.SortPrefixes(info.Prefixes)
	}

	// Providers that delegated space announce the covering delegation
	// half-block so Case-2 aggregation leaves the space reachable.
	coverAdded := make(map[bgp.ASN]bool)
	for _, asn := range asns {
		info := t.ASes[asn]
		for _, provider := range sortedProviders(info.AllocatedFrom) {
			if coverAdded[provider] {
				continue
			}
			pb := blocks[provider]
			if pb == nil {
				continue
			}
			half := netx.Prefix{
				Addr: pb.block.Addr + uint32(pb.block.NumAddresses()/2),
				Len:  pb.block.Len + 1,
			}
			if _, taken := t.PrefixOrigin[half]; !taken {
				pi := t.ASes[provider]
				pi.Prefixes = append(pi.Prefixes, half)
				netx.SortPrefixes(pi.Prefixes)
				t.PrefixOrigin[half] = provider
			}
			coverAdded[provider] = true
		}
	}
}

func sortedProviders(m map[netx.Prefix]bgp.ASN) []bgp.ASN {
	seen := map[bgp.ASN]bool{}
	var out []bgp.ASN
	for _, p := range m {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
