package topogen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/policyscope/policyscope/internal/asgraph"
	"github.com/policyscope/policyscope/internal/bgp"
	"github.com/policyscope/policyscope/internal/netx"
)

// Region is a coarse geography tag, used only to render Table 1.
type Region string

// Regions, weighted roughly like the paper's data set (42 NA, 33 Eu,
// 3 Au, 2 As of 68 vantage ASes).
const (
	RegionNA Region = "NA"
	RegionEU Region = "Eu"
	RegionAS Region = "As"
	RegionAU Region = "Au"
)

// ASInfo describes one generated AS.
type ASInfo struct {
	ASN    bgp.ASN
	Name   string
	Region Region
	// Tier is the generated hierarchy level: 1 = top clique, 2 =
	// regional transit, 3 = edge/stub.
	Tier int
	// Prefixes are the prefixes this AS originates, in Compare order.
	Prefixes []netx.Prefix
	// AllocatedFrom records, for provider-allocated prefixes, which
	// provider's address block they were carved from.
	AllocatedFrom map[netx.Prefix]bgp.ASN
	// MultiSite marks backbone-less multi-site organizations whose
	// per-site announcements mimic selective announcement (the paper's
	// AOL case).
	MultiSite bool
}

// Topology is a complete generated Internet: annotated graph, prefix
// ownership and ground-truth policies.
type Topology struct {
	Config Config
	Graph  *asgraph.Graph
	// ASes maps every ASN to its description.
	ASes map[bgp.ASN]*ASInfo
	// Order lists all ASNs ascending (the canonical iteration order).
	Order []bgp.ASN
	// PrefixOrigin maps every originated prefix to its origin AS.
	PrefixOrigin map[netx.Prefix]bgp.ASN
	// Policies maps every ASN to its ground-truth policy.
	Policies map[bgp.ASN]*Policy
}

// Generate builds a topology from cfg. It is deterministic in cfg.
func Generate(cfg Config) (*Topology, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := &Topology{
		Config:       cfg,
		Graph:        asgraph.New(),
		ASes:         make(map[bgp.ASN]*ASInfo, cfg.NumASes),
		PrefixOrigin: make(map[netx.Prefix]bgp.ASN),
		Policies:     make(map[bgp.ASN]*Policy, cfg.NumASes),
	}
	asns := drawASNs(rng, cfg.NumASes)
	t.buildHierarchy(rng, asns)
	t.allocatePrefixes(rng)
	t.assignPolicies(rng)

	t.Order = make([]bgp.ASN, 0, len(t.ASes))
	for asn := range t.ASes {
		t.Order = append(t.Order, asn)
	}
	sort.Slice(t.Order, func(i, j int) bool { return t.Order[i] < t.Order[j] })
	return t, nil
}

// drawASNs picks n distinct 16-bit-style ASNs, shuffled deterministically.
func drawASNs(rng *rand.Rand, n int) []bgp.ASN {
	seen := make(map[bgp.ASN]bool, n)
	out := make([]bgp.ASN, 0, n)
	for len(out) < n {
		a := bgp.ASN(1 + rng.Intn(64000))
		if !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	return out
}

// buildHierarchy wires the annotated graph: a Tier-1 peering clique,
// Tier-2 transit ASes multihomed into it, and stubs below, with peering
// sprinkled per the config.
func (t *Topology) buildHierarchy(rng *rand.Rand, asns []bgp.ASN) {
	cfg := t.Config
	n := len(asns)
	t1Count := cfg.tierOneCount()
	t2Count := int(float64(n) * cfg.TierTwoFraction)
	if t1Count+t2Count >= n {
		t2Count = n - t1Count - 1
	}
	tier1 := asns[:t1Count]
	tier2 := asns[t1Count : t1Count+t2Count]
	stubs := asns[t1Count+t2Count:]

	for i, asn := range asns {
		tier := 3
		if i < t1Count {
			tier = 1
		} else if i < t1Count+t2Count {
			tier = 2
		}
		region := drawRegion(rng)
		t.ASes[asn] = &ASInfo{
			ASN:           asn,
			Name:          nameFor(asn, tier, region),
			Region:        region,
			Tier:          tier,
			AllocatedFrom: make(map[netx.Prefix]bgp.ASN),
		}
		t.Graph.AddNode(asn)
	}

	// Tier-1 full peering clique.
	for i := 0; i < len(tier1); i++ {
		for j := i + 1; j < len(tier1); j++ {
			mustEdge(t.Graph.AddPeer(tier1[i], tier1[j]))
		}
	}

	// Tier-2: 1-3 Tier-1 providers each (preferential), plus peering.
	customerCount := make(map[bgp.ASN]int)
	for _, asn := range tier2 {
		k := 1 + rng.Intn(3)
		for _, p := range pickWeighted(rng, tier1, customerCount, k) {
			mustEdge(t.Graph.AddProviderCustomer(p, asn))
			customerCount[p]++
		}
	}
	for i, a := range tier2 {
		want := poisson(rng, cfg.PeeringDegreeT2/2)
		for j := 0; j < want; j++ {
			b := tier2[rng.Intn(len(tier2))]
			if b == a || i >= len(tier2) {
				continue
			}
			if t.Graph.Rel(a, b) == asgraph.RelNone {
				mustEdge(t.Graph.AddPeer(a, b))
			}
		}
	}

	// Stubs: providers drawn 80% from Tier-2, 20% from Tier-1, count from
	// the multihoming distribution; occasional stub-stub peering.
	for _, asn := range stubs {
		k := sampleDist(rng, cfg.MultihomeDist) + 1
		providers := make(map[bgp.ASN]bool, k)
		for len(providers) < k {
			var pool []bgp.ASN
			if rng.Float64() < 0.8 && len(tier2) > 0 {
				pool = tier2
			} else {
				pool = tier1
			}
			cands := pickWeighted(rng, pool, customerCount, 1)
			if len(cands) == 0 {
				break
			}
			p := cands[0]
			if providers[p] {
				continue
			}
			providers[p] = true
			mustEdge(t.Graph.AddProviderCustomer(p, asn))
			customerCount[p]++
		}
	}
	for i, a := range stubs {
		if rng.Float64() >= cfg.StubPeeringProb || len(stubs) < 2 {
			continue
		}
		b := stubs[rng.Intn(len(stubs))]
		if b == a || i >= len(stubs) {
			continue
		}
		if t.Graph.Rel(a, b) == asgraph.RelNone {
			mustEdge(t.Graph.AddPeer(a, b))
		}
	}
}

// pickWeighted draws k distinct ASes from pool with probability
// proportional to 1 + customers (preferential attachment, which yields
// the heavy-tailed degrees of Table 1).
func pickWeighted(rng *rand.Rand, pool []bgp.ASN, customers map[bgp.ASN]int, k int) []bgp.ASN {
	if k >= len(pool) {
		return append([]bgp.ASN(nil), pool...)
	}
	chosen := make(map[bgp.ASN]bool, k)
	out := make([]bgp.ASN, 0, k)
	for len(out) < k {
		total := 0
		for _, a := range pool {
			if !chosen[a] {
				total += 1 + customers[a]
			}
		}
		if total == 0 {
			break
		}
		x := rng.Intn(total)
		for _, a := range pool {
			if chosen[a] {
				continue
			}
			x -= 1 + customers[a]
			if x < 0 {
				chosen[a] = true
				out = append(out, a)
				break
			}
		}
	}
	return out
}

func sampleDist(rng *rand.Rand, dist []float64) int {
	var sum float64
	for _, p := range dist {
		sum += p
	}
	x := rng.Float64() * sum
	for i, p := range dist {
		x -= p
		if x < 0 {
			return i
		}
	}
	return len(dist) - 1
}

func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	// Knuth's method; means here are tiny.
	threshold := math.Exp(-mean)
	l := 1.0
	for k := 0; ; k++ {
		l *= rng.Float64()
		if l < threshold {
			return k
		}
		if k > 50 {
			return k
		}
	}
}

func drawRegion(rng *rand.Rand) Region {
	x := rng.Float64()
	switch {
	case x < 0.55:
		return RegionNA
	case x < 0.90:
		return RegionEU
	case x < 0.95:
		return RegionAS
	default:
		return RegionAU
	}
}

var tierLabel = map[int]string{1: "Backbone", 2: "Transit", 3: "Net"}

func nameFor(asn bgp.ASN, tier int, region Region) string {
	return fmt.Sprintf("%s-%s-%d", tierLabel[tier], region, asn)
}

func mustEdge(err error) {
	if err != nil {
		// Generation only adds edges after checking RelNone, so a
		// conflict is a programming error, not an input error.
		panic(err)
	}
}

// TierOf returns the generated tier of asn (0 when unknown).
func (t *Topology) TierOf(asn bgp.ASN) int {
	if info := t.ASes[asn]; info != nil {
		return info.Tier
	}
	return 0
}

// ASesByTier returns the ASNs of the given tier, ascending.
func (t *Topology) ASesByTier(tier int) []bgp.ASN {
	var out []bgp.ASN
	for _, asn := range t.Order {
		if t.ASes[asn].Tier == tier {
			out = append(out, asn)
		}
	}
	return out
}

// TotalPrefixes returns the number of originated prefixes.
func (t *Topology) TotalPrefixes() int { return len(t.PrefixOrigin) }

// OriginOf returns the origin AS of prefix.
func (t *Topology) OriginOf(prefix netx.Prefix) (bgp.ASN, bool) {
	asn, ok := t.PrefixOrigin[prefix]
	return asn, ok
}
