package topogen

import (
	"github.com/policyscope/policyscope/internal/asgraph"
	"github.com/policyscope/policyscope/internal/bgp"
	"github.com/policyscope/policyscope/internal/netx"
)

// Ground-truth policy model. These types are consumed by the simulator
// (internal/simulate) when producing routing tables, and by the
// experiment harness when scoring inference accuracy.

// NoUpstreamValue is the low half of the scoped action community
// "provider X: do not re-export this route to your providers or peers".
// The full community is MakeCommunity(X, NoUpstreamValue); only X honors
// it. This models the provider-published traffic-engineering communities
// the paper cites (Quoitin & Bonaventure's survey, [20]).
const NoUpstreamValue uint16 = 911

// Class base values used by relationship-tagging ASes, mirroring the
// AS12859 scheme of Table 11: peers 1000–1999, providers (transit)
// 2000–2999, customers 4000–4999.
const (
	TagPeerBase     uint16 = 1000
	TagProviderBase uint16 = 2000
	TagCustomerBase uint16 = 4000
	// TagClassWidth is the size of each class's value range.
	TagClassWidth uint16 = 1000
)

// Policy is the complete ground-truth configuration of one AS.
type Policy struct {
	AS     bgp.ASN
	Import ImportPolicy
	Export ExportPolicy
	// Tagging is non-nil when the AS tags inbound routes with
	// relationship communities.
	Tagging *CommunityTagging
	// Override holds scenario-injected local-preference assignments that
	// take precedence over every generated import rule. It is nil on
	// generated topologies; what-if policy edits populate it.
	Override *ImportOverride
}

// ImportOverride is a mutable local-preference overlay. Unlike the
// generated ImportPolicy (whose per-prefix behaviour is hash-driven so
// simulation and scoring agree), overrides are explicit: exactly the
// listed assignments change, nothing else.
type ImportOverride struct {
	// Neighbor assigns a preference to every route learned from the key
	// neighbor (unless a Prefix entry is more specific).
	Neighbor map[bgp.ASN]uint32
	// Prefix assigns a preference to a single (neighbor, prefix) pair.
	Prefix map[bgp.ASN]map[netx.Prefix]uint32
}

// LocalPref resolves the override for a route from neighbor, most
// specific first. ok is false when no override applies.
func (o *ImportOverride) LocalPref(neighbor bgp.ASN, prefix netx.Prefix) (uint32, bool) {
	if o == nil {
		return 0, false
	}
	if m, ok := o.Prefix[neighbor]; ok {
		if v, ok := m[prefix]; ok {
			return v, true
		}
	}
	v, ok := o.Neighbor[neighbor]
	return v, ok
}

// SetNeighbor records a neighbor-wide preference override.
func (o *ImportOverride) SetNeighbor(neighbor bgp.ASN, v uint32) {
	if o.Neighbor == nil {
		o.Neighbor = make(map[bgp.ASN]uint32)
	}
	o.Neighbor[neighbor] = v
}

// SetPrefix records a (neighbor, prefix) preference override.
func (o *ImportOverride) SetPrefix(neighbor bgp.ASN, prefix netx.Prefix, v uint32) {
	if o.Prefix == nil {
		o.Prefix = make(map[bgp.ASN]map[netx.Prefix]uint32)
	}
	m := o.Prefix[neighbor]
	if m == nil {
		m = make(map[netx.Prefix]uint32)
		o.Prefix[neighbor] = m
	}
	m[prefix] = v
}

// ImportPolicy assigns local preference.
type ImportPolicy struct {
	// NeighborPref is the next-hop-AS-keyed assignment: the localpref
	// given to every route from that neighbor (the ~98% case of Fig 2).
	NeighborPref map[bgp.ASN]uint32
	// PrefixPref holds per-prefix overrides: neighbor → prefix → value
	// (the small prefix-keyed remainder of Fig 2).
	PrefixPref map[bgp.ASN]map[netx.Prefix]uint32
	// Atypical marks neighbors carrying class-order-violating
	// preferences for part of their prefixes (ground truth for Table 2
	// scoring).
	Atypical map[bgp.ASN]bool
	// AtypicalPref holds the violating value used for an atypical
	// neighbor's affected prefixes; the affected subset is drawn by
	// deterministic hash with Config.AtypicalPrefixShare.
	AtypicalPref map[bgp.ASN]uint32
}

// LocalPref evaluates the import policy for a route for prefix learned
// from neighbor. Routes with no configured preference get the protocol
// default.
func (ip *ImportPolicy) LocalPref(neighbor bgp.ASN, prefix netx.Prefix) uint32 {
	if overrides, ok := ip.PrefixPref[neighbor]; ok {
		if v, ok := overrides[prefix]; ok {
			return v
		}
	}
	if v, ok := ip.NeighborPref[neighbor]; ok {
		return v
	}
	return bgp.DefaultLocalPref
}

// transitKey identifies an (exported prefix, provider) pair for
// intermediate-AS selective announcement.
type transitKey struct {
	Prefix   netx.Prefix
	Provider bgp.ASN
}

// ExportPolicy configures announcement behaviour beyond the standard
// valley-free export rules (which the simulator always enforces).
type ExportPolicy struct {
	// OriginProviders maps an originated prefix to the set of providers
	// it is announced to. A missing entry means "all providers".
	OriginProviders map[netx.Prefix]map[bgp.ASN]bool
	// NoUpstream maps an originated prefix to the single provider that
	// receives it with the scoped no-upstream community attached.
	NoUpstream map[netx.Prefix]bgp.ASN
	// TransitSelective, when positive, is the probability that this AS
	// withholds a given customer-learned prefix from a given provider
	// (intermediate-AS selective announcement). It is evaluated through a
	// deterministic hash of (AS, prefix, provider) so the simulator and
	// the ground-truth scorer always agree.
	TransitSelective float64
	// AggregateSpecifics lists customer prefixes carved from this AS's
	// own address space that it aggregates: learned routes for them are
	// not re-exported to any eBGP neighbor.
	AggregateSpecifics map[netx.Prefix]bool
	// PeerExclude lists (own prefix, peer) pairs withheld from a peer
	// (Table 10's rare case).
	PeerExclude map[transitKey]bool
}

// ExcludedFromPeer reports whether this AS withholds its own prefix from
// the given peer.
func (ep *ExportPolicy) ExcludedFromPeer(prefix netx.Prefix, peer bgp.ASN) bool {
	return ep.PeerExclude[transitKey{Prefix: prefix, Provider: peer}]
}

// TransitExcluded reports whether self withholds prefix from provider
// under the TransitSelective rule.
func (ep *ExportPolicy) TransitExcluded(self bgp.ASN, prefix netx.Prefix, provider bgp.ASN) bool {
	if ep.TransitSelective <= 0 {
		return false
	}
	return hash01(uint32(self), prefix.Addr, uint32(prefix.Len), uint32(provider)) < ep.TransitSelective
}

// hash01 maps its inputs to [0,1) with FNV-1a.
func hash01(vals ...uint32) float64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, v := range vals {
		for shift := 0; shift < 32; shift += 8 {
			h ^= uint64(v>>shift) & 0xff
			h *= prime
		}
	}
	return float64(h>>11) / float64(1<<53)
}

// AnnouncesToProvider reports whether prefix (originated here) is
// announced to provider p.
func (ep *ExportPolicy) AnnouncesToProvider(prefix netx.Prefix, p bgp.ASN) bool {
	set, ok := ep.OriginProviders[prefix]
	if !ok {
		return true
	}
	return set[p]
}

// CommunityTagging is a Table-11-style scheme: each relationship class
// maps to a range of community values; individual neighbors may get
// distinct variants inside the range.
type CommunityTagging struct {
	// AS is the tagging AS (the high half of every tag).
	AS bgp.ASN
	// Variants is how many distinct values each class uses (≥1).
	Variants int
	// Published marks schemes the operator published (IRR/web); the
	// verifier may use them directly instead of inferring semantics
	// from prefix counts.
	Published bool
}

// TagFor returns the community the AS attaches to routes received from
// neighbor, given the neighbor's relationship. Distinct neighbors spread
// deterministically across the class's variants.
func (ct *CommunityTagging) TagFor(rel asgraph.Relationship, neighbor bgp.ASN) (bgp.Community, bool) {
	var base uint16
	switch rel {
	case asgraph.RelCustomer:
		base = TagCustomerBase
	case asgraph.RelPeer:
		base = TagPeerBase
	case asgraph.RelProvider:
		base = TagProviderBase
	default:
		return 0, false
	}
	v := 1
	if ct.Variants > 1 {
		v = ct.Variants
	}
	variant := uint16(uint32(neighbor) % uint32(v)) // #nosec: deterministic spread, not crypto
	return bgp.MakeCommunity(ct.AS, base+variant*10), true
}

// ClassOf inverts TagFor: it maps a community value back to the
// relationship class its value range encodes. ok is false for values
// outside every class range or communities not owned by the tagging AS.
func (ct *CommunityTagging) ClassOf(c bgp.Community) (asgraph.Relationship, bool) {
	if c.AS() != ct.AS {
		return asgraph.RelNone, false
	}
	v := c.Value()
	switch {
	case v >= TagCustomerBase && v < TagCustomerBase+TagClassWidth:
		return asgraph.RelCustomer, true
	case v >= TagPeerBase && v < TagPeerBase+TagClassWidth:
		return asgraph.RelPeer, true
	case v >= TagProviderBase && v < TagProviderBase+TagClassWidth:
		return asgraph.RelProvider, true
	}
	return asgraph.RelNone, false
}

// Scheme renders the tagging scheme as (community, description) rows —
// the shape of Table 11.
func (ct *CommunityTagging) Scheme() []TagSchemeEntry {
	v := 1
	if ct.Variants > 1 {
		v = ct.Variants
	}
	var out []TagSchemeEntry
	add := func(base uint16, what string) {
		for i := 0; i < v; i++ {
			out = append(out, TagSchemeEntry{
				Community:   bgp.MakeCommunity(ct.AS, base+uint16(i)*10),
				Description: what,
			})
		}
	}
	add(TagPeerBase, "Route received from peer")
	add(TagProviderBase, "Route received from transit provider")
	add(TagCustomerBase, "Route received from customer")
	return out
}

// TagSchemeEntry is one row of a published community scheme.
type TagSchemeEntry struct {
	Community   bgp.Community
	Description string
}
