package topogen

import (
	"testing"
)

// TestPrefixSignatures pins the signature extraction the simulator's
// atom partition is built on: full coverage, determinism, origin
// embedding, and sensitivity of the keyed export policies.
func TestPrefixSignatures(t *testing.T) {
	topo, err := Generate(DefaultConfig(300, 42))
	if err != nil {
		t.Fatal(err)
	}
	sigs := topo.PrefixSignatures()
	if len(sigs) != len(topo.PrefixOrigin) {
		t.Fatalf("signatures cover %d of %d prefixes", len(sigs), len(topo.PrefixOrigin))
	}
	again := topo.PrefixSignatures()
	for p, s := range sigs {
		if again[p] != s {
			t.Fatalf("signature for %v not deterministic: %q vs %q", p, s, again[p])
		}
	}
	// Distinct origins can never share a signature (it embeds the
	// origin ASN as its first component).
	byOriginSig := make(map[string]map[uint32]bool)
	for p, s := range sigs {
		origin := uint32(topo.PrefixOrigin[p])
		if byOriginSig[s] == nil {
			byOriginSig[s] = make(map[uint32]bool)
		}
		byOriginSig[s][origin] = true
	}
	for s, origins := range byOriginSig {
		if len(origins) > 1 {
			t.Fatalf("signature %q spans %d origins", s, len(origins))
		}
	}
	// Keyed export policy must split signatures: a selectively announced
	// prefix and a plainly announced sibling from the same origin.
	found := false
	for _, asn := range topo.Order {
		pol := topo.Policies[asn]
		info := topo.ASes[asn]
		if pol == nil || len(pol.Export.OriginProviders) == 0 || len(info.Prefixes) < 2 {
			continue
		}
		for _, p := range info.Prefixes {
			if _, sel := pol.Export.OriginProviders[p]; !sel {
				continue
			}
			for _, q := range info.Prefixes {
				if q == p {
					continue
				}
				if _, sel2 := pol.Export.OriginProviders[q]; !sel2 {
					if sigs[p] == sigs[q] {
						t.Fatalf("SA prefix %v shares signature with plain %v: %q", p, q, sigs[p])
					}
					found = true
				}
			}
		}
	}
	if !found {
		t.Fatal("generator produced no SA/plain sibling pair to test")
	}
}

// TestSensitiveSessions pins the hash-drawn-policy enumeration.
func TestSensitiveSessions(t *testing.T) {
	topo, err := Generate(DefaultConfig(300, 42))
	if err != nil {
		t.Fatal(err)
	}
	imp := topo.ImportSensitiveSessions()
	if len(imp) == 0 {
		t.Fatal("no import-sensitive sessions on the default config")
	}
	for _, s := range imp {
		pol := topo.Policies[s.AS]
		_, marked := pol.Import.PrefixPref[s.Neighbor]
		_, atypical := pol.Import.AtypicalPref[s.Neighbor]
		if !marked && !atypical {
			t.Fatalf("session %v<-%v listed but carries no per-prefix rule", s.AS, s.Neighbor)
		}
	}
	// A neighbor-wide override shadows the hash-drawn rules; a
	// per-prefix override adds sensitivity.
	s0 := imp[0]
	topo.Policies[s0.AS].EnsureOverride().SetNeighbor(s0.Neighbor, 150)
	for _, s := range topo.ImportSensitiveSessions() {
		if s == s0 {
			t.Fatalf("session %v<-%v still sensitive under a neighbor-wide override", s.AS, s.Neighbor)
		}
	}
	var probe SensitiveSession
	for _, asn := range topo.Order {
		for _, nb := range topo.Graph.Neighbors(asn) {
			cand := SensitiveSession{AS: asn, Neighbor: nb}
			already := false
			for _, s := range topo.ImportSensitiveSessions() {
				if s == cand {
					already = true
					break
				}
			}
			if !already {
				probe = cand
				break
			}
		}
		if probe.AS != 0 {
			break
		}
	}
	prefix := topo.ASes[topo.Order[0]].Prefixes[0]
	topo.Policies[probe.AS].EnsureOverride().SetPrefix(probe.Neighbor, prefix, 140)
	hit := false
	for _, s := range topo.ImportSensitiveSessions() {
		if s == probe {
			hit = true
		}
	}
	if !hit {
		t.Fatalf("per-prefix override on %v<-%v not listed as sensitive", probe.AS, probe.Neighbor)
	}

	trn := topo.TransitSelectivePairs()
	for _, s := range trn {
		pol := topo.Policies[s.AS]
		if pol == nil || pol.Export.TransitSelective <= 0 {
			t.Fatalf("pair %v->%v listed without a transit-selective policy", s.AS, s.Neighbor)
		}
	}
	if len(trn) == 0 {
		t.Fatal("no transit-selective pairs on the default config")
	}
}
