package topogen

import (
	"github.com/policyscope/policyscope/internal/bgp"
	"github.com/policyscope/policyscope/internal/netx"
)

// Mutable topology views for the what-if scenario engine
// (internal/simulate). Clone produces an independent copy that scenario
// events — link failures, prefix withdrawals, policy edits — may mutate
// freely without disturbing the study's base topology.

// Clone returns a deep copy of the topology covering every structure a
// scenario event may mutate: the annotated graph, per-AS descriptions,
// prefix ownership and policies. Policy fields events never touch
// (generated import maps, aggregation sets) are shared.
func (t *Topology) Clone() *Topology {
	c := &Topology{
		Config:       t.Config,
		Graph:        t.Graph.Clone(),
		ASes:         make(map[bgp.ASN]*ASInfo, len(t.ASes)),
		Order:        append([]bgp.ASN(nil), t.Order...),
		PrefixOrigin: make(map[netx.Prefix]bgp.ASN, len(t.PrefixOrigin)),
		Policies:     make(map[bgp.ASN]*Policy, len(t.Policies)),
	}
	for asn, info := range t.ASes {
		ci := *info
		ci.Prefixes = append([]netx.Prefix(nil), info.Prefixes...)
		ci.AllocatedFrom = make(map[netx.Prefix]bgp.ASN, len(info.AllocatedFrom))
		for p, from := range info.AllocatedFrom {
			ci.AllocatedFrom[p] = from
		}
		c.ASes[asn] = &ci
	}
	for p, origin := range t.PrefixOrigin {
		c.PrefixOrigin[p] = origin
	}
	for asn, pol := range t.Policies {
		c.Policies[asn] = pol.CloneDeep()
	}
	return c
}

// CloneDeep copies every policy structure scenario events can mutate:
// origin-side export decisions and the import override overlay. The
// generated import maps, aggregation sets and peer exclusions are shared
// (events replace them wholesale, never edit them in place).
func (p *Policy) CloneDeep() *Policy {
	cp := &Policy{AS: p.AS, Import: p.Import, Tagging: p.Tagging}
	cp.Export = ExportPolicy{
		OriginProviders:    make(map[netx.Prefix]map[bgp.ASN]bool, len(p.Export.OriginProviders)),
		NoUpstream:         make(map[netx.Prefix]bgp.ASN, len(p.Export.NoUpstream)),
		TransitSelective:   p.Export.TransitSelective,
		AggregateSpecifics: p.Export.AggregateSpecifics,
		PeerExclude:        p.Export.PeerExclude,
	}
	for prefix, set := range p.Export.OriginProviders {
		ns := make(map[bgp.ASN]bool, len(set))
		for a, v := range set {
			ns[a] = v
		}
		cp.Export.OriginProviders[prefix] = ns
	}
	for prefix, provider := range p.Export.NoUpstream {
		cp.Export.NoUpstream[prefix] = provider
	}
	if p.Override != nil {
		ov := &ImportOverride{}
		for nbr, v := range p.Override.Neighbor {
			ov.SetNeighbor(nbr, v)
		}
		for nbr, m := range p.Override.Prefix {
			for prefix, v := range m {
				ov.SetPrefix(nbr, prefix, v)
			}
		}
		cp.Override = ov
	}
	return cp
}

// EnsureOverride returns the policy's import-override overlay, creating
// it on first use.
func (p *Policy) EnsureOverride() *ImportOverride {
	if p.Override == nil {
		p.Override = &ImportOverride{}
	}
	return p.Override
}

// SetAnnounceToProvider edits the origin-side selective-announcement set
// of an originated prefix: announce=false withholds prefix from
// provider, announce=true (re-)announces it. The OriginProviders entry
// is kept canonical — it is dropped when the set covers every provider,
// matching the generator's "missing entry means announce to all".
func (t *Topology) SetAnnounceToProvider(origin bgp.ASN, prefix netx.Prefix, provider bgp.ASN, announce bool) {
	pol := t.Policies[origin]
	if pol == nil {
		pol = &Policy{AS: origin}
		t.Policies[origin] = pol
	}
	providers := t.Graph.Providers(origin)
	set, ok := pol.Export.OriginProviders[prefix]
	if !ok {
		set = make(map[bgp.ASN]bool, len(providers))
		for _, p := range providers {
			set[p] = true
		}
	}
	if announce {
		set[provider] = true
	} else {
		delete(set, provider)
	}
	all := true
	for _, p := range providers {
		if !set[p] {
			all = false
			break
		}
	}
	if pol.Export.OriginProviders == nil {
		pol.Export.OriginProviders = make(map[netx.Prefix]map[bgp.ASN]bool)
	}
	if all {
		delete(pol.Export.OriginProviders, prefix)
	} else {
		pol.Export.OriginProviders[prefix] = set
	}
}

// SetNoUpstream attaches (provider != 0) or clears (provider == 0) the
// scoped no-upstream community on an originated prefix.
func (t *Topology) SetNoUpstream(origin bgp.ASN, prefix netx.Prefix, provider bgp.ASN) {
	pol := t.Policies[origin]
	if pol == nil {
		pol = &Policy{AS: origin}
		t.Policies[origin] = pol
	}
	if pol.Export.NoUpstream == nil {
		pol.Export.NoUpstream = make(map[netx.Prefix]bgp.ASN)
	}
	if provider == 0 {
		delete(pol.Export.NoUpstream, prefix)
	} else {
		pol.Export.NoUpstream[prefix] = provider
	}
}

// RemovePrefix deletes an originated prefix from the topology: ownership,
// the origin's AS description, and any origin-side export state.
func (t *Topology) RemovePrefix(prefix netx.Prefix) bool {
	origin, ok := t.PrefixOrigin[prefix]
	if !ok {
		return false
	}
	delete(t.PrefixOrigin, prefix)
	if info := t.ASes[origin]; info != nil {
		for i, p := range info.Prefixes {
			if p == prefix {
				info.Prefixes = append(info.Prefixes[:i], info.Prefixes[i+1:]...)
				break
			}
		}
	}
	if pol := t.Policies[origin]; pol != nil {
		delete(pol.Export.OriginProviders, prefix)
		delete(pol.Export.NoUpstream, prefix)
	}
	return true
}

// AddPrefix (re-)originates prefix at origin. It fails when the prefix
// is already originated or the origin AS is unknown.
func (t *Topology) AddPrefix(prefix netx.Prefix, origin bgp.ASN) bool {
	if _, taken := t.PrefixOrigin[prefix]; taken {
		return false
	}
	info := t.ASes[origin]
	if info == nil {
		return false
	}
	t.PrefixOrigin[prefix] = origin
	info.Prefixes = append(info.Prefixes, prefix)
	netx.SortPrefixes(info.Prefixes)
	return true
}
