package topogen

import (
	"sort"
	"strconv"
	"strings"

	"github.com/policyscope/policyscope/internal/bgp"
	"github.com/policyscope/policyscope/internal/netx"
)

// Policy-signature extraction for atom-sharded simulation.
//
// The simulator partitions prefixes into propagation-equivalence classes:
// prefixes with the same origin AS and the same *keyed* per-prefix export
// policy (selective-announcement provider sets, scoped no-upstream
// communities, peer withholding, provider-side aggregation) propagate
// identically except where a *hash-drawn* per-prefix policy — per-prefix
// local-preference overrides, atypical-preference subsets, transit
// selective announcement — fires differently. The keyed part becomes the
// signature computed here; the hash-drawn part is enumerated as
// "sensitive sessions" that the simulator re-evaluates per member prefix
// when fanning a converged representative out to its class.

// SensitiveSession is a directed session whose treatment of a route can
// depend on the route's prefix.
type SensitiveSession struct {
	// AS owns the prefix-dependent policy.
	AS bgp.ASN
	// Neighbor is the session peer: the announcing neighbor for import
	// sensitivity, the receiving provider for transit-export sensitivity.
	Neighbor bgp.ASN
}

// PrefixSignatures computes the canonical keyed-policy signature of every
// originated prefix. Two prefixes with equal signatures (which embed the
// origin AS) differ in propagation only through the hash-drawn policies
// covered by ImportSensitiveSessions and TransitSelectivePairs.
func (t *Topology) PrefixSignatures() map[netx.Prefix]string {
	// Provider-side aggregation is keyed (provider policy, prefix);
	// invert it once so each prefix sees the ASes that aggregate it.
	aggBy := make(map[netx.Prefix][]bgp.ASN)
	for _, asn := range t.Order {
		pol := t.Policies[asn]
		if pol == nil {
			continue
		}
		for p := range pol.Export.AggregateSpecifics {
			aggBy[p] = append(aggBy[p], asn)
		}
	}
	for _, list := range aggBy {
		sort.Slice(list, func(i, j int) bool { return list[i] < list[j] })
	}

	out := make(map[netx.Prefix]string, len(t.PrefixOrigin))
	var b strings.Builder
	for p, origin := range t.PrefixOrigin {
		b.Reset()
		b.WriteString(strconv.FormatUint(uint64(origin), 10))
		pol := t.Policies[origin]
		if pol != nil {
			if set, ok := pol.Export.OriginProviders[p]; ok {
				b.WriteString("|sa:")
				writeASNSet(&b, set)
			}
			if prov, ok := pol.Export.NoUpstream[p]; ok {
				b.WriteString("|nu:")
				b.WriteString(strconv.FormatUint(uint64(prov), 10))
			}
			if len(pol.Export.PeerExclude) > 0 {
				var peers []bgp.ASN
				for k := range pol.Export.PeerExclude {
					if k.Prefix == p {
						peers = append(peers, k.Provider)
					}
				}
				if len(peers) > 0 {
					sort.Slice(peers, func(i, j int) bool { return peers[i] < peers[j] })
					b.WriteString("|px:")
					for i, a := range peers {
						if i > 0 {
							b.WriteByte(',')
						}
						b.WriteString(strconv.FormatUint(uint64(a), 10))
					}
				}
			}
		}
		if aggs := aggBy[p]; len(aggs) > 0 {
			b.WriteString("|ag:")
			for i, a := range aggs {
				if i > 0 {
					b.WriteByte(',')
				}
				b.WriteString(strconv.FormatUint(uint64(a), 10))
			}
		}
		out[p] = b.String()
	}
	return out
}

func writeASNSet(b *strings.Builder, set map[bgp.ASN]bool) {
	asns := make([]bgp.ASN, 0, len(set))
	for a, v := range set {
		if v {
			asns = append(asns, a)
		}
	}
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })
	for i, a := range asns {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatUint(uint64(a), 10))
	}
}

// ImportSensitiveSessions lists every directed session (AS, announcing
// neighbor) whose effective local preference can vary by prefix: the
// neighbor carries per-prefix hash-drawn overrides, an atypical-
// preference subset, or explicit per-prefix scenario overrides — unless
// a neighbor-wide scenario override shadows the hash-drawn rules.
// Sessions are returned in deterministic (AS, Neighbor) order.
func (t *Topology) ImportSensitiveSessions() []SensitiveSession {
	var out []SensitiveSession
	var nbrs []bgp.ASN
	for _, asn := range t.Order {
		pol := t.Policies[asn]
		if pol == nil {
			continue
		}
		nbrs = nbrs[:0]
		seen := make(map[bgp.ASN]bool)
		add := func(nbr bgp.ASN) {
			if !seen[nbr] {
				seen[nbr] = true
				nbrs = append(nbrs, nbr)
			}
		}
		var shadowed map[bgp.ASN]uint32
		if pol.Override != nil {
			shadowed = pol.Override.Neighbor
			for nbr, m := range pol.Override.Prefix {
				if len(m) > 0 {
					add(nbr)
				}
			}
		}
		for nbr := range pol.Import.PrefixPref {
			if _, ok := shadowed[nbr]; !ok {
				add(nbr)
			}
		}
		for nbr := range pol.Import.AtypicalPref {
			if _, ok := shadowed[nbr]; !ok {
				add(nbr)
			}
		}
		sort.Slice(nbrs, func(i, j int) bool { return nbrs[i] < nbrs[j] })
		for _, nbr := range nbrs {
			out = append(out, SensitiveSession{AS: asn, Neighbor: nbr})
		}
	}
	return out
}

// TransitSelectivePairs lists every (transit AS, provider) session gated
// by the per-prefix transit-selective hash, in deterministic order.
func (t *Topology) TransitSelectivePairs() []SensitiveSession {
	var out []SensitiveSession
	for _, asn := range t.Order {
		pol := t.Policies[asn]
		if pol == nil || pol.Export.TransitSelective <= 0 {
			continue
		}
		for _, prov := range t.Graph.Providers(asn) {
			out = append(out, SensitiveSession{AS: asn, Neighbor: prov})
		}
	}
	return out
}
