package studyfmt

import (
	"encoding/binary"

	"github.com/policyscope/policyscope/internal/bgp"
	"github.com/policyscope/policyscope/internal/netx"
)

// Encode serializes s into a self-contained blob. Encoding is
// deterministic for a given Study: tables are written in slice order,
// entries in prefix Compare order (bgp.RIB.EachEntry), and the shared
// path/community regions assign IDs in first-encounter order.
func Encode(s *Study) ([]byte, error) {
	enc := &encoder{
		pathIDs: make(map[string]uint64),
		commIDs: make(map[string]uint64),
	}

	var sections [numSections][]byte
	sections[secConfig] = s.ConfigJSON
	sections[secTopo] = s.TopoCAIDA
	sections[secMRT] = s.MRT

	peers := make([]byte, 0, 2+4*len(s.Peers))
	peers = binary.AppendUvarint(peers, uint64(len(s.Peers)))
	for _, p := range s.Peers {
		peers = binary.AppendUvarint(peers, uint64(p))
	}
	sections[secPeers] = peers

	reach := make([]byte, 0, 2+8*len(s.Reach))
	reach = binary.AppendUvarint(reach, uint64(len(s.Reach)))
	for _, re := range s.Reach {
		reach = appendPrefix(reach, re.Prefix)
		reach = binary.AppendUvarint(reach, uint64(re.Count))
	}
	sections[secReach] = reach

	// Tables first: walking them populates the shared regions.
	var (
		tableData []byte
		tableIdx  []byte
	)
	tableIdx = binary.AppendUvarint(tableIdx, uint64(len(s.Tables)))
	for _, t := range s.Tables {
		start := len(tableData)
		numPrefixes := t.RIB.Len()
		numRoutes := t.RIB.NumRoutes()
		var err error
		t.RIB.EachEntry(func(prefix netx.Prefix, nbrs []bgp.ASN, routes []*bgp.Route, best *bgp.Route) {
			if err != nil {
				return
			}
			tableData, err = enc.appendEntry(tableData, prefix, nbrs, routes, best)
		})
		if err != nil {
			return nil, err
		}
		tableIdx = binary.AppendUvarint(tableIdx, uint64(t.Owner))
		kind := byte(0)
		if t.Collector {
			kind = 1
		}
		tableIdx = append(tableIdx, kind)
		tableIdx = binary.AppendUvarint(tableIdx, uint64(start))
		tableIdx = binary.AppendUvarint(tableIdx, uint64(len(tableData)-start))
		tableIdx = binary.AppendUvarint(tableIdx, uint64(numPrefixes))
		tableIdx = binary.AppendUvarint(tableIdx, uint64(numRoutes))
	}
	sections[secTableIndex] = tableIdx
	sections[secTableData] = tableData

	totalHops := 0
	for _, p := range enc.paths {
		totalHops += len(p)
	}
	pathsSec := make([]byte, 0, 4+5*totalHops)
	pathsSec = binary.AppendUvarint(pathsSec, uint64(len(enc.paths)))
	pathsSec = binary.AppendUvarint(pathsSec, uint64(totalHops))
	for _, p := range enc.paths {
		pathsSec = binary.AppendUvarint(pathsSec, uint64(len(p)))
		for _, a := range p {
			pathsSec = binary.AppendUvarint(pathsSec, uint64(a))
		}
	}
	sections[secPaths] = pathsSec

	totalMembers := 0
	for _, cs := range enc.comms {
		totalMembers += len(cs)
	}
	commsSec := make([]byte, 0, 4+5*totalMembers)
	commsSec = binary.AppendUvarint(commsSec, uint64(len(enc.comms)))
	commsSec = binary.AppendUvarint(commsSec, uint64(totalMembers))
	for _, cs := range enc.comms {
		commsSec = binary.AppendUvarint(commsSec, uint64(len(cs)))
		for _, c := range cs {
			commsSec = binary.AppendUvarint(commsSec, uint64(c))
		}
	}
	sections[secComms] = commsSec

	// Assemble: header, directory, sections.
	total := headerSize
	for _, sec := range sections {
		total += len(sec)
	}
	blob := make([]byte, headerSize, total)
	copy(blob[0:4], magic[:])
	blob[4] = Version
	var flags byte
	if s.GroundTruth {
		flags |= flagGroundTruth
	}
	if len(s.TopoCAIDA) > 0 {
		flags |= flagTopoCAIDA
	}
	blob[5] = flags
	binary.LittleEndian.PutUint32(blob[8:12], s.Timestamp)
	off := uint64(headerSize)
	for i, sec := range sections {
		binary.LittleEndian.PutUint64(blob[16+8*i:], off)
		off += uint64(len(sec))
	}
	binary.LittleEndian.PutUint64(blob[16+8*numSections:], off)
	for _, sec := range sections {
		blob = append(blob, sec...)
	}
	return blob, nil
}

func appendPrefix(b []byte, p netx.Prefix) []byte {
	b = binary.AppendUvarint(b, uint64(p.Addr))
	return append(b, p.Len)
}

// encoder accumulates the deduplicated path/community regions while
// table entries are written.
type encoder struct {
	pathIDs map[string]uint64 // canonical key -> ID (1-based; 0 = empty)
	paths   []bgp.Path
	commIDs map[string]uint64
	comms   []bgp.Communities
	key     []byte
}

func (enc *encoder) pathID(p bgp.Path) uint64 {
	if len(p) == 0 {
		return 0
	}
	enc.key = bgp.AppendPathKey(enc.key[:0], p)
	if id, ok := enc.pathIDs[string(enc.key)]; ok {
		return id
	}
	enc.paths = append(enc.paths, p)
	id := uint64(len(enc.paths))
	enc.pathIDs[string(enc.key)] = id
	return id
}

func (enc *encoder) commID(cs bgp.Communities) uint64 {
	if len(cs) == 0 {
		return 0
	}
	enc.key = bgp.AppendCommunitiesKey(enc.key[:0], cs)
	if id, ok := enc.commIDs[string(enc.key)]; ok {
		return id
	}
	enc.comms = append(enc.comms, cs)
	id := uint64(len(enc.comms))
	enc.commIDs[string(enc.key)] = id
	return id
}

// appendEntry writes one prefix's entry: prefix, route count, best
// slot (1-based; 0 = none), then the routes in stored (ascending
// neighbor) order.
func (enc *encoder) appendEntry(b []byte, prefix netx.Prefix, nbrs []bgp.ASN, routes []*bgp.Route, best *bgp.Route) ([]byte, error) {
	b = appendPrefix(b, prefix)
	b = binary.AppendUvarint(b, uint64(len(routes)))
	bestSlot := uint64(0)
	if best != nil {
		for i, r := range routes {
			if r == best {
				bestSlot = uint64(i + 1)
				break
			}
		}
		if bestSlot == 0 {
			// best is not one of the candidate pointers (tables built
			// outside the simulator's capture path may clone); fall back
			// to value equality.
			for i, r := range routes {
				if routeValuesEqual(r, best) {
					bestSlot = uint64(i + 1)
					break
				}
			}
			if bestSlot == 0 {
				return nil, corrupt("entry %v: best route not among candidates", prefix)
			}
		}
	}
	b = binary.AppendUvarint(b, bestSlot)
	for i, r := range routes {
		b = binary.AppendUvarint(b, uint64(nbrs[i]))
		b = binary.AppendUvarint(b, enc.pathID(r.Path))
		b = binary.AppendUvarint(b, enc.commID(r.Communities))
		fl := byte(r.Origin) & 0x3
		if r.FromIBGP {
			fl |= 1 << 2
		}
		b = append(b, fl)
		b = binary.AppendUvarint(b, uint64(r.LocalPref))
		b = binary.AppendUvarint(b, uint64(r.MED))
		b = binary.AppendUvarint(b, uint64(r.NextHop))
		b = binary.AppendUvarint(b, uint64(r.IGPMetric))
		b = binary.AppendUvarint(b, uint64(r.RouterID))
	}
	return b, nil
}

func routeValuesEqual(a, b *bgp.Route) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Prefix != b.Prefix || !a.Path.Equal(b.Path) || a.NextHop != b.NextHop ||
		a.LocalPref != b.LocalPref || a.MED != b.MED || a.Origin != b.Origin ||
		a.FromIBGP != b.FromIBGP || a.IGPMetric != b.IGPMetric || a.RouterID != b.RouterID ||
		len(a.Communities) != len(b.Communities) {
		return false
	}
	for i := range a.Communities {
		if a.Communities[i] != b.Communities[i] {
			return false
		}
	}
	return true
}
