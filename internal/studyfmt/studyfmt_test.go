package studyfmt

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"github.com/policyscope/policyscope/internal/bgp"
	"github.com/policyscope/policyscope/internal/netx"
)

// buildStudy assembles a small but representative study: three tables
// (two vantages plus a collector) whose routes share AS paths and
// community sets across tables, non-trivial best selection, reach
// entries, peers, and an embedded opaque topology blob.
func buildStudy() *Study {
	mkRoute := func(p netx.Prefix, path bgp.Path, comms bgp.Communities, lp uint32) *bgp.Route {
		return &bgp.Route{
			Prefix:      p,
			Path:        path,
			Communities: comms,
			LocalPref:   lp,
			MED:         uint32(len(path)),
			NextHop:     0x0a000001 + uint32(path[0]),
			Origin:      bgp.OriginIGP,
			RouterID:    uint32(path[0]),
		}
	}
	p1 := netx.Prefix{Addr: 11 << 24, Len: 24}
	p2 := netx.Prefix{Addr: 11<<24 | 1<<8, Len: 24}
	pathA := bgp.Path{100, 200}
	pathB := bgp.Path{300, 200}
	comm := bgp.Communities{bgp.MakeCommunity(100, 7)}

	var tables []Table
	for i, owner := range []bgp.ASN{64512, 64513} {
		rib := bgp.NewRIB(owner)
		rib.Upsert(100, mkRoute(p1, pathA, comm, 120))
		rib.Upsert(300, mkRoute(p1, pathB, nil, 100+uint32(i)))
		rib.Upsert(100, mkRoute(p2, pathA, nil, 90))
		tables = append(tables, Table{Owner: owner, RIB: rib})
	}
	coll := bgp.NewRIB(6447)
	coll.Upsert(64512, mkRoute(p1, bgp.Path{64512, 100, 200}, comm, 100))
	coll.Upsert(64513, mkRoute(p2, bgp.Path{64513, 100, 200}, nil, 100))
	tables = append(tables, Table{Owner: 6447, Collector: true, RIB: coll})

	return &Study{
		ConfigJSON:  []byte(`{"ases":42}`),
		TopoCAIDA:   []byte("100|200|-1\n300|200|0\n"),
		GroundTruth: true,
		Timestamp:   1060000000,
		Peers:       []bgp.ASN{64512, 64513},
		Reach:       []ReachEntry{{Prefix: p1, Count: 5}, {Prefix: p2, Count: 3}},
		Tables:      tables,
		MRT:         nil,
	}
}

// TestRoundTrip: encode → decode → re-encode must reproduce the exact
// blob (the encoding is deterministic, so byte-level idempotence is the
// strongest round-trip property), and the decoded structure must match
// field-for-field.
func TestRoundTrip(t *testing.T) {
	s := buildStudy()
	blob, err := Encode(s)
	if err != nil {
		t.Fatal(err)
	}
	h, err := DecodeHeader(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !h.GroundTruth || !h.TopoCAIDA || h.Timestamp != s.Timestamp {
		t.Fatalf("header: %+v", h)
	}
	if !bytes.Equal(h.ConfigJSON, s.ConfigJSON) || !bytes.Equal(h.Topo, s.TopoCAIDA) {
		t.Fatal("header config/topo sections diverged")
	}
	got, err := h.DecodeBody(DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Tables) != len(s.Tables) {
		t.Fatalf("decoded %d tables, want %d", len(got.Tables), len(s.Tables))
	}
	for i, tab := range got.Tables {
		want := s.Tables[i]
		if tab.Owner != want.Owner || tab.Collector != want.Collector {
			t.Fatalf("table %d: owner/kind %v/%v", i, tab.Owner, tab.Collector)
		}
		if tab.RIB.Len() != want.RIB.Len() || tab.RIB.NumRoutes() != want.RIB.NumRoutes() {
			t.Fatalf("table %d: size diverged", i)
		}
	}
	reblob, err := Encode(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, reblob) {
		t.Fatal("re-encoding the decoded study changed bytes")
	}
}

// TestSharedRegionsDeduplicate: equal paths and community sets across
// tables must decode to shared slices, not per-route copies — the
// property the single paths/comms regions exist for.
func TestSharedRegionsDeduplicate(t *testing.T) {
	blob, err := Encode(buildStudy())
	if err != nil {
		t.Fatal(err)
	}
	h, err := DecodeHeader(blob)
	if err != nil {
		t.Fatal(err)
	}
	got, err := h.DecodeBody(DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// The same {100 200} path appears in both vantage tables; decoded
	// routes must alias one backing slice.
	var seen []*bgp.ASN
	for _, tab := range got.Tables[:2] {
		tab.RIB.EachCandidate(func(_ netx.Prefix, _ bgp.ASN, r *bgp.Route) {
			if len(r.Path) == 2 && r.Path[0] == 100 {
				seen = append(seen, &r.Path[0])
			}
		})
	}
	if len(seen) < 2 {
		t.Fatalf("shared path appeared %d times", len(seen))
	}
	for _, p := range seen[1:] {
		if p != seen[0] {
			t.Fatal("equal paths decoded into distinct allocations")
		}
	}
}

// TestDecodeSharesIntern: a community set already canonicalized in the
// intern table must decode to that exact slice, and new sets must land
// in the table for later engine workers.
func TestDecodeSharesIntern(t *testing.T) {
	blob, err := Encode(buildStudy())
	if err != nil {
		t.Fatal(err)
	}
	in := bgp.NewIntern()
	canon := bgp.Communities{bgp.MakeCommunity(100, 7)}
	canon = in.InternCommunities(bgp.AppendCommunitiesKey(nil, canon), canon)

	h, err := DecodeHeader(blob)
	if err != nil {
		t.Fatal(err)
	}
	got, err := h.DecodeBody(DecodeOptions{Intern: in})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, tab := range got.Tables {
		tab.RIB.EachCandidate(func(_ netx.Prefix, _ bgp.ASN, r *bgp.Route) {
			if len(r.Communities) == 1 && &r.Communities[0] == &canon[0] {
				found = true
			}
		})
	}
	if !found {
		t.Fatal("decoded community set does not alias the pre-interned canonical slice")
	}
}

func TestDecodeHeaderRejects(t *testing.T) {
	blob, err := Encode(buildStudy())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeHeader(blob[:headerSize-1]); !errors.Is(err, ErrFormat) {
		t.Fatalf("short blob: %v", err)
	}
	bad := append([]byte(nil), blob...)
	bad[0] = 'X'
	if _, err := DecodeHeader(bad); !errors.Is(err, ErrFormat) {
		t.Fatalf("bad magic: %v", err)
	}
	ver := append([]byte(nil), blob...)
	ver[4] = Version + 1
	if _, err := DecodeHeader(ver); !errors.Is(err, ErrVersion) {
		t.Fatalf("future version: %v", err)
	}
	dir := append([]byte(nil), blob...)
	dir[16] = 0xff // first directory entry below headerSize / non-monotonic
	if _, err := DecodeHeader(dir); !errors.Is(err, ErrFormat) {
		t.Fatalf("broken directory: %v", err)
	}
}

// decodeAll runs the full two-phase decode, returning the first error.
func decodeAll(blob []byte) error {
	h, err := DecodeHeader(blob)
	if err != nil {
		return err
	}
	_, err = h.DecodeBody(DecodeOptions{Parallelism: 1})
	return err
}

// TestTruncationNeverPanics decodes every prefix of a valid blob: each
// must fail cleanly with a typed error (never panic, never succeed with
// a full-length blob's content).
func TestTruncationNeverPanics(t *testing.T) {
	blob, err := Encode(buildStudy())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(blob); i++ {
		err := decodeAll(blob[:i])
		if err == nil {
			t.Fatalf("truncation at %d of %d decoded successfully", i, len(blob))
		}
		if !errors.Is(err, ErrFormat) && !errors.Is(err, ErrVersion) {
			t.Fatalf("truncation at %d: untyped error %v", i, err)
		}
	}
}

// TestByteFlipsNeverPanic flips every byte of a valid blob in turn; the
// decoder must survive each mutant (error or clean decode, no panic,
// and any error must be typed).
func TestByteFlipsNeverPanic(t *testing.T) {
	blob, err := Encode(buildStudy())
	if err != nil {
		t.Fatal(err)
	}
	mutant := make([]byte, len(blob))
	for i := 0; i < len(blob); i++ {
		copy(mutant, blob)
		mutant[i] ^= 0xff
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("byte flip at %d: panic %v", i, r)
				}
			}()
			if err := decodeAll(mutant); err != nil {
				if !errors.Is(err, ErrFormat) && !errors.Is(err, ErrVersion) {
					t.Fatalf("byte flip at %d: untyped error %v", i, err)
				}
			}
		}()
	}
}

// TestEncodeRejectsForeignBest: a best route that is neither a candidate
// pointer nor value-equal to one must be an encode-time error, not a
// silently wrong blob.
func TestEncodeRejectsForeignBest(t *testing.T) {
	p := netx.Prefix{Addr: 11 << 24, Len: 24}
	rib := bgp.NewRIB(64512)
	rib.Upsert(100, &bgp.Route{Prefix: p, Path: bgp.Path{100}, LocalPref: 100})
	foreign := &bgp.Route{Prefix: p, Path: bgp.Path{999}, LocalPref: 50}
	rib.InstallConverged(p, []bgp.ASN{100}, []*bgp.Route{rib.CandidateFrom(p, 100)}, foreign)
	_, err := Encode(&Study{Tables: []Table{{Owner: 64512, RIB: rib}}})
	if err == nil {
		t.Fatal("foreign best route encoded")
	}
	if !errors.Is(err, ErrFormat) {
		t.Fatalf("untyped error: %v", err)
	}
}

// TestEmptyStudy: a study with no tables, peers or reach entries still
// round-trips (the smallest valid blob).
func TestEmptyStudy(t *testing.T) {
	s := &Study{ConfigJSON: []byte(`{}`)}
	blob, err := Encode(s)
	if err != nil {
		t.Fatal(err)
	}
	h, err := DecodeHeader(blob)
	if err != nil {
		t.Fatal(err)
	}
	got, err := h.DecodeBody(DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Tables) != 0 || len(got.Peers) != 0 || len(got.Reach) != 0 {
		t.Fatalf("empty study decoded as %+v", got)
	}
}

// TestParallelDecodeMatchesSerial: the worker count cannot change the
// decoded content.
func TestParallelDecodeMatchesSerial(t *testing.T) {
	blob, err := Encode(buildStudy())
	if err != nil {
		t.Fatal(err)
	}
	decode := func(par int) string {
		h, err := DecodeHeader(blob)
		if err != nil {
			t.Fatal(err)
		}
		s, err := h.DecodeBody(DecodeOptions{Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		re, err := Encode(s)
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%x", re)
	}
	want := decode(1)
	for _, par := range []int{2, 8} {
		if got := decode(par); got != want {
			t.Fatalf("parallelism %d changed decoded content", par)
		}
	}
}
