package studyfmt

import (
	"encoding/binary"
	"fmt"
	"runtime"
	"sync"

	"github.com/policyscope/policyscope/internal/bgp"
)

// Header is the cheaply-decoded prefix of a blob: everything a reader
// needs before committing to a full body decode. The cache uses it to
// validate version/flags and to kick off topology regeneration (from
// ConfigJSON / Topo) concurrently with DecodeBody.
type Header struct {
	// Version is the blob's format version (always == Version once
	// DecodeHeader succeeded).
	Version byte
	// GroundTruth mirrors the header flag.
	GroundTruth bool
	// Timestamp is the snapshot timestamp.
	Timestamp uint32
	// ConfigJSON aliases the blob's config section.
	ConfigJSON []byte
	// Topo aliases the blob's topology descriptor section (CAIDA graph
	// bytes when TopoCAIDA, empty otherwise).
	Topo []byte
	// TopoCAIDA mirrors the header flag.
	TopoCAIDA bool

	blob []byte
	dir  [numSections + 1]uint64
}

// DecodeHeader validates the fixed header and section directory of
// blob and returns a Header ready for DecodeBody. The returned header
// aliases blob; the caller must keep blob immutable.
func DecodeHeader(blob []byte) (*Header, error) {
	if len(blob) < headerSize {
		return nil, corrupt("blob too short (%d bytes)", len(blob))
	}
	if [4]byte(blob[0:4]) != magic {
		return nil, corrupt("bad magic %q", blob[0:4])
	}
	if blob[4] != Version {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrVersion, blob[4], Version)
	}
	h := &Header{
		Version:     blob[4],
		GroundTruth: blob[5]&flagGroundTruth != 0,
		TopoCAIDA:   blob[5]&flagTopoCAIDA != 0,
		Timestamp:   binary.LittleEndian.Uint32(blob[8:12]),
		blob:        blob,
	}
	prev := uint64(headerSize)
	for i := 0; i <= numSections; i++ {
		off := binary.LittleEndian.Uint64(blob[16+8*i:])
		if off < prev || off > uint64(len(blob)) {
			return nil, corrupt("section directory entry %d out of order (%d)", i, off)
		}
		h.dir[i] = off
		prev = off
	}
	h.ConfigJSON = h.section(secConfig)
	h.Topo = h.section(secTopo)
	return h, nil
}

// section returns section i's bytes (aliasing the blob).
func (h *Header) section(i int) []byte {
	return h.blob[h.dir[i]:h.dir[i+1]]
}

// DecodeOptions tunes DecodeBody.
type DecodeOptions struct {
	// Parallelism bounds table-decode workers; 0 uses GOMAXPROCS.
	Parallelism int
	// Intern, when set, canonicalizes decoded community sets through
	// the shared intern table, so the simulation engine the study feeds
	// starts with the decoder's allocations already interned.
	Intern *bgp.Intern
}

// DecodeBody decodes the full study. Tables decode in parallel (each
// table's routes, paths-region references and neighbor lists land in
// per-table arenas carved into per-prefix subslices, installed through
// bgp.RIB's bulk path), after the shared regions decode once up front.
func (h *Header) DecodeBody(opts DecodeOptions) (*Study, error) {
	s := &Study{
		ConfigJSON:  h.ConfigJSON,
		TopoCAIDA:   h.Topo,
		GroundTruth: h.GroundTruth,
		Timestamp:   h.Timestamp,
		MRT:         h.section(secMRT),
	}
	if !h.TopoCAIDA {
		s.TopoCAIDA = nil
	}

	r := &reader{b: h.section(secPeers)}
	n, err := r.count(1)
	if err != nil {
		return nil, err
	}
	s.Peers = make([]bgp.ASN, n)
	for i := range s.Peers {
		v, err := r.u32()
		if err != nil {
			return nil, err
		}
		s.Peers[i] = bgp.ASN(v)
	}

	r = &reader{b: h.section(secReach)}
	n, err = r.count(3)
	if err != nil {
		return nil, err
	}
	s.Reach = make([]ReachEntry, n)
	for i := range s.Reach {
		p, err := r.prefix()
		if err != nil {
			return nil, err
		}
		c, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		s.Reach[i] = ReachEntry{Prefix: p, Count: int(c)}
	}

	paths, err := decodePaths(h.section(secPaths))
	if err != nil {
		return nil, err
	}
	comms, err := decodeComms(h.section(secComms), opts.Intern)
	if err != nil {
		return nil, err
	}

	// Table index.
	r = &reader{b: h.section(secTableIndex)}
	n, err = r.count(6)
	if err != nil {
		return nil, err
	}
	type tableRef struct {
		owner                        bgp.ASN
		collector                    bool
		off, length, nprefix, nroute int
	}
	data := h.section(secTableData)
	refs := make([]tableRef, n)
	for i := range refs {
		owner, err := r.u32()
		if err != nil {
			return nil, err
		}
		kind, err := r.byte()
		if err != nil {
			return nil, err
		}
		if kind > 1 {
			return nil, corrupt("table %d: unknown kind %d", i, kind)
		}
		var vals [4]uint64
		for j := range vals {
			if vals[j], err = r.uvarint(); err != nil {
				return nil, err
			}
		}
		off, length := vals[0], vals[1]
		if off > uint64(len(data)) || length > uint64(len(data))-off {
			return nil, corrupt("table %d: data range [%d,+%d) out of bounds", i, off, length)
		}
		// Each prefix costs >= 4 bytes, each route >= 9; bound both so a
		// corrupt count cannot drive a huge arena allocation.
		if vals[2] > length/4 || vals[3] > length/9 {
			return nil, corrupt("table %d: counts %d/%d overrun %d data bytes", i, vals[2], vals[3], length)
		}
		refs[i] = tableRef{
			owner:     bgp.ASN(owner),
			collector: kind == 1,
			off:       int(off),
			length:    int(length),
			nprefix:   int(vals[2]),
			nroute:    int(vals[3]),
		}
	}

	s.Tables = make([]Table, len(refs))
	workers := opts.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(refs) {
		workers = len(refs)
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		next     int
		firstErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if next >= len(refs) || firstErr != nil {
					mu.Unlock()
					return
				}
				i := next
				next++
				mu.Unlock()
				ref := refs[i]
				rib, err := decodeTable(ref.owner, data[ref.off:ref.off+ref.length],
					ref.nprefix, ref.nroute, paths, comms)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				s.Tables[i] = Table{Owner: ref.owner, Collector: ref.collector, RIB: rib}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return s, nil
}

// decodePaths decodes the shared path region: every path is a subslice
// of one backing array, shared by every route that references it.
func decodePaths(sec []byte) ([]bgp.Path, error) {
	r := &reader{b: sec}
	n, err := r.count(1)
	if err != nil {
		return nil, err
	}
	totalHops, err := r.count(1)
	if err != nil {
		return nil, err
	}
	paths := make([]bgp.Path, n)
	backing := make([]bgp.ASN, totalHops)
	used := 0
	for i := range paths {
		hops, err := r.count(1)
		if err != nil {
			return nil, err
		}
		if hops > totalHops-used {
			return nil, corrupt("path %d: %d hops overrun declared total %d", i, hops, totalHops)
		}
		sub := backing[used : used+hops : used+hops]
		used += hops
		for j := range sub {
			v, err := r.u32()
			if err != nil {
				return nil, err
			}
			sub[j] = bgp.ASN(v)
		}
		paths[i] = bgp.Path(sub)
	}
	return paths, nil
}

// decodeComms decodes the shared community-set region, canonicalizing
// each set through the intern table (nil-safe) under the same key the
// simulator's workers derive, so engine and decoder share allocations.
func decodeComms(sec []byte, in *bgp.Intern) ([]bgp.Communities, error) {
	r := &reader{b: sec}
	n, err := r.count(1)
	if err != nil {
		return nil, err
	}
	totalMembers, err := r.count(1)
	if err != nil {
		return nil, err
	}
	comms := make([]bgp.Communities, n)
	var key []byte
	used := 0
	for i := range comms {
		m, err := r.count(1)
		if err != nil {
			return nil, err
		}
		if m > totalMembers-used {
			return nil, corrupt("community set %d: %d members overrun declared total %d", i, m, totalMembers)
		}
		used += m
		cs := make(bgp.Communities, m)
		for j := range cs {
			v, err := r.u32()
			if err != nil {
				return nil, err
			}
			cs[j] = bgp.Community(v)
			if j > 0 && cs[j] <= cs[j-1] {
				return nil, corrupt("community set %d not sorted", i)
			}
		}
		key = bgp.AppendCommunitiesKey(key[:0], cs)
		if canon, ok := in.LookupCommunities(key); ok {
			comms[i] = canon
		} else {
			comms[i] = in.InternCommunities(key, cs)
		}
	}
	return comms, nil
}

// decodeTable decodes one table's entries into exact-size arenas and
// installs them through the RIB's bulk path.
func decodeTable(owner bgp.ASN, data []byte, nprefix, nroute int, paths []bgp.Path, comms []bgp.Communities) (*bgp.RIB, error) {
	r := &reader{b: data}
	rib := bgp.NewRIBSized(owner, nprefix)
	routeVals := make([]bgp.Route, nroute)
	routePtrs := make([]*bgp.Route, nroute)
	nbrsArena := make([]bgp.ASN, nroute)
	cursor := 0
	for i := 0; i < nprefix; i++ {
		prefix, err := r.prefix()
		if err != nil {
			return nil, err
		}
		nr, err := r.count(9)
		if err != nil {
			return nil, err
		}
		if nr == 0 {
			return nil, corrupt("table %v: empty entry for %v", owner, prefix)
		}
		if nr > nroute-cursor {
			return nil, corrupt("table %v: routes overrun declared total %d", owner, nroute)
		}
		bestSlot, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if bestSlot > uint64(nr) {
			return nil, corrupt("table %v %v: best slot %d of %d routes", owner, prefix, bestSlot, nr)
		}
		vals := routeVals[cursor : cursor+nr]
		ptrs := routePtrs[cursor : cursor+nr : cursor+nr]
		nbrs := nbrsArena[cursor : cursor+nr : cursor+nr]
		cursor += nr
		var prevNbr bgp.ASN
		for j := 0; j < nr; j++ {
			from, err := r.u32()
			if err != nil {
				return nil, err
			}
			if j > 0 && bgp.ASN(from) <= prevNbr {
				return nil, corrupt("table %v %v: neighbors not ascending", owner, prefix)
			}
			prevNbr = bgp.ASN(from)
			pathID, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			if pathID > uint64(len(paths)) {
				return nil, corrupt("table %v %v: path id %d of %d", owner, prefix, pathID, len(paths))
			}
			commID, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			if commID > uint64(len(comms)) {
				return nil, corrupt("table %v %v: community id %d of %d", owner, prefix, commID, len(comms))
			}
			fl, err := r.byte()
			if err != nil {
				return nil, err
			}
			var fields [5]uint32
			for k := range fields {
				if fields[k], err = r.u32(); err != nil {
					return nil, err
				}
			}
			rt := &vals[j]
			rt.Prefix = prefix
			if pathID > 0 {
				rt.Path = paths[pathID-1]
			}
			if commID > 0 {
				rt.Communities = comms[commID-1]
			}
			rt.Origin = bgp.Origin(fl & 0x3)
			rt.FromIBGP = fl&(1<<2) != 0
			rt.LocalPref = fields[0]
			rt.MED = fields[1]
			rt.NextHop = fields[2]
			rt.IGPMetric = fields[3]
			rt.RouterID = fields[4]
			nbrs[j] = bgp.ASN(from)
			ptrs[j] = rt
		}
		var best *bgp.Route
		if bestSlot > 0 {
			best = ptrs[bestSlot-1]
		}
		rib.InstallOwned(prefix, nbrs, ptrs, best)
	}
	if cursor != nroute {
		return nil, corrupt("table %v: %d routes decoded, index declared %d", owner, cursor, nroute)
	}
	if r.remaining() != 0 {
		return nil, corrupt("table %v: %d trailing bytes", owner, r.remaining())
	}
	return rib, nil
}
