// Package studyfmt defines the flat binary study format — the payload
// of the dataset cache. It replaces the gob encoding the cache used
// through PR 5 with a sectioned, offset-indexed layout built for the
// load path of internet-scale graphs:
//
//   - a fixed header (magic, version byte, flags, timestamp) that a
//     reader validates before touching anything else, so stale or
//     corrupt blobs fall through to regeneration cheaply;
//   - a section directory of absolute offsets, so a reader seeks
//     straight to what it needs (DecodeHeader parses only the header,
//     config and topology sections — the parts cache staleness checks
//     and concurrent topology regeneration consume — without decoding
//     a single route);
//   - one deduplicated region each for AS paths and community sets,
//     referenced by varint IDs from the route entries, so the
//     attribute sharing the simulator's intern layer establishes
//     survives serialization instead of being re-expanded per route;
//   - a per-table index (owner, offsets, entry counts) over one
//     varint-packed table-data section, sized so the decoder
//     preallocates exact-length arenas per table and installs entries
//     through bgp.RIB's bulk path (InstallOwned) with zero per-route
//     map or slice growth, and decodes tables in parallel.
//
// The format is deliberately position-independent and append-only in
// spirit: every section is located via the directory, unknown trailing
// bytes are ignored, and any structural violation surfaces as
// ErrFormat (wrapped), which the cache treats as "regenerate".
package studyfmt

import (
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/policyscope/policyscope/internal/bgp"
	"github.com/policyscope/policyscope/internal/netx"
)

// Version is the format version this package reads and writes. Readers
// reject other versions with ErrVersion.
const Version = 1

// ErrFormat reports a structurally invalid blob (bad magic, truncated
// section, offset out of bounds, overdrawn count). Every decode error
// of this package wraps it (or ErrVersion), so callers can treat the
// whole class as "regenerate from source".
var ErrFormat = errors.New("studyfmt: malformed study blob")

// ErrVersion reports a blob written by a different format version.
var ErrVersion = errors.New("studyfmt: unsupported format version")

var magic = [4]byte{'P', 'S', 'S', 'F'}

// Header flag bits.
const (
	flagGroundTruth = 1 << 0 // the study carries a ground-truth topology
	flagTopoCAIDA   = 1 << 1 // the topo section holds a CAIDA-format graph
)

// Section indices of the directory, in file order.
const (
	secConfig     = iota // study configuration, raw JSON
	secTopo              // opaque topology descriptor (CAIDA graph bytes, or empty)
	secPeers             // collector peer ASNs
	secReach             // per-prefix AS-level reach counts
	secPaths             // deduplicated AS-path region
	secComms             // deduplicated community-set region
	secTableIndex        // per-table directory over the table-data section
	secTableData         // varint-packed RIB entries of every table
	secMRT               // raw MRT bytes of MRT-sourced studies (or empty)
	numSections
)

// headerSize is the fixed prefix: 16 bytes of header proper plus the
// section directory ((numSections+1) uint64 offsets; entry i is the
// absolute start of section i, entry numSections the end of the last).
const headerSize = 16 + (numSections+1)*8

// Table is one routing table of a study: a vantage (collector-peer)
// table, or the collector's own merged table when Collector is set.
// The distinction matters because a peer ASN could in principle equal
// the collector ASN; kind, not owner, disambiguates.
type Table struct {
	Owner     bgp.ASN
	Collector bool
	RIB       *bgp.RIB
}

// ReachEntry is one prefix's AS-level reach count.
type ReachEntry struct {
	Prefix netx.Prefix
	Count  int
}

// Study is the decoded (or to-be-encoded) content of a blob. Encode
// requires Tables sorted in the order they should appear; the cache
// writes vantage tables ascending by owner followed by the collector
// table, and Decode returns them in stored order.
type Study struct {
	// ConfigJSON is the study configuration, JSON-encoded by the caller
	// (the format does not interpret it).
	ConfigJSON []byte
	// TopoCAIDA, when non-empty, is the topology's CAIDA-format
	// relationship-file serialization; empty means the topology is
	// regenerated from the configuration.
	TopoCAIDA []byte
	// GroundTruth marks studies carrying a ground-truth topology.
	GroundTruth bool
	// Timestamp is the snapshot timestamp.
	Timestamp uint32
	// Peers are the collector peer ASNs, ascending.
	Peers []bgp.ASN
	// Reach holds per-prefix reach counts in prefix Compare order.
	Reach []ReachEntry
	// Tables holds every serialized routing table.
	Tables []Table
	// MRT is the raw MRT path/bytes of MRT-sourced studies (the cache
	// stores the source path here), empty otherwise.
	MRT []byte
}

// corrupt builds an ErrFormat-wrapped error.
func corrupt(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrFormat, fmt.Sprintf(format, args...))
}

// reader is a bounds-checked cursor over one section's bytes. All
// accessors return an error instead of panicking, so corrupt blobs
// surface as ErrFormat.
type reader struct {
	b   []byte
	off int
}

func (r *reader) remaining() int { return len(r.b) - r.off }

func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, corrupt("bad varint at offset %d", r.off)
	}
	r.off += n
	return v, nil
}

// count reads a varint element count and validates it against the
// bytes left in the section (each element costs at least minBytes), so
// a corrupt count can never drive a huge allocation.
func (r *reader) count(minBytes int) (int, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if minBytes < 1 {
		minBytes = 1
	}
	if v > uint64(r.remaining()/minBytes) {
		return 0, corrupt("count %d overruns section (%d bytes left)", v, r.remaining())
	}
	return int(v), nil
}

func (r *reader) byte() (byte, error) {
	if r.off >= len(r.b) {
		return 0, corrupt("unexpected end of section")
	}
	c := r.b[r.off]
	r.off++
	return c, nil
}

func (r *reader) u32() (uint32, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if v > 0xffffffff {
		return 0, corrupt("value %d exceeds 32 bits", v)
	}
	return uint32(v), nil
}

func (r *reader) prefix() (netx.Prefix, error) {
	addr, err := r.u32()
	if err != nil {
		return netx.Prefix{}, err
	}
	ln, err := r.byte()
	if err != nil {
		return netx.Prefix{}, err
	}
	if ln > 32 {
		return netx.Prefix{}, corrupt("prefix length %d", ln)
	}
	return netx.Prefix{Addr: addr, Len: ln}, nil
}
