// Package ibgp refines one AS into multiple border routers with an iBGP
// full mesh — the substrate for the paper's Figure 2(b), which measures
// local-preference consistency across 30 AT&T backbone routers.
//
// The model: the AS's eBGP sessions are partitioned across routers. Each
// router applies its own import map (normally the AS-wide next-hop-AS
// policy, optionally with per-router prefix overrides that model
// configuration drift), selects a best route among its eBGP candidates,
// and advertises that choice to every other router over the mesh. Final
// selection uses the full decision process, where eBGP beats iBGP and
// the synthetic IGP metric breaks ties.
package ibgp

import (
	"fmt"
	"sort"

	"github.com/policyscope/policyscope/internal/bgp"
	"github.com/policyscope/policyscope/internal/netx"
	"github.com/policyscope/policyscope/internal/topogen"
)

// Options configures the refinement.
type Options struct {
	// Routers is the number of border routers (the paper's AT&T view has
	// 30).
	Routers int
	// DriftRouters is how many routers carry per-prefix localpref
	// overrides diverging from the AS-wide policy.
	DriftRouters int
	// DriftShare is the per-prefix probability (deterministic hash) that
	// a drifting router overrides a prefix's preference.
	DriftShare float64
	// Seed feeds the override hashing.
	Seed int64
}

// Router is one border router's view.
type Router struct {
	// ID is the router index, 1-based like the paper's Figure 2(b) x-axis.
	ID int
	// Neighbors are the eBGP sessions homed on this router.
	Neighbors []bgp.ASN
	// Table is the router's Loc-RIB: eBGP candidates plus iBGP-learned
	// bests from the mesh.
	Table *bgp.RIB
}

// MultiRouterAS is the refined AS.
type MultiRouterAS struct {
	AS      bgp.ASN
	Routers []*Router
}

// Build splits the AS's table (a full vantage RIB from the simulator)
// across routers. The source RIB's candidates carry the AS-wide import
// policy already applied; drifting routers rewrite localpref for a hash-
// selected subset of (neighbor, prefix) pairs.
func Build(topo *topogen.Topology, asn bgp.ASN, table *bgp.RIB, opts Options) (*MultiRouterAS, error) {
	if opts.Routers <= 0 {
		return nil, fmt.Errorf("ibgp: Routers must be positive")
	}
	if opts.DriftRouters > opts.Routers {
		opts.DriftRouters = opts.Routers
	}
	neighbors := topo.Graph.Neighbors(asn)
	if len(neighbors) == 0 {
		return nil, fmt.Errorf("ibgp: %v has no neighbors", asn)
	}
	m := &MultiRouterAS{AS: asn}
	for i := 0; i < opts.Routers; i++ {
		m.Routers = append(m.Routers, &Router{ID: i + 1, Table: bgp.NewRIB(asn)})
	}
	// Deterministic round-robin homing of sessions onto routers.
	homeOf := make(map[bgp.ASN]*Router, len(neighbors))
	for i, nb := range neighbors {
		r := m.Routers[i%opts.Routers]
		r.Neighbors = append(r.Neighbors, nb)
		homeOf[nb] = r
	}

	// Phase 1: install eBGP candidates on their home routers, applying
	// per-router drift.
	prefixes := table.Prefixes()
	for _, prefix := range prefixes {
		for _, cand := range table.Candidates(prefix) {
			nb, ok := cand.NextHopAS()
			if !ok {
				// Locally originated prefixes live on every router.
				for _, r := range m.Routers {
					local := cand.Clone()
					local.RouterID = uint32(r.ID)
					r.Table.Upsert(asn, local)
				}
				continue
			}
			home := homeOf[nb]
			if home == nil {
				continue // session to an AS that is not a graph neighbor
			}
			route := cand.Clone()
			route.RouterID = uint32(home.ID)
			if home.ID <= opts.DriftRouters &&
				driftHash(opts.Seed, home.ID, prefix) < opts.DriftShare {
				// Configuration drift: this router sets a prefix-keyed
				// preference instead of the next-hop-AS value.
				route.LocalPref = driftPref(route.LocalPref, opts.Seed, home.ID, prefix)
			}
			home.Table.Upsert(nb, route)
		}
	}

	// Phase 2: iBGP full mesh. Each router advertises its best
	// eBGP-learned route per prefix; receivers install it as an iBGP
	// candidate with an IGP metric reflecting router distance.
	type advert struct {
		from  *Router
		route *bgp.Route
	}
	adverts := make(map[netx.Prefix][]advert)
	for _, r := range m.Routers {
		for _, prefix := range r.Table.Prefixes() {
			best := r.Table.Best(prefix)
			if best == nil || best.FromIBGP {
				continue
			}
			adverts[prefix] = append(adverts[prefix], advert{from: r, route: best})
		}
	}
	ordered := make([]netx.Prefix, 0, len(adverts))
	for p := range adverts {
		ordered = append(ordered, p)
	}
	netx.SortPrefixes(ordered)
	for _, prefix := range ordered {
		for _, ad := range adverts[prefix] {
			for _, r := range m.Routers {
				if r == ad.from {
					continue
				}
				mirror := ad.route.Clone()
				mirror.FromIBGP = true
				mirror.IGPMetric = igpDistance(r.ID, ad.from.ID)
				mirror.RouterID = uint32(ad.from.ID)
				// Keyed by the *originating router* via a synthetic ASN
				// offset so multiple iBGP candidates coexist.
				r.Table.Upsert(ibgpKey(ad.from.ID), mirror)
			}
		}
	}
	return m, nil
}

// ibgpKey synthesizes a RIB candidate key for an iBGP session. Real
// ASNs are ≤ 32 bits but our tables key candidates by ASN; reserving a
// high range keeps iBGP entries distinct from any eBGP neighbor.
func ibgpKey(routerID int) bgp.ASN { return bgp.ASN(0xFFFF0000 + uint32(routerID)) }

// IsIBGPKey reports whether a candidate key names an iBGP mesh session.
func IsIBGPKey(asn bgp.ASN) bool { return asn >= 0xFFFF0000 }

func igpDistance(a, b int) uint32 {
	if a > b {
		return uint32(a - b)
	}
	return uint32(b - a)
}

func driftHash(seed int64, router int, prefix netx.Prefix) float64 {
	return hash01(uint32(seed), uint32(router), prefix.Addr, uint32(prefix.Len))
}

func driftPref(base uint32, seed int64, router int, prefix netx.Prefix) uint32 {
	delta := uint32(1 + uint32(hash01(prefix.Addr, uint32(router), uint32(seed))*3))
	if hash01(uint32(router), prefix.Addr) < 0.5 {
		return base + delta
	}
	if base > delta {
		return base - delta
	}
	return base + delta
}

// hash01 maps inputs to [0,1) with FNV-1a (same scheme as topogen).
func hash01(vals ...uint32) float64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, v := range vals {
		for shift := 0; shift < 32; shift += 8 {
			h ^= uint64(v>>shift) & 0xff
			h *= prime
		}
	}
	return float64(h>>11) / float64(1<<53)
}

// Router lookup helpers.

// RouterFor returns the router homing the session to neighbor.
func (m *MultiRouterAS) RouterFor(neighbor bgp.ASN) *Router {
	for _, r := range m.Routers {
		for _, nb := range r.Neighbors {
			if nb == neighbor {
				return r
			}
		}
	}
	return nil
}

// EBGPCandidates returns the router's eBGP-learned candidates for prefix
// (iBGP mirrors excluded), sorted by neighbor.
func (r *Router) EBGPCandidates(prefix netx.Prefix) []*bgp.Route {
	var out []*bgp.Route
	for _, cand := range r.Table.Candidates(prefix) {
		if !cand.FromIBGP {
			out = append(out, cand)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, _ := out[i].NextHopAS()
		b, _ := out[j].NextHopAS()
		return a < b
	})
	return out
}
