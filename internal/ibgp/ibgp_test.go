package ibgp

import (
	"testing"

	"github.com/policyscope/policyscope/internal/bgp"
	"github.com/policyscope/policyscope/internal/simulate"
	"github.com/policyscope/policyscope/internal/topogen"
)

func buildFixture(t *testing.T, routers, drift int) (*topogen.Topology, bgp.ASN, *MultiRouterAS) {
	t.Helper()
	topo, err := topogen.Generate(topogen.DefaultConfig(150, 71))
	if err != nil {
		t.Fatal(err)
	}
	// The largest tier-1 plays AT&T.
	var target bgp.ASN
	bestDeg := -1
	for _, asn := range topo.ASesByTier(1) {
		if d := topo.Graph.Degree(asn); d > bestDeg {
			target, bestDeg = asn, d
		}
	}
	res, err := simulate.Run(topo, simulate.Options{VantagePoints: []bgp.ASN{target}})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Build(topo, target, res.Tables[target], Options{
		Routers:      routers,
		DriftRouters: drift,
		DriftShare:   0.3,
		Seed:         9,
	})
	if err != nil {
		t.Fatal(err)
	}
	return topo, target, m
}

func TestBuildPartitionsSessions(t *testing.T) {
	topo, target, m := buildFixture(t, 8, 0)
	if len(m.Routers) != 8 {
		t.Fatalf("routers = %d", len(m.Routers))
	}
	// Every neighbor homed exactly once.
	seen := map[bgp.ASN]int{}
	for _, r := range m.Routers {
		for _, nb := range r.Neighbors {
			seen[nb]++
		}
	}
	for _, nb := range topo.Graph.Neighbors(target) {
		if seen[nb] != 1 {
			t.Fatalf("neighbor %v homed %d times", nb, seen[nb])
		}
	}
	// RouterFor agrees with the partition.
	for _, r := range m.Routers {
		for _, nb := range r.Neighbors {
			if got := m.RouterFor(nb); got != r {
				t.Fatalf("RouterFor(%v) = %v, want router %d", nb, got, r.ID)
			}
		}
	}
	if m.RouterFor(65500) != nil {
		t.Fatal("RouterFor on foreign AS must be nil")
	}
}

func TestIBGPMeshDistributesRoutes(t *testing.T) {
	_, _, m := buildFixture(t, 8, 0)
	// Every router must reach (almost) every prefix that any router
	// learned, via eBGP or the mesh.
	union := map[string]bool{}
	for _, r := range m.Routers {
		for _, p := range r.Table.Prefixes() {
			union[p.String()] = true
		}
	}
	for _, r := range m.Routers {
		have := 0
		for _, p := range r.Table.Prefixes() {
			if r.Table.Best(p) != nil {
				have++
			}
		}
		if float64(have) < 0.95*float64(len(union)) {
			t.Fatalf("router %d reaches %d of %d prefixes", r.ID, have, len(union))
		}
	}
}

func TestEBGPPreferredOverIBGP(t *testing.T) {
	_, _, m := buildFixture(t, 6, 0)
	// Wherever a router has an eBGP candidate with the top localpref
	// among its candidates, its best route must not be an iBGP mirror
	// with the same localpref.
	violations, checked := 0, 0
	for _, r := range m.Routers {
		for _, prefix := range r.Table.Prefixes() {
			best := r.Table.Best(prefix)
			if best == nil || !best.FromIBGP {
				continue
			}
			for _, c := range r.EBGPCandidates(prefix) {
				checked++
				if c.LocalPref == best.LocalPref && c.Path.Len() == best.Path.Len() &&
					c.Origin == best.Origin {
					violations++
				}
			}
		}
	}
	if violations > 0 {
		t.Fatalf("%d eBGP candidates lost to equal-attribute iBGP routes (checked %d)", violations, checked)
	}
}

func TestDriftChangesPreferences(t *testing.T) {
	_, _, clean := buildFixture(t, 6, 0)
	_, _, drifted := buildFixture(t, 6, 3)
	// Drifted routers must disagree with the clean build on some
	// localpref values; non-drifted routers must agree everywhere.
	diffs := 0
	for i, r := range drifted.Routers {
		cleanR := clean.Routers[i]
		for _, prefix := range r.Table.Prefixes() {
			for _, cand := range r.EBGPCandidates(prefix) {
				nb, _ := cand.NextHopAS()
				ref := cleanR.Table.CandidateFrom(prefix, nb)
				if ref == nil {
					continue
				}
				if cand.LocalPref != ref.LocalPref {
					diffs++
					if r.ID > 3 {
						t.Fatalf("non-drift router %d diverged at %v", r.ID, prefix)
					}
				}
			}
		}
	}
	if diffs == 0 {
		t.Fatal("drift routers produced no divergence")
	}
}

func TestBuildValidation(t *testing.T) {
	topo, err := topogen.Generate(topogen.DefaultConfig(100, 72))
	if err != nil {
		t.Fatal(err)
	}
	asn := topo.Order[0]
	rib := bgp.NewRIB(asn)
	if _, err := Build(topo, asn, rib, Options{Routers: 0}); err == nil {
		t.Fatal("zero routers must fail")
	}
	if _, err := Build(topo, 65533, rib, Options{Routers: 2}); err == nil {
		t.Fatal("AS with no neighbors must fail")
	}
	// DriftRouters clamped to Routers.
	if _, err := Build(topo, asn, rib, Options{Routers: 2, DriftRouters: 10}); err != nil {
		t.Fatalf("clamping failed: %v", err)
	}
}

func TestIBGPKeySpace(t *testing.T) {
	if !IsIBGPKey(ibgpKey(1)) || !IsIBGPKey(ibgpKey(30)) {
		t.Fatal("ibgp keys must be recognizable")
	}
	if IsIBGPKey(7018) || IsIBGPKey(65535) {
		t.Fatal("real ASNs misread as ibgp keys")
	}
}

func TestDeterministicBuild(t *testing.T) {
	_, _, a := buildFixture(t, 5, 2)
	_, _, b := buildFixture(t, 5, 2)
	for i := range a.Routers {
		ra, rb := a.Routers[i], b.Routers[i]
		if len(ra.Neighbors) != len(rb.Neighbors) {
			t.Fatalf("router %d session split differs", ra.ID)
		}
		pa, pb := ra.Table.Prefixes(), rb.Table.Prefixes()
		if len(pa) != len(pb) {
			t.Fatalf("router %d table size differs", ra.ID)
		}
		for j, p := range pa {
			if p != pb[j] {
				t.Fatalf("router %d prefix order differs", ra.ID)
			}
			ba, bb := ra.Table.Best(p), rb.Table.Best(p)
			if (ba == nil) != (bb == nil) || (ba != nil && ba.LocalPref != bb.LocalPref) {
				t.Fatalf("router %d best differs at %v", ra.ID, p)
			}
		}
	}
}
