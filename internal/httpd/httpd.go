// Package httpd is the hardened HTTP lifecycle both daemons
// (cmd/policyscoped, cmd/sweepd) run on: an http.Server with real
// read/write/idle timeouts instead of a bare http.ListenAndServe, and a
// graceful SIGTERM/SIGINT shutdown that stops accepting connections,
// lets in-flight requests drain (bounded by DrainTimeout), and only
// then exits. A Draining hook fires before the drain starts so the
// serving layer can flip /healthz into a draining state — load
// balancers stop sending work while the listener is still answering.
//
// The flag surface is shared too: Flags.Register installs the same
// -read-timeout/-write-timeout/-idle-timeout/-drain-timeout knobs on
// every daemon, so fleet units are configured identically.
package httpd

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/policyscope/policyscope/obs"
)

// Defaults. WriteTimeout defaults to 0 (disabled) deliberately: the
// /sweep and /sweep/shard endpoints stream NDJSON for as long as the
// sweep runs, and http.Server's WriteTimeout is an absolute deadline on
// the whole response, not an idle bound — a nonzero default would kill
// every long sweep mid-stream. Operators who serve only cheap queries
// can opt in via -write-timeout.
const (
	DefaultReadHeaderTimeout = 10 * time.Second
	DefaultReadTimeout       = time.Minute
	DefaultIdleTimeout       = 2 * time.Minute
	DefaultDrainTimeout      = 30 * time.Second
)

// Config is one daemon's server lifecycle configuration.
type Config struct {
	// Addr is the listen address (":8080").
	Addr string
	// ReadHeaderTimeout bounds reading one request's header block.
	ReadHeaderTimeout time.Duration
	// ReadTimeout bounds reading one whole request (header + body).
	ReadTimeout time.Duration
	// WriteTimeout bounds writing one whole response; 0 disables it
	// (required for streaming sweep endpoints — see package comment).
	WriteTimeout time.Duration
	// IdleTimeout bounds how long a keep-alive connection may sit idle.
	IdleTimeout time.Duration
	// DrainTimeout bounds the graceful shutdown: how long in-flight
	// requests get to finish after SIGTERM before the server closes
	// their connections hard.
	DrainTimeout time.Duration
	// Draining, when set, runs as soon as shutdown begins — before the
	// listener closes — so the handler can report itself draining.
	Draining func()
}

func (c Config) withDefaults() Config {
	if c.ReadHeaderTimeout == 0 {
		c.ReadHeaderTimeout = DefaultReadHeaderTimeout
	}
	if c.ReadTimeout == 0 {
		c.ReadTimeout = DefaultReadTimeout
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = DefaultIdleTimeout
	}
	if c.DrainTimeout == 0 {
		c.DrainTimeout = DefaultDrainTimeout
	}
	return c
}

// Flags is the shared daemon flag set for the lifecycle knobs.
type Flags struct {
	readHeader time.Duration
	read       time.Duration
	write      time.Duration
	idle       time.Duration
	drain      time.Duration
}

// Register installs the lifecycle flags on fs.
func (f *Flags) Register(fs *flag.FlagSet) {
	fs.DurationVar(&f.readHeader, "read-header-timeout", DefaultReadHeaderTimeout, "HTTP request-header read timeout")
	fs.DurationVar(&f.read, "read-timeout", DefaultReadTimeout, "HTTP whole-request read timeout")
	fs.DurationVar(&f.write, "write-timeout", 0, "HTTP whole-response write timeout (0 = off; nonzero kills long NDJSON sweep streams)")
	fs.DurationVar(&f.idle, "idle-timeout", DefaultIdleTimeout, "HTTP keep-alive idle timeout")
	fs.DurationVar(&f.drain, "drain-timeout", DefaultDrainTimeout, "graceful-shutdown drain bound: how long in-flight requests get after SIGTERM")
}

// Config materializes the flag values for one listen address.
func (f *Flags) Config(addr string) Config {
	return Config{
		Addr:              addr,
		ReadHeaderTimeout: f.readHeader,
		ReadTimeout:       f.read,
		WriteTimeout:      f.write,
		IdleTimeout:       f.idle,
		DrainTimeout:      f.drain,
	}
}

var (
	mDrains = obs.NewCounter("policyscope_httpd_drains_total",
		"Graceful shutdowns initiated (SIGTERM/SIGINT or context cancellation).")
	mDrainSeconds = obs.NewHistogram("policyscope_httpd_drain_seconds",
		"Graceful-shutdown drain duration, signal to last in-flight request done.", nil)
	mDrainTimeouts = obs.NewCounter("policyscope_httpd_drain_timeouts_total",
		"Drains that hit DrainTimeout and closed in-flight connections hard.")
)

// Run serves h at cfg.Addr until ctx is canceled or the process
// receives SIGTERM/SIGINT, then shuts down gracefully: cfg.Draining
// fires, the listener closes, and in-flight requests get
// cfg.DrainTimeout to finish. A clean drain returns nil; a drain that
// times out force-closes the remaining connections and returns the
// shutdown error, so callers can exit nonzero when requests were cut.
func Run(ctx context.Context, cfg Config, h http.Handler) error {
	cfg = cfg.withDefaults()
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return err
	}
	return serve(ctx, cfg, h, ln)
}

// serve is Run past the Listen, split for tests that need the bound
// listener.
func serve(ctx context.Context, cfg Config, h http.Handler, ln net.Listener) error {
	srv := &http.Server{
		Handler:           h,
		ReadHeaderTimeout: cfg.ReadHeaderTimeout,
		ReadTimeout:       cfg.ReadTimeout,
		WriteTimeout:      cfg.WriteTimeout,
		IdleTimeout:       cfg.IdleTimeout,
	}

	sigCtx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		// The listener failed outright (port taken away, fd limit);
		// nothing is draining.
		return err
	case <-sigCtx.Done():
	}

	stop() // a second signal during the drain kills the process normally
	mDrains.Inc()
	start := time.Now()
	if cfg.Draining != nil {
		cfg.Draining()
	}
	slog.Info("draining", "drain_timeout", cfg.DrainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), cfg.DrainTimeout)
	defer cancel()
	err := srv.Shutdown(drainCtx)
	mDrainSeconds.ObserveSince(start)
	if err != nil {
		// In-flight work outlived the bound: close the connections hard
		// so the process still exits promptly, and report the cut.
		mDrainTimeouts.Inc()
		_ = srv.Close()
		slog.Warn("drain timed out; connections closed", "after", time.Since(start).Round(time.Millisecond))
		return err
	}
	slog.Info("drained", "elapsed", time.Since(start).Round(time.Millisecond))
	// Serve has returned http.ErrServerClosed by now; a clean drain is a
	// clean exit.
	if serr := <-errc; serr != nil && !errors.Is(serr, http.ErrServerClosed) {
		return serr
	}
	return nil
}
