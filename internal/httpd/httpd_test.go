package httpd

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync/atomic"
	"testing"
	"time"
)

// startServe runs serve on an ephemeral listener and returns the base
// URL, the cancel that triggers shutdown, and the error channel.
func startServe(t *testing.T, cfg Config, h http.Handler) (string, context.CancelFunc, chan error) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- serve(ctx, cfg, h, ln) }()
	return "http://" + ln.Addr().String(), cancel, errc
}

// TestGracefulDrain: cancellation lets an in-flight request finish, the
// Draining hook fires before the handler completes, and Run returns nil.
func TestGracefulDrain(t *testing.T) {
	var draining atomic.Bool
	sawDraining := make(chan bool, 1)
	started := make(chan struct{})
	release := make(chan struct{})
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(started)
		<-release
		// The drain begins while we are in flight; the hook must have
		// run by the time the handler observes it.
		sawDraining <- draining.Load()
		fmt.Fprint(w, "done")
	})
	url, cancel, errc := startServe(t, Config{
		DrainTimeout: 5 * time.Second,
		Draining:     func() { draining.Store(true) },
	}, h)

	type result struct {
		body string
		err  error
	}
	resc := make(chan result, 1)
	go func() {
		resp, err := http.Get(url + "/")
		if err != nil {
			resc <- result{err: err}
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		resc <- result{body: string(b), err: err}
	}()

	<-started
	cancel() // begin the drain with the request still in flight
	// Give the drain a moment to start before releasing the handler, so
	// the handler provably completes *during* the drain.
	time.Sleep(50 * time.Millisecond)
	close(release)

	res := <-resc
	if res.err != nil || res.body != "done" {
		t.Fatalf("in-flight request did not complete through the drain: %q, %v", res.body, res.err)
	}
	if err := <-errc; err != nil {
		t.Fatalf("graceful drain returned %v, want nil", err)
	}
	if saw := <-sawDraining; !saw {
		t.Fatal("Draining hook had not run while the request drained")
	}
}

// TestDrainTimeout: a handler that outlives DrainTimeout gets cut and
// serve reports the timeout instead of hanging.
func TestDrainTimeout(t *testing.T) {
	started := make(chan struct{})
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(started)
		<-r.Context().Done() // hold until the hard close
	})
	url, cancel, errc := startServe(t, Config{DrainTimeout: 50 * time.Millisecond}, h)
	go func() {
		resp, err := http.Get(url + "/")
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-started
	cancel()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("drain timeout not reported")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serve hung past DrainTimeout")
	}
}

// TestServeRequests: the configured server answers plain requests.
func TestServeRequests(t *testing.T) {
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "ok")
	})
	url, cancel, errc := startServe(t, Config{}, h)
	resp, err := http.Get(url + "/")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(b) != "ok" {
		t.Fatalf("body %q", b)
	}
	cancel()
	if err := <-errc; err != nil {
		t.Fatalf("shutdown with no in-flight work failed: %v", err)
	}
}
