// Package netx provides compact IPv4 prefix types and a radix trie used
// throughout policyscope. Prefixes are stored as a (uint32 address, length)
// pair so that millions of routing-table entries stay cheap to copy, hash
// and compare. Only IPv4 is modelled: the reproduced paper (IMC 2003)
// predates meaningful IPv6 deployment and every table in it is IPv4.
package netx

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Prefix is an IPv4 CIDR block. The zero value is "0.0.0.0/0".
//
// The address is kept in canonical (masked) form by the constructors; a
// Prefix built from a composite literal is canonicalized lazily by the
// methods that require it.
type Prefix struct {
	// Addr is the network address in host byte order.
	Addr uint32
	// Len is the mask length, 0..32.
	Len uint8
}

// ErrBadPrefix is wrapped by all parse failures in this package.
var ErrBadPrefix = errors.New("netx: bad prefix")

// Mask returns the netmask of p as a uint32 (host byte order).
func Mask(length uint8) uint32 {
	if length == 0 {
		return 0
	}
	if length >= 32 {
		return ^uint32(0)
	}
	return ^uint32(0) << (32 - length)
}

// MustParsePrefix parses s and panics on error. For tests and constants.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// ParsePrefix parses "a.b.c.d/len" into a canonical Prefix. Host bits set
// beyond the mask are an error (routing tables never carry them).
func ParsePrefix(s string) (Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Prefix{}, fmt.Errorf("%w: %q missing '/'", ErrBadPrefix, s)
	}
	addr, err := ParseAddr(s[:slash])
	if err != nil {
		return Prefix{}, err
	}
	n, err := strconv.Atoi(s[slash+1:])
	if err != nil || n < 0 || n > 32 {
		return Prefix{}, fmt.Errorf("%w: %q bad length", ErrBadPrefix, s)
	}
	p := Prefix{Addr: addr, Len: uint8(n)}
	if p.Addr&^Mask(p.Len) != 0 {
		return Prefix{}, fmt.Errorf("%w: %q has host bits set", ErrBadPrefix, s)
	}
	return p, nil
}

// ParseAddr parses a dotted-quad IPv4 address into host byte order.
func ParseAddr(s string) (uint32, error) {
	var a uint32
	part := 0
	val := -1
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= '0' && c <= '9':
			if val < 0 {
				val = 0
			}
			val = val*10 + int(c-'0')
			if val > 255 {
				return 0, fmt.Errorf("%w: %q octet > 255", ErrBadPrefix, s)
			}
		case c == '.':
			if val < 0 || part == 3 {
				return 0, fmt.Errorf("%w: %q malformed", ErrBadPrefix, s)
			}
			a = a<<8 | uint32(val)
			val = -1
			part++
		default:
			return 0, fmt.Errorf("%w: %q bad character", ErrBadPrefix, s)
		}
	}
	if part != 3 || val < 0 {
		return 0, fmt.Errorf("%w: %q malformed", ErrBadPrefix, s)
	}
	return a<<8 | uint32(val), nil
}

// FormatAddr renders a host-byte-order IPv4 address as a dotted quad.
func FormatAddr(a uint32) string {
	var b [15]byte
	return string(appendAddr(b[:0], a))
}

func appendAddr(dst []byte, a uint32) []byte {
	for i := 3; i >= 0; i-- {
		dst = strconv.AppendUint(dst, uint64(a>>(8*i))&0xff, 10)
		if i > 0 {
			dst = append(dst, '.')
		}
	}
	return dst
}

// String renders p as "a.b.c.d/len".
func (p Prefix) String() string {
	var b [18]byte
	out := appendAddr(b[:0], p.Addr&Mask(p.Len))
	out = append(out, '/')
	out = strconv.AppendUint(out, uint64(p.Len), 10)
	return string(out)
}

// MarshalText implements encoding.TextMarshaler, so prefixes serialize
// as "a.b.c.d/len" in JSON values and map keys alike.
func (p Prefix) MarshalText() ([]byte, error) {
	return []byte(p.String()), nil
}

// UnmarshalText implements encoding.TextUnmarshaler.
func (p *Prefix) UnmarshalText(text []byte) error {
	parsed, err := ParsePrefix(string(text))
	if err != nil {
		return err
	}
	*p = parsed
	return nil
}

// Canonical returns p with host bits cleared.
func (p Prefix) Canonical() Prefix {
	p.Addr &= Mask(p.Len)
	return p
}

// Contains reports whether p covers q: every address in q is in p and q is
// at least as specific. A prefix contains itself.
func (p Prefix) Contains(q Prefix) bool {
	if q.Len < p.Len {
		return false
	}
	return (q.Addr^p.Addr)&Mask(p.Len) == 0
}

// ContainsAddr reports whether the address a falls inside p.
func (p Prefix) ContainsAddr(a uint32) bool {
	return (a^p.Addr)&Mask(p.Len) == 0
}

// Overlaps reports whether p and q share any address.
func (p Prefix) Overlaps(q Prefix) bool {
	return p.Contains(q) || q.Contains(p)
}

// Split returns the two halves of p (one bit more specific). It returns
// false if p is a /32 and cannot be split.
func (p Prefix) Split() (lo, hi Prefix, ok bool) {
	if p.Len >= 32 {
		return Prefix{}, Prefix{}, false
	}
	l := p.Len + 1
	lo = Prefix{Addr: p.Addr & Mask(p.Len), Len: l}
	hi = Prefix{Addr: lo.Addr | (1 << (32 - l)), Len: l}
	return lo, hi, true
}

// Parent returns the prefix one bit less specific than p. It returns false
// when p is the default route.
func (p Prefix) Parent() (Prefix, bool) {
	if p.Len == 0 {
		return Prefix{}, false
	}
	l := p.Len - 1
	return Prefix{Addr: p.Addr & Mask(l), Len: l}, true
}

// Sibling returns the other half of p's parent. ok is false for /0.
func (p Prefix) Sibling() (Prefix, bool) {
	if p.Len == 0 {
		return Prefix{}, false
	}
	return Prefix{Addr: p.Addr ^ (1 << (32 - p.Len)), Len: p.Len}.Canonical(), true
}

// Compare orders prefixes by address then by length (shorter first). It
// returns -1, 0 or +1.
func (p Prefix) Compare(q Prefix) int {
	pa, qa := p.Addr&Mask(p.Len), q.Addr&Mask(q.Len)
	switch {
	case pa < qa:
		return -1
	case pa > qa:
		return 1
	case p.Len < q.Len:
		return -1
	case p.Len > q.Len:
		return 1
	}
	return 0
}

// IsValid reports whether p is canonical (no host bits beyond the mask).
func (p Prefix) IsValid() bool {
	return p.Len <= 32 && p.Addr&^Mask(p.Len) == 0
}

// NumAddresses returns the number of addresses covered by p.
func (p Prefix) NumAddresses() uint64 {
	return 1 << (32 - uint(p.Len))
}

// SortPrefixes sorts ps in Compare order, in place.
func SortPrefixes(ps []Prefix) {
	sort.Slice(ps, func(i, j int) bool { return ps[i].Compare(ps[j]) < 0 })
}

// Aggregate2 reports whether a and b are sibling halves that can be merged,
// returning the merged parent when they are.
func Aggregate2(a, b Prefix) (Prefix, bool) {
	if a.Len != b.Len || a.Len == 0 {
		return Prefix{}, false
	}
	pa, _ := a.Parent()
	pb, _ := b.Parent()
	if pa != pb || a.Canonical() == b.Canonical() {
		return Prefix{}, false
	}
	return pa, true
}
