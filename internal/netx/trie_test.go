package netx

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTrieInsertGetDelete(t *testing.T) {
	var tr Trie[int]
	p1 := MustParsePrefix("10.0.0.0/8")
	p2 := MustParsePrefix("10.1.0.0/16")
	p3 := MustParsePrefix("10.1.2.0/24")

	if !tr.Insert(p1, 1) || !tr.Insert(p2, 2) || !tr.Insert(p3, 3) {
		t.Fatal("fresh inserts must report true")
	}
	if tr.Insert(p2, 22) {
		t.Fatal("overwrite must report false")
	}
	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tr.Len())
	}
	if v, ok := tr.Get(p2); !ok || v != 22 {
		t.Fatalf("Get(p2) = %d, %v", v, ok)
	}
	if _, ok := tr.Get(MustParsePrefix("10.1.0.0/17")); ok {
		t.Fatal("Get of absent prefix must fail")
	}
	if !tr.Delete(p2) {
		t.Fatal("Delete of present prefix must succeed")
	}
	if tr.Delete(p2) {
		t.Fatal("double delete must fail")
	}
	if tr.Len() != 2 {
		t.Fatalf("Len after delete = %d", tr.Len())
	}
	if _, ok := tr.Get(p1); !ok {
		t.Fatal("unrelated prefix lost after delete")
	}
}

func TestTrieLongestMatch(t *testing.T) {
	var tr Trie[string]
	tr.Insert(MustParsePrefix("0.0.0.0/0"), "default")
	tr.Insert(MustParsePrefix("12.0.0.0/8"), "eight")
	tr.Insert(MustParsePrefix("12.10.0.0/19"), "nineteen")
	tr.Insert(MustParsePrefix("12.10.1.0/24"), "twentyfour")

	cases := []struct {
		addr string
		want string
	}{
		{"12.10.1.55", "twentyfour"},
		{"12.10.2.1", "nineteen"},
		{"12.200.0.1", "eight"},
		{"99.0.0.1", "default"},
	}
	for _, c := range cases {
		a, err := ParseAddr(c.addr)
		if err != nil {
			t.Fatal(err)
		}
		_, v, ok := tr.LongestMatch(a)
		if !ok || v != c.want {
			t.Errorf("LongestMatch(%s) = %q, %v; want %q", c.addr, v, ok, c.want)
		}
	}

	var empty Trie[string]
	if _, _, ok := empty.LongestMatch(0); ok {
		t.Fatal("match in empty trie")
	}
}

func TestTrieCoveringCovered(t *testing.T) {
	var tr Trie[int]
	for i, s := range []string{"12.0.0.0/8", "12.10.0.0/19", "12.10.1.0/24", "13.0.0.0/8"} {
		tr.Insert(MustParsePrefix(s), i)
	}
	cov := tr.Covering(MustParsePrefix("12.10.1.0/24"))
	if len(cov) != 3 {
		t.Fatalf("Covering = %v, want 3 entries", cov)
	}
	if cov[0].String() != "12.0.0.0/8" || cov[2].String() != "12.10.1.0/24" {
		t.Fatalf("Covering order wrong: %v", cov)
	}
	if !tr.HasCoveringStrict(MustParsePrefix("12.10.1.0/24")) {
		t.Fatal("strict covering missed")
	}
	if tr.HasCoveringStrict(MustParsePrefix("13.0.0.0/8")) {
		t.Fatal("strict covering false positive")
	}

	sub := tr.CoveredBy(MustParsePrefix("12.0.0.0/8"))
	if len(sub) != 3 {
		t.Fatalf("CoveredBy = %v, want 3 entries", sub)
	}
	if !tr.HasCoveredStrict(MustParsePrefix("12.0.0.0/8")) {
		t.Fatal("strict covered missed")
	}
	if tr.HasCoveredStrict(MustParsePrefix("12.10.1.0/24")) {
		t.Fatal("strict covered false positive at leaf")
	}
	if got := tr.CoveredBy(MustParsePrefix("50.0.0.0/8")); got != nil {
		t.Fatalf("CoveredBy(absent subtree) = %v", got)
	}
}

func TestTrieWalkOrderAndEarlyStop(t *testing.T) {
	var tr Trie[int]
	in := []string{"13.0.0.0/8", "12.0.0.0/8", "12.10.1.0/24", "12.10.0.0/19"}
	for i, s := range in {
		tr.Insert(MustParsePrefix(s), i)
	}
	var seen []string
	tr.Walk(func(p Prefix, _ int) bool {
		seen = append(seen, p.String())
		return true
	})
	want := []string{"12.0.0.0/8", "12.10.0.0/19", "12.10.1.0/24", "13.0.0.0/8"}
	if len(seen) != len(want) {
		t.Fatalf("walk visited %v", seen)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("walk order %v, want %v", seen, want)
		}
	}
	n := 0
	tr.Walk(func(Prefix, int) bool { n++; return n < 2 })
	if n != 2 {
		t.Fatalf("early stop visited %d", n)
	}
	var empty Trie[int]
	empty.Walk(func(Prefix, int) bool { t.Fatal("walk on empty trie"); return false })
}

func TestTrieDefaultRouteEntry(t *testing.T) {
	var tr Trie[string]
	tr.Insert(Prefix{}, "default")
	if v, ok := tr.Get(Prefix{}); !ok || v != "default" {
		t.Fatal("default route lost")
	}
	p, v, ok := tr.LongestMatch(0xffffffff)
	if !ok || v != "default" || p.Len != 0 {
		t.Fatal("default route must match everything")
	}
}

// TestPropertyTrieMatchesBruteForce cross-checks trie queries against a
// linear scan over the same prefix set.
func TestPropertyTrieMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	f := func() bool {
		var tr Trie[int]
		var all []Prefix
		seen := map[Prefix]bool{}
		for i := 0; i < 60; i++ {
			p := randomPrefix(r)
			if !seen[p] {
				seen[p] = true
				all = append(all, p)
			}
			tr.Insert(p, i)
		}
		if tr.Len() != len(all) {
			return false
		}
		// Longest match at random addresses.
		for i := 0; i < 20; i++ {
			a := r.Uint32()
			var best Prefix
			bestLen := -1
			for _, p := range all {
				if p.ContainsAddr(a) && int(p.Len) > bestLen {
					best, bestLen = p, int(p.Len)
				}
			}
			gp, _, ok := tr.LongestMatch(a)
			if ok != (bestLen >= 0) {
				return false
			}
			if ok && gp != best {
				return false
			}
		}
		// Covering/covered against brute force for a random probe.
		probe := randomPrefix(r)
		var wantCover, wantSub int
		for _, p := range all {
			if p.Contains(probe) {
				wantCover++
			}
			if probe.Contains(p) {
				wantSub++
			}
		}
		return len(tr.Covering(probe)) == wantCover && len(tr.CoveredBy(probe)) == wantSub
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyTrieInsertDeleteLen(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	f := func() bool {
		var tr Trie[int]
		live := map[Prefix]bool{}
		for i := 0; i < 200; i++ {
			p := randomPrefix(r)
			if r.Intn(3) == 0 {
				want := live[p]
				if tr.Delete(p) != want {
					return false
				}
				delete(live, p)
			} else {
				want := !live[p]
				if tr.Insert(p, i) != want {
					return false
				}
				live[p] = true
			}
			if tr.Len() != len(live) {
				return false
			}
		}
		for p := range live {
			if _, ok := tr.Get(p); !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
