package netx

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParsePrefix(t *testing.T) {
	cases := []struct {
		in      string
		want    string
		wantErr bool
	}{
		{in: "10.0.0.0/8", want: "10.0.0.0/8"},
		{in: "0.0.0.0/0", want: "0.0.0.0/0"},
		{in: "255.255.255.255/32", want: "255.255.255.255/32"},
		{in: "192.168.4.0/22", want: "192.168.4.0/22"},
		{in: "12.0.0.0/19", want: "12.0.0.0/19"},
		{in: "12.10.1.0/24", want: "12.10.1.0/24"},
		{in: "10.0.0.1/8", wantErr: true}, // host bits set
		{in: "10.0.0.0/33", wantErr: true},
		{in: "10.0.0.0/-1", wantErr: true},
		{in: "10.0.0.0", wantErr: true},
		{in: "10.0.0/8", wantErr: true},
		{in: "10.0.0.256/32", wantErr: true},
		{in: "a.b.c.d/8", wantErr: true},
		{in: "10..0.0/8", wantErr: true},
		{in: "10.0.0.0.0/8", wantErr: true},
		{in: "/8", wantErr: true},
		{in: "", wantErr: true},
	}
	for _, c := range cases {
		got, err := ParsePrefix(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("ParsePrefix(%q) = %v, want error", c.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParsePrefix(%q) error: %v", c.in, err)
			continue
		}
		if got.String() != c.want {
			t.Errorf("ParsePrefix(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestParseAddr(t *testing.T) {
	a, err := ParseAddr("1.2.3.4")
	if err != nil {
		t.Fatal(err)
	}
	if a != 0x01020304 {
		t.Fatalf("ParseAddr = %#x, want 0x01020304", a)
	}
	if got := FormatAddr(a); got != "1.2.3.4" {
		t.Fatalf("FormatAddr = %q", got)
	}
	if _, err := ParseAddr("1.2.3"); err == nil {
		t.Fatal("want error for short address")
	}
	if _, err := ParseAddr("300.2.3.4"); err == nil {
		t.Fatal("want error for octet overflow")
	}
}

func TestContains(t *testing.T) {
	p8 := MustParsePrefix("12.0.0.0/8")
	p19 := MustParsePrefix("12.10.0.0/19")
	p24 := MustParsePrefix("12.10.1.0/24")
	other := MustParsePrefix("13.0.0.0/8")

	if !p8.Contains(p19) || !p8.Contains(p24) || !p19.Contains(p24) {
		t.Fatal("containment chain broken")
	}
	if p19.Contains(p8) {
		t.Fatal("/19 must not contain /8")
	}
	if p8.Contains(other) || other.Contains(p8) {
		t.Fatal("disjoint prefixes must not contain each other")
	}
	if !p8.Contains(p8) {
		t.Fatal("prefix must contain itself")
	}
	if !p8.Overlaps(p24) || !p24.Overlaps(p8) || p24.Overlaps(other) {
		t.Fatal("overlap misclassified")
	}
	if !p24.ContainsAddr(0x0c0a0101) {
		t.Fatal("ContainsAddr(12.10.1.1) = false")
	}
}

func TestSplitParentSibling(t *testing.T) {
	p := MustParsePrefix("10.0.0.0/8")
	lo, hi, ok := p.Split()
	if !ok {
		t.Fatal("split failed")
	}
	if lo.String() != "10.0.0.0/9" || hi.String() != "10.128.0.0/9" {
		t.Fatalf("split = %v, %v", lo, hi)
	}
	if par, ok := lo.Parent(); !ok || par != p {
		t.Fatalf("parent(%v) = %v", lo, par)
	}
	if sib, ok := lo.Sibling(); !ok || sib != hi {
		t.Fatalf("sibling(%v) = %v, want %v", lo, sib, hi)
	}
	if _, _, ok := MustParsePrefix("1.1.1.1/32").Split(); ok {
		t.Fatal("/32 must not split")
	}
	if _, ok := (Prefix{}).Parent(); ok {
		t.Fatal("/0 must not have a parent")
	}
	if _, ok := (Prefix{}).Sibling(); ok {
		t.Fatal("/0 must not have a sibling")
	}
	if m, ok := Aggregate2(lo, hi); !ok || m != p {
		t.Fatalf("Aggregate2 = %v, %v", m, ok)
	}
	if _, ok := Aggregate2(lo, lo); ok {
		t.Fatal("aggregating a prefix with itself must fail")
	}
	if _, ok := Aggregate2(lo, MustParsePrefix("11.0.0.0/9")); ok {
		t.Fatal("non-siblings must not aggregate")
	}
}

func TestCompareAndSort(t *testing.T) {
	ps := []Prefix{
		MustParsePrefix("10.0.0.0/9"),
		MustParsePrefix("9.0.0.0/8"),
		MustParsePrefix("10.0.0.0/8"),
	}
	SortPrefixes(ps)
	want := []string{"9.0.0.0/8", "10.0.0.0/8", "10.0.0.0/9"}
	for i, w := range want {
		if ps[i].String() != w {
			t.Fatalf("sorted[%d] = %v, want %v", i, ps[i], w)
		}
	}
	if ps[0].Compare(ps[0]) != 0 {
		t.Fatal("Compare(self) != 0")
	}
}

func TestNumAddresses(t *testing.T) {
	if n := MustParsePrefix("10.0.0.0/8").NumAddresses(); n != 1<<24 {
		t.Fatalf("NumAddresses(/8) = %d", n)
	}
	if n := MustParsePrefix("1.1.1.1/32").NumAddresses(); n != 1 {
		t.Fatalf("NumAddresses(/32) = %d", n)
	}
	if n := (Prefix{}).NumAddresses(); n != 1<<32 {
		t.Fatalf("NumAddresses(/0) = %d", n)
	}
}

// randomPrefix draws a canonical prefix with length biased toward the
// 8..24 range seen in real tables.
func randomPrefix(r *rand.Rand) Prefix {
	l := uint8(8 + r.Intn(17)) // 8..24
	if r.Intn(10) == 0 {
		l = uint8(r.Intn(33)) // occasionally anything
	}
	return Prefix{Addr: r.Uint32() & Mask(l), Len: l}
}

func TestPropertyRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func() bool {
		p := randomPrefix(r)
		q, err := ParsePrefix(p.String())
		return err == nil && q == p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyContainmentPartialOrder(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	// Antisymmetry: mutual containment implies equality.
	anti := func() bool {
		p, q := randomPrefix(r), randomPrefix(r)
		if p.Contains(q) && q.Contains(p) {
			return p == q
		}
		return true
	}
	if err := quick.Check(anti, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatalf("antisymmetry: %v", err)
	}
	// Transitivity via parents: parent contains child, grandparent contains child.
	trans := func() bool {
		p := randomPrefix(r)
		par, ok := p.Parent()
		if !ok {
			return true
		}
		gp, ok := par.Parent()
		if !ok {
			return par.Contains(p)
		}
		return par.Contains(p) && gp.Contains(par) && gp.Contains(p)
	}
	if err := quick.Check(trans, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatalf("transitivity: %v", err)
	}
}

func TestPropertySplitInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	f := func() bool {
		p := randomPrefix(r)
		lo, hi, ok := p.Split()
		if !ok {
			return p.Len == 32
		}
		if !p.Contains(lo) || !p.Contains(hi) {
			return false
		}
		if lo.Overlaps(hi) {
			return false
		}
		m, ok := Aggregate2(lo, hi)
		return ok && m == p.Canonical() &&
			lo.NumAddresses()+hi.NumAddresses() == p.NumAddresses()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyCompareIsTotalOrder(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	f := func() bool {
		p, q := randomPrefix(r), randomPrefix(r)
		pq, qp := p.Compare(q), q.Compare(p)
		if pq != -qp {
			return false
		}
		if pq == 0 {
			return p.Canonical() == q.Canonical()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestMaskEdges(t *testing.T) {
	if Mask(0) != 0 {
		t.Fatal("Mask(0) != 0")
	}
	if Mask(32) != ^uint32(0) {
		t.Fatal("Mask(32) != all ones")
	}
	if Mask(8) != 0xff000000 {
		t.Fatalf("Mask(8) = %#x", Mask(8))
	}
	if Mask(33) != ^uint32(0) {
		t.Fatal("Mask(>32) must clamp")
	}
}

func TestIsValid(t *testing.T) {
	if !MustParsePrefix("10.0.0.0/8").IsValid() {
		t.Fatal("canonical prefix reported invalid")
	}
	if (Prefix{Addr: 1, Len: 8}).IsValid() {
		t.Fatal("host bits beyond mask reported valid")
	}
	if (Prefix{Len: 40}).IsValid() {
		t.Fatal("length > 32 reported valid")
	}
}
