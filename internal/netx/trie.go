package netx

// Trie is a binary radix trie keyed by Prefix. It supports exact lookup,
// longest-prefix match, covering (less-specific) and covered (more-specific)
// queries — the primitives behind the paper's prefix-splitting and
// prefix-aggregation analyses (Table 9).
//
// The zero value is an empty trie ready for use. Trie is not safe for
// concurrent mutation; concurrent readers are fine once built.
type Trie[V any] struct {
	root *trieNode[V]
	size int
}

type trieNode[V any] struct {
	child [2]*trieNode[V]
	val   V
	set   bool
}

// Len returns the number of prefixes stored.
func (t *Trie[V]) Len() int { return t.size }

// Insert stores val under p, replacing any previous value. It reports
// whether the prefix was newly inserted.
func (t *Trie[V]) Insert(p Prefix, val V) bool {
	p = p.Canonical()
	if t.root == nil {
		t.root = &trieNode[V]{}
	}
	n := t.root
	for i := uint8(0); i < p.Len; i++ {
		b := bitAt(p.Addr, i)
		if n.child[b] == nil {
			n.child[b] = &trieNode[V]{}
		}
		n = n.child[b]
	}
	added := !n.set
	n.val, n.set = val, true
	if added {
		t.size++
	}
	return added
}

// Get returns the value stored exactly at p.
func (t *Trie[V]) Get(p Prefix) (V, bool) {
	var zero V
	n := t.node(p)
	if n == nil || !n.set {
		return zero, false
	}
	return n.val, true
}

// Delete removes the exact prefix p, reporting whether it was present.
// Interior nodes are left in place; the trie is optimized for the
// build-once, query-many pattern of routing-table analysis.
func (t *Trie[V]) Delete(p Prefix) bool {
	n := t.node(p)
	if n == nil || !n.set {
		return false
	}
	var zero V
	n.val, n.set = zero, false
	t.size--
	return true
}

func (t *Trie[V]) node(p Prefix) *trieNode[V] {
	p = p.Canonical()
	n := t.root
	for i := uint8(0); n != nil && i < p.Len; i++ {
		n = n.child[bitAt(p.Addr, i)]
	}
	return n
}

// LongestMatch returns the most specific stored prefix containing the
// address a.
func (t *Trie[V]) LongestMatch(a uint32) (Prefix, V, bool) {
	var (
		bestP  Prefix
		bestV  V
		found  bool
		cursor = t.root
	)
	for i := uint8(0); cursor != nil; i++ {
		if cursor.set {
			bestP = Prefix{Addr: a & Mask(i), Len: i}
			bestV = cursor.val
			found = true
		}
		if i == 32 {
			break
		}
		cursor = cursor.child[bitAt(a, i)]
	}
	return bestP, bestV, found
}

// Covering returns every stored prefix that contains p (including p itself
// if present), ordered from least to most specific.
func (t *Trie[V]) Covering(p Prefix) []Prefix {
	p = p.Canonical()
	var out []Prefix
	n := t.root
	for i := uint8(0); n != nil; i++ {
		if n.set {
			out = append(out, Prefix{Addr: p.Addr & Mask(i), Len: i})
		}
		if i >= p.Len {
			break
		}
		n = n.child[bitAt(p.Addr, i)]
	}
	return out
}

// HasCoveringStrict reports whether some stored prefix strictly contains p.
func (t *Trie[V]) HasCoveringStrict(p Prefix) bool {
	p = p.Canonical()
	n := t.root
	for i := uint8(0); n != nil && i < p.Len; i++ {
		if n.set {
			return true
		}
		n = n.child[bitAt(p.Addr, i)]
	}
	return false
}

// CoveredBy returns every stored prefix contained in p (including p itself
// if present), in Compare order.
func (t *Trie[V]) CoveredBy(p Prefix) []Prefix {
	p = p.Canonical()
	n := t.node(p)
	if n == nil {
		return nil
	}
	var out []Prefix
	collect(n, p, &out)
	return out
}

// HasCoveredStrict reports whether some stored prefix is strictly more
// specific than p.
func (t *Trie[V]) HasCoveredStrict(p Prefix) bool {
	n := t.node(p)
	if n == nil {
		return false
	}
	var stack []*trieNode[V]
	stack = append(stack, n.child[0], n.child[1])
	for len(stack) > 0 {
		top := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if top == nil {
			continue
		}
		if top.set {
			return true
		}
		stack = append(stack, top.child[0], top.child[1])
	}
	return false
}

func collect[V any](n *trieNode[V], at Prefix, out *[]Prefix) {
	if n.set {
		*out = append(*out, at)
	}
	if at.Len == 32 {
		return
	}
	lo, hi, _ := at.Split()
	if n.child[0] != nil {
		collect(n.child[0], lo, out)
	}
	if n.child[1] != nil {
		collect(n.child[1], hi, out)
	}
}

// Walk visits every stored prefix in Compare order. The walk stops early if
// fn returns false.
func (t *Trie[V]) Walk(fn func(Prefix, V) bool) {
	if t.root == nil {
		return
	}
	walk(t.root, Prefix{}, fn)
}

func walk[V any](n *trieNode[V], at Prefix, fn func(Prefix, V) bool) bool {
	if n.set && !fn(at, n.val) {
		return false
	}
	if at.Len == 32 {
		return true
	}
	lo, hi, _ := at.Split()
	if n.child[0] != nil && !walk(n.child[0], lo, fn) {
		return false
	}
	if n.child[1] != nil && !walk(n.child[1], hi, fn) {
		return false
	}
	return true
}

// bitAt returns bit i (0 = most significant) of a.
func bitAt(a uint32, i uint8) int {
	return int(a>>(31-i)) & 1
}
