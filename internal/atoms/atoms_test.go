package atoms

import (
	"testing"

	"github.com/policyscope/policyscope/internal/bgp"
	"github.com/policyscope/policyscope/internal/core"
	"github.com/policyscope/policyscope/internal/netx"
	"github.com/policyscope/policyscope/internal/routeviews"
	"github.com/policyscope/policyscope/internal/simulate"
	"github.com/policyscope/policyscope/internal/topogen"
)

func route(t *testing.T, prefix, path string) *bgp.Route {
	t.Helper()
	p, err := bgp.ParsePath(path)
	if err != nil {
		t.Fatal(err)
	}
	return &bgp.Route{Prefix: netx.MustParsePrefix(prefix), Path: p, LocalPref: 100}
}

func TestComputeGroupsByPathVector(t *testing.T) {
	table := bgp.NewRIB(0)
	peers := []bgp.ASN{10, 20}
	// pa and pb share identical vectors at both peers: one atom.
	table.Upsert(10, route(t, "20.0.0.0/24", "10 5 900"))
	table.Upsert(20, route(t, "20.0.0.0/24", "20 900"))
	table.Upsert(10, route(t, "20.0.1.0/24", "10 5 900"))
	table.Upsert(20, route(t, "20.0.1.0/24", "20 900"))
	// pc differs at peer 20: separate atom, same origin.
	table.Upsert(10, route(t, "20.0.2.0/24", "10 5 900"))
	table.Upsert(20, route(t, "20.0.2.0/24", "20 7 900"))
	// pd has a different origin entirely.
	table.Upsert(10, route(t, "20.1.0.0/24", "10 901"))
	table.Upsert(20, route(t, "20.1.0.0/24", "20 901"))

	res := Compute(table, peers)
	if len(res.Atoms) != 3 {
		t.Fatalf("atoms = %d, want 3", len(res.Atoms))
	}
	if res.PrefixCount != 4 {
		t.Fatalf("prefixes = %d", res.PrefixCount)
	}
	if res.ByOrigin[900] != 2 || res.ByOrigin[901] != 1 {
		t.Fatalf("by origin: %v", res.ByOrigin)
	}
	// The two-prefix atom contains pa and pb.
	var multi *Atom
	for i := range res.Atoms {
		if len(res.Atoms[i].Prefixes) == 2 {
			multi = &res.Atoms[i]
		}
	}
	if multi == nil || multi.Origin != 900 {
		t.Fatalf("multi-prefix atom: %+v", multi)
	}

	stats := res.Stats()
	if stats.Atoms != 3 || stats.SingletonAtoms != 2 || stats.MultiPrefixAtoms != 1 {
		t.Fatalf("stats: %+v", stats)
	}
	if stats.OriginsWithMultipleAtoms != 1 || stats.Origins != 2 {
		t.Fatalf("origin stats: %+v", stats)
	}
}

func TestComputeHandlesMissingRoutes(t *testing.T) {
	table := bgp.NewRIB(0)
	peers := []bgp.ASN{10, 20}
	// Peer 20 lacks a route to pa; pb routed at both. Different atoms
	// even though peer 10's paths agree.
	table.Upsert(10, route(t, "20.0.0.0/24", "10 900"))
	table.Upsert(10, route(t, "20.0.1.0/24", "10 900"))
	table.Upsert(20, route(t, "20.0.1.0/24", "20 900"))
	res := Compute(table, peers)
	if len(res.Atoms) != 2 {
		t.Fatalf("atoms = %d, want 2 (missing route is part of the signature)", len(res.Atoms))
	}
	// A peer-originated prefix (path at the peer missing origin): origin
	// falls back to the peer.
	table2 := bgp.NewRIB(0)
	local := &bgp.Route{Prefix: netx.MustParsePrefix("20.9.0.0/24"), LocalPref: 1 << 20}
	table2.Upsert(10, local)
	res2 := Compute(table2, []bgp.ASN{10})
	if len(res2.Atoms) != 1 || res2.Atoms[0].Origin != 10 {
		t.Fatalf("local-route atom: %+v", res2.Atoms)
	}
}

func TestAttribution(t *testing.T) {
	table := bgp.NewRIB(0)
	peers := []bgp.ASN{10, 20}
	// Origin 900 split into two atoms; pa selectively announced.
	table.Upsert(10, route(t, "20.0.0.0/24", "10 5 900"))
	table.Upsert(20, route(t, "20.0.0.0/24", "20 7 900"))
	table.Upsert(10, route(t, "20.0.1.0/24", "10 5 900"))
	table.Upsert(20, route(t, "20.0.1.0/24", "20 900"))
	// Origin 901 split into two atoms with no selective explanation.
	table.Upsert(10, route(t, "20.1.0.0/24", "10 901"))
	table.Upsert(10, route(t, "20.1.1.0/24", "10 8 901"))
	res := Compute(table, peers)

	att := res.Attribute(map[netx.Prefix]bool{
		netx.MustParsePrefix("20.0.0.0/24"): true,
	})
	if att.MultiAtomOrigins != 2 || att.ExplainedBySelective != 1 {
		t.Fatalf("attribution: %+v", att)
	}
	if att.ExplainedPct() != 50 {
		t.Fatalf("pct = %v", att.ExplainedPct())
	}
	if (Attribution{}).ExplainedPct() != 0 {
		t.Fatal("empty attribution must be 0")
	}
}

// TestEndToEndAtoms runs the decomposition on a simulated collector and
// checks the paper's closing claim: origins whose prefixes split into
// multiple atoms are largely those with selective-announcement
// mechanisms configured.
func TestEndToEndAtoms(t *testing.T) {
	topo, err := topogen.Generate(topogen.DefaultConfig(350, 81))
	if err != nil {
		t.Fatal(err)
	}
	peers := routeviews.SelectPeers(topo, 16)
	res, err := simulate.Run(topo, simulate.Options{VantagePoints: peers})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := routeviews.Collect(res, peers, 0)
	if err != nil {
		t.Fatal(err)
	}
	decomp := Compute(snap.Table, peers)
	stats := decomp.Stats()
	if stats.Atoms == 0 || stats.Prefixes == 0 {
		t.Fatal("empty decomposition")
	}
	if stats.Atoms > stats.Prefixes {
		t.Fatalf("more atoms than prefixes: %+v", stats)
	}
	// Most prefixes of a single-prefix-policy origin collapse into one
	// atom, so atoms << prefixes is expected with multi-prefix origins.
	if stats.OriginsWithMultipleAtoms == 0 {
		t.Fatal("no origin split into multiple atoms; selective policies missing?")
	}

	// Attribute splits to detected SA prefixes across all vantages.
	analyzer := &core.ExportAnalyzer{Graph: topo.Graph}
	selective := make(map[netx.Prefix]bool)
	for _, peer := range peers {
		view := core.ViewFromPeerTable(snap.Table, peer)
		for p := range analyzer.SAPrefixes(view).SAPrefixSet() {
			selective[p] = true
		}
	}
	// Also count ground-truth mechanisms (splits can be caused by
	// selective policies invisible at these 16 vantages).
	for _, asn := range topo.Order {
		pol := topo.Policies[asn]
		for p := range pol.Export.OriginProviders {
			selective[p] = true
		}
		for p := range pol.Export.NoUpstream {
			selective[p] = true
		}
	}
	att := decomp.Attribute(selective)
	if att.MultiAtomOrigins == 0 {
		t.Fatal("no multi-atom origins")
	}
	if att.ExplainedPct() < 50 {
		t.Errorf("only %.1f%% of multi-atom origins explained by selective announcement; paper claims it is the major cause", att.ExplainedPct())
	}
}
