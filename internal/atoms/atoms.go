// Package atoms computes BGP policy atoms — groups of prefixes that
// share the same AS path at every vantage point (Afek, Ben-Shalom &
// Bremler-Barr, IMW 2002). The paper's Section 5.1.5 closes with the
// claim that its export-policy findings explain *what creates* atoms:
// "Our work can answer the questions as to what kind of routing
// policies create policy atoms in [21]. Policies for exporting to
// providers are the major cause."
//
// This package makes that claim testable: it computes atoms from the
// collector view and attributes multi-atom origins to the
// selective-announcement classification of the Figure-4 detector.
package atoms

import (
	"sort"
	"strings"

	"github.com/policyscope/policyscope/internal/bgp"
	"github.com/policyscope/policyscope/internal/netx"
)

// Atom is one policy atom: a set of prefixes indistinguishable by
// routing policy from every vantage point.
type Atom struct {
	// Prefixes in Compare order.
	Prefixes []netx.Prefix
	// Origin is the common origin AS (atoms never span origins).
	Origin bgp.ASN
	// Signature is the canonical path-vector key the atom groups by.
	Signature string
}

// Result is the atom decomposition of a collector view.
type Result struct {
	// Atoms in deterministic order (by signature).
	Atoms []Atom
	// ByOrigin counts atoms per origin AS.
	ByOrigin map[bgp.ASN]int
	// PrefixCount is the number of prefixes decomposed.
	PrefixCount int
}

// Compute groups prefixes by their path vector across the given peers:
// two prefixes belong to the same atom iff every peer routes to them
// along the same AS path (or lacks a route to both).
//
// table is a collector RIB (candidates keyed by peer); peers fixes the
// vector order.
func Compute(table *bgp.RIB, peers []bgp.ASN) *Result {
	ordered := append([]bgp.ASN(nil), peers...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i] < ordered[j] })

	type group struct {
		prefixes []netx.Prefix
		origin   bgp.ASN
	}
	groups := make(map[string]*group)
	res := &Result{ByOrigin: make(map[bgp.ASN]int)}
	for _, prefix := range table.Prefixes() {
		var sig strings.Builder
		var origin bgp.ASN
		routed := false
		for _, peer := range ordered {
			r := table.CandidateFrom(prefix, peer)
			if r == nil {
				sig.WriteByte('|')
				continue
			}
			routed = true
			sig.WriteString(r.Path.String())
			sig.WriteByte('|')
			if o, ok := r.OriginAS(); ok {
				origin = o
			} else {
				origin = peer // the peer itself originates it
			}
		}
		if !routed {
			continue
		}
		res.PrefixCount++
		key := origin.String() + "!" + sig.String()
		g := groups[key]
		if g == nil {
			g = &group{origin: origin}
			groups[key] = g
		}
		g.prefixes = append(g.prefixes, prefix)
	}

	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		g := groups[k]
		netx.SortPrefixes(g.prefixes)
		res.Atoms = append(res.Atoms, Atom{
			Prefixes:  g.prefixes,
			Origin:    g.origin,
			Signature: k,
		})
		res.ByOrigin[g.origin]++
	}
	return res
}

// Stats summarizes a decomposition the way the IMW'02 paper does.
type Stats struct {
	// Atoms and Prefixes are the population sizes.
	Atoms, Prefixes int
	// SingletonAtoms contain exactly one prefix.
	SingletonAtoms int
	// MultiPrefixAtoms group two or more.
	MultiPrefixAtoms int
	// OriginsWithMultipleAtoms is the interesting population: origins
	// whose prefixes routing policy splits apart.
	OriginsWithMultipleAtoms int
	// Origins is the total origin count.
	Origins int
}

// Stats computes summary statistics.
func (r *Result) Stats() Stats {
	s := Stats{Atoms: len(r.Atoms), Prefixes: r.PrefixCount, Origins: len(r.ByOrigin)}
	for _, a := range r.Atoms {
		if len(a.Prefixes) == 1 {
			s.SingletonAtoms++
		} else {
			s.MultiPrefixAtoms++
		}
	}
	for _, n := range r.ByOrigin {
		if n > 1 {
			s.OriginsWithMultipleAtoms++
		}
	}
	return s
}

// Attribution links atom splitting to export policies: for origins with
// more than one atom, how many are explained by a selective-announcement
// mechanism on at least one of their prefixes?
type Attribution struct {
	// MultiAtomOrigins is the population examined.
	MultiAtomOrigins int
	// ExplainedBySelective counts those with a selectively announced
	// prefix (per the supplied set).
	ExplainedBySelective int
}

// ExplainedPct returns the paper's headline share.
func (a Attribution) ExplainedPct() float64 {
	if a.MultiAtomOrigins == 0 {
		return 0
	}
	return 100 * float64(a.ExplainedBySelective) / float64(a.MultiAtomOrigins)
}

// Attribute checks each multi-atom origin against a set of selectively
// announced prefixes (from the Figure-4 detector or ground truth).
func (r *Result) Attribute(selective map[netx.Prefix]bool) Attribution {
	att := Attribution{}
	selectiveOrigin := make(map[bgp.ASN]bool)
	for _, a := range r.Atoms {
		for _, p := range a.Prefixes {
			if selective[p] {
				selectiveOrigin[a.Origin] = true
			}
		}
	}
	for origin, n := range r.ByOrigin {
		if n <= 1 {
			continue
		}
		att.MultiAtomOrigins++
		if selectiveOrigin[origin] {
			att.ExplainedBySelective++
		}
	}
	return att
}
