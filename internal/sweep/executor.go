package sweep

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/policyscope/policyscope/internal/asgraph"
	"github.com/policyscope/policyscope/internal/simulate"
)

// Options configures one sweep run.
type Options struct {
	// Workers is the shard count (each worker owns one copy-on-write
	// engine clone); <= 0 uses GOMAXPROCS.
	Workers int
	// TopShifts bounds each record's per-prefix detail (default 3;
	// negative keeps none).
	TopShifts int
	// TopK bounds the aggregate's critical-scenario lists (default 10).
	TopK int
	// OnImpact, when set, receives every record strictly in scenario
	// index order (calls are serialized). Returning an error aborts the
	// sweep — the streaming server uses this to stop on a dead client.
	OnImpact func(*Impact) error
	// OnWorkerDone, when set, receives each worker's lifetime stats as
	// it drains (calls may interleave across workers; the receiver
	// serializes). cmd/sweep logs these and the executor benchmarks
	// derive parallel efficiency from them.
	//
	// Delivery is guaranteed for every effective worker before Run
	// returns — including when the run ends early on context
	// cancellation or a sink abort — so a canceled sweep still reports
	// the utilization of the work it did complete. Pinned by
	// TestRunCancellationFlushesWorkerStats.
	OnWorkerDone func(WorkerStats)
	// BaseIndex offsets every record's Index (and the indices inside the
	// aggregate's top-k lists). A distributed shard worker runs
	// scenarios[start:end) with BaseIndex=start so its records carry
	// global scenario indices; zero for whole-sweep runs.
	BaseIndex int
}

// WorkerStats summarizes one sweep worker's run.
type WorkerStats struct {
	// Worker is the shard index in [0, EffectiveWorkers).
	Worker int `json:"worker"`
	// Scenarios is how many scenarios this worker applied.
	Scenarios int `json:"scenarios"`
	// Busy is the wall time spent applying and restoring scenarios
	// (excludes queue idling — the gap between Busy and the run's wall
	// time is contention or starvation).
	Busy time.Duration `json:"busy_ns"`
	// Reclones counts scenarios whose state restore fell back to a
	// fresh engine clone.
	Reclones int `json:"reclones"`
}

// EffectiveWorkers resolves the shard count actually used for an
// n-scenario sweep: Workers, defaulted to GOMAXPROCS, capped at n.
func (o Options) EffectiveWorkers(n int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

func (o Options) topShifts() int {
	if o.TopShifts == 0 {
		return 3
	}
	return o.TopShifts
}

// Run executes every scenario against base's converged state and
// returns the streamed aggregate. Each worker clones the base engine
// once (copy-on-write: the heavy best forest and vantage tables stay
// shared until written), pulls scenarios from a shared queue, applies
// each one incrementally, and rolls the clone back by applying the
// inverse events — falling back to a fresh clone when a scenario is
// not invertible (policy edits) or a rollback cannot be proven clean.
//
// Records are deterministic and identically ordered regardless of
// Workers: every scenario observes the pristine base state, and
// emission (OnImpact + aggregation) happens strictly in scenario index
// order. The base engine itself is never mutated.
func Run(ctx context.Context, base *simulate.Engine, scenarios []simulate.Scenario, opts Options) (*Aggregate, error) {
	if len(scenarios) == 0 {
		return nil, fmt.Errorf("sweep: no scenarios")
	}
	workers := opts.EffectiveWorkers(len(scenarios))
	topShifts := opts.topShifts()

	em := &emitter{
		agg:     NewAggregator(opts.TopK),
		pending: make(map[int]*Impact),
		sink:    opts.OnImpact,
	}
	var (
		next int64 = -1
		wg   sync.WaitGroup
	)
	baseUnconv := base.UnconvergedCount()
	mSweepRuns.Inc()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			var eng *simulate.Engine
			ws := WorkerStats{Worker: worker}
			// Deferred unconditionally (and registered after wg.Done, so
			// it runs first): partial stats flush on every exit path —
			// queue drained, context canceled, sink aborted — before
			// wg.Wait can release Run.
			defer func() {
				mWorkerBusySeconds.Observe(ws.Busy.Seconds())
				if opts.OnWorkerDone != nil {
					opts.OnWorkerDone(ws)
				}
			}()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(scenarios) || ctx.Err() != nil || em.aborted() {
					return
				}
				sc := scenarios[i]
				start := time.Now()
				if eng == nil {
					eng = base.Clone()
					// Parallelism lives across scenarios, not inside
					// each incremental apply.
					eng.SetParallelism(1)
				}
				var imp *Impact
				if linkEventsOnly(sc) {
					// Link scenarios (the dominant sweep families) roll
					// back through the engine's pre-image journal: undo
					// costs what the apply touched instead of a second
					// incremental pass over the inverse events.
					eng.Checkpoint()
					var err error
					imp, _, err = Apply(eng, sc, topShifts)
					if err != nil {
						imp = &Impact{Name: sc.Name, Events: len(sc.Events), Error: err.Error()}
					}
					if !eng.Rollback() || eng.UnconvergedCount() != baseUnconv {
						eng = nil // rollback not provably clean: re-clone
						ws.Reclones++
						mRestoreReclone.Inc()
					} else {
						mRestoreJournal.Inc()
					}
				} else {
					inv, invertible := invertScenario(eng, sc)
					var err error
					imp, _, err = Apply(eng, sc, topShifts)
					switch {
					case err != nil:
						// Validation failures leave the engine untouched
						// (Apply validates before mutating), so no
						// restore mode is counted.
						imp = &Impact{Name: sc.Name, Events: len(sc.Events), Error: err.Error()}
					case invertible:
						if _, rbErr := eng.Apply(inv); rbErr != nil || eng.UnconvergedCount() != baseUnconv {
							eng = nil // rollback not provably clean: re-clone
							ws.Reclones++
							mRestoreReclone.Inc()
						} else {
							mRestoreInverse.Inc()
						}
					default:
						eng = nil // policy edits have no inverse event: re-clone
						ws.Reclones++
						mRestoreReclone.Inc()
					}
				}
				el := time.Since(start)
				ws.Busy += el
				ws.Scenarios++
				mSweepScenarios.Inc()
				mScenarioSeconds.Observe(el.Seconds())
				imp.Index = opts.BaseIndex + i
				em.emit(i, imp)
			}
		}(w)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := em.sinkErr; err != nil {
		return nil, fmt.Errorf("sweep: emitting record: %w", err)
	}
	return em.agg.Aggregate(), nil
}

// emitter re-serializes out-of-order worker completions into strict
// scenario index order before they reach the aggregator and the
// caller's sink.
type emitter struct {
	mu       sync.Mutex
	pending  map[int]*Impact
	nextEmit int
	agg      *Aggregator
	sink     func(*Impact) error
	sinkErr  error
	abort    atomic.Bool
}

func (em *emitter) aborted() bool { return em.abort.Load() }

func (em *emitter) emit(i int, imp *Impact) {
	em.mu.Lock()
	defer em.mu.Unlock()
	em.pending[i] = imp
	for {
		ready, ok := em.pending[em.nextEmit]
		if !ok {
			return
		}
		delete(em.pending, em.nextEmit)
		em.nextEmit++
		em.agg.Add(ready)
		if em.sink != nil && em.sinkErr == nil {
			if err := em.sink(ready); err != nil {
				em.sinkErr = err
				em.abort.Store(true)
			}
		}
	}
}

// linkEventsOnly reports whether every event is a link failure or
// restoration — the batches the engine's rollback journal supports.
func linkEventsOnly(sc simulate.Scenario) bool {
	if len(sc.Events) == 0 {
		return false
	}
	for _, ev := range sc.Events {
		if ev.Kind != simulate.EventLinkFail && ev.Kind != simulate.EventLinkRestore {
			return false
		}
	}
	return true
}

// invertScenario builds the event batch that returns the engine to its
// pre-scenario state, reading the pre-apply topology for the link
// relationships the inverse needs. ok is false when any event has no
// faithful inverse: policy edits (the old policy value is not
// expressible as an event) and withdrawals — RemovePrefix erases the
// origin's per-prefix selective-announcement and no-upstream export
// policy, which a re-announce cannot restore, so a withdraw (and hence
// a hijack) rolls back by re-cloning. The mixed-family determinism
// property test guards exactly this.
func invertScenario(eng *simulate.Engine, sc simulate.Scenario) (simulate.Scenario, bool) {
	topo := eng.Topology()
	inv := make([]simulate.Event, 0, len(sc.Events))
	for _, ev := range sc.Events {
		switch ev.Kind {
		case simulate.EventLinkFail:
			rel := topo.Graph.Rel(ev.A, ev.B)
			if rel == asgraph.RelNone {
				return simulate.Scenario{}, false
			}
			inv = append(inv, simulate.RestoreLink(ev.A, ev.B, rel))
		case simulate.EventLinkRestore:
			inv = append(inv, simulate.FailLink(ev.A, ev.B))
		case simulate.EventAnnounce:
			// A freshly announced prefix has no export-policy state, so
			// withdrawing it is a clean inverse.
			inv = append(inv, simulate.WithdrawPrefix(ev.Prefix))
		default:
			return simulate.Scenario{}, false
		}
	}
	// Undo in reverse order so multi-event batches (e.g. a hijack's
	// withdraw + announce) unwind correctly.
	for l, r := 0, len(inv)-1; l < r; l, r = l+1, r-1 {
		inv[l], inv[r] = inv[r], inv[l]
	}
	return simulate.Scenario{Name: "rollback:" + sc.Name, Events: inv}, true
}
