package sweep

// Done is the NDJSON stream trailer a completed sweep emits as
// {"sweep_done": {...}} — the analogue of the distributed protocol's
// {"shard_done": ...}. Its presence is the stream-integrity signal: a
// record stream that ends without one was truncated (server died, sink
// failed, context canceled), so clients never mistake a partial sweep
// for a finished one. Every field is deterministic (no timings), so
// streams stay byte-identical across runs and fleet layouts.
type Done struct {
	// Scenarios is the expanded scenario count the sweep covered.
	Scenarios int `json:"scenarios"`
	// Records is how many record lines preceded the trailer (equal to
	// Scenarios on success — the cross-check clients assert).
	Records int `json:"records"`
}

// StreamError is the typed mid-stream failure record, emitted as
// {"sweep_error": {...}} in place of the trailer when a sweep dies
// after streaming began (headers are long gone, so an HTTP status can
// no longer carry the fault). A stream ending in one — or in neither
// trailer nor error — is incomplete.
type StreamError struct {
	Error string `json:"error"`
}
