package sweep

import (
	"context"
	"sync"
	"testing"
	"time"
)

// TestWorkerStatsAndRestoreMetrics: every worker reports its stats,
// the per-worker busy times cover the scenarios applied, and a
// link-failure sweep restores through the journal (no re-clones).
func TestWorkerStatsAndRestoreMetrics(t *testing.T) {
	topo, opts := buildTestTopo(t, 150, 7)
	base := newBase(t, topo, opts)
	scenarios, err := Expand(context.Background(), base.Topology(), Spec{
		Generators: []Generator{{Kind: KindAllSingleLinkFailures}},
	})
	if err != nil {
		t.Fatal(err)
	}
	scenarios = scenarios[:24]

	journal0 := mRestoreJournal.Value()
	scen0 := mSweepScenarios.Value()

	var (
		mu    sync.Mutex
		stats []WorkerStats
	)
	agg, err := Run(context.Background(), base, scenarios, Options{
		Workers: 4,
		OnWorkerDone: func(ws WorkerStats) {
			mu.Lock()
			stats = append(stats, ws)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if agg.Scenarios != len(scenarios) {
		t.Fatalf("ran %d of %d scenarios", agg.Scenarios, len(scenarios))
	}
	if len(stats) != 4 {
		t.Fatalf("got %d worker reports, want 4", len(stats))
	}
	total, busy := 0, time.Duration(0)
	for _, ws := range stats {
		total += ws.Scenarios
		busy += ws.Busy
		if ws.Scenarios > 0 && ws.Busy <= 0 {
			t.Errorf("worker %d applied %d scenarios in zero busy time", ws.Worker, ws.Scenarios)
		}
		if ws.Reclones != 0 {
			t.Errorf("worker %d re-cloned %d times on a link-only sweep", ws.Worker, ws.Reclones)
		}
	}
	if total != len(scenarios) {
		t.Errorf("workers report %d scenarios, want %d", total, len(scenarios))
	}
	if busy <= 0 {
		t.Error("no busy time recorded")
	}
	if got := mRestoreJournal.Value() - journal0; got != uint64(len(scenarios)) {
		t.Errorf("journal restores advanced by %d, want %d", got, len(scenarios))
	}
	if got := mSweepScenarios.Value() - scen0; got != uint64(len(scenarios)) {
		t.Errorf("scenario counter advanced by %d, want %d", got, len(scenarios))
	}
}
