package sweep

import "github.com/policyscope/policyscope/obs"

// Sweep executor metrics. The restore-mode counters expose how often
// the fleet pays which undo cost (journal ≪ inverse ≪ re-clone), and
// the per-worker busy histogram makes parallel efficiency measurable:
// utilization = sum(busy) / (workers × wall), the number the j8_vs_j1
// baseline was missing.
var (
	mSweepRuns = obs.NewCounter("policyscope_sweep_runs_total",
		"Sweep executor runs started.")
	mSweepScenarios = obs.NewCounter("policyscope_sweep_scenarios_total",
		"Scenarios applied by sweep workers.")
	mScenarioSeconds = obs.NewHistogram("policyscope_sweep_scenario_seconds",
		"Per-scenario wall time on a worker (apply + restore).", nil)
	mRestores = obs.NewCounterVec("policyscope_sweep_restore_total",
		"Scenario state restorations by mode: journal pre-image undo, inverse-event apply, or engine re-clone.",
		"mode")
	mRestoreJournal    = mRestores.With("journal")
	mRestoreInverse    = mRestores.With("inverse")
	mRestoreReclone    = mRestores.With("reclone")
	mWorkerBusySeconds = obs.NewHistogram("policyscope_sweep_worker_busy_seconds",
		"Total busy time of one worker over one sweep run (one observation per worker per run).",
		nil)
)
