package sweep

import (
	"sort"

	"github.com/policyscope/policyscope/internal/bgp"
	"github.com/policyscope/policyscope/internal/simulate"
)

// Impact is one scenario's blast-radius record. Every field is a pure
// function of the base state and the scenario, so records are
// bit-identical across worker counts and across independent runs (no
// timings, no worker identities).
type Impact struct {
	// Index is the scenario's position in the expanded sweep.
	Index int `json:"index"`
	// Name is the scenario's (generated) name.
	Name string `json:"name"`
	// Events is the scenario's event count.
	Events int `json:"events"`
	// Error is the validation error of a rejected scenario; all impact
	// fields are zero when set.
	Error string `json:"error,omitempty"`
	// RecomputedPrefixes counts prefixes whose routing was re-converged.
	RecomputedPrefixes int `json:"recomputed_prefixes"`
	// AffectedPrefixes counts prefixes with at least one changed best
	// next hop (the catchment-delta width).
	AffectedPrefixes int `json:"affected_prefixes"`
	// ShiftedASes totals (prefix, AS) best-next-hop changes — the
	// path-change count.
	ShiftedASes int `json:"shifted_ases"`
	// LostReachPairs / GainedReachPairs total the (prefix, AS)
	// reachability pairs the scenario destroyed and created.
	LostReachPairs   int `json:"lost_reach_pairs"`
	GainedReachPairs int `json:"gained_reach_pairs"`
	// UnreachablePrefixes counts prefixes left with no route anywhere —
	// full disconnections of an origin.
	UnreachablePrefixes int `json:"unreachable_prefixes"`
	// PeerChanges summarizes, per vantage point, how many prefixes
	// changed their best route there (ascending peer order).
	PeerChanges []PeerChange `json:"peer_changes,omitempty"`
	// TopShifts details the most-shifted prefixes (bounded by the
	// executor's TopShifts option).
	TopShifts []ShiftRecord `json:"top_shifts,omitempty"`
}

// PeerChange is one vantage point's per-scenario summary.
type PeerChange struct {
	Peer     bgp.ASN `json:"peer"`
	Prefixes int     `json:"prefixes"`
}

// ShiftRecord is one prefix's catchment delta inside an Impact.
type ShiftRecord struct {
	Prefix  string  `json:"prefix"`
	Origin  bgp.ASN `json:"origin"`
	Shifted int     `json:"shifted"`
	Lost    int     `json:"lost"`
	Gained  int     `json:"gained"`
}

// Apply runs one scenario on eng and summarizes the delta as an Impact
// record — the exact code path the executor's workers use, so a single
// what-if and a sweep member produce identical records. topShifts
// bounds the per-prefix detail (<= 0 keeps none). The engine retains
// the post-scenario state; rollback is the caller's concern.
func Apply(eng *simulate.Engine, sc simulate.Scenario, topShifts int) (*Impact, *simulate.Delta, error) {
	delta, err := eng.Apply(sc)
	if err != nil {
		return nil, nil, err
	}
	return BuildImpact(sc, delta, topShifts), delta, nil
}

// BuildImpact folds one scenario's Delta into its Impact record.
func BuildImpact(sc simulate.Scenario, delta *simulate.Delta, topShifts int) *Impact {
	imp := &Impact{
		Name:               sc.Name,
		Events:             len(sc.Events),
		RecomputedPrefixes: delta.Recomputed,
		AffectedPrefixes:   len(delta.Shifts),
	}
	peerCount := map[bgp.ASN]int{}
	for _, sh := range delta.Shifts {
		imp.ShiftedASes += sh.Shifted
		for _, peer := range sh.Vantage {
			peerCount[peer]++
		}
	}
	for i, sh := range delta.Shifts {
		if topShifts <= 0 || i >= topShifts {
			break
		}
		imp.TopShifts = append(imp.TopShifts, ShiftRecord{
			Prefix: sh.Prefix.String(), Origin: sh.Origin,
			Shifted: sh.Shifted, Lost: sh.Lost, Gained: sh.Gained,
		})
	}
	for _, rd := range delta.ReachDeltas {
		if rd.After < rd.Before {
			imp.LostReachPairs += rd.Before - rd.After
		} else {
			imp.GainedReachPairs += rd.After - rd.Before
		}
		if rd.Before > 0 && rd.After == 0 {
			imp.UnreachablePrefixes++
		}
	}
	if len(peerCount) > 0 {
		peers := make([]bgp.ASN, 0, len(peerCount))
		for p := range peerCount {
			peers = append(peers, p)
		}
		sort.Slice(peers, func(i, j int) bool { return peers[i] < peers[j] })
		imp.PeerChanges = make([]PeerChange, 0, len(peers))
		for _, p := range peers {
			imp.PeerChanges = append(imp.PeerChanges, PeerChange{Peer: p, Prefixes: peerCount[p]})
		}
	}
	return imp
}
