package sweep

import (
	"context"
	"fmt"

	"github.com/policyscope/policyscope/internal/asgraph"
	"github.com/policyscope/policyscope/internal/bgp"
	"github.com/policyscope/policyscope/internal/netx"
	"github.com/policyscope/policyscope/internal/simulate"
	"github.com/policyscope/policyscope/internal/topogen"
)

// Expand enumerates the spec's scenario families against topo. The
// result is deterministic: generators expand in spec order, and each
// family iterates the topology in its canonical order (edges ascending,
// prefixes in Compare order, neighbor/provider lists ascending). Every
// scenario carries a stable generated name ("link_fail:64512-64513").
// ctx cancels the enumeration between families and between iteration
// chunks within a family — hijack and flip grids over a large topology
// expand to (prefix × AS) products worth interrupting.
func Expand(ctx context.Context, topo *topogen.Topology, sp Spec) ([]simulate.Scenario, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	var out []simulate.Scenario
	for gi, g := range sp.Generators {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		scs, err := expandOne(ctx, topo, g)
		if err != nil {
			return nil, &GeneratorError{Index: gi, Kind: g.Kind, Err: err}
		}
		if g.Max > 0 && len(scs) > g.Max {
			scs = scs[:g.Max]
		}
		out = append(out, scs...)
	}
	if sp.MaxScenarios > 0 && len(out) > sp.MaxScenarios {
		out = out[:sp.MaxScenarios]
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("sweep: spec expands to no scenarios")
	}
	return out, nil
}

// expandCheckEvery bounds how much enumeration work runs between two
// context polls inside one generator family.
const expandCheckEvery = 4096

// checkEvery polls ctx every expandCheckEvery-th call (n counts up from
// zero), keeping the per-iteration overhead to a counter increment.
func checkEvery(ctx context.Context, n *int) error {
	*n++
	if *n%expandCheckEvery != 0 {
		return nil
	}
	return ctx.Err()
}

func expandOne(ctx context.Context, topo *topogen.Topology, g Generator) ([]simulate.Scenario, error) {
	switch g.Kind {
	case KindAllSingleLinkFailures:
		return genLinkFailures(ctx, topo, g)
	case KindAllProviderDepeerings:
		return genDepeerings(topo, g)
	case KindPrefixWithdrawals:
		return genWithdrawals(ctx, topo, g)
	case KindHijacks:
		return genHijacks(ctx, topo, g)
	case KindLocalPrefFlips:
		return genLocalPrefFlips(ctx, topo, g)
	case KindNoUpstreamFlips:
		return genNoUpstreamFlips(ctx, topo, g)
	case KindScenarios:
		if len(g.Scenarios) == 0 {
			return nil, fmt.Errorf("no scenarios listed")
		}
		for i, sc := range g.Scenarios {
			if len(sc.Events) == 0 {
				return nil, fmt.Errorf("scenario %d has no events", i)
			}
		}
		return g.Scenarios, nil
	default:
		return nil, fmt.Errorf("unknown generator kind %q", g.Kind)
	}
}

func genLinkFailures(ctx context.Context, topo *topogen.Topology, g Generator) ([]simulate.Scenario, error) {
	var out []simulate.Scenario
	var n int
	for _, e := range topo.Graph.Edges() {
		if err := checkEvery(ctx, &n); err != nil {
			return nil, err
		}
		if g.Tier > 0 && tierOf(topo, e.A) != g.Tier && tierOf(topo, e.B) != g.Tier {
			continue
		}
		out = append(out, simulate.Scenario{
			Name:   fmt.Sprintf("link_fail:%d-%d", e.A, e.B),
			Events: []simulate.Event{simulate.FailLink(e.A, e.B)},
		})
	}
	return out, nil
}

func genDepeerings(topo *topogen.Topology, g Generator) ([]simulate.Scenario, error) {
	if g.AS == 0 {
		return nil, fmt.Errorf("requires a target \"as\"")
	}
	if _, ok := topo.ASes[g.AS]; !ok {
		return nil, fmt.Errorf("unknown AS %d", g.AS)
	}
	providers := topo.Graph.Providers(g.AS)
	if len(providers) == 0 {
		return nil, fmt.Errorf("AS %d has no providers", g.AS)
	}
	out := make([]simulate.Scenario, 0, len(providers))
	for _, p := range providers {
		out = append(out, simulate.Scenario{
			Name:   fmt.Sprintf("depeer:%d:%d", g.AS, p),
			Events: []simulate.Event{simulate.FailLink(g.AS, p)},
		})
	}
	return out, nil
}

// subjectPrefixes resolves a generator's prefix filter to a sorted,
// validated prefix list (default: every originated prefix).
func subjectPrefixes(topo *topogen.Topology, g Generator) ([]netx.Prefix, error) {
	if len(g.Prefixes) > 0 {
		out := append([]netx.Prefix(nil), g.Prefixes...)
		for _, p := range out {
			if _, ok := topo.PrefixOrigin[p]; !ok {
				return nil, fmt.Errorf("prefix %v is not originated", p)
			}
		}
		netx.SortPrefixes(out)
		return out, nil
	}
	origins := make(map[bgp.ASN]bool, len(g.Origins))
	for _, o := range g.Origins {
		if _, ok := topo.ASes[o]; !ok {
			return nil, fmt.Errorf("unknown origin AS %d", o)
		}
		origins[o] = true
	}
	out := make([]netx.Prefix, 0, len(topo.PrefixOrigin))
	for p, o := range topo.PrefixOrigin {
		if len(origins) > 0 && !origins[o] {
			continue
		}
		out = append(out, p)
	}
	netx.SortPrefixes(out)
	return out, nil
}

// atomRepresentatives collapses a sorted prefix list to one prefix per
// policy-equivalence atom (topogen.PrefixSignatures class). The list is
// iterated in Compare order, so the representative is always the
// atom's lowest subject prefix and the result is deterministic.
// Prefixes without a signature (not originated — cannot happen for
// subjectPrefixes output, which validates) pass through untouched.
func atomRepresentatives(topo *topogen.Topology, prefixes []netx.Prefix) []netx.Prefix {
	sigs := topo.PrefixSignatures()
	seen := make(map[string]bool, len(prefixes))
	out := make([]netx.Prefix, 0, len(prefixes))
	for _, p := range prefixes {
		sig, ok := sigs[p]
		if ok && seen[sig] {
			continue
		}
		if ok {
			seen[sig] = true
		}
		out = append(out, p)
	}
	return out
}

func genWithdrawals(ctx context.Context, topo *topogen.Topology, g Generator) ([]simulate.Scenario, error) {
	prefixes, err := subjectPrefixes(topo, g)
	if err != nil {
		return nil, err
	}
	if !g.PerPrefix {
		prefixes = atomRepresentatives(topo, prefixes)
	}
	out := make([]simulate.Scenario, 0, len(prefixes))
	var n int
	for _, p := range prefixes {
		if err := checkEvery(ctx, &n); err != nil {
			return nil, err
		}
		out = append(out, simulate.Scenario{
			Name:   fmt.Sprintf("withdraw:%v", p),
			Events: []simulate.Event{simulate.WithdrawPrefix(p)},
		})
	}
	return out, nil
}

func genHijacks(ctx context.Context, topo *topogen.Topology, g Generator) ([]simulate.Scenario, error) {
	if len(g.Attackers) == 0 {
		return nil, fmt.Errorf("requires \"attackers\"")
	}
	for _, a := range g.Attackers {
		if _, ok := topo.ASes[a]; !ok {
			return nil, fmt.Errorf("unknown attacker AS %d", a)
		}
	}
	prefixes, err := subjectPrefixes(topo, g)
	if err != nil {
		return nil, err
	}
	if !g.PerPrefix {
		prefixes = atomRepresentatives(topo, prefixes)
	}
	var out []simulate.Scenario
	var n int
	for _, p := range prefixes {
		origin := topo.PrefixOrigin[p]
		for _, a := range g.Attackers {
			if err := checkEvery(ctx, &n); err != nil {
				return nil, err
			}
			if a == origin {
				continue
			}
			out = append(out, simulate.Scenario{
				Name: fmt.Sprintf("hijack:%v:%d", p, a),
				Events: []simulate.Event{
					simulate.WithdrawPrefix(p),
					simulate.AnnouncePrefix(p, a),
				},
			})
		}
	}
	return out, nil
}

func genLocalPrefFlips(ctx context.Context, topo *topogen.Topology, g Generator) ([]simulate.Scenario, error) {
	if g.AS == 0 {
		return nil, fmt.Errorf("requires a target \"as\"")
	}
	if _, ok := topo.ASes[g.AS]; !ok {
		return nil, fmt.Errorf("unknown AS %d", g.AS)
	}
	if len(g.Values) == 0 {
		return nil, fmt.Errorf("requires \"values\"")
	}
	neighbors := g.Neighbors
	if len(neighbors) == 0 {
		neighbors = topo.Graph.Neighbors(g.AS)
	}
	if len(neighbors) == 0 {
		return nil, fmt.Errorf("AS %d has no neighbors", g.AS)
	}
	var out []simulate.Scenario
	var polls int
	for _, n := range neighbors {
		if topo.Graph.Rel(g.AS, n) == asgraph.RelNone {
			return nil, fmt.Errorf("AS %d has no session with %d", g.AS, n)
		}
		for _, v := range g.Values {
			if err := checkEvery(ctx, &polls); err != nil {
				return nil, err
			}
			out = append(out, simulate.Scenario{
				Name:   fmt.Sprintf("local_pref:%d:%d=%d", g.AS, n, v),
				Events: []simulate.Event{simulate.SetLocalPref(g.AS, n, v)},
			})
		}
	}
	return out, nil
}

func genNoUpstreamFlips(ctx context.Context, topo *topogen.Topology, g Generator) ([]simulate.Scenario, error) {
	prefixes, err := subjectPrefixes(topo, g)
	if err != nil {
		return nil, err
	}
	var out []simulate.Scenario
	var polls int
	for _, p := range prefixes {
		origin := topo.PrefixOrigin[p]
		for _, prov := range topo.Graph.Providers(origin) {
			if err := checkEvery(ctx, &polls); err != nil {
				return nil, err
			}
			out = append(out, simulate.Scenario{
				Name:   fmt.Sprintf("no_upstream:%v:%d", p, prov),
				Events: []simulate.Event{simulate.TagNoUpstream(p, prov)},
			})
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no (prefix, provider) pairs to tag")
	}
	return out, nil
}

func tierOf(topo *topogen.Topology, asn bgp.ASN) int {
	if info, ok := topo.ASes[asn]; ok {
		return info.Tier
	}
	return 0
}
