package sweep

import (
	"sort"

	"github.com/policyscope/policyscope/internal/bgp"
)

// Aggregate is the streaming summary of one sweep: totals, the
// blast-radius histogram, the top-k most-critical scenarios, and the
// per-vantage-point summaries. It is deterministic for a given base
// state and scenario list regardless of worker count (records are
// folded in scenario index order; ties in the top-k lists keep the
// earlier scenario).
type Aggregate struct {
	// Scenarios counts every record, Errors the rejected ones.
	Scenarios int `json:"scenarios"`
	Errors    int `json:"errors"`
	// ScenariosWithImpact counts scenarios that shifted at least one
	// (prefix, AS) best next hop.
	ScenariosWithImpact int `json:"scenarios_with_impact"`
	// ScenariosPartitioning counts scenarios that left at least one
	// prefix fully unreachable.
	ScenariosPartitioning int `json:"scenarios_partitioning"`
	// Totals over all scenarios.
	RecomputedPrefixes int `json:"recomputed_prefixes"`
	ShiftedASes        int `json:"shifted_ases"`
	LostReachPairs     int `json:"lost_reach_pairs"`
	GainedReachPairs   int `json:"gained_reach_pairs"`
	// Histogram buckets scenarios by shifted (prefix, AS) pairs.
	Histogram []HistogramBucket `json:"impact_histogram"`
	// TopByShift / TopByLost are the most-critical scenarios — the
	// links and policy flips with the widest blast radius.
	TopByShift []CriticalScenario `json:"top_by_shifted_ases"`
	TopByLost  []CriticalScenario `json:"top_by_lost_reach"`
	// Peers summarizes each vantage point across the whole sweep,
	// ascending peer order.
	Peers []PeerSummary `json:"peer_summaries,omitempty"`
}

// HistogramBucket is one blast-radius band.
type HistogramBucket struct {
	// Label names the band ("0", "1-9", ...).
	Label string `json:"label"`
	// Scenarios counts scenarios whose ShiftedASes falls in the band.
	Scenarios int `json:"scenarios"`
}

// CriticalScenario is one top-k entry.
type CriticalScenario struct {
	Index          int    `json:"index"`
	Name           string `json:"name"`
	ShiftedASes    int    `json:"shifted_ases"`
	LostReachPairs int    `json:"lost_reach_pairs"`
}

// PeerSummary is one vantage point's sweep-wide view.
type PeerSummary struct {
	Peer bgp.ASN `json:"peer"`
	// Scenarios counts scenarios that changed at least one best route
	// at this peer; PrefixChanges totals the changed (scenario, prefix)
	// pairs.
	Scenarios     int `json:"scenarios"`
	PrefixChanges int `json:"prefix_changes"`
}

// histBounds are the inclusive lower bounds of the histogram bands.
var histBounds = []struct {
	label string
	lo    int
}{
	{"0", 0},
	{"1-9", 1},
	{"10-99", 10},
	{"100-999", 100},
	{"1000+", 1000},
}

// Aggregator folds Impact records into an Aggregate, online. Records
// must be Added in scenario index order — the top-k tie-break relies on
// it. The executor feeds one through its emitter; the distributed
// coordinator reuses the same type so a merged fleet run aggregates
// exactly like a single process. Not safe for concurrent use.
type Aggregator struct {
	agg   Aggregate
	hist  []int
	peers map[bgp.ASN]*PeerSummary
	topK  int
}

// NewAggregator returns an empty Aggregator keeping top-k lists of k
// entries (k <= 0 selects the default of 10).
func NewAggregator(topK int) *Aggregator {
	if topK <= 0 {
		topK = 10
	}
	return &Aggregator{
		hist:  make([]int, len(histBounds)),
		peers: make(map[bgp.ASN]*PeerSummary),
		topK:  topK,
	}
}

// Add folds one record. Callers must add records in ascending scenario
// index order.
func (a *Aggregator) Add(imp *Impact) {
	a.agg.Scenarios++
	if imp.Error != "" {
		a.agg.Errors++
		return
	}
	a.agg.RecomputedPrefixes += imp.RecomputedPrefixes
	a.agg.ShiftedASes += imp.ShiftedASes
	a.agg.LostReachPairs += imp.LostReachPairs
	a.agg.GainedReachPairs += imp.GainedReachPairs
	if imp.ShiftedASes > 0 {
		a.agg.ScenariosWithImpact++
	}
	if imp.UnreachablePrefixes > 0 {
		a.agg.ScenariosPartitioning++
	}
	bucket := 0
	for bi, b := range histBounds {
		if imp.ShiftedASes >= b.lo {
			bucket = bi
		}
	}
	a.hist[bucket]++
	for _, pc := range imp.PeerChanges {
		ps := a.peers[pc.Peer]
		if ps == nil {
			ps = &PeerSummary{Peer: pc.Peer}
			a.peers[pc.Peer] = ps
		}
		ps.Scenarios++
		ps.PrefixChanges += pc.Prefixes
	}
	entry := CriticalScenario{
		Index: imp.Index, Name: imp.Name,
		ShiftedASes: imp.ShiftedASes, LostReachPairs: imp.LostReachPairs,
	}
	a.agg.TopByShift = topInsert(a.agg.TopByShift, entry, a.topK,
		func(e CriticalScenario) int { return e.ShiftedASes })
	a.agg.TopByLost = topInsert(a.agg.TopByLost, entry, a.topK,
		func(e CriticalScenario) int { return e.LostReachPairs })
}

// topInsert keeps list as the top-k by metric (descending), ties broken
// by earlier scenario index. Records arrive in index order, so a new
// entry only displaces a strictly smaller metric.
func topInsert(list []CriticalScenario, e CriticalScenario, k int, metric func(CriticalScenario) int) []CriticalScenario {
	if len(list) >= k && metric(e) <= metric(list[len(list)-1]) {
		return list
	}
	pos := len(list)
	for pos > 0 && metric(e) > metric(list[pos-1]) {
		pos--
	}
	list = append(list, CriticalScenario{})
	copy(list[pos+1:], list[pos:])
	list[pos] = e
	if len(list) > k {
		list = list[:k]
	}
	return list
}

// Aggregate finalizes the summary. The Aggregator remains usable; a
// later Add is reflected in the next call.
func (a *Aggregator) Aggregate() *Aggregate {
	out := a.agg
	out.Histogram = make([]HistogramBucket, len(histBounds))
	for i, b := range histBounds {
		out.Histogram[i] = HistogramBucket{Label: b.label, Scenarios: a.hist[i]}
	}
	peers := make([]bgp.ASN, 0, len(a.peers))
	for p := range a.peers {
		peers = append(peers, p)
	}
	sort.Slice(peers, func(i, j int) bool { return peers[i] < peers[j] })
	out.Peers = make([]PeerSummary, 0, len(peers))
	for _, p := range peers {
		out.Peers = append(out.Peers, *a.peers[p])
	}
	return &out
}
