package sweep

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/policyscope/policyscope/internal/bgp"
	"github.com/policyscope/policyscope/internal/simulate"
	"github.com/policyscope/policyscope/internal/topogen"
)

// buildTestTopo generates a small Internet plus vantage options, the
// same shape the scenario-engine property tests use.
func buildTestTopo(t testing.TB, ases int, seed int64) (*topogen.Topology, simulate.Options) {
	t.Helper()
	topo, err := topogen.Generate(topogen.DefaultConfig(ases, seed))
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	vantage := make([]bgp.ASN, 0, 8)
	for i, asn := range topo.Order {
		if i%11 == 0 && len(vantage) < 8 {
			vantage = append(vantage, asn)
		}
	}
	return topo, simulate.Options{VantagePoints: vantage}
}

func newBase(t testing.TB, topo *topogen.Topology, opts simulate.Options) *simulate.Engine {
	t.Helper()
	base, err := simulate.NewEngine(topo, opts)
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	return base
}

// serialImpacts is the reference the executor must match bit for bit:
// each scenario on its own independent engine over the base state.
func serialImpacts(t *testing.T, base *simulate.Engine, scenarios []simulate.Scenario, topShifts int) []*Impact {
	t.Helper()
	out := make([]*Impact, len(scenarios))
	for i, sc := range scenarios {
		eng := base.Clone()
		eng.SetParallelism(1)
		imp, _, err := Apply(eng, sc, topShifts)
		if err != nil {
			imp = &Impact{Name: sc.Name, Events: len(sc.Events), Error: err.Error()}
		}
		imp.Index = i
		out[i] = imp
	}
	return out
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return string(b)
}

// runCollect executes the sweep and returns the streamed records plus
// the aggregate.
func runCollect(t *testing.T, base *simulate.Engine, scenarios []simulate.Scenario, workers int) ([]*Impact, *Aggregate) {
	t.Helper()
	var records []*Impact
	agg, err := Run(context.Background(), base, scenarios, Options{
		Workers: workers,
		OnImpact: func(imp *Impact) error {
			records = append(records, imp)
			return nil
		},
	})
	if err != nil {
		t.Fatalf("run (workers=%d): %v", workers, err)
	}
	return records, agg
}

// TestSingleLinkFailureSweepDeterminism is the headline property: a
// full single-link-failure sweep produces bit-identical per-scenario
// records to N independent serial engine runs, across worker counts
// {1, 4, 8} and three seeds — and the aggregates agree too. A sampled
// subset is additionally checked against a from-scratch engine of the
// mutated topology (full resimulation), closing the loop on rollback
// fidelity.
func TestSingleLinkFailureSweepDeterminism(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			topo, opts := buildTestTopo(t, 70, seed)
			base := newBase(t, topo, opts)
			scenarios, err := Expand(context.Background(), topo, Spec{Generators: []Generator{
				{Kind: KindAllSingleLinkFailures},
			}})
			if err != nil {
				t.Fatalf("expand: %v", err)
			}
			if len(scenarios) != topo.Graph.NumEdges() {
				t.Fatalf("expanded %d scenarios for %d edges", len(scenarios), topo.Graph.NumEdges())
			}
			want := serialImpacts(t, base, scenarios, 3)
			wantJSON := mustJSON(t, want)
			var firstAgg string
			for _, workers := range []int{1, 4, 8} {
				records, agg := runCollect(t, base, scenarios, workers)
				if got := mustJSON(t, records); got != wantJSON {
					t.Fatalf("workers=%d: records differ from serial reference\ngot:  %.400s\nwant: %.400s",
						workers, got, wantJSON)
				}
				aggJSON := mustJSON(t, agg)
				if firstAgg == "" {
					firstAgg = aggJSON
				} else if aggJSON != firstAgg {
					t.Fatalf("workers=%d: aggregate differs", workers)
				}
			}
			// Sampled strong check: an independent engine's incremental
			// apply produces both the reference record and, state-wise,
			// exactly what a from-scratch simulation of the mutated
			// topology produces — closing the loop from sweep records
			// back to ground-truth resimulation.
			for i := 0; i < len(scenarios); i += 10 {
				sc := scenarios[i]
				fresh := newBase(t, topo, opts)
				imp, _, err := Apply(fresh, sc, 3)
				if err != nil {
					t.Fatalf("fresh apply %s: %v", sc.Name, err)
				}
				imp.Index = i
				if got, ref := mustJSON(t, imp), mustJSON(t, want[i]); got != ref {
					t.Fatalf("scenario %s: fresh-engine impact differs\ngot:  %s\nwant: %s", sc.Name, got, ref)
				}
				mutated := topo.Clone()
				if err := sc.ApplyToTopology(mutated); err != nil {
					t.Fatalf("mutate %s: %v", sc.Name, err)
				}
				full, err := simulate.Run(mutated, opts)
				if err != nil {
					t.Fatalf("full resim %s: %v", sc.Name, err)
				}
				if diffs := simulate.DiffResults(fresh.Result(), full); len(diffs) > 0 {
					t.Fatalf("scenario %s: incremental state diverges from full resim: %v", sc.Name, diffs[:min(3, len(diffs))])
				}
			}
		})
	}
}

// TestMixedFamilySweepDeterminism drives the rollback machinery across
// heterogeneous scenario kinds — invertible link/prefix events,
// multi-event hijacks, and non-invertible policy flips that force a
// re-clone — and demands bit-identical records across worker counts.
func TestMixedFamilySweepDeterminism(t *testing.T) {
	topo, opts := buildTestTopo(t, 60, 7)
	base := newBase(t, topo, opts)

	// A stub with providers anchors the per-AS families.
	var stub bgp.ASN
	for _, asn := range topo.Order {
		if len(topo.Graph.Providers(asn)) >= 2 && len(topo.ASes[asn].Prefixes) > 0 {
			stub = asn
			break
		}
	}
	if stub == 0 {
		t.Fatal("no multihomed stub")
	}
	attacker := topo.Order[len(topo.Order)-1]
	if attacker == stub {
		attacker = topo.Order[0]
	}
	spec := Spec{Generators: []Generator{
		{Kind: KindAllProviderDepeerings, AS: stub},
		{Kind: KindPrefixWithdrawals, Max: 6},
		{Kind: KindHijacks, Attackers: []bgp.ASN{attacker}, Max: 6},
		{Kind: KindLocalPrefFlips, AS: stub, Values: []uint32{40, 200}},
		{Kind: KindNoUpstreamFlips, Origins: []bgp.ASN{stub}},
		{Kind: KindScenarios, Scenarios: []simulate.Scenario{{
			Name:   "combo",
			Events: []simulate.Event{simulate.FailLink(stub, topo.Graph.Providers(stub)[0])},
		}}},
	}}
	scenarios, err := Expand(context.Background(), topo, spec)
	if err != nil {
		t.Fatalf("expand: %v", err)
	}
	if len(scenarios) < 10 {
		t.Fatalf("expected a meaty mixed sweep, got %d scenarios", len(scenarios))
	}
	want := mustJSON(t, serialImpacts(t, base, scenarios, 3))
	for _, workers := range []int{1, 3, 8} {
		records, _ := runCollect(t, base, scenarios, workers)
		if got := mustJSON(t, records); got != want {
			t.Fatalf("workers=%d: mixed-family records differ from serial reference", workers)
		}
	}
}

// TestSweepLeavesBaseUntouched proves the base engine still answers
// what-ifs from pristine state after a sweep ran over clones of it.
func TestSweepLeavesBaseUntouched(t *testing.T) {
	topo, opts := buildTestTopo(t, 60, 11)
	base := newBase(t, topo, opts)
	scenarios, err := Expand(context.Background(), topo, Spec{Generators: []Generator{
		{Kind: KindAllSingleLinkFailures, Max: 12},
	}})
	if err != nil {
		t.Fatalf("expand: %v", err)
	}
	before := mustJSON(t, serialImpacts(t, base, scenarios, 3))
	if _, err := Run(context.Background(), base, scenarios, Options{Workers: 4}); err != nil {
		t.Fatalf("run: %v", err)
	}
	after := mustJSON(t, serialImpacts(t, base, scenarios, 3))
	if before != after {
		t.Fatal("sweep mutated the base engine's state")
	}
}

func TestExpandGenerators(t *testing.T) {
	topo, _ := buildTestTopo(t, 60, 5)

	t.Run("caps", func(t *testing.T) {
		scs, err := Expand(context.Background(), topo, Spec{
			Generators:   []Generator{{Kind: KindAllSingleLinkFailures, Max: 5}},
			MaxScenarios: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(scs) != 3 {
			t.Fatalf("caps not honored: %d scenarios", len(scs))
		}
	})

	t.Run("tierFilter", func(t *testing.T) {
		scs, err := Expand(context.Background(), topo, Spec{Generators: []Generator{
			{Kind: KindAllSingleLinkFailures, Tier: 1},
		}})
		if err != nil {
			t.Fatal(err)
		}
		all, _ := Expand(context.Background(), topo, Spec{Generators: []Generator{{Kind: KindAllSingleLinkFailures}}})
		if len(scs) == 0 || len(scs) >= len(all) {
			t.Fatalf("tier filter: %d of %d", len(scs), len(all))
		}
	})

	t.Run("badInputs", func(t *testing.T) {
		cases := []Spec{
			{Generators: []Generator{{Kind: "nope"}}},
			{Generators: []Generator{{Kind: KindAllProviderDepeerings}}},             // no AS
			{Generators: []Generator{{Kind: KindAllProviderDepeerings, AS: 65530}}},  // unknown AS
			{Generators: []Generator{{Kind: KindHijacks}}},                           // no attackers
			{Generators: []Generator{{Kind: KindLocalPrefFlips, AS: topo.Order[0]}}}, // no values
			{Generators: []Generator{{Kind: KindScenarios}}},                         // empty list
			{}, // expands to nothing
		}
		for i, sp := range cases {
			if _, err := Expand(context.Background(), topo, sp); err == nil {
				t.Errorf("case %d: expected error", i)
			}
		}
	})

	t.Run("deterministicNames", func(t *testing.T) {
		a, err := Expand(context.Background(), topo, Spec{Generators: []Generator{{Kind: KindAllSingleLinkFailures}}})
		if err != nil {
			t.Fatal(err)
		}
		b, _ := Expand(context.Background(), topo, Spec{Generators: []Generator{{Kind: KindAllSingleLinkFailures}}})
		if mustJSON(t, a) != mustJSON(t, b) {
			t.Fatal("expansion is not deterministic")
		}
		seen := map[string]bool{}
		for _, sc := range a {
			if sc.Name == "" || seen[sc.Name] {
				t.Fatalf("missing or duplicate scenario name %q", sc.Name)
			}
			seen[sc.Name] = true
		}
	})
}

func TestRunCancellation(t *testing.T) {
	topo, opts := buildTestTopo(t, 60, 9)
	base := newBase(t, topo, opts)
	scenarios, err := Expand(context.Background(), topo, Spec{Generators: []Generator{{Kind: KindAllSingleLinkFailures}}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	emitted := 0
	_, err = Run(ctx, base, scenarios, Options{
		Workers: 2,
		OnImpact: func(*Impact) error {
			emitted++
			if emitted == 3 {
				cancel()
			}
			return nil
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if emitted >= len(scenarios) {
		t.Fatal("cancellation did not stop the sweep early")
	}

	// A sink error likewise aborts.
	boom := errors.New("client went away")
	_, err = Run(context.Background(), base, scenarios[:8], Options{
		Workers:  2,
		OnImpact: func(*Impact) error { return boom },
	})
	if !errors.Is(err, boom) {
		t.Fatalf("want sink error, got %v", err)
	}
}

// TestRunCancellationFlushesWorkerStats pins the partial-stats
// guarantee: a canceled sweep still delivers OnWorkerDone exactly once
// per effective worker before Run returns, and the delivered stats
// cover at least the emitted records — utilization of a half-finished
// run is never reported as zero. (Per-worker counts are NOT asserted
// nonzero: on a single-core runner one worker can legitimately drain
// the whole queue before another is scheduled.)
func TestRunCancellationFlushesWorkerStats(t *testing.T) {
	topo, opts := buildTestTopo(t, 60, 7)
	base := newBase(t, topo, opts)
	scenarios, err := Expand(context.Background(), topo, Spec{Generators: []Generator{
		{Kind: KindAllSingleLinkFailures},
	}})
	if err != nil {
		t.Fatalf("expand: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	const workers = 2
	var (
		mu      sync.Mutex
		emitted int
		stats   []WorkerStats
	)
	_, err = Run(ctx, base, scenarios, Options{
		Workers: workers,
		OnImpact: func(*Impact) error {
			emitted++
			if emitted == 5 {
				cancel()
			}
			return nil
		},
		OnWorkerDone: func(ws WorkerStats) {
			mu.Lock()
			stats = append(stats, ws)
			mu.Unlock()
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if len(stats) != workers {
		t.Fatalf("OnWorkerDone delivered %d times, want once per worker (%d): %+v",
			len(stats), workers, stats)
	}
	seen := make(map[int]bool)
	totalScenarios, totalBusy := 0, time.Duration(0)
	for _, ws := range stats {
		if seen[ws.Worker] {
			t.Fatalf("worker %d reported twice: %+v", ws.Worker, stats)
		}
		seen[ws.Worker] = true
		totalScenarios += ws.Scenarios
		totalBusy += ws.Busy
	}
	if totalScenarios < emitted || totalScenarios == 0 {
		t.Fatalf("flushed stats cover %d scenarios, want >= %d emitted", totalScenarios, emitted)
	}
	if totalBusy <= 0 {
		t.Fatalf("canceled sweep reported zero utilization: %+v", stats)
	}
}

func TestAggregatorShape(t *testing.T) {
	agg := NewAggregator(2)
	for i, shifted := range []int{5, 0, 120, 5, 3000} {
		agg.Add(&Impact{Index: i, Name: fmt.Sprintf("s%d", i), ShiftedASes: shifted,
			LostReachPairs: shifted / 2,
			PeerChanges:    []PeerChange{{Peer: 64512, Prefixes: 1 + i}}})
	}
	agg.Add(&Impact{Index: 5, Name: "bad", Error: "nope"})
	out := agg.Aggregate()
	if out.Scenarios != 6 || out.Errors != 1 || out.ScenariosWithImpact != 4 {
		t.Fatalf("totals wrong: %+v", out)
	}
	wantHist := []int{1, 2, 0, 1, 1}
	for i, b := range out.Histogram {
		if b.Scenarios != wantHist[i] {
			t.Fatalf("histogram[%d]=%d want %d", i, b.Scenarios, wantHist[i])
		}
	}
	if len(out.TopByShift) != 2 || out.TopByShift[0].Index != 4 || out.TopByShift[1].Index != 2 {
		t.Fatalf("top-k wrong: %+v", out.TopByShift)
	}
	if len(out.Peers) != 1 || out.Peers[0].Scenarios != 5 || out.Peers[0].PrefixChanges != 1+2+3+4+5 {
		t.Fatalf("peer summary wrong: %+v", out.Peers)
	}
	// Ties keep the earlier index.
	tie := NewAggregator(2)
	tie.Add(&Impact{Index: 0, Name: "a", ShiftedASes: 7})
	tie.Add(&Impact{Index: 1, Name: "b", ShiftedASes: 7})
	tie.Add(&Impact{Index: 2, Name: "c", ShiftedASes: 7})
	if got := tie.Aggregate().TopByShift; got[0].Index != 0 || got[1].Index != 1 {
		t.Fatalf("tie-break wrong: %+v", got)
	}
}

// TestExpandCanceledContext proves generator enumeration honors
// cancellation: an already-canceled context stops every family —
// including the large hijack grid, whose (prefix x attacker) product is
// the expansion worth interrupting — before it returns scenarios.
func TestExpandCanceledContext(t *testing.T) {
	topo, _ := buildTestTopo(t, 200, 21)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	attackers := topo.Order[:3]
	specs := []Spec{
		{Generators: []Generator{{Kind: KindAllSingleLinkFailures}}},
		{Generators: []Generator{{Kind: KindPrefixWithdrawals}}},
		{Generators: []Generator{{Kind: KindHijacks, Attackers: attackers}}},
	}
	for _, sp := range specs {
		if _, err := Expand(ctx, topo, sp); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: want context.Canceled, got %v", sp.Generators[0].Kind, err)
		}
	}
	// The same specs expand fine on a live context.
	for _, sp := range specs {
		if scs, err := Expand(context.Background(), topo, sp); err != nil || len(scs) == 0 {
			t.Errorf("%s: live expand failed: %v", sp.Generators[0].Kind, err)
		}
	}
}
