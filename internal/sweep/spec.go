// Package sweep turns the one-shot what-if engine into a batch fleet:
// a declarative spec enumerates whole scenario families from the
// topology (every single-link failure, every de-peering of a target
// AS, prefix-withdrawal and hijack grids, policy flips), a sharded
// executor runs them across worker-owned copy-on-write engine clones
// with incremental apply-and-rollback, and an online aggregator folds
// the per-scenario impact records into histograms, top-k critical
// scenarios and per-vantage summaries.
//
// The per-scenario records are deterministic and identically ordered
// regardless of worker count — the executor emits them in scenario
// index order, and each scenario always runs against the pristine base
// state (a rollback that cannot be proven clean discards the clone).
// The exhaustive counterfactual shape follows the catchment-inference
// literature (Sermpezis & Kotronis) and nation-state routing
// counterfactuals (Karlin et al.).
package sweep

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"github.com/policyscope/policyscope/internal/bgp"
	"github.com/policyscope/policyscope/internal/netx"
	"github.com/policyscope/policyscope/internal/simulate"
)

// Generator kinds. Each expands into a deterministic scenario list
// against a concrete topology (see Expand).
const (
	// KindAllSingleLinkFailures fails every session of the graph, one
	// scenario per edge, in canonical (A, B) ascending order. Tier
	// restricts to links touching an AS of that tier; Max caps output.
	KindAllSingleLinkFailures = "all_single_link_failures"
	// KindAllProviderDepeerings fails, one at a time, every provider
	// link of the target AS (field "as") — the de-peering blast radius
	// of a multihomed customer.
	KindAllProviderDepeerings = "all_provider_depeerings"
	// KindPrefixWithdrawals withdraws originated prefixes (filtered by
	// Origins and/or Prefixes, capped by Max). By default it expands one
	// scenario per policy-equivalence atom — prefixes with identical
	// keyed propagation signatures share one representative — because
	// atom members produce near-identical impact records; PerPrefix
	// restores exhaustive per-prefix expansion.
	KindPrefixWithdrawals = "prefix_withdrawals"
	// KindHijacks is the grid prefixes x attackers: each scenario
	// withdraws the prefix at its origin and re-originates it at the
	// attacker (an origin-takeover hijack). Prefixes collapse to atom
	// representatives like KindPrefixWithdrawals unless PerPrefix is set.
	KindHijacks = "hijacks"
	// KindLocalPrefFlips is the cartesian grid neighbors x values for
	// the target AS (field "as"): each scenario overrides the local
	// preference the AS assigns to one neighbor's routes. Empty
	// Neighbors means every neighbor of the AS.
	KindLocalPrefFlips = "local_pref_flips"
	// KindNoUpstreamFlips tags, per scenario, one (prefix, provider)
	// pair with the scoped no-upstream community at the prefix's origin
	// — the community-flip counterpart of the local-pref grid.
	KindNoUpstreamFlips = "no_upstream_flips"
	// KindScenarios passes an explicit scenario list through verbatim.
	KindScenarios = "scenarios"
)

// Generator is one scenario-family entry of a sweep spec. Kind selects
// the family; the other fields parameterize it (unused fields are
// ignored by the kinds that do not read them, but unknown JSON keys are
// rejected at load time).
type Generator struct {
	Kind string `json:"kind"`
	// AS targets per-AS families (provider de-peerings, local-pref
	// flips).
	AS bgp.ASN `json:"as,omitempty"`
	// Tier restricts link-failure families to links touching an AS of
	// this tier (1 = clique, 2 = transit, 3 = edge; 0 = no filter).
	Tier int `json:"tier,omitempty"`
	// Max caps this generator's scenario count (0 = unlimited).
	Max int `json:"max,omitempty"`
	// Origins restricts prefix families to prefixes originated by
	// these ASes.
	Origins []bgp.ASN `json:"origins,omitempty"`
	// Prefixes restricts prefix families to exactly these prefixes.
	Prefixes []netx.Prefix `json:"prefixes,omitempty"`
	// Attackers are the hijacking origins of the hijack grid.
	Attackers []bgp.ASN `json:"attackers,omitempty"`
	// Neighbors are the sessions of the local-pref grid (empty = all
	// neighbors of AS).
	Neighbors []bgp.ASN `json:"neighbors,omitempty"`
	// Values are the local preferences of the local-pref grid.
	Values []uint32 `json:"values,omitempty"`
	// PerPrefix disables atom-deduplicated expansion for the prefix
	// families (withdrawals, hijacks): every subject prefix gets its own
	// scenario instead of one representative per policy-equivalence atom.
	PerPrefix bool `json:"per_prefix,omitempty"`
	// Scenarios is the explicit event list of KindScenarios.
	Scenarios []simulate.Scenario `json:"scenarios,omitempty"`
}

// Spec is a declarative sweep: a name, the generators to expand (in
// order), and an overall cap.
type Spec struct {
	Name       string      `json:"name,omitempty"`
	Generators []Generator `json:"generators"`
	// MaxScenarios caps the expanded sweep after all generators ran
	// (0 = unlimited).
	MaxScenarios int `json:"max_scenarios,omitempty"`
}

// Load reads a Spec from JSON (strict: unknown fields rejected).
func Load(r io.Reader) (Spec, error) {
	var sp Spec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sp); err != nil {
		return Spec{}, fmt.Errorf("sweep: bad spec: %w", err)
	}
	return sp, nil
}

// LoadFile reads a Spec from a JSON file.
func LoadFile(path string) (Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return Spec{}, err
	}
	defer f.Close()
	return Load(f)
}

// WriteJSON renders the spec as indented JSON, the format Load reads.
func (sp Spec) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sp)
}
