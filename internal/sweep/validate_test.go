package sweep

import (
	"context"
	"errors"
	"testing"

	"github.com/policyscope/policyscope/internal/bgp"
)

// TestValidateNamesGenerator pins the satellite contract: a bad spec
// entry is reported as a *GeneratorError naming the entry's index and
// family kind, with the exact message shape clients (and the server's
// 422 bodies) rely on.
func TestValidateNamesGenerator(t *testing.T) {
	cases := []struct {
		name      string
		spec      Spec
		wantIndex int
		wantKind  string
		wantMsg   string
	}{
		{
			name: "unknownKind",
			spec: Spec{Generators: []Generator{
				{Kind: KindAllSingleLinkFailures},
				{Kind: "nope"},
			}},
			wantIndex: 1,
			wantKind:  "nope",
			wantMsg:   `sweep: generator 1 (nope): unknown generator kind "nope"`,
		},
		{
			name: "hijackNoAttackers",
			spec: Spec{Generators: []Generator{
				{Kind: KindAllSingleLinkFailures},
				{Kind: KindPrefixWithdrawals},
				{Kind: KindHijacks},
			}},
			wantIndex: 2,
			wantKind:  KindHijacks,
			wantMsg:   `sweep: generator 2 (hijacks): requires "attackers"`,
		},
		{
			name:      "depeerNoAS",
			spec:      Spec{Generators: []Generator{{Kind: KindAllProviderDepeerings}}},
			wantIndex: 0,
			wantKind:  KindAllProviderDepeerings,
			wantMsg:   `sweep: generator 0 (all_provider_depeerings): requires a target "as"`,
		},
		{
			name:      "flipNoValues",
			spec:      Spec{Generators: []Generator{{Kind: KindLocalPrefFlips, AS: 64512}}},
			wantIndex: 0,
			wantKind:  KindLocalPrefFlips,
			wantMsg:   `sweep: generator 0 (local_pref_flips): requires "values"`,
		},
		{
			name:      "emptyScenarioList",
			spec:      Spec{Generators: []Generator{{Kind: KindScenarios}}},
			wantIndex: 0,
			wantKind:  KindScenarios,
			wantMsg:   `sweep: generator 0 (scenarios): no scenarios listed`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.spec.Validate()
			if err == nil {
				t.Fatal("expected error")
			}
			var ge *GeneratorError
			if !errors.As(err, &ge) {
				t.Fatalf("want *GeneratorError, got %T: %v", err, err)
			}
			if ge.Index != tc.wantIndex || ge.Kind != tc.wantKind {
				t.Fatalf("got index=%d kind=%q, want index=%d kind=%q",
					ge.Index, ge.Kind, tc.wantIndex, tc.wantKind)
			}
			if err.Error() != tc.wantMsg {
				t.Fatalf("message shape changed:\n got %q\nwant %q", err.Error(), tc.wantMsg)
			}
		})
	}

	if err := (Spec{}).Validate(); err == nil {
		t.Fatal("empty spec must not validate")
	}
	ok := Spec{Generators: []Generator{
		{Kind: KindAllSingleLinkFailures},
		{Kind: KindHijacks, Attackers: []bgp.ASN{64512}},
		{Kind: KindLocalPrefFlips, AS: 64512, Values: []uint32{50}},
	}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("well-formed spec rejected: %v", err)
	}
}

// TestExpandWrapsTopologyErrors proves the topology-dependent failures
// that only Expand can catch carry the same typed wrapper as structural
// ones, so callers have one error surface.
func TestExpandWrapsTopologyErrors(t *testing.T) {
	topo, _ := buildTestTopo(t, 60, 5)
	sp := Spec{Generators: []Generator{
		{Kind: KindAllSingleLinkFailures},
		{Kind: KindAllProviderDepeerings, AS: 65530}, // unknown AS: passes Validate, fails Expand
	}}
	if err := sp.Validate(); err != nil {
		t.Fatalf("structural validation should pass: %v", err)
	}
	_, err := Expand(context.Background(), topo, sp)
	var ge *GeneratorError
	if !errors.As(err, &ge) {
		t.Fatalf("want *GeneratorError, got %T: %v", err, err)
	}
	if ge.Index != 1 || ge.Kind != KindAllProviderDepeerings {
		t.Fatalf("wrong generator named: %+v", ge)
	}
}
