package sweep

import "fmt"

// GeneratorError pinpoints the spec entry behind a failed validation or
// expansion: the generator's position in Spec.Generators and its family
// kind, wrapping the underlying cause. Servers surface it as a 422 whose
// message names exactly which entry to fix — a multi-family spec no
// longer fails with a bare "requires \"attackers\"" that could be any of
// its entries.
//
// The message shape is pinned by test:
//
//	sweep: generator 2 (hijacks): requires "attackers"
type GeneratorError struct {
	// Index is the generator's position in Spec.Generators.
	Index int
	// Kind is the entry's declared family kind (possibly unknown).
	Kind string
	// Err is the underlying cause.
	Err error
}

func (e *GeneratorError) Error() string {
	return fmt.Sprintf("sweep: generator %d (%s): %v", e.Index, e.Kind, e.Err)
}

func (e *GeneratorError) Unwrap() error { return e.Err }

// Validate checks the spec's structure without a topology: every
// generator kind is known and every family's required fields are
// present. It is the cheap fail-fast gate servers run before paying for
// a dataset build or scenario expansion; topology-dependent failures
// (unknown AS, prefix not originated) still surface from Expand, wrapped
// in the same *GeneratorError. A structurally empty spec is an error —
// it can never expand to anything.
func (sp Spec) Validate() error {
	if len(sp.Generators) == 0 {
		return fmt.Errorf("sweep: spec has no generators")
	}
	for i, g := range sp.Generators {
		if err := g.validate(); err != nil {
			return &GeneratorError{Index: i, Kind: g.Kind, Err: err}
		}
	}
	return nil
}

// validate checks the topology-independent requirements of one entry.
// The messages match the ones the expansion functions produce for the
// same faults, so callers see one shape regardless of which layer
// rejected the entry first.
func (g Generator) validate() error {
	switch g.Kind {
	case KindAllSingleLinkFailures, KindPrefixWithdrawals, KindNoUpstreamFlips:
		return nil
	case KindAllProviderDepeerings:
		if g.AS == 0 {
			return fmt.Errorf("requires a target \"as\"")
		}
	case KindHijacks:
		if len(g.Attackers) == 0 {
			return fmt.Errorf("requires \"attackers\"")
		}
	case KindLocalPrefFlips:
		if g.AS == 0 {
			return fmt.Errorf("requires a target \"as\"")
		}
		if len(g.Values) == 0 {
			return fmt.Errorf("requires \"values\"")
		}
	case KindScenarios:
		if len(g.Scenarios) == 0 {
			return fmt.Errorf("no scenarios listed")
		}
		for i, sc := range g.Scenarios {
			if len(sc.Events) == 0 {
				return fmt.Errorf("scenario %d has no events", i)
			}
		}
	default:
		return fmt.Errorf("unknown generator kind %q", g.Kind)
	}
	return nil
}
