package core

import (
	"sort"

	"github.com/policyscope/policyscope/internal/asgraph"
	"github.com/policyscope/policyscope/internal/bgp"
	"github.com/policyscope/policyscope/internal/topogen"
)

// Community-based relationship verification (the paper's Appendix and
// Section 4.3 / Table 4) and SA-prefix verification (Table 7).

// NeighborRank is one point of Figure 9: a next-hop AS and how many
// prefixes it announces to the vantage.
type NeighborRank struct {
	Neighbor bgp.ASN
	Prefixes int
}

// RankNeighbors counts, per next-hop AS, the prefixes it contributed to
// the table, sorted by non-increasing count (Figure 9's x-axis).
func RankNeighbors(rib *bgp.RIB) []NeighborRank {
	counts := make(map[bgp.ASN]int)
	for _, prefix := range rib.Prefixes() {
		for _, r := range rib.Candidates(prefix) {
			if nh, ok := r.NextHopAS(); ok {
				counts[nh]++
			}
		}
	}
	out := make([]NeighborRank, 0, len(counts))
	for nb, c := range counts {
		out = append(out, NeighborRank{Neighbor: nb, Prefixes: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Prefixes != out[j].Prefixes {
			return out[i].Prefixes > out[j].Prefixes
		}
		return out[i].Neighbor < out[j].Neighbor
	})
	return out
}

// CommunitySemantics maps a tagging AS's community values to
// relationship classes (Appendix step 2: "inferring the semantics of
// community values").
type CommunitySemantics struct {
	// AS is the tagging AS.
	AS bgp.ASN
	// ClassOf maps each observed community value to the inferred class.
	ClassOf map[bgp.Community]asgraph.Relationship
}

// InferCommunitySemantics implements the appendix heuristic:
//
//   - rank next-hop ASes by announced-prefix count (Figure 9);
//   - if the AS has providers, the top announcer is a provider; if not
//     (a Tier-1-like AS), the top announcers are peers;
//   - the bottom announcers (a handful of prefixes) are customers;
//   - the communities tagged on those anchor neighbors' routes label
//     their value ranges; every other value is classed with its nearest
//     labelled value.
//
// hasProviders is the analyst's prior (the paper: "AS1 and AS3549 do not
// have providers"); derive it from inferred tiers.
func InferCommunitySemantics(rib *bgp.RIB, hasProviders bool) CommunitySemantics {
	sem := CommunitySemantics{AS: rib.Owner, ClassOf: make(map[bgp.Community]asgraph.Relationship)}
	ranks := RankNeighbors(rib)
	if len(ranks) == 0 {
		return sem
	}
	// Tag values observed per neighbor (only the vantage's own tags).
	tagsOf := make(map[bgp.ASN]map[bgp.Community]bool)
	for _, prefix := range rib.Prefixes() {
		for _, r := range rib.Candidates(prefix) {
			nh, ok := r.NextHopAS()
			if !ok {
				continue
			}
			for _, c := range r.Communities {
				if c.AS() == rib.Owner {
					if tagsOf[nh] == nil {
						tagsOf[nh] = make(map[bgp.Community]bool)
					}
					tagsOf[nh][c] = true
				}
			}
		}
	}

	// Classification works on *values*, not neighbors: a tagging scheme
	// assigns each relationship class a compact range of values (Table
	// 11), so values cluster by class. The clusters are identified first,
	// then classified:
	//
	//   - values carried by a top-cluster neighbor (a full-feed session:
	//     ≥ half the top announcer's prefix count) belong to the top
	//     class — provider when the AS has providers, peer otherwise;
	//   - remaining values within intraClassGap of a top value are
	//     same-class variants;
	//   - the remaining value groups split peer from customer (only
	//     meaningful when the AS has providers): the group whose carriers
	//     announce the most prefixes (by median) is the peer range —
	//     peers announce their customer cones, customers announce a
	//     handful ("the last several next hop ASs, which announce very
	//     small number of prefixes, should be customers").
	countOf := make(map[bgp.ASN]int, len(ranks))
	for _, r := range ranks {
		countOf[r.Neighbor] = r.Prefixes
	}
	infoByValue := make(map[bgp.Community]*valueInfo)
	for nb, tags := range tagsOf {
		for c := range tags {
			vi := infoByValue[c]
			if vi == nil {
				vi = &valueInfo{value: c}
				infoByValue[c] = vi
			}
			vi.carriers = append(vi.carriers, countOf[nb])
		}
	}

	topClass := asgraph.RelPeer
	if hasProviders {
		topClass = asgraph.RelProvider
	}
	topValues := make(map[bgp.Community]bool)
	for _, r := range ranks {
		if r.Prefixes*2 < ranks[0].Prefixes {
			break
		}
		for c := range tagsOf[r.Neighbor] {
			topValues[c] = true
		}
	}

	// Group the remaining values by proximity on the value axis.
	var rest []*valueInfo
	for c, vi := range infoByValue {
		nearTop := topValues[c]
		for tv := range topValues {
			if valueDistance(c, tv) <= intraClassGap {
				nearTop = true
			}
		}
		if nearTop {
			sem.ClassOf[c] = topClass
			continue
		}
		rest = append(rest, vi)
	}
	sort.Slice(rest, func(i, j int) bool { return rest[i].value < rest[j].value })
	var groups [][]*valueInfo
	for _, vi := range rest {
		if n := len(groups); n > 0 {
			last := groups[n-1]
			if valueDistance(vi.value, last[len(last)-1].value) <= intraClassGap {
				groups[n-1] = append(last, vi)
				continue
			}
		}
		groups = append(groups, []*valueInfo{vi})
	}

	classify := func(group []*valueInfo, rel asgraph.Relationship) {
		for _, vi := range group {
			sem.ClassOf[vi.value] = rel
		}
	}
	switch {
	case !hasProviders:
		// A top-of-hierarchy AS tags only peers and customers; everything
		// outside the (peer) top ranges is a customer value.
		for _, g := range groups {
			classify(g, asgraph.RelCustomer)
		}
	case len(groups) == 1:
		// One non-provider group: peers and customers are not both
		// present. Decide by announcement size.
		if groupMaxCarrier(groups[0]) > customerAnchorMax*2+1 {
			classify(groups[0], asgraph.RelPeer)
		} else {
			classify(groups[0], asgraph.RelCustomer)
		}
	default:
		// Peer group: the one whose carriers announce the most (median).
		best, bestMed := -1, -1.0
		for i, g := range groups {
			if m := groupMedianCarrier(g); m > bestMed {
				best, bestMed = i, m
			}
		}
		for i, g := range groups {
			if i == best {
				classify(g, asgraph.RelPeer)
			} else {
				classify(g, asgraph.RelCustomer)
			}
		}
	}
	return sem
}

// valueInfo tracks one tag value and the prefix counts of the neighbors
// carrying it.
type valueInfo struct {
	value    bgp.Community
	carriers []int
}

// groupMaxCarrier returns the largest carrier prefix count in the group.
func groupMaxCarrier(group []*valueInfo) int {
	m := 0
	for _, vi := range group {
		for _, n := range vi.carriers {
			if n > m {
				m = n
			}
		}
	}
	return m
}

// groupMedianCarrier returns the median carrier prefix count.
func groupMedianCarrier(group []*valueInfo) float64 {
	var all []int
	for _, vi := range group {
		all = append(all, vi.carriers...)
	}
	if len(all) == 0 {
		return 0
	}
	sort.Ints(all)
	mid := len(all) / 2
	if len(all)%2 == 1 {
		return float64(all[mid])
	}
	return float64(all[mid-1]+all[mid]) / 2
}

// customerAnchorMax is the "very small number of prefixes" cutoff for
// customer anchors.
const customerAnchorMax = 2

// intraClassGap bounds how far apart two community values can be while
// still denoting the same relationship class: published schemes use
// class bases hundreds-to-thousands apart with variants tens apart
// (AS12859's scheme in Table 11 spaces classes 1000 apart, variants 10).
const intraClassGap = 100

func valueDistance(a, b bgp.Community) int {
	d := int(a.Value()) - int(b.Value())
	if d < 0 {
		return -d
	}
	return d
}

// SemanticsFromScheme builds exact semantics from a published tagging
// scheme (the paper: "It is easy to infer the semantics of community
// values when ASs publish their rules, such as registering them in IRR
// database" — AS12859's Table 11 scheme, AS6667's web page).
func SemanticsFromScheme(owner bgp.ASN, entries []topogen.TagSchemeEntry, classifier func(bgp.Community) (asgraph.Relationship, bool)) CommunitySemantics {
	sem := CommunitySemantics{AS: owner, ClassOf: make(map[bgp.Community]asgraph.Relationship, len(entries))}
	for _, e := range entries {
		if rel, ok := classifier(e.Community); ok {
			sem.ClassOf[e.Community] = rel
		}
	}
	return sem
}

// VerificationResult is one AS's row of Table 4.
type VerificationResult struct {
	AS bgp.ASN
	// Neighbors counts next-hop ASes carrying a classifiable tag.
	Neighbors int
	// Verified counts neighbors whose community class matches the
	// graph's relationship annotation.
	Verified int
	// Mismatched lists disagreeing neighbors.
	Mismatched []bgp.ASN
}

// VerifiedPct returns the Table 4 percentage.
func (r VerificationResult) VerifiedPct() float64 { return pct(r.Verified, r.Neighbors) }

// VerifyRelationships classifies every neighbor by its tag under the
// inferred semantics and compares with the graph (Appendix step 3 /
// Table 4).
func VerifyRelationships(rib *bgp.RIB, sem CommunitySemantics, g *asgraph.Graph) VerificationResult {
	res := VerificationResult{AS: rib.Owner}
	classByNb := make(map[bgp.ASN]asgraph.Relationship)
	for _, prefix := range rib.Prefixes() {
		for _, r := range rib.Candidates(prefix) {
			nh, ok := r.NextHopAS()
			if !ok {
				continue
			}
			if _, done := classByNb[nh]; done {
				continue
			}
			for _, c := range r.Communities {
				if rel, ok := sem.ClassOf[c]; ok && c.AS() == rib.Owner {
					classByNb[nh] = rel
					break
				}
			}
		}
	}
	nbs := make([]bgp.ASN, 0, len(classByNb))
	for nb := range classByNb {
		nbs = append(nbs, nb)
	}
	sortASNs(nbs)
	for _, nb := range nbs {
		res.Neighbors++
		if g.Rel(rib.Owner, nb) == classByNb[nb] {
			res.Verified++
		} else {
			res.Mismatched = append(res.Mismatched, nb)
		}
	}
	return res
}

// SAVerification is one provider's row of Table 7.
type SAVerification struct {
	Provider bgp.ASN
	// SACount is the number of SA prefixes checked.
	SACount int
	// Verified counts SA prefixes whose customer path is corroborated:
	// some customer path from the provider to the origin is "active",
	// i.e. its AS-level steps appear as a consecutive subsequence of an
	// observed path.
	Verified int
}

// VerifiedPct returns the Table 7 percentage.
func (v SAVerification) VerifiedPct() float64 { return pct(v.Verified, v.SACount) }

// VerifySAPrefixes implements Section 5.1.3 step 2: for every SA prefix,
// search the observed paths for evidence that a customer path from the
// provider to the origin is active. maxPaths caps the DFS fan-out per
// origin.
func VerifySAPrefixes(res SAResult, g *asgraph.Graph, observed []bgp.Path, maxPaths int) SAVerification {
	out := SAVerification{Provider: res.Vantage, SACount: len(res.SA)}
	if maxPaths <= 0 {
		maxPaths = 64
	}
	// Index observed adjacencies. Orientation is ignored: an AS-level
	// adjacency traversed by any prefix in either direction corroborates
	// the link's activity.
	pairs := make(map[[2]bgp.ASN]bool)
	for _, p := range observed {
		for i := 0; i+1 < len(p); i++ {
			pairs[[2]bgp.ASN{p[i], p[i+1]}] = true
			pairs[[2]bgp.ASN{p[i+1], p[i]}] = true
		}
	}
	verifiedOrigin := make(map[bgp.ASN]bool)
	checkedOrigin := make(map[bgp.ASN]bool)
	for _, sa := range res.SA {
		if !checkedOrigin[sa.Origin] {
			checkedOrigin[sa.Origin] = true
			verifiedOrigin[sa.Origin] = customerPathActive(g, res.Vantage, sa.Origin, pairs, maxPaths)
		}
		if verifiedOrigin[sa.Origin] {
			out.Verified++
		}
	}
	return out
}

// customerPathActive reports whether some customer path u→o has every
// step observed in real paths ("we call a customer path active if other
// prefixes traverse the same path").
func customerPathActive(g *asgraph.Graph, u, o bgp.ASN, pairs map[[2]bgp.ASN]bool, maxPaths int) bool {
	for _, path := range g.AllCustomerPaths(u, o, maxPaths) {
		ok := true
		for i := 0; i+1 < len(path); i++ {
			// Observed paths list nearer-AS first, so a provider step
			// u→c appears as the pair (u, c).
			if !pairs[[2]bgp.ASN{path[i], path[i+1]}] {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}
