package core

import (
	"sort"

	"github.com/policyscope/policyscope/internal/asgraph"
	"github.com/policyscope/policyscope/internal/bgp"
	"github.com/policyscope/policyscope/internal/ibgp"
	"github.com/policyscope/policyscope/internal/irr"
	"github.com/policyscope/policyscope/internal/netx"
)

// ImportAnalyzer infers import policies (Section 4) from full vantage
// tables, which expose local preference on every candidate route.
type ImportAnalyzer struct {
	// Graph supplies AS relationships (ground truth or inferred).
	Graph *asgraph.Graph
}

// TypicalityResult is one AS's row of Table 2: how often the observed
// local preferences conform to customer > peer > provider.
type TypicalityResult struct {
	AS bgp.ASN
	// Comparable counts prefixes carrying candidate routes from at least
	// two different relationship classes (only those can violate or
	// confirm the order).
	Comparable int
	// Typical counts comparable prefixes whose class preferences are
	// ordered customer > peer > provider (ties break the order).
	Typical int
	// AtypicalPrefixes lists the violating prefixes.
	AtypicalPrefixes []netx.Prefix
}

// TypicalPct returns the Table 2 percentage.
func (r TypicalityResult) TypicalPct() float64 { return pct(r.Typical, r.Comparable) }

// Typicality scans a full table. For every prefix with candidates from
// more than one relationship class it checks the pairwise order: every
// customer-route preference must exceed every peer- and provider-route
// preference, and every peer-route preference must exceed every
// provider-route preference.
func (a *ImportAnalyzer) Typicality(rib *bgp.RIB) TypicalityResult {
	res := TypicalityResult{AS: rib.Owner}
	for _, prefix := range rib.Prefixes() {
		var cust, peer, prov []uint32
		for _, r := range rib.Candidates(prefix) {
			nh, ok := r.NextHopAS()
			if !ok {
				continue // locally originated
			}
			switch a.Graph.Rel(rib.Owner, nh) {
			case asgraph.RelCustomer:
				cust = append(cust, r.LocalPref)
			case asgraph.RelPeer:
				peer = append(peer, r.LocalPref)
			case asgraph.RelProvider:
				prov = append(prov, r.LocalPref)
			}
		}
		classes := 0
		for _, s := range [][]uint32{cust, peer, prov} {
			if len(s) > 0 {
				classes++
			}
		}
		if classes < 2 {
			continue
		}
		res.Comparable++
		if minOf(cust) > maxOf(peer) && minOf(cust) > maxOf(prov) && minOf(peer) > maxOf(prov) {
			res.Typical++
		} else {
			res.AtypicalPrefixes = append(res.AtypicalPrefixes, prefix)
		}
	}
	return res
}

// minOf returns the minimum, or the max uint32 for an empty slice so a
// missing class never breaks an ordering check.
func minOf(s []uint32) uint32 {
	if len(s) == 0 {
		return ^uint32(0)
	}
	m := s[0]
	for _, v := range s[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// maxOf returns the maximum, or 0 for an empty slice.
func maxOf(s []uint32) uint32 {
	var m uint32
	for _, v := range s {
		if v > m {
			m = v
		}
	}
	return m
}

// ConsistencyResult is one AS's (or router's) bar of Figure 2: the share
// of prefixes whose local preference is the one implied by the next-hop
// AS.
type ConsistencyResult struct {
	AS bgp.ASN
	// Router is the router index for per-router views (0 for AS-level).
	Router int
	// Prefixes counts candidate routes examined.
	Prefixes int
	// NextHopKeyed counts routes whose preference equals their
	// neighbor's dominant (modal) preference.
	NextHopKeyed int
}

// Pct returns the Figure 2 percentage.
func (r ConsistencyResult) Pct() float64 { return pct(r.NextHopKeyed, r.Prefixes) }

// NextHopConsistency measures, per neighbor, the modal local preference
// and counts how many routes carry it. ASes that key policy on the next
// hop produce near-100% shares; per-prefix configuration pulls the share
// down (Figure 2a).
func (a *ImportAnalyzer) NextHopConsistency(rib *bgp.RIB) ConsistencyResult {
	type nbStats struct {
		counts map[uint32]int
		total  int
	}
	perNb := make(map[bgp.ASN]*nbStats)
	for _, prefix := range rib.Prefixes() {
		for _, r := range rib.Candidates(prefix) {
			nh, ok := r.NextHopAS()
			if !ok {
				continue
			}
			st := perNb[nh]
			if st == nil {
				st = &nbStats{counts: make(map[uint32]int)}
				perNb[nh] = st
			}
			st.counts[r.LocalPref]++
			st.total++
		}
	}
	res := ConsistencyResult{AS: rib.Owner}
	for _, st := range perNb {
		mode := 0
		for _, c := range st.counts {
			if c > mode {
				mode = c
			}
		}
		res.Prefixes += st.total
		res.NextHopKeyed += mode
	}
	return res
}

// RouterConsistency runs NextHopConsistency per border router of a
// multi-router AS, over eBGP candidates only (Figure 2b).
func (a *ImportAnalyzer) RouterConsistency(m *ibgp.MultiRouterAS) []ConsistencyResult {
	out := make([]ConsistencyResult, 0, len(m.Routers))
	for _, router := range m.Routers {
		type nbStats struct {
			counts map[uint32]int
			total  int
		}
		perNb := make(map[bgp.ASN]*nbStats)
		for _, prefix := range router.Table.Prefixes() {
			for _, r := range router.EBGPCandidates(prefix) {
				nh, ok := r.NextHopAS()
				if !ok {
					continue
				}
				st := perNb[nh]
				if st == nil {
					st = &nbStats{counts: make(map[uint32]int)}
					perNb[nh] = st
				}
				st.counts[r.LocalPref]++
				st.total++
			}
		}
		res := ConsistencyResult{AS: m.AS, Router: router.ID}
		for _, st := range perNb {
			mode := 0
			for _, c := range st.counts {
				if c > mode {
					mode = c
				}
			}
			res.Prefixes += st.total
			res.NextHopKeyed += mode
		}
		out = append(out, res)
	}
	return out
}

// IRRTypicalityResult is one AS's row of Table 3.
type IRRTypicalityResult struct {
	AS bgp.ASN
	// Neighbors counts import lines with pref actions and a known
	// relationship.
	Neighbors int
	// ComparablePairs counts neighbor pairs from different classes.
	ComparablePairs int
	// TypicalPairs counts pairs ordered customer > peer > provider
	// (remembering RPSL pref inverts: smaller pref = more preferred).
	TypicalPairs int
}

// TypicalPct returns the Table 3 percentage.
func (r IRRTypicalityResult) TypicalPct() float64 {
	return pct(r.TypicalPairs, r.ComparablePairs)
}

// IRRTypicality reproduces the Table 3 pipeline: discard stale objects,
// keep ASes with at least minNeighbors known-relationship import lines,
// and measure pairwise preference typicality.
func IRRTypicality(db *irr.Database, g *asgraph.Graph, minDate, minNeighbors int) []IRRTypicalityResult {
	fresh := db.FilterFresh(minDate)
	var out []IRRTypicalityResult
	for _, obj := range fresh.Objects {
		prefs := obj.NeighborsWithPref()
		type entry struct {
			rel asgraph.Relationship
			lp  uint32
		}
		var entries []entry
		for nb, lp := range prefs {
			rel := g.Rel(obj.ASN, nb)
			if rel == asgraph.RelCustomer || rel == asgraph.RelPeer || rel == asgraph.RelProvider {
				entries = append(entries, entry{rel, lp})
			}
		}
		if len(entries) < minNeighbors {
			continue
		}
		res := IRRTypicalityResult{AS: obj.ASN, Neighbors: len(entries)}
		rank := map[asgraph.Relationship]int{
			asgraph.RelCustomer: 3, asgraph.RelPeer: 2, asgraph.RelProvider: 1,
		}
		for i := 0; i < len(entries); i++ {
			for j := i + 1; j < len(entries); j++ {
				a, b := entries[i], entries[j]
				if a.rel == b.rel {
					continue
				}
				res.ComparablePairs++
				// Typical: higher-ranked class has strictly higher
				// localpref (equivalently strictly smaller RPSL pref).
				if (rank[a.rel] > rank[b.rel]) == (a.lp > b.lp) && a.lp != b.lp {
					res.TypicalPairs++
				}
			}
		}
		if res.ComparablePairs > 0 {
			out = append(out, res)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].AS < out[j].AS })
	return out
}
