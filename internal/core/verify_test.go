package core

import (
	"testing"

	"github.com/policyscope/policyscope/internal/asgraph"
	"github.com/policyscope/policyscope/internal/bgp"
	"github.com/policyscope/policyscope/internal/netx"
	"github.com/policyscope/policyscope/internal/topogen"
)

// buildTaggedRIB builds a table for AS12859 (a Table-11-style tagger)
// with one provider (announcing many prefixes), one peer (several) and
// two customers (one or two each).
func buildTaggedRIB(t *testing.T) (*bgp.RIB, *asgraph.Graph, *topogen.CommunityTagging) {
	t.Helper()
	const owner = 12859
	g := asgraph.New()
	for _, err := range []error{
		g.AddProviderCustomer(701, owner),  // provider
		g.AddPeer(owner, 8220),             // peer
		g.AddProviderCustomer(owner, 4001), // customers
		g.AddProviderCustomer(owner, 4002),
	} {
		if err != nil {
			t.Fatal(err)
		}
	}
	ct := &topogen.CommunityTagging{AS: owner, Variants: 2}
	rib := bgp.NewRIB(owner)
	add := func(nb bgp.ASN, rel asgraph.Relationship, prefix, path string, lp uint32) {
		r := route(t, prefix, path, lp)
		if tag, ok := ct.TagFor(rel, nb); ok {
			r.Communities = bgp.NewCommunities(tag)
		}
		rib.Upsert(nb, r)
	}
	// Provider 701 announces a full-feed-sized share of the table (well
	// over twice anything else, like a real transit session).
	for i := 0; i < 40; i++ {
		prefix := netx.Prefix{Addr: 0x14000000 + uint32(i)<<8, Len: 24}.String()
		add(701, asgraph.RelProvider, prefix, "701 "+itoa(9000+i), 80)
	}
	// Peer 8220 announces its cone: a middle-band count.
	for i := 0; i < 12; i++ {
		prefix := netx.Prefix{Addr: 0x15000000 + uint32(i)<<8, Len: 24}.String()
		add(8220, asgraph.RelPeer, prefix, "8220 "+itoa(9100+i), 90)
	}
	// Customers announce one or two prefixes.
	add(4001, asgraph.RelCustomer, "22.0.0.0/24", "4001", 100)
	add(4002, asgraph.RelCustomer, "22.0.1.0/24", "4002", 100)
	add(4002, asgraph.RelCustomer, "22.0.2.0/24", "4002", 100)
	return rib, g, ct
}

func TestRankNeighbors(t *testing.T) {
	rib, _, _ := buildTaggedRIB(t)
	ranks := RankNeighbors(rib)
	if len(ranks) != 4 {
		t.Fatalf("ranks: %+v", ranks)
	}
	if ranks[0].Neighbor != 701 || ranks[0].Prefixes != 40 {
		t.Fatalf("top: %+v", ranks[0])
	}
	if ranks[1].Neighbor != 8220 {
		t.Fatalf("second: %+v", ranks[1])
	}
	if ranks[3].Prefixes > ranks[2].Prefixes {
		t.Fatal("ranks not sorted")
	}
}

func TestInferCommunitySemanticsWithProvider(t *testing.T) {
	rib, _, ct := buildTaggedRIB(t)
	sem := InferCommunitySemantics(rib, true)
	if sem.AS != 12859 {
		t.Fatalf("AS = %v", sem.AS)
	}
	// Every tag the AS uses must be classified correctly.
	for _, rel := range []asgraph.Relationship{asgraph.RelProvider, asgraph.RelPeer, asgraph.RelCustomer} {
		for nb := bgp.ASN(1); nb < 10; nb++ {
			tag, _ := ct.TagFor(rel, nb)
			got, ok := sem.ClassOf[tag]
			if !ok {
				continue // variant not observed in this small table
			}
			if got != rel {
				t.Fatalf("ClassOf(%v) = %v, want %v", tag, got, rel)
			}
		}
	}
}

func TestInferCommunitySemanticsTopIsPeerWithoutProviders(t *testing.T) {
	// A Tier-1-style tagger: top announcer must be classified peer.
	const owner = 1
	ct := &topogen.CommunityTagging{AS: owner, Variants: 1}
	rib := bgp.NewRIB(owner)
	for i := 0; i < 15; i++ {
		r := route(t, netx.Prefix{Addr: 0x14000000 + uint32(i)<<8, Len: 24}.String(), "701 "+itoa(8000+i), 90)
		tag, _ := ct.TagFor(asgraph.RelPeer, 701)
		r.Communities = bgp.NewCommunities(tag)
		rib.Upsert(701, r)
	}
	r := route(t, "23.0.0.0/24", "52", 100)
	tag, _ := ct.TagFor(asgraph.RelCustomer, 52)
	r.Communities = bgp.NewCommunities(tag)
	rib.Upsert(52, r)

	sem := InferCommunitySemantics(rib, false)
	peerTag, _ := ct.TagFor(asgraph.RelPeer, 701)
	if got := sem.ClassOf[peerTag]; got != asgraph.RelPeer {
		t.Fatalf("top tag class = %v, want peer", got)
	}
	custTag, _ := ct.TagFor(asgraph.RelCustomer, 52)
	if got := sem.ClassOf[custTag]; got != asgraph.RelCustomer {
		t.Fatalf("customer tag class = %v", got)
	}
	// Empty table: no semantics.
	if got := InferCommunitySemantics(bgp.NewRIB(5), false); len(got.ClassOf) != 0 {
		t.Fatalf("empty table produced semantics: %+v", got)
	}
}

func TestVerifyRelationships(t *testing.T) {
	rib, g, _ := buildTaggedRIB(t)
	sem := InferCommunitySemantics(rib, true)
	res := VerifyRelationships(rib, sem, g)
	if res.Neighbors != 4 {
		t.Fatalf("neighbors = %d", res.Neighbors)
	}
	if res.Verified != 4 || res.VerifiedPct() != 100 {
		t.Fatalf("verification: %+v", res)
	}
	// Break the graph: 4001 now recorded as peer → mismatch.
	g2 := asgraph.New()
	for _, err := range []error{
		g2.AddProviderCustomer(701, 12859),
		g2.AddPeer(12859, 8220),
		g2.AddPeer(12859, 4001),
		g2.AddProviderCustomer(12859, 4002),
	} {
		if err != nil {
			t.Fatal(err)
		}
	}
	res2 := VerifyRelationships(rib, sem, g2)
	if res2.Verified != 3 || len(res2.Mismatched) != 1 || res2.Mismatched[0] != 4001 {
		t.Fatalf("mismatch detection: %+v", res2)
	}
}

func TestVerifySAPrefixes(t *testing.T) {
	g := figure5Graph(t)
	p := netx.MustParsePrefix("20.1.0.0/24")
	res := SAResult{
		Vantage: 1,
		SA: []SAInfo{{
			Prefix: p, Origin: 6280, NextHop: 3549, NextHopRel: asgraph.RelPeer,
		}},
	}
	// Customer path 1→852→6280 active: another prefix traverses 852 6280.
	observed := []bgp.Path{
		mustPath(t, "1 852 6280"),
	}
	v := VerifySAPrefixes(res, g, observed, 0)
	if v.SACount != 1 || v.Verified != 1 || v.VerifiedPct() != 100 {
		t.Fatalf("verified: %+v", v)
	}
	// Without supporting paths, verification fails.
	v2 := VerifySAPrefixes(res, g, []bgp.Path{mustPath(t, "9 8 7")}, 4)
	if v2.Verified != 0 {
		t.Fatalf("unsupported path verified: %+v", v2)
	}
	// Partial evidence (only half the path) is insufficient.
	v3 := VerifySAPrefixes(res, g, []bgp.Path{mustPath(t, "1 852")}, 4)
	if v3.Verified != 0 {
		t.Fatalf("partial path verified: %+v", v3)
	}
}

func mustPath(t *testing.T, s string) bgp.Path {
	t.Helper()
	p, err := bgp.ParsePath(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}
