package core

import (
	"strings"
	"testing"

	"github.com/policyscope/policyscope/internal/asgraph"
	"github.com/policyscope/policyscope/internal/bgp"
	"github.com/policyscope/policyscope/internal/irr"
	"github.com/policyscope/policyscope/internal/netx"
)

// testGraph: vantage 100 with customer 10, peer 20, provider 30.
func testGraph(t *testing.T) *asgraph.Graph {
	t.Helper()
	g := asgraph.New()
	for _, err := range []error{
		g.AddProviderCustomer(100, 10),
		g.AddPeer(100, 20),
		g.AddProviderCustomer(30, 100),
	} {
		if err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func route(t *testing.T, prefix, path string, lp uint32) *bgp.Route {
	t.Helper()
	p, err := bgp.ParsePath(path)
	if err != nil {
		t.Fatal(err)
	}
	return &bgp.Route{Prefix: netx.MustParsePrefix(prefix), Path: p, LocalPref: lp}
}

func TestTypicality(t *testing.T) {
	g := testGraph(t)
	rib := bgp.NewRIB(100)
	// Prefix A: customer 100 > peer 90 — typical.
	rib.Upsert(10, route(t, "20.0.0.0/24", "10 900", 100))
	rib.Upsert(20, route(t, "20.0.0.0/24", "20 900", 90))
	// Prefix B: provider 95 > customer 80 — atypical.
	rib.Upsert(10, route(t, "20.0.1.0/24", "10 901", 80))
	rib.Upsert(30, route(t, "20.0.1.0/24", "30 901", 95))
	// Prefix C: only one class — not comparable.
	rib.Upsert(20, route(t, "20.0.2.0/24", "20 902", 90))
	// Prefix D: tie between peer and provider — atypical ("not lower").
	rib.Upsert(20, route(t, "20.0.3.0/24", "20 903", 85))
	rib.Upsert(30, route(t, "20.0.3.0/24", "30 903", 85))

	res := (&ImportAnalyzer{Graph: g}).Typicality(rib)
	if res.Comparable != 3 {
		t.Fatalf("comparable = %d, want 3", res.Comparable)
	}
	if res.Typical != 1 {
		t.Fatalf("typical = %d, want 1", res.Typical)
	}
	if len(res.AtypicalPrefixes) != 2 {
		t.Fatalf("atypical prefixes: %v", res.AtypicalPrefixes)
	}
	if got := res.TypicalPct(); got < 33.3 || got > 33.4 {
		t.Fatalf("pct = %v", got)
	}
}

func TestTypicalityEmptyAndLocal(t *testing.T) {
	g := testGraph(t)
	rib := bgp.NewRIB(100)
	rib.Upsert(100, &bgp.Route{Prefix: netx.MustParsePrefix("20.0.0.0/24"), LocalPref: 1 << 20})
	res := (&ImportAnalyzer{Graph: g}).Typicality(rib)
	if res.Comparable != 0 || res.TypicalPct() != 0 {
		t.Fatalf("local-only table: %+v", res)
	}
}

func TestNextHopConsistency(t *testing.T) {
	g := testGraph(t)
	rib := bgp.NewRIB(100)
	// Neighbor 10: three routes at 100, one deviating at 102.
	rib.Upsert(10, route(t, "20.0.0.0/24", "10 900", 100))
	rib.Upsert(10, route(t, "20.0.1.0/24", "10 901", 100))
	rib.Upsert(10, route(t, "20.0.2.0/24", "10 902", 100))
	rib.Upsert(10, route(t, "20.0.3.0/24", "10 903", 102))
	// Neighbor 20: perfectly consistent.
	rib.Upsert(20, route(t, "20.0.0.0/24", "20 900", 90))
	rib.Upsert(20, route(t, "20.0.1.0/24", "20 901", 90))

	res := (&ImportAnalyzer{Graph: g}).NextHopConsistency(rib)
	if res.Prefixes != 6 {
		t.Fatalf("prefixes = %d", res.Prefixes)
	}
	if res.NextHopKeyed != 5 {
		t.Fatalf("next-hop keyed = %d, want 5 (3 of 4 + 2 of 2)", res.NextHopKeyed)
	}
	if got := res.Pct(); got < 83.3 || got > 83.4 {
		t.Fatalf("pct = %v", got)
	}
}

func TestIRRTypicality(t *testing.T) {
	g := testGraph(t)
	text := `aut-num: AS100
import: from AS10 action pref = ` + itoa(irr.PrefFromLocalPref(100)) + `; accept ANY
import: from AS20 action pref = ` + itoa(irr.PrefFromLocalPref(90)) + `; accept ANY
import: from AS30 action pref = ` + itoa(irr.PrefFromLocalPref(80)) + `; accept ANY
changed: noc@as100 20021001
source: RADB

aut-num: AS200
import: from AS10 action pref = 1; accept ANY
changed: noc@as200 20010101
source: RADB
`
	db, err := irr.Parse(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	rows := IRRTypicality(db, g, 20020101, 2)
	if len(rows) != 1 {
		t.Fatalf("rows = %+v (stale AS200 must be dropped)", rows)
	}
	row := rows[0]
	if row.AS != 100 || row.Neighbors != 3 || row.ComparablePairs != 3 {
		t.Fatalf("row: %+v", row)
	}
	if row.TypicalPairs != 3 || row.TypicalPct() != 100 {
		t.Fatalf("typicality: %+v", row)
	}
}

func TestIRRTypicalityAtypical(t *testing.T) {
	g := testGraph(t)
	// Provider pref better (smaller) than customer: atypical pair.
	text := `aut-num: AS100
import: from AS10 action pref = 920; accept ANY
import: from AS30 action pref = 900; accept ANY
changed: noc@as100 20021001
source: RADB
`
	db, err := irr.Parse(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	rows := IRRTypicality(db, g, 20020101, 2)
	if len(rows) != 1 || rows[0].TypicalPairs != 0 {
		t.Fatalf("rows: %+v", rows)
	}
	// minNeighbors filter.
	if got := IRRTypicality(db, g, 20020101, 3); len(got) != 0 {
		t.Fatalf("minNeighbors filter failed: %+v", got)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [12]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
