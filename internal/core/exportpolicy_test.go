package core

import (
	"testing"

	"github.com/policyscope/policyscope/internal/asgraph"
	"github.com/policyscope/policyscope/internal/bgp"
	"github.com/policyscope/policyscope/internal/netx"
)

// figure5Graph reproduces the paper's Figure 5: AS1 and AS3549 are
// peers; AS852 is AS1's customer; AS6280 is a customer of both AS852 and
// AS13768; AS13768 is AS3549's customer.
func figure5Graph(t *testing.T) *asgraph.Graph {
	t.Helper()
	g := asgraph.New()
	for _, err := range []error{
		g.AddPeer(1, 3549),
		g.AddProviderCustomer(1, 852),
		g.AddProviderCustomer(852, 6280),
		g.AddProviderCustomer(3549, 13768),
		g.AddProviderCustomer(13768, 6280),
	} {
		if err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestSAPrefixesFigure5(t *testing.T) {
	g := figure5Graph(t)
	p := netx.MustParsePrefix("20.1.0.0/24")
	// AS1's best route to p (originated by its indirect customer AS6280)
	// arrives via its peer AS3549: the paper's canonical SA prefix.
	view := BestView{AS: 1, Routes: map[netx.Prefix]*bgp.Route{
		p: route(t, "20.1.0.0/24", "3549 13768 6280", 90),
	}}
	res := (&ExportAnalyzer{Graph: g}).SAPrefixes(view)
	if res.ConePrefixes != 1 || len(res.SA) != 1 {
		t.Fatalf("result: %+v", res)
	}
	sa := res.SA[0]
	if sa.Origin != 6280 || sa.NextHop != 3549 || sa.NextHopRel != asgraph.RelPeer {
		t.Fatalf("SA info: %+v", sa)
	}
	if res.SAPct() != 100 {
		t.Fatalf("pct = %v", res.SAPct())
	}
	if !res.SAPrefixSet()[p] {
		t.Fatal("SAPrefixSet missing the prefix")
	}
}

func TestSAPrefixesCustomerRouteNotSA(t *testing.T) {
	g := figure5Graph(t)
	p := netx.MustParsePrefix("20.1.0.0/24")
	view := BestView{AS: 1, Routes: map[netx.Prefix]*bgp.Route{
		p: route(t, "20.1.0.0/24", "852 6280", 100),
	}}
	res := (&ExportAnalyzer{Graph: g}).SAPrefixes(view)
	if res.ConePrefixes != 1 || len(res.SA) != 0 {
		t.Fatalf("customer route misclassified: %+v", res)
	}
}

func TestSAPrefixesIgnoresNonConeAndOwn(t *testing.T) {
	g := figure5Graph(t)
	own := netx.MustParsePrefix("20.2.0.0/24")
	foreign := netx.MustParsePrefix("20.3.0.0/24")
	view := BestView{AS: 1, Routes: map[netx.Prefix]*bgp.Route{
		// Locally originated.
		own: {Prefix: own, LocalPref: 1 << 20},
		// Originated by the peer itself (not in AS1's cone).
		foreign: route(t, "20.3.0.0/24", "3549", 90),
	}}
	res := (&ExportAnalyzer{Graph: g}).SAPrefixes(view)
	if res.ConePrefixes != 0 || len(res.SA) != 0 {
		t.Fatalf("non-cone prefixes counted: %+v", res)
	}
}

func TestCustomerView(t *testing.T) {
	// Two providers (1, 2) sharing customer 50 (via intermediate chains)
	// and a second customer 60 below only provider 1.
	g := asgraph.New()
	for _, err := range []error{
		g.AddPeer(1, 2),
		g.AddProviderCustomer(1, 50),
		g.AddProviderCustomer(2, 50),
		g.AddProviderCustomer(1, 60),
	} {
		if err != nil {
			t.Fatal(err)
		}
	}
	pa := netx.MustParsePrefix("20.1.0.0/24")
	pb := netx.MustParsePrefix("20.1.1.0/24")
	pc := netx.MustParsePrefix("20.2.0.0/24")
	views := []BestView{
		{AS: 1, Routes: map[netx.Prefix]*bgp.Route{
			pa: route(t, "20.1.0.0/24", "50", 100),  // direct customer route
			pb: route(t, "20.1.1.0/24", "2 50", 90), // SA at 1
			pc: route(t, "20.2.0.0/24", "60", 100),  // customer 60
		}},
		{AS: 2, Routes: map[netx.Prefix]*bgp.Route{
			pa: route(t, "20.1.0.0/24", "50", 100),
			pb: route(t, "20.1.1.0/24", "50", 100),
		}},
	}
	rows := (&ExportAnalyzer{Graph: g}).CustomerView(views, 1)
	// Customer 60 is not below provider 2 → excluded. Customer 50 has 2
	// prefixes, pb SA at provider 1 only.
	if len(rows) != 1 {
		t.Fatalf("rows: %+v", rows)
	}
	row := rows[0]
	if row.Customer != 50 || row.Prefixes != 2 || row.SACount != 1 {
		t.Fatalf("row: %+v", row)
	}
	if row.PerProvider[1] != 1 || row.PerProvider[2] != 0 {
		t.Fatalf("per-provider: %+v", row.PerProvider)
	}
	if row.SAPct() != 50 {
		t.Fatalf("pct = %v", row.SAPct())
	}
	// minPrefixes filter.
	if got := (&ExportAnalyzer{Graph: g}).CustomerView(views, 3); len(got) != 0 {
		t.Fatalf("minPrefixes filter failed: %+v", got)
	}
	if got := (&ExportAnalyzer{Graph: g}).CustomerView(nil, 1); got != nil {
		t.Fatal("empty views must yield nil")
	}
}

type fakeTruth map[netx.Prefix]bool

func (f fakeTruth) IsSelectivelyAnnounced(p netx.Prefix) bool { return f[p] }

func TestScoreSA(t *testing.T) {
	pa := netx.MustParsePrefix("20.1.0.0/24")
	pb := netx.MustParsePrefix("20.1.1.0/24")
	res := SAResult{SA: []SAInfo{{Prefix: pa}, {Prefix: pb}}}
	tp, fp := ScoreSA(res, fakeTruth{pa: true})
	if tp != 1 || fp != 1 {
		t.Fatalf("tp/fp = %d/%d", tp, fp)
	}
}

func TestViewFromRIBAndPeerTable(t *testing.T) {
	rib := bgp.NewRIB(7)
	rib.Upsert(10, route(t, "20.0.0.0/24", "10 900", 100))
	rib.Upsert(20, route(t, "20.0.0.0/24", "20 900", 90))
	v := ViewFromRIB(rib)
	if v.AS != 7 || len(v.Routes) != 1 {
		t.Fatalf("view: %+v", v)
	}
	if nh, _ := v.Routes[netx.MustParsePrefix("20.0.0.0/24")].NextHopAS(); nh != 10 {
		t.Fatalf("best not taken: %v", nh)
	}
	collector := bgp.NewRIB(0)
	collector.Upsert(10, route(t, "20.0.0.0/24", "10 900", 100))
	collector.Upsert(20, route(t, "20.0.0.0/24", "20 5 900", 100))
	pv := ViewFromPeerTable(collector, 20)
	if pv.AS != 20 || len(pv.Routes) != 1 {
		t.Fatalf("peer view: %+v", pv)
	}
	if got := pv.Routes[netx.MustParsePrefix("20.0.0.0/24")].Path.String(); got != "20 5 900" {
		t.Fatalf("peer route: %v", got)
	}
	if got := v.SortedPrefixes(); len(got) != 1 {
		t.Fatalf("SortedPrefixes: %v", got)
	}
}
