package core

import (
	"github.com/policyscope/policyscope/internal/bgp"
	"github.com/policyscope/policyscope/internal/netx"
)

// Persistence analysis (Section 5.1.4, Figures 6–7): how SA prefixes
// evolve across collection epochs.

// EpochPoint is one point of Figure 6: a snapshot's totals for one
// vantage.
type EpochPoint struct {
	// Time is the snapshot timestamp.
	Time uint32
	// AllPrefixes counts prefixes in the vantage's view.
	AllPrefixes int
	// ConePrefixes counts customer-cone-originated prefixes.
	ConePrefixes int
	// SAPrefixes counts selectively announced ones.
	SAPrefixes int
}

// PersistenceResult aggregates a series for one vantage.
type PersistenceResult struct {
	// Vantage is the AS whose view the series tracks.
	Vantage bgp.ASN
	// Points holds one entry per epoch, in time order.
	Points []EpochPoint
	// Uptime[p] counts epochs where prefix p appeared in the view.
	Uptime map[netx.Prefix]int
	// SAUptime[p] counts epochs where p was SA.
	SAUptime map[netx.Prefix]int
	// Epochs is the series length (max possible uptime).
	Epochs int
}

// AnalyzePersistence runs the Figure-4 SA detection on each epoch's view
// and accumulates uptime counters. views must be time-ordered and all
// belong to the same vantage AS; times must parallel views.
func AnalyzePersistence(a *ExportAnalyzer, views []BestView, times []uint32) PersistenceResult {
	res := PersistenceResult{
		Uptime:   make(map[netx.Prefix]int),
		SAUptime: make(map[netx.Prefix]int),
		Epochs:   len(views),
	}
	if len(views) == 0 {
		return res
	}
	res.Vantage = views[0].AS
	for i, view := range views {
		sa := a.SAPrefixes(view)
		point := EpochPoint{
			AllPrefixes:  len(view.Routes),
			ConePrefixes: sa.ConePrefixes,
			SAPrefixes:   len(sa.SA),
		}
		if i < len(times) {
			point.Time = times[i]
		}
		for p := range view.Routes {
			res.Uptime[p]++
		}
		for _, s := range sa.SA {
			res.SAUptime[s.Prefix]++
		}
		res.Points = append(res.Points, point)
	}
	return res
}

// UptimeBucket is one x-position of Figure 7: prefixes with a given
// uptime split into those that stayed SA whenever present versus those
// that shifted between SA and non-SA.
type UptimeBucket struct {
	// Uptime is the number of epochs the prefixes were present.
	Uptime int
	// RemainingSA counts prefixes whose SA-uptime equals their uptime.
	RemainingSA int
	// Shifting counts prefixes that were SA in some epochs but not all
	// the epochs they were present ("shift from SA prefix to non-SA").
	Shifting int
}

// UptimeHistogram computes Figure 7's two series over every prefix that
// was ever SA.
func (r PersistenceResult) UptimeHistogram() []UptimeBucket {
	buckets := make([]UptimeBucket, r.Epochs+1)
	for i := range buckets {
		buckets[i].Uptime = i
	}
	for p, saUp := range r.SAUptime {
		up := r.Uptime[p]
		if up == 0 || up > r.Epochs {
			continue
		}
		if saUp == up {
			buckets[up].RemainingSA++
		} else {
			buckets[up].Shifting++
		}
	}
	return buckets[1:]
}

// ShiftingShare returns the fraction of ever-SA prefixes that shifted —
// the paper observes "about one sixth of SA prefixes are not stable
// during one month, but most of them are stable during one day".
func (r PersistenceResult) ShiftingShare() float64 {
	shifting, total := 0, 0
	for p, saUp := range r.SAUptime {
		total++
		if saUp != r.Uptime[p] {
			shifting++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(shifting) / float64(total)
}
