package core

import (
	"testing"

	"github.com/policyscope/policyscope/internal/bgp"
	"github.com/policyscope/policyscope/internal/netx"
)

func TestAnalyzePersistence(t *testing.T) {
	g := figure5Graph(t)
	a := &ExportAnalyzer{Graph: g}
	p := netx.MustParsePrefix("20.1.0.0/24")
	q := netx.MustParsePrefix("20.1.1.0/24")

	saRoute := func() *bgp.Route { return route(t, "20.1.0.0/24", "3549 13768 6280", 90) }
	custRoute := func() *bgp.Route { return route(t, "20.1.0.0/24", "852 6280", 100) }
	qRoute := func() *bgp.Route {
		r := route(t, "20.1.1.0/24", "852 6280", 100)
		return r
	}

	// Epoch 0: p SA, q customer. Epoch 1: p customer, q customer.
	// Epoch 2: p SA, q absent.
	views := []BestView{
		{AS: 1, Routes: map[netx.Prefix]*bgp.Route{p: saRoute(), q: qRoute()}},
		{AS: 1, Routes: map[netx.Prefix]*bgp.Route{p: custRoute(), q: qRoute()}},
		{AS: 1, Routes: map[netx.Prefix]*bgp.Route{p: saRoute()}},
	}
	res := AnalyzePersistence(a, views, []uint32{100, 200, 300})
	if res.Epochs != 3 || len(res.Points) != 3 {
		t.Fatalf("epochs: %+v", res)
	}
	if res.Points[0].SAPrefixes != 1 || res.Points[1].SAPrefixes != 0 || res.Points[2].SAPrefixes != 1 {
		t.Fatalf("SA series: %+v", res.Points)
	}
	if res.Points[0].AllPrefixes != 2 || res.Points[2].AllPrefixes != 1 {
		t.Fatalf("all series: %+v", res.Points)
	}
	if res.Points[1].Time != 200 {
		t.Fatalf("times: %+v", res.Points)
	}
	if res.Uptime[p] != 3 || res.Uptime[q] != 2 {
		t.Fatalf("uptime: %+v", res.Uptime)
	}
	if res.SAUptime[p] != 2 {
		t.Fatalf("SA uptime: %+v", res.SAUptime)
	}
	// p shifted (SA 2 of 3 present epochs); q never SA → not tracked.
	if res.ShiftingShare() != 1 {
		t.Fatalf("shifting share = %v", res.ShiftingShare())
	}
	hist := res.UptimeHistogram()
	if len(hist) != 3 {
		t.Fatalf("histogram: %+v", hist)
	}
	if hist[2].Uptime != 3 || hist[2].Shifting != 1 || hist[2].RemainingSA != 0 {
		t.Fatalf("bucket 3: %+v", hist[2])
	}
}

func TestAnalyzePersistenceStableSA(t *testing.T) {
	g := figure5Graph(t)
	a := &ExportAnalyzer{Graph: g}
	p := netx.MustParsePrefix("20.1.0.0/24")
	mk := func() BestView {
		return BestView{AS: 1, Routes: map[netx.Prefix]*bgp.Route{
			p: route(t, "20.1.0.0/24", "3549 13768 6280", 90),
		}}
	}
	res := AnalyzePersistence(a, []BestView{mk(), mk(), mk(), mk()}, nil)
	if res.ShiftingShare() != 0 {
		t.Fatalf("stable SA reported shifting: %v", res.ShiftingShare())
	}
	hist := res.UptimeHistogram()
	if hist[3].RemainingSA != 1 || hist[3].Shifting != 0 {
		t.Fatalf("bucket 4: %+v", hist[3])
	}
}

func TestAnalyzePersistenceEmpty(t *testing.T) {
	g := figure5Graph(t)
	res := AnalyzePersistence(&ExportAnalyzer{Graph: g}, nil, nil)
	if res.Epochs != 0 || res.ShiftingShare() != 0 || len(res.UptimeHistogram()) != 0 {
		t.Fatalf("empty series: %+v", res)
	}
}
