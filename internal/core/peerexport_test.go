package core

import (
	"testing"

	"github.com/policyscope/policyscope/internal/asgraph"
	"github.com/policyscope/policyscope/internal/bgp"
	"github.com/policyscope/policyscope/internal/netx"
)

func TestAnalyzePeerExport(t *testing.T) {
	g := asgraph.New()
	for _, err := range []error{
		g.AddPeer(1, 20),
		g.AddPeer(1, 30),
		g.AddPeer(1, 40),
		g.AddProviderCustomer(1, 50),
	} {
		if err != nil {
			t.Fatal(err)
		}
	}
	pa := netx.MustParsePrefix("20.0.0.0/24") // peer 20's, announced directly
	pb := netx.MustParsePrefix("20.0.1.0/24") // peer 20's, announced directly
	pc := netx.MustParsePrefix("20.1.0.0/24") // peer 30's, arrives via 20!
	pd := netx.MustParsePrefix("20.2.0.0/24") // peer 40's, absent at vantage

	view := BestView{AS: 1, Routes: map[netx.Prefix]*bgp.Route{
		pa: route(t, "20.0.0.0/24", "20", 90),
		pb: route(t, "20.0.1.0/24", "20", 90),
		pc: route(t, "20.1.0.0/24", "20 30", 90),
	}}
	universe := map[netx.Prefix]bgp.ASN{pa: 20, pb: 20, pc: 30, pd: 40}

	res := AnalyzePeerExport(view, g, universe)
	if len(res.Rows) != 3 {
		t.Fatalf("rows: %+v", res.Rows)
	}
	byPeer := map[bgp.ASN]PeerExportRow{}
	for _, row := range res.Rows {
		byPeer[row.Peer] = row
	}
	if row := byPeer[20]; !row.ExportsAll() || row.Direct != 2 {
		t.Fatalf("peer 20: %+v", row)
	}
	if row := byPeer[30]; row.ExportsAll() || row.Direct != 0 {
		t.Fatalf("peer 30: %+v", row)
	}
	if row := byPeer[40]; row.ExportsAll() || row.DirectPct() != 0 {
		t.Fatalf("peer 40: %+v", row)
	}
	if res.Announcing() != 1 {
		t.Fatalf("announcing = %d", res.Announcing())
	}
	if got := res.AnnouncingPct(); got < 33.3 || got > 33.4 {
		t.Fatalf("pct = %v", got)
	}
}

func TestOriginUniverse(t *testing.T) {
	pa := netx.MustParsePrefix("20.0.0.0/24")
	local := netx.MustParsePrefix("20.9.0.0/24")
	views := []BestView{
		{AS: 1, Routes: map[netx.Prefix]*bgp.Route{
			pa:    route(t, "20.0.0.0/24", "20 900", 90),
			local: {Prefix: local, LocalPref: 1 << 20}, // AS1's own
		}},
		{AS: 2, Routes: map[netx.Prefix]*bgp.Route{
			pa: route(t, "20.0.0.0/24", "30 901", 90), // conflicting origin: first wins
		}},
	}
	u := OriginUniverse(views)
	if u[pa] != 900 {
		t.Fatalf("origin of %v = %v", pa, u[pa])
	}
	if u[local] != 1 {
		t.Fatalf("local origin = %v, want the view's own AS", u[local])
	}
}
