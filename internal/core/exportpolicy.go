package core

import (
	"sort"

	"github.com/policyscope/policyscope/internal/asgraph"
	"github.com/policyscope/policyscope/internal/bgp"
	"github.com/policyscope/policyscope/internal/netx"
)

// ExportAnalyzer implements the paper's Figure 4: inferring export
// policies to providers by detecting selectively announced (SA)
// prefixes from a provider's viewpoint.
type ExportAnalyzer struct {
	// Graph supplies the annotated AS graph (Phase 2 of the algorithm
	// walks provider→customer edges).
	Graph *asgraph.Graph
}

// SAInfo describes one SA prefix at a vantage.
type SAInfo struct {
	Prefix netx.Prefix
	// Origin is the customer that originated the prefix.
	Origin bgp.ASN
	// NextHop is the non-customer neighbor the best route arrived from.
	NextHop bgp.ASN
	// NextHopRel is the vantage's relationship to NextHop (peer or
	// provider).
	NextHopRel asgraph.Relationship
	// Route is the observed best route.
	Route *bgp.Route
}

// SAResult aggregates Figure-4 output for one vantage AS — a row of
// Table 5.
type SAResult struct {
	Vantage bgp.ASN
	// ConePrefixes counts prefixes in the view originated by a direct or
	// indirect customer of the vantage.
	ConePrefixes int
	// SA lists the selectively announced ones (best route via peer or
	// provider instead of a customer).
	SA []SAInfo
}

// SAPct returns the Table 5 percentage.
func (r SAResult) SAPct() float64 { return pct(len(r.SA), r.ConePrefixes) }

// SAPrefixSet returns the SA prefixes as a set.
func (r SAResult) SAPrefixSet() map[netx.Prefix]bool {
	out := make(map[netx.Prefix]bool, len(r.SA))
	for _, s := range r.SA {
		out[s.Prefix] = true
	}
	return out
}

// SAPrefixes runs the Figure-4 algorithm over a vantage's best routes:
//
//	Phase 2 — is the prefix's origin a (direct or indirect) customer of
//	the vantage? (customer-cone membership via DFS)
//	Phase 3 — if so, is the best route's next-hop AS one the vantage is
//	a provider of? If not, the prefix is selectively announced.
//
// Only best routes are needed: the paper argues (Section 5.1.1) that
// with typical preferences a customer route, when present, is the best
// route.
func (a *ExportAnalyzer) SAPrefixes(view BestView) SAResult {
	res := SAResult{Vantage: view.AS}
	cone := make(map[bgp.ASN]bool)
	for _, c := range a.Graph.CustomerCone(view.AS) {
		cone[c] = true
	}
	for _, prefix := range view.SortedPrefixes() {
		r := view.Routes[prefix]
		origin := originOf(view, r)
		if origin == view.AS || !cone[origin] {
			continue
		}
		res.ConePrefixes++
		nh, ok := r.NextHopAS()
		if !ok {
			continue
		}
		rel := a.Graph.Rel(view.AS, nh)
		if rel == asgraph.RelCustomer || rel == asgraph.RelSibling {
			continue // reached through a customer path: not SA
		}
		res.SA = append(res.SA, SAInfo{
			Prefix:     prefix,
			Origin:     origin,
			NextHop:    nh,
			NextHopRel: rel,
			Route:      r,
		})
	}
	return res
}

// CustomerSARow is one row of Table 6: a customer of several providers
// and how many of its prefixes are SA with respect to any of them.
type CustomerSARow struct {
	Customer bgp.ASN
	// Prefixes counts prefixes the customer originates (as observed).
	Prefixes int
	// SACount counts those that are SA for at least one of the target
	// providers.
	SACount int
	// PerProvider breaks SA counts down by provider.
	PerProvider map[bgp.ASN]int
}

// SAPct returns the Table 6 percentage.
func (r CustomerSARow) SAPct() float64 { return pct(r.SACount, r.Prefixes) }

// CustomerView computes Table 6: for customers that are (direct or
// indirect) customers of every target provider, the share of their
// prefixes observed as SA at one or more of the providers.
//
// views must hold a BestView per target provider. minPrefixes filters
// for customers "which originate a significant number of prefixes".
func (a *ExportAnalyzer) CustomerView(views []BestView, minPrefixes int) []CustomerSARow {
	if len(views) == 0 {
		return nil
	}
	// Customers of every provider.
	inAll := make(map[bgp.ASN]int)
	for _, v := range views {
		for _, c := range a.Graph.CustomerCone(v.AS) {
			inAll[c]++
		}
	}
	// Observed origin → prefixes (from the union of views).
	originPrefixes := make(map[bgp.ASN]map[netx.Prefix]bool)
	for _, v := range views {
		for prefix, r := range v.Routes {
			o := originOf(v, r)
			if originPrefixes[o] == nil {
				originPrefixes[o] = make(map[netx.Prefix]bool)
			}
			originPrefixes[o][prefix] = true
		}
	}
	// SA sets per provider.
	saByProvider := make(map[bgp.ASN]map[netx.Prefix]bool, len(views))
	for _, v := range views {
		saByProvider[v.AS] = a.SAPrefixes(v).SAPrefixSet()
	}

	var rows []CustomerSARow
	for customer, n := range inAll {
		if n != len(views) {
			continue
		}
		prefixes := originPrefixes[customer]
		if len(prefixes) < minPrefixes {
			continue
		}
		row := CustomerSARow{
			Customer:    customer,
			Prefixes:    len(prefixes),
			PerProvider: make(map[bgp.ASN]int, len(views)),
		}
		for prefix := range prefixes {
			sa := false
			for provider, set := range saByProvider {
				if set[prefix] {
					row.PerProvider[provider]++
					sa = true
				}
			}
			if sa {
				row.SACount++
			}
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].SAPct() != rows[j].SAPct() {
			return rows[i].SAPct() > rows[j].SAPct()
		}
		return rows[i].Customer < rows[j].Customer
	})
	return rows
}

// GroundTruthSA computes, from the generator's policy configuration,
// whether each SA detection corresponds to a real selective-announcement
// mechanism — used to score the inference, something the paper could
// not do. The result maps each SA prefix to true when the origin (or an
// intermediate policy) actually withheld or scoped the prefix.
type GroundTruth interface {
	// IsSelectivelyAnnounced reports whether prefix's origin configured
	// any selective mechanism for it (provider subset, no-upstream tag,
	// transit exclusion or aggregation upstream).
	IsSelectivelyAnnounced(prefix netx.Prefix) bool
}

// ScoreSA compares detected SA prefixes against ground truth, returning
// (truePositives, falsePositives).
func ScoreSA(res SAResult, truth GroundTruth) (tp, fp int) {
	for _, s := range res.SA {
		if truth.IsSelectivelyAnnounced(s.Prefix) {
			tp++
		} else {
			fp++
		}
	}
	return tp, fp
}
