package core

import (
	"sort"

	"github.com/policyscope/policyscope/internal/asgraph"
	"github.com/policyscope/policyscope/internal/bgp"
	"github.com/policyscope/policyscope/internal/netx"
)

// Export-to-peer analysis (Section 5.2, Table 10): do peers announce
// their own prefixes directly to other peers?

// PeerExportRow details one peer of the vantage.
type PeerExportRow struct {
	Peer bgp.ASN
	// OwnPrefixes counts prefixes the peer originates, as observed
	// anywhere in the supplied views.
	OwnPrefixes int
	// Direct counts those the vantage received with the peer as next
	// hop (a direct announcement).
	Direct int
}

// ExportsAll reports whether the peer announced every known prefix
// directly.
func (r PeerExportRow) ExportsAll() bool {
	return r.OwnPrefixes > 0 && r.Direct == r.OwnPrefixes
}

// DirectPct returns the directly announced share.
func (r PeerExportRow) DirectPct() float64 { return pct(r.Direct, r.OwnPrefixes) }

// PeerExportResult is one vantage's row of Table 10.
type PeerExportResult struct {
	Vantage bgp.ASN
	Rows    []PeerExportRow
}

// Announcing counts peers that export all their prefixes directly; the
// Table 10 numerator.
func (r PeerExportResult) Announcing() int {
	n := 0
	for _, row := range r.Rows {
		if row.ExportsAll() {
			n++
		}
	}
	return n
}

// AnnouncingPct returns the Table 10 percentage.
func (r PeerExportResult) AnnouncingPct() float64 { return pct(r.Announcing(), len(r.Rows)) }

// AnalyzePeerExport checks, for each peer of the vantage, whether the
// peer's own prefixes arrive at the vantage directly from that peer.
//
// The peer's prefix set is estimated from observation, as the paper
// does: a prefix belongs to the peer when some view shows the peer as
// its origin. originUniverse supplies that global view (e.g. the
// union of all vantage views); the vantage's own view supplies the
// directness check.
func AnalyzePeerExport(view BestView, g *asgraph.Graph, originUniverse map[netx.Prefix]bgp.ASN) PeerExportResult {
	res := PeerExportResult{Vantage: view.AS}
	peers := g.Peers(view.AS)
	prefixesOf := make(map[bgp.ASN][]netx.Prefix)
	for prefix, origin := range originUniverse {
		prefixesOf[origin] = append(prefixesOf[origin], prefix)
	}
	for _, peer := range peers {
		own := prefixesOf[peer]
		if len(own) == 0 {
			continue // nothing observable for this peer
		}
		row := PeerExportRow{Peer: peer, OwnPrefixes: len(own)}
		for _, prefix := range own {
			r, ok := view.Routes[prefix]
			if !ok {
				continue
			}
			if nh, ok := r.NextHopAS(); ok && nh == peer {
				row.Direct++
			}
		}
		res.Rows = append(res.Rows, row)
	}
	sort.Slice(res.Rows, func(i, j int) bool { return res.Rows[i].Peer < res.Rows[j].Peer })
	return res
}

// OriginUniverse builds the prefix→origin map from a set of views,
// ignoring conflicts (first observation wins; conflicting origins are
// rare and correspond to MOAS prefixes).
func OriginUniverse(views []BestView) map[netx.Prefix]bgp.ASN {
	out := make(map[netx.Prefix]bgp.ASN)
	for _, v := range views {
		for prefix, r := range v.Routes {
			if _, done := out[prefix]; !done {
				out[prefix] = originOf(v, r)
			}
		}
	}
	return out
}
