// Package core implements the paper's contribution: inference and
// characterization of Internet routing policies from observable routing
// state.
//
// Section 4 (import policies): local-preference typicality against AS
// relationships (Tables 2–3) and consistency of local preference with
// next-hop ASes (Figure 2).
//
// Section 5 (export policies): the Figure-4 algorithm detecting
// selectively announced (SA) prefixes (Tables 5–6), their verification
// via communities and active customer paths (Tables 4, 7), persistence
// over time (Figures 6–7), cause analysis — splitting, aggregation,
// selective announcing (Tables 8–9) — and export-to-peer behaviour
// (Table 10).
//
// Appendix: community-semantics inference from next-hop prefix counts
// (Figure 9, Table 11).
//
// Every analyzer takes the annotated AS graph as an explicit input so
// the same code runs against ground truth or Gao-inferred relationships
// (the Section 4.3 error analysis becomes an ablation).
package core

import (
	"sort"

	"github.com/policyscope/policyscope/internal/bgp"
	"github.com/policyscope/policyscope/internal/netx"
)

// BestView is one vantage AS's best routes: the observable unit of the
// paper's analyses (a RouteViews peer contributes exactly this; a
// Looking Glass table contributes this plus candidates).
type BestView struct {
	// AS is the vantage AS.
	AS bgp.ASN
	// Routes maps each prefix to the vantage's best route.
	Routes map[netx.Prefix]*bgp.Route
}

// ViewFromRIB extracts a BestView from a full table.
func ViewFromRIB(rib *bgp.RIB) BestView {
	v := BestView{AS: rib.Owner, Routes: make(map[netx.Prefix]*bgp.Route, rib.Len())}
	rib.EachBest(func(p netx.Prefix, r *bgp.Route) { v.Routes[p] = r })
	return v
}

// ViewFromPeerTable extracts the view a collector holds for one of its
// peers: the candidate each prefix carries from that peer.
func ViewFromPeerTable(collector *bgp.RIB, peer bgp.ASN) BestView {
	v := BestView{AS: peer, Routes: make(map[netx.Prefix]*bgp.Route)}
	for _, prefix := range collector.Prefixes() {
		if r := collector.CandidateFrom(prefix, peer); r != nil {
			v.Routes[prefix] = r
		}
	}
	return v
}

// SortedPrefixes returns the view's prefixes in Compare order.
func (v BestView) SortedPrefixes() []netx.Prefix {
	out := make([]netx.Prefix, 0, len(v.Routes))
	for p := range v.Routes {
		out = append(out, p)
	}
	netx.SortPrefixes(out)
	return out
}

// originOf resolves a route's origin AS, treating local routes as
// originated by the view's own AS.
func originOf(view BestView, r *bgp.Route) bgp.ASN {
	if o, ok := r.OriginAS(); ok {
		return o
	}
	return view.AS
}

// pct renders a ratio as a percentage, guarding the empty denominator.
func pct(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return 100 * float64(num) / float64(den)
}

// sortASNs sorts in place and returns its argument.
func sortASNs(asns []bgp.ASN) []bgp.ASN {
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })
	return asns
}
