package core

import (
	"github.com/policyscope/policyscope/internal/asgraph"
	"github.com/policyscope/policyscope/internal/bgp"
	"github.com/policyscope/policyscope/internal/netx"
)

// Cause analysis for SA prefixes (Section 5.1.5): multihoming
// distribution (Table 8), prefix splitting and aggregation (Table 9),
// and the selective-announcing breakdown (Case 3).

// MultihomingResult is one provider's row of Table 8.
type MultihomingResult struct {
	Provider bgp.ASN
	// Multihomed / SingleHomed count distinct origin ASes of SA
	// prefixes by their provider count in the graph.
	Multihomed, SingleHomed int
}

// MultihomedPct returns Table 8's multihomed share.
func (m MultihomingResult) MultihomedPct() float64 {
	return pct(m.Multihomed, m.Multihomed+m.SingleHomed)
}

// ClassifyMultihoming splits the origins of SA prefixes into multihomed
// (≥2 providers) and single-homed.
func ClassifyMultihoming(res SAResult, g *asgraph.Graph) MultihomingResult {
	out := MultihomingResult{Provider: res.Vantage}
	seen := make(map[bgp.ASN]bool)
	for _, sa := range res.SA {
		if seen[sa.Origin] {
			continue
		}
		seen[sa.Origin] = true
		if g.IsMultihomed(sa.Origin) {
			out.Multihomed++
		} else {
			out.SingleHomed++
		}
	}
	return out
}

// SplitAggregateResult is one provider's row of Table 9.
type SplitAggregateResult struct {
	Provider bgp.ASN
	// SACount is the SA prefix population.
	SACount int
	// Splitting counts SA prefixes in a (specific, covering) pair from
	// the same origin where the two halves arrive on different route
	// classes — the paper's Case 1 signature.
	Splitting int
	// Aggregating counts SA prefixes covered by a less-specific prefix
	// from a different origin — the paper's Case 2 upper bound.
	Aggregating int
}

// AnalyzeSplitAggregate classifies SA prefixes against the vantage's
// whole view using a radix trie for covering queries.
func AnalyzeSplitAggregate(res SAResult, view BestView, g *asgraph.Graph) SplitAggregateResult {
	out := SplitAggregateResult{Provider: res.Vantage, SACount: len(res.SA)}
	var trie netx.Trie[bgp.ASN] // prefix → origin
	for prefix, r := range view.Routes {
		trie.Insert(prefix, originOf(view, r))
	}
	classOf := func(prefix netx.Prefix) asgraph.Relationship {
		r, ok := view.Routes[prefix]
		if !ok {
			return asgraph.RelNone
		}
		nh, ok := r.NextHopAS()
		if !ok {
			return asgraph.RelNone
		}
		return g.Rel(view.AS, nh)
	}
	for _, sa := range res.SA {
		saClass := classOf(sa.Prefix) // peer or provider by construction
		related := trie.Covering(sa.Prefix)
		related = append(related, trie.CoveredBy(sa.Prefix)...)
		split, aggregated := false, false
		for _, other := range related {
			if other == sa.Prefix {
				continue
			}
			otherOrigin, _ := trie.Get(other)
			if otherOrigin == sa.Origin {
				// Same source AS, different route class: split pair.
				oc := classOf(other)
				if oc != asgraph.RelNone && oc != saClass {
					split = true
				}
			} else if other.Contains(sa.Prefix) {
				// Covered by a different AS's (typically the allocating
				// provider's) block: aggregation candidate.
				aggregated = true
			}
		}
		if split {
			out.Splitting++
		}
		if aggregated {
			out.Aggregating++
		}
	}
	return out
}

// SelectiveAnnouncingResult is the Case-3 breakdown the paper reports
// for AS1: of the SA prefixes whose origin-to-provider connectivity is
// identifiable from observed paths, how many origins export to the
// direct provider on the relevant side versus withhold.
type SelectiveAnnouncingResult struct {
	Provider bgp.ASN
	// SACount is the SA prefix population.
	SACount int
	// Identified counts SA prefixes where observed paths reveal the
	// origin's export behaviour toward at least one direct provider
	// (the paper identifies ~90%).
	Identified int
	// Exported counts identified prefixes the origin demonstrably
	// exports to a direct provider on a path containing the provider
	// adjacent ("left") to the customer (~21% in the paper).
	Exported int
	// Withheld counts identified prefixes with no adjacent-provider
	// evidence on any observed path (~79%).
	Withheld int
}

// IdentifiedPct returns the identifiable share.
func (r SelectiveAnnouncingResult) IdentifiedPct() float64 { return pct(r.Identified, r.SACount) }

// ExportedPct returns the Case-3 "announce to this provider" share.
func (r SelectiveAnnouncingResult) ExportedPct() float64 { return pct(r.Exported, r.Identified) }

// WithheldPct returns the Case-3 "do not export" share.
func (r SelectiveAnnouncingResult) WithheldPct() float64 { return pct(r.Withheld, r.Identified) }

// AnalyzeSelectiveAnnouncing asks, for each SA prefix, how the origin
// connects to the direct providers on the *vantage's* side — the
// providers through which the vantage would have had a customer path.
// Observed paths for the prefix give the evidence (Section 5.1.5
// Case 3, mirroring the paper's Figure 8 reading):
//
//   - a path "... d o" with d a vantage-side direct provider of origin
//     o means o exports the prefix to d ("if the provider is left to
//     the customer, the customer exports the prefix to the provider");
//   - a path where d appears but *not* adjacent to o means d reaches
//     the prefix through someone else — o does not export to d ("if
//     between the provider and the customer there is an upstream
//     provider ... the customer does not export");
//   - a prefix whose vantage-side providers never appear in any
//     observed path stays unidentified (identification depends on the
//     collector's peer coverage; the paper identifies ~90% at Oregon).
func AnalyzeSelectiveAnnouncing(res SAResult, g *asgraph.Graph, pathsByPrefix map[netx.Prefix][]bgp.Path) SelectiveAnnouncingResult {
	out := SelectiveAnnouncingResult{Provider: res.Vantage, SACount: len(res.SA)}
	// Vantage-side membership: an AS is on the vantage's side when it is
	// the vantage itself or inside its customer cone.
	vantageSide := map[bgp.ASN]bool{res.Vantage: true}
	for _, c := range g.CustomerCone(res.Vantage) {
		vantageSide[c] = true
	}
	for _, sa := range res.SA {
		var relevant []bgp.ASN
		for _, d := range g.Providers(sa.Origin) {
			if vantageSide[d] {
				relevant = append(relevant, d)
			}
		}
		if len(relevant) == 0 {
			continue
		}
		relSet := make(map[bgp.ASN]bool, len(relevant))
		for _, d := range relevant {
			relSet[d] = true
		}
		seen, exported := false, false
		for _, path := range pathsByPrefix[sa.Prefix] {
			for i, asn := range path {
				if !relSet[asn] {
					continue
				}
				seen = true
				if i+1 < len(path) && path[i+1] == sa.Origin {
					exported = true
				}
			}
		}
		if !seen {
			continue
		}
		out.Identified++
		if exported {
			out.Exported++
		} else {
			out.Withheld++
		}
	}
	return out
}

// PathsByPrefix builds the observed-path index from a set of vantage
// tables (candidates included when available). Each path is recorded as
// the collector would see it: with the table's owner prepended, exactly
// as the owner prepends itself when announcing to a RouteViews session.
// The owner's position in paths is what lets the Case-3 analysis see a
// provider reaching a prefix through someone else.
func PathsByPrefix(ribs []*bgp.RIB) map[netx.Prefix][]bgp.Path {
	out := make(map[netx.Prefix][]bgp.Path)
	seen := make(map[netx.Prefix]map[string]bool)
	for _, rib := range ribs {
		for _, prefix := range rib.Prefixes() {
			for _, r := range rib.Candidates(prefix) {
				if len(r.Path) == 0 {
					continue
				}
				path := r.Path.Prepend(rib.Owner, 1)
				k := path.String()
				if seen[prefix] == nil {
					seen[prefix] = make(map[string]bool)
				}
				if seen[prefix][k] {
					continue
				}
				seen[prefix][k] = true
				out[prefix] = append(out[prefix], path)
			}
		}
	}
	return out
}

// AllPathsOf flattens a path index into a deduplicated path list (the
// SA-verification input).
func AllPathsOf(pathsByPrefix map[netx.Prefix][]bgp.Path) []bgp.Path {
	seen := make(map[string]bool)
	var out []bgp.Path
	for _, paths := range pathsByPrefix {
		for _, p := range paths {
			k := p.String()
			if !seen[k] {
				seen[k] = true
				out = append(out, p)
			}
		}
	}
	return out
}
