package core

import (
	"github.com/policyscope/policyscope/internal/bgp"
)

// Decision-step characterization: Section 4.1 opens with "BGP default
// routing policy which selects the route with the shortest AS path
// length is overridden by routing policies that set local preference."
// This analysis quantifies the claim: for every prefix with a routing
// choice, which step of the decision process actually decided it?

// DecisionStats is the distribution of deciding steps for one table.
type DecisionStats struct {
	AS bgp.ASN
	// Contested counts prefixes with at least two candidates.
	Contested int
	// ByStep counts contested prefixes by the step separating the best
	// route from the runner-up (0 = full tie, decided by order).
	ByStep map[bgp.DecisionStep]int
}

// Share returns the fraction of contested prefixes decided at step s.
func (d DecisionStats) Share(s bgp.DecisionStep) float64 {
	if d.Contested == 0 {
		return 0
	}
	return float64(d.ByStep[s]) / float64(d.Contested)
}

// AnalyzeDecisions computes, per prefix, the step at which the best
// route beat the strongest contender (the best of the rest).
func AnalyzeDecisions(rib *bgp.RIB) DecisionStats {
	stats := DecisionStats{AS: rib.Owner, ByStep: make(map[bgp.DecisionStep]int)}
	for _, prefix := range rib.Prefixes() {
		cands := rib.Candidates(prefix)
		if len(cands) < 2 {
			continue
		}
		best := rib.Best(prefix)
		rest := make([]*bgp.Route, 0, len(cands)-1)
		for _, c := range cands {
			if c != best {
				rest = append(rest, c)
			}
		}
		runnerUp := bgp.Best7(rest)
		if best == nil || runnerUp == nil {
			continue
		}
		stats.Contested++
		stats.ByStep[bgp.DecidedBy(best, runnerUp)]++
	}
	return stats
}
