package core

import (
	"testing"

	"github.com/policyscope/policyscope/internal/asgraph"
	"github.com/policyscope/policyscope/internal/bgp"
	"github.com/policyscope/policyscope/internal/netx"
)

func TestClassifyMultihoming(t *testing.T) {
	g := asgraph.New()
	for _, err := range []error{
		g.AddProviderCustomer(1, 10), // 10 multihomed to 1 and 2
		g.AddProviderCustomer(2, 10),
		g.AddProviderCustomer(1, 20), // 20 single-homed
	} {
		if err != nil {
			t.Fatal(err)
		}
	}
	res := ClassifyMultihoming(SAResult{
		Vantage: 1,
		SA: []SAInfo{
			{Prefix: netx.MustParsePrefix("20.0.0.0/24"), Origin: 10},
			{Prefix: netx.MustParsePrefix("20.0.1.0/24"), Origin: 10}, // same origin counted once
			{Prefix: netx.MustParsePrefix("20.0.2.0/24"), Origin: 20},
		},
	}, g)
	if res.Multihomed != 1 || res.SingleHomed != 1 {
		t.Fatalf("result: %+v", res)
	}
	if res.MultihomedPct() != 50 {
		t.Fatalf("pct = %v", res.MultihomedPct())
	}
}

func TestAnalyzeSplitAggregate(t *testing.T) {
	g := figure5Graph(t)
	cover := netx.MustParsePrefix("20.1.0.0/23")
	specific := netx.MustParsePrefix("20.1.0.0/24")
	foreignCover := netx.MustParsePrefix("20.4.0.0/16")
	aggregated := netx.MustParsePrefix("20.4.1.0/24")
	view := BestView{AS: 1, Routes: map[netx.Prefix]*bgp.Route{
		// Split pair: same origin 6280, covering via customer path,
		// specific via peer.
		cover:    route(t, "20.1.0.0/23", "852 6280", 100),
		specific: route(t, "20.1.0.0/24", "3549 13768 6280", 90),
		// Aggregation case: SA prefix covered by a different origin's
		// block (852's).
		foreignCover: route(t, "20.4.0.0/16", "852", 100),
		aggregated:   route(t, "20.4.1.0/24", "3549 13768 6280", 90),
	}}
	analyzer := &ExportAnalyzer{Graph: g}
	sa := analyzer.SAPrefixes(view)
	if len(sa.SA) != 2 {
		t.Fatalf("SA detection: %+v", sa.SA)
	}
	res := AnalyzeSplitAggregate(sa, view, g)
	if res.SACount != 2 {
		t.Fatalf("SACount = %d", res.SACount)
	}
	if res.Splitting != 1 {
		t.Fatalf("splitting = %d, want 1", res.Splitting)
	}
	if res.Aggregating != 1 {
		t.Fatalf("aggregating = %d, want 1", res.Aggregating)
	}
}

func TestAnalyzeSelectiveAnnouncing(t *testing.T) {
	// Vantage 1; origin 6280 has providers 852 (on the vantage's side)
	// and 13768 (on the peer side). Only 852 is relevant to AS1's view.
	g := figure5Graph(t)
	p := netx.MustParsePrefix("20.1.0.0/24")
	q := netx.MustParsePrefix("20.1.1.0/24")
	u := netx.MustParsePrefix("20.1.2.0/24")
	sa := SAResult{
		Vantage: 1,
		SA: []SAInfo{
			{Prefix: p, Origin: 6280, NextHop: 3549},
			{Prefix: q, Origin: 6280, NextHop: 3549},
			{Prefix: u, Origin: 6280, NextHop: 3549},
		},
	}
	pathsByPrefix := map[netx.Prefix][]bgp.Path{
		// p: 852 observed immediately left of the origin → exported.
		p: {mustPath(t, "1 852 6280")},
		// q: 852 observed reaching the prefix through its own provider
		// chain (not adjacent to 6280) → withheld.
		q: {mustPath(t, "852 1 3549 13768 6280")},
		// u: the vantage-side provider never appears → unidentified.
		u: {mustPath(t, "3549 13768 6280")},
	}
	res := AnalyzeSelectiveAnnouncing(sa, g, pathsByPrefix)
	if res.SACount != 3 || res.Identified != 2 {
		t.Fatalf("identified: %+v", res)
	}
	if res.Exported != 1 || res.Withheld != 1 {
		t.Fatalf("split: %+v", res)
	}
	if res.ExportedPct() != 50 || res.WithheldPct() != 50 {
		t.Fatalf("pcts: %+v", res)
	}
	if got := res.IdentifiedPct(); got < 66.6 || got > 66.7 {
		t.Fatalf("identified pct: %v", got)
	}
	// Unobserved prefixes: nothing identified.
	res2 := AnalyzeSelectiveAnnouncing(sa, g, map[netx.Prefix][]bgp.Path{})
	if res2.Identified != 0 {
		t.Fatalf("phantom identification: %+v", res2)
	}
}

func TestPathsByPrefixAndAllPaths(t *testing.T) {
	rib1 := bgp.NewRIB(1)
	rib1.Upsert(10, route(t, "20.0.0.0/24", "10 900", 100))
	rib1.Upsert(20, route(t, "20.0.0.0/24", "20 900", 90))
	rib2 := bgp.NewRIB(2)
	rib2.Upsert(10, route(t, "20.0.0.0/24", "10 900", 100)) // duplicate path
	rib2.Upsert(30, route(t, "20.0.1.0/24", "30 901", 100))

	idx := PathsByPrefix([]*bgp.RIB{rib1, rib2})
	if len(idx) != 2 {
		t.Fatalf("prefixes: %d", len(idx))
	}
	// Paths carry the table owner prepended, so rib1's and rib2's copies
	// of "10 900" become distinct ("1 10 900" and "2 10 900").
	shared := idx[netx.MustParsePrefix("20.0.0.0/24")]
	if len(shared) != 3 {
		t.Fatalf("paths for shared prefix: %d", len(shared))
	}
	for _, p := range shared {
		if first, _ := p.First(); first != 1 && first != 2 {
			t.Fatalf("owner not prepended: %v", p)
		}
	}
	all := AllPathsOf(idx)
	if len(all) != 4 {
		t.Fatalf("all paths: %d", len(all))
	}
}
