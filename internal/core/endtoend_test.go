package core

import (
	"testing"

	"github.com/policyscope/policyscope/internal/asgraph"
	"github.com/policyscope/policyscope/internal/bgp"
	"github.com/policyscope/policyscope/internal/netx"
	"github.com/policyscope/policyscope/internal/routeviews"
	"github.com/policyscope/policyscope/internal/simulate"
	"github.com/policyscope/policyscope/internal/topogen"
)

// pipeline is the shared end-to-end fixture: generated topology,
// simulated tables at a RouteViews-like peer set, plus Looking-Glass
// grade full tables.
type pipeline struct {
	topo  *topogen.Topology
	peers []bgp.ASN
	res   *simulate.Result
	snap  *routeviews.Snapshot
}

func buildPipeline(t *testing.T, n int, seed int64) *pipeline {
	t.Helper()
	topo, err := topogen.Generate(topogen.DefaultConfig(n, seed))
	if err != nil {
		t.Fatal(err)
	}
	peers := routeviews.SelectPeers(topo, 24)
	res, err := simulate.Run(topo, simulate.Options{VantagePoints: peers})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Unconverged) != 0 {
		t.Fatalf("unconverged: %v", res.Unconverged)
	}
	snap, err := routeviews.Collect(res, peers, 0)
	if err != nil {
		t.Fatal(err)
	}
	return &pipeline{topo: topo, peers: peers, res: res, snap: snap}
}

// TestEndToEndImportTypicality reproduces the Table 2 shape: with the
// default ~1.5% atypical assignment, per-AS typicality lands in the
// 94–100% band the paper reports.
func TestEndToEndImportTypicality(t *testing.T) {
	p := buildPipeline(t, 400, 101)
	a := &ImportAnalyzer{Graph: p.topo.Graph}
	checked := 0
	for _, vantage := range p.peers {
		res := a.Typicality(p.res.Tables[vantage])
		if res.Comparable < 20 {
			continue // tiny tables say nothing
		}
		checked++
		if got := res.TypicalPct(); got < 90 {
			t.Errorf("%v: typicality %.2f%% below the paper's band (comparable %d)",
				vantage, got, res.Comparable)
		}
	}
	if checked == 0 {
		t.Fatal("no vantage had a comparable table")
	}
}

// TestEndToEndNextHopConsistency reproduces Figure 2a's shape: most
// preferences keyed on the next hop (≥90%, paper reports ~98%).
func TestEndToEndNextHopConsistency(t *testing.T) {
	p := buildPipeline(t, 400, 102)
	a := &ImportAnalyzer{Graph: p.topo.Graph}
	for _, vantage := range p.peers[:6] {
		res := a.NextHopConsistency(p.res.Tables[vantage])
		if res.Prefixes < 50 {
			continue
		}
		if got := res.Pct(); got < 90 {
			t.Errorf("%v: next-hop consistency %.2f%%", vantage, got)
		}
	}
}

// TestEndToEndSAPrefixes reproduces Table 5's shape: transit vantages
// observe a nonzero SA share, bounded well below half the cone.
func TestEndToEndSAPrefixes(t *testing.T) {
	p := buildPipeline(t, 400, 103)
	a := &ExportAnalyzer{Graph: p.topo.Graph}
	sawSA := false
	for _, vantage := range p.peers {
		view := ViewFromPeerTable(p.snap.Table, vantage)
		res := a.SAPrefixes(view)
		if res.ConePrefixes < 30 {
			continue
		}
		if got := res.SAPct(); got > 60 {
			t.Errorf("%v: SA share %.1f%% implausibly high", vantage, got)
		}
		if len(res.SA) > 0 {
			sawSA = true
			for _, sa := range res.SA {
				if sa.NextHopRel == asgraph.RelCustomer {
					t.Fatalf("SA via customer at %v: %+v", vantage, sa)
				}
			}
		}
	}
	if !sawSA {
		t.Fatal("no SA prefixes anywhere: selective announcement not exercised")
	}
}

// truthAdapter implements GroundTruth over the generator's policies.
type truthAdapter struct{ topo *topogen.Topology }

func (ta truthAdapter) IsSelectivelyAnnounced(prefix netx.Prefix) bool {
	origin, ok := ta.topo.PrefixOrigin[prefix]
	if !ok {
		return false
	}
	pol := ta.topo.Policies[origin]
	if _, sel := pol.Export.OriginProviders[prefix]; sel {
		return true
	}
	if _, tagged := pol.Export.NoUpstream[prefix]; tagged {
		return true
	}
	// Intermediate mechanisms: any AS aggregating the specific, or any
	// transit policy able to exclude it.
	for _, asn := range ta.topo.Order {
		p := ta.topo.Policies[asn]
		if p.Export.AggregateSpecifics[prefix] {
			return true
		}
		if p.Export.TransitSelective > 0 {
			for _, provider := range ta.topo.Graph.Providers(asn) {
				if p.Export.TransitExcluded(asn, prefix, provider) {
					return true
				}
			}
		}
	}
	return false
}

// TestEndToEndSAAgainstGroundTruth scores the Figure-4 detector against
// the generator's configuration — the validation the paper could not
// run. Every detection must trace back to a configured mechanism.
func TestEndToEndSAAgainstGroundTruth(t *testing.T) {
	p := buildPipeline(t, 400, 104)
	a := &ExportAnalyzer{Graph: p.topo.Graph}
	truth := truthAdapter{topo: p.topo}
	totalTP, totalFP := 0, 0
	for _, vantage := range p.peers {
		res := a.SAPrefixes(ViewFromPeerTable(p.snap.Table, vantage))
		tp, fp := ScoreSA(res, truth)
		totalTP += tp
		totalFP += fp
	}
	if totalTP == 0 {
		t.Fatal("no true positives")
	}
	if frac := float64(totalFP) / float64(totalTP+totalFP); frac > 0.02 {
		t.Fatalf("false positive share %.3f (tp=%d fp=%d)", frac, totalTP, totalFP)
	}
}

// TestEndToEndVerification reproduces Tables 4 and 7: community-based
// relationship verification and SA verification both above 90%.
func TestEndToEndVerification(t *testing.T) {
	p := buildPipeline(t, 400, 105)
	tiers := p.topo.Graph.Tiers()
	checkedRel, checkedSA := 0, 0
	pathIdx := PathsByPrefix(tablesOf(p))
	allPaths := AllPathsOf(pathIdx)
	for _, vantage := range p.peers {
		if p.topo.Policies[vantage].Tagging == nil {
			continue
		}
		rib := p.res.Tables[vantage]
		sem := InferCommunitySemantics(rib, tiers[vantage] > 1)
		if len(sem.ClassOf) == 0 {
			continue
		}
		rel := VerifyRelationships(rib, sem, p.topo.Graph)
		if rel.Neighbors < 5 {
			continue
		}
		checkedRel++
		if got := rel.VerifiedPct(); got < 90 {
			t.Errorf("%v: relationship verification %.1f%% (mismatched %v)",
				vantage, got, rel.Mismatched)
		}
		sa := (&ExportAnalyzer{Graph: p.topo.Graph}).SAPrefixes(ViewFromPeerTable(p.snap.Table, vantage))
		if len(sa.SA) < 20 {
			continue // percentages over tiny samples are noise
		}
		checkedSA++
		v := VerifySAPrefixes(sa, p.topo.Graph, allPaths, 0)
		// The paper verifies 95–97.6% with 68 vantage ASes over the real
		// Internet; at this fixture's scale (24 vantages, 400 ASes) the
		// structural limit is lower: a single-prefix origin that withholds
		// from a provider leaves that edge unexercised by any route, so no
		// path can corroborate it.
		if got := v.VerifiedPct(); got < 80 {
			t.Errorf("%v: SA verification %.1f%% of %d", vantage, got, v.SACount)
		}
	}
	if checkedRel == 0 {
		t.Fatal("no tagging vantage checked")
	}
	if checkedSA == 0 {
		t.Skip("no vantage with enough SA prefixes for verification")
	}
}

func tablesOf(p *pipeline) []*bgp.RIB {
	out := make([]*bgp.RIB, 0, len(p.peers))
	for _, asn := range p.peers {
		out = append(out, p.res.Tables[asn])
	}
	return out
}

// TestEndToEndCauses reproduces Tables 8 and 9: most SA origins are
// multihomed; splitting and aggregation are minority causes.
func TestEndToEndCauses(t *testing.T) {
	p := buildPipeline(t, 500, 106)
	a := &ExportAnalyzer{Graph: p.topo.Graph}
	mhTotal := MultihomingResult{}
	splitTotal := SplitAggregateResult{}
	for _, vantage := range p.peers {
		view := ViewFromPeerTable(p.snap.Table, vantage)
		sa := a.SAPrefixes(view)
		mh := ClassifyMultihoming(sa, p.topo.Graph)
		mhTotal.Multihomed += mh.Multihomed
		mhTotal.SingleHomed += mh.SingleHomed
		sp := AnalyzeSplitAggregate(sa, view, p.topo.Graph)
		splitTotal.SACount += sp.SACount
		splitTotal.Splitting += sp.Splitting
		splitTotal.Aggregating += sp.Aggregating
	}
	if mhTotal.Multihomed+mhTotal.SingleHomed == 0 {
		t.Fatal("no SA origins")
	}
	if got := mhTotal.MultihomedPct(); got < 50 {
		t.Errorf("multihomed share %.1f%%, paper reports ~75%%", got)
	}
	if splitTotal.SACount == 0 {
		t.Fatal("no SA prefixes for cause analysis")
	}
	if splitTotal.Splitting+splitTotal.Aggregating > splitTotal.SACount/2 {
		t.Errorf("splitting+aggregating = %d of %d SA: must be a minority cause",
			splitTotal.Splitting+splitTotal.Aggregating, splitTotal.SACount)
	}
}

// TestEndToEndSelectiveAnnouncing reproduces the Case-3 numbers: a large
// identified share, with withholding dominating export.
func TestEndToEndSelectiveAnnouncing(t *testing.T) {
	p := buildPipeline(t, 500, 107)
	a := &ExportAnalyzer{Graph: p.topo.Graph}
	pathIdx := PathsByPrefix(tablesOf(p))
	agg := SelectiveAnnouncingResult{}
	for _, vantage := range p.peers {
		sa := a.SAPrefixes(ViewFromPeerTable(p.snap.Table, vantage))
		res := AnalyzeSelectiveAnnouncing(sa, p.topo.Graph, pathIdx)
		agg.SACount += res.SACount
		agg.Identified += res.Identified
		agg.Exported += res.Exported
		agg.Withheld += res.Withheld
	}
	if agg.SACount == 0 {
		t.Fatal("no SA prefixes")
	}
	if got := agg.IdentifiedPct(); got < 60 {
		t.Errorf("identified %.1f%%, paper reaches ~90%%", got)
	}
	if agg.Withheld == 0 {
		t.Error("no withholding identified; paper reports ~79%")
	}
}

// TestEndToEndPeerExport reproduces Table 10: the overwhelming majority
// of peers export all their prefixes to other peers.
func TestEndToEndPeerExport(t *testing.T) {
	p := buildPipeline(t, 400, 108)
	var views []BestView
	for _, vantage := range p.peers {
		views = append(views, ViewFromPeerTable(p.snap.Table, vantage))
	}
	universe := OriginUniverse(views)
	checked := 0
	for _, view := range views {
		res := AnalyzePeerExport(view, p.topo.Graph, universe)
		if len(res.Rows) < 4 {
			continue
		}
		checked++
		if got := res.AnnouncingPct(); got < 70 {
			t.Errorf("%v: peers announcing %.1f%%, paper reports 86–100%%", view.AS, got)
		}
	}
	if checked == 0 {
		t.Fatal("no vantage with enough peers")
	}
}

// TestEndToEndPersistence reproduces Figures 6–7 on a short series:
// SA counts stay positive every epoch and the shifting share is a
// minority, like the paper's "about one sixth".
func TestEndToEndPersistence(t *testing.T) {
	topo, err := topogen.Generate(topogen.DefaultConfig(250, 109))
	if err != nil {
		t.Fatal(err)
	}
	peers := routeviews.SelectPeers(topo, 8)
	series, err := routeviews.CollectSeries(topo, routeviews.SeriesOptions{
		Epochs:        6,
		ChurnFraction: 0.04,
		Seed:          11,
		Simulate:      simulate.Options{VantagePoints: peers},
		Peers:         peers,
	})
	if err != nil {
		t.Fatal(err)
	}
	target := peers[0]
	a := &ExportAnalyzer{Graph: topo.Graph}
	var views []BestView
	var times []uint32
	for _, snap := range series.Snapshots {
		views = append(views, ViewFromPeerTable(snap.Table, target))
		times = append(times, snap.Timestamp)
	}
	res := AnalyzePersistence(a, views, times)
	if len(res.Points) != 6 {
		t.Fatalf("points: %d", len(res.Points))
	}
	for i, pt := range res.Points {
		if pt.SAPrefixes == 0 {
			t.Errorf("epoch %d: zero SA prefixes", i)
		}
		if pt.AllPrefixes < pt.ConePrefixes || pt.ConePrefixes < pt.SAPrefixes {
			t.Fatalf("epoch %d: inconsistent counts %+v", i, pt)
		}
	}
	if share := res.ShiftingShare(); share > 0.6 {
		t.Errorf("shifting share %.2f: churn dominates, persistence signal lost", share)
	}
	hist := res.UptimeHistogram()
	totalRemaining, totalShifting := 0, 0
	for _, b := range hist {
		totalRemaining += b.RemainingSA
		totalShifting += b.Shifting
	}
	if totalRemaining == 0 {
		t.Error("no prefix remained SA through its uptime")
	}
	_ = totalShifting
}
