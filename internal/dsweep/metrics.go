package dsweep

import "github.com/policyscope/policyscope/obs"

// Coordinator metrics. Dispatch minus completed is in-flight work;
// retries and reassignments rising faster than dispatches means the
// fleet is unhealthy; duplicates count the (benign) races where a slow
// attempt finished after its replacement. The per-worker vectors make a
// straggler visible: one worker's shard latency histogram pulling away
// from the fleet's is the signal to evict or rebalance.
var (
	mShardsDispatched = obs.NewCounter("policyscope_dsweep_shards_dispatched_total",
		"Shard attempts dispatched to workers (retries included).")
	mShardsCompleted = obs.NewCounter("policyscope_dsweep_shards_completed_total",
		"Shards completed and merged into the global stream.")
	mShardsRetried = obs.NewCounter("policyscope_dsweep_shard_retries_total",
		"Shard attempts that failed (timeout, transport error, truncated stream) and were requeued.")
	mShardsReassigned = obs.NewCounter("policyscope_dsweep_shards_reassigned_total",
		"Requeued shards picked up by a different worker than the one that failed them.")
	mShardsReplayed = obs.NewCounter("policyscope_dsweep_shards_replayed_total",
		"Shards restored from a checkpoint spool instead of executed.")
	mShardDuplicates = obs.NewCounter("policyscope_dsweep_shard_duplicates_total",
		"Duplicate shard deliveries discarded by the exactly-once merge guard.")
	mWorkersEvicted = obs.NewCounter("policyscope_dsweep_workers_evicted_total",
		"Workers dropped from the fleet after consecutive failures.")
	mWorkerShards = obs.NewCounterVec("policyscope_dsweep_worker_shards_total",
		"Shard attempts by worker address.", "worker")
	mWorkerShardSeconds = obs.NewHistogramVec("policyscope_dsweep_worker_shard_seconds",
		"Per-shard round trip by worker address, dispatch to validated trailer.", nil, "worker")
	mShardsSpeculated = obs.NewCounter("policyscope_dsweep_shards_speculated_total",
		"Speculative duplicate dispatches of straggling shards.")
	mSpeculativeWins = obs.NewCounter("policyscope_dsweep_speculative_wins_total",
		"Speculative attempts that merged before the original (first-complete-wins).")
	mFleetHeartbeats = obs.NewCounter("policyscope_dsweep_fleet_heartbeats_total",
		"Worker registrations and keep-alive heartbeats received.")
	mFleetHeartbeatErrors = obs.NewCounter("policyscope_dsweep_fleet_heartbeat_errors_total",
		"Worker-side heartbeats that failed to reach the coordinator.")
	mFleetExpired = obs.NewCounter("policyscope_dsweep_fleet_expired_total",
		"Fleet registrations expired after missed heartbeats.")
	mFleetJoins = obs.NewCounter("policyscope_dsweep_fleet_joins_total",
		"Workers admitted to a running dispatch by registration.")
)

// workerMetrics holds one worker's pre-resolved metric children —
// resolved once at Run start, never in the dispatch loop.
type workerMetrics struct {
	shards  *obs.Counter
	seconds *obs.Histogram
}

func newWorkerMetrics(addr string) workerMetrics {
	return workerMetrics{
		shards:  mWorkerShards.With(addr),
		seconds: mWorkerShardSeconds.With(addr),
	}
}
