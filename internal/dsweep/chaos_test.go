package dsweep

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPartitionAdaptiveCoversAndShrinksTail(t *testing.T) {
	cases := []struct{ total, size int }{
		{1, 16}, {15, 16}, {16, 16}, {17, 16}, {160, 16}, {1000, 64}, {1000, 256}, {5, 0},
	}
	for _, tc := range cases {
		shards := PartitionAdaptive(tc.total, tc.size)
		size := tc.size
		if size <= 0 {
			size = DefaultShardSize
		}
		covered := 0
		for i, sh := range shards {
			if sh.Index != i || sh.Start != covered || sh.End <= sh.Start {
				t.Fatalf("PartitionAdaptive(%d,%d): shard %d is %+v (gap, misindex, or empty)",
					tc.total, tc.size, i, sh)
			}
			if n := sh.End - sh.Start; n > size {
				t.Fatalf("PartitionAdaptive(%d,%d): shard %d spans %d > size %d", tc.total, tc.size, i, n, size)
			}
			covered = sh.End
		}
		if covered != tc.total {
			t.Fatalf("PartitionAdaptive(%d,%d) covers %d", tc.total, tc.size, covered)
		}
	}

	// The tail really shrinks: with plenty of body, the last shards are
	// quarter-size.
	shards := PartitionAdaptive(1000, 64)
	last := shards[len(shards)-1]
	if n := last.End - last.Start; n > 64/4 {
		t.Fatalf("tail shard spans %d, want <= %d", n, 64/4)
	}
	// Deterministic: same inputs, same boundaries.
	again := PartitionAdaptive(1000, 64)
	for i := range shards {
		if shards[i] != again[i] {
			t.Fatalf("PartitionAdaptive is not deterministic at shard %d", i)
		}
	}
}

func TestPartitionAdaptiveChangesFingerprint(t *testing.T) {
	refSweep(t)
	plain, err := NewFingerprint(ref.spec, "paper", 100, 16, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := NewFingerprint(ref.spec, "paper", 100, 16, 3, true)
	if err != nil {
		t.Fatal(err)
	}
	if plain == adaptive {
		t.Fatal("adaptive partitioning does not change the checkpoint fingerprint")
	}
	// Old manifests (no "adaptive" key) must keep matching non-adaptive
	// fingerprints.
	var decoded Fingerprint
	b, _ := json.Marshal(plain)
	if bytes.Contains(b, []byte("adaptive")) {
		t.Fatalf("non-adaptive fingerprint serializes the adaptive field: %s", b)
	}
	if err := json.Unmarshal(b, &decoded); err != nil || decoded != plain {
		t.Fatalf("fingerprint round-trip: %v", err)
	}
}

func TestFleetRegistryExpiryAndLive(t *testing.T) {
	f := NewFleet(60 * time.Millisecond)
	f.Observe(Heartbeat{Addr: "http://w1:8081", Healthy: true})
	f.Observe(Heartbeat{Addr: "http://w2:8081", Healthy: false, Detail: "warming"})
	if got := len(f.Members()); got != 2 {
		t.Fatalf("%d members registered, want 2", got)
	}
	live := f.Live()
	if len(live) != 1 || live[0].Addr != "http://w1:8081" {
		t.Fatalf("Live() = %+v, want only the healthy worker", live)
	}
	// Heartbeats stop: both expire.
	time.Sleep(90 * time.Millisecond)
	if got := len(f.Members()); got != 0 {
		t.Fatalf("%d members alive after TTL, want 0", got)
	}
	// A fresh heartbeat re-registers.
	f.Observe(Heartbeat{Addr: "http://w1:8081", Healthy: true})
	if got := len(f.Live()); got != 1 {
		t.Fatalf("%d live after re-registration, want 1", got)
	}
}

func TestFleetChangedWakesOnNewWorker(t *testing.T) {
	f := NewFleet(time.Second)
	ch := f.Changed()
	f.Observe(Heartbeat{Addr: "http://w1:8081", Healthy: true})
	select {
	case <-ch:
	default:
		t.Fatal("Changed channel did not fire on a new registration")
	}
	// A keep-alive from a known worker does not wake anyone.
	ch = f.Changed()
	f.Observe(Heartbeat{Addr: "http://w1:8081", Healthy: true})
	select {
	case <-ch:
		t.Fatal("Changed channel fired on a keep-alive")
	default:
	}
}

// TestFleetHandlerHeartbeatLoop drives the real wire path: a worker's
// HeartbeatLoop POSTing to the coordinator's registration handler.
func TestFleetHandlerHeartbeatLoop(t *testing.T) {
	fleet := NewFleet(time.Second)
	mux := http.NewServeMux()
	mux.Handle("/fleet/register", fleet.Handler())
	ts := httptest.NewServer(mux)
	defer ts.Close()

	// Malformed and incomplete heartbeats are rejected.
	resp, err := http.Post(ts.URL+"/fleet/register", "application/json", bytes.NewReader([]byte(`{"nope": 1}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("unknown-field heartbeat: status %d, want 422", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/fleet/register", "application/json", bytes.NewReader([]byte(`{"healthy": true}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("addr-less heartbeat: status %d, want 422", resp.StatusCode)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var inflight atomic.Int64
	inflight.Store(2)
	errc := make(chan error, 1)
	go func() {
		errc <- HeartbeatLoop(ctx, HeartbeatOptions{
			Coordinator: ts.URL,
			Advertise:   "http://worker1:8081",
			Interval:    20 * time.Millisecond,
			Status: func() Heartbeat {
				return Heartbeat{InFlightShards: int(inflight.Load()), Healthy: true}
			},
		})
	}()

	deadline := time.Now().Add(2 * time.Second)
	for {
		live := fleet.Live()
		if len(live) == 1 {
			if live[0].Addr != "http://worker1:8081" || live[0].InFlightShards != 2 {
				t.Fatalf("registration carries %+v", live[0].Heartbeat)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("heartbeat never registered the worker")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("HeartbeatLoop returned %v, want context.Canceled", err)
	}
}

// stallWorker accepts a shard request and then never responds — a
// worker that was SIGKILLed (or wedged) while holding a lease. The
// handler unblocks only when the coordinator abandons the request.
type stallWorker struct {
	mu       sync.Mutex
	requests int
}

func (s *stallWorker) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	s.requests++
	s.mu.Unlock()
	// Drain the body so the server's background read arms and the
	// request context cancels when the abandoning coordinator closes
	// the connection.
	_, _ = io.Copy(io.Discard, r.Body)
	<-r.Context().Done()
}

func (s *stallWorker) seen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.requests
}

// heartbeatDirectly keeps addr registered in the fleet until stop
// closes, bypassing HTTP (the wire path has its own test above).
func heartbeatDirectly(t *testing.T, fleet *Fleet, addr string, stop <-chan struct{}) {
	t.Helper()
	fleet.Observe(Heartbeat{Addr: addr, Healthy: true})
	go func() {
		tick := time.NewTicker(20 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				fleet.Observe(Heartbeat{Addr: addr, Healthy: true})
			}
		}
	}()
}

// TestFleetEvictsSilentWorkerAndReassigns is the kill-between-heartbeats
// chaos case: a registered worker takes a shard, wedges, and stops
// heartbeating. The coordinator must evict it on TTL expiry, requeue its
// in-flight shard to the surviving worker, and still produce output
// byte-identical to the single-process run — with speculation disabled,
// so only the eviction path can rescue the shard.
func TestFleetEvictsSilentWorkerAndReassigns(t *testing.T) {
	refSweep(t)
	n := len(ref.scenarios)
	healthy := &fakeWorker{t: t, delay: time.Millisecond}
	wedged := &stallWorker{}
	healthyURL := startWorkers(t, healthy)[0]
	ws := httptest.NewServer(wedged)
	defer ws.Close()

	fleet := NewFleet(150 * time.Millisecond)
	stop := make(chan struct{})
	defer close(stop)
	heartbeatDirectly(t, fleet, healthyURL, stop)
	// The wedged worker registers once and never beats again — killed
	// between heartbeats.
	fleet.Observe(Heartbeat{Addr: ws.URL, Healthy: true})

	records, agg, err := collectRun(t, Options{
		Fleet:              fleet,
		ShardSize:          (n + 5) / 6,
		LeaseTimeout:       30 * time.Second, // the lease must not be the rescue
		DisableSpeculation: true,
		NoWorkerGrace:      10 * time.Second,
		Backoff:            time.Millisecond,
	})
	if err != nil {
		t.Fatalf("run with wedged worker: %v", err)
	}
	if records != refNDJSON(t) {
		t.Fatal("records differ from single-process output after eviction recovery")
	}
	if got := mustJSON(t, agg); got != mustJSON(t, ref.agg) {
		t.Fatalf("aggregate differs after eviction recovery: %s", got)
	}
	if wedged.seen() == 0 {
		t.Fatal("wedged worker never received a shard — eviction was not exercised")
	}
}

// TestStragglerSpeculationRescuesStalledShard: in a static fleet, one
// worker wedges on its first shard. With speculation enabled, the
// coordinator re-dispatches the straggling shard to the healthy worker
// and the run completes (bit-identically) without waiting out the
// wedged attempt's lease.
func TestStragglerSpeculationRescuesStalledShard(t *testing.T) {
	refSweep(t)
	n := len(ref.scenarios)
	healthy := &fakeWorker{t: t, delay: time.Millisecond}
	wedged := &stallWorker{}
	healthyURL := startWorkers(t, healthy)[0]
	ws := httptest.NewServer(wedged)
	defer ws.Close()

	var speculated atomic.Int64
	start := time.Now()
	records, agg, err := collectRun(t, Options{
		Workers:        []string{healthyURL, ws.URL},
		ShardSize:      (n + 5) / 6,
		LeaseTimeout:   30 * time.Second, // lease expiry must not be the rescue
		SpeculateAfter: 100 * time.Millisecond,
		Backoff:        time.Millisecond,
		OnSpeculate:    func(Shard) { speculated.Add(1) },
	})
	if err != nil {
		t.Fatalf("run with straggler: %v", err)
	}
	if records != refNDJSON(t) {
		t.Fatal("records differ from single-process output after speculation")
	}
	if got := mustJSON(t, agg); got != mustJSON(t, ref.agg) {
		t.Fatalf("aggregate differs after speculation: %s", got)
	}
	if wedged.seen() == 0 {
		t.Fatal("wedged worker never received a shard — speculation was not exercised")
	}
	if speculated.Load() == 0 {
		t.Fatal("no shard was speculated")
	}
	if elapsed := time.Since(start); elapsed > 15*time.Second {
		t.Fatalf("run took %s — it waited out the wedged attempt instead of speculating", elapsed)
	}
}

// TestFleetDynamicJoin starts a fleet-mode run with no workers at all;
// a worker registering mid-run is admitted and completes the sweep.
func TestFleetDynamicJoin(t *testing.T) {
	refSweep(t)
	n := len(ref.scenarios)
	worker := &fakeWorker{t: t}
	workerURL := startWorkers(t, worker)[0]

	fleet := NewFleet(time.Second)
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		time.Sleep(100 * time.Millisecond)
		heartbeatDirectly(t, fleet, workerURL, stop)
	}()

	records, _, err := collectRun(t, Options{
		Fleet:         fleet,
		ShardSize:     (n + 3) / 4,
		NoWorkerGrace: 10 * time.Second,
	})
	if err != nil {
		t.Fatalf("run with late-joining worker: %v", err)
	}
	if records != refNDJSON(t) {
		t.Fatal("records differ from single-process output")
	}
	if len(worker.served()) != 4 {
		t.Fatalf("joined worker served %d shards, want 4", len(worker.served()))
	}
}

// TestFleetNoWorkersFailsAfterGrace: a fleet-mode run whose workers
// never materialize fails with the grace-window error instead of
// hanging.
func TestFleetNoWorkersFailsAfterGrace(t *testing.T) {
	refSweep(t)
	fleet := NewFleet(50 * time.Millisecond)
	_, _, err := collectRun(t, Options{
		Fleet:         fleet,
		ShardSize:     len(ref.scenarios),
		NoWorkerGrace: 100 * time.Millisecond,
	})
	if err == nil || !bytes.Contains([]byte(err.Error()), []byte("no live workers")) {
		t.Fatalf("want no-live-workers error, got %v", err)
	}
}

// TestFleetChaosKilledAndSlowedWorkers is the acceptance scenario: a
// registered fleet where one worker is killed mid-stream (and stops
// heartbeating) and another runs an order of magnitude slower than its
// peer. The output must stay byte-identical to the single-process run,
// with adaptive tail shards and speculation enabled.
func TestFleetChaosKilledAndSlowedWorkers(t *testing.T) {
	refSweep(t)
	n := len(ref.scenarios)
	fast := &fakeWorker{t: t, delay: 200 * time.Microsecond}
	slow := &fakeWorker{t: t, delay: 2 * time.Millisecond} // 10x slower
	dying := &fakeWorker{t: t, dieAfter: 2}
	fastURL := startWorkers(t, fast)[0]
	slowURL := startWorkers(t, slow)[0]
	dyingURL := startWorkers(t, dying)[0]

	fleet := NewFleet(150 * time.Millisecond)
	stop := make(chan struct{})
	defer close(stop)
	heartbeatDirectly(t, fleet, fastURL, stop)
	heartbeatDirectly(t, fleet, slowURL, stop)
	// The dying worker registers, keeps aborting shards mid-stream, and
	// its heartbeats stop shortly into the run.
	dyingStop := make(chan struct{})
	heartbeatDirectly(t, fleet, dyingURL, dyingStop)
	go func() {
		time.Sleep(80 * time.Millisecond)
		close(dyingStop)
	}()

	records, agg, err := collectRun(t, Options{
		Fleet:          fleet,
		ShardSize:      (n + 7) / 8,
		AdaptiveShards: true,
		SpeculateAfter: 250 * time.Millisecond,
		LeaseTimeout:   30 * time.Second,
		MaxAttempts:    50,
		EvictAfter:     100, // membership, not failure count, evicts the dying worker
		NoWorkerGrace:  10 * time.Second,
		Backoff:        time.Millisecond,
	})
	if err != nil {
		t.Fatalf("chaos run: %v", err)
	}
	if records != refNDJSON(t) {
		t.Fatal("records differ from single-process output under chaos")
	}
	if got := mustJSON(t, agg); got != mustJSON(t, ref.agg) {
		t.Fatalf("aggregate differs under chaos: %s", got)
	}
	if len(dying.served()) != 0 {
		t.Fatalf("dying worker completed %d shards, should have none", len(dying.served()))
	}
	if dying.requests == 0 {
		t.Fatal("dying worker never received a shard — the fault was not exercised")
	}
}
