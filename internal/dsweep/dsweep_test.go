package dsweep

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/policyscope/policyscope/internal/bgp"
	"github.com/policyscope/policyscope/internal/simulate"
	"github.com/policyscope/policyscope/internal/sweep"
	"github.com/policyscope/policyscope/internal/topogen"
)

// testRef is the shared single-process reference: one small topology,
// its link-failure sweep expansion, and the records + aggregate a
// single-process executor produces. Built once — the distributed tests
// all compare against it.
var (
	refOnce sync.Once
	refErr  error
	ref     struct {
		spec      sweep.Spec
		scenarios []simulate.Scenario
		impacts   []*sweep.Impact
		agg       *sweep.Aggregate
	}
)

func refSweep(t *testing.T) {
	t.Helper()
	refOnce.Do(func() {
		topo, err := topogen.Generate(topogen.DefaultConfig(60, 5))
		if err != nil {
			refErr = err
			return
		}
		vantage := make([]bgp.ASN, 0, 8)
		for i, asn := range topo.Order {
			if i%11 == 0 && len(vantage) < 8 {
				vantage = append(vantage, asn)
			}
		}
		eng, err := simulate.NewEngine(topo, simulate.Options{VantagePoints: vantage})
		if err != nil {
			refErr = err
			return
		}
		ref.spec = sweep.Spec{
			Name:       "links",
			Generators: []sweep.Generator{{Kind: sweep.KindAllSingleLinkFailures}},
		}
		ref.scenarios, err = sweep.Expand(context.Background(), topo, ref.spec)
		if err != nil {
			refErr = err
			return
		}
		ref.agg, refErr = sweep.Run(context.Background(), eng, ref.scenarios, sweep.Options{
			Workers: 2,
			OnImpact: func(imp *sweep.Impact) error {
				ref.impacts = append(ref.impacts, imp)
				return nil
			},
		})
	})
	if refErr != nil {
		t.Fatalf("building reference sweep: %v", refErr)
	}
}

// refNDJSON renders the reference records the way cmd/sweep -records
// writes them — the byte stream distributed runs must reproduce.
func refNDJSON(t *testing.T) string {
	t.Helper()
	refSweep(t)
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, imp := range ref.impacts {
		if err := enc.Encode(imp); err != nil {
			t.Fatal(err)
		}
	}
	return buf.String()
}

// fakeWorker is an httptest-backed shard worker serving slices of the
// reference record set, with injectable failure modes.
type fakeWorker struct {
	t *testing.T

	mu sync.Mutex
	// requests counts shard attempts received; servedStarts records the
	// Start of every shard fully served (trailer written).
	requests    int
	servedStart []int
	// dieAfter > 0 aborts the connection after that many records, every
	// request. failStatus != 0 responds with that status instead of a
	// stream, for the first failTimes requests (0 = always). delay > 0
	// sleeps before each record — a slowed worker for straggler tests.
	dieAfter   int
	failStatus int
	failTimes  int
	delay      time.Duration
}

func (f *fakeWorker) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	refSweep(f.t)
	if r.URL.Path != "/sweep/shard" {
		http.Error(w, "not found", http.StatusNotFound)
		return
	}
	var req ShardRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	f.mu.Lock()
	f.requests++
	n := f.requests
	f.mu.Unlock()
	if f.failStatus != 0 && (f.failTimes == 0 || n <= f.failTimes) {
		http.Error(w, "injected failure", f.failStatus)
		return
	}
	if req.ExpectTotal > 0 && req.ExpectTotal != len(ref.scenarios) {
		http.Error(w, "scenario universe mismatch", http.StatusUnprocessableEntity)
		return
	}
	if err := req.ValidateRange(len(ref.scenarios)); err != nil {
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	written := 0
	for i := req.Start; i < req.End; i++ {
		if f.dieAfter > 0 && written >= f.dieAfter {
			panic(http.ErrAbortHandler) // drop the connection mid-stream
		}
		if f.delay > 0 {
			select {
			case <-time.After(f.delay):
			case <-r.Context().Done():
				return
			}
		}
		if err := enc.Encode(ref.impacts[i]); err != nil {
			return
		}
		written++
		if flusher != nil {
			flusher.Flush()
		}
	}
	_ = enc.Encode(struct {
		ShardDone ShardDone `json:"shard_done"`
	}{ShardDone{Start: req.Start, End: req.End, Seq: req.Seq, Records: written}})
	f.mu.Lock()
	f.servedStart = append(f.servedStart, req.Start)
	f.mu.Unlock()
}

func (f *fakeWorker) served() []int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]int(nil), f.servedStart...)
}

// startWorkers spins up n fake workers and returns them plus their
// addresses.
func startWorkers(t *testing.T, workers ...*fakeWorker) []string {
	t.Helper()
	addrs := make([]string, len(workers))
	for i, f := range workers {
		ts := httptest.NewServer(f)
		t.Cleanup(ts.Close)
		addrs[i] = ts.URL
	}
	return addrs
}

// collectRun executes a distributed run and returns the NDJSON record
// bytes plus the aggregate.
func collectRun(t *testing.T, opts Options) (string, *sweep.Aggregate, error) {
	t.Helper()
	refSweep(t)
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	prev := opts.OnImpact
	opts.OnImpact = func(imp *sweep.Impact) error {
		if prev != nil {
			if err := prev(imp); err != nil {
				return err
			}
		}
		return enc.Encode(imp)
	}
	agg, err := Run(context.Background(), ref.spec, ref.scenarios, opts)
	return buf.String(), agg, err
}

func TestPartition(t *testing.T) {
	cases := []struct {
		total, size int
		want        []Shard
	}{
		{0, 10, nil},
		{5, 10, []Shard{{0, 0, 5}}},
		{10, 5, []Shard{{0, 0, 5}, {1, 5, 10}}},
		{11, 5, []Shard{{0, 0, 5}, {1, 5, 10}, {2, 10, 11}}},
	}
	for _, tc := range cases {
		got := Partition(tc.total, tc.size)
		if fmt.Sprint(got) != fmt.Sprint(tc.want) {
			t.Errorf("Partition(%d,%d) = %v, want %v", tc.total, tc.size, got, tc.want)
		}
	}
	// size <= 0 falls back to the default, and the partition always
	// covers [0, total) exactly once.
	shards := Partition(1000, 0)
	covered := 0
	for i, sh := range shards {
		if sh.Index != i || sh.Start != covered {
			t.Fatalf("shard %d is %+v (gap or misindex)", i, sh)
		}
		covered = sh.End
	}
	if covered != 1000 {
		t.Fatalf("partition covers %d of 1000", covered)
	}
}

func TestWorkerURL(t *testing.T) {
	cases := []struct {
		in, dataset, want string
	}{
		{"localhost:8081", "", "http://localhost:8081/sweep/shard"},
		{"http://w1:9000", "", "http://w1:9000/sweep/shard"},
		{"http://w1:9000/", "paper", "http://w1:9000/sweep/shard?dataset=paper"},
	}
	for _, tc := range cases {
		got, err := workerURL(tc.in, tc.dataset)
		if err != nil || got != tc.want {
			t.Errorf("workerURL(%q,%q) = %q, %v; want %q", tc.in, tc.dataset, got, err, tc.want)
		}
	}
	if _, err := workerURL("://nope", ""); err == nil {
		t.Error("bad address accepted")
	}
}

func TestMergerOrdersAndDedupes(t *testing.T) {
	var got []int
	m := newMerger(0, func(imp *sweep.Impact) error {
		got = append(got, imp.Index)
		return nil
	}, nil)
	rec := func(i int) []*sweep.Impact { return []*sweep.Impact{{Index: i, Name: fmt.Sprintf("s%d", i)}} }

	// Out-of-order delivery: nothing reaches the sink until shard 0.
	if dup := m.deliver(2, rec(2)); dup {
		t.Fatal("fresh shard reported duplicate")
	}
	if dup := m.deliver(1, rec(1)); dup || len(got) != 0 {
		t.Fatalf("sink saw %v before shard 0 arrived", got)
	}
	// A duplicate of a pending (not yet released) shard is discarded.
	if dup := m.deliver(1, rec(99)); !dup {
		t.Fatal("duplicate of pending shard not detected")
	}
	if dup := m.deliver(0, rec(0)); dup {
		t.Fatal("shard 0 reported duplicate")
	}
	if fmt.Sprint(got) != "[0 1 2]" {
		t.Fatalf("release order %v, want [0 1 2]", got)
	}
	// A duplicate of a released shard is discarded too.
	if dup := m.deliver(2, rec(2)); !dup {
		t.Fatal("duplicate of released shard not detected")
	}
	if m.mergedShards() != 3 {
		t.Fatalf("merged %d shards, want 3", m.mergedShards())
	}
}

// TestDistributedBitIdentical is the headline property: for {1 worker ×
// 1 shard, 2 workers × 8 shards} the coordinator's record stream and
// aggregate are byte-identical to the single-process executor's.
func TestDistributedBitIdentical(t *testing.T) {
	refSweep(t)
	wantRecords := refNDJSON(t)
	wantAgg := mustJSON(t, ref.agg)
	n := len(ref.scenarios)

	cases := []struct {
		name      string
		workers   int
		shardSize int
	}{
		{"1worker_1shard", 1, n},
		{"2workers_8shards", 2, (n + 7) / 8},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fleet := make([]*fakeWorker, tc.workers)
			for i := range fleet {
				fleet[i] = &fakeWorker{t: t}
			}
			records, agg, err := collectRun(t, Options{
				Workers:   startWorkers(t, fleet...),
				ShardSize: tc.shardSize,
			})
			if err != nil {
				t.Fatalf("distributed run: %v", err)
			}
			if records != wantRecords {
				t.Fatalf("record stream differs from single-process output\n got %d bytes\nwant %d bytes", len(records), len(wantRecords))
			}
			if got := mustJSON(t, agg); got != wantAgg {
				t.Fatalf("aggregate differs:\n got %s\nwant %s", got, wantAgg)
			}
			total := 0
			for _, f := range fleet {
				total += len(f.served())
			}
			if want := (n + tc.shardSize - 1) / tc.shardSize; total != want {
				t.Fatalf("%d shards served, want %d", total, want)
			}
		})
	}
}

// TestFaultInjectionWorkerDiesMidShard kills one of three workers after
// K records on every attempt and proves the coordinator reassigns its
// shards, discards the truncated streams, and still emits bit-identical
// global records.
func TestFaultInjectionWorkerDiesMidShard(t *testing.T) {
	refSweep(t)
	n := len(ref.scenarios)
	healthy1 := &fakeWorker{t: t}
	healthy2 := &fakeWorker{t: t}
	dying := &fakeWorker{t: t, dieAfter: 3}
	records, agg, err := collectRun(t, Options{
		Workers:     startWorkers(t, healthy1, dying, healthy2),
		ShardSize:   (n + 7) / 8,
		MaxAttempts: 10,
		EvictAfter:  2,
		Backoff:     time.Millisecond,
	})
	if err != nil {
		t.Fatalf("run with dying worker: %v", err)
	}
	if want := refNDJSON(t); records != want {
		t.Fatal("records differ from single-process output after fault recovery")
	}
	if got := mustJSON(t, agg); got != mustJSON(t, ref.agg) {
		t.Fatalf("aggregate differs after fault recovery: %s", got)
	}
	if len(dying.served()) != 0 {
		t.Fatalf("dying worker completed %d shards, should have none", len(dying.served()))
	}
	if dying.requests == 0 {
		t.Fatal("dying worker never received a shard — fault was not exercised")
	}
	if got := len(healthy1.served()) + len(healthy2.served()); got != (n+7)/((n+7)/8) && got < 2 {
		t.Fatalf("healthy workers served %d shards", got)
	}
}

// TestTransientFailureRetries proves a worker that 503s its first
// attempts is retried with backoff until it recovers, within
// MaxAttempts.
func TestTransientFailureRetries(t *testing.T) {
	refSweep(t)
	flaky := &fakeWorker{t: t, failStatus: http.StatusServiceUnavailable, failTimes: 2}
	records, _, err := collectRun(t, Options{
		Workers:     startWorkers(t, flaky),
		ShardSize:   len(ref.scenarios), // one shard: every attempt hits the flaky worker
		MaxAttempts: 5,
		EvictAfter:  10,
		Backoff:     time.Millisecond,
	})
	if err != nil {
		t.Fatalf("run with flaky worker: %v", err)
	}
	if records != refNDJSON(t) {
		t.Fatal("records differ after retries")
	}
	if flaky.requests != 3 {
		t.Fatalf("worker saw %d attempts, want 3 (2 failures + 1 success)", flaky.requests)
	}
}

// TestPermanentRejectionFailsFast: a 4xx is not retried — the run fails
// on the first response.
func TestPermanentRejectionFailsFast(t *testing.T) {
	refSweep(t)
	rejecting := &fakeWorker{t: t, failStatus: http.StatusUnprocessableEntity}
	_, _, err := collectRun(t, Options{
		Workers:     startWorkers(t, rejecting),
		ShardSize:   (len(ref.scenarios) + 1) / 2,
		MaxAttempts: 5,
		Backoff:     time.Millisecond,
	})
	if err == nil || !strings.Contains(err.Error(), "rejected shard") {
		t.Fatalf("want permanent rejection error, got %v", err)
	}
	var perm *PermanentError
	if !errors.As(err, &perm) {
		t.Fatalf("error does not unwrap to *PermanentError: %v", err)
	}
	if rejecting.requests != 1 {
		t.Fatalf("permanent rejection was retried: %d attempts", rejecting.requests)
	}
}

// TestAllWorkersEvicted: when every worker is unhealthy the run fails
// with an eviction error instead of hanging.
func TestAllWorkersEvicted(t *testing.T) {
	refSweep(t)
	down := &fakeWorker{t: t, failStatus: http.StatusServiceUnavailable}
	_, _, err := collectRun(t, Options{
		Workers:     startWorkers(t, down),
		ShardSize:   len(ref.scenarios),
		MaxAttempts: 100,
		EvictAfter:  2,
		Backoff:     time.Millisecond,
	})
	if err == nil || !strings.Contains(err.Error(), "evicted") {
		t.Fatalf("want eviction error, got %v", err)
	}
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
