package dsweep

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/policyscope/policyscope/internal/simulate"
	"github.com/policyscope/policyscope/internal/sweep"
	"github.com/policyscope/policyscope/obs"
)

// Options configures one distributed sweep run.
type Options struct {
	// Workers are the fleet's shard endpoints, as host:port or base
	// URLs ("worker1:8080", "http://worker1:8080"). Required unless
	// Fleet is set, in which case they are the static seed list and
	// registered workers join dynamically.
	Workers []string
	// Fleet, when set, supplies dynamic membership: workers that
	// registered (and keep heartbeating) are admitted to the dispatch
	// while it runs, and a worker whose heartbeats stop is evicted and
	// its in-flight shard requeued.
	Fleet *Fleet
	// NoWorkerGrace applies in fleet mode only: how long the run
	// tolerates having zero dispatchable workers (e.g. the whole fleet
	// is mid-deploy) before failing (default 30s). Static mode keeps
	// the old contract — every seed evicted fails immediately.
	NoWorkerGrace time.Duration
	// ShardSize is the scenarios-per-shard partition granularity
	// (<= 0 uses DefaultShardSize).
	ShardSize int
	// AdaptiveShards shrinks the tail of the partition: full-size
	// shards for the body of the index space, quarter-size shards for
	// the last stretch, so the run's wall clock cannot be dominated by
	// one large shard dispatched last. Changes the shard layout, so it
	// is part of the checkpoint fingerprint.
	AdaptiveShards bool
	// DisableSpeculation turns off straggler re-dispatch. By default
	// the coordinator watches outstanding shards and, once a shard's
	// oldest attempt has been running longer than
	// max(SpeculateAfter, 2×p95 of completed shard durations), enqueues
	// one speculative duplicate; whichever attempt merges first wins
	// (the merge layer is exactly-once, so the loser is discarded).
	DisableSpeculation bool
	// SpeculateAfter is the floor on the speculation threshold —
	// no shard is speculated before its attempt is at least this old
	// (default 5s). Keeps cold-start p95 estimates from triggering
	// duplicates on perfectly healthy shards.
	SpeculateAfter time.Duration
	// OnSpeculate, when set, observes each speculative dispatch (tests).
	OnSpeculate func(Shard)
	// TopShifts bounds each record's per-prefix detail; forwarded to
	// workers and part of the checkpoint fingerprint.
	TopShifts int
	// TopK bounds the aggregate's critical-scenario lists (default 10).
	TopK int
	// WorkerParallelism is the executor parallelism forwarded to each
	// worker (0 lets the worker default to its own core count).
	WorkerParallelism int
	// Dataset names the dataset each worker must run against (the
	// shard endpoint's ?dataset= parameter; empty = the worker's
	// default).
	Dataset string
	// Vantages, when set, is the coordinator's vantage-set fingerprint
	// (VantageFingerprint over its collector peers), sent with every
	// shard so a worker on a same-topology-different-peers dataset is
	// rejected instead of merged.
	Vantages string
	// LeaseTimeout bounds one shard attempt end to end: dispatch,
	// remote execution, and streaming the records back. An attempt that
	// outlives its lease is abandoned and the shard requeued (default
	// 5m).
	LeaseTimeout time.Duration
	// MaxAttempts bounds how many times one shard is tried before the
	// run fails (default 3).
	MaxAttempts int
	// Backoff is the base delay before a shard's second attempt,
	// doubling per subsequent attempt (default 200ms).
	Backoff time.Duration
	// EvictAfter drops a worker from the fleet after this many
	// consecutive failed attempts (default 3). Its queued work is
	// reassigned to the remaining workers; when the last worker is
	// evicted the run fails.
	EvictAfter int
	// Checkpoint, when set, spools every completed shard before it
	// merges, and Run replays already-spooled shards instead of
	// executing them.
	Checkpoint *Checkpoint
	// Client overrides the HTTP client (tests; default is a dedicated
	// client with no global timeout — the lease context bounds each
	// attempt).
	Client *http.Client
	// OnImpact receives every record strictly in global scenario index
	// order, exactly like the single-process executor's hook. Returning
	// an error aborts the run.
	OnImpact func(*sweep.Impact) error
	// OnShardDone, when set, observes each shard trailer as it merges
	// (first delivery only), with the worker that ran it. Calls are
	// serialized.
	OnShardDone func(worker string, d ShardDone)
}

func (o Options) shardSize() int {
	if o.ShardSize <= 0 {
		return DefaultShardSize
	}
	return o.ShardSize
}

func (o Options) leaseTimeout() time.Duration {
	if o.LeaseTimeout <= 0 {
		return 5 * time.Minute
	}
	return o.LeaseTimeout
}

func (o Options) maxAttempts() int {
	if o.MaxAttempts <= 0 {
		return 3
	}
	return o.MaxAttempts
}

func (o Options) backoff() time.Duration {
	if o.Backoff <= 0 {
		return 200 * time.Millisecond
	}
	return o.Backoff
}

func (o Options) evictAfter() int {
	if o.EvictAfter <= 0 {
		return 3
	}
	return o.EvictAfter
}

func (o Options) speculateAfter() time.Duration {
	if o.SpeculateAfter <= 0 {
		return 5 * time.Second
	}
	return o.SpeculateAfter
}

func (o Options) noWorkerGrace() time.Duration {
	if o.NoWorkerGrace <= 0 {
		return 30 * time.Second
	}
	return o.NoWorkerGrace
}

// job is one shard's place in the dispatch queue.
type job struct {
	shard Shard
	// lastWorker is who failed or abandoned it (reassignment
	// accounting).
	lastWorker string
	// speculative marks a duplicate dispatch of a straggling shard; it
	// races the original and the merge layer keeps whichever finishes
	// first.
	speculative bool
}

// shardState is the dispatcher's per-shard bookkeeping, guarded by
// dispatcher.mu. The retry budget counts failures — not dispatches — so
// a speculative duplicate never consumes the shard's attempts.
type shardState struct {
	inflight   int
	failures   int
	speculated bool
	done       bool
	// started is when the oldest currently-outstanding attempt was
	// dispatched (zero while nothing is in flight) — the straggler
	// detector's clock.
	started time.Time
}

// Run executes the spec's scenarios across the worker fleet and
// returns the same aggregate a single-process sweep.Run would. The
// scenarios slice must be the coordinator's own deterministic expansion
// of spec (sweep.Expand) — it defines the global order records merge
// into and the names each worker's records are verified against.
//
// Failure model: a shard attempt that times out, hits a transport
// error, or streams back truncated (no trailer) is requeued with
// backoff and picked up by any live worker, up to MaxAttempts; a worker
// with EvictAfter consecutive failures is dropped and its work
// reassigned. A 4xx from a worker (bad spec, range out of bounds,
// dataset mismatch) is permanent and fails the run immediately. The
// merge is exactly-once per shard regardless of retry races.
func Run(ctx context.Context, spec sweep.Spec, scenarios []simulate.Scenario, opts Options) (*sweep.Aggregate, error) {
	if len(scenarios) == 0 {
		return nil, errors.New("dsweep: no scenarios")
	}
	if len(opts.Workers) == 0 && opts.Fleet == nil {
		return nil, errors.New("dsweep: no workers")
	}
	workers := make([]string, 0, len(opts.Workers))
	for _, w := range opts.Workers {
		u, err := workerURL(w, opts.Dataset)
		if err != nil {
			return nil, err
		}
		workers = append(workers, u)
	}
	var shards []Shard
	if opts.AdaptiveShards {
		shards = PartitionAdaptive(len(scenarios), opts.shardSize())
	} else {
		shards = Partition(len(scenarios), opts.shardSize())
	}

	runCtx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	m := newMerger(opts.TopK, opts.OnImpact, func(err error) { cancel(err) })

	// Replay checkpointed shards through the same merge path a live
	// delivery takes — the resumed run's output stays byte-identical.
	todo := make([]Shard, 0, len(shards))
	if cp := opts.Checkpoint; cp != nil && cp.CompletedCount() > 0 {
		_, span := obs.StartSpan(runCtx, "dsweep:replay")
		replayed := 0
		for _, sh := range shards {
			if !cp.Has(sh.Index) {
				todo = append(todo, sh)
				continue
			}
			recs, err := cp.ReadShard(sh.Index)
			if err != nil {
				return nil, err
			}
			if err := verifyShardRecords(recs, sh, scenarios); err != nil {
				return nil, fmt.Errorf("dsweep: checkpoint spool for shard %d is not this sweep's (remove the checkpoint directory to start over): %w", sh.Index, err)
			}
			m.deliver(sh.Index, recs)
			mShardsReplayed.Inc()
			replayed++
		}
		span.End()
		slog.Info("dsweep: resumed from checkpoint",
			"replayed_shards", replayed, "remaining_shards", len(todo))
	} else {
		todo = shards
	}
	if m.sinkErr != nil {
		return nil, fmt.Errorf("dsweep: emitting record: %w", m.sinkErr)
	}
	if len(todo) == 0 {
		return m.agg.Aggregate(), nil
	}

	// Each shard contributes at most two queue entries over its
	// lifetime's instantaneous state — a (re)queued primary and one
	// speculative duplicate — so this buffer keeps every requeue and
	// speculation non-blocking.
	jobs := make(chan job, 2*len(shards)+4)
	for _, sh := range todo {
		jobs <- job{shard: sh}
	}

	c := &dispatcher{
		spec:        spec,
		scenarios:   scenarios,
		shards:      shards,
		opts:        opts,
		http:        opts.Client,
		merge:       m,
		jobs:        jobs,
		done:        make(chan struct{}),
		cancel:      cancel,
		states:      make([]shardState, len(shards)),
		workerStats: make(map[string]workerMetrics, len(workers)),
	}
	if c.http == nil {
		c.http = &http.Client{}
	}
	c.remaining.Store(int64(len(todo)))
	if opts.Fleet == nil {
		// Fleet mode counts workers as manage() starts their loops.
		c.live.Store(int64(len(workers)))
	}
	for _, sh := range shards {
		if cp := opts.Checkpoint; cp != nil && cp.Has(sh.Index) {
			c.states[sh.Index].done = true
		}
	}

	dispatchCtx, span := obs.StartSpan(runCtx, "dsweep:dispatch")
	var wg sync.WaitGroup
	if !opts.DisableSpeculation {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.speculate(dispatchCtx)
		}()
	}
	if opts.Fleet != nil {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.manage(dispatchCtx, workers)
		}()
	} else {
		for _, w := range workers {
			wg.Add(1)
			go func(addr string) {
				defer wg.Done()
				c.workerLoop(dispatchCtx, dispatchCtx, addr)
			}(w)
		}
	}
	wg.Wait()
	span.End()

	if err := m.sinkErr; err != nil {
		return nil, fmt.Errorf("dsweep: emitting record: %w", err)
	}
	if c.remaining.Load() > 0 {
		if cause := context.Cause(runCtx); cause != nil {
			return nil, cause
		}
		return nil, errors.New("dsweep: workers exited with shards remaining")
	}
	return m.agg.Aggregate(), nil
}

// dispatcher is the coordinator's shared dispatch state.
type dispatcher struct {
	spec      sweep.Spec
	scenarios []simulate.Scenario
	shards    []Shard
	opts      Options
	http      *http.Client
	merge     *merger
	jobs      chan job
	// done closes when the last shard merges; idle workers exit on it.
	done      chan struct{}
	cancel    context.CancelCauseFunc
	remaining atomic.Int64
	live      atomic.Int64
	seq       atomic.Int64

	// mu guards the per-shard states, the completed-duration sample the
	// straggler detector feeds on, and the worker metric handles (which
	// grow as fleet members join).
	mu          sync.Mutex
	states      []shardState
	durations   []float64
	workerStats map[string]workerMetrics
}

func (c *dispatcher) workerMetricsFor(addr string) workerMetrics {
	c.mu.Lock()
	defer c.mu.Unlock()
	wm, ok := c.workerStats[addr]
	if !ok {
		wm = newWorkerMetrics(addr)
		c.workerStats[addr] = wm
	}
	return wm
}

// shardDone reports whether the shard has already merged (a stale
// duplicate in the queue can be dropped without a dispatch).
func (c *dispatcher) shardDone(index int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.states[index].done
}

// noteDispatch marks one attempt outstanding.
func (c *dispatcher) noteDispatch(index int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := &c.states[index]
	st.inflight++
	if st.started.IsZero() {
		st.started = time.Now()
	}
}

// noteSettled marks one attempt finished (either way).
func (c *dispatcher) noteSettled(index int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := &c.states[index]
	st.inflight--
	if st.inflight <= 0 {
		st.inflight = 0
		st.started = time.Time{}
	}
}

// noteFailure counts one failed attempt against the shard's budget and
// returns the new failure count.
func (c *dispatcher) noteFailure(index int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.states[index].failures++
	return c.states[index].failures
}

// noteMerged records a first delivery: marks the shard done and feeds
// its duration into the straggler detector's p95 sample.
func (c *dispatcher) noteMerged(index int, dur time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.states[index].done = true
	c.durations = append(c.durations, dur.Seconds())
}

// workerLoop pulls shards for one worker until the run completes, the
// worker's context is canceled (fleet eviction), the run context dies,
// or the worker evicts itself after consecutive failures. runCtx is the
// whole dispatch's context; ctx additionally carries this worker's
// membership — when only the latter dies, the interrupted shard is
// requeued for the rest of the fleet.
func (c *dispatcher) workerLoop(runCtx, ctx context.Context, addr string) {
	wm := c.workerMetricsFor(addr)
	consecutive := 0
	for {
		var j job
		select {
		case <-ctx.Done():
			return
		case <-c.done:
			return
		case j = <-c.jobs:
		}
		if c.shardDone(j.shard.Index) {
			// A stale duplicate (the shard merged while this entry sat in
			// the queue); drop it without burning a dispatch.
			continue
		}
		if j.lastWorker != "" && j.lastWorker != addr {
			mShardsReassigned.Inc()
		}
		seq := int(c.seq.Add(1))
		mShardsDispatched.Inc()
		wm.shards.Inc()
		c.noteDispatch(j.shard.Index)
		start := time.Now()
		_, span := obs.StartSpan(ctx, fmt.Sprintf("shard%03d@%s", j.shard.Index, addr))
		recs, trailer, err := c.runShard(ctx, addr, j.shard, seq)
		span.End()
		wm.seconds.ObserveSince(start)
		c.noteSettled(j.shard.Index)

		if err != nil {
			if ctx.Err() != nil {
				// Our context died. If the run as a whole is still going,
				// this was a per-worker eviction — hand the interrupted
				// shard back to the fleet before leaving.
				if runCtx.Err() == nil && !c.shardDone(j.shard.Index) {
					j.lastWorker = addr
					c.jobs <- j
				}
				return
			}
			if c.shardDone(j.shard.Index) {
				// The other attempt won while this one was failing; the
				// shard needs nothing further.
				consecutive = 0
				continue
			}
			var perm *PermanentError
			if errors.As(err, &perm) {
				c.cancel(fmt.Errorf("dsweep: worker %s rejected shard %d: %w", addr, j.shard.Index, err))
				return
			}
			mShardsRetried.Inc()
			failures := c.noteFailure(j.shard.Index)
			consecutive++
			slog.Warn("dsweep: shard attempt failed",
				"worker", addr, "shard", j.shard.Index,
				"failures", failures, "err", err)
			if failures >= c.opts.maxAttempts() {
				c.cancel(fmt.Errorf("dsweep: shard %d [%d,%d) failed after %d attempts: %w",
					j.shard.Index, j.shard.Start, j.shard.End, failures, err))
				return
			}
			j.lastWorker = addr
			j.speculative = false
			if !sleepCtx(ctx, backoffDelay(c.opts.backoff(), failures+1)) {
				c.jobs <- j // let a live worker pick it up even as we die
				return
			}
			c.jobs <- j
			if consecutive >= c.opts.evictAfter() {
				mWorkersEvicted.Inc()
				slog.Warn("dsweep: worker evicted", "worker", addr, "consecutive_failures", consecutive)
				if c.live.Add(-1) == 0 && c.opts.Fleet == nil {
					c.cancel(fmt.Errorf("dsweep: every worker evicted (last: %s after %d consecutive failures)", addr, consecutive))
				}
				return
			}
			continue
		}
		consecutive = 0

		// Spool before merging: once a shard is visible in the
		// checkpoint it must also be in the output of this run.
		if cp := c.opts.Checkpoint; cp != nil {
			if err := cp.WriteShard(j.shard.Index, recs); err != nil {
				c.cancel(err)
				return
			}
		}
		if dup := c.merge.deliver(j.shard.Index, recs); !dup {
			c.noteMerged(j.shard.Index, time.Since(start))
			mShardsCompleted.Inc()
			if j.speculative {
				mSpeculativeWins.Inc()
				slog.Info("dsweep: speculative attempt won",
					"shard", j.shard.Index, "worker", addr)
			}
			if c.opts.OnShardDone != nil {
				c.merge.mu.Lock() // serialize the observer like the sink
				c.opts.OnShardDone(addr, *trailer)
				c.merge.mu.Unlock()
			}
			if c.remaining.Add(-1) == 0 {
				close(c.done)
				// Abort any attempts still in flight (a straggler's
				// original racing its speculative winner, a stalled
				// worker): the run's output is complete, and waiting out
				// their leases would hand the tail latency right back.
				c.cancel(nil)
			}
		}
	}
}

// speculate is the straggler detector: it watches outstanding shards
// and enqueues one duplicate dispatch (per shard, ever) for any whose
// oldest attempt has been running longer than
// max(SpeculateAfter, 2×p95 of completed shard durations). The merge
// layer's exactly-once guarantee makes the race safe: whichever attempt
// delivers first wins and the loser's records are discarded, so
// speculation can only reduce tail latency, never change output.
func (c *dispatcher) speculate(ctx context.Context) {
	floor := c.opts.speculateAfter()
	period := floor / 4
	if period < 50*time.Millisecond {
		period = 50 * time.Millisecond
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-c.done:
			return
		case <-t.C:
		}
		now := time.Now()
		c.mu.Lock()
		threshold := floor
		if p95 := quantile(c.durations, 0.95); 2*p95 > threshold.Seconds() {
			threshold = time.Duration(2 * p95 * float64(time.Second))
		}
		var specs []Shard
		for i := range c.states {
			st := &c.states[i]
			if st.done || st.speculated || st.inflight == 0 || st.started.IsZero() {
				continue
			}
			if now.Sub(st.started) < threshold {
				continue
			}
			st.speculated = true
			specs = append(specs, c.shards[i])
		}
		c.mu.Unlock()
		for _, sh := range specs {
			mShardsSpeculated.Inc()
			slog.Info("dsweep: speculating straggler shard",
				"shard", sh.Index, "threshold", threshold.Round(time.Millisecond))
			if c.opts.OnSpeculate != nil {
				c.opts.OnSpeculate(sh)
			}
			c.jobs <- job{shard: sh, speculative: true}
		}
	}
}

// quantile returns the q-quantile of xs (0 when empty). xs is copied;
// the sample stays unsorted in place.
func quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	i := int(q * float64(len(s)-1))
	return s[i]
}

// manage runs fleet-mode membership: it starts a worker loop per
// dispatchable address (static seeds plus live registrations), admits
// workers as they register, and evicts a worker — canceling its loop,
// which requeues its in-flight shard — when its heartbeats stop. A
// worker that evicted itself (consecutive failures) or was expired is
// only re-admitted on evidence of recovery: a heartbeat newer than the
// eviction.
func (c *dispatcher) manage(ctx context.Context, seeds []string) {
	type runningWorker struct {
		cancel context.CancelFunc
		exited chan struct{}
	}
	fleet := c.opts.Fleet
	active := make(map[string]*runningWorker)
	evictedAt := make(map[string]time.Time)
	var wg sync.WaitGroup
	defer func() {
		for _, rw := range active {
			rw.cancel()
		}
		wg.Wait()
	}()

	start := func(addr string) {
		wctx, cancel := context.WithCancel(ctx)
		rw := &runningWorker{cancel: cancel, exited: make(chan struct{})}
		active[addr] = rw
		c.live.Add(1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer close(rw.exited)
			defer c.live.Add(-1)
			c.workerLoop(ctx, wctx, addr)
		}()
	}

	// resolve maps a heartbeat's advertised address to the shard
	// endpoint URL the loops dial; bad addresses are skipped (and
	// logged) rather than failing the run.
	resolve := func(addr string) (string, bool) {
		u, err := workerURL(addr, c.opts.Dataset)
		if err != nil {
			slog.Warn("dsweep: ignoring unusable fleet registration", "addr", addr, "err", err)
			return "", false
		}
		return u, true
	}

	for _, s := range seeds {
		start(s)
	}

	ticker := time.NewTicker(fleet.TTL() / 3)
	defer ticker.Stop()
	var graceStart time.Time
	for {
		select {
		case <-ctx.Done():
			return
		case <-c.done:
			return
		case <-ticker.C:
		case <-fleet.Changed():
		}

		// The dispatchable set: every live registration (seeds are
		// dispatchable from the start and evict only by failure, since
		// they never promised heartbeats).
		livemembers := fleet.Live()
		liveSet := make(map[string]time.Time, len(livemembers))
		for _, m := range livemembers {
			u, ok := resolve(m.Addr)
			if !ok {
				continue
			}
			liveSet[u] = m.Last
		}

		// Reap self-exited loops (consecutive-failure evictions) so the
		// re-admission rule below applies to them.
		for addr, rw := range active {
			select {
			case <-rw.exited:
				delete(active, addr)
				evictedAt[addr] = time.Now()
			default:
			}
		}

		// Evict registered workers whose heartbeats stopped. Seeds are
		// exempt — absence of a heartbeat is their normal state.
		seedSet := make(map[string]bool, len(seeds))
		for _, s := range seeds {
			seedSet[s] = true
		}
		for addr, rw := range active {
			if seedSet[addr] {
				continue
			}
			if _, ok := liveSet[addr]; !ok {
				mWorkersEvicted.Inc()
				slog.Warn("dsweep: worker evicted (missed heartbeats)", "worker", addr)
				rw.cancel() // the loop requeues its in-flight shard
				delete(active, addr)
				evictedAt[addr] = time.Now()
			}
		}

		// Admit newly registered workers; re-admit an evicted one only
		// when its latest heartbeat postdates the eviction.
		for addr, last := range liveSet {
			if _, running := active[addr]; running {
				continue
			}
			if t, was := evictedAt[addr]; was && !last.After(t) {
				continue
			}
			delete(evictedAt, addr)
			mFleetJoins.Inc()
			slog.Info("dsweep: worker joined dispatch", "worker", addr)
			start(addr)
		}

		// A fleet with nobody to dispatch to gets a grace window (a
		// rolling deploy restarting every worker at once) before the run
		// fails; work is queued, not lost, throughout.
		if len(active) == 0 {
			if graceStart.IsZero() {
				graceStart = time.Now()
				slog.Warn("dsweep: no live workers; holding shards",
					"grace", c.opts.noWorkerGrace())
			} else if time.Since(graceStart) > c.opts.noWorkerGrace() {
				c.cancel(fmt.Errorf("dsweep: no live workers for %s (%d shards unfinished)",
					c.opts.noWorkerGrace(), c.remaining.Load()))
				return
			}
		} else {
			graceStart = time.Time{}
		}
	}
}

// runShard executes one shard attempt against one worker and returns
// the verified records and trailer.
func (c *dispatcher) runShard(ctx context.Context, addr string, sh Shard, seq int) ([]*sweep.Impact, *ShardDone, error) {
	leaseCtx, cancelLease := context.WithTimeout(ctx, c.opts.leaseTimeout())
	defer cancelLease()

	body, err := json.Marshal(ShardRequest{
		Spec:        c.spec,
		Start:       sh.Start,
		End:         sh.End,
		Seq:         seq,
		ExpectTotal: len(c.scenarios),
		Vantages:    c.opts.Vantages,
		TopShifts:   c.opts.TopShifts,
		Workers:     c.opts.WorkerParallelism,
	})
	if err != nil {
		return nil, nil, &PermanentError{Err: fmt.Errorf("encoding request: %w", err)}
	}
	req, err := http.NewRequestWithContext(leaseCtx, http.MethodPost, addr, bytes.NewReader(body))
	if err != nil {
		return nil, nil, &PermanentError{Err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		err := fmt.Errorf("worker returned %d: %s", resp.StatusCode, strings.TrimSpace(string(msg)))
		if resp.StatusCode >= 400 && resp.StatusCode < 500 &&
			resp.StatusCode != http.StatusRequestTimeout && resp.StatusCode != http.StatusTooManyRequests {
			return nil, nil, &PermanentError{Err: err}
		}
		return nil, nil, err
	}

	recs := make([]*sweep.Impact, 0, sh.End-sh.Start)
	dec := json.NewDecoder(resp.Body)
	for {
		var line wireLine
		if err := dec.Decode(&line); err != nil {
			// io.EOF without a trailer means the worker died mid-shard.
			return nil, nil, fmt.Errorf("shard stream truncated after %d of %d records: %w",
				len(recs), sh.End-sh.Start, err)
		}
		if line.ShardDone != nil {
			d := line.ShardDone
			if d.Start != sh.Start || d.End != sh.End || d.Records != len(recs) {
				return nil, nil, fmt.Errorf("shard trailer mismatch: trailer says [%d,%d) %d records, stream carried [%d,%d) %d",
					d.Start, d.End, d.Records, sh.Start, sh.End, len(recs))
			}
			return recs, d, nil
		}
		imp := line.Impact
		want := sh.Start + len(recs)
		if want >= sh.End {
			return nil, nil, fmt.Errorf("worker streamed more than %d records for shard [%d,%d)", sh.End-sh.Start, sh.Start, sh.End)
		}
		if imp.Index != want {
			return nil, nil, fmt.Errorf("record out of order: index %d, want %d", imp.Index, want)
		}
		if imp.Name != c.scenarios[want].Name {
			return nil, nil, &PermanentError{Err: fmt.Errorf(
				"scenario universe mismatch at index %d: worker ran %q, coordinator expects %q (is the fleet on the same dataset?)",
				want, imp.Name, c.scenarios[want].Name)}
		}
		recs = append(recs, &imp)
	}
}

// verifyShardRecords checks a replayed spool covers exactly its shard's
// range with the expected scenario names.
func verifyShardRecords(recs []*sweep.Impact, sh Shard, scenarios []simulate.Scenario) error {
	if len(recs) != sh.End-sh.Start {
		return fmt.Errorf("spool holds %d records, shard covers %d", len(recs), sh.End-sh.Start)
	}
	for i, imp := range recs {
		want := sh.Start + i
		if imp.Index != want || imp.Name != scenarios[want].Name {
			return fmt.Errorf("record %d is (index=%d, name=%q), want (index=%d, name=%q)",
				i, imp.Index, imp.Name, want, scenarios[want].Name)
		}
	}
	return nil
}

// workerURL normalizes a fleet entry to the shard endpoint URL.
func workerURL(addr, dataset string) (string, error) {
	s := strings.TrimSuffix(addr, "/")
	if !strings.Contains(s, "://") {
		s = "http://" + s
	}
	u, err := url.Parse(s)
	if err != nil || u.Host == "" {
		return "", fmt.Errorf("dsweep: bad worker address %q", addr)
	}
	u.Path = strings.TrimSuffix(u.Path, "/") + "/sweep/shard"
	if dataset != "" {
		q := u.Query()
		q.Set("dataset", dataset)
		u.RawQuery = q.Encode()
	}
	return u.String(), nil
}

// backoffDelay doubles the base per completed attempt, capped at 30s.
func backoffDelay(base time.Duration, attempts int) time.Duration {
	d := base
	for i := 1; i < attempts && d < 30*time.Second; i++ {
		d *= 2
	}
	if d > 30*time.Second {
		d = 30 * time.Second
	}
	return d
}

// sleepCtx waits d or until ctx dies; false means interrupted.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
