package dsweep

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/policyscope/policyscope/internal/simulate"
	"github.com/policyscope/policyscope/internal/sweep"
	"github.com/policyscope/policyscope/obs"
)

// Options configures one distributed sweep run.
type Options struct {
	// Workers are the fleet's shard endpoints, as host:port or base
	// URLs ("worker1:8080", "http://worker1:8080"). Required.
	Workers []string
	// ShardSize is the scenarios-per-shard partition granularity
	// (<= 0 uses DefaultShardSize).
	ShardSize int
	// TopShifts bounds each record's per-prefix detail; forwarded to
	// workers and part of the checkpoint fingerprint.
	TopShifts int
	// TopK bounds the aggregate's critical-scenario lists (default 10).
	TopK int
	// WorkerParallelism is the executor parallelism forwarded to each
	// worker (0 lets the worker default to its own core count).
	WorkerParallelism int
	// Dataset names the dataset each worker must run against (the
	// shard endpoint's ?dataset= parameter; empty = the worker's
	// default).
	Dataset string
	// LeaseTimeout bounds one shard attempt end to end: dispatch,
	// remote execution, and streaming the records back. An attempt that
	// outlives its lease is abandoned and the shard requeued (default
	// 5m).
	LeaseTimeout time.Duration
	// MaxAttempts bounds how many times one shard is tried before the
	// run fails (default 3).
	MaxAttempts int
	// Backoff is the base delay before a shard's second attempt,
	// doubling per subsequent attempt (default 200ms).
	Backoff time.Duration
	// EvictAfter drops a worker from the fleet after this many
	// consecutive failed attempts (default 3). Its queued work is
	// reassigned to the remaining workers; when the last worker is
	// evicted the run fails.
	EvictAfter int
	// Checkpoint, when set, spools every completed shard before it
	// merges, and Run replays already-spooled shards instead of
	// executing them.
	Checkpoint *Checkpoint
	// Client overrides the HTTP client (tests; default is a dedicated
	// client with no global timeout — the lease context bounds each
	// attempt).
	Client *http.Client
	// OnImpact receives every record strictly in global scenario index
	// order, exactly like the single-process executor's hook. Returning
	// an error aborts the run.
	OnImpact func(*sweep.Impact) error
	// OnShardDone, when set, observes each shard trailer as it merges
	// (first delivery only), with the worker that ran it. Calls are
	// serialized.
	OnShardDone func(worker string, d ShardDone)
}

func (o Options) shardSize() int {
	if o.ShardSize <= 0 {
		return DefaultShardSize
	}
	return o.ShardSize
}

func (o Options) leaseTimeout() time.Duration {
	if o.LeaseTimeout <= 0 {
		return 5 * time.Minute
	}
	return o.LeaseTimeout
}

func (o Options) maxAttempts() int {
	if o.MaxAttempts <= 0 {
		return 3
	}
	return o.MaxAttempts
}

func (o Options) backoff() time.Duration {
	if o.Backoff <= 0 {
		return 200 * time.Millisecond
	}
	return o.Backoff
}

func (o Options) evictAfter() int {
	if o.EvictAfter <= 0 {
		return 3
	}
	return o.EvictAfter
}

// job is one shard's place in the dispatch queue.
type job struct {
	shard Shard
	// attempts counts dispatches so far; lastWorker is who failed it
	// (reassignment accounting).
	attempts   int
	lastWorker string
}

// Run executes the spec's scenarios across the worker fleet and
// returns the same aggregate a single-process sweep.Run would. The
// scenarios slice must be the coordinator's own deterministic expansion
// of spec (sweep.Expand) — it defines the global order records merge
// into and the names each worker's records are verified against.
//
// Failure model: a shard attempt that times out, hits a transport
// error, or streams back truncated (no trailer) is requeued with
// backoff and picked up by any live worker, up to MaxAttempts; a worker
// with EvictAfter consecutive failures is dropped and its work
// reassigned. A 4xx from a worker (bad spec, range out of bounds,
// dataset mismatch) is permanent and fails the run immediately. The
// merge is exactly-once per shard regardless of retry races.
func Run(ctx context.Context, spec sweep.Spec, scenarios []simulate.Scenario, opts Options) (*sweep.Aggregate, error) {
	if len(scenarios) == 0 {
		return nil, errors.New("dsweep: no scenarios")
	}
	if len(opts.Workers) == 0 {
		return nil, errors.New("dsweep: no workers")
	}
	workers := make([]string, 0, len(opts.Workers))
	for _, w := range opts.Workers {
		u, err := workerURL(w, opts.Dataset)
		if err != nil {
			return nil, err
		}
		workers = append(workers, u)
	}
	shards := Partition(len(scenarios), opts.shardSize())

	runCtx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	m := newMerger(opts.TopK, opts.OnImpact, func(err error) { cancel(err) })

	// Replay checkpointed shards through the same merge path a live
	// delivery takes — the resumed run's output stays byte-identical.
	todo := make([]Shard, 0, len(shards))
	if cp := opts.Checkpoint; cp != nil && cp.CompletedCount() > 0 {
		_, span := obs.StartSpan(runCtx, "dsweep:replay")
		replayed := 0
		for _, sh := range shards {
			if !cp.Has(sh.Index) {
				todo = append(todo, sh)
				continue
			}
			recs, err := cp.ReadShard(sh.Index)
			if err != nil {
				return nil, err
			}
			if err := verifyShardRecords(recs, sh, scenarios); err != nil {
				return nil, fmt.Errorf("dsweep: checkpoint spool for shard %d is not this sweep's (remove the checkpoint directory to start over): %w", sh.Index, err)
			}
			m.deliver(sh.Index, recs)
			mShardsReplayed.Inc()
			replayed++
		}
		span.End()
		slog.Info("dsweep: resumed from checkpoint",
			"replayed_shards", replayed, "remaining_shards", len(todo))
	} else {
		todo = shards
	}
	if m.sinkErr != nil {
		return nil, fmt.Errorf("dsweep: emitting record: %w", m.sinkErr)
	}
	if len(todo) == 0 {
		return m.agg.Aggregate(), nil
	}

	// The queue holds at most one entry per shard (a job is either
	// queued or held by exactly one worker loop), so the buffer makes
	// requeues non-blocking.
	jobs := make(chan job, len(shards))
	for _, sh := range todo {
		jobs <- job{shard: sh}
	}

	c := &dispatcher{
		spec:        spec,
		scenarios:   scenarios,
		opts:        opts,
		http:        opts.Client,
		merge:       m,
		jobs:        jobs,
		done:        make(chan struct{}),
		cancel:      cancel,
		workerStats: make(map[string]workerMetrics, len(workers)),
	}
	if c.http == nil {
		c.http = &http.Client{}
	}
	c.remaining.Store(int64(len(todo)))
	c.live.Store(int64(len(workers)))
	for _, w := range workers {
		c.workerStats[w] = newWorkerMetrics(w)
	}

	dispatchCtx, span := obs.StartSpan(runCtx, "dsweep:dispatch")
	var wg sync.WaitGroup
	for _, w := range workers {
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			c.workerLoop(dispatchCtx, addr)
		}(w)
	}
	wg.Wait()
	span.End()

	if err := m.sinkErr; err != nil {
		return nil, fmt.Errorf("dsweep: emitting record: %w", err)
	}
	if c.remaining.Load() > 0 {
		if cause := context.Cause(runCtx); cause != nil {
			return nil, cause
		}
		return nil, errors.New("dsweep: workers exited with shards remaining")
	}
	return m.agg.Aggregate(), nil
}

// dispatcher is the coordinator's shared dispatch state.
type dispatcher struct {
	spec      sweep.Spec
	scenarios []simulate.Scenario
	opts      Options
	http      *http.Client
	merge     *merger
	jobs      chan job
	// done closes when the last shard merges; idle workers exit on it.
	done      chan struct{}
	cancel    context.CancelCauseFunc
	remaining atomic.Int64
	live      atomic.Int64
	seq       atomic.Int64

	workerStats map[string]workerMetrics
}

// workerLoop pulls shards for one worker until the run completes, the
// context dies, or the worker is evicted.
func (c *dispatcher) workerLoop(ctx context.Context, addr string) {
	wm := c.workerStats[addr]
	consecutive := 0
	for {
		var j job
		select {
		case <-ctx.Done():
			return
		case <-c.done:
			return
		case j = <-c.jobs:
		}
		if j.lastWorker != "" && j.lastWorker != addr {
			mShardsReassigned.Inc()
		}
		j.attempts++
		seq := int(c.seq.Add(1))
		mShardsDispatched.Inc()
		wm.shards.Inc()
		start := time.Now()
		_, span := obs.StartSpan(ctx, fmt.Sprintf("shard%03d@%s", j.shard.Index, addr))
		recs, trailer, err := c.runShard(ctx, addr, j.shard, seq)
		span.End()
		wm.seconds.ObserveSince(start)

		if err != nil {
			if ctx.Err() != nil {
				return
			}
			var perm *PermanentError
			if errors.As(err, &perm) {
				c.cancel(fmt.Errorf("dsweep: worker %s rejected shard %d: %w", addr, j.shard.Index, err))
				return
			}
			mShardsRetried.Inc()
			consecutive++
			slog.Warn("dsweep: shard attempt failed",
				"worker", addr, "shard", j.shard.Index,
				"attempt", j.attempts, "err", err)
			if j.attempts >= c.opts.maxAttempts() {
				c.cancel(fmt.Errorf("dsweep: shard %d [%d,%d) failed after %d attempts: %w",
					j.shard.Index, j.shard.Start, j.shard.End, j.attempts, err))
				return
			}
			j.lastWorker = addr
			if !sleepCtx(ctx, backoffDelay(c.opts.backoff(), j.attempts)) {
				c.jobs <- j // let a live worker pick it up even as we die
				return
			}
			c.jobs <- j
			if consecutive >= c.opts.evictAfter() {
				mWorkersEvicted.Inc()
				slog.Warn("dsweep: worker evicted", "worker", addr, "consecutive_failures", consecutive)
				if c.live.Add(-1) == 0 {
					c.cancel(fmt.Errorf("dsweep: every worker evicted (last: %s after %d consecutive failures)", addr, consecutive))
				}
				return
			}
			continue
		}
		consecutive = 0

		// Spool before merging: once a shard is visible in the
		// checkpoint it must also be in the output of this run.
		if cp := c.opts.Checkpoint; cp != nil {
			if err := cp.WriteShard(j.shard.Index, recs); err != nil {
				c.cancel(err)
				return
			}
		}
		if dup := c.merge.deliver(j.shard.Index, recs); !dup {
			mShardsCompleted.Inc()
			if c.opts.OnShardDone != nil {
				c.merge.mu.Lock() // serialize the observer like the sink
				c.opts.OnShardDone(addr, *trailer)
				c.merge.mu.Unlock()
			}
			if c.remaining.Add(-1) == 0 {
				close(c.done)
			}
		}
	}
}

// runShard executes one shard attempt against one worker and returns
// the verified records and trailer.
func (c *dispatcher) runShard(ctx context.Context, addr string, sh Shard, seq int) ([]*sweep.Impact, *ShardDone, error) {
	leaseCtx, cancelLease := context.WithTimeout(ctx, c.opts.leaseTimeout())
	defer cancelLease()

	body, err := json.Marshal(ShardRequest{
		Spec:        c.spec,
		Start:       sh.Start,
		End:         sh.End,
		Seq:         seq,
		ExpectTotal: len(c.scenarios),
		TopShifts:   c.opts.TopShifts,
		Workers:     c.opts.WorkerParallelism,
	})
	if err != nil {
		return nil, nil, &PermanentError{Err: fmt.Errorf("encoding request: %w", err)}
	}
	req, err := http.NewRequestWithContext(leaseCtx, http.MethodPost, addr, bytes.NewReader(body))
	if err != nil {
		return nil, nil, &PermanentError{Err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		err := fmt.Errorf("worker returned %d: %s", resp.StatusCode, strings.TrimSpace(string(msg)))
		if resp.StatusCode >= 400 && resp.StatusCode < 500 &&
			resp.StatusCode != http.StatusRequestTimeout && resp.StatusCode != http.StatusTooManyRequests {
			return nil, nil, &PermanentError{Err: err}
		}
		return nil, nil, err
	}

	recs := make([]*sweep.Impact, 0, sh.End-sh.Start)
	dec := json.NewDecoder(resp.Body)
	for {
		var line wireLine
		if err := dec.Decode(&line); err != nil {
			// io.EOF without a trailer means the worker died mid-shard.
			return nil, nil, fmt.Errorf("shard stream truncated after %d of %d records: %w",
				len(recs), sh.End-sh.Start, err)
		}
		if line.ShardDone != nil {
			d := line.ShardDone
			if d.Start != sh.Start || d.End != sh.End || d.Records != len(recs) {
				return nil, nil, fmt.Errorf("shard trailer mismatch: trailer says [%d,%d) %d records, stream carried [%d,%d) %d",
					d.Start, d.End, d.Records, sh.Start, sh.End, len(recs))
			}
			return recs, d, nil
		}
		imp := line.Impact
		want := sh.Start + len(recs)
		if want >= sh.End {
			return nil, nil, fmt.Errorf("worker streamed more than %d records for shard [%d,%d)", sh.End-sh.Start, sh.Start, sh.End)
		}
		if imp.Index != want {
			return nil, nil, fmt.Errorf("record out of order: index %d, want %d", imp.Index, want)
		}
		if imp.Name != c.scenarios[want].Name {
			return nil, nil, &PermanentError{Err: fmt.Errorf(
				"scenario universe mismatch at index %d: worker ran %q, coordinator expects %q (is the fleet on the same dataset?)",
				want, imp.Name, c.scenarios[want].Name)}
		}
		recs = append(recs, &imp)
	}
}

// verifyShardRecords checks a replayed spool covers exactly its shard's
// range with the expected scenario names.
func verifyShardRecords(recs []*sweep.Impact, sh Shard, scenarios []simulate.Scenario) error {
	if len(recs) != sh.End-sh.Start {
		return fmt.Errorf("spool holds %d records, shard covers %d", len(recs), sh.End-sh.Start)
	}
	for i, imp := range recs {
		want := sh.Start + i
		if imp.Index != want || imp.Name != scenarios[want].Name {
			return fmt.Errorf("record %d is (index=%d, name=%q), want (index=%d, name=%q)",
				i, imp.Index, imp.Name, want, scenarios[want].Name)
		}
	}
	return nil
}

// workerURL normalizes a fleet entry to the shard endpoint URL.
func workerURL(addr, dataset string) (string, error) {
	s := strings.TrimSuffix(addr, "/")
	if !strings.Contains(s, "://") {
		s = "http://" + s
	}
	u, err := url.Parse(s)
	if err != nil || u.Host == "" {
		return "", fmt.Errorf("dsweep: bad worker address %q", addr)
	}
	u.Path = strings.TrimSuffix(u.Path, "/") + "/sweep/shard"
	if dataset != "" {
		q := u.Query()
		q.Set("dataset", dataset)
		u.RawQuery = q.Encode()
	}
	return u.String(), nil
}

// backoffDelay doubles the base per completed attempt, capped at 30s.
func backoffDelay(base time.Duration, attempts int) time.Duration {
	d := base
	for i := 1; i < attempts && d < 30*time.Second; i++ {
		d *= 2
	}
	if d > 30*time.Second {
		d = 30 * time.Second
	}
	return d
}

// sleepCtx waits d or until ctx dies; false means interrupted.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
