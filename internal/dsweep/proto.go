// Package dsweep scales the sweep executor across machines: a
// coordinator deterministically partitions a spec's scenario index
// space into contiguous shards, dispatches each shard to a worker over
// the existing NDJSON record protocol (POST /sweep/shard — the PR 3
// executor behind an HTTP handler), and merges the returned streams
// back into strict global scenario order. Because every worker expands
// the same spec against the same dataset to the same scenario list, and
// the single-process executor already emits records that are pure
// functions of (base state, scenario), the merged distributed output is
// bit-identical to a single-process `cmd/sweep -j N` run for any worker
// count, shard size, and arrival order.
//
// The coordinator is fault-tolerant (per-shard lease timeouts, bounded
// retry with backoff, reassignment of a failed worker's shards to the
// rest of the fleet, exactly-once merge) and resumable (completed
// shards spool to a checkpoint directory; a restarted run replays them
// through the same merge path instead of recomputing).
package dsweep

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"

	"github.com/policyscope/policyscope/internal/bgp"
	"github.com/policyscope/policyscope/internal/sweep"
)

// DefaultShardSize is the scenarios-per-shard default. Small enough
// that a lost shard is cheap to redo and checkpoint progress is
// granular; large enough that per-shard HTTP and expansion-memo
// overhead amortizes.
const DefaultShardSize = 256

// ShardRequest is the POST /sweep/shard body: run scenarios
// [Start, End) of the spec's deterministic expansion. The worker
// expands the spec itself (expansion is deterministic, and the
// per-session memo makes it one-time work per fleet member) rather than
// receiving serialized scenarios — the request stays O(spec), not
// O(shard).
type ShardRequest struct {
	Spec sweep.Spec `json:"spec"`
	// Start and End bound the global scenario index range, half-open.
	Start int `json:"start"`
	End   int `json:"end"`
	// Seq is the coordinator's dispatch sequence number for this
	// attempt. It is echoed in the trailer so a late stream from a
	// superseded attempt is attributable in logs; the merge itself
	// dedupes by shard range, so correctness never depends on it.
	Seq int `json:"seq,omitempty"`
	// ExpectTotal, when nonzero, is the scenario count the coordinator's
	// own expansion produced. A worker whose expansion disagrees refuses
	// the shard — the fleet is pointed at different datasets (or code
	// versions) and its records would silently corrupt the merge.
	ExpectTotal int `json:"expect_total,omitempty"`
	// Vantages, when nonempty, is the coordinator's vantage-set
	// fingerprint (VantageFingerprint over its dataset's collector
	// peers). ExpectTotal pins the scenario universe and the per-record
	// name checks pin the topology's link set, but records are
	// functions of the *vantage set* too — two fleets on the same
	// topology with different -peers counts would pass both checks and
	// silently merge records that differ from the single-process run.
	// A worker whose own vantage fingerprint disagrees refuses the
	// shard before executing it.
	Vantages string `json:"vantages,omitempty"`
	// TopShifts and Workers pass through to the worker's executor
	// options (per-record detail bound; local parallelism, defaulted by
	// the worker when zero).
	TopShifts int `json:"top_shifts,omitempty"`
	// Workers is the executor parallelism on the worker, not the fleet
	// size.
	Workers int `json:"workers,omitempty"`
}

// VantageFingerprint hashes a vantage (collector peer) set to a short
// order-insensitive identity. Sweep records are pure functions of
// (topology, vantage set, scenario); the scenario-name verification
// pins the topology, and this pins the other input, so a worker whose
// flag-derived dataset shares the coordinator's topology but not its
// -peers count is rejected instead of silently diverging.
func VantageFingerprint(peers []bgp.ASN) string {
	sorted := make([]bgp.ASN, len(peers))
	copy(sorted, peers)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	h := sha256.New()
	for _, p := range sorted {
		h.Write([]byte(strconv.FormatUint(uint64(p), 10)))
		h.Write([]byte{','})
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// ValidateRange checks the request's index range against the expanded
// scenario count (pass total < 0 to skip the upper-bound check).
func (r ShardRequest) ValidateRange(total int) error {
	if r.Start < 0 || r.End <= r.Start {
		return fmt.Errorf("bad shard range [%d,%d)", r.Start, r.End)
	}
	if total >= 0 && r.End > total {
		return fmt.Errorf("shard range [%d,%d) exceeds the spec's %d scenarios", r.Start, r.End, total)
	}
	return nil
}

// ShardDone is the stream trailer a worker emits after the shard's last
// record, as a single NDJSON line {"shard_done":{...}}. Its presence is
// the stream-integrity signal: a response that ends without one was
// truncated (worker died mid-shard) and the coordinator retries the
// shard. Records/Start/End let the coordinator cross-check what it
// merged; WorkerStats carries the worker-local executor utilization for
// fleet observability.
type ShardDone struct {
	Start   int `json:"start"`
	End     int `json:"end"`
	Seq     int `json:"seq"`
	Records int `json:"records"`
	// WorkerStats are the worker's local executor stats, ascending
	// worker index.
	WorkerStats []sweep.WorkerStats `json:"worker_stats,omitempty"`
}

// wireLine decodes one NDJSON line of a shard response: either an
// Impact record (ShardDone nil) or the trailer (only the "shard_done"
// key set). Impact is embedded so record lines decode directly into it.
type wireLine struct {
	ShardDone *ShardDone `json:"shard_done"`
	sweep.Impact
}

// Shard is one contiguous range of the global scenario index space.
type Shard struct {
	// Index is the shard's position in the partition (0-based); shards
	// merge in Index order.
	Index int
	// Start and End bound the scenario range, half-open.
	Start, End int
}

// Partition splits total scenarios into contiguous shards of size
// scenarios each (the last shard takes the remainder). The split is a
// pure function of (total, size): every coordinator restart — and every
// worker, given the same spec — sees the same shard boundaries, which
// is what makes checkpoints replayable and the merge order global.
func Partition(total, size int) []Shard {
	if total <= 0 {
		return nil
	}
	if size <= 0 {
		size = DefaultShardSize
	}
	shards := make([]Shard, 0, (total+size-1)/size)
	for start := 0; start < total; start += size {
		end := start + size
		if end > total {
			end = total
		}
		shards = append(shards, Shard{Index: len(shards), Start: start, End: end})
	}
	return shards
}

// PartitionAdaptive splits like Partition for the body of the index
// space but shrinks the tail: the last ~10% of scenarios (at least one
// full shard's worth) is cut into quarter-size shards. Large body
// shards amortize per-shard overhead; small tail shards keep one slow
// final shard from dominating the run's wall clock, and give the
// straggler detector cheap units to speculate. Like Partition, the
// split is a pure function of (total, size), so checkpoints stay
// replayable — the choice of partitioner is part of the fingerprint.
func PartitionAdaptive(total, size int) []Shard {
	if total <= 0 {
		return nil
	}
	if size <= 0 {
		size = DefaultShardSize
	}
	tailSize := size / 4
	if tailSize < 1 {
		tailSize = 1
	}
	tail := total / 10
	if tail < size {
		tail = size
	}
	cut := total - tail
	if cut <= 0 {
		// The whole space fits in the tail budget: plain small shards.
		cut = 0
	}
	var shards []Shard
	for start := 0; start < cut; start += size {
		end := start + size
		if end > cut {
			end = cut
		}
		shards = append(shards, Shard{Index: len(shards), Start: start, End: end})
	}
	for start := cut; start < total; start += tailSize {
		end := start + tailSize
		if end > total {
			end = total
		}
		shards = append(shards, Shard{Index: len(shards), Start: start, End: end})
	}
	return shards
}

// PermanentError marks a worker response that retrying cannot fix — the
// worker understood the request and rejected it (4xx: bad spec, range
// out of bounds, dataset mismatch). The coordinator fails the run
// immediately instead of burning the retry budget.
type PermanentError struct{ Err error }

func (e *PermanentError) Error() string { return e.Err.Error() }
func (e *PermanentError) Unwrap() error { return e.Err }
