package dsweep

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sync"

	"github.com/policyscope/policyscope/internal/sweep"
)

// Fingerprint identifies the exact sweep a checkpoint belongs to. Every
// field participates in the equality check a resume performs: replaying
// a shard spool is only sound when the spec, dataset, scenario count,
// shard boundaries, and record detail all match — otherwise the spooled
// records describe a different universe.
type Fingerprint struct {
	// Name is the spec's display name (informational; still compared —
	// two specs differing only in name hash differently anyway).
	Name string `json:"name,omitempty"`
	// SpecSHA256 is the hex digest of the spec's canonical JSON
	// encoding.
	SpecSHA256 string `json:"spec_sha256"`
	// Dataset names the dataset the fleet runs against.
	Dataset string `json:"dataset,omitempty"`
	// Total is the expanded scenario count; ShardSize fixes the
	// partition boundaries.
	Total     int `json:"total"`
	ShardSize int `json:"shard_size"`
	// Adaptive records which partitioner fixed the shard boundaries
	// (PartitionAdaptive vs Partition). omitempty keeps manifests from
	// pre-adaptive runs readable: their absence decodes as false, which
	// is exactly what those runs used.
	Adaptive bool `json:"adaptive,omitempty"`
	// TopShifts is the per-record detail bound (records differ when it
	// does).
	TopShifts int `json:"top_shifts"`
	// Vantages is the coordinator's vantage-set fingerprint
	// (VantageFingerprint). Dataset is a *name* — often "" for the
	// flag-derived default — so without this a coordinator restarted
	// with a different -peers count would resume a checkpoint whose
	// spooled records came from different vantages and merge a mixed
	// stream. Manifests from before this field decode as "" and are
	// refused once coordinators set it: their vantage set is
	// unverifiable.
	Vantages string `json:"vantages,omitempty"`
}

// NewFingerprint derives the checkpoint identity for one sweep
// configuration. adaptive must match Options.AdaptiveShards — the two
// partitioners draw different shard boundaries over the same total.
func NewFingerprint(spec sweep.Spec, dataset string, total, shardSize, topShifts int, adaptive bool) (Fingerprint, error) {
	b, err := json.Marshal(spec)
	if err != nil {
		return Fingerprint{}, fmt.Errorf("dsweep: fingerprinting spec: %w", err)
	}
	sum := sha256.Sum256(b)
	if shardSize <= 0 {
		shardSize = DefaultShardSize
	}
	return Fingerprint{
		Name:       spec.Name,
		SpecSHA256: hex.EncodeToString(sum[:]),
		Dataset:    dataset,
		Total:      total,
		ShardSize:  shardSize,
		Adaptive:   adaptive,
		TopShifts:  topShifts,
	}, nil
}

// Checkpoint is a coordinator's durable progress record: a directory
// holding manifest.json (the Fingerprint) plus one NDJSON spool file
// per completed shard (shard-000042.ndjson — the shard's Impact
// records, one per line, in scenario order). Spools publish atomically
// (write to a dot-temp file, fsync, rename), so a crash mid-write never
// leaves a truncated spool that a resume would mistake for a complete
// shard. Safe for concurrent use by the coordinator's worker loops.
type Checkpoint struct {
	dir     string
	fp      Fingerprint
	resumed bool

	mu        sync.Mutex
	completed map[int]bool
}

// manifestFile is the checkpoint's identity record.
const manifestFile = "manifest.json"

func shardFileName(index int) string {
	return fmt.Sprintf("shard-%06d.ndjson", index)
}

// OpenCheckpoint opens (or creates) the checkpoint directory for the
// given fingerprint. Opening an existing checkpoint whose manifest does
// not match fp is an error — resuming someone else's run would merge
// records from a different sweep. On a match, the completed-shard set
// is recovered by scanning the published spool files.
func OpenCheckpoint(dir string, fp Fingerprint) (*Checkpoint, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("dsweep: checkpoint dir: %w", err)
	}
	c := &Checkpoint{dir: dir, fp: fp, completed: make(map[int]bool)}
	path := filepath.Join(dir, manifestFile)
	raw, err := os.ReadFile(path)
	switch {
	case err == nil:
		var got Fingerprint
		if err := json.Unmarshal(raw, &got); err != nil {
			return nil, fmt.Errorf("dsweep: checkpoint manifest %s: %w", path, err)
		}
		if got != fp {
			gb, _ := json.Marshal(got)
			wb, _ := json.Marshal(fp)
			return nil, fmt.Errorf("dsweep: checkpoint %s belongs to a different sweep:\n  found %s\n  want  %s", dir, gb, wb)
		}
		c.resumed = true
		if err := c.scanShards(); err != nil {
			return nil, err
		}
	case errors.Is(err, fs.ErrNotExist):
		b, err := json.MarshalIndent(fp, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := atomicWrite(dir, manifestFile, b); err != nil {
			return nil, fmt.Errorf("dsweep: writing checkpoint manifest: %w", err)
		}
	default:
		return nil, fmt.Errorf("dsweep: reading checkpoint manifest: %w", err)
	}
	return c, nil
}

// scanShards recovers the completed set from the published spool files.
func (c *Checkpoint) scanShards() error {
	entries, err := os.ReadDir(c.dir)
	if err != nil {
		return fmt.Errorf("dsweep: scanning checkpoint: %w", err)
	}
	for _, e := range entries {
		var idx int
		if n, _ := fmt.Sscanf(e.Name(), "shard-%d.ndjson", &idx); n == 1 && e.Name() == shardFileName(idx) {
			c.completed[idx] = true
		}
	}
	return nil
}

// Resumed reports whether the directory held a matching checkpoint
// already (i.e. this run continues a previous one).
func (c *Checkpoint) Resumed() bool { return c.resumed }

// Has reports whether shard index is already spooled.
func (c *Checkpoint) Has(index int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.completed[index]
}

// CompletedCount returns how many shards are spooled.
func (c *Checkpoint) CompletedCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.completed)
}

// WriteShard publishes a completed shard's records. Already-spooled
// shards are left untouched (first write wins — the spool is as
// authoritative as the merge). The spool becomes visible only via the
// final rename.
func (c *Checkpoint) WriteShard(index int, recs []*sweep.Impact) error {
	c.mu.Lock()
	if c.completed[index] {
		c.mu.Unlock()
		return nil
	}
	c.mu.Unlock()

	var buf []byte
	for _, imp := range recs {
		line, err := json.Marshal(imp)
		if err != nil {
			return fmt.Errorf("dsweep: encoding shard %d record: %w", index, err)
		}
		buf = append(buf, line...)
		buf = append(buf, '\n')
	}
	if err := atomicWrite(c.dir, shardFileName(index), buf); err != nil {
		return fmt.Errorf("dsweep: spooling shard %d: %w", index, err)
	}
	c.mu.Lock()
	c.completed[index] = true
	c.mu.Unlock()
	return nil
}

// ReadShard loads a spooled shard's records.
func (c *Checkpoint) ReadShard(index int) ([]*sweep.Impact, error) {
	f, err := os.Open(filepath.Join(c.dir, shardFileName(index)))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var recs []*sweep.Impact
	dec := json.NewDecoder(f)
	for {
		var imp sweep.Impact
		if err := dec.Decode(&imp); err != nil {
			if errors.Is(err, io.EOF) {
				return recs, nil
			}
			return nil, fmt.Errorf("dsweep: shard %d spool: %w", index, err)
		}
		recs = append(recs, &imp)
	}
}

// atomicWrite publishes name in dir via temp file + fsync + rename.
func atomicWrite(dir, name string, data []byte) error {
	tmp, err := os.CreateTemp(dir, "."+name+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), filepath.Join(dir, name))
}
